// Command wfstat prints structural statistics of a workflow: per-level
// composition, critical path, width, data volumes — the numbers a
// scheduler developer wants before picking an algorithm.
//
// Usage:
//
//	wfstat -dax montage50.dax
//	wfstat -family cybershake -size 100 -seed 3
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"reassign/internal/dag"
	"reassign/internal/dax"
	"reassign/internal/metrics"
	"reassign/internal/trace"
	"reassign/internal/wfjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "wfstat: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	daxPath := flag.String("dax", "", "workflow file, DAX XML or WfFormat JSON")
	family := flag.String("family", "montage", "synthetic family when no -dax is given")
	size := flag.Int("size", 50, "synthetic workflow size")
	seed := flag.Int64("seed", 1, "random seed for synthetic workflows")
	flag.Parse()

	var w *dag.Workflow
	var err error
	if *daxPath != "" {
		if strings.HasSuffix(*daxPath, ".json") {
			w, err = wfjson.ReadFile(*daxPath)
		} else {
			w, err = dax.ReadFile(*daxPath)
		}
		if err != nil {
			return err
		}
	} else {
		gen := trace.Named(*family)
		if gen == nil {
			return fmt.Errorf("unknown family %q (known: %v)", *family, trace.Families())
		}
		w = gen(rand.New(rand.NewSource(*seed)), *size)
	}
	if err := w.Validate(); err != nil {
		return err
	}

	fmt.Printf("workflow: %s\n", w.Name)
	fmt.Printf("activations: %d   edges: %d   roots: %d   leaves: %d\n",
		w.Len(), w.Edges(), len(w.Roots()), len(w.Leaves()))

	depth, err := w.Depth()
	if err != nil {
		return err
	}
	width, err := w.Width()
	if err != nil {
		return err
	}
	_, cp, err := w.CriticalPath()
	if err != nil {
		return err
	}
	total := w.TotalRuntime()
	fmt.Printf("depth: %d   width: %d   total work: %.1fs   critical path: %.1fs   max speedup: %.2fx\n",
		depth, width, total, cp, total/cp)

	var inBytes, outBytes int64
	for _, a := range w.Activations() {
		inBytes += a.InputBytes()
		outBytes += a.OutputBytes()
	}
	fmt.Printf("data: %.1f MB consumed, %.1f MB produced\n\n",
		float64(inBytes)/1e6, float64(outBytes)/1e6)

	levels, err := w.Levels()
	if err != nil {
		return err
	}
	lt := metrics.NewTable("Levels", "level", "activations", "activities", "runtime sum (s)")
	for i, lv := range levels {
		acts := map[string]bool{}
		var sum float64
		for _, a := range lv {
			acts[a.Activity] = true
			sum += a.Runtime
		}
		names := ""
		for _, n := range sortedKeys(acts) {
			if names != "" {
				names += ", "
			}
			names += n
		}
		lt.AddRowF(i, len(lv), names, sum)
	}
	fmt.Println(lt.String())

	at := metrics.NewTable("Activities", "activity", "count", "mean runtime (s)")
	counts := w.CountByActivity()
	sums := map[string]float64{}
	for _, a := range w.Activations() {
		sums[a.Activity] += a.Runtime
	}
	for _, name := range w.ActivityNames() {
		at.AddRowF(name, counts[name], sums[name]/float64(counts[name]))
	}
	fmt.Println(at.String())
	return nil
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
