// Command experiments regenerates the paper's evaluation tables
// (Tables I–V) and the DESIGN.md ablations.
//
// Usage:
//
//	experiments                 # all tables, paper-scale (100 episodes)
//	experiments -table 3        # just Table III
//	experiments -episodes 20    # faster, smaller episode budget
//	experiments -ablations      # the ablation suite instead of I-V
//	experiments -out results/   # additionally write TSVs per table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"reassign/internal/expt"
	"reassign/internal/invariant"
	"reassign/internal/metrics"
	"reassign/internal/report"
	"reassign/internal/telemetry"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
}

func run() (err error) {
	table := flag.Int("table", 0, "regenerate one table (1-5); 0 = all")
	episodes := flag.Int("episodes", 100, "learning episodes per configuration")
	seed := flag.Int64("seed", 1, "random seed")
	replicas := flag.Int("replicas", 1, "parallel learning replicas per configuration (best plan wins)")
	ablations := flag.Bool("ablations", false, "run the ablation suite instead of Tables I-V")
	baselines := flag.Bool("baselines", false, "run the wider baseline comparison")
	studies := flag.Bool("studies", false, "run the beyond-paper studies (elasticity, spot revocations, open system, market frontier)")
	curves := flag.String("curves", "", "write ReASSIgN learning curves (SVG) to this file and exit")
	reportPath := flag.String("report", "", "write a self-contained HTML report (all tables + figures) and exit")
	outDir := flag.String("out", "", "also write TSV files to this directory")
	traceOut := flag.String("trace", "", "write a JSONL telemetry trace of every learning run to this file")
	metricsOut := flag.String("metrics", "", "write aggregated metrics in Prometheus text format to this file on exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	audit := flag.Bool("audit", false, "attach the runtime invariant auditor to every simulation and fail on violations")
	flag.Parse()

	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return fmt.Errorf("cpuprofile: %w", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialise live-heap stats
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: memprofile: %v\n", err)
			}
		}()
	}

	// Telemetry: both sinks are mutex-guarded, which matters here —
	// RunSweep learns its configurations in parallel, so events from
	// different runs interleave in the trace.
	var jsonl *telemetry.JSONL
	var agg *telemetry.Aggregator
	var sinks []telemetry.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		defer f.Close()
		jsonl = telemetry.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	if *metricsOut != "" {
		agg = telemetry.NewAggregator()
		sinks = append(sinks, agg)
	}

	o := expt.Options{Seed: *seed, Episodes: *episodes, Replicas: *replicas, Sink: telemetry.Multi(sinks...)}
	if *audit {
		aud := invariant.New()
		o.Hook = aud
		// Every return path reports the audit outcome; a violation
		// turns an otherwise successful invocation into a failure.
		defer func() {
			if err != nil {
				return
			}
			if aerr := aud.Err(); aerr != nil {
				for _, v := range aud.Violations() {
					fmt.Fprintf(os.Stderr, "audit: %s\n", v)
				}
				err = aerr
				return
			}
			fmt.Printf("audit: %d run(s), 0 invariant violations\n", aud.Runs())
		}()
	}
	defer func() {
		if jsonl != nil {
			if err := jsonl.Err(); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: trace: %v\n", err)
			} else {
				fmt.Printf("trace written to %s\n", *traceOut)
			}
		}
		if agg != nil {
			f, err := os.Create(*metricsOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
				return
			}
			defer f.Close()
			if err := agg.Snapshot().WriteProm(f); err != nil {
				fmt.Fprintf(os.Stderr, "experiments: metrics: %v\n", err)
				return
			}
			fmt.Printf("metrics written to %s\n", *metricsOut)
		}
	}()
	emit := func(name string, t *metrics.Table) error {
		fmt.Println(t.String())
		if *outDir == "" {
			return nil
		}
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		return os.WriteFile(filepath.Join(*outDir, name+".tsv"), []byte(t.TSV()), 0o644)
	}

	if *reportPath != "" {
		if err := writeReport(o, *reportPath); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", *reportPath)
		return nil
	}

	if *curves != "" {
		chart, err := expt.LearningCurves(o, 5)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*curves, []byte(chart.SVG()), 0o644); err != nil {
			return err
		}
		fmt.Printf("learning curves written to %s\n", *curves)
		return nil
	}

	if *ablations {
		type gen struct {
			name string
			fn   func(expt.Options) (*metrics.Table, error)
		}
		for _, g := range []gen{
			{"ablation_rho", expt.AblationRho},
			{"ablation_mu", expt.AblationMu},
			{"ablation_policy", expt.AblationPolicy},
			{"ablation_episodes", expt.AblationEpisodes},
			{"ablation_rule", expt.AblationRule},
			{"ablation_discount", expt.AblationDiscount},
			{"ablation_bootstrap", expt.AblationBootstrap},
			{"ablation_costweight", expt.AblationCostWeight},
			{"ablation_schedules", expt.AblationSchedules},
			{"ablation_clustering", expt.AblationClustering},
		} {
			t, err := g.fn(o)
			if err != nil {
				return fmt.Errorf("%s: %w", g.name, err)
			}
			if err := emit(g.name, t); err != nil {
				return err
			}
		}
		return nil
	}
	if *studies {
		el, err := expt.StudyElasticity(o)
		if err != nil {
			return err
		}
		if err := emit("study_elasticity", el); err != nil {
			return err
		}
		sp, err := expt.StudySpot(o)
		if err != nil {
			return err
		}
		if err := emit("study_spot", sp); err != nil {
			return err
		}
		sc, err := expt.StudyScaling(o)
		if err != nil {
			return err
		}
		if err := emit("study_scaling", sc); err != nil {
			return err
		}
		rs, err := expt.ReplicaScaling(o, nil)
		if err != nil {
			return err
		}
		if err := emit("study_replicas", rs); err != nil {
			return err
		}
		osys, err := expt.StudyOpenSystem(o)
		if err != nil {
			return err
		}
		if err := emit("study_open_system", osys); err != nil {
			return err
		}
		mf, err := expt.StudyMarketFrontier(o)
		if err != nil {
			return err
		}
		return emit("study_market_frontier", mf)
	}
	if *baselines {
		for _, vcpus := range []int{16, 32, 64} {
			t, err := expt.BaselineComparison(o, vcpus)
			if err != nil {
				return err
			}
			if err := emit(fmt.Sprintf("baselines_%dvcpu", vcpus), t); err != nil {
				return err
			}
		}
		return nil
	}

	want := func(n int) bool { return *table == 0 || *table == n }
	if want(1) {
		if err := emit("table1", expt.Table1()); err != nil {
			return err
		}
	}
	if want(2) || want(3) {
		sweep, err := expt.RunSweep(o)
		if err != nil {
			return err
		}
		if want(2) {
			if err := emit("table2", expt.Table2(sweep)); err != nil {
				return err
			}
		}
		if want(3) {
			if err := emit("table3", expt.Table3(sweep)); err != nil {
				return err
			}
		}
	}
	if want(4) {
		rows, err := expt.RunTable4(o)
		if err != nil {
			return err
		}
		if err := emit("table4", expt.Table4(rows)); err != nil {
			return err
		}
	}
	if want(5) {
		t5, err := expt.Table5(o)
		if err != nil {
			return err
		}
		if err := emit("table5", t5); err != nil {
			return err
		}
		share, err := expt.Table5BigVMShare(o)
		if err != nil {
			return err
		}
		fmt.Printf("t2.2xlarge placement share: HEFT=%.2f C1=%.2f C2=%.2f C3=%.2f\n\n",
			share["HEFT"], share["C1"], share["C2"], share["C3"])
	}
	return nil
}

// writeReport assembles the full reproduction into one HTML file:
// Tables I-V in the paper's layout, the learning-curve figure, and
// HEFT vs ReASSIgN Gantt charts on the 16-vCPU fleet.
func writeReport(o expt.Options, path string) error {
	b := report.New("ReASSIgN reproduction — paper tables and figures")
	b.AddParagraph("Generated by cmd/experiments -report. " +
		"See EXPERIMENTS.md for the paper-vs-measured discussion.")

	b.AddHeading("Table I — VM configurations")
	b.AddTable(expt.Table1())

	b.AddHeading("Tables II & III — learning time and simulated makespan")
	sweep, err := expt.RunSweep(o)
	if err != nil {
		return err
	}
	b.AddTable(expt.Table2(sweep))
	b.AddTable(expt.Table3(sweep))

	b.AddHeading("Table IV — execution-engine makespans")
	rows, err := expt.RunTable4(o)
	if err != nil {
		return err
	}
	b.AddTable(expt.Table4(rows))

	b.AddHeading("Table V — scheduling plans at 16 vCPUs")
	t5, err := expt.Table5(o)
	if err != nil {
		return err
	}
	b.AddTable(t5)
	share, err := expt.Table5BigVMShare(o)
	if err != nil {
		return err
	}
	b.AddParagraph(fmt.Sprintf(
		"t2.2xlarge placement share — HEFT: %.2f, C1: %.2f, C2: %.2f, C3: %.2f.",
		share["HEFT"], share["C1"], share["C2"], share["C3"]))

	b.AddHeading("Learning curves")
	chart, err := expt.LearningCurves(o, 5)
	if err != nil {
		return err
	}
	b.AddSVG(chart.SVG())

	b.AddHeading("Beyond the paper — elasticity and spot studies")
	el, err := expt.StudyElasticity(o)
	if err != nil {
		return err
	}
	b.AddTable(el)
	sp, err := expt.StudySpot(o)
	if err != nil {
		return err
	}
	b.AddTable(sp)

	b.AddHeading("Open system — multi-tenant arrival lanes")
	osys, err := expt.StudyOpenSystem(o)
	if err != nil {
		return err
	}
	b.AddTable(osys)

	b.AddHeading("Spot market — notice-reactive vs reactive-only frontier")
	mf, err := expt.StudyMarketFrontier(o)
	if err != nil {
		return err
	}
	b.AddTable(mf)

	b.AddHeading("Schedules — HEFT vs learned plan (16 vCPUs)")
	charts, err := expt.ScheduleCharts(o)
	if err != nil {
		return err
	}
	for _, c := range charts {
		b.AddSVG(c.SVG())
	}

	return os.WriteFile(path, []byte(b.HTML()), 0o644)
}
