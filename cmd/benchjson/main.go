// Command benchjson runs the governed benchmark suite
// (internal/benchsuite) — Q-table micro-benchmarks, the TD hot path,
// the full 100-episode learning run, the replica-scaling ladder and
// the large-DAG tier — and writes the results to a JSON file so
// successive commits can be compared mechanically.
//
// Usage:
//
//	benchjson [-o BENCH_core.json] [-benchtime 1s]
//
// The output maps benchmark name → {ns_per_op, allocs_per_op,
// bytes_per_op, iterations, extra}, where extra carries ReportMetric
// units such as the learning benches' episodes/sec. `make bench`
// writes BENCH_core.json at the repository root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"testing"
	"time"

	"reassign/internal/benchsuite"
)

func main() {
	// Register the testing flags (test.benchtime in particular) so
	// testing.Benchmark can be tuned below.
	testing.Init()
	out := flag.String("o", "BENCH_core.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	flag.Parse()

	// testing.Benchmark honours -test.benchtime only via the flag
	// package; set it explicitly so our -benchtime flag takes effect.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	benches := benchsuite.Suite()
	results := make(map[string]benchsuite.Entry, len(benches))
	for _, bench := range benches {
		// Reset the heap between suite entries: the large-DAG tier
		// leaves tens of MB of garbage and a skewed GC pacer behind,
		// which otherwise bleeds into the next benchmark's numbers
		// (measured: the exec tier runs ~15% slower after it than in a
		// fresh process). Each entry should measure itself.
		runtime.GC()
		debug.FreeOSMemory()
		r := testing.Benchmark(bench.Fn)
		e := benchsuite.Record(r)
		results[bench.Name] = e
		fmt.Printf("%-34s %12.0f ns/op %12d B/op %9d allocs/op",
			bench.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp)
		// ReportMetric extras (e.g. ep/s), in sorted unit order so the
		// log is stable across runs.
		units := make([]string, 0, len(e.Extra))
		for u := range e.Extra {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			fmt.Printf(" %12.1f %s", e.Extra[u], u)
		}
		fmt.Println()
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
