// Command benchjson runs the benchmark trajectory — the Q-table
// micro-benchmarks, the TD hot path, and the full 100-episode
// learning run — and writes the results to a JSON file so successive
// commits can be compared mechanically.
//
// Usage:
//
//	benchjson [-o BENCH_core.json] [-benchtime 1s]
//
// The output maps benchmark name → {ns_per_op, allocs_per_op,
// bytes_per_op, iterations}. `make bench` writes BENCH_core.json at
// the repository root.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// entry is one benchmark's recorded trajectory point.
type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

func record(r testing.BenchmarkResult) entry {
	return entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// qtableBench mirrors the rl package's BenchmarkQTable{Map,Dense}:
// a MaxRect + TDUpdate + Best round per op on a 50×16 action space.
func qtableBench(mk func() *rl.Table, numTasks, numVMs int) func(*testing.B) {
	return func(b *testing.B) {
		vms := make([]int, numVMs)
		for i := range vms {
			vms[i] = i
		}
		tasks := make([]int, numTasks)
		for i := range tasks {
			tasks[i] = i
		}
		tab := mk()
		rng := rand.New(rand.NewSource(42))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := rl.Key{Task: rng.Intn(numTasks), VM: rng.Intn(numVMs)}
			next := tab.MaxRect(tasks, vms)
			tab.TDUpdate(k, 0.5, 1.0, 0.9, next)
			tab.Best(k.Task, vms)
		}
	}
}

// tdHotPath runs one full learning episode per op, as in the core
// package's BenchmarkTDHotPath.
func tdHotPath(mk func(i int, numTasks, numVMs int) *rl.Table) func(*testing.B) {
	return func(b *testing.B) {
		w := trace.Montage50(rand.New(rand.NewSource(6)))
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		fluct := cloud.DefaultFluctuation()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agent, err := core.NewScheduler(core.DefaultParams(), mk(i, w.Len(), len(fleet.VMs)), rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(w, fleet, agent, sim.Config{Seed: int64(i), Fluct: &fluct}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// learning100 is the headline trajectory benchmark: one full
// 100-episode ReASSIgN learning run (Montage 50, 16-vCPU fleet) per
// op, matching BenchmarkLearning100Episodes at the repository root.
func learning100(b *testing.B) {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		b.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 100,
			Sim: sim.Config{Fluct: &fluct},
		}, core.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Learn(); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	// Register the testing flags (test.benchtime in particular) so
	// testing.Benchmark can be tuned below.
	testing.Init()
	out := flag.String("o", "BENCH_core.json", "output JSON path")
	benchtime := flag.Duration("benchtime", time.Second, "minimum run time per benchmark")
	flag.Parse()

	benches := []struct {
		name string
		fn   func(*testing.B)
	}{
		{"BenchmarkQTableMap", qtableBench(func() *rl.Table {
			return rl.NewTable(rand.New(rand.NewSource(1)), 1.0)
		}, 50, 16)},
		{"BenchmarkQTableDense", qtableBench(func() *rl.Table {
			return rl.NewDenseTable(50, 16, rand.New(rand.NewSource(1)), 1.0)
		}, 50, 16)},
		{"BenchmarkTDHotPath/map", tdHotPath(func(i, numTasks, numVMs int) *rl.Table {
			return rl.NewTable(rand.New(rand.NewSource(int64(i))), 1.0)
		})},
		{"BenchmarkTDHotPath/dense", tdHotPath(func(i, numTasks, numVMs int) *rl.Table {
			return rl.NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(int64(i))), 1.0)
		})},
		{"BenchmarkLearning100Episodes", learning100},
	}

	// testing.Benchmark honours -test.benchtime only via the flag
	// package; set it explicitly so our -benchtime flag takes effect.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	results := make(map[string]entry, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(bench.fn)
		results[bench.name] = record(r)
		fmt.Printf("%-32s %12.0f ns/op %12d B/op %9d allocs/op\n",
			bench.name, results[bench.name].NsPerOp, r.AllocedBytesPerOp(), r.AllocsPerOp())
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
