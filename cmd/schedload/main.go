// Command schedload load-tests a running schedd daemon: it keeps a
// fixed number of scheduling jobs in flight, polls each to completion
// and prints submit-to-finish latency percentiles (p50/p95/p99),
// throughput and the daemon's Q-table cache hit rate.
//
// Usage:
//
//	schedload -addr http://localhost:8425 [-jobs 200] [-concurrency 100]
//	          [-nodes 50] [-episodes 20] [-distinct 4] [-execute]
//
// -distinct cycles K workflow seeds across the jobs, so the run mixes
// cache misses (first job of each structure) with hits (the rest) —
// the warm-start path a steady workload exercises.
//
// Open-system mode replays a seeded multi-tenant arrival trace
// (package loadgen) against the daemon instead of closed-loop
// hammering:
//
//	schedload -writetrace trace.json [-seed 1] [-horizon 300]
//	          [-tenants 3] [-rate 0.05] [-nodes 50]   # generate only
//	schedload -trace trace.json [-timescale 10] [-sla 30s]
//
// -timescale compresses virtual trace time into wall time (10 =
// 10 virtual seconds per wall second); -sla attaches a wall-clock
// deadline hint to every deadline-carrying arrival, and the report
// breaks latency and deadline attainment down per tenant.
//
// The exit code is non-zero when any job fails or is rejected.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"reassign/internal/api"
	"reassign/internal/metrics"
)

func main() {
	addr := flag.String("addr", "http://localhost:8425", "schedd base URL")
	jobs := flag.Int("jobs", 200, "total jobs to submit")
	concurrency := flag.Int("concurrency", 100, "jobs kept in flight")
	nodes := flag.Int("nodes", 50, "workflow size (synthetic Montage)")
	episodes := flag.Int("episodes", 20, "episode budget per job")
	distinct := flag.Int("distinct", 4, "distinct workflow structures cycled across jobs")
	execute := flag.Bool("execute", false, "also execute each plan for provenance")
	timeout := flag.Duration("timeout", 5*time.Minute, "per-job completion timeout")
	trace := flag.String("trace", "", "replay a loadgen trace file instead of closed-loop load")
	writeTrace := flag.String("writetrace", "", "generate a trace file and exit (no daemon needed)")
	seed := flag.Int64("seed", 1, "trace generation seed (with -writetrace)")
	horizon := flag.Float64("horizon", 300, "trace arrival window in virtual seconds (with -writetrace)")
	tenants := flag.Int("tenants", 3, "tenant count (with -writetrace)")
	rate := flag.Float64("rate", 0.05, "per-tenant mean arrivals per virtual second (with -writetrace)")
	timescale := flag.Float64("timescale", 10, "virtual seconds replayed per wall second (with -trace)")
	sla := flag.Duration("sla", 0, "wall-clock deadline hint per deadline-carrying arrival (with -trace)")
	flag.Parse()

	var err error
	switch {
	case *writeTrace != "":
		err = emitTrace(*writeTrace, *seed, *horizon, *tenants, *rate, *nodes)
	case *trace != "":
		err = runTrace(*addr, *trace, *timescale, *episodes, *execute, *sla, *timeout)
	default:
		err = run(*addr, *jobs, *concurrency, *nodes, *episodes, *distinct, *execute, *timeout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "schedload:", err)
		os.Exit(1)
	}
}

type jobOutcome struct {
	latency  float64 // client-side submit→done seconds
	cacheHit bool
	failed   bool
	state    string
}

func run(addr string, jobs, concurrency, nodes, episodes, distinct int, execute bool, timeout time.Duration) error {
	if distinct < 1 {
		distinct = 1
	}
	client := &http.Client{Timeout: 30 * time.Second}

	// Quick liveness probe before unleashing the fleet.
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	resp.Body.Close()

	var (
		next     atomic.Int64
		rejected atomic.Int64
		peak     atomic.Int64
		inflight atomic.Int64
		mu       sync.Mutex
		outcomes []jobOutcome
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < concurrency; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= int64(jobs) {
					return
				}
				cur := inflight.Add(1)
				for {
					old := peak.Load()
					if cur <= old || peak.CompareAndSwap(old, cur) {
						break
					}
				}
				out, err := oneJob(client, addr, int(i), nodes, episodes, distinct, execute, timeout)
				inflight.Add(-1)
				if err != nil {
					rejected.Add(1)
					fmt.Fprintf(os.Stderr, "schedload: job %d: %v\n", i, err)
					continue
				}
				mu.Lock()
				outcomes = append(outcomes, out)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	var lats []float64
	var hits, failed int
	for _, o := range outcomes {
		lats = append(lats, o.latency)
		if o.cacheHit {
			hits++
		}
		if o.failed {
			failed++
		}
	}
	sum := metrics.Summarize(lats)
	done := len(outcomes) - failed
	fmt.Printf("schedload: %d jobs (%d done, %d failed, %d rejected) in %.2fs\n",
		jobs, done, failed, rejected.Load(), elapsed.Seconds())
	fmt.Printf("  throughput   %.2f jobs/s\n", float64(done)/elapsed.Seconds())
	fmt.Printf("  peak in-flight %d\n", peak.Load())
	if sum.N > 0 {
		fmt.Printf("  latency p50  %.3fs\n", sum.P50)
		fmt.Printf("  latency p95  %.3fs\n", sum.P95)
		fmt.Printf("  latency p99  %.3fs\n", sum.P99)
		fmt.Printf("  latency mean %.3fs max %.3fs\n", sum.Mean, sum.Max)
	}
	fmt.Printf("  cache hits   %d/%d (%.0f%%)\n", hits, len(outcomes),
		100*float64(hits)/float64(max(1, len(outcomes))))
	if failed > 0 || rejected.Load() > 0 {
		return fmt.Errorf("%d jobs failed, %d rejected", failed, rejected.Load())
	}
	return nil
}

// oneJob submits one job and polls it to a terminal state.
func oneJob(client *http.Client, addr string, i, nodes, episodes, distinct int, execute bool, timeout time.Duration) (jobOutcome, error) {
	req := api.SubmitRequest{
		SchemaVersion: api.SchemaVersion,
		Workflow: api.WorkflowSpec{Synthetic: &api.SyntheticSpec{
			Family: "montage",
			Nodes:  nodes,
			Seed:   int64(i % distinct), // K structures → hit/miss mix
		}},
		Learn:   api.LearnSpec{Episodes: episodes},
		Seed:    int64(i),
		Execute: execute,
	}
	body, err := json.Marshal(req)
	if err != nil {
		return jobOutcome{}, err
	}
	submitted := time.Now()
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return jobOutcome{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var apiErr api.Error
		json.NewDecoder(resp.Body).Decode(&apiErr)
		return jobOutcome{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErr.Reason)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return jobOutcome{}, err
	}

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		sresp, err := client.Get(addr + "/v1/jobs/" + st.ID)
		if err != nil {
			return jobOutcome{}, err
		}
		var cur api.JobStatus
		err = json.NewDecoder(sresp.Body).Decode(&cur)
		sresp.Body.Close()
		if err != nil {
			return jobOutcome{}, err
		}
		switch cur.State {
		case api.StateDone:
			return jobOutcome{
				latency:  time.Since(submitted).Seconds(),
				cacheHit: cur.CacheHit,
				state:    cur.State,
			}, nil
		case api.StateFailed, api.StateCanceled:
			return jobOutcome{failed: true, state: cur.State}, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return jobOutcome{}, fmt.Errorf("job %s timed out after %v", st.ID, timeout)
}
