package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"reassign/internal/api"
	"reassign/internal/loadgen"
	"reassign/internal/metrics"
)

// emitTrace generates a seeded multi-tenant trace and writes it as
// JSON — the offline half of open-system mode (no daemon needed).
func emitTrace(path string, seed int64, horizon float64, tenants int, rate float64, nodes int) error {
	tr, err := loadgen.Generate(loadgen.TraceConfig{
		Seed:    seed,
		Horizon: horizon,
		Tenants: loadgen.DefaultTenants(tenants, rate, nodes),
	})
	if err != nil {
		return err
	}
	blob, err := json.MarshalIndent(tr, "", " ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("schedload: wrote %s: %d arrivals, %d tenants, horizon %.0fs, seed %d\n",
		path, len(tr.Arrivals), len(tr.Tenants()), tr.Horizon, tr.Seed)
	return nil
}

// traceOutcome is one replayed arrival's fate.
type traceOutcome struct {
	tenant   string
	latency  float64
	cacheHit bool
	failed   bool
	slaJob   bool
	slaMiss  bool
}

// runTrace replays a trace file against a live daemon: each arrival
// fires at its trace time compressed by timescale, tagged with its
// tenant and (when the arrival carries a deadline) the -sla wall-clock
// hint, then polls to completion. The report breaks the run down per
// tenant — the live counterpart of the offline lane replay.
func runTrace(addr, path string, timescale float64, episodes int, execute bool, sla, timeout time.Duration) error {
	if timescale <= 0 {
		return fmt.Errorf("timescale must be positive, got %v", timescale)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var tr loadgen.Trace
	if err := json.Unmarshal(blob, &tr); err != nil {
		return fmt.Errorf("parsing trace %s: %w", path, err)
	}
	if len(tr.Arrivals) == 0 {
		return fmt.Errorf("trace %s has no arrivals", path)
	}
	client := &http.Client{Timeout: 30 * time.Second}
	resp, err := client.Get(addr + "/healthz")
	if err != nil {
		return fmt.Errorf("daemon not reachable: %w", err)
	}
	resp.Body.Close()

	var (
		mu       sync.Mutex
		outcomes []traceOutcome
		rejected int
	)
	start := time.Now()
	var wg sync.WaitGroup
	for _, a := range tr.Arrivals {
		a := a
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Fire at the arrival's compressed wall time.
			at := time.Duration(a.At / timescale * float64(time.Second))
			if d := time.Until(start.Add(at)); d > 0 {
				time.Sleep(d)
			}
			out, err := oneArrival(client, addr, &tr, a, episodes, execute, sla, timeout)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				rejected++
				fmt.Fprintf(os.Stderr, "schedload: arrival %s: %v\n", a.ID, err)
				return
			}
			outcomes = append(outcomes, out)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	byTenant := map[string][]traceOutcome{}
	for _, o := range outcomes {
		byTenant[o.tenant] = append(byTenant[o.tenant], o)
	}
	names := make([]string, 0, len(byTenant))
	for name := range byTenant {
		names = append(names, name)
	}
	sort.Strings(names)

	failed := 0
	fmt.Printf("schedload: replayed %d arrivals (%d tenants) in %.2fs (timescale %.0fx)\n",
		len(tr.Arrivals), len(names), elapsed.Seconds(), timescale)
	tab := metrics.NewTable("tenants", "tenant", "jobs", "done", "failed", "hit%", "p50", "p95", "sla_jobs", "sla_miss")
	for _, name := range names {
		outs := byTenant[name]
		var lats []float64
		var hits, tFailed, slaJobs, slaMiss int
		for _, o := range outs {
			if o.failed {
				tFailed++
				continue
			}
			lats = append(lats, o.latency)
			if o.cacheHit {
				hits++
			}
			if o.slaJob {
				slaJobs++
				if o.slaMiss {
					slaMiss++
				}
			}
		}
		failed += tFailed
		sum := metrics.Summarize(lats)
		tab.AddRowF(name, len(outs), len(outs)-tFailed, tFailed,
			fmt.Sprintf("%.0f", 100*float64(hits)/float64(max(1, len(outs)-tFailed))),
			sum.P50, sum.P95, slaJobs, slaMiss)
	}
	fmt.Print(tab.String())
	if failed > 0 || rejected > 0 {
		return fmt.Errorf("%d jobs failed, %d rejected", failed, rejected)
	}
	return nil
}

// oneArrival submits one trace arrival and polls it to a terminal
// state.
func oneArrival(client *http.Client, addr string, tr *loadgen.Trace, a loadgen.Arrival, episodes int, execute bool, sla, timeout time.Duration) (traceOutcome, error) {
	req := api.SubmitRequest{
		SchemaVersion: api.SchemaVersion,
		Workflow:      tr.Workflows[a.Workflow],
		Learn:         api.LearnSpec{Episodes: episodes},
		Seed:          a.Seed,
		Execute:       execute,
		Tenant:        a.Tenant,
	}
	if a.DeadlineFactor > 0 && sla > 0 {
		req.DeadlineSeconds = sla.Seconds()
	}
	body, err := json.Marshal(req)
	if err != nil {
		return traceOutcome{}, err
	}
	submitted := time.Now()
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return traceOutcome{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var apiErr api.Error
		json.NewDecoder(resp.Body).Decode(&apiErr)
		return traceOutcome{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, apiErr.Reason)
	}
	var st api.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return traceOutcome{}, err
	}

	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		sresp, err := client.Get(addr + "/v1/jobs/" + st.ID)
		if err != nil {
			return traceOutcome{}, err
		}
		var cur api.JobStatus
		err = json.NewDecoder(sresp.Body).Decode(&cur)
		sresp.Body.Close()
		if err != nil {
			return traceOutcome{}, err
		}
		switch cur.State {
		case api.StateDone:
			return traceOutcome{
				tenant:   a.Tenant,
				latency:  time.Since(submitted).Seconds(),
				cacheHit: cur.CacheHit,
				slaJob:   cur.DeadlineSeconds > 0,
				slaMiss:  cur.DeadlineMissed,
			}, nil
		case api.StateFailed, api.StateCanceled:
			return traceOutcome{tenant: a.Tenant, failed: true}, nil
		}
		time.Sleep(20 * time.Millisecond)
	}
	return traceOutcome{}, fmt.Errorf("job %s timed out after %v", st.ID, timeout)
}
