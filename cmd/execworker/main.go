// Command execworker is the execution-stage worker process: it
// connects to a reassign master over TCP (the Go analogue of the
// paper's MPI SCSlave), executes the attempts the master dispatches,
// and reports results and heartbeats until the master shuts it down.
//
// Usage:
//
//	execworker -connect 127.0.0.1:7077
//	execworker -connect master:7077 -runner sim -seed 3
//	execworker -connect master:7077 -runner cmd     # exec the DAX argv
//	execworker -connect master:7077 -codec json     # legacy wire protocol (v1)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/exec"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "execworker: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	connect := flag.String("connect", "", "master address to join (required)")
	runnerName := flag.String("runner", "sleep", "attempt runner: sleep|sim|cmd")
	seed := flag.Int64("seed", 1, "seed for the sim runner's fluctuation draws")
	fluct := flag.Bool("fluct", true, "apply the cloud fluctuation model (sim runner)")
	failRate := flag.Float64("failrate", 0, "inject per-attempt failures with this probability")
	retryFor := flag.Duration("retry", 10*time.Second, "keep retrying a refused connection for this long (the master may not be listening yet)")
	codec := flag.String("codec", "binary", "wire codec: binary (framed, v2) or json (legacy JSON lines, v1)")
	flag.Parse()
	if *connect == "" {
		return fmt.Errorf("-connect is required")
	}
	dial := exec.Dial
	switch *codec {
	case "binary":
	case "json":
		dial = exec.DialJSON
	default:
		return fmt.Errorf("unknown -codec %q (binary or json)", *codec)
	}

	newRunner := func(timeScale float64) exec.Runner {
		var r exec.Runner
		switch *runnerName {
		case "sim":
			sr := exec.SimRunner{Seed: *seed}
			if *fluct {
				f := cloud.DefaultFluctuation()
				sr.Fluct = &f
			}
			r = sr
		case "cmd":
			r = exec.CommandRunner{}
		default:
			r = exec.SleepRunner{Scale: timeScale}
		}
		if *failRate > 0 {
			r = exec.FailingRunner{Inner: r, Rate: *failRate, Seed: *seed}
		}
		return r
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	deadline := time.Now().Add(*retryFor)
	for {
		err := dial(ctx, *connect, newRunner)
		if errors.Is(err, syscall.ECONNREFUSED) && time.Now().Before(deadline) && ctx.Err() == nil {
			time.Sleep(200 * time.Millisecond)
			continue
		}
		return err
	}
}
