// Command reassign schedules a workflow onto a Table I cloud fleet
// with any implemented algorithm and reports the plan and makespan.
// For -sched reassign it runs the full two-stage pipeline: Q-learning
// episodes in the simulator, greedy plan extraction, then execution
// in the concurrent engine with provenance output.
//
// Usage:
//
//	reassign -dax montage50.dax -sched heft -vcpus 16
//	reassign -sched reassign -episodes 100 -alpha 0.5 -gamma 1 -epsilon 0.1
//	reassign -sched minmin -vcpus 64 -fluct=false -plan plan.tsv
//	reassign -sched reassign -trace trace.jsonl -metrics metrics.prom
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strings"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/dax"
	"reassign/internal/engine"
	"reassign/internal/gantt"
	"reassign/internal/invariant"
	"reassign/internal/metrics"
	"reassign/internal/plot"
	"reassign/internal/provenance"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
	"reassign/internal/trace"
	"reassign/internal/wfjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "reassign: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	daxPath := flag.String("dax", "", "workflow file, DAX XML or WfFormat JSON (default: synthetic Montage 50)")
	schedName := flag.String("sched", "reassign", "scheduler: reassign|heft|minmin|maxmin|mct|fcfs|rr|random|dataaware|cheapfirst|siteaware|ga|adaptive")
	vcpus := flag.Int("vcpus", 16, "Table I fleet: 16, 32 or 64 vCPUs")
	seed := flag.Int64("seed", 1, "random seed")
	episodes := flag.Int("episodes", 100, "ReASSIgN learning episodes")
	replicas := flag.Int("replicas", 1, "run K parallel learning replicas with split seeds and keep the best plan")
	alpha := flag.Float64("alpha", 0.5, "ReASSIgN learning rate α")
	gamma := flag.Float64("gamma", 1.0, "ReASSIgN discount γ")
	epsilon := flag.Float64("epsilon", 0.1, "ReASSIgN exploitation probability ε (paper convention)")
	fluct := flag.Bool("fluct", true, "enable the cloud fluctuation model")
	autoscale := flag.Int("autoscale", 0, "enable elasticity: grow the fleet up to N VMs (t2.large, 45s boot, 120s idle timeout)")
	spot := flag.Float64("spot", 0, "treat VMs as spot instances with this mean lifetime in seconds (one VM protected)")
	execute := flag.Bool("execute", false, "execute the plan in the concurrent engine after scheduling")
	planOut := flag.String("plan", "", "write the activation→VM plan (TSV) to this file")
	qOut := flag.String("qtable", "", "save the learned Q table (JSON) to this file")
	qIn := flag.String("resume", "", "resume learning from a saved Q table")
	provOut := flag.String("prov", "", "write execution provenance (JSON) to this file")
	ganttOut := flag.String("gantt", "", "write the schedule as an SVG Gantt chart to this file")
	curveOut := flag.String("learncurve", "", "write the per-episode makespan curve (SVG) to this file (ReASSIgN only)")
	ascii := flag.Bool("ascii", false, "print an ASCII Gantt chart of the schedule")
	traceOut := flag.String("trace", "", "write a JSONL telemetry trace (episodes, decisions, kernel counters, spans) to this file")
	metricsOut := flag.String("metrics", "", "write aggregated metrics in Prometheus text format to this file on exit")
	audit := flag.Bool("audit", false, "attach the runtime invariant auditor to every simulation and fail on violations")
	flag.Parse()

	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
	}

	// Telemetry: a JSONL trace and/or an in-memory aggregator, fanned
	// out behind one sink. Both nil leaves instrumentation disabled.
	var jsonl *telemetry.JSONL
	var agg *telemetry.Aggregator
	var sinks []telemetry.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = telemetry.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	if *metricsOut != "" {
		agg = telemetry.NewAggregator()
		sinks = append(sinks, agg)
	}
	sink := telemetry.Multi(sinks...)

	w, err := loadWorkflow(*daxPath, *seed)
	if err != nil {
		return err
	}
	fleet, err := cloud.FleetTable1(*vcpus)
	if err != nil {
		return err
	}
	var fm *cloud.FluctuationModel
	if *fluct {
		f := cloud.DefaultFluctuation()
		fm = &f
	}
	cfg := sim.Config{Fluct: fm, Seed: *seed}
	if *autoscale > 0 {
		cfg.Autoscale = &sim.Autoscale{
			Type: cloud.T2Large, MaxVMs: *autoscale,
			BootDelay: 45, IdleTimeout: 120, Cooldown: 20,
		}
	}
	if *spot > 0 {
		cfg.Spot = &sim.SpotPolicy{MeanLifetime: *spot, KeepOne: true}
	}
	var aud *invariant.Auditor
	if *audit {
		aud = invariant.New()
		cfg.Hook = aud
	}

	fmt.Printf("workflow: %s (%d activations, %d edges)\n", w.Name, w.Len(), w.Edges())
	fmt.Printf("fleet:    %s (%d VMs, %d vCPUs, $%.4f/h)\n",
		fleet.Name, fleet.Len(), fleet.VCPUs(), fleet.PricePerHour())

	var plan core.Plan
	var makespan float64
	var lastRes *sim.Result
	if strings.EqualFold(*schedName, "reassign") {
		p := core.DefaultParams()
		p.Alpha, p.Gamma, p.Epsilon = *alpha, *gamma, *epsilon
		opts := []core.Option{core.WithSeed(*seed), core.WithSink(sink)}
		if *qIn != "" {
			tab := rl.NewTable(rand.New(rand.NewSource(*seed)), 1.0)
			if err := tab.LoadFile(*qIn); err != nil {
				return err
			}
			opts = append(opts, core.WithTable(tab))
		}
		if *replicas > 1 {
			opts = append(opts, core.WithReplicas(*replicas))
		}
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet, Params: p, Episodes: *episodes, Sim: cfg,
		}, opts...)
		if err != nil {
			return err
		}
		var res *core.Result
		var ensemble *core.ReplicaResult
		if *replicas > 1 {
			ensemble, err = l.LearnReplicas()
			if err != nil {
				return err
			}
			res = ensemble.BestResult()
			fmt.Printf("replicas: %d learners in %v wall clock; best is replica %d (seed %d)\n",
				*replicas, ensemble.LearningTime, ensemble.Best, ensemble.Seeds[ensemble.Best])
		} else {
			res, err = l.Learn()
			if err != nil {
				return err
			}
		}
		plan, makespan = res.Plan, res.PlanMakespan
		fmt.Printf("learning: %d episodes in %v (best episode makespan %.2fs)\n",
			len(res.Episodes), res.LearningTime, res.BestEpisodeMakespan)
		if *curveOut != "" {
			xs := make([]float64, len(res.Episodes))
			ys := make([]float64, len(res.Episodes))
			for i, ep := range res.Episodes {
				xs[i] = float64(ep.Episode)
				ys[i] = ep.Makespan
			}
			chart := &plot.Chart{
				Title:  fmt.Sprintf("ReASSIgN learning curve — %s, %d vCPUs", w.Name, fleet.VCPUs()),
				XLabel: "episode", YLabel: "episode makespan (s)",
				Series: []plot.Series{
					{Name: "episode", X: xs, Y: ys},
					{Name: "smoothed", X: xs, Y: plot.Smooth(ys, 5)},
				},
			}
			if err := os.WriteFile(*curveOut, []byte(chart.SVG()), 0o644); err != nil {
				return err
			}
			fmt.Printf("curve:    written to %s\n", *curveOut)
		}
		if *qOut != "" {
			tab := res.Table
			if ensemble != nil {
				// Persist the replica consensus rather than one replica's
				// table: averaged values seed the next execution better.
				tab = ensemble.EnsembleTable(*seed)
			}
			if err := tab.SaveFile(*qOut); err != nil {
				return err
			}
			fmt.Printf("q-table:  saved to %s (%d entries)\n", *qOut, tab.Len())
		}
	} else {
		s, err := lookupScheduler(*schedName, *seed)
		if err != nil {
			return err
		}
		scfg := cfg
		scfg.Sink = sink
		res, err := sim.Run(w, fleet, s, scfg)
		if err != nil {
			return err
		}
		if res.State != sim.FinishedOK {
			return fmt.Errorf("simulation ended in state %v", res.State)
		}
		plan, makespan, lastRes = core.NewPlan(res.Plan), res.Makespan, res
	}
	fmt.Printf("plan:     %d activations scheduled, simulated makespan %.3fs (%s)\n",
		plan.Len(), makespan, metrics.FormatDuration(makespan))
	printPlanSummary(plan, fleet)

	if *ascii || *ganttOut != "" {
		if lastRes == nil {
			// ReASSIgN path: replay the learned plan once for the chart.
			res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "ReASSIgN", Assign: plan.Map()}, cfg)
			if err != nil {
				return err
			}
			lastRes = res
		}
		chart := gantt.FromResult(lastRes, fleet)
		if *ascii {
			fmt.Print(chart.ASCII(100))
		}
		if *ganttOut != "" {
			if err := os.WriteFile(*ganttOut, []byte(chart.SVG()), 0o644); err != nil {
				return err
			}
			fmt.Printf("gantt:    written to %s\n", *ganttOut)
		}
	}

	if *planOut != "" {
		if err := writePlan(*planOut, plan); err != nil {
			return err
		}
		fmt.Printf("plan:     written to %s\n", *planOut)
	}

	if *execute {
		store := provenance.NewStore()
		e, err := engine.New(w, fleet, plan,
			engine.WithFluctuation(fm),
			engine.WithSeed(*seed+1000),
			engine.WithStore(store, "cli"),
			engine.WithSink(sink),
		)
		if err != nil {
			return err
		}
		rep, err := e.Execute(context.Background())
		if err != nil {
			return err
		}
		fmt.Printf("executed: %d activations, makespan %.3fs (%s), wall %v, peak workers %d\n",
			len(rep.Tasks), rep.Makespan, metrics.FormatDuration(rep.Makespan), rep.Wall, rep.PeakWorkers)
		if *provOut != "" {
			if err := store.SaveFile(*provOut); err != nil {
				return err
			}
			fmt.Printf("prov:     written to %s (%d records)\n", *provOut, store.Len())
		}
	}

	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace:    written to %s\n", *traceOut)
	}
	if agg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := agg.Snapshot().WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics:  written to %s\n", *metricsOut)
	}
	if aud != nil {
		if err := aud.Err(); err != nil {
			for _, v := range aud.Violations() {
				fmt.Fprintf(os.Stderr, "audit: %s\n", v)
			}
			return err
		}
		fmt.Printf("audit:    %d run(s), 0 invariant violations\n", aud.Runs())
	}
	return nil
}

func loadWorkflow(path string, seed int64) (*dag.Workflow, error) {
	if path == "" {
		return trace.Montage50(rand.New(rand.NewSource(seed))), nil
	}
	if strings.HasSuffix(path, ".json") {
		return wfjson.ReadFile(path)
	}
	return dax.ReadFile(path)
}

func lookupScheduler(name string, seed int64) (sim.Scheduler, error) {
	switch strings.ToLower(name) {
	case "heft":
		return &sched.HEFT{}, nil
	case "minmin":
		return sched.MinMin{}, nil
	case "maxmin":
		return sched.MaxMin{}, nil
	case "mct":
		return sched.MCT{}, nil
	case "fcfs":
		return sched.FCFS{}, nil
	case "rr", "roundrobin":
		return &sched.RoundRobin{}, nil
	case "random":
		return &sched.Random{Seed: seed}, nil
	case "dataaware":
		return sched.DataAware{}, nil
	case "cheapfirst":
		return sched.CheapFirst{}, nil
	case "siteaware":
		return sched.SiteAware{}, nil
	case "ga":
		return &sched.GA{Seed: seed}, nil
	case "adaptive":
		return &sched.Adaptive{}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func printPlanSummary(plan core.Plan, fleet *cloud.Fleet) {
	counts := make(map[int]int)
	for _, e := range plan.Entries() {
		counts[e.VM]++
	}
	ids := make([]int, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var parts []string
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("vm%d(%s)=%d", id, fleet.VMs[id].Type.Name, counts[id]))
	}
	fmt.Printf("placement: %s\n", strings.Join(parts, " "))
}

func writePlan(path string, plan core.Plan) error {
	var b strings.Builder
	b.WriteString("activation\tvm\n")
	for _, e := range plan.Entries() {
		fmt.Fprintf(&b, "%s\t%d\n", e.Activation, e.VM)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
