// Command reassign schedules a workflow onto a Table I cloud fleet
// with any implemented algorithm and reports the plan and makespan.
// For -sched reassign it runs the full two-stage pipeline: Q-learning
// episodes in the simulator, greedy plan extraction, then execution
// in the concurrent engine with provenance output.
//
// Usage:
//
//	reassign -dax montage50.dax -sched heft -vcpus 16
//	reassign -sched reassign -episodes 100 -alpha 0.5 -gamma 1 -epsilon 0.1
//	reassign -sched minmin -vcpus 64 -fluct=false -plan plan.tsv
//	reassign -sched reassign -trace trace.jsonl -metrics metrics.prom
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"reassign/internal/api"
	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/dax"
	"reassign/internal/engine"
	"reassign/internal/exec"
	"reassign/internal/gantt"
	"reassign/internal/invariant"
	"reassign/internal/market"
	"reassign/internal/metrics"
	"reassign/internal/plot"
	"reassign/internal/provenance"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
	"reassign/internal/trace"
	"reassign/internal/wfjson"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "reassign: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	daxPath := flag.String("dax", "", "workflow file, DAX XML or WfFormat JSON (default: synthetic Montage 50)")
	schedName := flag.String("sched", "reassign", "scheduler: reassign|heft|minmin|maxmin|mct|fcfs|rr|random|dataaware|cheapfirst|siteaware|ga|adaptive")
	vcpus := flag.Int("vcpus", 16, "Table I fleet: 16, 32 or 64 vCPUs")
	seed := flag.Int64("seed", 1, "random seed")
	episodes := flag.Int("episodes", 100, "ReASSIgN learning episodes")
	replicas := flag.Int("replicas", 1, "run K parallel learning replicas with split seeds and keep the best plan")
	alpha := flag.Float64("alpha", 0.5, "ReASSIgN learning rate α")
	gamma := flag.Float64("gamma", 1.0, "ReASSIgN discount γ")
	epsilon := flag.Float64("epsilon", 0.1, "ReASSIgN exploitation probability ε (paper convention)")
	fluct := flag.Bool("fluct", true, "enable the cloud fluctuation model")
	autoscale := flag.Int("autoscale", 0, "enable elasticity: grow the fleet up to N VMs (t2.large, 45s boot, 120s idle timeout)")
	spot := flag.Float64("spot", 0, "treat VMs as spot instances with this mean lifetime in seconds (one VM protected)")
	execute := flag.Bool("execute", false, "execute the plan in the concurrent engine after scheduling")
	workers := flag.Int("workers", 0, "execute on the master/worker runtime with this many workers (0: the simulation engine)")
	listen := flag.String("listen", "", "with -workers, serve the master on this TCP address and wait for execworker processes (default: in-process deterministic workers)")
	faultRate := flag.Float64("faultrate", 0, "with -workers, inject worker deaths with this per-event probability")
	failRate := flag.Float64("failrate", 0, "with -workers, inject per-attempt task failures with this probability")
	planOut := flag.String("plan", "", "write the activation→VM plan to this file (TSV, or JSON for .json paths)")
	planIn := flag.String("planin", "", "skip scheduling and load the plan (TSV or JSON) from this file")
	qOut := flag.String("qtable", "", "save the learned Q table (JSON) to this file")
	qIn := flag.String("resume", "", "resume learning from a saved Q table")
	seedProv := flag.String("seedprov", "", "seed the Q table from a provenance store (JSON) before learning")
	provOut := flag.String("prov", "", "write execution provenance (JSON) to this file")
	provCSV := flag.String("provcsv", "", "write execution provenance (CSV) to this file")
	provCSVAttempts := flag.Bool("provcsv-attempts", false, "include per-attempt history rows in -provcsv output")
	ganttOut := flag.String("gantt", "", "write the schedule as an SVG Gantt chart to this file")
	curveOut := flag.String("learncurve", "", "write the per-episode makespan curve (SVG) to this file (ReASSIgN only)")
	ascii := flag.Bool("ascii", false, "print an ASCII Gantt chart of the schedule")
	traceOut := flag.String("trace", "", "write a JSONL telemetry trace (episodes, decisions, kernel counters, spans) to this file")
	metricsOut := flag.String("metrics", "", "write aggregated metrics in Prometheus text format to this file on exit")
	audit := flag.Bool("audit", false, "attach the runtime invariant auditor to every simulation and fail on violations")
	marketGen := flag.String("marketgen", "", "generate a spot-market trace (JSON) for the fleet, write it to this file and exit")
	marketIn := flag.String("market", "", "replay a spot-market trace (JSON): traced prices, preemptions and node health drive plan simulation and execution (learning episodes stay clean)")
	regime := flag.String("regime", "volatile", "market regime for -marketgen: stable|volatile|hostile")
	horizon := flag.Float64("horizon", 3600, "market trace horizon in virtual seconds for -marketgen")
	reactiveOnly := flag.Bool("reactiveonly", false, "with -market and -workers, disable notice-reactive cordon/drain: the master reacts to kills only")
	flag.Parse()

	if *replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", *replicas)
	}

	// Telemetry: a JSONL trace and/or an in-memory aggregator, fanned
	// out behind one sink. Both nil leaves instrumentation disabled.
	var jsonl *telemetry.JSONL
	var agg *telemetry.Aggregator
	var sinks []telemetry.Sink
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		defer f.Close()
		jsonl = telemetry.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	if *metricsOut != "" {
		agg = telemetry.NewAggregator()
		sinks = append(sinks, agg)
	}
	sink := telemetry.Multi(sinks...)

	w, err := loadWorkflow(*daxPath, *seed)
	if err != nil {
		return err
	}
	fleet, err := cloud.FleetTable1(*vcpus)
	if err != nil {
		return err
	}
	if *marketGen != "" {
		rg, ok := market.RegimeByName(*regime)
		if !ok {
			return fmt.Errorf("unknown market regime %q (stable|volatile|hostile)", *regime)
		}
		tr, err := market.Generate(market.DefaultCatalogue(), fleet, rg, *seed, *horizon)
		if err != nil {
			return err
		}
		f, err := os.Create(*marketGen)
		if err != nil {
			return err
		}
		if err := tr.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("market:   %s trace written to %s (%d VMs, %d events, horizon %.0fs)\n",
			tr.Regime, *marketGen, len(tr.Assign), len(tr.Events), tr.Horizon)
		return nil
	}
	var marketPB *market.Playback
	if *marketIn != "" {
		pb, err := market.LoadPlayback(*marketIn, nil)
		if err != nil {
			return err
		}
		marketPB = pb
		fmt.Printf("market:   replaying %s (%s regime, %d events, horizon %.0fs)\n",
			*marketIn, pb.Trace().Regime, len(pb.Events()), pb.Horizon())
	}
	var fm *cloud.FluctuationModel
	if *fluct {
		f := cloud.DefaultFluctuation()
		fm = &f
	}
	cfg := sim.Config{Fluct: fm, Seed: *seed, Market: marketPB}
	if *autoscale > 0 {
		cfg.Autoscale = &sim.Autoscale{
			Type: cloud.T2Large, MaxVMs: *autoscale,
			BootDelay: 45, IdleTimeout: 120, Cooldown: 20,
		}
	}
	if *spot > 0 {
		cfg.Spot = &sim.SpotPolicy{MeanLifetime: *spot, KeepOne: true}
	}
	var aud *invariant.Auditor
	if *audit {
		aud = invariant.New()
		cfg.Hook = aud
	}

	fmt.Printf("workflow: %s (%d activations, %d edges)\n", w.Name, w.Len(), w.Edges())
	fmt.Printf("fleet:    %s (%d VMs, %d vCPUs, $%.4f/h)\n",
		fleet.Name, fleet.Len(), fleet.VCPUs(), fleet.PricePerHour())

	var plan core.Plan
	var makespan float64
	var lastRes *sim.Result
	var learnedTable *rl.Table
	if *planIn != "" {
		p, err := readPlan(*planIn)
		if err != nil {
			return err
		}
		if err := p.Validate(w, fleet); err != nil {
			return err
		}
		// Replay the loaded plan once so the report still shows a
		// simulated makespan.
		res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "loaded", Assign: p.Map()}, cfg)
		if err != nil {
			return err
		}
		plan, makespan, lastRes = p, res.Makespan, res
		fmt.Printf("plan:     loaded from %s\n", *planIn)
	} else if strings.EqualFold(*schedName, "reassign") {
		p := core.DefaultParams()
		p.Alpha, p.Gamma, p.Epsilon = *alpha, *gamma, *epsilon
		opts := []core.Option{core.WithSeed(*seed), core.WithSink(sink)}
		if *qIn != "" {
			tab := rl.NewTable(rand.New(rand.NewSource(*seed)), 1.0)
			if err := tab.LoadFile(*qIn); err != nil {
				return err
			}
			opts = append(opts, core.WithTable(tab))
		}
		if *replicas > 1 {
			opts = append(opts, core.WithReplicas(*replicas))
		}
		if *seedProv != "" {
			ps := provenance.NewStore()
			if err := ps.LoadFile(*seedProv); err != nil {
				return err
			}
			opts = append(opts, core.WithProvenanceSeed(ps))
			fmt.Printf("seed:     Q table seeded from %s (%d records)\n", *seedProv, ps.Len())
		}
		// Learning episodes run market-free: the trace drives plan
		// replay and execution, not the Q-learning environment.
		lcfg := cfg
		lcfg.Market = nil
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet, Params: p, Episodes: *episodes, Sim: lcfg,
		}, opts...)
		if err != nil {
			return err
		}
		var res *core.Result
		var ensemble *core.ReplicaResult
		if *replicas > 1 {
			ensemble, err = l.LearnReplicas()
			if err != nil {
				return err
			}
			res = ensemble.BestResult()
			fmt.Printf("replicas: %d learners in %v wall clock; best is replica %d (seed %d)\n",
				*replicas, ensemble.LearningTime, ensemble.Best, ensemble.Seeds[ensemble.Best])
		} else {
			res, err = l.Learn()
			if err != nil {
				return err
			}
		}
		plan, makespan = res.Plan, res.PlanMakespan
		fmt.Printf("learning: %d episodes in %v (best episode makespan %.2fs)\n",
			len(res.Episodes), res.LearningTime, res.BestEpisodeMakespan)
		if *curveOut != "" {
			xs := make([]float64, len(res.Episodes))
			ys := make([]float64, len(res.Episodes))
			for i, ep := range res.Episodes {
				xs[i] = float64(ep.Episode)
				ys[i] = ep.Makespan
			}
			chart := &plot.Chart{
				Title:  fmt.Sprintf("ReASSIgN learning curve — %s, %d vCPUs", w.Name, fleet.VCPUs()),
				XLabel: "episode", YLabel: "episode makespan (s)",
				Series: []plot.Series{
					{Name: "episode", X: xs, Y: ys},
					{Name: "smoothed", X: xs, Y: plot.Smooth(ys, 5)},
				},
			}
			if err := os.WriteFile(*curveOut, []byte(chart.SVG()), 0o644); err != nil {
				return err
			}
			fmt.Printf("curve:    written to %s\n", *curveOut)
		}
		learnedTable = res.Table
		if ensemble != nil {
			// Use the replica consensus rather than one replica's table:
			// averaged values seed the next execution better.
			learnedTable = ensemble.EnsembleTable(*seed)
		}
		if *qOut != "" {
			if err := learnedTable.SaveFile(*qOut); err != nil {
				return err
			}
			fmt.Printf("q-table:  saved to %s (%d entries)\n", *qOut, learnedTable.Len())
		}
	} else {
		s, err := lookupScheduler(*schedName, *seed)
		if err != nil {
			return err
		}
		scfg := cfg
		scfg.Sink = sink
		res, err := sim.Run(w, fleet, s, scfg)
		if err != nil {
			return err
		}
		if res.State != sim.FinishedOK {
			return fmt.Errorf("simulation ended in state %v", res.State)
		}
		plan, makespan, lastRes = core.NewPlan(res.Plan), res.Makespan, res
	}
	fmt.Printf("plan:     %d activations scheduled, simulated makespan %.3fs (%s)\n",
		plan.Len(), makespan, metrics.FormatDuration(makespan))
	printPlanSummary(plan, fleet)
	if lastRes != nil && lastRes.Market != nil {
		mr := lastRes.Market
		fmt.Printf("market:   %d notices, %d kills, %d degraded, bill $%.4f\n",
			mr.Notices, mr.Kills, mr.Degraded, mr.Cost.Total)
	}

	if *ascii || *ganttOut != "" {
		if lastRes == nil {
			// ReASSIgN path: replay the learned plan once for the chart.
			res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "ReASSIgN", Assign: plan.Map()}, cfg)
			if err != nil {
				return err
			}
			lastRes = res
		}
		chart := gantt.FromResult(lastRes, fleet)
		if *ascii {
			fmt.Print(chart.ASCII(100))
		}
		if *ganttOut != "" {
			if err := os.WriteFile(*ganttOut, []byte(chart.SVG()), 0o644); err != nil {
				return err
			}
			fmt.Printf("gantt:    written to %s\n", *ganttOut)
		}
	}

	if *planOut != "" {
		if err := writePlan(*planOut, w.Name, fleet.Name, makespan, plan); err != nil {
			return err
		}
		fmt.Printf("plan:     written to %s\n", *planOut)
	}

	if *execute {
		store := provenance.NewStore()
		if *workers > 0 {
			if err := runMaster(w, fleet, plan, store, sink, learnedTable,
				*workers, *listen, *faultRate, *failRate, fm, *seed,
				marketPB, *reactiveOnly); err != nil {
				return err
			}
		} else {
			e, err := engine.New(w, fleet, plan,
				engine.WithFluctuation(fm),
				engine.WithSeed(*seed+1000),
				engine.WithStore(store, "cli"),
				engine.WithSink(sink),
			)
			if err != nil {
				return err
			}
			rep, err := e.Execute(context.Background())
			if err != nil {
				return err
			}
			fmt.Printf("executed: %d activations, makespan %.3fs (%s), wall %v, peak workers %d\n",
				len(rep.Tasks), rep.Makespan, metrics.FormatDuration(rep.Makespan), rep.Wall, rep.PeakWorkers)
		}
		if *provOut != "" {
			if err := store.SaveFile(*provOut); err != nil {
				return err
			}
			fmt.Printf("prov:     written to %s (%d records)\n", *provOut, store.Len())
		}
		if *provCSV != "" {
			f, err := os.Create(*provCSV)
			if err != nil {
				return err
			}
			if err := store.WriteCSV(f, *provCSVAttempts); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("provcsv:  written to %s\n", *provCSV)
		}
	}

	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		fmt.Printf("trace:    written to %s\n", *traceOut)
	}
	if agg != nil {
		f, err := os.Create(*metricsOut)
		if err != nil {
			return err
		}
		if err := agg.Snapshot().WriteProm(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("metrics:  written to %s\n", *metricsOut)
	}
	if aud != nil {
		if err := aud.Err(); err != nil {
			for _, v := range aud.Violations() {
				fmt.Fprintf(os.Stderr, "audit: %s\n", v)
			}
			return err
		}
		fmt.Printf("audit:    %d run(s), 0 invariant violations\n", aud.Runs())
	}
	return nil
}

func loadWorkflow(path string, seed int64) (*dag.Workflow, error) {
	if path == "" {
		return trace.Montage50(rand.New(rand.NewSource(seed))), nil
	}
	if strings.HasSuffix(path, ".json") {
		return wfjson.ReadFile(path)
	}
	return dax.ReadFile(path)
}

func lookupScheduler(name string, seed int64) (sim.Scheduler, error) {
	switch strings.ToLower(name) {
	case "heft":
		return &sched.HEFT{}, nil
	case "minmin":
		return sched.MinMin{}, nil
	case "maxmin":
		return sched.MaxMin{}, nil
	case "mct":
		return sched.MCT{}, nil
	case "fcfs":
		return sched.FCFS{}, nil
	case "rr", "roundrobin":
		return &sched.RoundRobin{}, nil
	case "random":
		return &sched.Random{Seed: seed}, nil
	case "dataaware":
		return sched.DataAware{}, nil
	case "cheapfirst":
		return sched.CheapFirst{}, nil
	case "siteaware":
		return sched.SiteAware{}, nil
	case "ga":
		return &sched.GA{Seed: seed}, nil
	case "adaptive":
		return &sched.Adaptive{}, nil
	default:
		return nil, fmt.Errorf("unknown scheduler %q", name)
	}
}

func printPlanSummary(plan core.Plan, fleet *cloud.Fleet) {
	counts := make(map[int]int)
	for _, e := range plan.Entries() {
		counts[e.VM]++
	}
	ids := make([]int, 0, len(counts))
	for id := range counts {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var parts []string
	for _, id := range ids {
		parts = append(parts, fmt.Sprintf("vm%d(%s)=%d", id, fleet.VMs[id].Type.Name, counts[id]))
	}
	fmt.Printf("placement: %s\n", strings.Join(parts, " "))
}

func writePlan(path, workflow, fleet string, makespan float64, plan core.Plan) error {
	if strings.HasSuffix(path, ".json") {
		// The versioned document (package api) — byte-compatible with
		// the schedd daemon's payloads, so a plan written here can be
		// POSTed to /v1/jobs and vice versa.
		doc := api.NewPlanDocument(workflow, fleet, makespan, plan)
		data, err := json.MarshalIndent(doc, "", " ")
		if err != nil {
			return err
		}
		return os.WriteFile(path, append(data, '\n'), 0o644)
	}
	var b strings.Builder
	b.WriteString("activation\tvm\n")
	for _, e := range plan.Entries() {
		fmt.Fprintf(&b, "%s\t%d\n", e.Activation, e.VM)
	}
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// readPlan loads a plan written by writePlan: for .json paths the
// versioned api.PlanDocument (which still decodes the two legacy
// encodings — a bare entry array and a {"activation": vm} object),
// the two-column TSV otherwise.
func readPlan(path string) (core.Plan, error) {
	var plan core.Plan
	if strings.HasSuffix(path, ".json") {
		data, err := os.ReadFile(path)
		if err != nil {
			return plan, err
		}
		var doc api.PlanDocument
		if err := json.Unmarshal(data, &doc); err != nil {
			return plan, fmt.Errorf("plan %s: %w", path, err)
		}
		return doc.Plan, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return plan, err
	}
	defer f.Close()
	m := make(map[string]int)
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || (line == 1 && strings.HasPrefix(text, "activation")) {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 2 {
			return plan, fmt.Errorf("plan %s:%d: want 'activation vm', got %q", path, line, text)
		}
		vm, err := strconv.Atoi(fields[1])
		if err != nil {
			return plan, fmt.Errorf("plan %s:%d: bad VM %q", path, line, fields[1])
		}
		m[fields[0]] = vm
	}
	if err := sc.Err(); err != nil {
		return plan, err
	}
	return core.NewPlan(m), nil
}

// runMaster executes the plan on the master/worker runtime: in-process
// deterministic workers by default, or — with listen non-empty — a TCP
// master that waits for execworker processes to join.
func runMaster(w *dag.Workflow, fleet *cloud.Fleet, plan core.Plan,
	store *provenance.Store, sink telemetry.Sink, table *rl.Table,
	workers int, listen string, faultRate, failRate float64,
	fm *cloud.FluctuationModel, seed int64,
	pb *market.Playback, reactiveOnly bool) error {
	var runner exec.Runner = exec.SimRunner{Fluct: fm, Seed: seed + 2000}
	if failRate > 0 {
		runner = exec.FailingRunner{Inner: runner, Rate: failRate, Seed: seed}
	}
	var tr exec.Transport
	var tcp *exec.TCP
	if listen != "" {
		tcp = &exec.TCP{Addr: listen, Workers: workers}
		if err := tcp.Listen(); err != nil {
			return err
		}
		fmt.Printf("exec:     listening on %s, waiting for %d execworker(s)\n", tcp.ListenAddr(), workers)
		tr = tcp
	} else {
		tr = &exec.InProc{Workers: workers, Runner: runner}
	}
	if faultRate > 0 {
		tr = &exec.Fault{Inner: tr, Rate: faultRate, Seed: seed}
	}
	opts := []exec.Option{exec.WithStore(store, "cli"), exec.WithSink(sink)}
	if pb != nil {
		// Outermost wrapper, so traced notices, kills and health
		// changes interleave with (possibly fault-injected) worker
		// traffic in virtual-time order.
		tr = exec.NewMarketFeed(tr, pb)
		opts = append(opts, exec.WithMarket(pb))
		if reactiveOnly {
			opts = append(opts, exec.WithReactiveOnly())
		}
	}
	if table != nil {
		opts = append(opts, exec.WithReassigner(exec.QTableReassigner{Table: table}))
	}
	m, err := exec.New(w, fleet, plan, tr, opts...)
	if err != nil {
		return err
	}
	rep, err := m.Run(context.Background())
	if rep != nil && rep.Attempts > 0 {
		fmt.Printf("executed: %d/%d activations, makespan %.3fs (%s), wall %v\n",
			rep.Done, rep.Tasks, rep.Makespan, metrics.FormatDuration(rep.Makespan),
			rep.Wall.Round(time.Millisecond))
		fmt.Printf("exec:     %d attempts, %d retries, %d reassigned, %d worker(s) lost, %d abandoned\n",
			rep.Attempts, rep.Retries, rep.Reassigned, rep.WorkerLost, rep.Abandoned)
		if pb != nil {
			fmt.Printf("market:   %d notices, %d kills, %d cordoned, %d remediated, %d degraded, bill $%.4f\n",
				rep.PreemptNotices, rep.Preempted, rep.Cordoned, rep.Remediated, rep.Degraded, rep.Cost)
		}
	}
	if tcp != nil && rep != nil && rep.Done > 0 {
		in, out := tcp.Bytes()
		reads, writes := tcp.Calls()
		fmt.Printf("wire:     %d B in, %d B out (%.1f B/task), %d reads, %d writes\n",
			in, out, float64(in+out)/float64(rep.Done), reads, writes)
	}
	return err
}
