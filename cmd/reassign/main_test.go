package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"reassign/internal/api"
	"reassign/internal/core"
	"reassign/internal/dax"
	"reassign/internal/wfjson"
)

func TestLookupScheduler(t *testing.T) {
	known := []string{
		"heft", "minmin", "maxmin", "mct", "fcfs", "rr", "roundrobin",
		"random", "dataaware", "cheapfirst", "siteaware", "ga",
	}
	for _, name := range known {
		s, err := lookupScheduler(name, 1)
		if err != nil {
			t.Errorf("lookupScheduler(%q): %v", name, err)
			continue
		}
		if s == nil || s.Name() == "" {
			t.Errorf("lookupScheduler(%q) returned %v", name, s)
		}
	}
	// Case-insensitive.
	if _, err := lookupScheduler("HEFT", 1); err != nil {
		t.Errorf("upper-case name rejected: %v", err)
	}
	if _, err := lookupScheduler("nope", 1); err == nil {
		t.Error("unknown scheduler accepted")
	}
}

func TestLoadWorkflowDefaultAndFiles(t *testing.T) {
	w, err := loadWorkflow("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 50 {
		t.Fatalf("default workflow has %d activations", w.Len())
	}

	dir := t.TempDir()
	daxPath := filepath.Join(dir, "wf.dax")
	if err := dax.WriteFile(daxPath, w); err != nil {
		t.Fatal(err)
	}
	fromDax, err := loadWorkflow(daxPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fromDax.Len() != 50 {
		t.Fatalf("dax load has %d activations", fromDax.Len())
	}

	jsonPath := filepath.Join(dir, "wf.json")
	if err := wfjson.WriteFile(jsonPath, w); err != nil {
		t.Fatal(err)
	}
	fromJSON, err := loadWorkflow(jsonPath, 1)
	if err != nil {
		t.Fatal(err)
	}
	if fromJSON.Len() != 50 {
		t.Fatalf("json load has %d activations", fromJSON.Len())
	}

	if _, err := loadWorkflow(filepath.Join(dir, "missing.dax"), 1); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestWritePlan(t *testing.T) {
	path := filepath.Join(t.TempDir(), "plan.tsv")
	if err := writePlan(path, "wf", "fleet", 1, core.NewPlan(map[string]int{"b": 2, "a": 1})); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 3 {
		t.Fatalf("lines = %v", lines)
	}
	if lines[0] != "activation\tvm" || lines[1] != "a\t1" || lines[2] != "b\t2" {
		t.Fatalf("plan file content: %v", lines)
	}
}

func TestPlanRoundTripTSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	plan := core.NewPlan(map[string]int{"ID00001": 3, "ID00000": 8, "ID00002": 0})
	for _, name := range []string{"plan.tsv", "plan.json"} {
		path := filepath.Join(dir, name)
		if err := writePlan(path, "wf", "fleet", 12.5, plan); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		back, err := readPlan(path)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if back.Len() != 3 {
			t.Fatalf("%s: %d entries", name, back.Len())
		}
		for _, e := range plan.Entries() {
			if vm, ok := back.VM(e.Activation); !ok || vm != e.VM {
				t.Fatalf("%s: %s → %d (ok %v), want %d", name, e.Activation, vm, ok, e.VM)
			}
		}
	}
	// JSON output is the versioned document form (package api).
	data, err := os.ReadFile(filepath.Join(dir, "plan.json"))
	if err != nil {
		t.Fatal(err)
	}
	var doc api.PlanDocument
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.SchemaVersion != api.SchemaVersion || doc.Workflow != "wf" || doc.MakespanSeconds != 12.5 {
		t.Fatalf("plan.json document header: %+v", doc)
	}

	// Legacy files still load: the bare entry array and the
	// {"activation": vm} map the CLI wrote before the schema existed.
	legacyArr := filepath.Join(dir, "legacy_arr.json")
	arr, _ := json.Marshal(plan)
	if err := os.WriteFile(legacyArr, arr, 0o644); err != nil {
		t.Fatal(err)
	}
	legacyMap := filepath.Join(dir, "legacy_map.json")
	if err := os.WriteFile(legacyMap, []byte(`{"ID00000":8,"ID00001":3,"ID00002":0}`), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{legacyArr, legacyMap} {
		back, err := readPlan(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if back.Len() != 3 {
			t.Fatalf("%s: %d entries", p, back.Len())
		}
	}
	if _, err := readPlan(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Fatal("missing plan accepted")
	}
}
