// Command mkdax generates synthetic Pegasus DAX workflow files shaped
// like the published Workflow Generator traces.
//
// Usage:
//
//	mkdax -family montage -size 50 -seed 1 -out montage50.dax
//	mkdax -family cybershake -size 100 -out -        # write to stdout
//	mkdax -list                                      # list families
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"reassign/internal/dax"
	"reassign/internal/trace"
	"reassign/internal/wfjson"
)

func main() {
	family := flag.String("family", "montage", "workflow family")
	size := flag.Int("size", 50, "approximate number of activations")
	seed := flag.Int64("seed", 1, "random seed")
	out := flag.String("out", "-", "output path ('-' for stdout)")
	format := flag.String("format", "dax", "output format: dax (Pegasus XML) or wfjson (WfCommons JSON)")
	list := flag.Bool("list", false, "list supported families and exit")
	flag.Parse()

	if *list {
		for _, f := range trace.Families() {
			fmt.Println(f)
		}
		return
	}
	gen := trace.Named(*family)
	if gen == nil {
		fmt.Fprintf(os.Stderr, "mkdax: unknown family %q (try -list)\n", *family)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seed))
	var w = gen(rng, *size)
	if *family == "montage" && *size == 50 {
		// Exact 50-node composition used in the paper.
		w = trace.Montage50(rand.New(rand.NewSource(*seed)))
	}
	if err := w.Validate(); err != nil {
		fmt.Fprintf(os.Stderr, "mkdax: %v\n", err)
		os.Exit(1)
	}
	write := dax.Write
	writeFile := dax.WriteFile
	switch *format {
	case "dax":
	case "wfjson":
		write = wfjson.Write
		writeFile = wfjson.WriteFile
	default:
		fmt.Fprintf(os.Stderr, "mkdax: unknown format %q\n", *format)
		os.Exit(2)
	}
	if *out == "-" {
		if err := write(os.Stdout, w); err != nil {
			fmt.Fprintf(os.Stderr, "mkdax: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if err := writeFile(*out, w); err != nil {
		fmt.Fprintf(os.Stderr, "mkdax: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "mkdax: wrote %s (%d activations, %d edges)\n", *out, w.Len(), w.Edges())
}
