// Command schedd runs the scheduler service: a daemon accepting
// workflow scheduling jobs over a versioned HTTP/JSON API and serving
// learned plans, provenance and Prometheus metrics. See
// internal/schedd for the API surface.
//
// Usage:
//
//	schedd [-listen :8425] [-workers N] [-queue N] [-episodes N] [-pprof]
//
// The daemon shuts down cleanly on SIGINT/SIGTERM: in-flight jobs are
// canceled, workers drained, and "schedd: shutdown clean" printed.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"reassign/internal/schedd"
)

func main() {
	listen := flag.String("listen", ":8425", "listen address (use :0 for an ephemeral port)")
	workers := flag.Int("workers", 0, "concurrent job executors (default GOMAXPROCS)")
	queue := flag.Int("queue", 256, "admission queue depth; beyond it submissions get 429")
	episodes := flag.Int("episodes", 0, "default episode budget for submissions that leave it unset (default 100)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ (off by default: profiling endpoints expose internals and cost CPU when scraped)")
	flag.Parse()

	if err := run(*listen, *pprofOn, schedd.Config{
		Workers:         *workers,
		QueueDepth:      *queue,
		DefaultEpisodes: *episodes,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "schedd:", err)
		os.Exit(1)
	}
}

func run(listen string, pprofOn bool, cfg schedd.Config) error {
	s := schedd.New(cfg)
	s.Start()

	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return err
	}
	fmt.Printf("schedd: listening on %s\n", ln.Addr())

	handler := s.Handler()
	if pprofOn {
		// Mounted explicitly rather than via the package's init side
		// effect: the API handler is not the default mux, so a blank
		// import alone would register the endpoints nowhere reachable.
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		fmt.Println("schedd: pprof enabled at /debug/pprof/")
	}
	srv := &http.Server{Handler: handler}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		fmt.Printf("schedd: %v, draining\n", sig)
	case err := <-errc:
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("draining workers: %w", err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		return fmt.Errorf("closing listener: %w", err)
	}
	fmt.Println("schedd: shutdown clean")
	return nil
}
