// Command benchguard is the CI benchmark regression gate: it re-runs
// the headline BenchmarkLearning100Episodes trajectory and compares it
// against the committed baseline (BENCH_core.json), failing when
// allocs/op regress by more than the threshold.
//
// Allocation counts are deterministic, which makes them an honest
// regression signal on shared CI runners; wall-clock time is reported
// but only warned about, since runner noise would make a hard time
// gate flaky.
//
// Usage:
//
//	benchguard [-baseline BENCH_core.json] [-threshold 0.10] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

const benchName = "BenchmarkLearning100Episodes"

// learning100 is the guarded benchmark: one full 100-episode ReASSIgN
// learning run per op, matching BenchmarkLearning100Episodes at the
// repository root (telemetry disabled — the zero-cost default).
func learning100(b *testing.B) {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		b.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 100,
			Sim: sim.Config{Fluct: &fluct},
		}, core.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Learn(); err != nil {
			b.Fatal(err)
		}
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	testing.Init()
	baselinePath := flag.String("baseline", "BENCH_core.json", "baseline benchmark JSON")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated allocs/op regression (fraction)")
	benchtime := flag.String("benchtime", "1s", "minimum run time for the benchmark")
	flag.Parse()

	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		return err
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var baseline map[string]entry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	base, ok := baseline[benchName]
	if !ok {
		return fmt.Errorf("baseline %s has no %s entry", *baselinePath, benchName)
	}
	if base.AllocsPerOp <= 0 {
		return fmt.Errorf("baseline allocs/op is %d; refusing to gate against it", base.AllocsPerOp)
	}

	r := testing.Benchmark(learning100)
	allocs := r.AllocsPerOp()
	nsPerOp := float64(r.T.Nanoseconds()) / float64(r.N)

	allocRatio := float64(allocs)/float64(base.AllocsPerOp) - 1
	timeRatio := nsPerOp/base.NsPerOp - 1
	fmt.Printf("%s: %d allocs/op (baseline %d, %+.1f%%), %.2f ms/op (baseline %.2f, %+.1f%%), %d iterations\n",
		benchName, allocs, base.AllocsPerOp, 100*allocRatio,
		nsPerOp/1e6, base.NsPerOp/1e6, 100*timeRatio, r.N)

	if allocRatio > *threshold {
		return fmt.Errorf("allocs/op regressed %.1f%% (limit %.0f%%): %d vs baseline %d",
			100*allocRatio, 100**threshold, allocs, base.AllocsPerOp)
	}
	if timeRatio > 3**threshold {
		fmt.Printf("warning: time/op drifted %+.1f%% — not failing (runner noise), but worth a look\n", 100*timeRatio)
	}
	fmt.Println("benchguard: OK")
	return nil
}
