// Command benchguard is the CI benchmark regression gate: it re-runs
// the governed benchmark suite (internal/benchsuite) and compares it
// against the committed baseline (BENCH_core.json), failing when any
// shared benchmark's allocs/op or bytes/op regress by more than
// their thresholds.
//
// Only benchmarks present in BOTH the baseline and the current suite
// are gated: a benchmark added to the suite before the baseline is
// regenerated is reported and skipped (new code must not fail the
// gate for existing), and a baseline entry for a since-removed
// benchmark is noted and ignored.
//
// Allocation counts and allocated bytes are deterministic, which
// makes them an honest regression signal on shared CI runners
// (bytes/op gets a looser default threshold since map growth
// granularity makes it coarser than allocs/op); wall-clock time is
// reported but only warned about, since runner noise would make a
// hard time gate flaky.
//
// Usage:
//
//	benchguard [-baseline BENCH_core.json] [-threshold 0.10] [-bytes-threshold 0.15] [-benchtime 1s]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"

	"reassign/internal/benchsuite"
)

// looseGate reports whether a benchmark's alloc/bytes thresholds are
// tripled: the loopback-TCP exec tiers run real goroutines over real
// sockets, so their counts wobble with scheduler interleaving (a
// heartbeat that lands mid-run, a flusher batch boundary) in a way
// the deterministic tiers' never do. Time is already warn-only.
func looseGate(name string) bool {
	return strings.HasPrefix(name, "BenchmarkExecThroughput/tcp-")
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	testing.Init()
	baselinePath := flag.String("baseline", "BENCH_core.json", "baseline benchmark JSON")
	threshold := flag.Float64("threshold", 0.10, "maximum tolerated allocs/op regression (fraction)")
	bytesThreshold := flag.Float64("bytes-threshold", 0.15, "maximum tolerated bytes/op regression (fraction)")
	benchtime := flag.String("benchtime", "1s", "minimum run time per benchmark")
	flag.Parse()

	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		return err
	}

	data, err := os.ReadFile(*baselinePath)
	if err != nil {
		return fmt.Errorf("baseline: %w", err)
	}
	var baseline map[string]benchsuite.Entry
	if err := json.Unmarshal(data, &baseline); err != nil {
		return fmt.Errorf("baseline: %w", err)
	}

	suite := benchsuite.Suite()
	inSuite := make(map[string]bool, len(suite))
	gated := 0
	var failures []error
	for _, bench := range suite {
		inSuite[bench.Name] = true
		base, ok := baseline[bench.Name]
		if !ok {
			fmt.Printf("%s: new benchmark, not in baseline — skipping (regenerate %s to gate it)\n",
				bench.Name, *baselinePath)
			continue
		}
		gated++
		allocLimit, bytesLimit := *threshold, *bytesThreshold
		if looseGate(bench.Name) {
			allocLimit, bytesLimit = 3*allocLimit, 3*bytesLimit
		}
		r := testing.Benchmark(bench.Fn)
		fresh := benchsuite.Record(r)

		if base.AllocsPerOp <= 0 {
			// A zero-alloc baseline has no meaningful ratio: any fresh
			// allocation is a regression, none is a pass.
			fmt.Printf("%s: %d allocs/op (baseline 0), %d B/op, %.2f ms/op, %d iterations\n",
				bench.Name, fresh.AllocsPerOp, fresh.BytesPerOp, fresh.NsPerOp/1e6, fresh.Iterations)
			if fresh.AllocsPerOp > 0 {
				failures = append(failures, fmt.Errorf("%s: allocates (%d allocs/op) against a zero-alloc baseline",
					bench.Name, fresh.AllocsPerOp))
			}
			failures = gateBytes(failures, bench.Name, base, fresh, bytesLimit)
			continue
		}

		allocRatio := float64(fresh.AllocsPerOp)/float64(base.AllocsPerOp) - 1
		timeRatio := fresh.NsPerOp/base.NsPerOp - 1
		fmt.Printf("%s: %d allocs/op (baseline %d, %+.1f%%), %d B/op (baseline %d), %.2f ms/op (baseline %.2f, %+.1f%%), %d iterations\n",
			bench.Name, fresh.AllocsPerOp, base.AllocsPerOp, 100*allocRatio,
			fresh.BytesPerOp, base.BytesPerOp,
			fresh.NsPerOp/1e6, base.NsPerOp/1e6, 100*timeRatio, fresh.Iterations)

		if allocRatio > allocLimit {
			failures = append(failures, fmt.Errorf("%s: allocs/op regressed %.1f%% (limit %.0f%%): %d vs baseline %d",
				bench.Name, 100*allocRatio, 100*allocLimit, fresh.AllocsPerOp, base.AllocsPerOp))
		}
		failures = gateBytes(failures, bench.Name, base, fresh, bytesLimit)
		if timeRatio > 3**threshold {
			fmt.Printf("warning: %s time/op drifted %+.1f%% — not failing (runner noise), but worth a look\n",
				bench.Name, 100*timeRatio)
		}
	}
	for name := range baseline {
		if !inSuite[name] {
			fmt.Printf("%s: baseline entry has no suite benchmark — ignoring (stale baseline?)\n", name)
		}
	}
	if gated == 0 {
		return fmt.Errorf("no benchmark shared between the suite and %s; regenerate the baseline", *baselinePath)
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", f)
		}
		return fmt.Errorf("%d of %d gated benchmarks regressed", len(failures), gated)
	}
	fmt.Println("benchguard: OK")
	return nil
}

// gateBytes appends a failure when fresh bytes/op regress past the
// threshold. Like the alloc gate, a zero-byte baseline tolerates no
// fresh allocation at all.
func gateBytes(failures []error, name string, base, fresh benchsuite.Entry, threshold float64) []error {
	if base.BytesPerOp <= 0 {
		if fresh.BytesPerOp > 0 {
			failures = append(failures, fmt.Errorf("%s: allocates %d B/op against a zero-byte baseline",
				name, fresh.BytesPerOp))
		}
		return failures
	}
	ratio := float64(fresh.BytesPerOp)/float64(base.BytesPerOp) - 1
	if ratio > threshold {
		failures = append(failures, fmt.Errorf("%s: bytes/op regressed %.1f%% (limit %.0f%%): %d vs baseline %d",
			name, 100*ratio, 100*threshold, fresh.BytesPerOp, base.BytesPerOp))
	}
	return failures
}
