package engine

import (
	"context"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/telemetry"
)

// fanWorkflow builds n independent tasks, so every worker runs — and
// emits spans — concurrently.
func fanWorkflow(n int) *dag.Workflow {
	w := dag.New("fan")
	for i := 0; i < n; i++ {
		w.MustAdd(string(rune('a'+i)), "x", 5)
	}
	return w
}

// TestExecuteConcurrentSink drives the engine with an aggregating sink
// while every worker goroutine emits spans in parallel. Run under
// `make race` this is the data-race proof for the telemetry layer.
func TestExecuteConcurrentSink(t *testing.T) {
	const n = 12
	w := fanWorkflow(n)
	fleet := cloud.MustFleet("pool", []cloud.VMType{cloud.T22XLarge}, []int{2})
	plan := make(map[string]int, n)
	for i, a := range w.Activations() {
		plan[a.ID] = i % 2
	}
	agg := telemetry.NewAggregator()
	e, err := New(w, fleet, core.NewPlan(plan),
		engineOpts(telemetry.Multi(agg, telemetry.NewJSONL(discardWriter{})))...)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	s := agg.Snapshot()
	if s.Spans != n {
		t.Errorf("Spans = %d, want %d", s.Spans, n)
	}
	if s.EngineRuns != 1 {
		t.Errorf("EngineRuns = %d, want 1", s.EngineRuns)
	}
	if s.PeakWorkers < 2 || s.PeakWorkers != rep.PeakWorkers {
		t.Errorf("PeakWorkers = %d (report %d), want ≥ 2 and equal", s.PeakWorkers, rep.PeakWorkers)
	}
	if s.BusySeconds <= 0 {
		t.Errorf("BusySeconds = %v", s.BusySeconds)
	}
	if s.EngineMakespan.Mean != rep.Makespan {
		t.Errorf("aggregated makespan %v != report %v", s.EngineMakespan.Mean, rep.Makespan)
	}
}

func engineOpts(sink telemetry.Sink) []Option {
	return []Option{WithTimeScale(1e-3), WithSink(sink)}
}

type discardWriter struct{}

func (discardWriter) Write(p []byte) (int, error) { return len(p), nil }

// TestExecutePeakWorkersSerial pins the occupancy gauge's floor: a
// two-task chain can never have more than one busy worker.
func TestExecutePeakWorkersSerial(t *testing.T) {
	w := dag.New("chain")
	w.MustAdd("a", "x", 5)
	w.MustAdd("b", "x", 5)
	w.MustDep("a", "b")
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T22XLarge}, []int{1})
	e, err := New(w, fleet, planAllOn(w, 0), WithTimeScale(1e-3))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.PeakWorkers != 1 {
		t.Errorf("PeakWorkers = %d, want 1 for a serial chain", rep.PeakWorkers)
	}
}

func TestNewValidation(t *testing.T) {
	w := fanWorkflow(2)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T22XLarge}, []int{1})
	if _, err := New(nil, fleet, planAllOn(w, 0)); err == nil {
		t.Error("nil workflow accepted")
	}
	if _, err := New(w, nil, planAllOn(w, 0)); err == nil {
		t.Error("nil fleet accepted")
	}
	if _, err := New(w, fleet, core.Plan{}); err == nil {
		t.Error("empty plan accepted")
	}
	if _, err := New(w, fleet, core.NewPlan(map[string]int{"a": 7, "b": 0})); err == nil {
		t.Error("out-of-range VM accepted")
	}
	if _, err := New(w, fleet, planAllOn(w, 0), WithTimeScale(0)); err == nil {
		t.Error("zero time scale accepted")
	}
	if _, err := New(w, fleet, planAllOn(w, 0), WithRunner(nil)); err == nil {
		t.Error("nil runner accepted")
	}
}
