// Package engine is the SciCumulus-RL execution stage (Figure 1):
// given the scheduling plan produced in the simulation stage, it
// executes the workflow with real concurrency — a master goroutine
// coordinating one worker per vCPU of every deployed VM, the Go
// analogue of SCMaster driving MPI SCSlaves — while recording
// provenance for future learning.
//
// The "cloud" under the engine is synthetic: each activation's
// duration is its nominal runtime on the planned VM perturbed by a
// cloud.FluctuationModel (multi-tenancy noise, micro-instance
// throttling, migration pauses). Durations are pre-drawn
// deterministically from a seed, so a run's makespan is reproducible
// up to goroutine-scheduling jitter. Virtual seconds are mapped to
// wall time by TimeScale, letting tests and benchmarks run a
// 400-virtual-second Montage in tens of milliseconds without changing
// the concurrency structure.
package engine

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/telemetry"
)

// Runner executes one activation for its computed duration. The
// default SleepRunner sleeps; tests substitute instant runners, and a
// real deployment would invoke the actual program.
type Runner interface {
	Run(ctx context.Context, act *dag.Activation, vm *cloud.VM, d time.Duration) error
}

// SleepRunner blocks for the activation's duration (or until the
// context is canceled).
type SleepRunner struct{}

// Run implements Runner.
func (SleepRunner) Run(ctx context.Context, _ *dag.Activation, _ *cloud.VM, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Engine executes one plan.
//
// Construct Engines with New, which validates the plan against the
// workflow and fleet up front.
//
// Deprecated: constructing an Engine as a struct literal still works
// in this release but will lose exported fields in the next one; use
// New.
type Engine struct {
	Workflow *dag.Workflow
	Fleet    *cloud.Fleet
	// Plan assigns every activation to a VM (see core.Plan).
	Plan core.Plan
	// Fluct perturbs nominal durations; nil executes nominal times.
	Fluct *cloud.FluctuationModel
	// Seed draws the per-activation fluctuations.
	Seed int64
	// TimeScale is wall seconds per virtual second (default 1e-4).
	TimeScale float64
	// Runner executes activations (default SleepRunner).
	Runner Runner
	// Store, when non-nil, receives provenance records.
	Store *provenance.Store
	// RunID labels provenance records (default "run").
	RunID string
	// Sink, when non-nil, receives a SpanEvent per executed activation
	// (emitted concurrently from the worker goroutines) and one
	// EngineRunEvent per Execute.
	Sink telemetry.Sink
}

// TaskReport is the engine's per-activation outcome, in virtual
// seconds from run start.
type TaskReport struct {
	TaskID   string
	Activity string
	VMID     int
	ReadyAt  float64
	StartAt  float64
	FinishAt float64
}

// Report summarises one execution.
type Report struct {
	// Makespan is the total execution time in virtual seconds — the
	// paper's Table IV quantity.
	Makespan float64
	// Wall is the actual wall-clock duration.
	Wall time.Duration
	// Tasks holds per-activation reports sorted by finish time.
	Tasks []TaskReport
	// PerVM counts activations executed per VM ID.
	PerVM map[int]int
	// PeakWorkers is the maximum number of concurrently busy workers
	// observed during the run — the engine's occupancy high-water mark.
	PeakWorkers int
}

type completion struct {
	task *dag.Activation
	rep  TaskReport
}

// Execute runs the plan to completion (or ctx cancellation).
func (e *Engine) Execute(ctx context.Context) (*Report, error) {
	if e.Workflow == nil || e.Fleet == nil {
		return nil, fmt.Errorf("engine: workflow and fleet required")
	}
	if err := e.Workflow.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	vmByID := make(map[int]*cloud.VM, e.Fleet.Len())
	for _, vm := range e.Fleet.VMs {
		vmByID[vm.ID] = vm
	}
	// planVM resolves activation index → VM ID once, so the hot
	// enqueue path skips the plan lookup.
	planVM := make([]int, e.Workflow.Len())
	for _, a := range e.Workflow.Activations() {
		vmID, ok := e.Plan.VM(a.ID)
		if !ok {
			return nil, fmt.Errorf("engine: plan misses activation %s", a.ID)
		}
		if _, ok := vmByID[vmID]; !ok {
			return nil, fmt.Errorf("engine: plan maps %s to unknown VM %d", a.ID, vmID)
		}
		planVM[a.Index] = vmID
	}
	scale := e.TimeScale
	if scale <= 0 {
		scale = 1e-4
	}
	runner := e.Runner
	if runner == nil {
		runner = SleepRunner{}
	}
	runID := e.RunID
	if runID == "" {
		runID = "run"
	}

	// Pre-draw every activation's duration deterministically, in
	// index order, so concurrency does not change the outcome.
	rng := rand.New(rand.NewSource(e.Seed))
	durations := make([]float64, e.Workflow.Len())
	for _, a := range e.Workflow.Activations() {
		vm := vmByID[planVM[a.Index]]
		d := a.Runtime / vm.Type.Speed
		if e.Fluct != nil {
			d = e.Fluct.Apply(rng, vm, d)
		}
		durations[a.Index] = d
	}

	// One queue and one worker pool per VM.
	queues := make(map[int]chan *dag.Activation, e.Fleet.Len())
	for _, vm := range e.Fleet.VMs {
		queues[vm.ID] = make(chan *dag.Activation, e.Workflow.Len())
	}
	done := make(chan completion, e.Workflow.Len())
	start := time.Now()
	virtualNow := func() float64 { return time.Since(start).Seconds() / scale }

	// readyAt must be written before the task is enqueued and read by
	// the worker; guard with a mutex (master and workers race).
	var mu sync.Mutex
	readyAt := make([]float64, e.Workflow.Len())

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Occupancy: workers bump busy around each activation and race to
	// raise peak, so PeakWorkers reflects true concurrent occupancy.
	var busy, peak int32
	var wg sync.WaitGroup
	worker := 0
	for _, vm := range e.Fleet.VMs {
		vm := vm
		for s := 0; s < vm.Type.VCPUs; s++ {
			wg.Add(1)
			widx := worker
			worker++
			go func() {
				defer wg.Done()
				for {
					select {
					case <-wctx.Done():
						return
					case a, ok := <-queues[vm.ID]:
						if !ok {
							return
						}
						mu.Lock()
						ready := readyAt[a.Index]
						mu.Unlock()
						n := atomic.AddInt32(&busy, 1)
						for {
							p := atomic.LoadInt32(&peak)
							if n <= p || atomic.CompareAndSwapInt32(&peak, p, n) {
								break
							}
						}
						st := virtualNow()
						err := runner.Run(wctx, a, vm, time.Duration(durations[a.Index]*scale*float64(time.Second)))
						atomic.AddInt32(&busy, -1)
						if err != nil {
							return // canceled
						}
						fin := virtualNow()
						if e.Sink != nil {
							e.Sink.Emit(telemetry.SpanEvent{
								Task: a.ID, Activity: a.Activity, VM: vm.ID,
								Worker: widx, Start: st, Finish: fin,
							})
						}
						select {
						case done <- completion{task: a, rep: TaskReport{
							TaskID: a.ID, Activity: a.Activity, VMID: vm.ID,
							ReadyAt: ready, StartAt: st, FinishAt: fin,
						}}:
						case <-wctx.Done():
							return
						}
					}
				}
			}()
		}
	}

	// Master: release roots, then feed children as parents finish.
	waiting := make([]int, e.Workflow.Len())
	enqueue := func(a *dag.Activation) {
		mu.Lock()
		readyAt[a.Index] = virtualNow()
		mu.Unlock()
		queues[planVM[a.Index]] <- a
	}
	for _, a := range e.Workflow.Activations() {
		waiting[a.Index] = len(a.Parents())
		if waiting[a.Index] == 0 {
			enqueue(a)
		}
	}

	report := &Report{PerVM: make(map[int]int)}
	remaining := e.Workflow.Len()
	for remaining > 0 {
		select {
		case <-ctx.Done():
			cancel()
			wg.Wait()
			return nil, ctx.Err()
		case c := <-done:
			report.Tasks = append(report.Tasks, c.rep)
			report.PerVM[c.rep.VMID]++
			remaining--
			for _, ch := range c.task.Children() {
				waiting[ch.Index]--
				if waiting[ch.Index] == 0 {
					enqueue(ch)
				}
			}
			if e.Store != nil {
				e.Store.Add(provenance.Execution{
					WorkflowName: e.Workflow.Name,
					RunID:        runID,
					TaskID:       c.rep.TaskID,
					Activity:     c.rep.Activity,
					VMID:         c.rep.VMID,
					VMType:       vmByID[c.rep.VMID].Type.Name,
					ReadyAt:      c.rep.ReadyAt,
					StartAt:      c.rep.StartAt,
					FinishAt:     c.rep.FinishAt,
					Attempts:     1,
					Success:      true,
				})
			}
		}
	}
	cancel()
	wg.Wait()

	report.Wall = time.Since(start)
	report.Makespan = report.Wall.Seconds() / scale
	report.PeakWorkers = int(atomic.LoadInt32(&peak))
	sort.Slice(report.Tasks, func(i, j int) bool {
		return report.Tasks[i].FinishAt < report.Tasks[j].FinishAt
	})
	if e.Sink != nil {
		e.Sink.Emit(telemetry.EngineRunEvent{
			Makespan:    report.Makespan,
			WallSeconds: report.Wall.Seconds(),
			Tasks:       len(report.Tasks),
			PeakWorkers: report.PeakWorkers,
		})
	}
	return report, nil
}

// Utilisation returns, per VM ID, the fraction of the run's makespan
// its executed activations kept busy, normalised by the VM's slot
// count — 1.0 means every slot was busy from start to finish.
func (r *Report) Utilisation(fleet *cloud.Fleet) map[int]float64 {
	out := make(map[int]float64)
	if r.Makespan <= 0 {
		return out
	}
	slots := make(map[int]int, fleet.Len())
	for _, vm := range fleet.VMs {
		slots[vm.ID] = vm.Type.VCPUs
	}
	busy := make(map[int]float64)
	for _, t := range r.Tasks {
		busy[t.VMID] += t.FinishAt - t.StartAt
	}
	for id, b := range busy {
		n := slots[id]
		if n < 1 {
			n = 1
		}
		out[id] = b / (r.Makespan * float64(n))
	}
	return out
}
