package engine_test

import (
	"context"
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/engine"
)

// Example executes a two-step plan with real goroutine concurrency,
// compressed 1000× in time.
func Example() {
	w := dag.New("demo")
	w.MustAdd("build", "compile", 30)
	w.MustAdd("test", "verify", 20)
	w.MustDep("build", "test")

	fleet := cloud.MustFleet("ci", []cloud.VMType{cloud.T2Large}, []int{1})
	e, _ := engine.New(w, fleet, core.NewPlan(map[string]int{"build": 0, "test": 0}),
		engine.WithTimeScale(1e-3)) // 1 virtual second = 1 ms wall clock
	rep, _ := e.Execute(context.Background())
	fmt.Println("tasks executed:", len(rep.Tasks))
	fmt.Println("finished last:", rep.Tasks[len(rep.Tasks)-1].TaskID)
	fmt.Println("makespan ≈ 50s:", rep.Makespan > 49 && rep.Makespan < 60)
	// Output:
	// tasks executed: 2
	// finished last: test
	// makespan ≈ 50s: true
}
