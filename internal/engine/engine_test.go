package engine

import (
	"context"
	"math/rand"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// planAllOn returns a plan mapping every activation to one VM.
func planAllOn(w *dag.Workflow, vm int) core.Plan {
	p := make(map[string]int, w.Len())
	for _, a := range w.Activations() {
		p[a.ID] = vm
	}
	return core.NewPlan(p)
}

func TestExecuteChainRespectsOrder(t *testing.T) {
	w := dag.New("chain")
	w.MustAdd("a", "x", 10)
	w.MustAdd("b", "x", 10)
	w.MustDep("a", "b")
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T22XLarge}, []int{1})
	e := &Engine{Workflow: w, Fleet: fleet, Plan: planAllOn(w, 0), TimeScale: 1e-3}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != 2 {
		t.Fatalf("tasks = %d", len(rep.Tasks))
	}
	var aFin, bStart float64
	for _, tr := range rep.Tasks {
		if tr.TaskID == "a" {
			aFin = tr.FinishAt
		}
		if tr.TaskID == "b" {
			bStart = tr.StartAt
		}
	}
	if bStart < aFin-1 { // 1 virtual second of scheduling slack
		t.Fatalf("b started at %v before a finished at %v", bStart, aFin)
	}
	// 20 virtual seconds nominal; allow generous overhead.
	if rep.Makespan < 19 || rep.Makespan > 60 {
		t.Fatalf("makespan = %v, want ≈20", rep.Makespan)
	}
	if rep.PerVM[0] != 2 {
		t.Fatalf("PerVM = %v", rep.PerVM)
	}
}

func TestExecuteParallelOverlaps(t *testing.T) {
	// 8 independent 10s tasks on one 8-slot VM: ≈10s, not 80.
	w := dag.New("par")
	for i := 0; i < 8; i++ {
		w.MustAdd(string(rune('a'+i)), "x", 10)
	}
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T22XLarge}, []int{1})
	e := &Engine{Workflow: w, Fleet: fleet, Plan: planAllOn(w, 0), TimeScale: 1e-3}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan > 40 {
		t.Fatalf("makespan = %v; tasks did not overlap", rep.Makespan)
	}
}

func TestExecuteSerialisesOnSingleSlot(t *testing.T) {
	w := dag.New("par")
	for i := 0; i < 4; i++ {
		w.MustAdd(string(rune('a'+i)), "x", 10)
	}
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	e := &Engine{Workflow: w, Fleet: fleet, Plan: planAllOn(w, 0), TimeScale: 1e-3}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan < 39 {
		t.Fatalf("makespan = %v; 4 tasks on 1 slot must serialise to ≈40", rep.Makespan)
	}
}

func TestExecutePlanValidation(t *testing.T) {
	w := dag.New("w")
	w.MustAdd("a", "x", 1)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	if _, err := (&Engine{Workflow: w, Fleet: fleet, Plan: core.Plan{}}).Execute(context.Background()); err == nil {
		t.Fatal("incomplete plan accepted")
	}
	if _, err := (&Engine{Workflow: w, Fleet: fleet, Plan: core.NewPlan(map[string]int{"a": 9})}).Execute(context.Background()); err == nil {
		t.Fatal("unknown VM accepted")
	}
	if _, err := (&Engine{}).Execute(context.Background()); err == nil {
		t.Fatal("nil workflow accepted")
	}
}

func TestExecuteRecordsProvenance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage(rng, 4, 2)
	fleet, _ := cloud.FleetTable1(16)
	res, err := sim.Run(w, fleet, &sched.HEFT{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore()
	e := &Engine{
		Workflow: w, Fleet: fleet, Plan: core.NewPlan(res.Plan),
		TimeScale: 1e-5, Store: store, RunID: "test-run",
	}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != w.Len() {
		t.Fatalf("executed %d of %d", len(rep.Tasks), w.Len())
	}
	if store.Len() != w.Len() {
		t.Fatalf("provenance has %d records", store.Len())
	}
	recs := store.ByRun("test-run")
	if len(recs) != w.Len() {
		t.Fatalf("ByRun = %d", len(recs))
	}
	for _, r := range recs {
		if !r.Success || r.VMType == "" {
			t.Fatalf("bad record %+v", r)
		}
	}
	if store.Makespan("test-run") <= 0 {
		t.Fatal("provenance makespan not positive")
	}
}

func TestExecuteWithFluctuationThrottlesMicro(t *testing.T) {
	// A plan running everything on a micro VM under full throttling
	// takes ≈ factor× the unthrottled plan.
	w := dag.New("w")
	w.MustAdd("a", "x", 20)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	fl := cloud.FluctuationModel{MicroThrottleProb: 1, ThrottleFactor: 3}
	e := &Engine{Workflow: w, Fleet: fleet, Plan: planAllOn(w, 0), Fluct: &fl, TimeScale: 1e-4}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Makespan < 55 {
		t.Fatalf("makespan = %v, want ≈60 under 3x throttle", rep.Makespan)
	}
}

func TestExecuteCancellation(t *testing.T) {
	w := dag.New("w")
	w.MustAdd("a", "x", 1000)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	e := &Engine{Workflow: w, Fleet: fleet, Plan: planAllOn(w, 0), TimeScale: 1}
	if _, err := e.Execute(ctx); err == nil {
		t.Fatal("canceled run reported success")
	}
}

func TestExecuteFullPipeline(t *testing.T) {
	// Learn (simulator) → extract plan → execute (engine), the
	// SciCumulus-RL two-stage pipeline end to end.
	rng := rand.New(rand.NewSource(2))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(32)
	h := &sched.HEFT{}
	res, err := sim.Run(w, fleet, h, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	fl := cloud.DefaultFluctuation()
	e := &Engine{Workflow: w, Fleet: fleet, Plan: core.NewPlan(res.Plan), Fluct: &fl, Seed: 3, TimeScale: 1e-5}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tasks) != 50 {
		t.Fatalf("tasks = %d", len(rep.Tasks))
	}
	// Dependencies hold in wall-clock order too.
	fin := make(map[string]float64)
	st := make(map[string]float64)
	for _, tr := range rep.Tasks {
		fin[tr.TaskID] = tr.FinishAt
		st[tr.TaskID] = tr.StartAt
	}
	for _, a := range w.Activations() {
		for _, c := range a.Children() {
			if st[c.ID] < fin[a.ID]-1 {
				t.Fatalf("%s started before parent %s finished", c.ID, a.ID)
			}
		}
	}
}

func TestSleepRunnerHonoursContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := SleepRunner{}.Run(ctx, nil, nil, time.Hour)
	if err == nil {
		t.Fatal("canceled sleep returned nil")
	}
	if err := (SleepRunner{}).Run(context.Background(), nil, nil, 0); err != nil {
		t.Fatalf("zero-duration run: %v", err)
	}
}

func BenchmarkExecuteMontage50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(16)
	res, err := sim.Run(w, fleet, &sched.HEFT{}, sim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	fl := cloud.DefaultFluctuation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := &Engine{Workflow: w, Fleet: fleet, Plan: core.NewPlan(res.Plan), Fluct: &fl, Seed: int64(i), TimeScale: 1e-6}
		if _, err := e.Execute(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func TestReportUtilisation(t *testing.T) {
	w := dag.New("u")
	for i := 0; i < 4; i++ {
		w.MustAdd(string(rune('a'+i)), "x", 25)
	}
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	e := &Engine{Workflow: w, Fleet: fleet, Plan: planAllOn(w, 0), TimeScale: 1e-3}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	u := rep.Utilisation(fleet)
	// Serial chain on one slot: near-full utilisation (overhead only).
	if u[0] < 0.8 || u[0] > 1.01 {
		t.Fatalf("utilisation = %v, want ≈1", u[0])
	}
	// Empty report yields empty map.
	if got := (&Report{}).Utilisation(fleet); len(got) != 0 {
		t.Fatalf("empty report utilisation = %v", got)
	}
}

// Property: for random Montage instances and plans, the concurrent
// engine completes every activation exactly once with dependencies
// honoured in wall-clock order.
func TestPropertyEngineHonoursDependencies(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns many goroutines")
	}
	for seed := int64(0); seed < 8; seed++ {
		rng := rand.New(rand.NewSource(seed))
		w := trace.MontageN(rng, 30)
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(w, fleet, &sched.Random{Seed: seed}, sim.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		fl := cloud.DefaultFluctuation()
		e := &Engine{Workflow: w, Fleet: fleet, Plan: core.NewPlan(res.Plan), Fluct: &fl, Seed: seed, TimeScale: 1e-5}
		rep, err := e.Execute(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Tasks) != w.Len() {
			t.Fatalf("seed %d: %d of %d tasks", seed, len(rep.Tasks), w.Len())
		}
		seen := map[string]bool{}
		fin := map[string]float64{}
		st := map[string]float64{}
		for _, tr := range rep.Tasks {
			if seen[tr.TaskID] {
				t.Fatalf("seed %d: %s executed twice", seed, tr.TaskID)
			}
			seen[tr.TaskID] = true
			fin[tr.TaskID] = tr.FinishAt
			st[tr.TaskID] = tr.StartAt
		}
		for _, a := range w.Activations() {
			for _, c := range a.Children() {
				if st[c.ID] < fin[a.ID]-1 {
					t.Fatalf("seed %d: %s started before parent %s finished", seed, c.ID, a.ID)
				}
			}
		}
	}
}
