package engine

import (
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/telemetry"
)

// Option customises an Engine built by New.
type Option func(*Engine) error

// WithFluctuation installs the duration perturbation model; nil
// executes nominal times.
func WithFluctuation(f *cloud.FluctuationModel) Option {
	return func(e *Engine) error {
		e.Fluct = f
		return nil
	}
}

// WithSeed sets the seed drawing per-activation fluctuations.
func WithSeed(seed int64) Option {
	return func(e *Engine) error {
		e.Seed = seed
		return nil
	}
}

// WithTimeScale sets wall seconds per virtual second; it must be
// positive.
func WithTimeScale(scale float64) Option {
	return func(e *Engine) error {
		if scale <= 0 {
			return fmt.Errorf("engine: time scale %v must be positive", scale)
		}
		e.TimeScale = scale
		return nil
	}
}

// WithRunner substitutes the activation runner (default SleepRunner).
func WithRunner(r Runner) Option {
	return func(e *Engine) error {
		if r == nil {
			return fmt.Errorf("engine: WithRunner(nil)")
		}
		e.Runner = r
		return nil
	}
}

// WithStore records provenance into store under runID.
func WithStore(store *provenance.Store, runID string) Option {
	return func(e *Engine) error {
		e.Store = store
		e.RunID = runID
		return nil
	}
}

// WithRunID labels provenance records without changing the store —
// option parity for the Engine.RunID field (default "run"). WithStore
// also sets the run ID; order the options accordingly.
func WithRunID(runID string) Option {
	return func(e *Engine) error {
		if runID == "" {
			return fmt.Errorf("engine: WithRunID(\"\")")
		}
		e.RunID = runID
		return nil
	}
}

// WithSink installs a telemetry sink receiving per-activation
// SpanEvents (emitted concurrently from worker goroutines — the sink
// must be safe for concurrent use) and one EngineRunEvent per
// Execute. A nil sink keeps telemetry disabled.
func WithSink(sink telemetry.Sink) Option {
	return func(e *Engine) error {
		if sink == telemetry.Discard {
			sink = nil
		}
		e.Sink = sink
		return nil
	}
}

// New validates that plan covers every activation of the workflow with
// a VM of the fleet, applies the options, and returns a ready Engine.
// This is the supported way to construct an Engine; the struct literal
// form remains for one more release (see Engine).
func New(w *dag.Workflow, fleet *cloud.Fleet, plan core.Plan, opts ...Option) (*Engine, error) {
	if w == nil || fleet == nil {
		return nil, fmt.Errorf("engine: workflow and fleet required")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	if err := plan.Validate(w, fleet); err != nil {
		return nil, fmt.Errorf("engine: %w", err)
	}
	e := &Engine{Workflow: w, Fleet: fleet, Plan: plan}
	for _, opt := range opts {
		if err := opt(e); err != nil {
			return nil, err
		}
	}
	return e, nil
}
