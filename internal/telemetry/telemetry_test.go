package telemetry

import (
	"bytes"
	"errors"
	"strings"
	"sync"
	"testing"
)

type capture struct {
	mu     sync.Mutex
	events []Event
}

func (c *capture) Emit(e Event) {
	c.mu.Lock()
	c.events = append(c.events, e)
	c.mu.Unlock()
}

func TestMultiSkipsNilAndDiscard(t *testing.T) {
	if Multi() != nil {
		t.Error("Multi() should be nil")
	}
	if Multi(nil, Discard, nil) != nil {
		t.Error("Multi of only nil/Discard should be nil")
	}
	c := &capture{}
	if got := Multi(nil, c, Discard); got != c {
		t.Errorf("single usable sink should be returned unwrapped, got %T", got)
	}
	c2 := &capture{}
	m := Multi(c, nil, c2)
	m.Emit(EpisodeEvent{Episode: 3})
	if len(c.events) != 1 || len(c2.events) != 1 {
		t.Errorf("fan-out delivered %d/%d events, want 1/1", len(c.events), len(c2.events))
	}
}

func TestEventKinds(t *testing.T) {
	kinds := map[Event]string{
		EpisodeEvent{}:   "episode",
		DecisionEvent{}:  "decision",
		KernelEvent{}:    "kernel",
		SpanEvent{}:      "span",
		EngineRunEvent{}: "engine_run",
	}
	for ev, want := range kinds {
		if got := ev.Kind(); got != want {
			t.Errorf("%T.Kind() = %q, want %q", ev, got, want)
		}
	}
}

func TestJSONLEncoding(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	j.Emit(EpisodeEvent{Episode: 0, Makespan: 12.5, Reward: -3, Alpha: 0.5, Epsilon: 0.1})
	j.Emit(DecisionEvent{Episode: 0, Task: 4, Activation: "mProject_4", VM: 2, Greedy: true})
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], `{"kind":"episode","event":{"episode":0,`) {
		t.Errorf("episode line = %s", lines[0])
	}
	if !strings.Contains(lines[1], `"kind":"decision"`) || !strings.Contains(lines[1], `"greedy":true`) {
		t.Errorf("decision line = %s", lines[1])
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("disk full") }

func TestJSONLStickyError(t *testing.T) {
	j := NewJSONL(failWriter{})
	j.Emit(EpisodeEvent{})
	if j.Err() == nil {
		t.Fatal("write failure not surfaced")
	}
	j.Emit(EpisodeEvent{}) // must not panic once failed
	if j.Err() == nil {
		t.Fatal("error not sticky")
	}
}

func TestAggregator(t *testing.T) {
	a := NewAggregator()
	a.Emit(EpisodeEvent{Episode: 0, Reward: -2, Makespan: 100, QDelta: 4})
	a.Emit(EpisodeEvent{Episode: 1, Reward: -1, Makespan: 80, QDelta: 2})
	a.Emit(EpisodeEvent{Episode: -1, Reward: 0, Makespan: 70}) // extraction: excluded
	a.Emit(DecisionEvent{Greedy: true})
	a.Emit(DecisionEvent{Greedy: true})
	a.Emit(DecisionEvent{Greedy: false})
	a.Emit(KernelEvent{Events: 10, Scheduled: 12, FreelistHits: 9, FreelistMisses: 1, MaxQueueDepth: 5})
	a.Emit(KernelEvent{Events: 10, Scheduled: 10, FreelistHits: 0, FreelistMisses: 10, MaxQueueDepth: 3})
	a.Emit(SpanEvent{Start: 1, Finish: 3})
	a.Emit(EngineRunEvent{Makespan: 50, Tasks: 1, PeakWorkers: 4})

	s := a.Snapshot()
	if s.Episodes != 2 {
		t.Errorf("Episodes = %d, want 2 (extraction pass must not count)", s.Episodes)
	}
	if s.Makespan.Mean != 90 {
		t.Errorf("Makespan.Mean = %v, want 90", s.Makespan.Mean)
	}
	if s.Decisions != 3 || s.GreedyDecisions != 2 {
		t.Errorf("decisions %d/%d, want 3/2", s.Decisions, s.GreedyDecisions)
	}
	if got := s.GreedyRate(); got < 0.66 || got > 0.67 {
		t.Errorf("GreedyRate = %v", got)
	}
	if s.SimRuns != 2 || s.KernelEvents != 20 || s.MaxQueueDepth != 5 {
		t.Errorf("kernel aggregates: %+v", s)
	}
	if got := s.FreelistHitRate(); got != 0.45 {
		t.Errorf("FreelistHitRate = %v, want 0.45", got)
	}
	if s.Spans != 1 || s.BusySeconds != 2 {
		t.Errorf("spans %d busy %v", s.Spans, s.BusySeconds)
	}
	if s.EngineRuns != 1 || s.PeakWorkers != 4 {
		t.Errorf("engine aggregates: %+v", s)
	}

	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	prom := buf.String()
	for _, want := range []string{
		"reassign_episodes_total 2",
		"reassign_decisions_total 3",
		"reassign_des_freelist_hit_rate 0.45",
		"reassign_engine_peak_workers 4",
		"# TYPE reassign_episodes_total counter",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prom output missing %q:\n%s", want, prom)
		}
	}
}

func TestEmptySnapshotRates(t *testing.T) {
	var s Snapshot
	if s.FreelistHitRate() != 0 || s.GreedyRate() != 0 {
		t.Error("empty snapshot rates must be 0, not NaN")
	}
	var buf bytes.Buffer
	if err := s.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Error("empty snapshot renders NaN")
	}
}
