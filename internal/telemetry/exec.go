package telemetry

// Execution-stage events: the master/worker runtime (package exec)
// narrates a run as dispatches, heartbeats, retries, reassignments and
// completions. Times are virtual seconds from run start, the same
// clock the provenance records use.

// ExecDispatchEvent records one attempt being handed to a worker.
type ExecDispatchEvent struct {
	Task string `json:"task"`
	// Attempt is 1-based: the first dispatch of an activation is
	// attempt 1, each retry increments it.
	Attempt int     `json:"attempt"`
	VM      int     `json:"vm"`
	Worker  int     `json:"worker"`
	Time    float64 `json:"time"`
	// Lease is the virtual deadline by which the attempt must complete
	// or be heartbeat-extended before the master declares it expired.
	Lease float64 `json:"lease"`
}

// Kind implements Event.
func (ExecDispatchEvent) Kind() string { return "exec_dispatch" }

// ExecHeartbeatEvent records a worker liveness beat; the master
// extends the leases of the worker's in-flight attempts.
type ExecHeartbeatEvent struct {
	Worker int `json:"worker"`
	// Running counts the attempts in flight on the worker at the beat.
	Running int     `json:"running"`
	Time    float64 `json:"time"`
}

// Kind implements Event.
func (ExecHeartbeatEvent) Kind() string { return "exec_heartbeat" }

// ExecRetryEvent records an attempt failure and the scheduled retry.
type ExecRetryEvent struct {
	Task string `json:"task"`
	// Attempt is the attempt that failed.
	Attempt int `json:"attempt"`
	VM      int `json:"vm"`
	Worker  int `json:"worker"`
	// Reason is "failed", "expired", "worker-lost" or "preempted".
	Reason string  `json:"reason"`
	Time   float64 `json:"time"`
	// NextAt is when the retry becomes dispatchable (exponential
	// backoff for failures, immediate for worker loss).
	NextAt float64 `json:"next_at"`
	// Abandoned is set when the attempt budget is exhausted and no
	// retry is scheduled.
	Abandoned bool `json:"abandoned,omitempty"`
}

// Kind implements Event.
func (ExecRetryEvent) Kind() string { return "exec_retry" }

// ExecReassignEvent records an activation moving off a dead VM.
type ExecReassignEvent struct {
	Task   string  `json:"task"`
	FromVM int     `json:"from_vm"`
	ToVM   int     `json:"to_vm"`
	Time   float64 `json:"time"`
	// Policy names the reassigner that picked the new VM ("qtable" or
	// "earliest-finish").
	Policy string `json:"policy"`
}

// Kind implements Event.
func (ExecReassignEvent) Kind() string { return "exec_reassign" }

// ExecCompleteEvent records one activation finishing successfully.
type ExecCompleteEvent struct {
	Task    string  `json:"task"`
	Attempt int     `json:"attempt"`
	VM      int     `json:"vm"`
	Worker  int     `json:"worker"`
	Start   float64 `json:"start"`
	Finish  float64 `json:"finish"`
}

// Kind implements Event.
func (ExecCompleteEvent) Kind() string { return "exec_complete" }

// ExecRemediateEvent records the master buying an on-demand
// replacement for a preempted (or preemption-noticed) VM.
type ExecRemediateEvent struct {
	// FromVM is the doomed VM, NewVM its replacement.
	FromVM int     `json:"from_vm"`
	NewVM  int     `json:"new_vm"`
	Time   float64 `json:"time"`
	// BootAt is when the replacement becomes dispatchable.
	BootAt float64 `json:"boot_at"`
}

// Kind implements Event.
func (ExecRemediateEvent) Kind() string { return "exec_remediate" }

// ExecRunEvent summarises one master run.
type ExecRunEvent struct {
	Makespan    float64 `json:"makespan"`
	WallSeconds float64 `json:"wall_seconds"`
	Tasks       int     `json:"tasks"`
	Attempts    int     `json:"attempts"`
	Retries     int     `json:"retries"`
	Reassigned  int     `json:"reassigned"`
	WorkerLost  int     `json:"worker_lost"`
	Abandoned   int     `json:"abandoned"`
}

// Kind implements Event.
func (ExecRunEvent) Kind() string { return "exec_run" }
