package telemetry

import (
	"encoding/json"
	"io"
	"sync"
)

// envelope is the JSONL wire format: one object per line with the
// event kind first, so traces can be filtered by kind without
// decoding the payload. Struct field order makes the encoding
// deterministic — a seeded run produces a byte-stable trace.
type envelope struct {
	Kind  string `json:"kind"`
	Event Event  `json:"event"`
}

// JSONL writes one JSON object per event to an io.Writer. It is safe
// for concurrent use; encoding errors are sticky and reported by Err
// (Emit cannot fail, matching the fire-and-forget Sink contract).
type JSONL struct {
	mu  sync.Mutex
	enc *json.Encoder
	err error
}

// NewJSONL returns a JSONL sink writing to w. The caller owns w and
// any buffering/closing it needs.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{enc: json.NewEncoder(w)}
}

// Emit implements Sink.
func (s *JSONL) Emit(e Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return
	}
	s.err = s.enc.Encode(envelope{Kind: e.Kind(), Event: e})
}

// Err returns the first encoding or write error, if any.
func (s *JSONL) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}
