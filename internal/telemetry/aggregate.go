package telemetry

import (
	"fmt"
	"io"
	"sync"

	"reassign/internal/metrics"
)

// Aggregator is an in-memory Sink that folds the event stream into
// descriptive statistics. It is safe for concurrent use; Snapshot
// returns a consistent copy at any point, including mid-run.
type Aggregator struct {
	mu sync.Mutex

	rewards   []float64
	makespans []float64
	qdeltas   []float64

	decisions       int
	greedyDecisions int

	simRuns        int
	kernelEvents   int64
	kernelSched    int64
	freelistHits   int64
	freelistMisses int64
	maxQueueDepth  int

	spans           int
	busySeconds     float64
	engineRuns      int
	engineMakespans []float64
	peakWorkers     int
}

// NewAggregator returns an empty aggregator.
func NewAggregator() *Aggregator {
	return &Aggregator{}
}

// Emit implements Sink.
func (a *Aggregator) Emit(e Event) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch ev := e.(type) {
	case EpisodeEvent:
		if ev.Episode < 0 {
			return // plan extraction is not a learning episode
		}
		a.rewards = append(a.rewards, ev.Reward)
		a.makespans = append(a.makespans, ev.Makespan)
		a.qdeltas = append(a.qdeltas, ev.QDelta)
	case DecisionEvent:
		a.decisions++
		if ev.Greedy {
			a.greedyDecisions++
		}
	case KernelEvent:
		a.simRuns++
		a.kernelEvents += ev.Events
		a.kernelSched += ev.Scheduled
		a.freelistHits += ev.FreelistHits
		a.freelistMisses += ev.FreelistMisses
		if ev.MaxQueueDepth > a.maxQueueDepth {
			a.maxQueueDepth = ev.MaxQueueDepth
		}
	case SpanEvent:
		a.spans++
		a.busySeconds += ev.Finish - ev.Start
	case EngineRunEvent:
		a.engineRuns++
		a.engineMakespans = append(a.engineMakespans, ev.Makespan)
		if ev.PeakWorkers > a.peakWorkers {
			a.peakWorkers = ev.PeakWorkers
		}
	}
}

// Snapshot is a consistent view of everything an Aggregator has seen.
type Snapshot struct {
	// Episodes counts learning episodes; Reward, Makespan and QDelta
	// summarise their per-episode series.
	Episodes int
	Reward   metrics.Summary
	Makespan metrics.Summary
	QDelta   metrics.Summary

	// Decisions counts scheduler decisions; GreedyDecisions the subset
	// that exploited the Q table.
	Decisions       int
	GreedyDecisions int

	// SimRuns counts finished simulator runs; the kernel counters
	// aggregate their DES stats.
	SimRuns        int
	KernelEvents   int64
	KernelSched    int64
	FreelistHits   int64
	FreelistMisses int64
	MaxQueueDepth  int

	// Spans counts engine execution spans; BusySeconds is their total
	// busy time in virtual seconds.
	Spans          int
	BusySeconds    float64
	EngineRuns     int
	EngineMakespan metrics.Summary
	PeakWorkers    int
}

// FreelistHitRate returns the fraction of event schedules served from
// the DES freelist (0 when nothing was scheduled).
func (s Snapshot) FreelistHitRate() float64 {
	total := s.FreelistHits + s.FreelistMisses
	if total == 0 {
		return 0
	}
	return float64(s.FreelistHits) / float64(total)
}

// GreedyRate returns the fraction of decisions that exploited the Q
// table (0 when no decision was recorded).
func (s Snapshot) GreedyRate() float64 {
	if s.Decisions == 0 {
		return 0
	}
	return float64(s.GreedyDecisions) / float64(s.Decisions)
}

// Snapshot returns a copy of the current aggregates.
func (a *Aggregator) Snapshot() Snapshot {
	a.mu.Lock()
	defer a.mu.Unlock()
	return Snapshot{
		Episodes:        len(a.rewards),
		Reward:          metrics.Summarize(a.rewards),
		Makespan:        metrics.Summarize(a.makespans),
		QDelta:          metrics.Summarize(a.qdeltas),
		Decisions:       a.decisions,
		GreedyDecisions: a.greedyDecisions,
		SimRuns:         a.simRuns,
		KernelEvents:    a.kernelEvents,
		KernelSched:     a.kernelSched,
		FreelistHits:    a.freelistHits,
		FreelistMisses:  a.freelistMisses,
		MaxQueueDepth:   a.maxQueueDepth,
		Spans:           a.spans,
		BusySeconds:     a.busySeconds,
		EngineRuns:      a.engineRuns,
		EngineMakespan:  metrics.Summarize(a.engineMakespans),
		PeakWorkers:     a.peakWorkers,
	}
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (untyped metrics would also scrape; we declare counters and
// gauges for clarity). Metric names share the reassign_ prefix.
func (s Snapshot) WriteProm(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	counter := func(name, help string, v any) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	summary := func(name, help string, sum metrics.Summary) {
		gauge(name+"_mean", help+" (mean)", sum.Mean)
		gauge(name+"_min", help+" (min)", sum.Min)
		gauge(name+"_p50", help+" (median)", sum.P50)
		gauge(name+"_p95", help+" (95th percentile)", sum.P95)
		gauge(name+"_p99", help+" (99th percentile)", sum.P99)
		gauge(name+"_max", help+" (max)", sum.Max)
	}
	counter("reassign_episodes_total", "Learning episodes observed", s.Episodes)
	if s.Episodes > 0 {
		summary("reassign_episode_reward", "Per-episode accumulated crisp reward", s.Reward)
		summary("reassign_episode_makespan_seconds", "Per-episode simulated makespan", s.Makespan)
		summary("reassign_episode_q_delta", "Per-episode L2 norm of TD updates", s.QDelta)
	}
	counter("reassign_decisions_total", "Scheduler decisions", s.Decisions)
	counter("reassign_decisions_greedy_total", "Decisions that exploited the Q table", s.GreedyDecisions)
	counter("reassign_sim_runs_total", "Simulator runs finished", s.SimRuns)
	counter("reassign_des_events_total", "DES kernel events executed", s.KernelEvents)
	counter("reassign_des_scheduled_total", "DES kernel events scheduled", s.KernelSched)
	gauge("reassign_des_freelist_hit_rate", "Fraction of event schedules served from the freelist", s.FreelistHitRate())
	gauge("reassign_des_queue_depth_max", "Future-event list high-water mark", s.MaxQueueDepth)
	counter("reassign_engine_spans_total", "Engine execution spans", s.Spans)
	counter("reassign_engine_busy_virtual_seconds_total", "Total busy time across engine workers", s.BusySeconds)
	counter("reassign_engine_runs_total", "Execution-engine runs", s.EngineRuns)
	if s.EngineRuns > 0 {
		summary("reassign_engine_makespan_seconds", "Per-run engine makespan", s.EngineMakespan)
	}
	gauge("reassign_engine_peak_workers", "Maximum concurrently busy engine workers", s.PeakWorkers)
	return err
}
