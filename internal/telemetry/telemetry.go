// Package telemetry is the instrumentation layer threaded through the
// learning and execution stages: a Sink interface receiving typed
// events — per-episode learning stats, scheduler decisions, DES kernel
// counters, and engine execution spans — with built-in sinks for JSONL
// trace files (NewJSONL), an in-memory aggregator feeding
// metrics.Summary (NewAggregator, with a Prometheus-text-format
// snapshot writer), and fan-out composition (Multi).
//
// The layer is zero-cost when disabled: instrumented code holds a Sink
// that is nil by default and guards every emission with a nil check,
// so the allocation-free learning hot path is untouched unless a sink
// is installed. Sinks must be safe for concurrent use — the execution
// engine emits spans from one goroutine per worker.
package telemetry

// Event is one typed telemetry record. The concrete types below are
// the full event vocabulary; Kind returns the stable wire name used
// by the JSONL encoding.
type Event interface {
	Kind() string
}

// EpisodeEvent records one learning episode (package core): the
// quantities behind the paper's Tables II–III and reward curves.
type EpisodeEvent struct {
	// Episode is the zero-based episode number; -1 marks the final
	// greedy plan-extraction pass.
	Episode int `json:"episode"`
	// Makespan is the episode's simulated makespan in virtual seconds.
	Makespan float64 `json:"makespan"`
	// Reward is the episode's accumulated crisp reward.
	Reward float64 `json:"reward"`
	// Alpha and Epsilon are the learning rate and exploitation
	// probability in effect (after schedules).
	Alpha   float64 `json:"alpha"`
	Epsilon float64 `json:"epsilon"`
	// QDelta is the L2 norm of all TD updates applied this episode —
	// a convergence signal that decays as the table settles.
	QDelta float64 `json:"q_delta"`
	// Updates counts TD updates applied this episode.
	Updates int `json:"updates"`
	// State is the workflow's terminal state ("finished-ok", ...).
	State string `json:"state"`
	// Decisions and Events are the episode's scheduler invocations and
	// DES kernel steps.
	Decisions int   `json:"decisions"`
	Events    int64 `json:"events"`
	// Replica identifies the emitting learner in replica-parallel
	// learning (WithReplicaLabel); 0 otherwise.
	Replica int `json:"replica"`
}

// Kind implements Event.
func (EpisodeEvent) Kind() string { return "episode" }

// DecisionEvent records one scheduling decision of the learning agent:
// activation → VM, with the greedy-vs-explore flag of the ε policy.
type DecisionEvent struct {
	// Episode is the emitting episode; -1 for plan extraction.
	Episode int `json:"episode"`
	// Time is the simulation clock at the decision.
	Time float64 `json:"time"`
	// Task is the activation's dense index; Activation its ID.
	Task       int    `json:"task"`
	Activation string `json:"activation"`
	// VM is the chosen VM ID.
	VM int `json:"vm"`
	// Greedy reports whether the policy exploited the Q table (true)
	// or explored (false). Policies that cannot tell report false.
	Greedy bool `json:"greedy"`
	// Replica identifies the emitting learner in replica-parallel
	// learning; 0 otherwise.
	Replica int `json:"replica"`
}

// Kind implements Event.
func (DecisionEvent) Kind() string { return "decision" }

// KernelEvent summarises one simulation run's DES kernel counters
// (package sim emits it when the run finishes).
type KernelEvent struct {
	// Scheduler is the algorithm name driving the run.
	Scheduler string `json:"scheduler"`
	// State is the workflow's terminal state.
	State string `json:"state"`
	// Makespan is the run's makespan in virtual seconds.
	Makespan float64 `json:"makespan"`
	// Decisions counts scheduler invocations.
	Decisions int `json:"decisions"`
	// Events counts DES events executed; Scheduled counts events
	// queued (executed + canceled + pending at exit).
	Events    int64 `json:"events"`
	Scheduled int64 `json:"scheduled"`
	// FreelistHits/Misses split event allocations between recycled
	// and fresh; their ratio is the freelist hit rate.
	FreelistHits   int64 `json:"freelist_hits"`
	FreelistMisses int64 `json:"freelist_misses"`
	// MaxQueueDepth is the future-event list's high-water mark.
	MaxQueueDepth int `json:"max_queue_depth"`
	// Replica identifies the emitting learner in replica-parallel
	// learning; 0 otherwise.
	Replica int `json:"replica"`
}

// Kind implements Event.
func (KernelEvent) Kind() string { return "kernel" }

// SpanEvent records one activation's execution span in the concurrent
// engine, in virtual seconds from run start. Workers emit spans
// concurrently; sinks must tolerate that.
type SpanEvent struct {
	Task     string `json:"task"`
	Activity string `json:"activity"`
	VM       int    `json:"vm"`
	// Worker is the executing worker's index within the engine's pool.
	Worker int     `json:"worker"`
	Start  float64 `json:"start"`
	Finish float64 `json:"finish"`
}

// Kind implements Event.
func (SpanEvent) Kind() string { return "span" }

// EngineRunEvent summarises one execution-engine run.
type EngineRunEvent struct {
	Makespan    float64 `json:"makespan"`
	WallSeconds float64 `json:"wall_seconds"`
	Tasks       int     `json:"tasks"`
	// PeakWorkers is the maximum number of concurrently busy workers
	// observed during the run.
	PeakWorkers int `json:"peak_workers"`
}

// Kind implements Event.
func (EngineRunEvent) Kind() string { return "engine_run" }

// Sink receives telemetry events. Implementations must be safe for
// concurrent use. A nil Sink means telemetry is disabled; emitting
// code checks for nil before constructing events, which keeps the
// disabled path free of allocations.
type Sink interface {
	Emit(Event)
}

// Discard is a Sink that drops every event — the explicit no-op for
// call sites that want a non-nil sink.
var Discard Sink = discard{}

type discard struct{}

func (discard) Emit(Event) {}

// Multi fans events out to every non-nil sink, in order. It returns
// nil when no usable sink remains, so callers can pass the result
// straight to a (nil-checked) sink field.
func Multi(sinks ...Sink) Sink {
	out := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil && s != Discard {
			out = append(out, s)
		}
	}
	switch len(out) {
	case 0:
		return nil
	case 1:
		return out[0]
	default:
		return out
	}
}

type multi []Sink

func (m multi) Emit(e Event) {
	for _, s := range m {
		s.Emit(e)
	}
}

// WithReplicaLabel wraps s so that every episode, decision and kernel
// event passing through carries the given replica number; other event
// types pass unchanged. Replica-parallel learning installs one wrapper
// per replica over a shared sink, so interleaved events stay
// attributable. A nil (or Discard) sink stays disabled: the wrapper is
// nil too.
func WithReplicaLabel(s Sink, replica int) Sink {
	if s == nil || s == Discard {
		return nil
	}
	return &replicaLabel{sink: s, replica: replica}
}

type replicaLabel struct {
	sink    Sink
	replica int
}

func (r *replicaLabel) Emit(e Event) {
	switch ev := e.(type) {
	case EpisodeEvent:
		ev.Replica = r.replica
		r.sink.Emit(ev)
	case DecisionEvent:
		ev.Replica = r.replica
		r.sink.Emit(ev)
	case KernelEvent:
		ev.Replica = r.replica
		r.sink.Emit(ev)
	default:
		r.sink.Emit(e)
	}
}
