package core

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
)

// Learner drives the two-stage pipeline of §III.D: stage one runs
// Episodes simulated executions of the workflow, each an RL episode
// updating a shared Q table; stage two extracts the final scheduling
// plan greedily from the learned table. The plan is then handed to
// the execution engine (package engine) for the "real" run.
//
// Construct Learners with NewLearner, which validates the inputs and
// exposes seed, telemetry and schedules as options.
//
// Deprecated: constructing a Learner as a struct literal still works
// in this release but will lose exported fields in the next one; use
// NewLearner.
type Learner struct {
	Workflow *dag.Workflow
	Fleet    *cloud.Fleet
	Params   Params
	// Episodes is the number of learning episodes (the paper uses 100).
	Episodes int
	// SimConfig configures the learning simulator (WorkflowSim stage).
	SimConfig sim.Config
	// Seed drives Q initialisation and exploration.
	Seed int64
	// Table, when non-nil, continues learning from a previous run
	// (the paper's provenance-backed cross-execution learning).
	Table *rl.Table
	// AlphaSchedule and EpsilonSchedule, when non-nil, override the
	// fixed α and ε per episode (e.g. rl.ExpDecay to explore early and
	// exploit late — an extension over the paper's constants).
	AlphaSchedule   rl.Schedule
	EpsilonSchedule rl.Schedule

	// tableB is the DoubleQ second table, persisted across this
	// learner's episodes.
	tableB *rl.Table
	// sink receives telemetry events when set (WithSink); nil keeps
	// the hot path allocation-free.
	sink telemetry.Sink
	// replicas > 1 makes Learn run that many concurrent learners and
	// keep the best plan (WithReplicas / LearnReplicas).
	replicas int
	// ctx cancels learning between episodes when set (WithContext).
	ctx context.Context
	// enginePool, when set, sources simulation engines from a shared
	// pool instead of constructing per run (WithEnginePool) — the
	// daemon path, where many jobs reuse warm engines.
	enginePool *sim.Pool
}

// EpisodeStats records one learning episode.
type EpisodeStats struct {
	Episode  int
	Makespan float64
	Reward   float64 // accumulated crisp reward
	State    sim.WorkflowState
}

// Result is the outcome of Learn.
type Result struct {
	// Table is the learned Q table (shared with the Learner).
	Table *rl.Table
	// Episodes holds per-episode diagnostics, in order.
	Episodes []EpisodeStats
	// LearningTime is the wall-clock duration of the episode loop —
	// the quantity in the paper's Table II.
	LearningTime time.Duration
	// Plan is the final activation→VM scheduling plan extracted
	// greedily from the learned table.
	Plan Plan
	// PlanMakespan is the simulated execution time of the final plan
	// — the quantity in the paper's Table III.
	PlanMakespan float64
	// BestEpisodeMakespan is the best makespan observed while
	// learning.
	BestEpisodeMakespan float64
}

// Learn runs the episode loop and extracts the final plan. With
// WithReplicas(k>1) it instead runs k concurrent learners and returns
// the best replica's result (LearnReplicas exposes the full ensemble).
func (l *Learner) Learn() (*Result, error) {
	if l.replicas > 1 {
		rr, err := l.LearnReplicas()
		if err != nil {
			return nil, err
		}
		return rr.BestResult(), nil
	}
	if l.Workflow == nil || l.Fleet == nil {
		return nil, fmt.Errorf("core: learner needs a workflow and a fleet")
	}
	if l.Episodes < 0 {
		return nil, fmt.Errorf("core: negative episode budget %d", l.Episodes)
	}
	if err := l.Params.Validate(); err != nil {
		return nil, err
	}
	episodes := l.Episodes
	if episodes == 0 {
		episodes = DefaultEpisodes
	}
	rng := rand.New(rand.NewSource(l.Seed))
	table := l.Table
	if table == nil {
		// Algorithm 2: "Start Q(s,a) at random". The learner knows the
		// action space up front — Workflow.Len() activations × the
		// fleet's VM IDs — so it uses a rectangle backing (dense, or
		// banded for large problems); all backings materialise lazily
		// in access order, making the learned values (and thus plans)
		// identical to the sparse map for a given seed.
		table = rl.NewAutoTable(l.Workflow.Len(), len(l.Fleet.VMs), rand.New(rand.NewSource(rng.Int63())), 1.0)
	}

	res := &Result{
		Table:               table,
		Episodes:            make([]EpisodeStats, 0, episodes),
		BestEpisodeMakespan: math.Inf(1),
	}
	start := time.Now()
	// One agent serves every episode: Prepare resets per-episode state
	// and reset re-seeds exploration, so the scratch buffers sized on
	// episode 0 are reused for the rest of the loop. Likewise one sim
	// engine serves every episode, Reset between runs.
	var agent *Scheduler
	var eng *sim.Engine
	// Pooled engines go back even on error paths; the deferred Put is
	// idempotent through the nil check after the manual release below.
	defer func() {
		if l.enginePool != nil && eng != nil {
			l.enginePool.Put(eng)
		}
	}()
	for ep := 0; ep < episodes; ep++ {
		if l.ctx != nil {
			if err := l.ctx.Err(); err != nil {
				return nil, fmt.Errorf("core: learning canceled at episode %d: %w", ep, err)
			}
		}
		params := l.Params
		if l.AlphaSchedule != nil {
			params.Alpha = l.AlphaSchedule.At(ep)
		}
		// The ε schedule feeds the default ε-greedy policy; an explicit
		// Params.Policy takes precedence and ignores it.
		if l.EpsilonSchedule != nil && params.Policy == nil {
			params.Epsilon = l.EpsilonSchedule.At(ep)
		}
		seed := rng.Int63()
		var err error
		if agent == nil {
			agent, err = NewScheduler(params, table, rand.New(rand.NewSource(seed)))
		} else {
			err = agent.reset(params, seed)
		}
		if err != nil {
			return nil, err
		}
		if params.Rule == DoubleQ {
			if l.tableB == nil {
				l.tableB = rl.NewAutoTable(l.Workflow.Len(), len(l.Fleet.VMs), rand.New(rand.NewSource(rng.Int63())), 1.0)
			}
			agent.WithSecondTable(l.tableB)
		}
		agent.instrument(l.sink, ep)
		cfg := l.SimConfig
		cfg.Seed = rng.Int63()
		// The episode loop only reads makespan and reward; skip the
		// per-episode plan map (plan extraction runs with it on).
		cfg.SkipPlan = true
		if cfg.Sink == nil {
			cfg.Sink = l.sink
		}
		// Cancellation reaches inside the episode too: a single huge-DAG
		// episode aborts at its next scheduling cycle instead of holding
		// the learner (and a daemon shutdown) until it finishes.
		if cfg.Ctx == nil {
			cfg.Ctx = l.ctx
		}
		var simRes *sim.Result
		if eng == nil {
			if l.enginePool != nil {
				eng, err = l.enginePool.Acquire(l.Workflow, l.Fleet, agent, cfg)
			} else {
				eng, err = sim.NewEngine(l.Workflow, l.Fleet, agent, cfg)
			}
		} else {
			err = eng.Reset(cfg)
		}
		if err == nil {
			simRes, err = eng.Run()
		}
		if err != nil {
			return nil, fmt.Errorf("core: episode %d: %w", ep, err)
		}
		res.Episodes = append(res.Episodes, EpisodeStats{
			Episode:  ep,
			Makespan: simRes.Makespan,
			Reward:   agent.EpisodeReward(),
			State:    simRes.State,
		})
		if l.sink != nil {
			l.sink.Emit(telemetry.EpisodeEvent{
				Episode:   ep,
				Makespan:  simRes.Makespan,
				Reward:    agent.EpisodeReward(),
				Alpha:     params.Alpha,
				Epsilon:   params.Epsilon,
				QDelta:    math.Sqrt(agent.qDeltaSq),
				Updates:   agent.updates,
				State:     simRes.State.String(),
				Decisions: simRes.Decisions,
				Events:    simRes.Events,
			})
		}
		if simRes.State == sim.FinishedOK && simRes.Makespan < res.BestEpisodeMakespan {
			res.BestEpisodeMakespan = simRes.Makespan
		}
	}
	if agent != nil {
		// A final failure-aborted episode can leave TD writes buffered;
		// apply them before the plan is extracted from the table.
		agent.FlushTD()
	}
	if l.enginePool != nil && eng != nil {
		// Hand the episode engine back before extraction so the
		// extraction run can rebind it instead of building another.
		l.enginePool.Put(eng)
		eng = nil
	}
	res.LearningTime = time.Since(start)

	plan, makespan, err := l.ExtractPlan(table)
	if err != nil {
		return nil, err
	}
	res.Plan = plan
	res.PlanMakespan = makespan
	return res, nil
}

// ExtractPlan runs one greedy (pure-exploitation, no-update) episode
// against the table and returns the resulting activation→VM plan and
// its simulated makespan.
func (l *Learner) ExtractPlan(table *rl.Table) (Plan, float64, error) {
	agent, err := NewPlanExtractor(l.Params, table)
	if err != nil {
		return Plan{}, 0, err
	}
	// Episode -1 marks the extraction pass on decision events; the
	// aggregator excludes it from the learning-curve series.
	agent.instrument(l.sink, -1)
	cfg := l.SimConfig
	cfg.Seed = l.Seed
	if cfg.Sink == nil {
		cfg.Sink = l.sink
	}
	var simRes *sim.Result
	if l.enginePool != nil {
		eng, aerr := l.enginePool.Acquire(l.Workflow, l.Fleet, agent, cfg)
		if aerr == nil {
			simRes, aerr = eng.Run()
			// The Result borrows engine buffers, so the engine is only
			// returned after everything needed is read — see below. The
			// plan map itself is freshly built per run and safe to keep.
			defer l.enginePool.Put(eng)
		}
		err = aerr
	} else {
		simRes, err = sim.Run(l.Workflow, l.Fleet, agent, cfg)
	}
	if err != nil {
		return Plan{}, 0, fmt.Errorf("core: plan extraction: %w", err)
	}
	if simRes.State != sim.FinishedOK {
		return Plan{}, 0, fmt.Errorf("core: plan extraction ended in state %v", simRes.State)
	}
	if l.sink != nil {
		l.sink.Emit(telemetry.EpisodeEvent{
			Episode:   -1,
			Makespan:  simRes.Makespan,
			Reward:    agent.EpisodeReward(),
			Alpha:     l.Params.Alpha,
			Epsilon:   l.Params.Epsilon,
			State:     simRes.State.String(),
			Decisions: simRes.Decisions,
			Events:    simRes.Events,
		})
	}
	// The run's plan map is freshly built and not retained by the
	// simulator, so the Plan can own it instead of copying.
	return newPlanOwned(simRes.Plan), simRes.Makespan, nil
}
