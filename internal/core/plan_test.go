package core

import (
	"encoding/json"
	"testing"
)

func TestPlanBasics(t *testing.T) {
	p := NewPlan(map[string]int{"b": 2, "a": 1, "c": 0})
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if vm, ok := p.VM("b"); !ok || vm != 2 {
		t.Errorf("VM(b) = %d, %v", vm, ok)
	}
	if _, ok := p.VM("zz"); ok {
		t.Error("VM on uncovered activation reported ok")
	}
	ents := p.Entries()
	if ents[0].Activation != "a" || ents[1].Activation != "b" || ents[2].Activation != "c" {
		t.Errorf("entries not sorted: %v", ents)
	}
	// Entries returns a copy: mutating it must not corrupt the plan.
	ents[0].VM = 99
	if vm, _ := p.VM("a"); vm != 1 {
		t.Error("Entries() aliases internal storage")
	}
	m := p.Map()
	m["a"] = 42
	if vm, _ := p.VM("a"); vm != 1 {
		t.Error("Map() aliases internal storage")
	}
}

func TestPlanZeroValue(t *testing.T) {
	var p Plan
	if p.Len() != 0 {
		t.Error("zero plan not empty")
	}
	if _, ok := p.VM("x"); ok {
		t.Error("zero plan covers something")
	}
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "[]" {
		t.Errorf("zero plan marshals to %s", b)
	}
}

func TestPlanJSONRoundTrip(t *testing.T) {
	p := NewPlan(map[string]int{"mAdd_1": 3, "mProject_0": 0})
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"activation":"mAdd_1","vm":3},{"activation":"mProject_0","vm":0}]`
	if string(b) != want {
		t.Errorf("marshal = %s, want %s", b, want)
	}
	var back Plan
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 2 {
		t.Fatalf("round-trip lost entries: %d", back.Len())
	}
	if vm, _ := back.VM("mAdd_1"); vm != 3 {
		t.Error("round-trip corrupted assignment")
	}
}

func TestPlanJSONLegacyMap(t *testing.T) {
	var p Plan
	if err := json.Unmarshal([]byte(`{"a": 1, "b": 2}`), &p); err != nil {
		t.Fatal(err)
	}
	if p.Len() != 2 {
		t.Fatalf("legacy decode lost entries: %d", p.Len())
	}
	if vm, _ := p.VM("b"); vm != 2 {
		t.Error("legacy decode corrupted assignment")
	}
}

func TestPlanJSONDuplicate(t *testing.T) {
	var p Plan
	err := json.Unmarshal([]byte(`[{"activation":"a","vm":1},{"activation":"a","vm":2}]`), &p)
	if err == nil {
		t.Fatal("duplicate activation accepted")
	}
}

func TestPlanJSONGarbage(t *testing.T) {
	var p Plan
	if err := json.Unmarshal([]byte(`"nope"`), &p); err == nil {
		t.Fatal("garbage accepted")
	}
}
