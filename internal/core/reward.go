// Package core implements ReASSIgN (Rl-based Activation Scheduling of
// ScIeNtific workflows), the paper's contribution: a tabular
// Q-learning scheduler over (activation, VM) schedule actions, with
// the performance-index reward of §III.B and the episode loop of
// Algorithm 2.
package core

import (
	"math"

	"reassign/internal/sim"
)

// PerfIndex computes the paper's performance index te*μ + (1-μ)*tf
// (Eq. 4/5 applied to a single observation or to means). μ balances
// total execution time against queue time.
func PerfIndex(te, tf, mu float64) float64 {
	return te*mu + (1-mu)*tf
}

// VMPerfIndex computes \overline{Pi_j} (Eq. 4): the performance index
// of a VM over the mean execution and queue times of every activation
// it has executed.
func VMPerfIndex(s sim.VMStats, mu float64) float64 {
	return PerfIndex(s.MeanExec(), s.MeanWait(), mu)
}

// GlobalPerfIndex computes \overline{Pw} (Eq. 5) over all finished
// activations.
func GlobalPerfIndex(global sim.VMStats, mu float64) float64 {
	return PerfIndex(global.MeanExec(), global.MeanWait(), mu)
}

// AppendPerfIndices appends \overline{Pi_j} for every VM that has
// executed at least one activation to dst and returns it. Callers on
// the hot path pass a reused buffer to avoid allocating per reward.
func AppendPerfIndices(dst []float64, vms []*sim.VMState, mu float64) []float64 {
	for _, v := range vms {
		if s := v.Stats(); s.N > 0 {
			dst = append(dst, VMPerfIndex(s, mu))
		}
	}
	return dst
}

// StdDev computes the population standard deviation of xs, or 0 with
// fewer than two observations.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	var mean float64
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// PerfStdDev computes the population standard deviation of the per-VM
// mean performance indices \overline{Pi_j}, across VMs that have
// executed at least one activation. With fewer than two active VMs
// it returns 0.
func PerfStdDev(vms []*sim.VMState, mu float64) float64 {
	return StdDev(AppendPerfIndices(nil, vms, mu))
}

// CrispReward computes r_i (Eq. 6): -1 when the VM's mean performance
// index is worse (larger) than the global index plus one standard
// deviation, +1 otherwise. Lower indices are better — they mean the
// VM turns activations around faster.
func CrispReward(vmIndex, globalIndex, stdv float64) float64 {
	if vmIndex > globalIndex+stdv {
		return -1
	}
	return 1
}

// SmoothReward folds the crisp partial reward into the running reward:
// r^t = r^{t-1} + ρ·(r_i − r^{t-1}). ρ weighs the new observation
// against the history; the update rewards decisions that keep
// improving workflow efficiency.
func SmoothReward(prev, crisp, rho float64) float64 {
	return prev + rho*(crisp-prev)
}
