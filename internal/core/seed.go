package core

import (
	"fmt"
	"math"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/estimate"
	"reassign/internal/provenance"
	"reassign/internal/rl"
)

// SeedTable builds a Q table whose initial values come from
// provenance history instead of uniform noise — the paper's
// cross-execution loop: execution provenance feeds the next learning
// run. Every (activation, VM) cell is set to tmin/t, where t is the
// estimator's predicted execution time of the activation on the VM
// (observed (activity, VM-type) means with nominal-runtime fallback)
// and tmin the best prediction across the fleet. The best VM for each
// activation therefore starts at 1.0 — the top of the random-init
// span — and slower VMs proportionally lower, so greedy exploitation
// starts from history instead of noise while TD updates remain free
// to overturn it.
//
// seed drives the table's residual randomness (only used for cells
// outside the fleet rectangle, e.g. autoscaled VMs).
func SeedTable(store *provenance.Store, w *dag.Workflow, fleet *cloud.Fleet, seed int64) (*rl.Table, error) {
	if w == nil || fleet == nil {
		return nil, fmt.Errorf("core: SeedTable needs a workflow and a fleet")
	}
	if w.Len() == 0 || fleet.Len() == 0 {
		return nil, fmt.Errorf("core: SeedTable on empty workflow or fleet")
	}
	est := estimate.New(cloud.Types())
	if store != nil {
		est.ObserveStore(store, "")
	}
	table := rl.NewDenseTable(w.Len(), len(fleet.VMs), rand.New(rand.NewSource(seed)), 1.0)
	preds := make([]float64, fleet.Len())
	for _, a := range w.Activations() {
		tmin := math.Inf(1)
		for i, vm := range fleet.VMs {
			t := est.Predict(a, vm)
			if t <= 0 {
				t = 1e-9
			}
			preds[i] = t
			if t < tmin {
				tmin = t
			}
		}
		for i, vm := range fleet.VMs {
			table.Set(rl.Key{Task: a.Index, VM: vm.ID}, tmin/preds[i])
		}
	}
	return table, nil
}

// WithProvenanceSeed initialises the learner's Q table from a
// provenance store via SeedTable — the cross-execution learning loop:
// a store written by the execution stage seeds the next learning run.
// It overrides any table set earlier; combine with WithTable by
// ordering the options.
func WithProvenanceSeed(store *provenance.Store) Option {
	return func(l *Learner) error {
		if store == nil {
			return fmt.Errorf("core: WithProvenanceSeed(nil)")
		}
		t, err := SeedTable(store, l.Workflow, l.Fleet, l.Seed)
		if err != nil {
			return err
		}
		l.Table = t
		return nil
	}
}
