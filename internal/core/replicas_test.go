package core

import (
	"io"
	"math/rand"
	"runtime"
	"testing"

	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
)

func replicaLearner(t testing.TB, k int, opts ...Option) *Learner {
	t.Helper()
	w := montage50(t, 1)
	f := fleet(t, 16)
	all := append([]Option{WithSeed(42), WithReplicas(k)}, opts...)
	l, err := NewLearner(Config{
		Workflow: w, Fleet: f, Episodes: 30,
		Sim: sim.Config{},
	}, all...)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func requireSamePlan(t *testing.T, a, b Plan) {
	t.Helper()
	ae, be := a.Entries(), b.Entries()
	if len(ae) != len(be) {
		t.Fatalf("plan sizes differ: %d vs %d", len(ae), len(be))
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatalf("plan entry %d differs: %+v vs %+v", i, ae[i], be[i])
		}
	}
}

// TestWithReplicasValidation rejects non-positive replica counts.
func TestWithReplicasValidation(t *testing.T) {
	w := montage50(t, 1)
	f := fleet(t, 16)
	for _, k := range []int{0, -3} {
		if _, err := NewLearner(Config{Workflow: w, Fleet: f}, WithReplicas(k)); err == nil {
			t.Fatalf("WithReplicas(%d) should error", k)
		}
	}
}

// TestReplicasDeterministicAcrossGOMAXPROCS is the determinism
// contract: the ensemble's plans, makespans and seeds are
// byte-identical whether the replicas run serialised on one core or
// concurrently on several.
func TestReplicasDeterministicAcrossGOMAXPROCS(t *testing.T) {
	run := func(procs int) *ReplicaResult {
		old := runtime.GOMAXPROCS(procs)
		defer runtime.GOMAXPROCS(old)
		rr, err := replicaLearner(t, 4).LearnReplicas()
		if err != nil {
			t.Fatal(err)
		}
		return rr
	}
	serial := run(1)
	parallel := run(4)
	if serial.Best != parallel.Best {
		t.Fatalf("best replica: serial %d, parallel %d", serial.Best, parallel.Best)
	}
	for i := range serial.Results {
		if serial.Seeds[i] != parallel.Seeds[i] {
			t.Fatalf("replica %d seed: serial %d, parallel %d", i, serial.Seeds[i], parallel.Seeds[i])
		}
		s, p := serial.Results[i], parallel.Results[i]
		if s.PlanMakespan != p.PlanMakespan {
			t.Fatalf("replica %d plan makespan: serial %v, parallel %v", i, s.PlanMakespan, p.PlanMakespan)
		}
		if s.BestEpisodeMakespan != p.BestEpisodeMakespan {
			t.Fatalf("replica %d best episode: serial %v, parallel %v", i, s.BestEpisodeMakespan, p.BestEpisodeMakespan)
		}
		requireSamePlan(t, s.Plan, p.Plan)
		for e := range s.Episodes {
			if s.Episodes[e] != p.Episodes[e] {
				t.Fatalf("replica %d episode %d differs: %+v vs %+v", i, e, s.Episodes[e], p.Episodes[e])
			}
		}
	}
}

// TestReplicaMatchesSoloLearner: replica i is exactly the solo learner
// seeded with Seeds[i] — the split stream adds nothing beyond seeding.
func TestReplicaMatchesSoloLearner(t *testing.T) {
	rr, err := replicaLearner(t, 3).LearnReplicas()
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range rr.Results {
		solo, err := NewLearner(Config{
			Workflow: montage50(t, 1), Fleet: fleet(t, 16), Episodes: 30,
			Sim: sim.Config{},
		}, WithSeed(rr.Seeds[i]))
		if err != nil {
			t.Fatal(err)
		}
		got, err := solo.Learn()
		if err != nil {
			t.Fatal(err)
		}
		if got.PlanMakespan != want.PlanMakespan {
			t.Fatalf("replica %d: solo makespan %v, replica %v", i, got.PlanMakespan, want.PlanMakespan)
		}
		requireSamePlan(t, got.Plan, want.Plan)
	}
}

// TestLearnDelegatesToReplicas: Learn() on a replicated learner
// returns exactly the ensemble's best result.
func TestLearnDelegatesToReplicas(t *testing.T) {
	rr, err := replicaLearner(t, 3).LearnReplicas()
	if err != nil {
		t.Fatal(err)
	}
	res, err := replicaLearner(t, 3).Learn()
	if err != nil {
		t.Fatal(err)
	}
	best := rr.BestResult()
	if res.PlanMakespan != best.PlanMakespan {
		t.Fatalf("Learn makespan %v, ensemble best %v", res.PlanMakespan, best.PlanMakespan)
	}
	requireSamePlan(t, res.Plan, best.Plan)
	// Best selection invariant: no replica beats the winner; ties go to
	// the lowest index.
	for i, r := range rr.Results {
		if r.PlanMakespan < best.PlanMakespan {
			t.Fatalf("replica %d (%v) beats declared best (%v)", i, r.PlanMakespan, best.PlanMakespan)
		}
		if r.PlanMakespan == best.PlanMakespan && i < rr.Best {
			t.Fatalf("tie should pick replica %d, picked %d", i, rr.Best)
		}
	}
}

// TestReplicaSharedSinkRace drives replica learning through a shared
// fan-out sink; `go test -race` turns any unsynchronised emission into
// a failure. The aggregator also proves events arrived from every
// replica.
func TestReplicaSharedSinkRace(t *testing.T) {
	agg := telemetry.NewAggregator()
	sink := telemetry.Multi(agg, telemetry.NewJSONL(io.Discard))
	rr, err := replicaLearner(t, 4, WithSink(sink)).LearnReplicas()
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(rr.Results))
	}
	s := agg.Snapshot()
	// 4 replicas × (30 episodes + 1 extraction) simulator runs.
	if want := 4 * 31; s.SimRuns != want {
		t.Fatalf("aggregated SimRuns = %d, want %d", s.SimRuns, want)
	}
}

// TestReplicaTableContinuation: replicas learning from a continuation
// table never mutate the caller's table, and the ensemble average is
// usable for the next execution.
func TestReplicaTableContinuation(t *testing.T) {
	w := montage50(t, 1)
	f := fleet(t, 16)
	seedTable := rl.NewDenseTable(w.Len(), len(f.VMs), rand.New(rand.NewSource(9)), 1.0)
	// Materialise some entries so the copy has content to preserve.
	for task := 0; task < 5; task++ {
		for vm := 0; vm < 3; vm++ {
			seedTable.Set(rl.Key{Task: task, VM: vm}, float64(task*10+vm))
		}
	}
	before := seedTable.Snapshot()

	l, err := NewLearner(Config{
		Workflow: w, Fleet: f, Episodes: 10, Sim: sim.Config{},
	}, WithSeed(5), WithReplicas(3), WithTable(seedTable))
	if err != nil {
		t.Fatal(err)
	}
	rr, err := l.LearnReplicas()
	if err != nil {
		t.Fatal(err)
	}
	after := seedTable.Snapshot()
	if len(before) != len(after) {
		t.Fatalf("caller's table grew: %d -> %d entries", len(before), len(after))
	}
	for i := range before {
		if before[i] != after[i] {
			t.Fatalf("caller's table mutated at %+v", before[i].Key)
		}
	}
	ens := rr.EnsembleTable(1)
	if ens.Len() == 0 {
		t.Fatal("ensemble table is empty")
	}
	// Continuation must accept the ensemble table.
	l2, err := NewLearner(Config{
		Workflow: w, Fleet: f, Episodes: 5, Sim: sim.Config{},
	}, WithSeed(6), WithTable(ens))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l2.Learn(); err != nil {
		t.Fatal(err)
	}
}
