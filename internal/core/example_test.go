package core_test

import (
	"fmt"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// Example runs the paper's pipeline end to end: learn a schedule for
// the 50-activation Montage workflow over 100 episodes, then inspect
// the extracted plan.
func Example() {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, _ := cloud.FleetTable1(16)
	fluct := cloud.DefaultFluctuation()

	l, _ := core.NewLearner(core.Config{
		Workflow: w,
		Fleet:    fleet,
		Params:   core.DefaultParams(), // α=0.5, γ=1.0, ε=0.1, μ=0.5
		Episodes: 100,
		Sim: sim.Config{
			Fluct: &fluct, // learn from a fluctuating environment
		},
	}, core.WithSeed(1))
	res, _ := l.Learn()

	onBigVM := 0
	for _, e := range res.Plan.Entries() {
		if fleet.VMs[e.VM].Type.Name == "t2.2xlarge" {
			onBigVM++
		}
	}
	fmt.Println("plan covers all activations:", res.Plan.Len() == w.Len())
	fmt.Println("prefers the robust VM:", onBigVM > w.Len()/2)
	// Output:
	// plan covers all activations: true
	// prefers the robust VM: true
}

// ExamplePerfIndex shows the reward ingredients of Eq. 4-6.
func ExamplePerfIndex() {
	mu := 0.5 // the paper's balance between execution and queue time
	vmIndex := core.PerfIndex(12.0, 4.0, mu)
	globalIndex := core.PerfIndex(10.0, 2.0, mu)
	stdv := 1.0

	fmt.Printf("Pi_j=%.1f Pw=%.1f\n", vmIndex, globalIndex)
	fmt.Println("crisp reward:", core.CrispReward(vmIndex, globalIndex, stdv))
	fmt.Println("smoothed:", core.SmoothReward(0, core.CrispReward(vmIndex, globalIndex, stdv), 0.5))
	// Output:
	// Pi_j=8.0 Pw=6.0
	// crisp reward: -1
	// smoothed: -0.5
}
