package core

import (
	"encoding/json"
	"fmt"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/dag"
)

// PlanEntry is one assignment of a scheduling plan.
type PlanEntry struct {
	Activation string `json:"activation"`
	VM         int    `json:"vm"`
}

// Plan is a typed activation→VM scheduling plan: the output of the
// learning stage and the input of the execution engine. Unlike the
// raw map it replaces, a Plan iterates in deterministic order
// (lexicographic by activation ID) and round-trips through JSON.
// The zero value is an empty plan.
type Plan struct {
	entries []PlanEntry // sorted by Activation
	byID    map[string]int
}

// NewPlan builds a Plan from an activation→VM map. The map is copied;
// later mutations of m do not affect the plan.
func NewPlan(m map[string]int) Plan {
	if len(m) == 0 {
		return Plan{}
	}
	byID := make(map[string]int, len(m))
	for id, vm := range m {
		byID[id] = vm
	}
	return newPlanOwned(byID)
}

// newPlanOwned builds a Plan around a map the caller hands over —
// the allocation-light path for freshly built maps (plan extraction).
func newPlanOwned(m map[string]int) Plan {
	if len(m) == 0 {
		return Plan{}
	}
	p := Plan{
		entries: make([]PlanEntry, 0, len(m)),
		byID:    m,
	}
	for id, vm := range m {
		p.entries = append(p.entries, PlanEntry{Activation: id, VM: vm})
	}
	sort.Sort(entriesByActivation(p.entries))
	return p
}

// entriesByActivation sorts concretely — sort.Slice's reflection-based
// swapper would allocate on the extraction path.
type entriesByActivation []PlanEntry

func (s entriesByActivation) Len() int           { return len(s) }
func (s entriesByActivation) Less(i, j int) bool { return s[i].Activation < s[j].Activation }
func (s entriesByActivation) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// Len returns the number of assignments.
func (p Plan) Len() int { return len(p.entries) }

// VM returns the VM ID assigned to the activation, and whether the
// plan covers it.
func (p Plan) VM(id string) (int, bool) {
	vm, ok := p.byID[id]
	return vm, ok
}

// Entries returns the assignments in deterministic order
// (lexicographic by activation ID). The slice is a copy.
func (p Plan) Entries() []PlanEntry {
	return append([]PlanEntry(nil), p.entries...)
}

// Map returns the plan as a fresh activation→VM map, for APIs that
// still consume the raw representation (e.g. sched.Plan).
func (p Plan) Map() map[string]int {
	m := make(map[string]int, len(p.entries))
	for _, e := range p.entries {
		m[e.Activation] = e.VM
	}
	return m
}

// String renders a compact summary.
func (p Plan) String() string {
	return fmt.Sprintf("plan(%d activations)", len(p.entries))
}

// PlanError is a structured plan-validation failure: the offending
// activation and VM (when the failure is entry-specific) plus a
// human-readable reason. Plan.Validate returns *PlanError so callers
// serving plans over an API can surface field-level diagnostics —
// and map validation to a client error — instead of forwarding bare
// strings (see api.FromError).
type PlanError struct {
	// Activation is the plan entry at fault ("" when the failure is
	// not entry-specific).
	Activation string
	// VM is the offending VM ID (-1 when the failure is not
	// VM-specific).
	VM int
	// Reason describes the failure.
	Reason string
}

// Error implements the error interface.
func (e *PlanError) Error() string { return "core: " + e.Reason }

// Validate checks the plan against a workflow and fleet at load time:
// every entry must reference a VM provisioned in the fleet and (when w
// is non-nil) an activation of the workflow, and every activation of
// the workflow must be covered. Catching a stale or mistyped plan
// here yields a clear error instead of a failure deep inside
// dispatch. Either argument may be nil to skip its half of the check.
// Failures are typed *PlanError.
func (p Plan) Validate(w *dag.Workflow, fleet *cloud.Fleet) error {
	if fleet != nil {
		known := make(map[int]bool, fleet.Len())
		for _, vm := range fleet.VMs {
			known[vm.ID] = true
		}
		for _, e := range p.entries {
			if !known[e.VM] {
				return &PlanError{Activation: e.Activation, VM: e.VM,
					Reason: fmt.Sprintf("plan maps %s to VM %d, absent from fleet %s (%d VMs)",
						e.Activation, e.VM, fleet.Name, fleet.Len())}
			}
		}
	}
	if w != nil {
		for _, e := range p.entries {
			if w.Get(e.Activation) == nil {
				return &PlanError{Activation: e.Activation, VM: e.VM,
					Reason: fmt.Sprintf("plan entry %s does not name an activation of workflow %s",
						e.Activation, w.Name)}
			}
		}
		for _, a := range w.Activations() {
			if _, ok := p.byID[a.ID]; !ok {
				return &PlanError{Activation: a.ID, VM: -1,
					Reason: fmt.Sprintf("plan misses activation %s", a.ID)}
			}
		}
	}
	return nil
}

// MarshalJSON encodes the plan as a sorted array of entries, making
// the encoding deterministic.
func (p Plan) MarshalJSON() ([]byte, error) {
	if p.entries == nil {
		return []byte("[]"), nil
	}
	return json.Marshal(p.entries)
}

// UnmarshalJSON decodes either the entry-array form written by
// MarshalJSON or a plain {"activation": vm} object (the legacy map
// representation). Duplicate activations are an error.
func (p *Plan) UnmarshalJSON(data []byte) error {
	var entries []PlanEntry
	if err := json.Unmarshal(data, &entries); err != nil {
		var m map[string]int
		if err2 := json.Unmarshal(data, &m); err2 != nil {
			return fmt.Errorf("core: plan: %w", err)
		}
		*p = NewPlan(m)
		return nil
	}
	byID := make(map[string]int, len(entries))
	for _, e := range entries {
		if _, dup := byID[e.Activation]; dup {
			return fmt.Errorf("core: plan: duplicate activation %q", e.Activation)
		}
		byID[e.Activation] = e.VM
	}
	*p = NewPlan(byID)
	return nil
}
