package core

import (
	"math/rand"
	"strings"
	"testing"

	"reassign/internal/rl"
	"reassign/internal/telemetry"
)

func TestNewLearnerValidation(t *testing.T) {
	w := montage50(t, 4)
	fl := fleet(t, 16)

	if _, err := NewLearner(Config{Fleet: fl}); err == nil {
		t.Error("missing workflow accepted")
	}
	if _, err := NewLearner(Config{Workflow: w}); err == nil {
		t.Error("missing fleet accepted")
	}
	if _, err := NewLearner(Config{Workflow: w, Fleet: fl, Episodes: -1}); err == nil {
		t.Error("negative episode budget accepted")
	}
	if _, err := NewLearner(Config{Workflow: w, Fleet: fl, Params: Params{Alpha: 7}}); err == nil {
		t.Error("invalid params accepted")
	}
	if _, err := NewLearner(Config{Workflow: w, Fleet: fl}, WithTable(nil)); err == nil {
		t.Error("WithTable(nil) accepted")
	}
}

func TestNewLearnerDefaults(t *testing.T) {
	w := montage50(t, 4)
	fl := fleet(t, 16)
	l, err := NewLearner(Config{Workflow: w, Fleet: fl})
	if err != nil {
		t.Fatal(err)
	}
	if l.Episodes != DefaultEpisodes {
		t.Errorf("Episodes = %d, want %d", l.Episodes, DefaultEpisodes)
	}
	if l.Params.Alpha != DefaultParams().Alpha || l.Params.Gamma != DefaultParams().Gamma {
		t.Errorf("Params = %+v, want DefaultParams", l.Params)
	}
	if l.sink != nil {
		t.Error("sink should default to nil (telemetry disabled)")
	}
}

func TestNewLearnerOptions(t *testing.T) {
	w := montage50(t, 4)
	fl := fleet(t, 16)
	table := rl.NewTable(rand.New(rand.NewSource(5)), 1.0)
	agg := telemetry.NewAggregator()
	l, err := NewLearner(Config{Workflow: w, Fleet: fl, Episodes: 3},
		WithSeed(42), WithSink(agg), WithTable(table),
		WithAlphaSchedule(rl.LinearDecay{Start: 1.0, End: 0.1, Over: 3}),
		WithEpsilonSchedule(rl.Const(0.1)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if l.Seed != 42 || l.Table != table || l.sink != telemetry.Sink(agg) {
		t.Errorf("options not applied: %+v", l)
	}
	if l.AlphaSchedule == nil || l.EpsilonSchedule == nil {
		t.Error("schedules not applied")
	}
	// WithSink(Discard) normalises to nil so the hot path stays guarded
	// by a plain nil check.
	l2, err := NewLearner(Config{Workflow: w, Fleet: fl}, WithSink(telemetry.Discard))
	if err != nil {
		t.Fatal(err)
	}
	if l2.sink != nil {
		t.Error("Discard sink not normalised to nil")
	}
}

func TestLearnNegativeEpisodesOnStructLiteral(t *testing.T) {
	// The deprecated literal form bypasses NewLearner's validation, so
	// Learn itself must reject a negative budget rather than silently
	// running zero episodes.
	l := &Learner{Workflow: montage50(t, 4), Fleet: fleet(t, 16), Params: DefaultParams(), Episodes: -3}
	_, err := l.Learn()
	if err == nil || !strings.Contains(err.Error(), "negative episode budget") {
		t.Fatalf("Learn with negative episodes: %v", err)
	}
}

func TestLearnZeroEpisodesDefaults(t *testing.T) {
	// Episodes 0 means "the paper's default budget", not "skip learning":
	// the result must report DefaultEpisodes learning episodes.
	l := &Learner{Workflow: montage50(t, 4), Fleet: fleet(t, 16), Params: DefaultParams(), Seed: 2}
	res, err := l.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Episodes) != DefaultEpisodes {
		t.Fatalf("ran %d episodes, want %d", len(res.Episodes), DefaultEpisodes)
	}
}
