package core

import (
	"context"
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
)

// DefaultEpisodes is the paper's episode budget, applied when a
// Config leaves Episodes at zero.
const DefaultEpisodes = 100

// Config carries the required inputs of a learning run. Optional
// behaviour — seed, telemetry sink, table continuation, parameter
// schedules — is supplied as Options to NewLearner.
type Config struct {
	// Workflow and Fleet are required.
	Workflow *dag.Workflow
	Fleet    *cloud.Fleet
	// Params are the learning parameters; the zero value means
	// DefaultParams() (the paper's best-performing settings).
	Params Params
	// Episodes is the learning budget: 0 defaults to DefaultEpisodes,
	// negative values are rejected.
	Episodes int
	// Sim configures the learning simulator.
	Sim sim.Config
}

// Option customises a Learner built by NewLearner.
type Option func(*Learner) error

// WithSeed sets the seed driving Q initialisation and exploration.
func WithSeed(seed int64) Option {
	return func(l *Learner) error {
		l.Seed = seed
		return nil
	}
}

// WithSink installs a telemetry sink receiving per-episode stats,
// scheduler decisions and per-run DES kernel counters. A nil sink
// keeps telemetry disabled (the zero-cost default).
func WithSink(sink telemetry.Sink) Option {
	return func(l *Learner) error {
		if sink == telemetry.Discard {
			sink = nil
		}
		l.sink = sink
		return nil
	}
}

// WithTable continues learning from an existing Q table (the paper's
// provenance-backed cross-execution learning).
func WithTable(t *rl.Table) Option {
	return func(l *Learner) error {
		if t == nil {
			return fmt.Errorf("core: WithTable(nil)")
		}
		l.Table = t
		return nil
	}
}

// WithReplicas runs k independent learners concurrently in Learn,
// each seeded from a deterministic split of the Learner's seed, and
// keeps the best resulting plan (see LearnReplicas). k = 1 is the
// plain sequential loop. Results are bit-identical for any
// GOMAXPROCS setting.
func WithReplicas(k int) Option {
	return func(l *Learner) error {
		if k < 1 {
			return fmt.Errorf("core: WithReplicas(%d): need at least one replica", k)
		}
		l.replicas = k
		return nil
	}
}

// WithContext bounds learning by ctx: cancellation (or deadline
// expiry) is observed between episodes, aborting Learn with an error
// wrapping ctx.Err(). The default runs the full episode budget. This
// is the knob long-running services use to cancel in-flight jobs.
func WithContext(ctx context.Context) Option {
	return func(l *Learner) error {
		if ctx == nil {
			return fmt.Errorf("core: WithContext(nil)")
		}
		l.ctx = ctx
		return nil
	}
}

// WithEnginePool sources the learner's simulation engines from a
// shared sim.Pool instead of constructing them per run. Pooled
// engines are rebound to this learner's problem on acquisition and
// returned after use, so concurrent learners (e.g. a scheduling
// daemon's workers) amortise engine construction across jobs without
// perturbing results — a pooled run is bit-identical to a fresh one.
func WithEnginePool(p *sim.Pool) Option {
	return func(l *Learner) error {
		if p == nil {
			return fmt.Errorf("core: WithEnginePool(nil)")
		}
		l.enginePool = p
		return nil
	}
}

// WithAlphaSchedule overrides the fixed learning rate with a
// per-episode schedule.
func WithAlphaSchedule(s rl.Schedule) Option {
	return func(l *Learner) error {
		l.AlphaSchedule = s
		return nil
	}
}

// WithEpsilonSchedule overrides the fixed exploitation probability
// with a per-episode schedule (ignored when Params.Policy is set).
func WithEpsilonSchedule(s rl.Schedule) Option {
	return func(l *Learner) error {
		l.EpsilonSchedule = s
		return nil
	}
}

// NewLearner validates cfg, applies defaults (Params zero value →
// DefaultParams, Episodes 0 → DefaultEpisodes) and the options, and
// returns a ready-to-Learn Learner. This is the supported way to
// construct a Learner; the struct literal form remains for one more
// release (see Learner).
func NewLearner(cfg Config, opts ...Option) (*Learner, error) {
	if cfg.Workflow == nil || cfg.Fleet == nil {
		return nil, fmt.Errorf("core: learner needs a workflow and a fleet")
	}
	if cfg.Episodes < 0 {
		return nil, fmt.Errorf("core: negative episode budget %d", cfg.Episodes)
	}
	if cfg.Episodes == 0 {
		cfg.Episodes = DefaultEpisodes
	}
	if cfg.Params.isZero() {
		cfg.Params = DefaultParams()
	}
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	l := &Learner{
		Workflow:  cfg.Workflow,
		Fleet:     cfg.Fleet,
		Params:    cfg.Params,
		Episodes:  cfg.Episodes,
		SimConfig: cfg.Sim,
	}
	for _, opt := range opts {
		if err := opt(l); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// isZero reports whether p is the zero Params value (every scalar
// zero, no flags, no policy) — the signal that a Config wants the
// paper defaults. Field-by-field comparison avoids == on the Policy
// interface, which could hold a non-comparable implementation.
func (p Params) isZero() bool {
	return p.Alpha == 0 && p.Gamma == 0 && p.Epsilon == 0 &&
		p.Mu == 0 && p.Rho == 0 && !p.GammaPowerT &&
		p.Scope == AllPending && p.CostWeight == 0 &&
		p.Rule == QLearning && p.Policy == nil
}
