package core

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
)

// BootstrapScope selects the action set behind Algorithm 2's
// max_a' Q(s', a'): the paper's prose ("all values of Q for each
// schedule action") suggests the whole remaining table, while a
// strict MDP reading would only admit actions available in s'.
// AllPending reproduces the paper's Table III shape (γ=1.0, ε=0.1
// dominating) and is the default; AvailableOnly is the ablation.
type BootstrapScope int

const (
	// AllPending maximises over every unfinished activation × every
	// VM.
	AllPending BootstrapScope = iota
	// AvailableOnly maximises over dependency-free, unscheduled
	// activations × idle VMs, bootstrapping 0 in "unavailable" states.
	AvailableOnly
)

// UpdateRule selects the temporal-difference target.
type UpdateRule int

const (
	// QLearning bootstraps on max_a' Q(s', a') — the paper's rule.
	QLearning UpdateRule = iota
	// SARSA bootstraps on the Q value of a policy-sampled next action
	// (on-policy ablation).
	SARSA
	// DoubleQ maintains two tables and cross-evaluates the argmax
	// (van Hasselt's Double Q-learning), correcting the maximisation
	// bias that inflates Q under the paper's rule.
	DoubleQ
)

// Params are the learning parameters of Algorithm 2.
type Params struct {
	Alpha   float64 // learning rate α
	Gamma   float64 // discount γ
	Epsilon float64 // exploitation probability ε (paper convention)
	Mu      float64 // exec-vs-queue balance μ in the performance index
	Rho     float64 // reward smoothing ρ

	// GammaPowerT applies the discount as γ^t with t the per-episode
	// decision counter, as written in Algorithm 2. False uses the
	// conventional constant γ (ablation).
	GammaPowerT bool
	// Scope selects which schedule actions the TD target maximises
	// over (Algorithm 2's max_a' Q(s', a') leaves this ambiguous).
	Scope BootstrapScope
	// CostWeight blends a monetary objective into the reward (the
	// paper's future-work direction): 0 = pure performance (the
	// paper's reward), 1 = pure cost. The cost term rewards cheap
	// slot-seconds: 1 − 2·(slot price / max slot price).
	CostWeight float64
	// Rule selects Q-learning (default) or SARSA bootstrapping.
	Rule UpdateRule
	// Policy overrides the paper's ε-greedy exploration when non-nil.
	Policy rl.Policy
}

// DefaultParams returns the paper's fixed settings (μ=0.5) with the
// best-performing learning parameters from Table III (α=0.5, γ=1.0,
// ε=0.1) and ρ=0.5.
func DefaultParams() Params {
	return Params{Alpha: 0.5, Gamma: 1.0, Epsilon: 0.1, Mu: 0.5, Rho: 0.5, GammaPowerT: true}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	check := func(name string, v, lo, hi float64) error {
		if math.IsNaN(v) || v < lo || v > hi {
			return fmt.Errorf("core: %s = %v outside [%v, %v]", name, v, lo, hi)
		}
		return nil
	}
	if err := check("alpha", p.Alpha, 0, 1); err != nil {
		return err
	}
	if err := check("gamma", p.Gamma, 0, 1); err != nil {
		return err
	}
	if err := check("epsilon", p.Epsilon, 0, 1); err != nil {
		return err
	}
	if err := check("mu", p.Mu, 0, 1); err != nil {
		return err
	}
	if err := check("rho", p.Rho, 0, 1); err != nil {
		return err
	}
	return check("costWeight", p.CostWeight, 0, 1)
}

// Scheduler is the ReASSIgN agent for one episode: it explores with
// the ε policy during Pick and updates the shared Q table from
// measured execution and queue times on every completion.
//
// Construct it with NewScheduler; the same Table may (and should) be
// shared across episodes — that is how learning progresses.
type Scheduler struct {
	params Params
	table  *rl.Table
	rng    *rand.Rand
	policy rl.Policy
	frozen bool // plan-extraction mode: greedy, no updates

	w            *dag.Workflow
	pending      []bool // by activation index: not yet succeeded
	npending     int
	inflight     []bool    // by activation index: currently assigned/running
	blockedBy    []int     // by activation index: count of pending parents
	maxSlotPrice float64   // most expensive slot-hour in the fleet
	tableB       *rl.Table // second table for DoubleQ (nil otherwise)
	rewardT      float64   // r^{t-1}, the running smoothed reward
	step         int       // t, the per-episode decision counter
	episodeR     float64   // Σ crisp rewards this episode (diagnostics)

	// Telemetry (instrument): nil sink disables the whole block, so
	// the uninstrumented hot path pays only a nil check.
	sink     telemetry.Sink
	episode  int                  // episode number stamped on events; -1 = extraction
	explain  rl.ExplainingPolicy  // policy, when it can report greedy-vs-explore
	qDeltaSq float64              // Σ (ΔQ)² of this episode's TD updates
	updates  int                  // TD updates applied this episode

	// Scratch buffers, sized in Prepare and reused every call so the
	// steady-state Pick/OnTaskComplete path does not allocate.
	readyBuf []int
	idleBuf  []int
	openBuf  []int
	outBuf   []sim.Assignment
	budget   []int          // free slots by VM ID, valid within one Pick
	vmByID   []*sim.VMState // idle VM lookup by ID, valid within one Pick
	perfBuf  []float64      // PerfStdDev scratch

	// Batched TD writes. Each completion computes its update eagerly
	// (reads — and, if needed, materialises — Q(k), keeping the
	// table's rng stream identical to an immediate update) but defers
	// the store into these buffers; FlushTD applies them in one
	// index-sorted pass. Deferral is exact, not approximate: within an
	// episode a completed activation's row is never read again (Pick,
	// bootstrap, and doubleBootstrap only touch pending rows), so no
	// in-episode read can observe the missing store.
	tdBufA []rl.Entry // pending writes to table
	tdBufB []rl.Entry // pending writes to tableB (DoubleQ)
	sorter tdSorter
}

// tdSorter orders buffered TD writes by (task, VM) so the flush walks
// the table's rows in layout order. It lives on the Scheduler so
// sort.Sort(&s.sorter) needs no per-flush allocation.
type tdSorter struct{ es []rl.Entry }

func (s *tdSorter) Len() int      { return len(s.es) }
func (s *tdSorter) Swap(i, j int) { s.es[i], s.es[j] = s.es[j], s.es[i] }
func (s *tdSorter) Less(i, j int) bool {
	if s.es[i].Key.Task != s.es[j].Key.Task {
		return s.es[i].Key.Task < s.es[j].Key.Task
	}
	return s.es[i].Key.VM < s.es[j].Key.VM
}

var _ sim.Scheduler = (*Scheduler)(nil)
var _ sim.CompletionObserver = (*Scheduler)(nil)

// NewScheduler returns an episode agent sharing the given Q table.
// rng drives exploration (pass a distinct stream per episode for
// reproducibility).
func NewScheduler(params Params, table *rl.Table, rng *rand.Rand) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if table == nil {
		return nil, fmt.Errorf("core: nil Q table")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pol := params.Policy
	if pol == nil {
		pol = rl.EpsilonGreedy{Epsilon: params.Epsilon}
	}
	return &Scheduler{params: params, table: table, rng: rng, policy: pol}, nil
}

// NewPlanExtractor returns a frozen agent that always exploits the
// table greedily and performs no updates — used to extract and
// evaluate the final scheduling plan.
func NewPlanExtractor(params Params, table *rl.Table) (*Scheduler, error) {
	s, err := NewScheduler(params, table, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	s.policy = rl.Greedy{}
	s.frozen = true
	return s, nil
}

// reset reconfigures the agent for another episode with new params
// and a fresh exploration seed, keeping the Q table and the scratch
// buffers sized by previous Prepares. Re-seeding the existing rng
// yields the same stream as rand.New(rand.NewSource(seed)), so the
// Learner's episodes are unchanged by agent reuse.
func (s *Scheduler) reset(params Params, seed int64) error {
	if err := params.Validate(); err != nil {
		return err
	}
	s.params = params
	s.rng.Seed(seed)
	pol := params.Policy
	if pol == nil {
		eg := rl.EpsilonGreedy{Epsilon: params.Epsilon}
		// Boxing the policy into the interface allocates; with a
		// constant ε (the paper's setting) the previous episode's
		// value is identical, so keep it.
		if cur, ok := s.policy.(rl.EpsilonGreedy); ok && cur == eg {
			return nil
		}
		pol = eg
	}
	s.policy = pol
	return nil
}

// WithSecondTable attaches the second Q table required by the DoubleQ
// rule (shared across episodes like the primary one) and returns the
// scheduler for chaining.
func (s *Scheduler) WithSecondTable(t *rl.Table) *Scheduler {
	s.tableB = t
	return s
}

// instrument attaches a telemetry sink and the episode number stamped
// on decision events. Call it after the policy is set (NewScheduler or
// reset); a nil sink disables instrumentation entirely.
func (s *Scheduler) instrument(sink telemetry.Sink, episode int) {
	s.sink = sink
	s.episode = episode
	s.explain = nil
	if sink != nil {
		s.explain, _ = s.policy.(rl.ExplainingPolicy)
	}
}

// Name implements sim.Scheduler.
func (s *Scheduler) Name() string { return "ReASSIgN" }

// Prepare implements sim.Scheduler: it resets per-episode state (the
// Q table persists).
func (s *Scheduler) Prepare(w *dag.Workflow, fleet *cloud.Fleet, _ *sim.Env) error {
	// An aborted previous episode may have left buffered TD writes;
	// apply them before this episode reads the table.
	s.FlushTD()
	s.w = w
	s.maxSlotPrice = 0
	for _, vm := range fleet.VMs {
		if p := slotPrice(vm); p > s.maxSlotPrice {
			s.maxSlotPrice = p
		}
	}
	n := w.Len()
	if cap(s.pending) < n {
		s.pending = make([]bool, n)
		s.inflight = make([]bool, n)
		s.blockedBy = make([]int, n)
	} else {
		s.pending = s.pending[:n]
		s.inflight = s.inflight[:n]
		s.blockedBy = s.blockedBy[:n]
	}
	for _, a := range w.Activations() {
		s.pending[a.Index] = true
		s.inflight[a.Index] = false
		s.blockedBy[a.Index] = len(a.Parents())
	}
	s.npending = n
	if cap(s.readyBuf) < n {
		s.readyBuf = make([]int, 0, n)
		s.outBuf = make([]sim.Assignment, 0, n)
	}
	if cap(s.tdBufA) < n {
		s.tdBufA = make([]rl.Entry, 0, n)
	}
	if v := len(fleet.VMs); cap(s.idleBuf) < v {
		s.idleBuf = make([]int, 0, v)
		s.openBuf = make([]int, 0, v)
		s.budget = make([]int, v)
		s.vmByID = make([]*sim.VMState, v)
		s.perfBuf = make([]float64, 0, v)
	}
	s.rewardT = 0
	s.step = 1
	s.episodeR = 0
	s.qDeltaSq = 0
	s.updates = 0
	return nil
}

// Pick implements sim.Scheduler: ε-greedy VM selection for each ready
// activation, respecting slot budgets within the round. The candidate
// list is maintained incrementally — a VM drops out (in place, order
// preserved) when its last free slot is claimed. The returned slice
// is reused by the next Pick call; the engine consumes it before
// invoking the scheduler again.
func (s *Scheduler) Pick(ctx *sim.Context) []sim.Assignment {
	if n := len(ctx.IdleVMs); n > 0 {
		// IdleVMs is sorted by ID; autoscaled fleets can outgrow the
		// Prepare-time sizing.
		if maxID := ctx.IdleVMs[n-1].VM.ID; maxID >= len(s.budget) {
			budget := make([]int, maxID+1)
			copy(budget, s.budget)
			s.budget = budget
			vmByID := make([]*sim.VMState, maxID+1)
			copy(vmByID, s.vmByID)
			s.vmByID = vmByID
		}
	}
	open := s.openBuf[:0]
	for _, v := range ctx.IdleVMs {
		id := v.VM.ID
		s.vmByID[id] = v
		s.budget[id] = v.FreeSlots()
		open = append(open, id)
	}
	out := s.outBuf[:0]
	for _, t := range ctx.Ready {
		if len(open) == 0 {
			break
		}
		var vmID int
		if s.sink != nil {
			// SelectExplained consumes the rng stream exactly as Select,
			// so instrumented runs pick identical VMs.
			greedy := false
			if s.explain != nil {
				vmID, greedy = s.explain.SelectExplained(s.table, t.Act.Index, open, s.rng)
			} else {
				vmID = s.policy.Select(s.table, t.Act.Index, open, s.rng)
			}
			s.sink.Emit(telemetry.DecisionEvent{
				Episode:    s.episode,
				Time:       ctx.Now,
				Task:       t.Act.Index,
				Activation: t.Act.ID,
				VM:         vmID,
				Greedy:     greedy,
			})
		} else {
			vmID = s.policy.Select(s.table, t.Act.Index, open, s.rng)
		}
		s.budget[vmID]--
		if s.budget[vmID] == 0 {
			for i, id := range open {
				if id == vmID {
					open = append(open[:i], open[i+1:]...)
					break
				}
			}
		}
		out = append(out, sim.Assignment{Task: t, VM: s.vmByID[vmID]})
		s.inflight[t.Act.Index] = true
		s.step++
	}
	s.openBuf = open
	s.outBuf = out
	return out
}

// OnTaskComplete implements sim.CompletionObserver: it computes the
// reward of the finished activation's schedule action from measured
// times (Eq. 4-6) and applies the TD update of Algorithm 2.
func (s *Scheduler) OnTaskComplete(t *sim.Task, env *sim.Env) {
	idx := t.Act.Index
	if s.pending[idx] {
		s.pending[idx] = false
		s.npending--
		// Keep the successor-availability counts current: each child
		// has one fewer pending parent now.
		for _, c := range t.Act.Children() {
			s.blockedBy[c.Index]--
		}
	}
	s.inflight[idx] = false
	if s.frozen {
		return
	}

	// Locate the executing VM's aggregate stats.
	var vmStats sim.VMStats
	if v := env.VMStateByID(t.VM.ID); v != nil {
		vmStats = v.Stats()
	}
	mu := s.params.Mu
	pi := VMPerfIndex(vmStats, mu)
	pw := GlobalPerfIndex(env.GlobalStats(), mu)
	s.perfBuf = AppendPerfIndices(s.perfBuf[:0], env.VMStates(), mu)
	stdv := StdDev(s.perfBuf)
	crisp := CrispReward(pi, pw, stdv)
	if cw := s.params.CostWeight; cw > 0 && s.maxSlotPrice > 0 {
		costTerm := 1 - 2*slotPrice(t.VM)/s.maxSlotPrice
		crisp = (1-cw)*crisp + cw*costTerm
	}
	s.episodeR += crisp
	s.rewardT = SmoothReward(s.rewardT, crisp, s.params.Rho)

	// Discount: γ^t per Algorithm 2, or constant γ.
	gamma := s.params.Gamma
	if s.params.GammaPowerT {
		gamma = math.Pow(s.params.Gamma, float64(s.step))
	}

	k := rl.Key{Task: t.Act.Index, VM: t.VM.ID}
	if s.params.Rule == DoubleQ && s.tableB != nil {
		// Flip a coin; the chosen table picks the argmax, the other
		// evaluates it.
		selT, evalT := s.table, s.tableB
		if s.rng.Intn(2) == 1 {
			selT, evalT = s.tableB, s.table
		}
		next := s.doubleBootstrap(env, selT, evalT)
		s.queueTD(selT, k, gamma, next)
	} else {
		next := s.bootstrap(env)
		s.queueTD(s.table, k, gamma, next)
	}
	if s.npending == 0 {
		s.FlushTD()
	}
}

// queueTD computes k's TD update eagerly — reading Q(k) consumes the
// same single lazy-init draw an immediate TDUpdate would, so the
// table's rng stream is unchanged — and buffers the store for the
// next FlushTD.
func (s *Scheduler) queueTD(tab *rl.Table, k rl.Key, gamma, next float64) {
	oldQ := tab.Value(k)
	newQ := oldQ + s.params.Alpha*(s.rewardT+gamma*next-oldQ)
	if tab == s.tableB {
		s.tdBufB = append(s.tdBufB, rl.Entry{Key: k, Value: newQ})
	} else {
		s.tdBufA = append(s.tdBufA, rl.Entry{Key: k, Value: newQ})
	}
	if s.sink != nil {
		d := newQ - oldQ
		s.qDeltaSq += d * d
		s.updates++
	}
}

// FlushTD applies the buffered TD writes of queueTD in one
// index-sorted pass per table. It runs automatically when the
// episode's last activation completes and again at the next Prepare;
// callers that read the table right after an aborted episode (e.g. a
// failure-injected run that never finished) can invoke it directly.
func (s *Scheduler) FlushTD() {
	s.flushBuf(s.table, &s.tdBufA)
	s.flushBuf(s.tableB, &s.tdBufB)
}

func (s *Scheduler) flushBuf(tab *rl.Table, buf *[]rl.Entry) {
	es := *buf
	if len(es) == 0 {
		return
	}
	s.sorter.es = es
	sort.Sort(&s.sorter)
	s.sorter.es = nil
	for _, e := range es {
		tab.Set(e.Key, e.Value)
	}
	*buf = es[:0]
}

// doubleBootstrap picks the best next action with selT and returns
// its value under evalT (Double Q-learning's cross-evaluation).
func (s *Scheduler) doubleBootstrap(env *sim.Env, selT, evalT *rl.Table) float64 {
	ready, idle := s.nextActions(env)
	if len(ready) == 0 || len(idle) == 0 {
		return 0
	}
	bestKey, _ := selT.ArgmaxRect(ready, idle)
	return evalT.Value(bestKey)
}

// bootstrap estimates the value of the successor state s': the best
// (or policy-sampled, for SARSA) Q value over the schedule actions
// *available in s'* — activations whose dependencies have all
// finished, paired with currently idle VMs. Terminal states (and
// states with no available action, the paper's "unavailable")
// bootstrap to 0.
func (s *Scheduler) bootstrap(env *sim.Env) float64 {
	ready, idle := s.nextActions(env)
	if len(ready) == 0 || len(idle) == 0 {
		return 0 // the "unavailable" state: only do-nothing is possible
	}
	switch s.params.Rule {
	case SARSA:
		// Take the lowest-index available activation and apply the
		// behaviour policy to pick its VM (on-policy bootstrap).
		vm := s.policy.Select(s.table, ready[0], idle, s.rng)
		return s.table.Value(rl.Key{Task: ready[0], VM: vm})
	default: // QLearning
		return s.table.MaxRect(ready, idle)
	}
}

// nextActions enumerates the candidate schedule actions of the
// successor state under the configured Scope, in index order (Value
// materialises random initial entries, so the access order must be
// deterministic). The returned slices alias scratch buffers reused by
// the next call.
func (s *Scheduler) nextActions(env *sim.Env) (ready, idle []int) {
	if s.npending == 0 {
		return nil, nil
	}
	ready, idle = s.readyBuf[:0], s.idleBuf[:0]
	switch s.params.Scope {
	case AvailableOnly:
		for i, p := range s.pending {
			// Available: pending, not already assigned, and every parent
			// finished (the incrementally maintained count).
			if p && !s.inflight[i] && s.blockedBy[i] == 0 {
				ready = append(ready, i)
			}
		}
		idle = env.AppendIdleVMIDs(idle)
	default: // AllPending
		for i, p := range s.pending {
			if p {
				ready = append(ready, i)
			}
		}
		idle = env.AppendVMIDs(idle)
	}
	s.readyBuf, s.idleBuf = ready, idle
	return ready, idle
}

// EpisodeReward returns the accumulated crisp reward of the episode
// so far (diagnostic).
func (s *Scheduler) EpisodeReward() float64 { return s.episodeR }

// slotPrice is a VM's hourly price per execution slot — the unit the
// cost-aware reward compares.
func slotPrice(vm *cloud.VM) float64 {
	return vm.Type.PricePerHour / float64(vm.Type.VCPUs)
}
