package core

import (
	"fmt"
	"math"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sim"
)

// BootstrapScope selects the action set behind Algorithm 2's
// max_a' Q(s', a'): the paper's prose ("all values of Q for each
// schedule action") suggests the whole remaining table, while a
// strict MDP reading would only admit actions available in s'.
// AllPending reproduces the paper's Table III shape (γ=1.0, ε=0.1
// dominating) and is the default; AvailableOnly is the ablation.
type BootstrapScope int

const (
	// AllPending maximises over every unfinished activation × every
	// VM.
	AllPending BootstrapScope = iota
	// AvailableOnly maximises over dependency-free, unscheduled
	// activations × idle VMs, bootstrapping 0 in "unavailable" states.
	AvailableOnly
)

// UpdateRule selects the temporal-difference target.
type UpdateRule int

const (
	// QLearning bootstraps on max_a' Q(s', a') — the paper's rule.
	QLearning UpdateRule = iota
	// SARSA bootstraps on the Q value of a policy-sampled next action
	// (on-policy ablation).
	SARSA
	// DoubleQ maintains two tables and cross-evaluates the argmax
	// (van Hasselt's Double Q-learning), correcting the maximisation
	// bias that inflates Q under the paper's rule.
	DoubleQ
)

// Params are the learning parameters of Algorithm 2.
type Params struct {
	Alpha   float64 // learning rate α
	Gamma   float64 // discount γ
	Epsilon float64 // exploitation probability ε (paper convention)
	Mu      float64 // exec-vs-queue balance μ in the performance index
	Rho     float64 // reward smoothing ρ

	// GammaPowerT applies the discount as γ^t with t the per-episode
	// decision counter, as written in Algorithm 2. False uses the
	// conventional constant γ (ablation).
	GammaPowerT bool
	// Scope selects which schedule actions the TD target maximises
	// over (Algorithm 2's max_a' Q(s', a') leaves this ambiguous).
	Scope BootstrapScope
	// CostWeight blends a monetary objective into the reward (the
	// paper's future-work direction): 0 = pure performance (the
	// paper's reward), 1 = pure cost. The cost term rewards cheap
	// slot-seconds: 1 − 2·(slot price / max slot price).
	CostWeight float64
	// Rule selects Q-learning (default) or SARSA bootstrapping.
	Rule UpdateRule
	// Policy overrides the paper's ε-greedy exploration when non-nil.
	Policy rl.Policy
}

// DefaultParams returns the paper's fixed settings (μ=0.5) with the
// best-performing learning parameters from Table III (α=0.5, γ=1.0,
// ε=0.1) and ρ=0.5.
func DefaultParams() Params {
	return Params{Alpha: 0.5, Gamma: 1.0, Epsilon: 0.1, Mu: 0.5, Rho: 0.5, GammaPowerT: true}
}

// Validate checks parameter ranges.
func (p Params) Validate() error {
	check := func(name string, v, lo, hi float64) error {
		if math.IsNaN(v) || v < lo || v > hi {
			return fmt.Errorf("core: %s = %v outside [%v, %v]", name, v, lo, hi)
		}
		return nil
	}
	if err := check("alpha", p.Alpha, 0, 1); err != nil {
		return err
	}
	if err := check("gamma", p.Gamma, 0, 1); err != nil {
		return err
	}
	if err := check("epsilon", p.Epsilon, 0, 1); err != nil {
		return err
	}
	if err := check("mu", p.Mu, 0, 1); err != nil {
		return err
	}
	if err := check("rho", p.Rho, 0, 1); err != nil {
		return err
	}
	return check("costWeight", p.CostWeight, 0, 1)
}

// Scheduler is the ReASSIgN agent for one episode: it explores with
// the ε policy during Pick and updates the shared Q table from
// measured execution and queue times on every completion.
//
// Construct it with NewScheduler; the same Table may (and should) be
// shared across episodes — that is how learning progresses.
type Scheduler struct {
	params Params
	table  *rl.Table
	rng    *rand.Rand
	policy rl.Policy
	frozen bool // plan-extraction mode: greedy, no updates

	w            *dag.Workflow
	pending      map[int]bool // activation indices not yet succeeded
	inflight     map[int]bool // activation indices currently assigned/running
	maxSlotPrice float64      // most expensive slot-hour in the fleet
	tableB       *rl.Table    // second table for DoubleQ (nil otherwise)
	rewardT      float64      // r^{t-1}, the running smoothed reward
	step         int          // t, the per-episode decision counter
	episodeR     float64      // Σ crisp rewards this episode (diagnostics)
}

var _ sim.Scheduler = (*Scheduler)(nil)
var _ sim.CompletionObserver = (*Scheduler)(nil)

// NewScheduler returns an episode agent sharing the given Q table.
// rng drives exploration (pass a distinct stream per episode for
// reproducibility).
func NewScheduler(params Params, table *rl.Table, rng *rand.Rand) (*Scheduler, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if table == nil {
		return nil, fmt.Errorf("core: nil Q table")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pol := params.Policy
	if pol == nil {
		pol = rl.EpsilonGreedy{Epsilon: params.Epsilon}
	}
	return &Scheduler{params: params, table: table, rng: rng, policy: pol}, nil
}

// NewPlanExtractor returns a frozen agent that always exploits the
// table greedily and performs no updates — used to extract and
// evaluate the final scheduling plan.
func NewPlanExtractor(params Params, table *rl.Table) (*Scheduler, error) {
	s, err := NewScheduler(params, table, rand.New(rand.NewSource(1)))
	if err != nil {
		return nil, err
	}
	s.policy = rl.Greedy{}
	s.frozen = true
	return s, nil
}

// WithSecondTable attaches the second Q table required by the DoubleQ
// rule (shared across episodes like the primary one) and returns the
// scheduler for chaining.
func (s *Scheduler) WithSecondTable(t *rl.Table) *Scheduler {
	s.tableB = t
	return s
}

// Name implements sim.Scheduler.
func (s *Scheduler) Name() string { return "ReASSIgN" }

// Prepare implements sim.Scheduler: it resets per-episode state (the
// Q table persists).
func (s *Scheduler) Prepare(w *dag.Workflow, fleet *cloud.Fleet, _ *sim.Env) error {
	s.w = w
	s.maxSlotPrice = 0
	for _, vm := range fleet.VMs {
		if p := slotPrice(vm); p > s.maxSlotPrice {
			s.maxSlotPrice = p
		}
	}
	s.pending = make(map[int]bool, w.Len())
	s.inflight = make(map[int]bool)
	for _, a := range w.Activations() {
		s.pending[a.Index] = true
	}
	s.rewardT = 0
	s.step = 1
	s.episodeR = 0
	return nil
}

// Pick implements sim.Scheduler: ε-greedy VM selection for each ready
// activation, respecting slot budgets within the round.
func (s *Scheduler) Pick(ctx *sim.Context) []sim.Assignment {
	free := make(map[int]*sim.VMState, len(ctx.IdleVMs))
	budget := make(map[int]int, len(ctx.IdleVMs))
	for _, v := range ctx.IdleVMs {
		free[v.VM.ID] = v
		budget[v.VM.ID] = v.FreeSlots()
	}
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		var open []int
		for _, v := range ctx.IdleVMs {
			if budget[v.VM.ID] > 0 {
				open = append(open, v.VM.ID)
			}
		}
		if len(open) == 0 {
			break
		}
		vmID := s.policy.Select(s.table, t.Act.Index, open, s.rng)
		budget[vmID]--
		out = append(out, sim.Assignment{Task: t, VM: free[vmID]})
		s.inflight[t.Act.Index] = true
		s.step++
	}
	return out
}

// OnTaskComplete implements sim.CompletionObserver: it computes the
// reward of the finished activation's schedule action from measured
// times (Eq. 4-6) and applies the TD update of Algorithm 2.
func (s *Scheduler) OnTaskComplete(t *sim.Task, env *sim.Env) {
	delete(s.pending, t.Act.Index)
	delete(s.inflight, t.Act.Index)
	if s.frozen {
		return
	}

	// Locate the executing VM's aggregate stats.
	var vmStats sim.VMStats
	for _, v := range env.VMStates() {
		if v.VM.ID == t.VM.ID {
			vmStats = v.Stats()
			break
		}
	}
	mu := s.params.Mu
	pi := VMPerfIndex(vmStats, mu)
	pw := GlobalPerfIndex(env.GlobalStats(), mu)
	stdv := PerfStdDev(env.VMStates(), mu)
	crisp := CrispReward(pi, pw, stdv)
	if cw := s.params.CostWeight; cw > 0 && s.maxSlotPrice > 0 {
		costTerm := 1 - 2*slotPrice(t.VM)/s.maxSlotPrice
		crisp = (1-cw)*crisp + cw*costTerm
	}
	s.episodeR += crisp
	s.rewardT = SmoothReward(s.rewardT, crisp, s.params.Rho)

	// Discount: γ^t per Algorithm 2, or constant γ.
	gamma := s.params.Gamma
	if s.params.GammaPowerT {
		gamma = math.Pow(s.params.Gamma, float64(s.step))
	}

	k := rl.Key{Task: t.Act.Index, VM: t.VM.ID}
	if s.params.Rule == DoubleQ && s.tableB != nil {
		// Flip a coin; the chosen table picks the argmax, the other
		// evaluates it.
		selT, evalT := s.table, s.tableB
		if s.rng.Intn(2) == 1 {
			selT, evalT = s.tableB, s.table
		}
		next := s.doubleBootstrap(env, selT, evalT)
		selT.TDUpdate(k, s.params.Alpha, s.rewardT, gamma, next)
		return
	}
	next := s.bootstrap(env)
	s.table.TDUpdate(k, s.params.Alpha, s.rewardT, gamma, next)
}

// doubleBootstrap picks the best next action with selT and returns
// its value under evalT (Double Q-learning's cross-evaluation).
func (s *Scheduler) doubleBootstrap(env *sim.Env, selT, evalT *rl.Table) float64 {
	ready, idle := s.nextActions(env)
	if len(ready) == 0 || len(idle) == 0 {
		return 0
	}
	bestKey := rl.Key{Task: ready[0], VM: idle[0]}
	bestV := math.Inf(-1)
	for _, task := range ready {
		for _, vm := range idle {
			k := rl.Key{Task: task, VM: vm}
			if v := selT.Value(k); v > bestV {
				bestV, bestKey = v, k
			}
		}
	}
	return evalT.Value(bestKey)
}

// bootstrap estimates the value of the successor state s': the best
// (or policy-sampled, for SARSA) Q value over the schedule actions
// *available in s'* — activations whose dependencies have all
// finished, paired with currently idle VMs. Terminal states (and
// states with no available action, the paper's "unavailable")
// bootstrap to 0.
func (s *Scheduler) bootstrap(env *sim.Env) float64 {
	ready, idle := s.nextActions(env)
	if len(ready) == 0 || len(idle) == 0 {
		return 0 // the "unavailable" state: only do-nothing is possible
	}
	switch s.params.Rule {
	case SARSA:
		// Take the lowest-index available activation and apply the
		// behaviour policy to pick its VM (on-policy bootstrap).
		vm := s.policy.Select(s.table, ready[0], idle, s.rng)
		return s.table.Value(rl.Key{Task: ready[0], VM: vm})
	default: // QLearning
		best := math.Inf(-1)
		for _, task := range ready {
			for _, vm := range idle {
				if q := s.table.Value(rl.Key{Task: task, VM: vm}); q > best {
					best = q
				}
			}
		}
		return best
	}
}

// nextActions enumerates the candidate schedule actions of the
// successor state under the configured Scope, in index order (Value
// materialises random initial entries, so the access order must be
// deterministic).
func (s *Scheduler) nextActions(env *sim.Env) (ready, idle []int) {
	if len(s.pending) == 0 {
		return nil, nil
	}
	switch s.params.Scope {
	case AvailableOnly:
		for i := 0; i < s.w.Len(); i++ {
			if !s.pending[i] || s.inflight[i] {
				continue
			}
			blocked := false
			for _, p := range s.w.ByIndex(i).Parents() {
				if s.pending[p.Index] {
					blocked = true
					break
				}
			}
			if !blocked {
				ready = append(ready, i)
			}
		}
		for _, v := range env.VMStates() {
			if v.Idle() {
				idle = append(idle, v.VM.ID)
			}
		}
	default: // AllPending
		for i := 0; i < s.w.Len(); i++ {
			if s.pending[i] {
				ready = append(ready, i)
			}
		}
		for _, v := range env.VMStates() {
			idle = append(idle, v.VM.ID)
		}
	}
	return ready, idle
}

// EpisodeReward returns the accumulated crisp reward of the episode
// so far (diagnostic).
func (s *Scheduler) EpisodeReward() float64 { return s.episodeR }

// slotPrice is a VM's hourly price per execution slot — the unit the
// cost-aware reward compares.
func slotPrice(vm *cloud.VM) float64 {
	return vm.Type.PricePerHour / float64(vm.Type.VCPUs)
}
