package core

import (
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// TestLearnerMapDenseEquivalence is the end-to-end backing contract:
// a Learner fed an explicit sparse table and one fed an explicit
// dense table — constructed from identical init seeds — must produce
// bit-identical episode trajectories and extracted plans, because
// both backings materialise random initial Q values lazily in access
// order.
func TestLearnerMapDenseEquivalence(t *testing.T) {
	w := montage50(t, 6)
	fl := fleet(t, 16)
	run := func(table *rl.Table) *Result {
		l := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 10, Seed: 17, Table: table}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	const initSeed = 23
	a := run(rl.NewTable(rand.New(rand.NewSource(initSeed)), 1.0))
	b := run(rl.NewDenseTable(w.Len(), len(fl.VMs), rand.New(rand.NewSource(initSeed)), 1.0))
	compareResults(t, "map", "dense", a, b)
}

// TestLearnerBandedEquivalence extends the backing contract to the
// banded table on a shape that genuinely spans several bands (300
// activations × 144 VMs, ~18 rows per 256 KiB band): map-, dense-
// and banded-backed Learners with identical init seeds must produce
// bit-identical trajectories, plans and learned tables.
func TestLearnerBandedEquivalence(t *testing.T) {
	w := trace.MontageN(rand.New(rand.NewSource(6)), 300)
	fl, err := cloud.FleetScaled(256)
	if err != nil {
		t.Fatal(err)
	}
	run := func(table *rl.Table) *Result {
		l := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 5, Seed: 17, Table: table}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	const initSeed = 23
	banded := rl.NewBandedTable(w.Len(), len(fl.VMs), rand.New(rand.NewSource(initSeed)), 1.0)
	if !banded.Banded() {
		t.Fatalf("%dx%d table is not banded", w.Len(), len(fl.VMs))
	}
	a := run(rl.NewTable(rand.New(rand.NewSource(initSeed)), 1.0))
	b := run(banded)
	c := run(rl.NewDenseTable(w.Len(), len(fl.VMs), rand.New(rand.NewSource(initSeed)), 1.0))
	compareResults(t, "map", "banded", a, b)
	compareResults(t, "dense", "banded", c, b)
}

// compareResults asserts two learning runs are bit-identical:
// episode trajectories, extracted plan, and the learned table
// entry-for-entry.
func compareResults(t *testing.T, nameA, nameB string, a, b *Result) {
	t.Helper()
	for i := range a.Episodes {
		if a.Episodes[i].Makespan != b.Episodes[i].Makespan || a.Episodes[i].Reward != b.Episodes[i].Reward {
			t.Fatalf("episode %d diverges: %s (%v, %v) vs %s (%v, %v)", i,
				nameA, a.Episodes[i].Makespan, a.Episodes[i].Reward,
				nameB, b.Episodes[i].Makespan, b.Episodes[i].Reward)
		}
	}
	if a.PlanMakespan != b.PlanMakespan {
		t.Fatalf("plan makespans diverge: %v (%s) vs %v (%s)", a.PlanMakespan, nameA, b.PlanMakespan, nameB)
	}
	if a.Plan.Len() != b.Plan.Len() {
		t.Fatalf("plan sizes diverge: %d vs %d", a.Plan.Len(), b.Plan.Len())
	}
	for _, e := range a.Plan.Entries() {
		if vm, _ := b.Plan.VM(e.Activation); vm != e.VM {
			t.Fatalf("plans diverge at %s: %d (%s) vs %d (%s)", e.Activation, e.VM, nameA, vm, nameB)
		}
	}
	// The learned tables must agree entry-for-entry as well.
	sa, sb := a.Table.Snapshot(), b.Table.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("table sizes diverge: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("table entry %d diverges: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// BenchmarkTDHotPath measures one full learning episode — Pick,
// bootstrap, and TDUpdate on every completion — against each table
// backing. The dense sub-benchmark is the Learner's default
// configuration.
func BenchmarkTDHotPath(b *testing.B) {
	w := montage50(b, 6)
	fl := fleet(b, 16)
	fluct := cloud.DefaultFluctuation()
	run := func(b *testing.B, mk func(i int) *rl.Table) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			agent, err := NewScheduler(DefaultParams(), mk(i), rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(w, fl, agent, sim.Config{Seed: int64(i), Fluct: &fluct}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("map", func(b *testing.B) {
		run(b, func(i int) *rl.Table { return rl.NewTable(rand.New(rand.NewSource(int64(i))), 1.0) })
	})
	b.Run("dense", func(b *testing.B) {
		run(b, func(i int) *rl.Table {
			return rl.NewDenseTable(w.Len(), len(fl.VMs), rand.New(rand.NewSource(int64(i))), 1.0)
		})
	})
}
