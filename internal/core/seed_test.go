package core

import (
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/rl"
	"reassign/internal/trace"
)

func seedStore(taskID, activity string) *provenance.Store {
	s := provenance.NewStore()
	// History says the activity runs 5x faster on t2.2xlarge than its
	// nominal runtime and 2x slower on t2.micro.
	s.Add(provenance.Execution{
		RunID: "r0", TaskID: taskID, Activity: activity,
		VMType: "t2.2xlarge", StartAt: 0, FinishAt: 2, Success: true,
	})
	s.Add(provenance.Execution{
		RunID: "r0", TaskID: taskID, Activity: activity,
		VMType: "t2.micro", StartAt: 0, FinishAt: 20, Success: true,
	})
	return s
}

func TestSeedTablePrefersObservedFastVM(t *testing.T) {
	w := dag.New("seed")
	w.MustAdd("a", "proj", 10)
	fleet, err := cloud.NewFleet("mix",
		[]cloud.VMType{cloud.T2Micro, cloud.T22XLarge}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	table, err := SeedTable(seedStore("a", "proj"), w, fleet, 1)
	if err != nil {
		t.Fatal(err)
	}
	ids := []int{0, 1}
	best, val := table.Best(0, ids)
	if best != 1 {
		t.Fatalf("seeded best VM = %d, want the observed-fast vm1", best)
	}
	if val != 1.0 {
		t.Fatalf("best seeded value = %v, want 1.0", val)
	}
	// The slow VM's cell is proportionally lower, inside the random
	// init span.
	slow := table.Value(rl.Key{Task: 0, VM: 0})
	if slow <= 0 || slow >= 1 {
		t.Fatalf("slow VM seeded value = %v, want in (0, 1)", slow)
	}
}

func TestSeedTableRejectsEmptyInputs(t *testing.T) {
	fleet, err := cloud.NewFleet("f", []cloud.VMType{cloud.T2Micro}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SeedTable(nil, nil, fleet, 1); err == nil {
		t.Fatal("nil workflow accepted")
	}
	if _, err := SeedTable(nil, dag.New("empty"), fleet, 1); err == nil {
		t.Fatal("empty workflow accepted")
	}
}

func TestLearnerWithProvenanceSeed(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(4)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	// Execute-then-relearn: a store with a little history seeds the
	// table and learning still converges to a full plan.
	store := provenance.NewStore()
	for _, a := range w.Activations()[:10] {
		store.Add(provenance.Execution{
			RunID: "prev", TaskID: a.ID, Activity: a.Activity,
			VMType: "t2.2xlarge", StartAt: 0, FinishAt: a.Runtime / 4,
			Success: true,
		})
	}
	l, err := NewLearner(Config{
		Workflow: w, Fleet: fleet, Params: DefaultParams(), Episodes: 5,
	}, WithSeed(3), WithProvenanceSeed(store))
	if err != nil {
		t.Fatal(err)
	}
	res, err := l.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Len() != 50 {
		t.Fatalf("plan covers %d activations", res.Plan.Len())
	}
	if err := res.Plan.Validate(w, fleet); err != nil {
		t.Fatal(err)
	}
	if _, err := NewLearner(Config{
		Workflow: w, Fleet: fleet, Params: DefaultParams(), Episodes: 1,
	}, WithProvenanceSeed(nil)); err == nil {
		t.Fatal("nil store accepted")
	}
}

func TestPlanValidate(t *testing.T) {
	w := dag.New("v")
	w.MustAdd("a", "act", 1)
	w.MustAdd("b", "act", 1)
	fleet, err := cloud.NewFleet("v", []cloud.VMType{cloud.T2Micro}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	good := NewPlan(map[string]int{"a": 0, "b": 1})
	if err := good.Validate(w, fleet); err != nil {
		t.Fatal(err)
	}
	// VM absent from the fleet.
	if err := NewPlan(map[string]int{"a": 0, "b": 9}).Validate(w, fleet); err == nil {
		t.Fatal("unknown VM accepted")
	}
	// Unknown activation.
	if err := NewPlan(map[string]int{"a": 0, "b": 1, "zz": 0}).Validate(w, fleet); err == nil {
		t.Fatal("unknown activation accepted")
	}
	// Missing activation.
	if err := NewPlan(map[string]int{"a": 0}).Validate(w, fleet); err == nil {
		t.Fatal("incomplete plan accepted")
	}
	// Nil halves skip their checks.
	if err := NewPlan(map[string]int{"zz": 9}).Validate(nil, nil); err != nil {
		t.Fatal(err)
	}
	if err := NewPlan(map[string]int{"a": 0, "b": 0}).Validate(w, nil); err != nil {
		t.Fatal(err)
	}
	if err := NewPlan(map[string]int{"zz": 0}).Validate(nil, fleet); err != nil {
		t.Fatal(err)
	}
}
