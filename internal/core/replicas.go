package core

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"reassign/internal/rl"
	"reassign/internal/telemetry"
)

// ReplicaResult is the outcome of LearnReplicas: every replica's full
// learning result plus the identity of the winner.
type ReplicaResult struct {
	// Results holds one Result per replica, in replica order. Each has
	// its own learned table, episode diagnostics and extracted plan.
	Results []*Result
	// Seeds are the per-replica learner seeds, deterministically split
	// from the parent Learner's seed: running a solo Learner with
	// Seeds[i] (and the matching table seed) reproduces replica i.
	Seeds []int64
	// Best indexes the winning replica: the lowest final-plan makespan,
	// ties broken by the lowest replica index.
	Best int
	// LearningTime is the wall-clock duration of the whole concurrent
	// ensemble (not the sum of per-replica times) — the Table II
	// quantity for the parallel pipeline.
	LearningTime time.Duration
}

// BestResult returns the winning replica's result.
func (r *ReplicaResult) BestResult() *Result { return r.Results[r.Best] }

// EnsembleTable merges the replica tables by entry-wise averaging
// (rl.Average) for cross-execution continuation: instead of carrying
// only the winner's table into the next execution, the consensus of
// all replicas seeds it. The seed drives materialisation of entries
// touched after the merge.
func (r *ReplicaResult) EnsembleTable(seed int64) *rl.Table {
	tables := make([]*rl.Table, len(r.Results))
	for i, res := range r.Results {
		tables[i] = res.Table
	}
	return rl.Average(rand.New(rand.NewSource(seed)), tables...)
}

// LearnReplicas runs the learner's replica ensemble: K independent
// learners (K = WithReplicas, default 1), each with its own seed,
// Q table and simulation engine, concurrently. The seeds are split
// from l.Seed up front via one deterministic rng stream, so the
// ensemble's results are bit-identical for any GOMAXPROCS setting —
// parallelism changes wall-clock time, never the outcome.
//
// When the learner continues from a table (WithTable), each replica
// learns on its own deep copy; the shared table is never written.
// Telemetry events fan into the learner's sink labelled with their
// replica number (sinks must be safe for concurrent use, which all
// built-in sinks are).
func (l *Learner) LearnReplicas() (*ReplicaResult, error) {
	if l.Workflow == nil || l.Fleet == nil {
		return nil, fmt.Errorf("core: learner needs a workflow and a fleet")
	}
	if l.Episodes < 0 {
		return nil, fmt.Errorf("core: negative episode budget %d", l.Episodes)
	}
	if err := l.Params.Validate(); err != nil {
		return nil, err
	}
	k := l.replicas
	if k < 1 {
		k = 1
	}
	// Split the seed stream before spawning anything: replica i's
	// seeds depend only on l.Seed and i, never on scheduling order.
	// The table seed is drawn even when unused (no continuation table)
	// so the split is stable across both modes.
	rng := rand.New(rand.NewSource(l.Seed))
	learnSeeds := make([]int64, k)
	tableSeeds := make([]int64, k)
	for i := 0; i < k; i++ {
		learnSeeds[i] = rng.Int63()
		tableSeeds[i] = rng.Int63()
	}

	rr := &ReplicaResult{
		Results: make([]*Result, k),
		Seeds:   learnSeeds,
	}
	errs := make([]error, k)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		sub := &Learner{
			Workflow:        l.Workflow,
			Fleet:           l.Fleet,
			Params:          l.Params,
			Episodes:        l.Episodes,
			SimConfig:       l.SimConfig,
			Seed:            learnSeeds[i],
			AlphaSchedule:   l.AlphaSchedule,
			EpsilonSchedule: l.EpsilonSchedule,
			sink:            telemetry.WithReplicaLabel(l.sink, i),
			ctx:             l.ctx,
			enginePool:      l.enginePool,
		}
		if l.Table != nil {
			// Own copy per replica: concurrent TD updates must not share
			// a table, and the caller's table must survive unchanged.
			sub.Table = l.Table.Copy(rand.New(rand.NewSource(tableSeeds[i])))
		}
		wg.Add(1)
		go func(i int, sub *Learner) {
			defer wg.Done()
			res, err := sub.Learn()
			if err != nil {
				errs[i] = fmt.Errorf("core: replica %d (seed %d): %w", i, sub.Seed, err)
				return
			}
			rr.Results[i] = res
		}(i, sub)
	}
	wg.Wait()
	rr.LearningTime = time.Since(start)
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	for i, res := range rr.Results {
		if res.PlanMakespan < rr.Results[rr.Best].PlanMakespan {
			rr.Best = i
		}
	}
	return rr, nil
}
