package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"reassign/internal/telemetry"
)

// traceRun performs one fully seeded 5-episode learning run with a
// JSONL sink and returns the raw trace bytes.
func traceRun(t *testing.T) []byte {
	t.Helper()
	w := montage50(t, 6)
	fl := fleet(t, 16)
	var buf bytes.Buffer
	jsonl := telemetry.NewJSONL(&buf)
	l, err := NewLearner(Config{Workflow: w, Fleet: fl, Episodes: 5},
		WithSeed(7), WithSink(jsonl))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Learn(); err != nil {
		t.Fatal(err)
	}
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestTraceByteStable is the golden guarantee of the JSONL encoding:
// a seeded run traces to byte-identical output every time, because
// events carry no wall-clock fields and the envelope's field order is
// fixed by the struct definitions.
func TestTraceByteStable(t *testing.T) {
	a := traceRun(t)
	b := traceRun(t)
	if !bytes.Equal(a, b) {
		t.Fatal("two identically seeded runs produced different traces")
	}
	if len(a) == 0 {
		t.Fatal("trace is empty")
	}
}

// TestTraceShape decodes the trace and checks the event stream has the
// structure the docs promise: one kernel + one episode record per
// episode, decision records for every scheduling decision, and a final
// extraction pass marked episode -1.
func TestTraceShape(t *testing.T) {
	const episodes = 5
	var envelopes []struct {
		Kind  string          `json:"kind"`
		Event json.RawMessage `json:"event"`
	}
	for _, line := range strings.Split(strings.TrimSpace(string(traceRun(t))), "\n") {
		var env struct {
			Kind  string          `json:"kind"`
			Event json.RawMessage `json:"event"`
		}
		if err := json.Unmarshal([]byte(line), &env); err != nil {
			t.Fatalf("bad trace line %q: %v", line, err)
		}
		envelopes = append(envelopes, env)
	}

	counts := map[string]int{}
	extraction := 0
	var lastEpisode telemetry.EpisodeEvent
	for _, env := range envelopes {
		counts[env.Kind]++
		if env.Kind == "episode" {
			var ev telemetry.EpisodeEvent
			if err := json.Unmarshal(env.Event, &ev); err != nil {
				t.Fatal(err)
			}
			if ev.Episode == -1 {
				extraction++
			} else {
				lastEpisode = ev
			}
		}
	}
	if counts["episode"] != episodes+1 {
		t.Errorf("episode records = %d, want %d learning + 1 extraction", counts["episode"], episodes+1)
	}
	if extraction != 1 {
		t.Errorf("extraction passes = %d, want 1", extraction)
	}
	if counts["kernel"] != episodes+1 {
		t.Errorf("kernel records = %d, want %d", counts["kernel"], episodes+1)
	}
	// Every scheduling decision in every run is traced: 50 activations
	// per simulation, 5 learning episodes + 1 extraction.
	if counts["decision"] != 50*(episodes+1) {
		t.Errorf("decision records = %d, want %d", counts["decision"], 50*(episodes+1))
	}
	if lastEpisode.Makespan <= 0 || lastEpisode.Updates == 0 || lastEpisode.QDelta <= 0 {
		t.Errorf("episode record looks empty: %+v", lastEpisode)
	}
	if lastEpisode.Alpha != DefaultParams().Alpha || lastEpisode.Epsilon != DefaultParams().Epsilon {
		t.Errorf("episode params: α=%v ε=%v", lastEpisode.Alpha, lastEpisode.Epsilon)
	}
	if lastEpisode.State != "successfully finished" {
		t.Errorf("episode state = %q", lastEpisode.State)
	}
}

// TestSinkDoesNotPerturbLearning is the zero-cost contract's
// observable half: enabling telemetry must not consume extra
// randomness, so an instrumented run and a bare run from the same seed
// learn the identical plan and trajectory.
func TestSinkDoesNotPerturbLearning(t *testing.T) {
	w := montage50(t, 6)
	fl := fleet(t, 16)
	run := func(sink telemetry.Sink) *Result {
		opts := []Option{WithSeed(9)}
		if sink != nil {
			opts = append(opts, WithSink(sink))
		}
		l, err := NewLearner(Config{Workflow: w, Fleet: fl, Episodes: 10}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	bare := run(nil)
	traced := run(telemetry.NewAggregator())

	if bare.PlanMakespan != traced.PlanMakespan {
		t.Errorf("plan makespans diverge: %v (bare) vs %v (traced)", bare.PlanMakespan, traced.PlanMakespan)
	}
	for i := range bare.Episodes {
		if bare.Episodes[i].Makespan != traced.Episodes[i].Makespan ||
			bare.Episodes[i].Reward != traced.Episodes[i].Reward {
			t.Fatalf("episode %d diverges with sink installed", i)
		}
	}
	for _, e := range bare.Plan.Entries() {
		if vm, _ := traced.Plan.VM(e.Activation); vm != e.VM {
			t.Fatalf("plans diverge at %s", e.Activation)
		}
	}
}

// TestAggregatorOnLearning wires an Aggregator through a learning run
// and sanity-checks the folded statistics.
func TestAggregatorOnLearning(t *testing.T) {
	w := montage50(t, 6)
	fl := fleet(t, 16)
	agg := telemetry.NewAggregator()
	l, err := NewLearner(Config{Workflow: w, Fleet: fl, Episodes: 8}, WithSeed(3), WithSink(agg))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Learn(); err != nil {
		t.Fatal(err)
	}
	s := agg.Snapshot()
	if s.Episodes != 8 {
		t.Errorf("Episodes = %d, want 8", s.Episodes)
	}
	if s.SimRuns != 9 { // 8 learning + 1 extraction
		t.Errorf("SimRuns = %d, want 9", s.SimRuns)
	}
	if s.Decisions != 50*9 {
		t.Errorf("Decisions = %d, want %d", s.Decisions, 50*9)
	}
	// ε is the paper's exploitation probability: ε=0.1 exploits ~10% of
	// learning decisions, plus the all-greedy extraction pass — so the
	// greedy share lands near (0.1·8+1)/9 ≈ 0.2.
	if r := s.GreedyRate(); r < 0.05 || r > 0.4 {
		t.Errorf("GreedyRate = %v, want ≈ 0.2", r)
	}
	if s.Makespan.Mean <= 0 || s.KernelEvents == 0 || s.MaxQueueDepth == 0 {
		t.Errorf("kernel aggregates look empty: %+v", s)
	}
	if s.FreelistHitRate() <= 0 {
		t.Error("freelist never hit across 9 runs")
	}
}
