package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func TestPerfIndex(t *testing.T) {
	// μ=0.5 averages exec and queue time.
	if got := PerfIndex(10, 20, 0.5); got != 15 {
		t.Fatalf("PerfIndex = %v, want 15", got)
	}
	// μ=1 ignores queue time; μ=0 ignores exec time.
	if got := PerfIndex(10, 20, 1); got != 10 {
		t.Fatalf("PerfIndex(μ=1) = %v", got)
	}
	if got := PerfIndex(10, 20, 0); got != 20 {
		t.Fatalf("PerfIndex(μ=0) = %v", got)
	}
}

func TestCrispReward(t *testing.T) {
	// VM index worse (larger) than global + stdv ⇒ punishment.
	if got := CrispReward(20, 10, 5); got != -1 {
		t.Fatalf("CrispReward = %v, want -1", got)
	}
	// Within one stdv ⇒ reward.
	if got := CrispReward(14, 10, 5); got != 1 {
		t.Fatalf("CrispReward = %v, want 1", got)
	}
	// Exactly at the boundary is not strictly greater ⇒ reward.
	if got := CrispReward(15, 10, 5); got != 1 {
		t.Fatalf("CrispReward(boundary) = %v, want 1", got)
	}
}

func TestSmoothReward(t *testing.T) {
	// ρ=0 keeps the history; ρ=1 takes the new value.
	if got := SmoothReward(0.5, 1, 0); got != 0.5 {
		t.Fatalf("ρ=0: %v", got)
	}
	if got := SmoothReward(0.5, 1, 1); got != 1 {
		t.Fatalf("ρ=1: %v", got)
	}
	if got := SmoothReward(0, 1, 0.5); got != 0.5 {
		t.Fatalf("ρ=0.5: %v", got)
	}
}

// Property: the smoothed reward stays within [-1, 1] for any sequence
// of crisp rewards.
func TestPropertySmoothRewardBounded(t *testing.T) {
	f := func(seed int64, n uint8, rawRho uint8) bool {
		rho := float64(rawRho%101) / 100
		rng := rand.New(rand.NewSource(seed))
		r := 0.0
		for i := 0; i < int(n); i++ {
			crisp := 1.0
			if rng.Intn(2) == 0 {
				crisp = -1
			}
			r = SmoothReward(r, crisp, rho)
			if r < -1-1e-12 || r > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestParamsValidate(t *testing.T) {
	if err := DefaultParams().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Params{
		{Alpha: -0.1, Gamma: 1, Epsilon: 0.1, Mu: 0.5, Rho: 0.5},
		{Alpha: 0.5, Gamma: 1.5, Epsilon: 0.1, Mu: 0.5, Rho: 0.5},
		{Alpha: 0.5, Gamma: 1, Epsilon: 2, Mu: 0.5, Rho: 0.5},
		{Alpha: 0.5, Gamma: 1, Epsilon: 0.1, Mu: -1, Rho: 0.5},
		{Alpha: 0.5, Gamma: 1, Epsilon: 0.1, Mu: 0.5, Rho: math.NaN()},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad params %d validated: %+v", i, p)
		}
	}
}

func TestNewSchedulerErrors(t *testing.T) {
	if _, err := NewScheduler(Params{Alpha: -1}, rl.NewTable(nil, 1), nil); err == nil {
		t.Fatal("invalid params accepted")
	}
	if _, err := NewScheduler(DefaultParams(), nil, nil); err == nil {
		t.Fatal("nil table accepted")
	}
}

func montage50(t testing.TB, seed int64) *dag.Workflow {
	rng := rand.New(rand.NewSource(seed))
	return trace.Montage50(rng)
}

func fleet(t testing.TB, vcpus int) *cloud.Fleet {
	f, err := cloud.FleetTable1(vcpus)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestSchedulerCompletesEpisode(t *testing.T) {
	w := montage50(t, 1)
	tab := rl.NewTable(rand.New(rand.NewSource(2)), 1)
	agent, err := NewScheduler(DefaultParams(), tab, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w, fleet(t, 16), agent, sim.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != sim.FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if len(res.Plan) != 50 {
		t.Fatalf("plan covers %d", len(res.Plan))
	}
	// Learning happened: table has entries and episode reward moved.
	if tab.Len() == 0 {
		t.Fatal("no Q entries materialised")
	}
	if agent.EpisodeReward() == 0 {
		t.Fatal("no rewards accumulated")
	}
}

func TestLearnerImprovesOverRandomInit(t *testing.T) {
	// The learning simulator runs with the fluctuation model: the t2
	// family has equal nominal speed, so the only exploitable signal
	// is the micro instances' throttling — which is not visible in
	// estimates, only in the measured times ReASSIgN learns from.
	// After learning, the greedy plan should beat the average random
	// plan clearly.
	// ReASSIgN is a marginal improvement by the paper's own account,
	// so assert the aggregate over several workflow instances, each
	// evaluated over several fluctuation draws (single draws swing by
	// ±20% and single instances by ±10%).
	fl := fleet(t, 16)
	fluct := cloud.DefaultFluctuation()
	var planSum, randSum float64
	for _, wseed := range []int64{1, 2, 3, 9} {
		w := montage50(t, wseed)
		l := &Learner{
			Workflow: w, Fleet: fl,
			Params:    DefaultParams(),
			Episodes:  100,
			Seed:      wseed,
			SimConfig: sim.Config{Fluct: &fluct},
		}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Episodes) != 100 {
			t.Fatalf("episodes = %d", len(res.Episodes))
		}
		if res.PlanMakespan <= 0 || res.Plan.Len() != 50 {
			t.Fatalf("plan makespan %v, plan size %d", res.PlanMakespan, res.Plan.Len())
		}
		if res.LearningTime <= 0 {
			t.Fatal("learning time not measured")
		}
		// No strict critical-path check here: the fluctuating
		// simulator's log-normal noise can shorten tasks below their
		// nominal runtimes (noiseless bounds are asserted elsewhere).
		for i := int64(0); i < 8; i++ {
			pres, err := sim.Run(w, fl, &sched.Plan{PlanName: "learned", Assign: res.Plan.Map()},
				sim.Config{Fluct: &fluct, Seed: 100 + i})
			if err != nil {
				t.Fatal(err)
			}
			planSum += pres.Makespan
			rres, err := sim.Run(w, fl, &sched.Random{Seed: i}, sim.Config{Fluct: &fluct, Seed: 100 + i})
			if err != nil {
				t.Fatal(err)
			}
			randSum += rres.Makespan
		}
	}
	if planSum >= randSum {
		t.Fatalf("learned plans' mean %v not better than mean random %v", planSum, randSum)
	}
}

func TestLearnerDeterministic(t *testing.T) {
	w := montage50(t, 6)
	fl := fleet(t, 16)
	run := func() *Result {
		l := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 10, Seed: 11}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.PlanMakespan != b.PlanMakespan {
		t.Fatalf("same seed, different plan makespans: %v vs %v", a.PlanMakespan, b.PlanMakespan)
	}
	for _, e := range a.Plan.Entries() {
		if vm, _ := b.Plan.VM(e.Activation); vm != e.VM {
			t.Fatalf("plans diverge at %s: %d vs %d", e.Activation, e.VM, vm)
		}
	}
	for i := range a.Episodes {
		if a.Episodes[i].Makespan != b.Episodes[i].Makespan {
			t.Fatalf("episode %d makespans diverge", i)
		}
	}
}

func TestLearnerContinuesFromTable(t *testing.T) {
	w := montage50(t, 7)
	fl := fleet(t, 16)
	l1 := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 5, Seed: 13}
	r1, err := l1.Learn()
	if err != nil {
		t.Fatal(err)
	}
	entries := r1.Table.Len()
	l2 := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 5, Seed: 17, Table: r1.Table}
	r2, err := l2.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if r2.Table != r1.Table {
		t.Fatal("second learner did not reuse the table")
	}
	if r2.Table.Len() < entries {
		t.Fatal("table shrank")
	}
}

func TestLearnerErrors(t *testing.T) {
	if _, err := (&Learner{}).Learn(); err == nil {
		t.Fatal("nil workflow accepted")
	}
	w := montage50(t, 8)
	l := &Learner{Workflow: w, Fleet: fleet(t, 16), Params: Params{Alpha: 9}}
	if _, err := l.Learn(); err == nil {
		t.Fatal("invalid params accepted")
	}
}

func TestPlanExtractorFrozen(t *testing.T) {
	w := montage50(t, 9)
	tab := rl.NewTable(rand.New(rand.NewSource(1)), 1)
	ext, err := NewPlanExtractor(DefaultParams(), tab)
	if err != nil {
		t.Fatal(err)
	}
	before := tab.Len()
	_ = before
	res, err := sim.Run(w, fleet(t, 16), ext, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != sim.FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	// Snapshot values must be unchanged by a frozen run for keys that
	// existed before — easiest check: run twice and compare plans.
	ext2, _ := NewPlanExtractor(DefaultParams(), tab)
	res2, err := sim.Run(w, fleet(t, 16), ext2, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	for id, vm := range res.Plan {
		if res2.Plan[id] != vm {
			t.Fatalf("frozen extraction not stable at %s", id)
		}
	}
}

func TestSARSAVariantRuns(t *testing.T) {
	w := montage50(t, 10)
	p := DefaultParams()
	p.Rule = SARSA
	l := &Learner{Workflow: w, Fleet: fleet(t, 16), Params: p, Episodes: 5, Seed: 3}
	res, err := l.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Len() != 50 {
		t.Fatalf("SARSA plan covers %d", res.Plan.Len())
	}
}

func TestConstantGammaVariantRuns(t *testing.T) {
	w := montage50(t, 11)
	p := DefaultParams()
	p.GammaPowerT = false
	p.Gamma = 0.9
	l := &Learner{Workflow: w, Fleet: fleet(t, 16), Params: p, Episodes: 5, Seed: 3}
	if _, err := l.Learn(); err != nil {
		t.Fatal(err)
	}
}

func TestBoltzmannPolicyVariantRuns(t *testing.T) {
	w := montage50(t, 12)
	p := DefaultParams()
	p.Policy = rl.Boltzmann{Temperature: 0.5}
	l := &Learner{Workflow: w, Fleet: fleet(t, 16), Params: p, Episodes: 5, Seed: 3}
	if _, err := l.Learn(); err != nil {
		t.Fatal(err)
	}
}

func TestPerfStdDevBehaviour(t *testing.T) {
	// Build VM states through a tiny simulation and verify the stddev
	// over per-VM indices is non-negative and zero for a single VM.
	w := dag.New("w")
	w.MustAdd("a", "x", 5)
	fl := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	tab := rl.NewTable(rand.New(rand.NewSource(1)), 1)
	agent, _ := NewScheduler(DefaultParams(), tab, rand.New(rand.NewSource(2)))
	if _, err := sim.Run(w, fl, agent, sim.Config{}); err != nil {
		t.Fatal(err)
	}
}

// Property: learning on any family produces a complete plan whose
// makespan respects the critical-path lower bound.
func TestPropertyLearnerProducesValidPlans(t *testing.T) {
	fams := trace.Families()
	f := func(seed int64, famIdx uint8) bool {
		fam := fams[int(famIdx)%len(fams)]
		rng := rand.New(rand.NewSource(seed))
		w := trace.Named(fam)(rng, 30)
		fl, err := cloud.FleetTable1(16)
		if err != nil {
			return false
		}
		l := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 3, Seed: seed}
		res, err := l.Learn()
		if err != nil {
			return false
		}
		if res.Plan.Len() != w.Len() {
			return false
		}
		_, cp, err := w.CriticalPath()
		if err != nil {
			return false
		}
		return res.PlanMakespan >= cp-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEpisodeMontage50(b *testing.B) {
	w := montage50(b, 1)
	fl, _ := cloud.FleetTable1(16)
	tab := rl.NewTable(rand.New(rand.NewSource(1)), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent, err := NewScheduler(DefaultParams(), tab, rand.New(rand.NewSource(int64(i))))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(w, fl, agent, sim.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLearn100Episodes(b *testing.B) {
	w := montage50(b, 1)
	fl, _ := cloud.FleetTable1(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := &Learner{Workflow: w, Fleet: fl, Params: DefaultParams(), Episodes: 100, Seed: int64(i)}
		if _, err := l.Learn(); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCostWeightValidated(t *testing.T) {
	p := DefaultParams()
	p.CostWeight = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("CostWeight > 1 accepted")
	}
}

// TestCostAwareRewardShiftsWorkToCheapSlots checks the future-work
// extension: with CostWeight=1 the learner prefers the cheap micro
// slots, yielding a lower work-based cost (and typically a worse
// makespan) than the pure-performance reward.
func TestCostAwareRewardShiftsWorkToCheapSlots(t *testing.T) {
	w := montage50(t, 3)
	fl := fleet(t, 16)
	fluct := cloud.DefaultFluctuation()
	runWeight := func(cw float64) (busyCost, makespan float64) {
		p := DefaultParams()
		p.CostWeight = cw
		l := &Learner{Workflow: w, Fleet: fl, Params: p, Episodes: 100, Seed: 3,
			SimConfig: sim.Config{Fluct: &fluct}}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		// Score the plan over several draws.
		var cost, mk float64
		for i := int64(0); i < 5; i++ {
			r, err := sim.Run(w, fl, &sched.Plan{PlanName: "p", Assign: res.Plan.Map()},
				sim.Config{Fluct: &fluct, Seed: 200 + i})
			if err != nil {
				t.Fatal(err)
			}
			cost += r.BusyCost
			mk += r.Makespan
		}
		return cost / 5, mk / 5
	}
	perfCost, _ := runWeight(0)
	cheapCost, _ := runWeight(1)
	if cheapCost >= perfCost {
		t.Fatalf("cost-aware plan busy-cost %v not below pure-performance %v", cheapCost, perfCost)
	}
}

func TestBusyCostAccounting(t *testing.T) {
	// One 3600s task on a micro VM costs exactly its hourly price in
	// busy cost.
	w := dag.New("c")
	w.MustAdd("a", "x", 3600)
	fl := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	tab := rl.NewTable(rand.New(rand.NewSource(1)), 1)
	agent, _ := NewScheduler(DefaultParams(), tab, rand.New(rand.NewSource(1)))
	res, err := sim.Run(w, fl, agent, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.BusyCost-cloud.T2Micro.PricePerHour) > 1e-9 {
		t.Fatalf("BusyCost = %v, want %v", res.BusyCost, cloud.T2Micro.PricePerHour)
	}
}

func TestDoubleQVariantRuns(t *testing.T) {
	w := montage50(t, 13)
	p := DefaultParams()
	p.Rule = DoubleQ
	l := &Learner{Workflow: w, Fleet: fleet(t, 16), Params: p, Episodes: 10, Seed: 13}
	res, err := l.Learn()
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Len() != 50 {
		t.Fatalf("DoubleQ plan covers %d", res.Plan.Len())
	}
	if l.tableB == nil || l.tableB.Len() == 0 {
		t.Fatal("second table never materialised")
	}
	// Determinism holds for DoubleQ too.
	l2 := &Learner{Workflow: w, Fleet: fleet(t, 16), Params: p, Episodes: 10, Seed: 13}
	res2, err := l2.Learn()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Plan.Entries() {
		if vm, _ := res2.Plan.VM(e.Activation); vm != e.VM {
			t.Fatalf("DoubleQ not deterministic at %s", e.Activation)
		}
	}
}

func TestDoubleQDampensInflation(t *testing.T) {
	// With γ=1 and the AllPending bootstrap, plain Q-learning inflates
	// Q values well above the reward bound; Double Q's
	// cross-evaluation should keep the mean lower.
	w := montage50(t, 14)
	fl := fleet(t, 16)
	meanQ := func(rule UpdateRule) float64 {
		p := DefaultParams()
		p.Rule = rule
		l := &Learner{Workflow: w, Fleet: fl, Params: p, Episodes: 30, Seed: 14}
		res, err := l.Learn()
		if err != nil {
			t.Fatal(err)
		}
		return res.Table.Mean()
	}
	single := meanQ(QLearning)
	double := meanQ(DoubleQ)
	if double >= single {
		t.Fatalf("DoubleQ mean %v not below Q-learning mean %v", double, single)
	}
}
