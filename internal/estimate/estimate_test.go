package estimate_test

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/estimate"
	"reassign/internal/provenance"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func microVM() *cloud.VM { return &cloud.VM{ID: 0, Type: cloud.T2Micro} }
func bigVM() *cloud.VM   { return &cloud.VM{ID: 8, Type: cloud.T22XLarge} }
func act(name string, rt float64) *dag.Activation {
	return &dag.Activation{ID: "x", Activity: name, Runtime: rt}
}

func TestPredictFallbackChain(t *testing.T) {
	e := estimate.New(cloud.Types())
	a := act("mAdd", 60)

	// No data: nominal runtime / speed.
	if got := e.Predict(a, microVM()); got != 60 {
		t.Fatalf("cold predict = %v, want 60", got)
	}

	// Activity-level data only (observed on the big type): scaled by
	// relative speed for the micro type (same t2 nominal speed → same
	// value).
	e.Observe("mAdd", "t2.2xlarge", 80)
	if got := e.Predict(a, microVM()); got != 80 {
		t.Fatalf("activity-fallback predict = %v, want 80", got)
	}

	// Cell-level data wins.
	e.Observe("mAdd", "t2.micro", 200)
	e.Observe("mAdd", "t2.micro", 100)
	if got := e.Predict(a, microVM()); got != 150 {
		t.Fatalf("cell predict = %v, want 150", got)
	}
	if got := e.Predict(a, bigVM()); got != 80 {
		t.Fatalf("big predict = %v, want 80", got)
	}
}

func TestObserveIgnoresNegative(t *testing.T) {
	e := estimate.New(cloud.Types())
	e.Observe("x", "t2.micro", -5)
	if e.Samples("x", "t2.micro") != 0 {
		t.Fatal("negative observation accepted")
	}
}

func TestSamples(t *testing.T) {
	e := estimate.New(cloud.Types())
	if e.Samples("a", "t2.micro") != 0 {
		t.Fatal("fresh estimator has samples")
	}
	e.Observe("a", "t2.micro", 1)
	e.Observe("a", "t2.micro", 2)
	if e.Samples("a", "t2.micro") != 2 {
		t.Fatalf("Samples = %d", e.Samples("a", "t2.micro"))
	}
}

func TestObserveStore(t *testing.T) {
	s := provenance.NewStore()
	s.Add(provenance.Execution{RunID: "r1", TaskID: "t", Activity: "mAdd",
		VMID: 0, VMType: "t2.micro", StartAt: 0, FinishAt: 10, Success: true})
	s.Add(provenance.Execution{RunID: "r1", TaskID: "t2", Activity: "mAdd",
		VMID: 0, VMType: "t2.micro", StartAt: 0, FinishAt: 20, Success: false}) // ignored
	s.Add(provenance.Execution{RunID: "r2", TaskID: "t3", Activity: "mAdd",
		VMID: 0, VMType: "t2.micro", StartAt: 0, FinishAt: 30, Success: true})

	e := estimate.New(cloud.Types())
	if n := e.ObserveStore(s, "r1"); n != 1 {
		t.Fatalf("ObserveStore(r1) = %d", n)
	}
	if got := e.Predict(act("mAdd", 99), microVM()); got != 10 {
		t.Fatalf("predict = %v, want 10", got)
	}
	e2 := estimate.New(cloud.Types())
	if n := e2.ObserveStore(s, ""); n != 2 {
		t.Fatalf("ObserveStore(all) = %d", n)
	}
	if got := e2.Predict(act("mAdd", 99), microVM()); got != 20 {
		t.Fatalf("predict = %v, want 20", got)
	}
}

func TestObserveResult(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage(rng, 4, 2)
	fleet, _ := cloud.FleetTable1(16)
	res, err := sim.Run(w, fleet, sched.FCFS{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := estimate.New(cloud.Types())
	if n := e.ObserveResult(res); n != w.Len() {
		t.Fatalf("ObserveResult = %d, want %d", n, w.Len())
	}
	// Predictions for observed activities are positive and finite.
	for _, a := range w.Activations() {
		p := e.Predict(a, fleet.VMs[0])
		if p <= 0 || math.IsInf(p, 0) || math.IsNaN(p) {
			t.Fatalf("predict(%s) = %v", a.Activity, p)
		}
	}
}

func TestSlowdownFactor(t *testing.T) {
	e := estimate.New(cloud.Types())
	if got := e.SlowdownFactor("t2.micro"); got != 1 {
		t.Fatalf("cold slowdown = %v", got)
	}
	// micro twice as slow as 2xlarge for the same activity.
	e.Observe("mProjectPP", "t2.micro", 20)
	e.Observe("mProjectPP", "t2.2xlarge", 10)
	if got := e.SlowdownFactor("t2.micro"); math.Abs(got-2) > 1e-9 {
		t.Fatalf("micro slowdown = %v, want 2", got)
	}
	if got := e.SlowdownFactor("t2.2xlarge"); math.Abs(got-1) > 1e-9 {
		t.Fatalf("2xlarge slowdown = %v, want 1", got)
	}
}

func TestReport(t *testing.T) {
	e := estimate.New(cloud.Types())
	e.Observe("b", "t2.micro", 4)
	e.Observe("a", "t2.micro", 2)
	lines := e.Report()
	if len(lines) != 2 {
		t.Fatalf("report = %v", lines)
	}
	if !strings.HasPrefix(lines[0], "a on t2.micro") {
		t.Fatalf("report not sorted: %v", lines)
	}
	if !strings.Contains(lines[1], "mean 4.00s over 1 runs") {
		t.Fatalf("report content: %v", lines)
	}
}

func TestConcurrentObserve(t *testing.T) {
	e := estimate.New(cloud.Types())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				e.Observe("x", "t2.micro", 1)
				_ = e.Predict(act("x", 1), microVM())
			}
		}()
	}
	wg.Wait()
	if e.Samples("x", "t2.micro") != 1600 {
		t.Fatalf("Samples = %d", e.Samples("x", "t2.micro"))
	}
}

// TestCalibratedHEFTAvoidsThrottledVMs is the headline behaviour: a
// HEFT whose costs come from fluctuation-tainted history places less
// work on micro instances than blind HEFT, and achieves a better mean
// makespan in the fluctuating environment.
func TestCalibratedHEFTAvoidsThrottledVMs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(16)
	fluct := cloud.DefaultFluctuation()

	// History: several fluctuating runs with randomised placement, so
	// task identity is not confounded with VM type (an FCFS history
	// always maps the same task to the same VM).
	e := estimate.New(cloud.Types())
	for i := int64(0); i < 10; i++ {
		res, err := sim.Run(w, fleet, &sched.Random{Seed: i}, sim.Config{Fluct: &fluct, Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		e.ObserveResult(res)
	}
	if f := e.SlowdownFactor("t2.micro"); f <= 1.05 {
		t.Fatalf("history shows no micro slowdown: %v", f)
	}

	blind := &sched.HEFT{}
	calibrated := &sched.HEFT{Costs: e.CostFunc()}
	meanOf := func(s sim.Scheduler) float64 {
		var sum float64
		for i := int64(50); i < 58; i++ {
			res, err := sim.Run(w, fleet, s, sim.Config{Fluct: &fluct, Seed: i})
			if err != nil {
				t.Fatal(err)
			}
			sum += res.Makespan
		}
		return sum / 8
	}
	blindMk := meanOf(blind)
	calMk := meanOf(calibrated)
	if calMk >= blindMk {
		t.Fatalf("calibrated HEFT %v not better than blind %v", calMk, blindMk)
	}

	microShare := func(assign map[string]int) float64 {
		n := 0
		for _, vm := range assign {
			if fleet.VMs[vm].Type.VCPUs == 1 {
				n++
			}
		}
		return float64(n) / float64(len(assign))
	}
	if microShare(calibrated.Assign()) >= microShare(blind.Assign()) {
		t.Fatalf("calibrated HEFT micro share %.2f not below blind %.2f",
			microShare(calibrated.Assign()), microShare(blind.Assign()))
	}
}

// Property: predictions are always positive and finite for positive
// nominal runtimes, regardless of observation history.
func TestPropertyPredictFinite(t *testing.T) {
	f := func(seed int64, obs []uint16, rtRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		e := estimate.New(cloud.Types())
		types := cloud.Types()
		for _, o := range obs {
			ty := types[rng.Intn(len(types))]
			e.Observe("act", ty.Name, float64(o)/10)
		}
		rt := float64(rtRaw)/100 + 0.01
		for _, ty := range types {
			p := e.Predict(act("act", rt), &cloud.VM{ID: 0, Type: ty})
			if p < 0 || math.IsNaN(p) || math.IsInf(p, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowdownFactorMin(t *testing.T) {
	e := estimate.New(cloud.Types())
	// One noisy sample on micro: ignored at minSamples=2.
	e.Observe("act", "t2.micro", 100)
	e.Observe("act", "t2.2xlarge", 10)
	if got := e.SlowdownFactorMin("t2.micro", 2); got != 1 {
		t.Fatalf("under-sampled slowdown = %v, want 1", got)
	}
	// With enough samples the ratio appears.
	e.Observe("act", "t2.micro", 100)
	e.Observe("act", "t2.2xlarge", 10)
	if got := e.SlowdownFactorMin("t2.micro", 2); math.Abs(got-10) > 1e-9 {
		t.Fatalf("slowdown = %v, want 10", got)
	}
}
