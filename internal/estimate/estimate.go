// Package estimate builds activation-runtime predictors from
// provenance history — the role the paper assigns to the SciCumulus
// provenance database ("such information can be used in future
// executions").
//
// The estimator aggregates observed execution times per
// (activity, VM type) and predicts with a hierarchy of fallbacks:
// exact (activity, type) mean → activity mean scaled by type speed →
// the activation's nominal runtime. It powers the calibrated-HEFT
// baseline (sched.HEFT with Costs set), which closes part of the gap
// the paper attributes to HEFT's blindness to real VM behaviour.
package estimate

import (
	"fmt"
	"sort"
	"sync"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/sim"
)

// key identifies one (activity, VM type) cell.
type key struct {
	activity string
	vmType   string
}

type cell struct {
	n   int
	sum float64
}

// Estimator predicts activation execution times from history. Safe
// for concurrent use.
type Estimator struct {
	mu      sync.RWMutex
	byCell  map[key]cell
	byAct   map[string]cell
	catalog map[string]float64 // vm type -> relative speed
}

// New returns an empty estimator that knows the relative speeds of
// the given VM types (used for the scaling fallback).
func New(types []cloud.VMType) *Estimator {
	cat := make(map[string]float64, len(types))
	for _, t := range types {
		cat[t.Name] = t.Speed
	}
	return &Estimator{
		byCell:  make(map[key]cell),
		byAct:   make(map[string]cell),
		catalog: cat,
	}
}

// Observe folds one measured execution into the model.
func (e *Estimator) Observe(activity, vmType string, execSeconds float64) {
	if execSeconds < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	k := key{activity, vmType}
	c := e.byCell[k]
	c.n++
	c.sum += execSeconds
	e.byCell[k] = c
	a := e.byAct[activity]
	a.n++
	a.sum += execSeconds
	e.byAct[activity] = a
}

// ObserveStore folds every successful record of a provenance store
// (optionally restricted to one run ID; "" = all) into the model and
// returns the number of records used.
func (e *Estimator) ObserveStore(s *provenance.Store, runID string) int {
	n := 0
	for _, rec := range s.All() {
		if !rec.Success || (runID != "" && rec.RunID != runID) {
			continue
		}
		e.Observe(rec.Activity, rec.VMType, rec.ExecTime())
		n++
	}
	return n
}

// ObserveResult folds a simulation result's records into the model.
func (e *Estimator) ObserveResult(res *sim.Result) int {
	n := 0
	for _, rec := range res.Records {
		if !rec.Success {
			continue
		}
		e.Observe(rec.Activity, rec.VMType, rec.ExecTime())
		n++
	}
	return n
}

// Samples returns how many observations back the (activity, vmType)
// cell.
func (e *Estimator) Samples(activity, vmType string) int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.byCell[key{activity, vmType}].n
}

// Predict estimates the execution time of activation a on vm.
// Fallback chain: cell mean → activity mean rescaled by relative
// speed (observations are speed-weighted-average, so this is a crude
// but serviceable prior) → nominal runtime scaled by speed.
func (e *Estimator) Predict(a *dag.Activation, vm *cloud.VM) float64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if c := e.byCell[key{a.Activity, vm.Type.Name}]; c.n > 0 {
		return c.sum / float64(c.n)
	}
	if c := e.byAct[a.Activity]; c.n > 0 {
		mean := c.sum / float64(c.n)
		if sp, ok := e.catalog[vm.Type.Name]; ok && sp > 0 {
			return mean / sp
		}
		return mean
	}
	sp := vm.Type.Speed
	if sp <= 0 {
		sp = 1
	}
	return a.Runtime / sp
}

// SlowdownFactor returns the observed mean slowdown of a VM type
// relative to the fastest observed type for the same activities, or
// 1 when there is not enough data. It quantifies what the paper's
// estimates miss (e.g. micro-instance throttling).
func (e *Estimator) SlowdownFactor(vmType string) float64 {
	return e.SlowdownFactorMin(vmType, 1)
}

// SlowdownFactorMin is SlowdownFactor restricted to comparisons where
// both cells carry at least minSamples observations — small samples
// confound per-task runtime variance with VM-type effects, so
// adaptive triggers should require a few observations per cell.
func (e *Estimator) SlowdownFactorMin(vmType string, minSamples int) float64 {
	if minSamples < 1 {
		minSamples = 1
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	// For each activity observed on vmType, compare against the
	// minimum sufficiently-sampled mean across types; average the
	// ratios.
	var ratios []float64
	for k, c := range e.byCell {
		if k.vmType != vmType || c.n < minSamples {
			continue
		}
		mean := c.sum / float64(c.n)
		best := mean
		for k2, c2 := range e.byCell {
			if k2.activity == k.activity && c2.n >= minSamples {
				if m := c2.sum / float64(c2.n); m < best {
					best = m
				}
			}
		}
		if best > 0 {
			ratios = append(ratios, mean/best)
		}
	}
	if len(ratios) == 0 {
		return 1
	}
	var s float64
	for _, r := range ratios {
		s += r
	}
	return s / float64(len(ratios))
}

// Report summarises the model as sorted lines, for diagnostics.
func (e *Estimator) Report() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	keys := make([]key, 0, len(e.byCell))
	for k := range e.byCell {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].activity != keys[j].activity {
			return keys[i].activity < keys[j].activity
		}
		return keys[i].vmType < keys[j].vmType
	})
	out := make([]string, 0, len(keys))
	for _, k := range keys {
		c := e.byCell[k]
		out = append(out, fmt.Sprintf("%s on %s: mean %.2fs over %d runs",
			k.activity, k.vmType, c.sum/float64(c.n), c.n))
	}
	return out
}

// CostFunc adapts the estimator to sched.HEFT's Costs hook.
func (e *Estimator) CostFunc() func(a *dag.Activation, vm *cloud.VM) float64 {
	return e.Predict
}
