package cloud

import (
	"testing"
	"testing/quick"
)

func TestTopologyBasics(t *testing.T) {
	topo := NewTopology(5, "us-east", "eu-west", "ap-south")
	sites := topo.Sites()
	if len(sites) != 3 || sites[0] != "ap-south" {
		t.Fatalf("Sites = %v", sites)
	}
	if !topo.HasSite("us-east") || topo.HasSite("mars") {
		t.Fatal("HasSite wrong")
	}
	// Default link bandwidth.
	if got := topo.Bandwidth("us-east", "eu-west"); got != 5 {
		t.Fatalf("default bandwidth = %v", got)
	}
	// Same site: unlimited (0 sentinel).
	if got := topo.Bandwidth("us-east", "us-east"); got != 0 {
		t.Fatalf("same-site bandwidth = %v", got)
	}
	// Explicit symmetric link.
	if err := topo.SetBandwidth("us-east", "eu-west", 12); err != nil {
		t.Fatal(err)
	}
	if topo.Bandwidth("eu-west", "us-east") != 12 {
		t.Fatal("link not symmetric")
	}
}

func TestTopologyErrors(t *testing.T) {
	topo := NewTopology(5, "a", "b")
	if err := topo.SetBandwidth("a", "ghost", 1); err == nil {
		t.Fatal("unknown site accepted")
	}
	if err := topo.SetBandwidth("a", "a", 1); err == nil {
		t.Fatal("intra-site link accepted")
	}
	if err := topo.SetBandwidth("a", "b", 0); err == nil {
		t.Fatal("zero bandwidth accepted")
	}
}

func TestNewMultiSiteFleet(t *testing.T) {
	topo := NewTopology(5, "east", "west")
	f, err := NewMultiSiteFleet("ms", topo, []SiteSpec{
		{Site: "east", Types: []VMType{T2Micro, T22XLarge}, Counts: []int{2, 1}},
		{Site: "west", Types: []VMType{T2Micro}, Counts: []int{3}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 6 {
		t.Fatalf("Len = %d", f.Len())
	}
	bySite := f.CountBySite()
	if bySite["east"] != 3 || bySite["west"] != 3 {
		t.Fatalf("CountBySite = %v", bySite)
	}
	if f.VMs[0].Site != "east" || f.VMs[5].Site != "west" {
		t.Fatalf("site assignment wrong: %v %v", f.VMs[0].Site, f.VMs[5].Site)
	}
	if f.Topology != topo {
		t.Fatal("topology not attached")
	}
	// IDs sequential across sites.
	for i, vm := range f.VMs {
		if vm.ID != i {
			t.Fatalf("VM %d has ID %d", i, vm.ID)
		}
	}
}

func TestNewMultiSiteFleetErrors(t *testing.T) {
	topo := NewTopology(5, "east")
	if _, err := NewMultiSiteFleet("ms", nil, []SiteSpec{{Site: "east"}}); err == nil {
		t.Fatal("nil topology accepted")
	}
	if _, err := NewMultiSiteFleet("ms", topo, nil); err == nil {
		t.Fatal("no specs accepted")
	}
	if _, err := NewMultiSiteFleet("ms", topo, []SiteSpec{{Site: "ghost"}}); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := NewMultiSiteFleet("ms", topo, []SiteSpec{
		{Site: "east", Types: []VMType{T2Micro}, Counts: []int{1, 2}},
	}); err == nil {
		t.Fatal("mismatched types/counts accepted")
	}
	if _, err := NewMultiSiteFleet("ms", topo, []SiteSpec{
		{Site: "east", Types: []VMType{T2Micro}, Counts: []int{-1}},
	}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := NewMultiSiteFleet("ms", topo, []SiteSpec{
		{Site: "east", Types: []VMType{T2Micro}, Counts: []int{0}},
	}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

// Property: Bandwidth is symmetric and positive for distinct sites.
func TestPropertyBandwidthSymmetric(t *testing.T) {
	sites := []string{"a", "b", "c", "d"}
	f := func(links []uint8) bool {
		topo := NewTopology(7, sites...)
		for i, l := range links {
			a := sites[i%len(sites)]
			b := sites[(i+1+int(l))%len(sites)]
			if a == b {
				continue
			}
			if err := topo.SetBandwidth(a, b, float64(l%50)+1); err != nil {
				return false
			}
		}
		for _, a := range sites {
			for _, b := range sites {
				if a == b {
					if topo.Bandwidth(a, b) != 0 {
						return false
					}
					continue
				}
				if topo.Bandwidth(a, b) != topo.Bandwidth(b, a) || topo.Bandwidth(a, b) <= 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
