package cloud

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogue(t *testing.T) {
	types := Types()
	if len(types) != 5 {
		t.Fatalf("catalogue has %d types", len(types))
	}
	for _, ty := range types {
		if ty.VCPUs < 1 || ty.Speed <= 0 || ty.PricePerHour <= 0 || ty.RAMMB <= 0 {
			t.Errorf("bad type %+v", ty)
		}
	}
	if T2Micro.VCPUs != 1 || T2Micro.RAMMB != 1024 {
		t.Errorf("t2.micro = %+v, want 1 vCPU / 1 GB per the paper", T2Micro)
	}
	if T22XLarge.VCPUs != 8 || T22XLarge.RAMMB != 16384 {
		t.Errorf("t2.2xlarge = %+v, want 8 vCPU / 16 GB per the paper", T22XLarge)
	}
}

func TestTypeByName(t *testing.T) {
	ty, ok := TypeByName("t2.micro")
	if !ok || ty.Name != "t2.micro" {
		t.Fatalf("TypeByName(t2.micro) = %v, %v", ty, ok)
	}
	if _, ok := TypeByName("m5.enormous"); ok {
		t.Fatal("unknown type found")
	}
}

func TestNewFleet(t *testing.T) {
	f, err := NewFleet("f", []VMType{T2Micro, T22XLarge}, []int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("Len = %d", f.Len())
	}
	// IDs sequential, micro first.
	for i, vm := range f.VMs {
		if vm.ID != i {
			t.Fatalf("VM %d has ID %d", i, vm.ID)
		}
	}
	if f.VMs[0].Type.Name != "t2.micro" || f.VMs[2].Type.Name != "t2.2xlarge" {
		t.Fatalf("ordering wrong: %v", f.VMs)
	}
	if got := f.VCPUs(); got != 10 {
		t.Fatalf("VCPUs = %d, want 10", got)
	}
	counts := f.CountByType()
	if counts["t2.micro"] != 2 || counts["t2.2xlarge"] != 1 {
		t.Fatalf("CountByType = %v", counts)
	}
}

func TestNewFleetErrors(t *testing.T) {
	if _, err := NewFleet("f", []VMType{T2Micro}, []int{1, 2}); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	if _, err := NewFleet("f", []VMType{T2Micro}, []int{-1}); err == nil {
		t.Fatal("negative count accepted")
	}
	if _, err := NewFleet("f", []VMType{T2Micro}, []int{0}); err == nil {
		t.Fatal("empty fleet accepted")
	}
}

func TestFleetTable1(t *testing.T) {
	want := map[int]struct{ vms, big int }{
		16: {9, 1},
		32: {11, 3},
		64: {15, 7},
	}
	for vcpus, exp := range want {
		f, err := FleetTable1(vcpus)
		if err != nil {
			t.Fatal(err)
		}
		if f.Len() != exp.vms {
			t.Errorf("%d vCPUs: %d VMs, want %d (Table I)", vcpus, f.Len(), exp.vms)
		}
		if got := f.VCPUs(); got != vcpus {
			t.Errorf("%d vCPUs: fleet reports %d", vcpus, got)
		}
		counts := f.CountByType()
		if counts["t2.micro"] != 8 || counts["t2.2xlarge"] != exp.big {
			t.Errorf("%d vCPUs: counts = %v", vcpus, counts)
		}
	}
	if _, err := FleetTable1(48); err == nil {
		t.Fatal("unknown Table I config accepted")
	}
	if got := Table1VCPUs(); len(got) != 3 || got[0] != 16 || got[2] != 64 {
		t.Fatalf("Table1VCPUs = %v", got)
	}
}

func TestPriceAndCost(t *testing.T) {
	f := MustFleet("f", []VMType{T2Micro}, []int{2})
	wantHourly := 2 * 0.0116
	if got := f.PricePerHour(); math.Abs(got-wantHourly) > 1e-12 {
		t.Fatalf("PricePerHour = %v, want %v", got, wantHourly)
	}
	if got := f.Cost(0); got != 0 {
		t.Fatalf("Cost(0) = %v", got)
	}
	// 1 second bills a full hour.
	if got := f.Cost(1); math.Abs(got-wantHourly) > 1e-12 {
		t.Fatalf("Cost(1) = %v, want %v", got, wantHourly)
	}
	// 3601 seconds bills two hours.
	if got := f.Cost(3601); math.Abs(got-2*wantHourly) > 1e-12 {
		t.Fatalf("Cost(3601) = %v, want %v", got, 2*wantHourly)
	}
}

func TestMustFleetPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustFleet did not panic")
		}
	}()
	MustFleet("bad", []VMType{T2Micro}, []int{0})
}

func TestFluctuationZeroIsIdentity(t *testing.T) {
	m := FluctuationModel{}
	rng := rand.New(rand.NewSource(1))
	vm := &VM{ID: 0, Type: T2Micro}
	for i := 0; i < 100; i++ {
		if got := m.Apply(rng, vm, 10); got != 10 {
			t.Fatalf("zero model changed duration: %v", got)
		}
	}
}

func TestFluctuationThrottlesOnlyMicro(t *testing.T) {
	m := FluctuationModel{MicroThrottleProb: 1.0, ThrottleFactor: 3}
	rng := rand.New(rand.NewSource(2))
	micro := &VM{ID: 0, Type: T2Micro}
	big := &VM{ID: 1, Type: T22XLarge}
	if got := m.Apply(rng, micro, 10); got != 30 {
		t.Fatalf("micro not throttled: %v", got)
	}
	if got := m.Apply(rng, big, 10); got != 10 {
		t.Fatalf("2xlarge throttled: %v", got)
	}
}

func TestFluctuationMigrationPause(t *testing.T) {
	m := FluctuationModel{MigrationProb: 1.0, MigrationPause: 7}
	rng := rand.New(rand.NewSource(3))
	vm := &VM{ID: 0, Type: T22XLarge}
	if got := m.Apply(rng, vm, 10); got != 17 {
		t.Fatalf("migration pause not applied: %v", got)
	}
}

func TestDefaultFluctuationMeanBias(t *testing.T) {
	// On micro instances the default model must inflate mean runtime
	// noticeably more than on 2xlarge — that asymmetry drives the
	// Table IV crossover.
	m := DefaultFluctuation()
	rng := rand.New(rand.NewSource(4))
	micro := &VM{ID: 0, Type: T2Micro}
	big := &VM{ID: 1, Type: T22XLarge}
	var sumM, sumB float64
	const n = 20000
	for i := 0; i < n; i++ {
		sumM += m.Apply(rng, micro, 10)
		sumB += m.Apply(rng, big, 10)
	}
	meanM, meanB := sumM/n, sumB/n
	if meanM < meanB*1.15 {
		t.Fatalf("micro mean %v not clearly above 2xlarge mean %v", meanM, meanB)
	}
	if meanB < 10 || meanB > 12 {
		t.Fatalf("2xlarge mean %v drifted from nominal 10", meanB)
	}
}

func TestFailureModel(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	if (FailureModel{Rate: 0}).Fails(rng) {
		t.Fatal("zero rate failed")
	}
	always := FailureModel{Rate: 1.0}
	for i := 0; i < 10; i++ {
		if !always.Fails(rng) {
			t.Fatal("rate 1.0 did not fail")
		}
	}
	half := FailureModel{Rate: 0.5}
	n := 0
	for i := 0; i < 10000; i++ {
		if half.Fails(rng) {
			n++
		}
	}
	if n < 4500 || n > 5500 {
		t.Fatalf("rate 0.5 failed %d/10000 times", n)
	}
}

// Property: fluctuation never returns a negative duration and is
// monotone in the nominal duration on average.
func TestPropertyFluctuationNonNegative(t *testing.T) {
	f := func(seed int64, rawNom uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		m := DefaultFluctuation()
		vm := &VM{ID: 0, Type: T2Micro}
		nom := float64(rawNom) / 100
		for i := 0; i < 50; i++ {
			if m.Apply(rng, vm, nom) < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: fleet cost is non-decreasing in duration.
func TestPropertyCostMonotone(t *testing.T) {
	f := func(a, b uint32) bool {
		fl := MustFleet("f", []VMType{T2Micro, T22XLarge}, []int{3, 2})
		x, y := float64(a%1_000_000), float64(b%1_000_000)
		if x > y {
			x, y = y, x
		}
		return fl.Cost(x) <= fl.Cost(y)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestVMString(t *testing.T) {
	vm := &VM{ID: 3, Type: T22XLarge}
	if got := vm.String(); got != "vm3(t2.2xlarge)" {
		t.Fatalf("String = %q", got)
	}
}
