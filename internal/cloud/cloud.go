// Package cloud models the IaaS substrate the paper schedules onto:
// VM types with heterogeneous capacity (Amazon t2.micro and
// t2.2xlarge in the evaluation), fleets of provisioned VMs, on-demand
// pricing, and the dynamic-environment effects the paper argues are
// hard to model analytically — multi-tenant performance fluctuation,
// burst-credit throttling and live-migration pauses.
package cloud

import (
	"fmt"
	"math"
	"math/rand"
)

// VMType describes an instance type in the catalogue.
type VMType struct {
	Name         string
	VCPUs        int
	RAMMB        int
	Speed        float64 // relative per-core speed; 1.0 = reference core
	PricePerHour float64 // USD, us-east-1 on-demand
	NetMBps      float64 // sustained network bandwidth, MB/s
}

// Catalogue of the types used in the paper plus neighbours for
// larger sweeps. Speeds are relative: the t2 family shares a core
// speed, so a t2.2xlarge wins by running 8 activations at once, and
// (in the fluctuating executor) by not exhausting burst credits.
var (
	T2Micro = VMType{
		Name: "t2.micro", VCPUs: 1, RAMMB: 1024,
		Speed: 1.0, PricePerHour: 0.0116, NetMBps: 8,
	}
	T2Small = VMType{
		Name: "t2.small", VCPUs: 1, RAMMB: 2048,
		Speed: 1.0, PricePerHour: 0.023, NetMBps: 16,
	}
	T2Large = VMType{
		Name: "t2.large", VCPUs: 2, RAMMB: 8192,
		Speed: 1.0, PricePerHour: 0.0928, NetMBps: 64,
	}
	T2XLarge = VMType{
		Name: "t2.xlarge", VCPUs: 4, RAMMB: 16384,
		Speed: 1.0, PricePerHour: 0.1856, NetMBps: 94,
	}
	T22XLarge = VMType{
		Name: "t2.2xlarge", VCPUs: 8, RAMMB: 16384,
		Speed: 1.0, PricePerHour: 0.3712, NetMBps: 125,
	}
)

// Types returns the full catalogue, smallest first.
func Types() []VMType {
	return []VMType{T2Micro, T2Small, T2Large, T2XLarge, T22XLarge}
}

// TypeByName looks up a catalogue type.
func TypeByName(name string) (VMType, bool) {
	for _, t := range Types() {
		if t.Name == name {
			return t, true
		}
	}
	return VMType{}, false
}

// VM is one provisioned virtual machine.
type VM struct {
	ID   int
	Type VMType
	// Site names the region/zone hosting the VM (empty in single-site
	// fleets).
	Site string
}

// String implements fmt.Stringer.
func (v *VM) String() string { return fmt.Sprintf("vm%d(%s)", v.ID, v.Type.Name) }

// Fleet is an ordered set of provisioned VMs. Order matters: the
// paper's Table V identifies VMs by index (0-7 = t2.micro, 8+ =
// t2.2xlarge for the 16-vCPU fleet).
type Fleet struct {
	Name string
	VMs  []*VM
	// Topology, when non-nil, makes the fleet multi-site: inter-site
	// transfers are limited by its link bandwidths.
	Topology *Topology
}

// NewFleet provisions count[i] VMs of types[i], assigning IDs in
// order.
func NewFleet(name string, types []VMType, counts []int) (*Fleet, error) {
	if len(types) != len(counts) {
		return nil, fmt.Errorf("cloud: %d types but %d counts", len(types), len(counts))
	}
	f := &Fleet{Name: name}
	id := 0
	for i, t := range types {
		if counts[i] < 0 {
			return nil, fmt.Errorf("cloud: negative count for %s", t.Name)
		}
		for j := 0; j < counts[i]; j++ {
			f.VMs = append(f.VMs, &VM{ID: id, Type: t})
			id++
		}
	}
	if len(f.VMs) == 0 {
		return nil, fmt.Errorf("cloud: empty fleet %q", name)
	}
	return f, nil
}

// MustFleet is NewFleet that panics on error.
func MustFleet(name string, types []VMType, counts []int) *Fleet {
	f, err := NewFleet(name, types, counts)
	if err != nil {
		panic(err)
	}
	return f
}

// Len returns the number of VMs.
func (f *Fleet) Len() int { return len(f.VMs) }

// VCPUs returns the total vCPU count.
func (f *Fleet) VCPUs() int {
	n := 0
	for _, v := range f.VMs {
		n += v.Type.VCPUs
	}
	return n
}

// PricePerHour returns the fleet's aggregate on-demand price.
func (f *Fleet) PricePerHour() float64 {
	var p float64
	for _, v := range f.VMs {
		p += v.Type.PricePerHour
	}
	return p
}

// CountByType returns VM counts keyed by type name.
func (f *Fleet) CountByType() map[string]int {
	out := make(map[string]int)
	for _, v := range f.VMs {
		out[v.Type.Name]++
	}
	return out
}

// Cost returns the price of running the whole fleet for the given
// number of seconds under hourly billing (partial hours rounded up,
// the AWS model of the paper's era).
func (f *Fleet) Cost(seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	hours := math.Ceil(seconds / 3600)
	return hours * f.PricePerHour()
}

// FleetTable1 builds one of the paper's Table I configurations by
// total vCPU count: 16 (8 micro + 1 2xlarge), 32 (8 + 3) or
// 64 (8 + 7).
func FleetTable1(vcpus int) (*Fleet, error) {
	var big int
	switch vcpus {
	case 16:
		big = 1
	case 32:
		big = 3
	case 64:
		big = 7
	default:
		return nil, fmt.Errorf("cloud: no Table I configuration with %d vCPUs", vcpus)
	}
	return NewFleet(fmt.Sprintf("table1-%dvcpu", vcpus),
		[]VMType{T2Micro, T22XLarge}, []int{8, big})
}

// Table1VCPUs lists the vCPU totals of the paper's Table I rows.
func Table1VCPUs() []int { return []int{16, 32, 64} }

// FleetScaled builds a fleet scaled beyond the paper's Table I by
// replicating its base 16-vCPU unit (8 t2.micro + 1 t2.2xlarge) once
// per 16 vCPUs — a 1024-vCPU fleet holds 512 micro + 64 2xlarge VMs,
// the many-VM regime of the large-DAG benchmark tier. vcpus must be
// a positive multiple of 16.
func FleetScaled(vcpus int) (*Fleet, error) {
	if vcpus <= 0 || vcpus%16 != 0 {
		return nil, fmt.Errorf("cloud: scaled fleet needs a positive multiple of 16 vCPUs, got %d", vcpus)
	}
	blocks := vcpus / 16
	return NewFleet(fmt.Sprintf("scaled-%dvcpu", vcpus),
		[]VMType{T2Micro, T22XLarge}, []int{8 * blocks, blocks})
}

// FluctuationModel perturbs nominal task runtimes the way a busy
// public cloud does. It is used by the "real execution" engine
// (stage 2), NOT by the learning simulator — the mismatch between the
// two is exactly what the paper argues RL adapts to.
type FluctuationModel struct {
	// Noise is the coefficient of variation of multiplicative
	// log-normal noise applied to every execution (multi-tenancy).
	Noise float64
	// MicroThrottleProb is the probability that a burstable (1-vCPU
	// micro) instance has exhausted CPU credits for a given task, in
	// which case the task runs ThrottleFactor times slower.
	MicroThrottleProb float64
	ThrottleFactor    float64
	// MigrationProb is the per-task probability of a live-migration
	// pause of MigrationPause seconds being added.
	MigrationProb  float64
	MigrationPause float64
}

// DefaultFluctuation returns the model used by the Table IV
// reproduction: mild global noise, significant throttling risk on
// micro instances, rare migration stalls.
func DefaultFluctuation() FluctuationModel {
	return FluctuationModel{
		Noise:             0.08,
		MicroThrottleProb: 0.20,
		ThrottleFactor:    2.2,
		MigrationProb:     0.02,
		MigrationPause:    15,
	}
}

// Apply returns the observed duration of a task with the given
// nominal duration on the given VM.
func (m FluctuationModel) Apply(rng *rand.Rand, vm *VM, nominal float64) float64 {
	d := nominal
	if m.Noise > 0 {
		// Log-normal multiplicative noise with median 1.
		d *= math.Exp(rng.NormFloat64() * m.Noise)
	}
	if vm.Type.VCPUs == 1 && m.MicroThrottleProb > 0 && rng.Float64() < m.MicroThrottleProb {
		d *= m.ThrottleFactor
	}
	if m.MigrationProb > 0 && rng.Float64() < m.MigrationProb {
		d += m.MigrationPause
	}
	if d < 0 {
		d = 0
	}
	return d
}

// FailureModel injects task failures, mirroring WorkflowSim's failure
// layer: each task execution fails independently with Rate
// probability; failed tasks may be retried by the engine.
type FailureModel struct {
	Rate float64 // per-execution failure probability in [0, 1)
}

// Fails draws whether one execution fails.
func (f FailureModel) Fails(rng *rand.Rand) bool {
	return f.Rate > 0 && rng.Float64() < f.Rate
}
