package cloud

import (
	"fmt"
	"sort"
)

// Topology models a multi-site cloud (the multi-site scheduling
// setting of Liu et al., cited by the paper): named sites with
// symmetric inter-site bandwidths. Transfers within a site run at the
// receiving VM's own bandwidth; transfers between sites are limited
// by the (usually much lower) inter-site link.
type Topology struct {
	sites map[string]bool
	bw    map[[2]string]float64 // canonical (sorted) site pair → MB/s
	// DefaultBandwidth applies to site pairs without an explicit
	// link (MB/s).
	DefaultBandwidth float64
}

// NewTopology returns a topology over the given sites with the
// default inter-site bandwidth (MB/s).
func NewTopology(defaultMBps float64, sites ...string) *Topology {
	t := &Topology{
		sites:            make(map[string]bool, len(sites)),
		bw:               make(map[[2]string]float64),
		DefaultBandwidth: defaultMBps,
	}
	for _, s := range sites {
		t.sites[s] = true
	}
	return t
}

// Sites returns the site names, sorted.
func (t *Topology) Sites() []string {
	out := make([]string, 0, len(t.sites))
	for s := range t.sites {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// HasSite reports whether the topology knows the site.
func (t *Topology) HasSite(s string) bool { return t.sites[s] }

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

// SetBandwidth sets the symmetric inter-site bandwidth in MB/s.
func (t *Topology) SetBandwidth(a, b string, mbps float64) error {
	if !t.sites[a] || !t.sites[b] {
		return fmt.Errorf("cloud: unknown site in link %s-%s", a, b)
	}
	if a == b {
		return fmt.Errorf("cloud: intra-site link %s-%s", a, b)
	}
	if mbps <= 0 {
		return fmt.Errorf("cloud: non-positive bandwidth %v for %s-%s", mbps, a, b)
	}
	t.bw[pairKey(a, b)] = mbps
	return nil
}

// Bandwidth returns the inter-site bandwidth between a and b in MB/s.
// Same-site queries return 0 meaning "not limited by the topology"
// (the VM's own bandwidth applies).
func (t *Topology) Bandwidth(a, b string) float64 {
	if a == b {
		return 0
	}
	if v, ok := t.bw[pairKey(a, b)]; ok {
		return v
	}
	return t.DefaultBandwidth
}

// SiteSpec describes one site's share of a multi-site fleet.
type SiteSpec struct {
	Site   string
	Types  []VMType
	Counts []int
}

// NewMultiSiteFleet provisions a fleet spread over the topology's
// sites. VM IDs are assigned in spec order, as in NewFleet.
func NewMultiSiteFleet(name string, topo *Topology, specs []SiteSpec) (*Fleet, error) {
	if topo == nil {
		return nil, fmt.Errorf("cloud: multi-site fleet needs a topology")
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("cloud: multi-site fleet without site specs")
	}
	f := &Fleet{Name: name, Topology: topo}
	id := 0
	for _, sp := range specs {
		if !topo.HasSite(sp.Site) {
			return nil, fmt.Errorf("cloud: unknown site %q", sp.Site)
		}
		if len(sp.Types) != len(sp.Counts) {
			return nil, fmt.Errorf("cloud: site %q: %d types but %d counts",
				sp.Site, len(sp.Types), len(sp.Counts))
		}
		for i, ty := range sp.Types {
			if sp.Counts[i] < 0 {
				return nil, fmt.Errorf("cloud: site %q: negative count", sp.Site)
			}
			for j := 0; j < sp.Counts[i]; j++ {
				f.VMs = append(f.VMs, &VM{ID: id, Type: ty, Site: sp.Site})
				id++
			}
		}
	}
	if len(f.VMs) == 0 {
		return nil, fmt.Errorf("cloud: empty multi-site fleet %q", name)
	}
	return f, nil
}

// CountBySite returns VM counts keyed by site name.
func (f *Fleet) CountBySite() map[string]int {
	out := make(map[string]int)
	for _, v := range f.VMs {
		out[v.Site]++
	}
	return out
}
