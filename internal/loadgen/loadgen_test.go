package loadgen

import (
	"encoding/json"
	"math"
	"reflect"
	"testing"

	"reassign/internal/api"
)

func testTraceConfig(seed int64) TraceConfig {
	return TraceConfig{
		Seed:    seed,
		Horizon: 400,
		Tenants: []TenantSpec{
			{
				Name: "batch", Rate: 0.02, Shape: ShapePoisson,
				Workflows: []api.WorkflowSpec{
					{Synthetic: &api.SyntheticSpec{Family: "montage", Nodes: 12, Seed: 1}},
				},
			},
			{
				Name: "bursty", Rate: 0.02, Shape: ShapeBurst, DeadlineFactor: 4,
				Workflows: []api.WorkflowSpec{
					{Synthetic: &api.SyntheticSpec{Family: "cybershake", Nodes: 10, Seed: 2}},
				},
			},
			{
				Name: "diurnal", Rate: 0.015, Shape: ShapeDiurnal, DeadlineFactor: 2,
				Workflows: []api.WorkflowSpec{
					{Synthetic: &api.SyntheticSpec{Family: "montage", Nodes: 12, Seed: 1}},
					{Synthetic: &api.SyntheticSpec{Family: "inspiral", Nodes: 10, Seed: 3}},
				},
			},
		},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(testTraceConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(testTraceConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if len(a.Arrivals) == 0 {
		t.Fatal("trace has no arrivals")
	}
	c, err := Generate(testTraceConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Arrivals, c.Arrivals) {
		t.Fatal("different seeds produced identical arrivals")
	}
	// Arrivals are time-ordered and stay inside the horizon.
	for i, arr := range a.Arrivals {
		if arr.At < 0 || arr.At >= a.Horizon {
			t.Fatalf("arrival %s at %v outside horizon %v", arr.ID, arr.At, a.Horizon)
		}
		if i > 0 && arr.At < a.Arrivals[i-1].At {
			t.Fatalf("arrivals out of order at %d", i)
		}
	}
	// The shared montage spec is deduped into one catalog entry.
	if len(a.Workflows) != 3 {
		t.Fatalf("catalog has %d entries, want 3 (deduped)", len(a.Workflows))
	}
}

func TestGenerateValidation(t *testing.T) {
	cases := []func(*TraceConfig){
		func(c *TraceConfig) { c.Horizon = 0 },
		func(c *TraceConfig) { c.Tenants = nil },
		func(c *TraceConfig) { c.Tenants[0].Name = "" },
		func(c *TraceConfig) { c.Tenants[0].Name = c.Tenants[1].Name },
		func(c *TraceConfig) { c.Tenants[0].Rate = -1 },
		func(c *TraceConfig) { c.Tenants[0].Shape = "square" },
		func(c *TraceConfig) { c.Tenants[0].Workflows = nil },
		func(c *TraceConfig) { c.Tenants[0].Workflows = []api.WorkflowSpec{{Format: "dax"}} },
		func(c *TraceConfig) { c.Tenants[0].DeadlineFactor = -2 },
		func(c *TraceConfig) { c.Tenants[0].Amplitude = 1.5 },
	}
	for i, mutate := range cases {
		cfg := testTraceConfig(1)
		mutate(&cfg)
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr, err := Generate(testTraceConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, &back) {
		t.Fatal("trace changed across JSON round trip")
	}
}

func TestRunLanesBitIdentical(t *testing.T) {
	tr, err := Generate(testTraceConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	cfg := LaneConfig{
		Fleet:    api.FleetSpec{Preset: "table1", VCPUs: 16},
		Slots:    2,
		Episodes: 4,
	}
	a, err := RunLanes(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLanes(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The whole rendered report — every fairness, SLA and wait figure
	// for every lane — must match byte for byte.
	if a.String() != b.String() {
		t.Fatal("same trace produced different reports")
	}
	if a.TSV() != b.TSV() {
		t.Fatal("same trace produced different TSV reports")
	}
	if len(a.Lanes) != len(AllPolicies()) {
		t.Fatalf("got %d lanes, want %d", len(a.Lanes), len(AllPolicies()))
	}
	for _, lane := range a.Lanes {
		if lane.Makespan <= 0 {
			t.Fatalf("lane %s has non-positive makespan", lane.Policy)
		}
		if len(lane.Outcomes) != len(tr.Arrivals) {
			t.Fatalf("lane %s served %d of %d jobs", lane.Policy, len(lane.Outcomes), len(tr.Arrivals))
		}
		for _, o := range lane.Outcomes {
			if o.Start < o.Arrival {
				t.Fatalf("lane %s job %s started before it arrived", lane.Policy, o.ID)
			}
			if o.Service <= 0 {
				t.Fatalf("lane %s job %s has non-positive service", lane.Policy, o.ID)
			}
		}
		if lane.Jain <= 0 || lane.Jain > 1+1e-9 {
			t.Fatalf("lane %s Jain index %v outside (0,1]", lane.Policy, lane.Jain)
		}
		if lane.MaxMin < 0 || lane.MaxMin > 1+1e-9 {
			t.Fatalf("lane %s max-min ratio %v outside [0,1]", lane.Policy, lane.MaxMin)
		}
	}
}

// TestLaneCostAccounting pins the billing model: every job carries a
// positive cost proportional to its service time, tenant bills sum
// the tenant's jobs exactly, and the lane total sums the tenants.
func TestLaneCostAccounting(t *testing.T) {
	tr, err := Generate(testTraceConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunLanes(tr, LaneConfig{
		Fleet: api.FleetSpec{Preset: "table1", VCPUs: 16},
		Slots: 2, Episodes: 4, Policies: []Policy{PolicyHEFT, PolicyGreedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, lane := range rep.Lanes {
		perTenant := map[string]float64{}
		for _, o := range lane.Outcomes {
			if o.Cost <= 0 {
				t.Fatalf("lane %s job %s has non-positive cost %v", lane.Policy, o.ID, o.Cost)
			}
			perTenant[o.Tenant] += o.Cost
		}
		var total float64
		for _, ts := range lane.Tenants {
			if math.Abs(ts.CostUSD-perTenant[ts.Tenant]) > 1e-9 {
				t.Fatalf("lane %s tenant %s bill %v != sum of job costs %v",
					lane.Policy, ts.Tenant, ts.CostUSD, perTenant[ts.Tenant])
			}
			total += ts.CostUSD
		}
		if math.Abs(lane.CostUSD-total) > 1e-9 {
			t.Fatalf("lane %s total %v != tenant sum %v", lane.Policy, lane.CostUSD, total)
		}
	}
	// Greedy's per-job service is never shorter than HEFT's plan, so
	// its bill is at least as large; both lanes bill the same jobs.
	if len(rep.Lanes[0].Outcomes) != len(rep.Lanes[1].Outcomes) {
		t.Fatal("lanes billed different job counts")
	}
}

// TestLaneSlotConcurrency checks the queueing mechanics directly: with
// one slot everything serialises; with many slots jobs that arrived
// while the server was busy start earlier.
func TestLaneSlotConcurrency(t *testing.T) {
	tr, err := Generate(testTraceConfig(5))
	if err != nil {
		t.Fatal(err)
	}
	one, err := RunLanes(tr, LaneConfig{
		Fleet: api.FleetSpec{Preset: "table1", VCPUs: 16},
		Slots: 1, Episodes: 2, Policies: []Policy{PolicyGreedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	many, err := RunLanes(tr, LaneConfig{
		Fleet: api.FleetSpec{Preset: "table1", VCPUs: 16},
		Slots: 8, Episodes: 2, Policies: []Policy{PolicyGreedy},
	})
	if err != nil {
		t.Fatal(err)
	}
	if one.Lanes[0].Makespan < many.Lanes[0].Makespan {
		t.Fatalf("one slot (%v) finished before eight (%v)",
			one.Lanes[0].Makespan, many.Lanes[0].Makespan)
	}
	// Serialised: no two jobs overlap.
	outs := one.Lanes[0].Outcomes
	for i := 1; i < len(outs); i++ {
		if outs[i].Start < outs[i-1].Finish-1e-9 {
			t.Fatalf("single-slot lane overlapped jobs %s and %s", outs[i-1].ID, outs[i].ID)
		}
	}
}

// TestEDFOrdersByDeadline pins the EDF queue discipline: with one
// slot and a backlog, the deadline-carrying jobs dispatch before
// deadline-free ones that arrived earlier.
func TestEDFOrdersByDeadline(t *testing.T) {
	spec := api.WorkflowSpec{Synthetic: &api.SyntheticSpec{Family: "montage", Nodes: 10, Seed: 1}}
	tr := &Trace{
		Seed:      1,
		Horizon:   100,
		Workflows: []api.WorkflowSpec{spec},
		Arrivals: []Arrival{
			// j0 occupies the slot; j1 (no deadline) arrives before j2
			// (tight deadline) — EDF must run j2 first, FIFO must not.
			{ID: "j0", Tenant: "a", At: 0, Workflow: 0, Seed: 1},
			{ID: "j1", Tenant: "a", At: 1, Workflow: 0, Seed: 2},
			{ID: "j2", Tenant: "b", At: 2, Workflow: 0, DeadlineFactor: 2, Seed: 3},
		},
	}
	cfg := LaneConfig{
		Fleet: api.FleetSpec{Preset: "table1", VCPUs: 16},
		Slots: 1, Policies: []Policy{PolicyEDF, PolicyGreedy},
	}
	rep, err := RunLanes(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	find := func(lane LaneReport, id string) JobOutcome {
		for _, o := range lane.Outcomes {
			if o.ID == id {
				return o
			}
		}
		t.Fatalf("no outcome %s", id)
		return JobOutcome{}
	}
	edf, fifo := rep.Lanes[0], rep.Lanes[1]
	if !(find(edf, "j2").Start < find(edf, "j1").Start) {
		t.Fatal("EDF did not prioritise the deadline job")
	}
	if !(find(fifo, "j1").Start < find(fifo, "j2").Start) {
		t.Fatal("greedy lane did not dispatch FIFO")
	}
}

func TestFairnessMetrics(t *testing.T) {
	if j := jainIndex([]float64{1, 1, 1}); math.Abs(j-1) > 1e-12 {
		t.Fatalf("equal attainment: Jain = %v, want 1", j)
	}
	// One active tenant among four: Jain collapses to 1/n.
	if j := jainIndex([]float64{1, 0, 0, 0}); math.Abs(j-0.25) > 1e-12 {
		t.Fatalf("single-tenant attainment: Jain = %v, want 0.25", j)
	}
	if r := maxMinRatio([]float64{2, 1, 4}); math.Abs(r-0.25) > 1e-12 {
		t.Fatalf("max-min = %v, want 0.25", r)
	}
	if jainIndex(nil) != 0 || maxMinRatio(nil) != 0 {
		t.Fatal("empty attainment should report 0")
	}
}
