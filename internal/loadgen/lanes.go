package loadgen

import (
	"fmt"
	"math"

	"reassign/internal/api"
	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// Policy names the competing scheduling disciplines. Every lane
// replays the same trace; only the policy differs.
type Policy string

const (
	// PolicyReassign learns a plan per submission with the paper's
	// Q-learning pipeline, warm-starting from a per-structure Q table
	// that persists across the lane (the daemon's cache, replayed
	// offline).
	PolicyReassign Policy = "reassign"
	// PolicyHEFT uses the static HEFT list-scheduling plan.
	PolicyHEFT Policy = "heft"
	// PolicyGreedy dispatches FIFO and schedules each workflow with
	// the immediate minimum-completion-time rule.
	PolicyGreedy Policy = "greedy"
	// PolicyEDF admits from the queue in earliest-deadline-first order
	// (deadline-free jobs go last, FIFO among themselves), scheduling
	// each workflow greedily.
	PolicyEDF Policy = "edf"
)

// AllPolicies is the default lane set.
func AllPolicies() []Policy {
	return []Policy{PolicyReassign, PolicyHEFT, PolicyGreedy, PolicyEDF}
}

// LaneConfig tunes the replay shared by every lane.
type LaneConfig struct {
	// Fleet is the cluster every workflow runs on.
	Fleet api.FleetSpec
	// Slots is the number of workflows the cluster executes
	// concurrently (default 4). Arrivals beyond it queue.
	Slots int
	// Episodes is the learning budget per submission in the reassign
	// lane (default 24; the warm table carries learning across
	// same-structure submissions, so small budgets converge).
	Episodes int
	// Policies selects the lanes (default AllPolicies).
	Policies []Policy
}

func (c *LaneConfig) defaults() {
	if c.Slots <= 0 {
		c.Slots = 4
	}
	if c.Episodes <= 0 {
		c.Episodes = 24
	}
	if len(c.Policies) == 0 {
		c.Policies = AllPolicies()
	}
}

// JobOutcome is one submission's fate in one lane, in virtual
// seconds.
type JobOutcome struct {
	ID         string  `json:"id"`
	Tenant     string  `json:"tenant"`
	Arrival    float64 `json:"arrival"`
	Start      float64 `json:"start"`
	Finish     float64 `json:"finish"`
	Wait       float64 `json:"wait"`
	Service    float64 `json:"service"`
	DeadlineAt float64 `json:"deadline_at,omitempty"` // absolute; 0 = none
	SLAMet     bool    `json:"sla_met,omitempty"`     // valid when DeadlineAt > 0
	// Cost is the job's bill in USD: the fleet's nominal rate over the
	// service time its executor slot was held.
	Cost float64 `json:"cost"`
}

// Slowdown is the job's response time over its service time (≥ 1;
// 1 = no queueing).
func (o JobOutcome) Slowdown() float64 {
	if o.Service <= 0 {
		return 1
	}
	return (o.Wait + o.Service) / o.Service
}

// LaneResult is one policy's full replay of the trace.
type LaneResult struct {
	Policy   Policy       `json:"policy"`
	Outcomes []JobOutcome `json:"outcomes"`
	// Makespan is the finish time of the last job (virtual seconds).
	Makespan float64 `json:"makespan"`
	// Throughput is completed jobs per 1000 virtual seconds.
	Throughput float64 `json:"throughput"`
}

// laneJob is an arrival resolved against the catalog: built workflow,
// absolute deadline.
type laneJob struct {
	arr        Arrival
	wf         int // catalog index
	deadlineAt float64
}

// RunLanes replays the trace once per policy on identical lanes —
// same arrivals, same workflows, same fleet, same deadlines — and
// reports per-tenant fairness, SLA attainment and queueing behaviour
// for each. The replay is a deterministic single-threaded event loop,
// so a fixed trace yields a bit-identical report on every run.
func RunLanes(tr *Trace, cfg LaneConfig) (*Report, error) {
	cfg.defaults()
	if len(tr.Arrivals) == 0 {
		return nil, fmt.Errorf("loadgen: trace has no arrivals")
	}
	fleet, err := cfg.Fleet.Build()
	if err != nil {
		return nil, err
	}
	workflows := make([]*dag.Workflow, len(tr.Workflows))
	for i, spec := range tr.Workflows {
		w, err := spec.Build()
		if err != nil {
			return nil, fmt.Errorf("loadgen: catalog workflow %d: %w", i, err)
		}
		workflows[i] = w
	}

	// Reference service time per catalog entry: the greedy-immediate
	// makespan on this fleet. Deadlines resolve against it identically
	// in every lane, so the SLA each policy faces is the same.
	ref := make([]float64, len(workflows))
	for i, w := range workflows {
		m, err := planMakespan(w, fleet, sched.MCT{}, tr.Seed)
		if err != nil {
			return nil, fmt.Errorf("loadgen: reference service for workflow %d: %w", i, err)
		}
		ref[i] = m
	}

	jobs := make([]laneJob, len(tr.Arrivals))
	for i, a := range tr.Arrivals {
		if a.Workflow < 0 || a.Workflow >= len(workflows) {
			return nil, fmt.Errorf("loadgen: arrival %s references workflow %d of %d", a.ID, a.Workflow, len(workflows))
		}
		j := laneJob{arr: a, wf: a.Workflow}
		if a.DeadlineFactor > 0 {
			j.deadlineAt = a.At + a.DeadlineFactor*ref[a.Workflow]
		}
		jobs[i] = j
	}

	rep := &Report{Seed: tr.Seed, Jobs: len(jobs), Tenants: tr.Tenants()}
	for _, policy := range cfg.Policies {
		lane, err := runLane(jobs, workflows, fleet, policy, cfg)
		if err != nil {
			return nil, fmt.Errorf("loadgen: lane %s: %w", policy, err)
		}
		rep.Lanes = append(rep.Lanes, buildLaneReport(lane, rep.Tenants))
	}
	return rep, nil
}

// runLane replays the trace under one policy: arrivals queue, Slots
// executor slots serve them, and each dispatch's service time is the
// policy's simulated plan makespan for that workflow.
func runLane(jobs []laneJob, workflows []*dag.Workflow, fleet *cloud.Fleet, policy Policy, cfg LaneConfig) (*LaneResult, error) {
	svc, err := newServiceOracle(policy, workflows, fleet, cfg)
	if err != nil {
		return nil, err
	}
	res := &LaneResult{Policy: policy, Outcomes: make([]JobOutcome, len(jobs))}
	slots := make([]float64, cfg.Slots) // each slot's free-at time
	var waiting []int                   // job indices queued, arrival order
	arrIdx := 0
	for dispatched := 0; dispatched < len(jobs); dispatched++ {
		// Earliest free slot.
		s := 0
		for k := 1; k < len(slots); k++ {
			if slots[k] < slots[s] {
				s = k
			}
		}
		t := slots[s]
		if len(waiting) == 0 {
			// Idle: jump to the next arrival.
			t = math.Max(t, jobs[arrIdx].arr.At)
		}
		// Admit everything that has arrived by dispatch time, so queue
		// disciplines see the full backlog.
		for arrIdx < len(jobs) && jobs[arrIdx].arr.At <= t {
			waiting = append(waiting, arrIdx)
			arrIdx++
		}
		pick := 0
		if policy == PolicyEDF {
			for k := 1; k < len(waiting); k++ {
				if edfBefore(jobs[waiting[k]], jobs[waiting[pick]]) {
					pick = k
				}
			}
		}
		idx := waiting[pick]
		waiting = append(waiting[:pick], waiting[pick+1:]...)

		j := jobs[idx]
		service, err := svc(j)
		if err != nil {
			return nil, fmt.Errorf("job %s: %w", j.arr.ID, err)
		}
		finish := t + service
		slots[s] = finish
		res.Outcomes[idx] = JobOutcome{
			ID:         j.arr.ID,
			Tenant:     j.arr.Tenant,
			Arrival:    j.arr.At,
			Start:      t,
			Finish:     finish,
			Wait:       t - j.arr.At,
			Service:    service,
			DeadlineAt: j.deadlineAt,
			SLAMet:     j.deadlineAt > 0 && finish <= j.deadlineAt,
			Cost:       fleet.Cost(service),
		}
		if finish > res.Makespan {
			res.Makespan = finish
		}
	}
	if res.Makespan > 0 {
		res.Throughput = float64(len(jobs)) / res.Makespan * 1000
	}
	return res, nil
}

// edfBefore orders the waiting queue for the EDF lane: earliest
// absolute deadline first, deadline-free jobs last, ties broken by
// arrival order (the queue holds indices in arrival order, so the
// strict < keeps the earlier arrival on ties).
func edfBefore(a, b laneJob) bool {
	da, db := a.deadlineAt, b.deadlineAt
	if da == 0 {
		da = math.Inf(1)
	}
	if db == 0 {
		db = math.Inf(1)
	}
	return da < db
}

// serviceFn resolves one job's service time under a lane's policy.
type serviceFn func(laneJob) (float64, error)

// newServiceOracle builds the per-policy service-time function.
// Static policies (HEFT, greedy, EDF) cache one makespan per catalog
// entry; the reassign lane learns per submission, warm-starting from
// a per-structure Q table that persists across the lane — so repeated
// structures keep improving, the open-system analogue of the daemon's
// warm cache.
func newServiceOracle(policy Policy, workflows []*dag.Workflow, fleet *cloud.Fleet, cfg LaneConfig) (serviceFn, error) {
	switch policy {
	case PolicyHEFT:
		cache := make(map[int]float64, len(workflows))
		return func(j laneJob) (float64, error) {
			if m, ok := cache[j.wf]; ok {
				return m, nil
			}
			m, err := planMakespan(workflows[j.wf], fleet, &sched.HEFT{}, j.arr.Seed)
			if err != nil {
				return 0, err
			}
			cache[j.wf] = m
			return m, nil
		}, nil
	case PolicyGreedy, PolicyEDF:
		cache := make(map[int]float64, len(workflows))
		return func(j laneJob) (float64, error) {
			if m, ok := cache[j.wf]; ok {
				return m, nil
			}
			m, err := planMakespan(workflows[j.wf], fleet, sched.MCT{}, j.arr.Seed)
			if err != nil {
				return 0, err
			}
			cache[j.wf] = m
			return m, nil
		}, nil
	case PolicyReassign:
		tables := map[string]*rl.Table{}
		return func(j laneJob) (float64, error) {
			w := workflows[j.wf]
			sig := api.StructureSignature(w, fleet)
			opts := []core.Option{core.WithSeed(j.arr.Seed)}
			if t := tables[sig]; t != nil {
				opts = append(opts, core.WithTable(t))
			}
			learner, err := core.NewLearner(core.Config{
				Workflow: w,
				Fleet:    fleet,
				Episodes: cfg.Episodes,
			}, opts...)
			if err != nil {
				return 0, err
			}
			res, err := learner.Learn()
			if err != nil {
				return 0, err
			}
			tables[sig] = res.Table
			return res.PlanMakespan, nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown policy %q", policy)
	}
}

// planMakespan simulates one workflow under a scheduler and returns
// its makespan (deterministic: no fluctuation model).
func planMakespan(w *dag.Workflow, fleet *cloud.Fleet, s sim.Scheduler, seed int64) (float64, error) {
	res, err := sim.Run(w, fleet, s, sim.Config{Seed: seed, SkipPlan: true})
	if err != nil {
		return 0, err
	}
	if res.State != sim.FinishedOK {
		return 0, fmt.Errorf("simulation ended in state %v", res.State)
	}
	return res.Makespan, nil
}
