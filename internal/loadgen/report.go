package loadgen

import (
	"fmt"
	"strings"

	"reassign/internal/metrics"
)

// TenantSummary aggregates one tenant's outcomes within one lane.
type TenantSummary struct {
	Tenant string `json:"tenant"`
	Jobs   int    `json:"jobs"`
	// MeanSlowdown is the mean of (wait+service)/service; 1 = never
	// queued.
	MeanSlowdown float64 `json:"mean_slowdown"`
	// Share is the tenant's normalised attainment: 1/MeanSlowdown over
	// the sum across tenants. Equal shares = fair service.
	Share float64 `json:"share"`
	// Queue-wait statistics in virtual seconds.
	MeanWait float64 `json:"mean_wait"`
	WaitP50  float64 `json:"wait_p50"`
	WaitP95  float64 `json:"wait_p95"`
	WaitP99  float64 `json:"wait_p99"`
	// SLAJobs counts deadline-carrying jobs; SLAHitRate is the
	// fraction finishing within deadline (0 when SLAJobs is 0).
	SLAJobs    int     `json:"sla_jobs"`
	SLAHitRate float64 `json:"sla_hit_rate"`
	// CostUSD is the tenant's bill: the sum of its jobs' costs, in
	// arrival order (fixed summation order keeps reports
	// bit-identical).
	CostUSD float64 `json:"cost_usd"`
}

// LaneReport is one policy's scorecard over the whole trace.
type LaneReport struct {
	Policy Policy `json:"policy"`
	// Makespan (virtual seconds to drain the trace) and Throughput
	// (jobs per 1000 virtual seconds) measure raw capacity.
	Makespan   float64 `json:"makespan"`
	Throughput float64 `json:"throughput"`
	// Jain is Jain's fairness index over per-tenant attainment
	// (1/mean slowdown): 1 = perfectly fair, 1/n = one tenant starves
	// the rest.
	Jain float64 `json:"jain"`
	// MaxMin is the max-min fairness ratio: the worst tenant's
	// attainment over the best tenant's (1 = equal service).
	MaxMin float64 `json:"max_min"`
	// SLAHitRate is the overall deadline-hit fraction.
	SLAHitRate float64 `json:"sla_hit_rate"`
	// Queue-wait percentiles across all jobs.
	WaitP50 float64 `json:"wait_p50"`
	WaitP95 float64 `json:"wait_p95"`
	WaitP99 float64 `json:"wait_p99"`
	// CostUSD is the lane's total bill (sum of tenant bills).
	CostUSD float64 `json:"cost_usd"`

	Tenants  []TenantSummary `json:"tenants"`
	Outcomes []JobOutcome    `json:"-"` // raw per-job data, not serialised
}

// Report compares every lane over one trace.
type Report struct {
	Seed    int64        `json:"seed"`
	Jobs    int          `json:"jobs"`
	Tenants []string     `json:"tenants"`
	Lanes   []LaneReport `json:"lanes"`
}

// buildLaneReport reduces a lane's outcomes to its scorecard. tenants
// is the sorted tenant list shared by every lane, so rows line up
// across policies.
func buildLaneReport(lane *LaneResult, tenants []string) LaneReport {
	rep := LaneReport{
		Policy:     lane.Policy,
		Makespan:   lane.Makespan,
		Throughput: lane.Throughput,
		Outcomes:   lane.Outcomes,
	}
	byTenant := map[string][]JobOutcome{}
	var waits []float64
	slaJobs, slaHits := 0, 0
	for _, o := range lane.Outcomes {
		byTenant[o.Tenant] = append(byTenant[o.Tenant], o)
		waits = append(waits, o.Wait)
		if o.DeadlineAt > 0 {
			slaJobs++
			if o.SLAMet {
				slaHits++
			}
		}
	}
	ws := metrics.Summarize(waits)
	rep.WaitP50, rep.WaitP95, rep.WaitP99 = ws.P50, ws.P95, ws.P99
	if slaJobs > 0 {
		rep.SLAHitRate = float64(slaHits) / float64(slaJobs)
	}

	// Per-tenant attainment x_i = 1/mean slowdown: 1 when the tenant
	// never waits, → 0 as queueing dominates. (Attained-service shares
	// are trivially equal once the trace drains, so fairness is judged
	// on responsiveness, not volume.)
	attain := make([]float64, 0, len(tenants))
	var attainSum float64
	for _, name := range tenants {
		outs := byTenant[name]
		ts := TenantSummary{Tenant: name, Jobs: len(outs)}
		if len(outs) > 0 {
			var slow, wait float64
			tWaits := make([]float64, 0, len(outs))
			for _, o := range outs {
				slow += o.Slowdown()
				wait += o.Wait
				ts.CostUSD += o.Cost
				tWaits = append(tWaits, o.Wait)
				if o.DeadlineAt > 0 {
					ts.SLAJobs++
					if o.SLAMet {
						ts.SLAHitRate++ // hit count for now; normalised below
					}
				}
			}
			ts.MeanSlowdown = slow / float64(len(outs))
			ts.MeanWait = wait / float64(len(outs))
			tws := metrics.Summarize(tWaits)
			ts.WaitP50, ts.WaitP95, ts.WaitP99 = tws.P50, tws.P95, tws.P99
			if ts.SLAJobs > 0 {
				ts.SLAHitRate /= float64(ts.SLAJobs)
			}
			x := 1 / ts.MeanSlowdown
			attain = append(attain, x)
			attainSum += x
		}
		rep.CostUSD += ts.CostUSD
		rep.Tenants = append(rep.Tenants, ts)
	}
	for i := range rep.Tenants {
		if rep.Tenants[i].Jobs > 0 && attainSum > 0 {
			rep.Tenants[i].Share = (1 / rep.Tenants[i].MeanSlowdown) / attainSum
		}
	}
	rep.Jain = jainIndex(attain)
	rep.MaxMin = maxMinRatio(attain)
	return rep
}

// jainIndex is Jain's fairness index (Σx)²/(n·Σx²) over per-tenant
// attainment: 1 when all tenants are served equally well.
func jainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// maxMinRatio is min/max over per-tenant attainment: 1 when the worst
// tenant does as well as the best.
func maxMinRatio(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	min, max := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	if max == 0 {
		return 0
	}
	return min / max
}

// String renders the report as aligned tables: one lane scorecard,
// then a per-tenant breakdown per lane. All floats render with fixed
// precision, so equal reports produce equal strings (the bit-identical
// determinism contract).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "open-system replay: %d jobs, %d tenants, seed %d\n\n", r.Jobs, len(r.Tenants), r.Seed)
	lanes := metrics.NewTable("lanes", "policy", "makespan", "jobs/1ks", "jain", "maxmin", "sla_hit", "wait_p50", "wait_p95", "wait_p99", "cost_usd")
	for _, l := range r.Lanes {
		lanes.AddRowF(string(l.Policy), l.Makespan, l.Throughput, l.Jain, l.MaxMin, l.SLAHitRate, l.WaitP50, l.WaitP95, l.WaitP99, l.CostUSD)
	}
	b.WriteString(lanes.String())
	for _, l := range r.Lanes {
		b.WriteByte('\n')
		t := metrics.NewTable("lane "+string(l.Policy), "tenant", "jobs", "slowdown", "share", "mean_wait", "wait_p95", "sla_jobs", "sla_hit", "cost_usd")
		for _, ts := range l.Tenants {
			t.AddRowF(ts.Tenant, ts.Jobs, ts.MeanSlowdown, ts.Share, ts.MeanWait, ts.WaitP95, ts.SLAJobs, ts.SLAHitRate, ts.CostUSD)
		}
		b.WriteString(t.String())
	}
	return b.String()
}

// TSV renders the lane scorecards as a machine-readable table.
func (r *Report) TSV() string {
	t := metrics.NewTable("lanes", "policy", "tenant", "jobs", "slowdown", "share", "mean_wait", "wait_p50", "wait_p95", "wait_p99", "sla_jobs", "sla_hit", "cost_usd")
	for _, l := range r.Lanes {
		for _, ts := range l.Tenants {
			t.AddRowF(string(l.Policy), ts.Tenant, ts.Jobs, ts.MeanSlowdown, ts.Share, ts.MeanWait, ts.WaitP50, ts.WaitP95, ts.WaitP99, ts.SLAJobs, ts.SLAHitRate, ts.CostUSD)
		}
	}
	return t.TSV()
}
