// Package loadgen generates seeded multi-tenant arrival traces and
// replays them against competing scheduling policies in identical
// lanes — the open-system evaluation mode. The closed-system studies
// (package expt) measure one workflow at a time; here tenants submit
// streams of workflows over a virtual-time horizon, and the question
// is how policies trade off per-tenant fairness, SLA attainment, and
// throughput under contention.
//
// Everything is deterministic for a fixed seed: trace generation
// draws from per-tenant rngs split off one master seed, lane replay
// is a single-threaded event loop, and reports format through fixed
// %.5f rendering — repeated runs are bit-identical.
package loadgen

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"reassign/internal/api"
)

// Arrival shapes. Poisson is a constant-rate process; Burst
// alternates on/off phases with the on-phase rate scaled to preserve
// the mean; Diurnal modulates the rate sinusoidally.
const (
	ShapePoisson = "poisson"
	ShapeBurst   = "burst"
	ShapeDiurnal = "diurnal"
)

// TenantSpec describes one tenant's arrival stream: a rate, a shape,
// a workflow-size mix, and a deadline profile.
type TenantSpec struct {
	// Name labels the tenant; required, unique within a trace.
	Name string `json:"name"`
	// Rate is the mean arrival rate in workflows per virtual second.
	Rate float64 `json:"rate"`
	// Shape is ShapePoisson (default), ShapeBurst or ShapeDiurnal.
	Shape string `json:"shape,omitempty"`
	// Workflows is the tenant's size mix; each arrival picks one
	// uniformly. Required, at least one spec.
	Workflows []api.WorkflowSpec `json:"workflows"`
	// DeadlineFactor, when positive, attaches a deadline to every
	// arrival: factor × the workflow's reference service time (its
	// greedy-immediate makespan on the lane fleet, shared across all
	// lanes so every policy faces the same SLA). Zero disables
	// deadlines for this tenant.
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`

	// Period overrides the shape's modulation period (burst on/off
	// cycle, diurnal day length). Zero picks Horizon/4 for burst and
	// Horizon/2 for diurnal.
	Period float64 `json:"period,omitempty"`
	// Duty is the burst on-phase fraction (default 0.25).
	Duty float64 `json:"duty,omitempty"`
	// Amplitude is the diurnal modulation depth in [0,1) (default 0.8).
	Amplitude float64 `json:"amplitude,omitempty"`
}

// TraceConfig drives Generate.
type TraceConfig struct {
	// Seed is the master seed; every random choice in the trace
	// derives from it.
	Seed int64 `json:"seed"`
	// Horizon is the arrival window in virtual seconds.
	Horizon float64 `json:"horizon"`
	// Tenants are the competing streams.
	Tenants []TenantSpec `json:"tenants"`
}

// Arrival is one workflow submission in the trace.
type Arrival struct {
	// ID is unique within the trace ("<tenant>-<seq>").
	ID string `json:"id"`
	// Tenant names the submitting stream.
	Tenant string `json:"tenant"`
	// At is the arrival time in virtual seconds.
	At float64 `json:"at"`
	// Workflow indexes Trace.Workflows.
	Workflow int `json:"workflow"`
	// DeadlineFactor is the tenant's SLA multiplier (0 = no deadline);
	// lanes resolve it against the workflow's reference service time.
	DeadlineFactor float64 `json:"deadline_factor,omitempty"`
	// Seed drives per-job randomness (learning) during replay.
	Seed int64 `json:"seed"`
}

// Trace is a generated arrival schedule: a workflow catalog plus the
// time-ordered arrivals referencing it. Traces serialise to JSON for
// replay by other processes (cmd/schedload -trace).
type Trace struct {
	Seed     int64              `json:"seed"`
	Horizon  float64            `json:"horizon"`
	Workflows []api.WorkflowSpec `json:"workflows"`
	Arrivals []Arrival          `json:"arrivals"`
}

// Tenants returns the distinct tenant names in sorted order, which
// reports rely on for stable output.
func (t *Trace) Tenants() []string {
	seen := map[string]bool{}
	var names []string
	for _, a := range t.Arrivals {
		if !seen[a.Tenant] {
			seen[a.Tenant] = true
			names = append(names, a.Tenant)
		}
	}
	sort.Strings(names)
	return names
}

// DefaultTenants builds a representative n-tenant mix for studies and
// load tools: tenants cycle through the three shapes, odd tenants
// carry deadlines, and each submits synthetic Montage workflows of
// about nodes activations with a distinct structure seed.
func DefaultTenants(n int, rate float64, nodes int) []TenantSpec {
	shapes := []string{ShapePoisson, ShapeBurst, ShapeDiurnal}
	out := make([]TenantSpec, n)
	for i := range out {
		t := TenantSpec{
			Name:  fmt.Sprintf("tenant%d", i),
			Rate:  rate,
			Shape: shapes[i%len(shapes)],
			Workflows: []api.WorkflowSpec{
				{Synthetic: &api.SyntheticSpec{Family: "montage", Nodes: nodes, Seed: int64(i)}},
			},
		}
		if i%2 == 1 {
			t.DeadlineFactor = 3
		}
		out[i] = t
	}
	return out
}

// Generate builds the arrival trace: each tenant's stream is drawn
// from its own rng (split deterministically off the master seed) by
// thinning a homogeneous Poisson process at the shape's peak rate,
// then the streams are merged in time order. Fixed seed → identical
// trace, independent of tenant count or ordering changes elsewhere.
func Generate(cfg TraceConfig) (*Trace, error) {
	if cfg.Horizon <= 0 {
		return nil, fmt.Errorf("loadgen: horizon must be positive, got %v", cfg.Horizon)
	}
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("loadgen: need at least one tenant")
	}
	seen := map[string]bool{}
	for i, t := range cfg.Tenants {
		if t.Name == "" {
			return nil, fmt.Errorf("loadgen: tenant %d has no name", i)
		}
		if seen[t.Name] {
			return nil, fmt.Errorf("loadgen: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if t.Rate <= 0 {
			return nil, fmt.Errorf("loadgen: tenant %q rate must be positive, got %v", t.Name, t.Rate)
		}
		switch t.Shape {
		case "", ShapePoisson, ShapeBurst, ShapeDiurnal:
		default:
			return nil, fmt.Errorf("loadgen: tenant %q has unknown shape %q", t.Name, t.Shape)
		}
		if t.Amplitude < 0 || t.Amplitude >= 1 {
			return nil, fmt.Errorf("loadgen: tenant %q amplitude must be in [0,1), got %v", t.Name, t.Amplitude)
		}
		if len(t.Workflows) == 0 {
			return nil, fmt.Errorf("loadgen: tenant %q has no workflows", t.Name)
		}
		for j, spec := range t.Workflows {
			if _, err := spec.Build(); err != nil {
				return nil, fmt.Errorf("loadgen: tenant %q workflow %d: %w", t.Name, j, err)
			}
		}
		if t.DeadlineFactor < 0 {
			return nil, fmt.Errorf("loadgen: tenant %q deadline factor must be non-negative, got %v", t.Name, t.DeadlineFactor)
		}
	}

	tr := &Trace{Seed: cfg.Seed, Horizon: cfg.Horizon}
	// Catalog: dedupe workflow specs by canonical JSON so repeated
	// mixes share one entry (and lanes build each workflow once).
	catalog := map[string]int{}
	indexOf := func(spec api.WorkflowSpec) int {
		key, _ := json.Marshal(spec)
		if idx, ok := catalog[string(key)]; ok {
			return idx
		}
		idx := len(tr.Workflows)
		catalog[string(key)] = idx
		tr.Workflows = append(tr.Workflows, spec)
		return idx
	}

	master := rand.New(rand.NewSource(cfg.Seed))
	for _, t := range cfg.Tenants {
		// One rng per tenant, derived from the master in spec order:
		// editing one tenant's parameters never perturbs another's
		// stream.
		rng := rand.New(rand.NewSource(master.Int63()))
		peak := t.peakRate()
		seq := 0
		// Thinning (Lewis–Shedler): draw a homogeneous process at the
		// peak rate, keep each point with probability rate(t)/peak.
		for at := rng.ExpFloat64() / peak; at < cfg.Horizon; at += rng.ExpFloat64() / peak {
			if rng.Float64()*peak > t.rateAt(at, cfg.Horizon) {
				continue
			}
			spec := t.Workflows[rng.Intn(len(t.Workflows))]
			tr.Arrivals = append(tr.Arrivals, Arrival{
				ID:             fmt.Sprintf("%s-%04d", t.Name, seq),
				Tenant:         t.Name,
				At:             at,
				Workflow:       indexOf(spec),
				DeadlineFactor: t.DeadlineFactor,
				Seed:           rng.Int63(),
			})
			seq++
		}
	}
	// Merge streams in time order; equal times break by ID so the
	// order is total and reproducible.
	sort.SliceStable(tr.Arrivals, func(i, j int) bool {
		a, b := tr.Arrivals[i], tr.Arrivals[j]
		if a.At != b.At {
			return a.At < b.At
		}
		return a.ID < b.ID
	})
	return tr, nil
}

// peakRate is the thinning envelope: the maximum instantaneous rate
// the shape can reach.
func (t TenantSpec) peakRate() float64 {
	switch t.Shape {
	case ShapeBurst:
		return t.Rate / t.duty()
	case ShapeDiurnal:
		return t.Rate * (1 + t.amplitude())
	default:
		return t.Rate
	}
}

// rateAt is the instantaneous arrival rate at virtual time at.
func (t TenantSpec) rateAt(at, horizon float64) float64 {
	switch t.Shape {
	case ShapeBurst:
		period := t.Period
		if period <= 0 {
			period = horizon / 4
		}
		duty := t.duty()
		if math.Mod(at, period) < duty*period {
			return t.Rate / duty // on-phase, mean-preserving
		}
		return 0
	case ShapeDiurnal:
		period := t.Period
		if period <= 0 {
			period = horizon / 2
		}
		return t.Rate * (1 + t.amplitude()*math.Sin(2*math.Pi*at/period))
	default:
		return t.Rate
	}
}

func (t TenantSpec) duty() float64 {
	if t.Duty > 0 && t.Duty <= 1 {
		return t.Duty
	}
	return 0.25
}

func (t TenantSpec) amplitude() float64 {
	if t.Amplitude > 0 {
		return t.Amplitude
	}
	return 0.8
}
