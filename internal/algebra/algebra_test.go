package algebra

import (
	"fmt"
	"math/rand"
	"strconv"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// seqs builds an input relation of n "sequence" tuples.
func seqs(n int) Relation {
	r := Relation{Name: "sequences", Fields: []string{"id", "family"}}
	for i := 0; i < n; i++ {
		r.Tuples = append(r.Tuples, Tuple{
			"id":     fmt.Sprintf("s%d", i),
			"family": fmt.Sprintf("fam%d", i%3),
		})
	}
	return r
}

func TestRelationValidate(t *testing.T) {
	if err := (Relation{}).Validate(); err == nil {
		t.Fatal("unnamed relation validated")
	}
	if err := (Relation{Name: "r"}).Validate(); err == nil {
		t.Fatal("fieldless relation validated")
	}
	bad := Relation{Name: "r", Fields: []string{"a"}, Tuples: []Tuple{{"b": "1"}}}
	if err := bad.Validate(); err == nil {
		t.Fatal("schema mismatch validated")
	}
	extra := Relation{Name: "r", Fields: []string{"a"}, Tuples: []Tuple{{"a": "1", "b": "2"}}}
	if err := extra.Validate(); err == nil {
		t.Fatal("extra field validated")
	}
	if err := seqs(3).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestPipelineValidate(t *testing.T) {
	if err := (Pipeline{}).Validate(); err == nil {
		t.Fatal("unnamed pipeline validated")
	}
	if err := (Pipeline{Name: "p"}).Validate(); err == nil {
		t.Fatal("empty pipeline validated")
	}
	p := Pipeline{Name: "p", Activities: []Activity{{Name: "", Op: Map}}}
	if err := p.Validate(); err == nil {
		t.Fatal("unnamed activity validated")
	}
	neg := Pipeline{Name: "p", Activities: []Activity{{Name: "x", BaseCost: -1}}}
	if err := neg.Validate(); err == nil {
		t.Fatal("negative cost validated")
	}
	chunkedReduce := Pipeline{Name: "p", Activities: []Activity{{Name: "x", Op: Reduce, ChunkSize: 2}}}
	if err := chunkedReduce.Validate(); err == nil {
		t.Fatal("chunked Reduce validated")
	}
}

func TestMapExpansion(t *testing.T) {
	p := Pipeline{Name: "maponly", Activities: []Activity{
		{Name: "align", Op: Map, BaseCost: 1, PerTupleCost: 2},
	}}
	w, err := p.Expand(nil, seqs(5))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 5 {
		t.Fatalf("Len = %d, want 5 (one activation per tuple)", w.Len())
	}
	for _, a := range w.Activations() {
		if a.Activity != "align" {
			t.Fatalf("activity = %q", a.Activity)
		}
		if a.Runtime != 3 { // 1 + 2×1
			t.Fatalf("runtime = %v, want 3", a.Runtime)
		}
		if len(a.Parents()) != 0 {
			t.Fatal("first stage has parents")
		}
	}
}

func TestChunkedMap(t *testing.T) {
	p := Pipeline{Name: "chunked", Activities: []Activity{
		{Name: "align", Op: Map, ChunkSize: 2, PerTupleCost: 1},
	}}
	w, err := p.Expand(nil, seqs(5))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 3 { // ceil(5/2)
		t.Fatalf("Len = %d, want 3", w.Len())
	}
	// Two full chunks of cost 2, one remainder of cost 1.
	var costs []float64
	for _, a := range w.Activations() {
		costs = append(costs, a.Runtime)
	}
	if costs[0] != 2 || costs[1] != 2 || costs[2] != 1 {
		t.Fatalf("costs = %v", costs)
	}
}

func TestSplitMapExpansion(t *testing.T) {
	p := Pipeline{Name: "split", Activities: []Activity{
		{Name: "shard", Op: SplitMap, SplitFactor: 3, BaseCost: 1},
		{Name: "work", Op: Map, BaseCost: 1},
	}}
	w, err := p.Expand(nil, seqs(2))
	if err != nil {
		t.Fatal(err)
	}
	// 2 shard activations, each producing 3 tuples → 6 work activations.
	if w.Len() != 8 {
		t.Fatalf("Len = %d, want 8", w.Len())
	}
	counts := w.CountByActivity()
	if counts["shard"] != 2 || counts["work"] != 6 {
		t.Fatalf("counts = %v", counts)
	}
	// Every work activation depends on exactly one shard.
	for _, a := range w.Activations() {
		if a.Activity == "work" && len(a.Parents()) != 1 {
			t.Fatalf("work parents = %d", len(a.Parents()))
		}
	}
}

func TestReduceGroupsByKey(t *testing.T) {
	p := Pipeline{Name: "grouped", Activities: []Activity{
		{Name: "align", Op: Map, BaseCost: 1},
		{Name: "merge", Op: Reduce, GroupBy: []string{"family"}, PerTupleCost: 1},
	}}
	w, err := p.Expand(nil, seqs(9)) // families fam0, fam1, fam2 × 3 each
	if err != nil {
		t.Fatal(err)
	}
	counts := w.CountByActivity()
	if counts["align"] != 9 || counts["merge"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
	for _, a := range w.Activations() {
		if a.Activity != "merge" {
			continue
		}
		if len(a.Parents()) != 3 {
			t.Fatalf("merge depends on %d aligns, want 3", len(a.Parents()))
		}
		if a.Runtime != 3 { // PerTupleCost × 3 members
			t.Fatalf("merge runtime = %v", a.Runtime)
		}
	}
}

func TestReduceAllGroupsEverything(t *testing.T) {
	p := Pipeline{Name: "all", Activities: []Activity{
		{Name: "work", Op: Map, BaseCost: 1},
		{Name: "final", Op: Reduce, BaseCost: 5},
	}}
	w, err := p.Expand(nil, seqs(7))
	if err != nil {
		t.Fatal(err)
	}
	leaves := w.Leaves()
	if len(leaves) != 1 || leaves[0].Activity != "final" {
		t.Fatalf("leaves = %v", leaves)
	}
	if len(leaves[0].Parents()) != 7 {
		t.Fatalf("final fan-in = %d", len(leaves[0].Parents()))
	}
}

func TestFilterDropsTuples(t *testing.T) {
	p := Pipeline{Name: "filtered", Activities: []Activity{
		{Name: "keepEven", Op: Filter, BaseCost: 1, Predicate: func(t Tuple) bool {
			n, _ := strconv.Atoi(t["id"][1:])
			return n%2 == 0
		}},
		{Name: "work", Op: Map, BaseCost: 1},
	}}
	w, err := p.Expand(nil, seqs(6))
	if err != nil {
		t.Fatal(err)
	}
	counts := w.CountByActivity()
	// 6 filter activations; 3 surviving tuples → 3 work activations.
	if counts["keepEven"] != 6 || counts["work"] != 3 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestFilterEverythingFails(t *testing.T) {
	p := Pipeline{Name: "allgone", Activities: []Activity{
		{Name: "dropAll", Op: Filter, Predicate: func(Tuple) bool { return false }},
		{Name: "work", Op: Map},
	}}
	if _, err := p.Expand(nil, seqs(3)); err == nil {
		t.Fatal("empty intermediate relation accepted")
	}
	// ... but a terminal filter may drop everything.
	p2 := Pipeline{Name: "terminal", Activities: []Activity{
		{Name: "dropAll", Op: Filter, Predicate: func(Tuple) bool { return false }},
	}}
	if _, err := p2.Expand(nil, seqs(3)); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyInputRejected(t *testing.T) {
	p := Pipeline{Name: "p", Activities: []Activity{{Name: "x", Op: Map}}}
	if _, err := p.Expand(nil, Relation{Name: "r", Fields: []string{"a"}}); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestCostJitterDeterministic(t *testing.T) {
	p := Pipeline{Name: "j", Activities: []Activity{
		{Name: "x", Op: Map, BaseCost: 10, CostJitter: 0.5},
	}}
	w1, err := p.Expand(rand.New(rand.NewSource(5)), seqs(4))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := p.Expand(rand.New(rand.NewSource(5)), seqs(4))
	if err != nil {
		t.Fatal(err)
	}
	varied := false
	for i, a := range w1.Activations() {
		b := w2.Activations()[i]
		if a.Runtime != b.Runtime {
			t.Fatalf("same seed diverged: %v vs %v", a.Runtime, b.Runtime)
		}
		if a.Runtime != 10 {
			varied = true
		}
		if a.Runtime < 5 || a.Runtime > 15 {
			t.Fatalf("jitter out of ±50%%: %v", a.Runtime)
		}
	}
	if !varied {
		t.Fatal("jitter had no effect")
	}
}

func TestDataLineageMatchesEdges(t *testing.T) {
	p := Pipeline{Name: "lineage", Activities: []Activity{
		{Name: "a", Op: SplitMap, SplitFactor: 2, BytesPerTuple: 100},
		{Name: "b", Op: Map, BytesPerTuple: 50},
		{Name: "c", Op: Reduce, GroupBy: []string{"family"}, BytesPerTuple: 10},
	}}
	w, err := p.Expand(nil, seqs(4))
	if err != nil {
		t.Fatal(err)
	}
	// Edges should exactly match produced/consumed files: inferring
	// data deps adds nothing.
	if added := w.InferDataDeps(); added != 0 {
		t.Fatalf("InferDataDeps added %d edges", added)
	}
}

// TestSciPhyShapedPipeline expands a SciPhy-like phylogeny pipeline
// (the SWfMS's flagship workflow) and schedules it end to end.
func TestSciPhyShapedPipeline(t *testing.T) {
	p := Pipeline{Name: "SciPhy", Activities: []Activity{
		{Name: "mafft", Op: Map, BaseCost: 30, PerTupleCost: 5, BytesPerTuple: 50_000},
		{Name: "readseq", Op: Map, BaseCost: 2, BytesPerTuple: 40_000},
		{Name: "modelgenerator", Op: Map, BaseCost: 120, CostJitter: 0.2, BytesPerTuple: 10_000},
		{Name: "raxml", Op: Map, BaseCost: 200, CostJitter: 0.3, BytesPerTuple: 80_000},
		{Name: "consensus", Op: Reduce, BaseCost: 15, PerTupleCost: 1, BytesPerTuple: 5_000},
	}}
	w, err := p.Expand(rand.New(rand.NewSource(1)), seqs(12))
	if err != nil {
		t.Fatal(err)
	}
	if w.Len() != 12*4+1 {
		t.Fatalf("Len = %d, want 49", w.Len())
	}
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w, fleet, &sched.HEFT{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != sim.FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
}

func TestOperatorString(t *testing.T) {
	for op, want := range map[Operator]string{
		Map: "Map", SplitMap: "SplitMap", Reduce: "Reduce", Filter: "Filter",
	} {
		if op.String() != want {
			t.Fatalf("String(%d) = %q", int(op), op.String())
		}
	}
	if Operator(42).String() == "" {
		t.Fatal("unknown operator printed empty")
	}
}

// Property: expansion of a random Map/SplitMap/Reduce pipeline always
// yields a valid DAG whose activation count follows the operator
// arithmetic, with a single Reduce(all) leaf when terminal.
func TestPropertyExpansionWellFormed(t *testing.T) {
	f := func(seed int64, nRaw, chunkRaw, splitRaw uint8) bool {
		n := int(nRaw)%20 + 1
		chunk := int(chunkRaw)%3 + 1
		split := int(splitRaw)%3 + 1
		p := Pipeline{Name: "prop", Activities: []Activity{
			{Name: "m1", Op: Map, ChunkSize: chunk, BaseCost: 1},
			{Name: "s", Op: SplitMap, SplitFactor: split, BaseCost: 1},
			{Name: "r", Op: Reduce, BaseCost: 1},
		}}
		w, err := p.Expand(rand.New(rand.NewSource(seed)), seqs(n))
		if err != nil {
			return false
		}
		if err := w.Validate(); err != nil {
			return false
		}
		counts := w.CountByActivity()
		wantM1 := (n + chunk - 1) / chunk
		// m1 emits n tuples; s uses the default chunk size of 1.
		if counts["m1"] != wantM1 || counts["s"] != n || counts["r"] != 1 {
			return false
		}
		leaves := w.Leaves()
		return len(leaves) == 1 && leaves[0].Activity == "r"
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
