// Package algebra implements the data-centric workflow algebra
// SciCumulus is built on (Ogasawara et al., VLDB 2011) — the model
// that gives the paper its notion of *activation*: the smallest unit
// of work consuming a specific data chunk.
//
// Scientific workflows are expressed as pipelines of algebraic
// activities over relations:
//
//	Map      — consumes one tuple, produces one tuple
//	SplitMap — consumes one tuple, produces many
//	Reduce   — consumes a group of tuples (by key), produces one
//	Filter   — consumes one tuple, produces it or nothing
//
// Expand instantiates a pipeline against an input relation,
// generating one activation per consumed chunk with exact lineage
// edges — a dag.Workflow ready for any scheduler in this repository.
package algebra

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"reassign/internal/dag"
)

// Tuple is one record of a relation.
type Tuple map[string]string

// clone copies a tuple.
func (t Tuple) clone() Tuple {
	out := make(Tuple, len(t))
	for k, v := range t {
		out[k] = v
	}
	return out
}

// Relation is a named set of tuples sharing a schema.
type Relation struct {
	Name   string
	Fields []string
	Tuples []Tuple
}

// Validate checks every tuple carries exactly the schema fields.
func (r Relation) Validate() error {
	if r.Name == "" {
		return fmt.Errorf("algebra: relation without a name")
	}
	if len(r.Fields) == 0 {
		return fmt.Errorf("algebra: relation %q without fields", r.Name)
	}
	for i, t := range r.Tuples {
		if len(t) != len(r.Fields) {
			return fmt.Errorf("algebra: relation %q tuple %d has %d fields, want %d",
				r.Name, i, len(t), len(r.Fields))
		}
		for _, f := range r.Fields {
			if _, ok := t[f]; !ok {
				return fmt.Errorf("algebra: relation %q tuple %d misses field %q", r.Name, i, f)
			}
		}
	}
	return nil
}

// Operator is the algebraic operator of an activity.
type Operator int

const (
	// Map consumes one tuple and produces one tuple.
	Map Operator = iota
	// SplitMap consumes one tuple and produces SplitFactor tuples.
	SplitMap
	// Reduce consumes all tuples sharing GroupBy values and produces
	// one tuple per group.
	Reduce
	// Filter consumes one tuple and keeps it iff Predicate returns
	// true (nil keeps everything).
	Filter
)

// String implements fmt.Stringer.
func (o Operator) String() string {
	switch o {
	case Map:
		return "Map"
	case SplitMap:
		return "SplitMap"
	case Reduce:
		return "Reduce"
	case Filter:
		return "Filter"
	default:
		return fmt.Sprintf("Operator(%d)", int(o))
	}
}

// Activity is one algebraic step of a pipeline.
type Activity struct {
	// Name is the transformation name (becomes dag.Activation.Activity).
	Name string
	// Op is the algebraic operator.
	Op Operator
	// ChunkSize is the number of input tuples per activation for Map,
	// SplitMap and Filter (default 1 — the paper's finest granularity).
	ChunkSize int
	// SplitFactor is the output multiplicity of SplitMap (default 2).
	SplitFactor int
	// GroupBy names the grouping fields of Reduce (empty groups the
	// whole relation into one activation).
	GroupBy []string
	// Predicate filters tuples (Filter only; nil keeps all).
	Predicate func(Tuple) bool
	// BaseCost and PerTupleCost model the activation runtime:
	// BaseCost + PerTupleCost × consumed tuples, with ±CostJitter
	// relative uniform noise.
	BaseCost     float64
	PerTupleCost float64
	CostJitter   float64
	// BytesPerTuple sizes the produced data files.
	BytesPerTuple int64
}

func (a Activity) chunk() int {
	if a.ChunkSize < 1 {
		return 1
	}
	return a.ChunkSize
}

func (a Activity) split() int {
	if a.SplitFactor < 1 {
		return 2
	}
	return a.SplitFactor
}

// Pipeline is a linear composition of activities: the output relation
// of one feeds the next (the algebra's sequential expressions;
// fan-out/fan-in emerge from the operators themselves).
type Pipeline struct {
	Name       string
	Activities []Activity
}

// Validate checks the pipeline is well-formed.
func (p Pipeline) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("algebra: pipeline without a name")
	}
	if len(p.Activities) == 0 {
		return fmt.Errorf("algebra: pipeline %q has no activities", p.Name)
	}
	for i, a := range p.Activities {
		if a.Name == "" {
			return fmt.Errorf("algebra: pipeline %q activity %d without a name", p.Name, i)
		}
		if a.BaseCost < 0 || a.PerTupleCost < 0 || a.CostJitter < 0 {
			return fmt.Errorf("algebra: activity %q has negative costs", a.Name)
		}
		if a.Op == Reduce && a.ChunkSize > 1 {
			return fmt.Errorf("algebra: activity %q: Reduce ignores ChunkSize", a.Name)
		}
	}
	return nil
}

// lineageTuple is a tuple annotated with the activation that produced
// it (empty for input tuples).
type lineageTuple struct {
	t        Tuple
	producer string // activation ID, "" for workflow inputs
	file     dag.File
}

// Expand instantiates the pipeline against the input relation. rng
// drives cost jitter only (nil disables jitter).
func (p Pipeline) Expand(rng *rand.Rand, input Relation) (*dag.Workflow, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := input.Validate(); err != nil {
		return nil, err
	}
	if len(input.Tuples) == 0 {
		return nil, fmt.Errorf("algebra: input relation %q is empty", input.Name)
	}
	w := dag.New(p.Name)
	next := 0
	newID := func() string {
		id := fmt.Sprintf("ID%05d", next)
		next++
		return id
	}

	cur := make([]lineageTuple, 0, len(input.Tuples))
	for i, t := range input.Tuples {
		cur = append(cur, lineageTuple{
			t: t,
			file: dag.File{
				Name: fmt.Sprintf("%s_%d.in", input.Name, i),
				Size: 1024,
			},
		})
	}

	for stage, act := range p.Activities {
		var out []lineageTuple
		emit := func(members []lineageTuple, produced []Tuple) error {
			cost := act.BaseCost + act.PerTupleCost*float64(len(members))
			if act.CostJitter > 0 && rng != nil {
				cost *= 1 + (rng.Float64()*2-1)*act.CostJitter
			}
			if cost < 0 {
				cost = 0
			}
			a, err := w.Add(newID(), act.Name, cost)
			if err != nil {
				return err
			}
			seen := map[string]bool{}
			for _, m := range members {
				a.Inputs = append(a.Inputs, m.file)
				if m.producer != "" && !seen[m.producer] {
					seen[m.producer] = true
					if err := w.AddDep(m.producer, a.ID); err != nil {
						return err
					}
				}
			}
			for j, pt := range produced {
				f := dag.File{
					Name: fmt.Sprintf("%s_%s_%d.out", act.Name, a.ID, j),
					Size: act.BytesPerTuple,
				}
				a.Outputs = append(a.Outputs, f)
				out = append(out, lineageTuple{t: pt, producer: a.ID, file: f})
			}
			return nil
		}

		switch act.Op {
		case Map, Filter:
			k := act.chunk()
			for i := 0; i < len(cur); i += k {
				end := i + k
				if end > len(cur) {
					end = len(cur)
				}
				members := cur[i:end]
				var produced []Tuple
				for _, m := range members {
					if act.Op == Filter && act.Predicate != nil && !act.Predicate(m.t) {
						continue
					}
					produced = append(produced, m.t.clone())
				}
				if err := emit(members, produced); err != nil {
					return nil, err
				}
			}
		case SplitMap:
			k := act.chunk()
			for i := 0; i < len(cur); i += k {
				end := i + k
				if end > len(cur) {
					end = len(cur)
				}
				members := cur[i:end]
				var produced []Tuple
				for _, m := range members {
					for s := 0; s < act.split(); s++ {
						nt := m.t.clone()
						nt["split"] = fmt.Sprintf("%d", s)
						produced = append(produced, nt)
					}
				}
				if err := emit(members, produced); err != nil {
					return nil, err
				}
			}
		case Reduce:
			groups := make(map[string][]lineageTuple)
			var order []string
			for _, m := range cur {
				key := groupKey(m.t, act.GroupBy)
				if _, ok := groups[key]; !ok {
					order = append(order, key)
				}
				groups[key] = append(groups[key], m)
			}
			sort.Strings(order)
			for _, key := range order {
				members := groups[key]
				merged := members[0].t.clone()
				merged["group"] = key
				merged["count"] = fmt.Sprintf("%d", len(members))
				if err := emit(members, []Tuple{merged}); err != nil {
					return nil, err
				}
			}
		default:
			return nil, fmt.Errorf("algebra: unknown operator %v", act.Op)
		}
		if len(out) == 0 && stage < len(p.Activities)-1 {
			// A stage that filtered everything away leaves nothing for
			// downstream activities.
			return nil, fmt.Errorf("algebra: activity %q produced no tuples", act.Name)
		}
		cur = out
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("algebra: expansion invalid: %w", err)
	}
	return w, nil
}

// groupKey renders the grouping fields of a tuple ("" groups all).
func groupKey(t Tuple, fields []string) string {
	if len(fields) == 0 {
		return "all"
	}
	parts := make([]string, len(fields))
	for i, f := range fields {
		parts[i] = t[f]
	}
	return strings.Join(parts, "|")
}
