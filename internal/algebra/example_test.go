package algebra_test

import (
	"fmt"

	"reassign/internal/algebra"
)

// Example expresses a tiny map-reduce pipeline algebraically and
// expands it into schedulable activations with lineage edges.
func Example() {
	input := algebra.Relation{
		Name:   "samples",
		Fields: []string{"id", "site"},
		Tuples: []algebra.Tuple{
			{"id": "s1", "site": "north"},
			{"id": "s2", "site": "north"},
			{"id": "s3", "site": "south"},
		},
	}
	p := algebra.Pipeline{Name: "survey", Activities: []algebra.Activity{
		{Name: "clean", Op: algebra.Map, BaseCost: 5},
		{Name: "aggregate", Op: algebra.Reduce, GroupBy: []string{"site"}, PerTupleCost: 1},
	}}

	w, _ := p.Expand(nil, input)
	counts := w.CountByActivity()
	fmt.Println("clean activations:", counts["clean"])
	fmt.Println("aggregate activations:", counts["aggregate"]) // one per site
	fmt.Println("valid DAG:", w.Validate() == nil)
	// Output:
	// clean activations: 3
	// aggregate activations: 2
	// valid DAG: true
}
