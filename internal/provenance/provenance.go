// Package provenance is the execution-history store of the
// SciCumulus-RL pipeline (Figure 1's provenance database, rebuilt on
// JSON files instead of PostgreSQL). It records every activation
// execution — VM, queue/start/finish times, status — and answers the
// aggregate queries the reward function and the experiment tables
// need. Stored histories seed future ReASSIgN runs, the paper's
// cross-execution learning loop.
package provenance

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Execution is one provenance record.
type Execution struct {
	WorkflowName string  `json:"workflow"`
	RunID        string  `json:"run_id"`
	TaskID       string  `json:"task_id"`
	Activity     string  `json:"activity"`
	VMID         int     `json:"vm_id"`
	VMType       string  `json:"vm_type"`
	ReadyAt      float64 `json:"ready_at"`
	StartAt      float64 `json:"start_at"`
	FinishAt     float64 `json:"finish_at"`
	Attempts     int     `json:"attempts"`
	Success      bool    `json:"success"`
	// Wall records when the record was stored (RFC 3339).
	Wall string `json:"wall,omitempty"`
}

// QueueTime returns tf_i for the record.
func (e Execution) QueueTime() float64 { return e.StartAt - e.ReadyAt }

// ExecTime returns te_i for the record.
func (e Execution) ExecTime() float64 { return e.FinishAt - e.StartAt }

// Store is an in-memory provenance database, safe for concurrent use
// (the execution engine appends from worker goroutines).
type Store struct {
	mu   sync.RWMutex
	recs []Execution
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends one record, stamping Wall if unset.
func (s *Store) Add(e Execution) {
	if e.Wall == "" {
		e.Wall = time.Now().UTC().Format(time.RFC3339)
	}
	s.mu.Lock()
	s.recs = append(s.recs, e)
	s.mu.Unlock()
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// All returns a copy of every record, in insertion order.
func (s *Store) All() []Execution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Execution(nil), s.recs...)
}

// ByRun returns the records of one run, in insertion order.
func (s *Store) ByRun(runID string) []Execution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Execution
	for _, e := range s.recs {
		if e.RunID == runID {
			out = append(out, e)
		}
	}
	return out
}

// Runs returns the distinct run IDs, sorted.
func (s *Store) Runs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, e := range s.recs {
		set[e.RunID] = true
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// VMAggregate summarises executions on one VM.
type VMAggregate struct {
	VMID     int
	VMType   string
	N        int
	MeanExec float64
	MeanWait float64
}

// AggregateByVM computes per-VM mean execution and queue times over
// successful records of one run ("" = all runs) — the inputs to the
// paper's Eq. 4.
func (s *Store) AggregateByVM(runID string) []VMAggregate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type acc struct {
		n      int
		te, tf float64
		vmType string
	}
	byVM := make(map[int]*acc)
	for _, e := range s.recs {
		if !e.Success || (runID != "" && e.RunID != runID) {
			continue
		}
		a, ok := byVM[e.VMID]
		if !ok {
			a = &acc{vmType: e.VMType}
			byVM[e.VMID] = a
		}
		a.n++
		a.te += e.ExecTime()
		a.tf += e.QueueTime()
	}
	ids := make([]int, 0, len(byVM))
	for id := range byVM {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]VMAggregate, 0, len(ids))
	for _, id := range ids {
		a := byVM[id]
		out = append(out, VMAggregate{
			VMID: id, VMType: a.vmType, N: a.n,
			MeanExec: a.te / float64(a.n),
			MeanWait: a.tf / float64(a.n),
		})
	}
	return out
}

// ActivityAggregate summarises executions of one activity.
type ActivityAggregate struct {
	Activity string
	N        int
	MeanExec float64
}

// AggregateByActivity computes per-activity mean execution times over
// successful records — used for performance profiling and estimation.
func (s *Store) AggregateByActivity(runID string) []ActivityAggregate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type acc struct {
		n  int
		te float64
	}
	byAct := make(map[string]*acc)
	for _, e := range s.recs {
		if !e.Success || (runID != "" && e.RunID != runID) {
			continue
		}
		a, ok := byAct[e.Activity]
		if !ok {
			a = &acc{}
			byAct[e.Activity] = a
		}
		a.n++
		a.te += e.ExecTime()
	}
	names := make([]string, 0, len(byAct))
	for n := range byAct {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ActivityAggregate, 0, len(names))
	for _, n := range names {
		a := byAct[n]
		out = append(out, ActivityAggregate{Activity: n, N: a.n, MeanExec: a.te / float64(a.n)})
	}
	return out
}

// Makespan returns the span from the earliest ready time to the
// latest finish time of a run's successful records, or 0 when empty.
func (s *Store) Makespan(runID string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	first, last := 0.0, 0.0
	seen := false
	for _, e := range s.recs {
		if runID != "" && e.RunID != runID {
			continue
		}
		if !seen || e.ReadyAt < first {
			first = e.ReadyAt
		}
		if !seen || e.FinishAt > last {
			last = e.FinishAt
		}
		seen = true
	}
	if !seen {
		return 0
	}
	return last - first
}

// Save writes the store as JSON.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s.recs)
}

// Load replaces the store contents from JSON.
func (s *Store) Load(r io.Reader) error {
	var recs []Execution
	if err := json.NewDecoder(r).Decode(&recs); err != nil {
		return fmt.Errorf("provenance: load: %w", err)
	}
	s.mu.Lock()
	s.recs = recs
	s.mu.Unlock()
	return nil
}

// SaveFile writes the store to a JSON file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a store previously written by SaveFile.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

// CSV writes the store as comma-separated values with a header row —
// the exchange format for spreadsheets and notebooks.
func (s *Store) CSV(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"workflow", "run_id", "task_id", "activity", "vm_id", "vm_type",
		"ready_at", "start_at", "finish_at", "attempts", "success",
	}); err != nil {
		return err
	}
	for _, e := range s.recs {
		rec := []string{
			e.WorkflowName, e.RunID, e.TaskID, e.Activity,
			strconv.Itoa(e.VMID), e.VMType,
			strconv.FormatFloat(e.ReadyAt, 'f', -1, 64),
			strconv.FormatFloat(e.StartAt, 'f', -1, 64),
			strconv.FormatFloat(e.FinishAt, 'f', -1, 64),
			strconv.Itoa(e.Attempts),
			strconv.FormatBool(e.Success),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
