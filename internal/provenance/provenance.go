// Package provenance is the execution-history store of the
// SciCumulus-RL pipeline (Figure 1's provenance database, rebuilt on
// JSON files instead of PostgreSQL). It records every activation
// execution — VM, queue/start/finish times, status — and answers the
// aggregate queries the reward function and the experiment tables
// need. Stored histories seed future ReASSIgN runs, the paper's
// cross-execution learning loop.
package provenance

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// Execution is one provenance record.
type Execution struct {
	WorkflowName string  `json:"workflow"`
	RunID        string  `json:"run_id"`
	TaskID       string  `json:"task_id"`
	Activity     string  `json:"activity"`
	VMID         int     `json:"vm_id"`
	VMType       string  `json:"vm_type"`
	ReadyAt      float64 `json:"ready_at"`
	StartAt      float64 `json:"start_at"`
	FinishAt     float64 `json:"finish_at"`
	Attempts     int     `json:"attempts"`
	Success      bool    `json:"success"`
	// Wall records when the record was stored (RFC 3339).
	Wall string `json:"wall,omitempty"`
}

// QueueTime returns tf_i for the record.
func (e Execution) QueueTime() float64 { return e.StartAt - e.ReadyAt }

// ExecTime returns te_i for the record.
func (e Execution) ExecTime() float64 { return e.FinishAt - e.StartAt }

// Attempt is one execution attempt of an activation — including
// retries, expiries and abandons — as recorded by the execution-stage
// master. The final outcome of an activation is summarised in its
// Execution row; attempts keep the full failure history that retry
// policies and reliability studies need.
type Attempt struct {
	RunID    string `json:"run_id"`
	TaskID   string `json:"task_id"`
	Activity string `json:"activity"`
	// Number is 1-based: the first dispatch is attempt 1.
	Number int `json:"attempt"`
	VMID   int `json:"vm_id"`
	// Worker identifies the executing worker within the run's pool.
	Worker  int     `json:"worker"`
	StartAt float64 `json:"start_at"`
	EndAt   float64 `json:"end_at"`
	// Outcome is "ok", "failed", "expired", "lost" (worker died) or
	// "abandoned" (attempt budget exhausted).
	Outcome string `json:"outcome"`
	// Error carries the failure message for non-ok outcomes.
	Error string `json:"error,omitempty"`
	// Wall records when the record was stored (RFC 3339).
	Wall string `json:"wall,omitempty"`
}

// Store is an in-memory provenance database, safe for concurrent use
// (the execution engine appends from worker goroutines).
type Store struct {
	mu       sync.RWMutex
	recs     []Execution
	attempts []Attempt
	now      func() time.Time
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// SetNow overrides the wall clock used to stamp records — tests
// inject a fixed clock so stored bytes are deterministic. A nil fn
// restores time.Now.
func (s *Store) SetNow(fn func() time.Time) {
	s.mu.Lock()
	s.now = fn
	s.mu.Unlock()
}

// stamp returns the wall-clock stamp under s.mu (read or write lock).
func (s *Store) stamp() string {
	fn := s.now
	if fn == nil {
		fn = time.Now
	}
	return fn().UTC().Format(time.RFC3339)
}

// Add appends one record, stamping Wall if unset.
func (s *Store) Add(e Execution) {
	s.mu.Lock()
	if e.Wall == "" {
		e.Wall = s.stamp()
	}
	s.recs = append(s.recs, e)
	s.mu.Unlock()
}

// AddAttempt appends one attempt record, stamping Wall if unset.
func (s *Store) AddAttempt(a Attempt) {
	s.mu.Lock()
	if a.Wall == "" {
		a.Wall = s.stamp()
	}
	s.attempts = append(s.attempts, a)
	s.mu.Unlock()
}

// Attempts returns a copy of every attempt record, in insertion order.
func (s *Store) Attempts() []Attempt {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Attempt(nil), s.attempts...)
}

// AttemptsFor returns the attempt history of one activation in one
// run ("" = all runs), in insertion order.
func (s *Store) AttemptsFor(runID, taskID string) []Attempt {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Attempt
	for _, a := range s.attempts {
		if a.TaskID == taskID && (runID == "" || a.RunID == runID) {
			out = append(out, a)
		}
	}
	return out
}

// Len returns the number of records.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// All returns a copy of every record, in insertion order.
func (s *Store) All() []Execution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return append([]Execution(nil), s.recs...)
}

// ByRun returns the records of one run, in insertion order.
func (s *Store) ByRun(runID string) []Execution {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []Execution
	for _, e := range s.recs {
		if e.RunID == runID {
			out = append(out, e)
		}
	}
	return out
}

// Runs returns the distinct run IDs, sorted.
func (s *Store) Runs() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	set := make(map[string]bool)
	for _, e := range s.recs {
		set[e.RunID] = true
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// VMAggregate summarises executions on one VM.
type VMAggregate struct {
	VMID     int
	VMType   string
	N        int
	MeanExec float64
	MeanWait float64
}

// AggregateByVM computes per-VM mean execution and queue times over
// successful records of one run ("" = all runs) — the inputs to the
// paper's Eq. 4.
func (s *Store) AggregateByVM(runID string) []VMAggregate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type acc struct {
		n      int
		te, tf float64
		vmType string
	}
	byVM := make(map[int]*acc)
	for _, e := range s.recs {
		if !e.Success || (runID != "" && e.RunID != runID) {
			continue
		}
		a, ok := byVM[e.VMID]
		if !ok {
			a = &acc{vmType: e.VMType}
			byVM[e.VMID] = a
		}
		a.n++
		a.te += e.ExecTime()
		a.tf += e.QueueTime()
	}
	ids := make([]int, 0, len(byVM))
	for id := range byVM {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	out := make([]VMAggregate, 0, len(ids))
	for _, id := range ids {
		a := byVM[id]
		out = append(out, VMAggregate{
			VMID: id, VMType: a.vmType, N: a.n,
			MeanExec: a.te / float64(a.n),
			MeanWait: a.tf / float64(a.n),
		})
	}
	return out
}

// ActivityAggregate summarises executions of one activity.
type ActivityAggregate struct {
	Activity string
	N        int
	MeanExec float64
}

// AggregateByActivity computes per-activity mean execution times over
// successful records — used for performance profiling and estimation.
func (s *Store) AggregateByActivity(runID string) []ActivityAggregate {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type acc struct {
		n  int
		te float64
	}
	byAct := make(map[string]*acc)
	for _, e := range s.recs {
		if !e.Success || (runID != "" && e.RunID != runID) {
			continue
		}
		a, ok := byAct[e.Activity]
		if !ok {
			a = &acc{}
			byAct[e.Activity] = a
		}
		a.n++
		a.te += e.ExecTime()
	}
	names := make([]string, 0, len(byAct))
	for n := range byAct {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]ActivityAggregate, 0, len(names))
	for _, n := range names {
		a := byAct[n]
		out = append(out, ActivityAggregate{Activity: n, N: a.n, MeanExec: a.te / float64(a.n)})
	}
	return out
}

// Makespan returns the span from the earliest ready time to the
// latest finish time of a run's successful records, or 0 when empty.
func (s *Store) Makespan(runID string) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	first, last := 0.0, 0.0
	seen := false
	for _, e := range s.recs {
		if runID != "" && e.RunID != runID {
			continue
		}
		if !seen || e.ReadyAt < first {
			first = e.ReadyAt
		}
		if !seen || e.FinishAt > last {
			last = e.FinishAt
		}
		seen = true
	}
	if !seen {
		return 0
	}
	return last - first
}

// file is the on-disk object form, used whenever the store carries
// attempt history. Attempt-free stores keep the legacy plain-array
// encoding so existing files and consumers round-trip unchanged.
type file struct {
	Executions []Execution `json:"executions"`
	Attempts   []Attempt   `json:"attempts,omitempty"`
}

// Save writes the store as JSON. Stores without attempt records use
// the legacy array-of-executions form; stores with attempts use an
// object with "executions" and "attempts" keys. Load accepts both.
func (s *Store) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if len(s.attempts) == 0 {
		return enc.Encode(s.recs)
	}
	return enc.Encode(file{Executions: s.recs, Attempts: s.attempts})
}

// Load replaces the store contents from JSON, accepting both the
// legacy array form and the object form written for stores with
// attempt history.
func (s *Store) Load(r io.Reader) error {
	var raw json.RawMessage
	if err := json.NewDecoder(r).Decode(&raw); err != nil {
		return fmt.Errorf("provenance: load: %w", err)
	}
	var recs []Execution
	var atts []Attempt
	if err := json.Unmarshal(raw, &recs); err != nil {
		var f file
		if err2 := json.Unmarshal(raw, &f); err2 != nil {
			return fmt.Errorf("provenance: load: %w", err)
		}
		recs, atts = f.Executions, f.Attempts
	}
	s.mu.Lock()
	s.recs = recs
	s.attempts = atts
	s.mu.Unlock()
	return nil
}

// SaveFile writes the store to a JSON file.
func (s *Store) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a store previously written by SaveFile.
func (s *Store) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.Load(f)
}

// CSV writes the store as comma-separated values with a header row —
// the exchange format for spreadsheets and notebooks. It is
// WriteCSV(w, false): execution rows only.
func (s *Store) CSV(w io.Writer) error { return s.WriteCSV(w, false) }

// WriteCSV writes the store as CSV. With includeAttempts false the
// output is the legacy execution-row format. With it true, every row
// gains a leading "kind" column ("execution" or "attempt") plus the
// attempt-history columns (attempt, worker, outcome, error), and the
// per-attempt records follow the execution rows.
func (s *Store) WriteCSV(w io.Writer, includeAttempts bool) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	cw := csv.NewWriter(w)
	header := []string{
		"workflow", "run_id", "task_id", "activity", "vm_id", "vm_type",
		"ready_at", "start_at", "finish_at", "attempts", "success",
	}
	if includeAttempts {
		header = append([]string{"kind"}, append(header, "attempt", "worker", "outcome", "error")...)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, e := range s.recs {
		rec := []string{
			e.WorkflowName, e.RunID, e.TaskID, e.Activity,
			strconv.Itoa(e.VMID), e.VMType,
			strconv.FormatFloat(e.ReadyAt, 'f', -1, 64),
			strconv.FormatFloat(e.StartAt, 'f', -1, 64),
			strconv.FormatFloat(e.FinishAt, 'f', -1, 64),
			strconv.Itoa(e.Attempts),
			strconv.FormatBool(e.Success),
		}
		if includeAttempts {
			rec = append([]string{"execution"}, append(rec, "", "", "", "")...)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	if includeAttempts {
		for _, a := range s.attempts {
			rec := []string{
				"attempt",
				"", a.RunID, a.TaskID, a.Activity,
				strconv.Itoa(a.VMID), "",
				"",
				strconv.FormatFloat(a.StartAt, 'f', -1, 64),
				strconv.FormatFloat(a.EndAt, 'f', -1, 64),
				"", "",
				strconv.Itoa(a.Number),
				strconv.Itoa(a.Worker),
				a.Outcome,
				a.Error,
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
