package provenance

import (
	"bytes"
	"encoding/csv"
	"strings"
	"testing"
	"time"
)

func TestAttemptsRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(Execution{RunID: "r", TaskID: "a", Activity: "act", VMID: 1,
		StartAt: 0, FinishAt: 10, Attempts: 2, Success: true})
	s.AddAttempt(Attempt{RunID: "r", TaskID: "a", Activity: "act",
		Number: 1, VMID: 1, Worker: 0, StartAt: 0, EndAt: 4,
		Outcome: "failed", Error: "boom"})
	s.AddAttempt(Attempt{RunID: "r", TaskID: "a", Activity: "act",
		Number: 2, VMID: 1, Worker: 0, StartAt: 5, EndAt: 10, Outcome: "ok"})

	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// With attempts present, the object form is used.
	if !strings.Contains(buf.String(), `"attempts"`) {
		t.Fatalf("save did not use the object form: %s", buf.String())
	}
	loaded := NewStore()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 || len(loaded.Attempts()) != 2 {
		t.Fatalf("loaded %d executions, %d attempts", loaded.Len(), len(loaded.Attempts()))
	}
	got := loaded.AttemptsFor("r", "a")
	if len(got) != 2 || got[0].Outcome != "failed" || got[1].Outcome != "ok" {
		t.Fatalf("attempt history = %+v", got)
	}
	if got[0].Error != "boom" || got[0].Number != 1 {
		t.Fatalf("first attempt = %+v", got[0])
	}
}

func TestAttemptFreeStoreKeepsLegacyEncoding(t *testing.T) {
	s := NewStore()
	s.SetNow(func() time.Time { return time.Unix(0, 0) })
	s.Add(Execution{RunID: "r", TaskID: "a", Success: true})
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// No attempts: the legacy plain-array form, so stores written by
	// older code and readers of it keep working.
	if !strings.HasPrefix(strings.TrimSpace(buf.String()), "[") {
		t.Fatalf("attempt-free save is not a JSON array: %s", buf.String())
	}
	loaded := NewStore()
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Len() != 1 || len(loaded.Attempts()) != 0 {
		t.Fatalf("legacy round-trip: %d executions, %d attempts",
			loaded.Len(), len(loaded.Attempts()))
	}
}

func TestSetNowMakesStampsDeterministic(t *testing.T) {
	fixed := time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC)
	save := func() string {
		s := NewStore()
		s.SetNow(func() time.Time { return fixed })
		s.Add(Execution{RunID: "r", TaskID: "a"})
		s.AddAttempt(Attempt{RunID: "r", TaskID: "a", Number: 1, Outcome: "ok"})
		var buf bytes.Buffer
		if err := s.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := save(), save()
	if a != b {
		t.Fatal("stores with a fixed clock serialise differently")
	}
	if !strings.Contains(a, "2026-02-03T04:05:06Z") {
		t.Fatalf("fixed stamp missing: %s", a)
	}
}

func TestWriteCSVWithAttempts(t *testing.T) {
	s := NewStore()
	s.Add(Execution{WorkflowName: "wf", RunID: "r", TaskID: "a",
		Activity: "act", VMID: 1, FinishAt: 10, Attempts: 2, Success: true})
	s.AddAttempt(Attempt{RunID: "r", TaskID: "a", Activity: "act",
		Number: 1, VMID: 1, Worker: 3, EndAt: 4, Outcome: "failed", Error: "x"})

	// Legacy CSV is unchanged: no kind column.
	var legacy bytes.Buffer
	if err := s.CSV(&legacy); err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(legacy.String(), "kind") {
		t.Fatalf("legacy CSV gained a kind column: %s", legacy.String())
	}

	var buf bytes.Buffer
	if err := s.WriteCSV(&buf, true); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + execution + attempt
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][0] != "kind" {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][0] != "execution" || rows[2][0] != "attempt" {
		t.Fatalf("kinds = %q, %q", rows[1][0], rows[2][0])
	}
	// The attempt row carries worker and outcome in the new columns.
	h := rows[0]
	idx := func(name string) int {
		for i, c := range h {
			if c == name {
				return i
			}
		}
		t.Fatalf("column %q missing from %v", name, h)
		return -1
	}
	if rows[2][idx("worker")] != "3" || rows[2][idx("outcome")] != "failed" ||
		rows[2][idx("attempt")] != "1" || rows[2][idx("error")] != "x" {
		t.Fatalf("attempt row = %v", rows[2])
	}
}
