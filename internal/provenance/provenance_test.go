package provenance

import (
	"bytes"
	"encoding/csv"
	"math"
	"path/filepath"
	"sync"
	"testing"
	"testing/quick"
)

func exec(run, task, act string, vm int, ready, start, finish float64, ok bool) Execution {
	return Execution{
		WorkflowName: "w", RunID: run, TaskID: task, Activity: act,
		VMID: vm, VMType: "t2.micro",
		ReadyAt: ready, StartAt: start, FinishAt: finish, Attempts: 1, Success: ok,
	}
}

func TestAddAndQuery(t *testing.T) {
	s := NewStore()
	if s.Len() != 0 {
		t.Fatal("new store not empty")
	}
	s.Add(exec("r1", "t1", "a", 0, 0, 1, 5, true))
	s.Add(exec("r1", "t2", "a", 1, 0, 2, 4, true))
	s.Add(exec("r2", "t1", "b", 0, 0, 0, 3, true))
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	if got := len(s.ByRun("r1")); got != 2 {
		t.Fatalf("ByRun(r1) = %d", got)
	}
	runs := s.Runs()
	if len(runs) != 2 || runs[0] != "r1" || runs[1] != "r2" {
		t.Fatalf("Runs = %v", runs)
	}
	// Records carry a wall timestamp.
	if s.All()[0].Wall == "" {
		t.Fatal("Wall not stamped")
	}
}

func TestQueueAndExecTimes(t *testing.T) {
	e := exec("r", "t", "a", 0, 1, 3, 8, true)
	if e.QueueTime() != 2 {
		t.Fatalf("QueueTime = %v", e.QueueTime())
	}
	if e.ExecTime() != 5 {
		t.Fatalf("ExecTime = %v", e.ExecTime())
	}
}

func TestAggregateByVM(t *testing.T) {
	s := NewStore()
	s.Add(exec("r1", "t1", "a", 0, 0, 1, 5, true))  // exec 4, wait 1
	s.Add(exec("r1", "t2", "a", 0, 0, 3, 9, true))  // exec 6, wait 3
	s.Add(exec("r1", "t3", "a", 1, 0, 0, 2, true))  // exec 2, wait 0
	s.Add(exec("r1", "t4", "a", 0, 0, 0, 9, false)) // failed, excluded
	s.Add(exec("r2", "t5", "a", 0, 0, 0, 100, true))

	aggs := s.AggregateByVM("r1")
	if len(aggs) != 2 {
		t.Fatalf("aggs = %v", aggs)
	}
	if aggs[0].VMID != 0 || aggs[0].N != 2 {
		t.Fatalf("vm0 agg = %+v", aggs[0])
	}
	if math.Abs(aggs[0].MeanExec-5) > 1e-9 || math.Abs(aggs[0].MeanWait-2) > 1e-9 {
		t.Fatalf("vm0 means = %+v", aggs[0])
	}
	if aggs[1].VMID != 1 || aggs[1].MeanExec != 2 {
		t.Fatalf("vm1 agg = %+v", aggs[1])
	}
	// All runs.
	all := s.AggregateByVM("")
	if all[0].N != 3 {
		t.Fatalf("all-runs vm0 N = %d", all[0].N)
	}
}

func TestAggregateByActivity(t *testing.T) {
	s := NewStore()
	s.Add(exec("r1", "t1", "mAdd", 0, 0, 0, 10, true))
	s.Add(exec("r1", "t2", "mAdd", 1, 0, 0, 20, true))
	s.Add(exec("r1", "t3", "mJPEG", 1, 0, 0, 2, true))
	aggs := s.AggregateByActivity("r1")
	if len(aggs) != 2 {
		t.Fatalf("aggs = %v", aggs)
	}
	if aggs[0].Activity != "mAdd" || aggs[0].N != 2 || aggs[0].MeanExec != 15 {
		t.Fatalf("mAdd agg = %+v", aggs[0])
	}
}

func TestMakespan(t *testing.T) {
	s := NewStore()
	if s.Makespan("") != 0 {
		t.Fatal("empty makespan != 0")
	}
	s.Add(exec("r1", "t1", "a", 0, 1, 2, 10, true))
	s.Add(exec("r1", "t2", "a", 0, 3, 12, 25, true))
	if got := s.Makespan("r1"); got != 24 {
		t.Fatalf("Makespan = %v, want 24", got)
	}
	if got := s.Makespan("missing"); got != 0 {
		t.Fatalf("missing run makespan = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	s := NewStore()
	s.Add(exec("r1", "t1", "a", 0, 0, 1, 5, true))
	s.Add(exec("r1", "t2", "b", 1, 0, 2, 4, false))
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 2 {
		t.Fatalf("loaded %d records", s2.Len())
	}
	a, b := s.All(), s2.All()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d changed: %+v vs %+v", i, a[i], b[i])
		}
	}
	if err := s2.Load(bytes.NewBufferString("nope")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "prov.json")
	s := NewStore()
	s.Add(exec("r1", "t1", "a", 0, 0, 1, 5, true))
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s2 := NewStore()
	if err := s2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != 1 {
		t.Fatalf("loaded %d", s2.Len())
	}
	if err := s2.LoadFile(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestConcurrentAdds(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	const writers, each = 8, 100
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				s.Add(exec("r", "t", "a", w, 0, 1, 2, true))
			}
		}(w)
	}
	wg.Wait()
	if s.Len() != writers*each {
		t.Fatalf("Len = %d, want %d", s.Len(), writers*each)
	}
	aggs := s.AggregateByVM("")
	if len(aggs) != writers {
		t.Fatalf("aggs = %d", len(aggs))
	}
}

// Property: aggregates over a run partition the successful records of
// that run.
func TestPropertyAggregatesPartition(t *testing.T) {
	f := func(raw []uint8) bool {
		s := NewStore()
		wantSuccess := 0
		for i, r := range raw {
			ok := r%3 != 0
			if ok {
				wantSuccess++
			}
			s.Add(exec("r", "t", "a", int(r%5), 0, float64(i), float64(i)+1, ok))
		}
		total := 0
		for _, a := range s.AggregateByVM("r") {
			total += a.N
		}
		return total == wantSuccess
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVExport(t *testing.T) {
	s := NewStore()
	s.Add(exec("r1", "t1", "mAdd", 3, 0, 1, 5, true))
	s.Add(exec("r1", "t2", "mJPEG", 8, 2, 3, 4, false))
	var buf bytes.Buffer
	if err := s.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	r := csv.NewReader(&buf)
	rows, err := r.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want header + 2", len(rows))
	}
	if rows[0][0] != "workflow" || len(rows[0]) != 11 {
		t.Fatalf("header = %v", rows[0])
	}
	if rows[1][3] != "mAdd" || rows[1][4] != "3" || rows[1][10] != "true" {
		t.Fatalf("row 1 = %v", rows[1])
	}
	if rows[2][10] != "false" {
		t.Fatalf("row 2 = %v", rows[2])
	}
}
