package metrics

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Fatalf("Mean = %v", got)
	}
	if StdDev([]float64{5}) != 0 {
		t.Fatal("StdDev of single value != 0")
	}
	// Population stddev of {2, 4} is 1.
	if got := StdDev([]float64{2, 4}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("StdDev = %v, want 1", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty Min/Max not infinite")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile != 0")
	}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("P0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("P100 = %v", got)
	}
	if got := Percentile(xs, 50); math.Abs(got-25) > 1e-12 {
		t.Fatalf("P50 = %v, want 25", got)
	}
	// Percentile must not mutate its input.
	ys := []float64{3, 1, 2}
	Percentile(ys, 50)
	if ys[0] != 3 || ys[1] != 1 || ys[2] != 2 {
		t.Fatalf("input mutated: %v", ys)
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[float64]string{
		0:        "00:00:00.000",
		189.625:  "00:03:09.625",
		228.892:  "00:03:48.892",
		3661.001: "01:01:01.001",
	}
	for sec, want := range cases {
		if got := FormatDuration(sec); got != want {
			t.Errorf("FormatDuration(%v) = %q, want %q", sec, got, want)
		}
	}
	if got := FormatDuration(-1.5); got != "-00:00:01.500" {
		t.Errorf("negative = %q", got)
	}
}

func TestTableRendering(t *testing.T) {
	tab := NewTable("Table X", "col", "value")
	tab.AddRow("a", "1")
	tab.AddRowF("b", 2.5, "extra-dropped")
	tab.AddRowF("c", 7)
	if tab.Rows() != 3 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	s := tab.String()
	for _, want := range []string{"Table X", "col", "value", "a", "2.50000", "7"} {
		if !strings.Contains(s, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, s)
		}
	}
	// Every line has the same visual structure: header, separator, rows.
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 1+2+3 {
		t.Fatalf("line count = %d:\n%s", len(lines), s)
	}
	tsv := tab.TSV()
	if !strings.HasPrefix(tsv, "col\tvalue\n") {
		t.Fatalf("TSV header = %q", tsv)
	}
	if !strings.Contains(tsv, "a\t1\n") {
		t.Fatalf("TSV rows = %q", tsv)
	}
}

func TestTableShortRowPadded(t *testing.T) {
	tab := NewTable("", "a", "b", "c")
	tab.AddRow("only")
	s := tab.String()
	if !strings.Contains(s, "only") {
		t.Fatal("row lost")
	}
}

// Property: Mean is within [Min, Max]; StdDev is non-negative;
// Percentile is monotone in p.
func TestPropertyStatsConsistent(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, int(n)+2)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		m := Mean(xs)
		if m < Min(xs)-1e-9 || m > Max(xs)+1e-9 {
			return false
		}
		if StdDev(xs) < 0 {
			return false
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 100; p += 10 {
			v := Percentile(xs, p)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: FormatDuration round-trips the hour/minute/second split.
func TestPropertyFormatDurationParses(t *testing.T) {
	f := func(ms uint32) bool {
		sec := float64(ms%86_400_000) / 1000
		s := FormatDuration(sec)
		var h, m, ss, mmm int
		if _, err := fmtSscanf(s, &h, &m, &ss, &mmm); err != nil {
			return false
		}
		back := float64(h)*3600 + float64(m)*60 + float64(ss) + float64(mmm)/1000
		return math.Abs(back-sec) < 0.002
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// fmtSscanf parses HH:MM:SS.mmm.
func fmtSscanf(s string, h, m, ss, mmm *int) (int, error) {
	return sscanf(s, h, m, ss, mmm)
}

func sscanf(s string, h, m, ss, mmm *int) (int, error) {
	var err error
	n := 0
	parse := func(sub string, dst *int) {
		if err != nil {
			return
		}
		v := 0
		for _, c := range sub {
			if c < '0' || c > '9' {
				err = errBadFormat
				return
			}
			v = v*10 + int(c-'0')
		}
		*dst = v
		n++
	}
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return 0, errBadFormat
	}
	parse(parts[0], h)
	parse(parts[1], m)
	secParts := strings.Split(parts[2], ".")
	if len(secParts) != 2 {
		return 0, errBadFormat
	}
	parse(secParts[0], ss)
	parse(secParts[1], mmm)
	return n, err
}

var errBadFormat = errors.New("bad duration format")

func BenchmarkPercentile(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 95)
	}
}

func TestSummarize(t *testing.T) {
	if got := Summarize(nil); got.N != 0 || got.String() != "n=0" {
		t.Fatalf("empty summary = %+v", got)
	}
	xs := []float64{1, 2, 3, 4, 5}
	s := Summarize(xs)
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if !strings.Contains(s.String(), "mean=3.00") {
		t.Fatalf("String = %q", s.String())
	}
}
