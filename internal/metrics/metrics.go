// Package metrics provides the descriptive statistics, duration
// formatting and plain-text table rendering the experiment harness
// uses to print the paper's tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"
)

// Mean returns the arithmetic mean, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation, or 0 for fewer
// than two values.
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Min returns the minimum, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0-100) by linear
// interpolation; it returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	if p <= 0 {
		return ys[0]
	}
	if p >= 100 {
		return ys[len(ys)-1]
	}
	rank := p / 100 * float64(len(ys)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return ys[lo]
	}
	frac := rank - float64(lo)
	return ys[lo]*(1-frac) + ys[hi]*frac
}

// FormatDuration renders seconds in the paper's Table IV style:
// HH:MM:SS.mmm (e.g. 189.625s → "00:03:09.625").
func FormatDuration(seconds float64) string {
	if seconds < 0 {
		return "-" + FormatDuration(-seconds)
	}
	d := time.Duration(seconds * float64(time.Second))
	h := d / time.Hour
	d -= h * time.Hour
	m := d / time.Minute
	d -= m * time.Minute
	s := d / time.Second
	d -= s * time.Second
	ms := d / time.Millisecond
	return fmt.Sprintf("%02d:%02d:%02d.%03d", h, m, s, ms)
}

// Table renders rows as a fixed-width plain-text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns an empty table with the given title and headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends one row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// AddRowF appends a row of formatted values: strings pass through,
// float64 render with 'g', ints with %d, everything else with %v.
func (t *Table) AddRowF(cells ...any) {
	row := make([]string, 0, len(cells))
	for _, c := range cells {
		switch v := c.(type) {
		case string:
			row = append(row, v)
		case float64:
			row = append(row, fmt.Sprintf("%.5f", v))
		case int:
			row = append(row, fmt.Sprintf("%d", v))
		default:
			row = append(row, fmt.Sprintf("%v", v))
		}
	}
	t.AddRow(row...)
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", width[i]-len(c)))
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return b.String()
}

// TSV renders the table as tab-separated values (headers first), the
// machine-readable companion of String.
func (t *Table) TSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Headers, "\t"))
	b.WriteByte('\n')
	for _, r := range t.rows {
		b.WriteString(strings.Join(r, "\t"))
		b.WriteByte('\n')
	}
	return b.String()
}

// Summary is a five-number-plus descriptive summary of a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64
	Min  float64
	Max  float64
	P50  float64
	P95  float64
	P99  float64
}

// Summarize computes a Summary (zero value for an empty sample).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	return Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Std:  StdDev(xs),
		Min:  Min(xs),
		Max:  Max(xs),
		P50:  Percentile(xs, 50),
		P95:  Percentile(xs, 95),
		P99:  Percentile(xs, 99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	if s.N == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p95=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.Max)
}
