// Package report assembles self-contained HTML reports from the
// harness's artefacts — result tables, Gantt charts and learning
// curves — so one file carries a full reproduction run. Only inline
// SVG and a small embedded stylesheet are used; the output opens
// anywhere.
package report

import (
	"fmt"
	"html"
	"strings"
	"time"

	"reassign/internal/metrics"
)

// Builder accumulates sections in order.
type Builder struct {
	Title    string
	sections []string
}

// New returns an empty report with the given title.
func New(title string) *Builder {
	return &Builder{Title: title}
}

// Sections returns the number of sections added so far.
func (b *Builder) Sections() int { return len(b.sections) }

// AddHeading starts a new top-level section.
func (b *Builder) AddHeading(text string) {
	b.sections = append(b.sections, "<h2>"+html.EscapeString(text)+"</h2>")
}

// AddParagraph adds body text (escaped).
func (b *Builder) AddParagraph(text string) {
	b.sections = append(b.sections, "<p>"+html.EscapeString(text)+"</p>")
}

// AddTable renders a metrics table as an HTML table.
func (b *Builder) AddTable(t *metrics.Table) {
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString("<h3>" + html.EscapeString(t.Title) + "</h3>\n")
	}
	sb.WriteString("<table>\n<thead><tr>")
	for _, h := range t.Headers {
		sb.WriteString("<th>" + html.EscapeString(h) + "</th>")
	}
	sb.WriteString("</tr></thead>\n<tbody>\n")
	for _, line := range strings.Split(strings.TrimSpace(t.TSV()), "\n")[1:] {
		sb.WriteString("<tr>")
		for _, c := range strings.Split(line, "\t") {
			sb.WriteString("<td>" + html.EscapeString(c) + "</td>")
		}
		sb.WriteString("</tr>\n")
	}
	sb.WriteString("</tbody>\n</table>\n")
	b.sections = append(b.sections, sb.String())
}

// AddSVG embeds a chart inline. The SVG is trusted (produced by our
// own gantt/plot packages) and inserted verbatim.
func (b *Builder) AddSVG(svg string) {
	b.sections = append(b.sections, `<div class="figure">`+svg+`</div>`)
}

// AddPre embeds preformatted text (e.g. an ASCII Gantt chart).
func (b *Builder) AddPre(text string) {
	b.sections = append(b.sections, "<pre>"+html.EscapeString(text)+"</pre>")
}

const style = `
body { font-family: system-ui, sans-serif; margin: 2rem auto; max-width: 70rem; color: #222; }
h1 { border-bottom: 2px solid #1f77b4; padding-bottom: .3rem; }
h2 { margin-top: 2rem; border-bottom: 1px solid #ccc; }
table { border-collapse: collapse; margin: 1rem 0; font-size: .9rem; }
th, td { border: 1px solid #bbb; padding: .25rem .6rem; text-align: left; }
th { background: #f0f4f8; }
tr:nth-child(even) td { background: #fafafa; }
pre { background: #f6f6f6; padding: .8rem; overflow-x: auto; font-size: .75rem; }
.figure { margin: 1rem 0; overflow-x: auto; }
footer { margin-top: 3rem; color: #888; font-size: .8rem; }
`

// HTML renders the complete document.
func (b *Builder) HTML() string {
	var sb strings.Builder
	sb.WriteString("<!DOCTYPE html>\n<html lang=\"en\">\n<head>\n<meta charset=\"utf-8\">\n")
	sb.WriteString("<title>" + html.EscapeString(b.Title) + "</title>\n")
	sb.WriteString("<style>" + style + "</style>\n</head>\n<body>\n")
	sb.WriteString("<h1>" + html.EscapeString(b.Title) + "</h1>\n")
	for _, s := range b.sections {
		sb.WriteString(s)
		sb.WriteString("\n")
	}
	fmt.Fprintf(&sb, "<footer>generated %s</footer>\n", time.Now().UTC().Format(time.RFC3339))
	sb.WriteString("</body>\n</html>\n")
	return sb.String()
}
