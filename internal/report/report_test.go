package report

import (
	"strings"
	"testing"

	"reassign/internal/metrics"
)

func TestHTMLStructure(t *testing.T) {
	b := New("Reproduction run")
	b.AddHeading("Table I")
	b.AddParagraph("The fleets <are> here.")
	tab := metrics.NewTable("Fleets", "vms", "vcpus")
	tab.AddRowF(9, 16)
	tab.AddRowF(11, 32)
	b.AddTable(tab)
	b.AddSVG(`<svg xmlns="http://www.w3.org/2000/svg" width="10" height="10"></svg>`)
	b.AddPre("ascii <chart>")
	if b.Sections() != 5 {
		t.Fatalf("sections = %d", b.Sections())
	}

	out := b.HTML()
	for _, want := range []string{
		"<!DOCTYPE html>",
		"<title>Reproduction run</title>",
		"<h2>Table I</h2>",
		"The fleets &lt;are&gt; here.",
		"<th>vms</th>",
		"<td>11</td>",
		`<svg xmlns=`,
		"ascii &lt;chart&gt;",
		"</html>",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q", want)
		}
	}
	// The raw paragraph markup must be escaped, not interpreted.
	if strings.Contains(out, "<are>") {
		t.Fatal("paragraph not escaped")
	}
}

func TestTableRowsComplete(t *testing.T) {
	tab := metrics.NewTable("t", "a", "b", "c")
	tab.AddRow("1", "2", "3")
	tab.AddRow("4", "5", "6")
	b := New("r")
	b.AddTable(tab)
	out := b.HTML()
	if got := strings.Count(out, "<tr>"); got != 3 { // header + 2 rows
		t.Fatalf("rows = %d, want 3", got)
	}
	if got := strings.Count(out, "<td>"); got != 6 {
		t.Fatalf("cells = %d, want 6", got)
	}
}

func TestEmptyReportStillValid(t *testing.T) {
	out := New("empty").HTML()
	if !strings.Contains(out, "<h1>empty</h1>") || !strings.Contains(out, "</html>") {
		t.Fatal("empty report malformed")
	}
}
