package exec

import (
	"bytes"
	"testing"
)

// FuzzWireCodec throws arbitrary bytes at the binary payload decoder:
// it must never panic, and any payload it accepts must re-encode and
// re-decode to the same message (round-trip stability — byte equality
// is not required because varints admit non-minimal encodings on
// input, which the canonical encoder never emits).
func FuzzWireCodec(f *testing.F) {
	for _, m := range wireSamples() {
		m := m
		f.Add(appendWirePayload(nil, &m))
	}
	f.Add([]byte{})
	f.Add([]byte{binTask, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{binResult, 0x02, 'h', 'i', 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		var m wireMsg
		if err := decodeWirePayload(data, &m, nil); err != nil {
			return // rejected cleanly — the required behaviour for junk
		}
		re := appendWirePayload(nil, &m)
		var m2 wireMsg
		if err := decodeWirePayload(re, &m2, nil); err != nil {
			t.Fatalf("re-encoded payload rejected: %v\nmsg %+v", err, m)
		}
		// Canonical encodings must agree byte for byte (DeepEqual
		// would trip over NaN durations, whose bits round-trip fine).
		if re2 := appendWirePayload(nil, &m2); !bytes.Equal(re, re2) {
			t.Fatalf("round trip unstable:\nfirst  % x (%+v)\nsecond % x (%+v)", re, m, re2, m2)
		}
	})
}
