package exec

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
)

// The binary wire format (protocol version 2) replaces one-JSON-object
// -per-line with length-prefixed frames so the master and workers can
// coalesce many messages into one write. A binary connection opens
// with a 4-byte preamble — 0xBF 'R' 'X' <version> — which a master
// distinguishes from a JSON-lines worker by the first byte (JSON
// always starts with '{'). After the preamble both directions speak
// frames:
//
//	frame   := uvarint(len(payload)) payload
//	payload := type-byte fields…
//
// Field order is fixed per message type (see appendWireMsg); integers
// are zig-zag varints, floats are 8-byte little-endian IEEE 754 bits,
// strings and string lists are uvarint-counted. Encoding appends into
// a reused buffer and allocates nothing in steady state; decoding
// reuses the frame read buffer and allocates only the strings it must
// materialise (on the master, task-ID interning removes even those).
const (
	wireVersionJSON   = 1
	wireVersionBinary = 2
)

// binPreamble opens a binary connection: a magic byte no JSON stream
// can start with, two tag bytes, and the protocol version.
var binPreamble = [4]byte{0xBF, 'R', 'X', wireVersionBinary}

// Binary payload type bytes (the wire form of the msg* strings).
const (
	binHello     = 1
	binWelcome   = 2
	binTask      = 3
	binResult    = 4
	binHeartbeat = 5
	binShutdown  = 6
)

// maxFrame bounds a frame payload; anything larger is a corrupt or
// hostile stream, not a plausible message.
const maxFrame = 1 << 20

// queueMsg stages m on c. The binary codec is called through its
// concrete type: its queue provably retains nothing, so escape
// analysis keeps the caller's wireMsg on the stack — zero allocations
// per message on the hot path. Other codecs get a copy, so the
// caller's variable never flows into an interface call and stays
// stack-allocated on every path. Not for task messages (m.Task would
// alias the caller's stack through the copy); those call sites split
// the branches by hand.
func queueMsg(c wireCodec, m *wireMsg) error {
	if bc, ok := c.(*binCodec); ok {
		return bc.queue(m)
	}
	mm := *m
	return c.queue(&mm)
}

// wireCodec is one connection's message codec. queue stages a message
// for delivery (the JSON codec writes through immediately, the binary
// codec appends a frame to a pending batch), flush forces staged
// bytes onto the wire in one write, and read blocks for the next
// message. nudge re-wakes the background flusher (if any) so it
// re-checks its gather condition — a no-op for write-through codecs.
// queue/flush/nudge may be called concurrently; read is single-
// reader.
// buffered reports whether a complete or partial message is already
// sitting in the read buffer — the reader's cue that another read
// will (almost certainly) not block, so consecutive messages can be
// delivered upstream as one batch. Only the reading goroutine may
// call it.
type wireCodec interface {
	queue(m *wireMsg) error
	flush() error
	read(m *wireMsg) error
	buffered() bool
	nudge()
	version() int
}

// jsonCodec is the legacy JSON-lines protocol (version 1), kept
// byte-compatible so old execworker binaries interoperate with a new
// master. Every queue is an immediate Encode — one syscall and one
// lock per message, the baseline the binary codec is measured against.
type jsonCodec struct {
	mu  sync.Mutex
	enc *json.Encoder
	dec *json.Decoder
}

func newJSONCodec(w io.Writer, br *bufio.Reader) *jsonCodec {
	return &jsonCodec{enc: json.NewEncoder(w), dec: json.NewDecoder(br)}
}

func (c *jsonCodec) queue(m *wireMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(m)
}

func (c *jsonCodec) flush() error { return nil }

// The JSON decoder's internal buffering isn't worth second-guessing;
// the legacy path delivers one event per read, as version 1 always
// did.
func (c *jsonCodec) buffered() bool { return false }

func (c *jsonCodec) nudge() {}

func (c *jsonCodec) read(m *wireMsg) error {
	*m = wireMsg{}
	err := c.dec.Decode(m)
	m.Index = -1 // the legacy encoding doesn't carry a result index
	return err
}

func (c *jsonCodec) version() int { return wireVersionJSON }

// binCodec is the framed binary protocol (version 2). queue encodes
// into a pending buffer under the lock; flush writes the whole batch
// in one Write call. With kick non-nil (the worker side), every queue
// nudges a flusher goroutine, so bursts of results coalesce into one
// syscall; the master side flushes explicitly once per event-loop
// turn instead.
type binCodec struct {
	mu      sync.Mutex
	w       io.Writer
	pend    []byte
	scratch []byte
	err     error // sticky write error

	kick chan struct{}
	// inflight counts tasks read off the wire whose results have not
	// been queued yet — the worker-side flusher's gather signal: while
	// executors are still working, more results are imminent and the
	// batch is worth holding. Tracked here so any session loop over
	// this codec gets the batching without plumbing its own counters.
	inflight atomic.Int32
	// inline means the session loop executes attempts on the read
	// goroutine and flushes result batches itself; queueing a result
	// then skips the flusher nudge, so the loop's one flush per wave is
	// not preempted by eager per-result writes.
	inline atomic.Bool

	br   *bufio.Reader
	rbuf []byte
	// intern maps previously-encoded strings (task IDs the master
	// dispatched) back to their canonical Go string, making result
	// decoding allocation-free on the master's hot path.
	intern map[string]string
	// cache interns strings that repeat across messages but were never
	// encoded on this side (a worker sees the same activity and VM-type
	// names on every task). Bounded by the workload's distinct names.
	cache map[string]string
	// taskBuf backs decoded task specs so reading a task allocates no
	// struct; m.Task is only valid until the next read on this codec —
	// the single reader copies it before dispatching.
	taskBuf TaskSpec
}

func newBinCodec(w io.Writer, br *bufio.Reader) *binCodec {
	// Seed the encode buffers so steady state is reached without the
	// append-doubling churn of growing from nil on every connection.
	return &binCodec{w: w, br: br,
		pend:    make([]byte, 0, 4096),
		scratch: make([]byte, 0, 256),
		rbuf:    make([]byte, 0, 512),
	}
}

func (c *binCodec) queue(m *wireMsg) error {
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return err
	}
	c.scratch = appendWirePayload(c.scratch[:0], m)
	if c.intern != nil && m.Task != nil {
		c.intern[m.Task.TaskID] = m.Task.TaskID
	}
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(c.scratch)))
	c.pend = append(c.pend, lb[:n]...)
	c.pend = append(c.pend, c.scratch...)
	c.mu.Unlock()
	if m.Type == msgResult {
		c.inflight.Add(-1)
		if c.inline.Load() {
			return nil // the session loop flushes the wave itself
		}
	}
	c.nudge()
	return nil
}

// nudge wakes the flusher goroutine, if one is running.
func (c *binCodec) nudge() {
	if c.kick != nil {
		select {
		case c.kick <- struct{}{}:
		default:
		}
	}
}

func (c *binCodec) flush() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.err != nil {
		return c.err
	}
	if len(c.pend) == 0 {
		return nil
	}
	_, err := c.w.Write(c.pend)
	c.pend = c.pend[:0]
	if err != nil {
		c.err = err
	}
	return err
}

// autoFlush starts the background flusher that turns queue nudges
// into batched writes, running until stop closes. The worker side
// uses it because results finish on concurrent goroutines; the
// single-threaded master flushes explicitly instead.
//
// On a kick the flusher yields the processor, then holds the batch as
// long as tasks read off this codec are still executing (inflight > 0)
// — their results are imminent and belong in the same write, so a
// dispatch wave of instant tasks leaves as one syscall instead of
// one per scheduling quantum. The hold is re-armed by self-nudge
// (each cycle yields, so held executors always progress) and capped,
// so genuinely long-running tasks delay a finished result by a few
// yields at most. The signal is scheduling state, not a timer: an
// earlier wall-clock gather window was tried and lost, because in a
// pipelined steady state the worker always has attempts in flight and
// a timed hold degenerates into waiting out the full window on every
// flush.
func (c *binCodec) autoFlush(stop <-chan struct{}) {
	c.kick = make(chan struct{}, 1)
	go func() {
		const maxHolds = 8
		holds := 0
		for {
			select {
			case <-stop:
				return
			case <-c.kick:
				runtime.Gosched()
				if c.inflight.Load() > 0 && holds < maxHolds {
					holds++
					c.nudge()
					continue
				}
				holds = 0
				c.flush()
			}
		}
	}()
}

func (c *binCodec) read(m *wireMsg) error {
	n, err := binary.ReadUvarint(c.br)
	if err != nil {
		return err
	}
	if n > maxFrame {
		return fmt.Errorf("exec: wire frame of %d bytes exceeds the %d limit", n, maxFrame)
	}
	if cap(c.rbuf) < int(n) {
		c.rbuf = make([]byte, n)
	}
	c.rbuf = c.rbuf[:n]
	if _, err := io.ReadFull(c.br, c.rbuf); err != nil {
		return err
	}
	if c.cache == nil {
		c.cache = make(map[string]string)
	}
	if err := decodeWire(c.rbuf, m, c.intern, c.cache, &c.taskBuf); err != nil {
		return err
	}
	if m.Type == msgTask {
		c.inflight.Add(1)
	}
	return nil
}

func (c *binCodec) buffered() bool { return c.br.Buffered() > 0 }

func (c *binCodec) version() int { return wireVersionBinary }

// appendWireFrame appends m as one complete frame (length prefix +
// payload) — the stand-alone form WireCheck and the tests use; the
// codec's queue path encodes payload and prefix separately to reuse
// its scratch buffer.
func appendWireFrame(dst []byte, m *wireMsg) []byte {
	payload := appendWirePayload(nil, m)
	var lb [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(lb[:], uint64(len(payload)))
	dst = append(dst, lb[:n]...)
	return append(dst, payload...)
}

// appendWirePayload appends m's binary payload (type byte + fields)
// to dst. It allocates nothing beyond dst's growth.
func appendWirePayload(dst []byte, m *wireMsg) []byte {
	switch m.Type {
	case msgHello:
		dst = append(dst, binHello)
		dst = appendInt(dst, m.Slots)
		dst = appendInt(dst, m.Version)
	case msgWelcome:
		dst = append(dst, binWelcome)
		dst = appendInt(dst, m.Worker)
		dst = appendFloat(dst, m.TimeScale)
		dst = appendInt(dst, m.HeartbeatMs)
		dst = appendInt(dst, m.Version)
	case msgTask:
		dst = append(dst, binTask)
		t := m.Task
		dst = appendString(dst, t.TaskID)
		dst = appendInt(dst, t.Index)
		dst = appendString(dst, t.Activity)
		dst = appendInt(dst, t.VM)
		dst = appendString(dst, t.VMType)
		dst = appendInt(dst, t.Attempt)
		dst = appendFloat(dst, t.Duration)
		dst = appendInt(dst, len(t.Args))
		for _, a := range t.Args {
			dst = appendString(dst, a)
		}
	case msgResult:
		dst = append(dst, binResult)
		dst = appendString(dst, m.TaskID)
		dst = appendInt(dst, m.Index)
		dst = appendInt(dst, m.Attempt)
		dst = appendFloat(dst, m.Duration)
		dst = appendString(dst, m.Error)
	case msgHeartbeat:
		dst = append(dst, binHeartbeat)
		dst = appendInt(dst, m.Running)
	case msgShutdown:
		dst = append(dst, binShutdown)
	}
	return dst
}

// decodeWirePayload decodes one frame payload into m, resetting every
// field first. It rejects truncated or oversized fields without
// panicking — corrupt input must read as a broken connection, never
// as a crash. intern, when non-nil, canonicalises known strings
// without allocating. Task messages get a freshly allocated TaskSpec;
// the codec's read path reuses a buffer instead.
func decodeWirePayload(p []byte, m *wireMsg, intern map[string]string) error {
	return decodeWire(p, m, intern, nil, nil)
}

// decodeWire is decodeWirePayload with the codec's reusable state:
// cache interns repeated decoded strings, tbuf (when non-nil) backs
// m.Task so decoding a task allocates no struct — the returned m.Task
// then aliases tbuf and is only valid until the next call.
func decodeWire(p []byte, m *wireMsg, intern, cache map[string]string, tbuf *TaskSpec) error {
	*m = wireMsg{}
	if len(p) == 0 {
		return fmt.Errorf("exec: empty wire frame")
	}
	d := wireDecoder{p: p[1:], intern: intern, cache: cache}
	switch p[0] {
	case binHello:
		m.Type = msgHello
		m.Slots = d.int()
		m.Version = d.int()
	case binWelcome:
		m.Type = msgWelcome
		m.Worker = d.int()
		m.TimeScale = d.float()
		m.HeartbeatMs = d.int()
		m.Version = d.int()
	case binTask:
		m.Type = msgTask
		t := tbuf
		if t == nil {
			t = new(TaskSpec)
		}
		*t = TaskSpec{}
		t.TaskID = d.str()
		t.Index = d.int()
		t.Activity = d.strCached()
		t.VM = d.int()
		t.VMType = d.strCached()
		t.Attempt = d.int()
		t.Duration = d.float()
		if n := d.int(); n > 0 {
			if n > len(d.p) { // each arg takes ≥1 byte
				return fmt.Errorf("exec: wire task claims %d args in a %d-byte tail", n, len(d.p))
			}
			t.Args = make([]string, n)
			for i := range t.Args {
				t.Args[i] = d.str()
			}
		}
		m.Task = t
	case binResult:
		m.Type = msgResult
		m.TaskID = d.str()
		m.Index = d.int()
		m.Attempt = d.int()
		m.Duration = d.float()
		m.Error = d.str()
	case binHeartbeat:
		m.Type = msgHeartbeat
		m.Running = d.int()
	case binShutdown:
		m.Type = msgShutdown
	default:
		return fmt.Errorf("exec: unknown wire message type %d", p[0])
	}
	if d.err != nil {
		*m = wireMsg{}
		return d.err
	}
	if len(d.p) != 0 {
		*m = wireMsg{}
		return fmt.Errorf("exec: %d trailing bytes after wire message", len(d.p))
	}
	return nil
}

func appendInt(dst []byte, v int) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], int64(v))
	return append(dst, b[:n]...)
}

func appendFloat(dst []byte, v float64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	return append(dst, b[:]...)
}

func appendString(dst []byte, s string) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], uint64(len(s)))
	dst = append(dst, b[:n]...)
	return append(dst, s...)
}

// wireDecoder consumes payload fields front to back, latching the
// first error so callers can decode a whole message and check once.
type wireDecoder struct {
	p      []byte
	intern map[string]string
	cache  map[string]string
	err    error
}

func (d *wireDecoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("exec: "+format, args...)
	}
}

func (d *wireDecoder) int() int {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.p)
	if n <= 0 {
		d.fail("truncated varint")
		return 0
	}
	d.p = d.p[n:]
	return int(v)
}

func (d *wireDecoder) float() float64 {
	if d.err != nil {
		return 0
	}
	if len(d.p) < 8 {
		d.fail("truncated float")
		return 0
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.p))
	d.p = d.p[8:]
	return v
}

func (d *wireDecoder) str() string {
	if d.err != nil {
		return ""
	}
	n, w := binary.Uvarint(d.p)
	if w <= 0 || n > uint64(len(d.p)-w) {
		d.fail("truncated string")
		return ""
	}
	b := d.p[w : w+int(n)]
	d.p = d.p[w+int(n):]
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.intern[string(b)]; ok { // no-alloc map probe
		return s
	}
	return string(b)
}

// strCached is str for fields whose values repeat across messages
// (activity and VM-type names): a miss materialises the string once
// and remembers it, so steady-state decoding of those fields never
// allocates. Unsuitable for unique-per-message fields like task IDs —
// the cache would grow without bound.
func (d *wireDecoder) strCached() string {
	if d.cache == nil {
		return d.str()
	}
	if d.err != nil {
		return ""
	}
	n, w := binary.Uvarint(d.p)
	if w <= 0 || n > uint64(len(d.p)-w) {
		d.fail("truncated string")
		return ""
	}
	b := d.p[w : w+int(n)]
	d.p = d.p[w+int(n):]
	if len(b) == 0 {
		return ""
	}
	if s, ok := d.cache[string(b)]; ok { // no-alloc map probe
		return s
	}
	s := string(b)
	d.cache[s] = s
	return s
}
