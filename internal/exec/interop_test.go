package exec

import (
	"bytes"
	"context"
	"math/rand"
	"net"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/provenance"
	"reassign/internal/trace"
)

// TestCrossVersionInterop runs a TCP master with a mixed fleet — one
// worker speaking the framed binary protocol, one speaking the legacy
// JSON-lines protocol — and requires the workflow to complete. This is
// the no-flag-day guarantee: a master sniffs each connection's first
// byte, so old execworker binaries keep joining new masters.
func TestCrossVersionInterop(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(7)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	tcp := &TCP{Addr: "127.0.0.1:0", Workers: 2, TimeScale: 1e-4}
	if err := tcp.Listen(); err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore()
	m, err := New(w, fleet, spreadPlan(w, fleet), tcp,
		WithStore(store, "interop"), WithLease(2000, 8))
	if err != nil {
		t.Fatal(err)
	}
	// Worker 1: binary codec (the ServeConn default).
	conn := startWorker(t, tcp.ListenAddr(), nil)
	defer conn.Close()
	// Worker 2: JSON-lines codec, as an old binary would speak.
	jconn, err := net.Dial("tcp", tcp.ListenAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer jconn.Close()
	go ServeConnJSON(context.Background(), jconn, nil)

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 50 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if store.Len() != 50 {
		t.Fatalf("provenance rows = %d", store.Len())
	}
	in, out := tcp.Bytes()
	if in <= 0 || out <= 0 {
		t.Fatalf("wire byte counters not moving: in=%d out=%d", in, out)
	}
}

// TestCodecDeterminismOracle is the acceptance-criteria check: the
// same seeded run must produce byte-identical provenance whether
// messages skip the wire entirely, round-trip through the JSON codec,
// or round-trip through the binary codec. Any semantic divergence
// between the codecs (lost fields, precision drift, reordered argv)
// breaks the byte comparison.
func TestCodecDeterminismOracle(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(3)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	run := func(wrap func(Transport) Transport) []byte {
		store := provenance.NewStore()
		store.SetNow(func() time.Time { return fixed })
		fl := cloud.DefaultFluctuation()
		var tr Transport = &InProc{Workers: 4, Runner: FailingRunner{
			Inner: SimRunner{Fluct: &fl, Seed: 5}, Rate: 0.05, Seed: 5,
		}}
		if wrap != nil {
			tr = wrap(tr)
		}
		m, err := New(w, fleet, spreadPlan(w, fleet), tr, WithStore(store, "oracle"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Run(context.Background()); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := store.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	bare := run(nil)
	viaJSON := run(func(tr Transport) Transport { return &WireCheck{Inner: tr} })
	viaBin := run(func(tr Transport) Transport { return &WireCheck{Inner: tr, Binary: true} })
	if !bytes.Equal(bare, viaJSON) {
		t.Fatal("JSON codec round trip changed provenance")
	}
	if !bytes.Equal(bare, viaBin) {
		t.Fatal("binary codec round trip changed provenance")
	}
}
