package exec

import (
	"context"
	"fmt"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/market"
	"reassign/internal/telemetry"
)

// MarketFeed wraps a Transport and injects the lifecycle events of a
// market trace — preemption notices, kills and health changes — into
// the master's event stream at their traced virtual times. It is the
// execution-stage analogue of the simulator's market scheduling: the
// master sees EvPreemptNotice/EvVMKill/EvVMHealth interleaved with
// worker events in deterministic time order (worker events win ties),
// so a run over the deterministic transport stays bit-identical.
//
// The feed is designed for virtual-time transports (InProc). Over TCP
// the traced times are compared against the wall-clock virtual mapping
// the transport reports, which is deterministic only in ordering, not
// in timing.
type MarketFeed struct {
	inner  Transport
	pb     *market.Playback
	events []market.VMEvent
	next   int
}

// NewMarketFeed wraps tr so the master receives pb's traced lifecycle
// events.
func NewMarketFeed(tr Transport, pb *market.Playback) *MarketFeed {
	return &MarketFeed{inner: tr, pb: pb}
}

// Open opens the inner transport and loads the trace's event schedule.
func (f *MarketFeed) Open(ctx context.Context) ([]int, error) {
	f.events = f.pb.Events()
	f.next = 0
	return f.inner.Open(ctx)
}

// Send delegates to the inner transport.
func (f *MarketFeed) Send(worker int, t TaskSpec) error { return f.inner.Send(worker, t) }

// Next returns the earlier of the inner transport's next event and the
// next traced market event. When a market event is due first, the
// inner transport is polled up to that instant: any real event at or
// before it is delivered first, and only an idle or timed-out inner
// queue yields the synthesised market event.
func (f *MarketFeed) Next(ctx context.Context, deadline float64) (Event, error) {
	if f.next < len(f.events) {
		evAt := f.events[f.next].At
		if evAt <= deadline {
			iev, err := f.inner.Next(ctx, evAt)
			if err == ErrIdle || (err == nil && iev.Kind == EvTick && iev.Time >= evAt) {
				ev := synthMarketEvent(f.events[f.next])
				f.next++
				return ev, nil
			}
			return iev, err
		}
	}
	return f.inner.Next(ctx, deadline)
}

// Flush delegates to the inner transport when it batches sends.
func (f *MarketFeed) Flush() []int {
	if fl, ok := f.inner.(Flusher); ok {
		return fl.Flush()
	}
	return nil
}

// Close delegates to the inner transport.
func (f *MarketFeed) Close() error { return f.inner.Close() }

// synthMarketEvent maps one traced event onto the master-side kind.
func synthMarketEvent(e market.VMEvent) Event {
	p := &MarketPayload{VM: e.VM}
	ev := Event{Time: e.At, TaskIndex: -1, Market: p}
	switch e.Kind {
	case market.EvNotice:
		ev.Kind = EvPreemptNotice
		p.KillAt = e.KillAt
	case market.EvKill:
		ev.Kind = EvVMKill
	case market.EvDegrade:
		ev.Kind = EvVMHealth
		p.Factor = e.Slow
	case market.EvRecover:
		ev.Kind = EvVMHealth
		p.Factor = 1
	}
	return ev
}

// WithMarket runs the master against a market trace: VM kills and
// health changes arrive through a MarketFeed, the report is billed
// against the traced prices, and — unless WithReactiveOnly is set — a
// preemption notice triggers cordon/drain/remediate before the kill
// lands. The trace must assign every fleet VM.
func WithMarket(pb *market.Playback) Option {
	return func(m *Master) { m.market = pb }
}

// WithReactiveOnly disables acting on preemption notices: the master
// only reacts once the kill lands, the baseline policy the frontier
// study compares against.
func WithReactiveOnly() Option {
	return func(m *Master) { m.reactiveOnly = true }
}

// WithHealthCordon also cordons (and drains) a VM whose health factor
// reaches the threshold, uncordoning on recovery below it. Zero
// disables (default); values must exceed 1 to ever trigger.
func WithHealthCordon(factor float64) Option {
	return func(m *Master) { m.healthCordon = factor }
}

// replacementBill records one remediation acquire for end-of-run
// billing: an on-demand instance of the preempted VM's offer, paid
// from its acquire time.
type replacementBill struct {
	provider string
	typ      string
	from     float64
}

// pendingAcquire is a deferred just-in-time replacement purchase.
type pendingAcquire struct {
	at  float64
	idx int // doomed VM's index in Master.vms
}

// validateMarketFleet checks the trace assigns every fleet VM, the
// same up-front guard the simulation engine applies.
func (m *Master) validateMarketFleet() error {
	if m.market == nil {
		return nil
	}
	for _, vm := range m.fleet.VMs {
		if _, ok := m.market.AssignFor(vm.ID); !ok {
			return fmt.Errorf("exec: market trace does not assign vm %d (%s); regenerate the trace for this fleet",
				vm.ID, vm.Type.Name)
		}
	}
	return nil
}

// onPreemptNotice handles a spot preemption notice. Reactive-only
// masters record it and wait for the kill; notice-reactive masters act
// before failure: the VM is cordoned against new work, attempts that
// cannot finish before the kill are reassigned now instead of dying
// later, and a replacement acquire is scheduled just in time for the
// kill. Work that provably fits the notice window keeps running — the
// window is paid-for capacity, and riding it loses nothing.
func (m *Master) onPreemptNotice(ev Event) {
	vs := m.vmByID[ev.Market.VM]
	if vs == nil || vs.dead {
		return
	}
	m.preemptNotices++
	if m.reactiveOnly || vs.cordoned {
		return
	}
	vs.cordoned = true
	vs.killAt = ev.Market.KillAt
	m.cordonedCount++
	// Reassign running attempts that cannot finish inside the notice
	// window: riding to the kill loses the same progress a full notice
	// lead later. Attempts that fit keep running — they beat the kill
	// and their work is kept.
	window := ev.Market.KillAt - m.now
	for _, ts := range m.tasks {
		if !ts.running || ts.vm != vs.vm.ID {
			continue
		}
		est := m.est(ts.a, vs.vm)
		if vs.slow > 1 {
			est *= vs.slow
		}
		if remaining := ts.start + est - m.now; remaining <= window {
			continue
		}
		ts.running = false
		vs.busy--
		m.recordAttempt(ts, "lost", "preemption notice: cannot finish before kill")
		m.retry(ts, "preempted")
	}
	m.drainUnfit(vs)
	// Order the replacement for the kill instant. Deferring the
	// decision keeps the two policies' bills symmetric — an on-demand
	// instance bought a whole notice lead early is pure cost, since the
	// doomed VM is still working — and lets the capacity gate decline
	// the purchase entirely when the run has finished or freed enough
	// slots by then. The acquire timer fires before the kill event is
	// handled, so the replacement is in the fleet the moment capacity
	// is lost.
	m.queueAcquire(ev.Market.KillAt, vs.idx)
}

// drainUnfit repins every queued task that cannot finish before the
// VM's pending kill, simulating the FIFO drain of its slots. The
// fitting prefix stays queued, keeping the doomed VM productive
// through the notice window; everything else reassigns now, before
// its start would be wasted.
func (m *Master) drainUnfit(vs *vmState) {
	free := make([]float64, 0, vs.slots)
	for _, ts := range m.tasks {
		if ts.running && ts.vm == vs.vm.ID {
			est := m.est(ts.a, vs.vm)
			if vs.slow > 1 {
				est *= vs.slow
			}
			free = append(free, ts.start+est)
		}
	}
	for len(free) < vs.slots {
		free = append(free, m.now)
	}
	queue := append([]int(nil), vs.queue...)
	sort.Ints(queue)
	var keep, drop []int
	for _, i := range queue {
		ts := m.tasks[i]
		est := m.est(ts.a, vs.vm)
		if vs.slow > 1 {
			est *= vs.slow
		}
		at := minSlot(free)
		start := free[at]
		if start < m.now {
			start = m.now
		}
		if ts.nextAt > start {
			start = ts.nextAt
		}
		if start+est <= vs.killAt {
			free[at] = start + est
			keep = append(keep, i)
		} else {
			drop = append(drop, i)
		}
	}
	vs.queue = keep
	for _, i := range drop {
		ts := m.tasks[i]
		ts.queued = false
		m.enqueue(ts) // repins: the VM is cordoned
	}
}

// queueAcquire schedules a deferred replacement purchase, kept sorted
// by (time, VM index) so acquisitions process deterministically.
func (m *Master) queueAcquire(at float64, idx int) {
	m.acq = append(m.acq, pendingAcquire{at: at, idx: idx})
	sort.Slice(m.acq, func(i, j int) bool {
		if m.acq[i].at != m.acq[j].at {
			return m.acq[i].at < m.acq[j].at
		}
		return m.acq[i].idx < m.acq[j].idx
	})
}

// processAcquires settles every deferred purchase that has come due,
// re-evaluating the capacity gate at fire time: a replacement is only
// bought if the fleet still cannot absorb the unfinished work without
// the doomed VM.
func (m *Master) processAcquires() {
	for len(m.acq) > 0 && m.acq[0].at <= m.now {
		p := m.acq[0]
		m.acq = m.acq[1:]
		vs := m.vms[p.idx]
		if !vs.remediated && !vs.dead && m.needsCapacity(vs) {
			m.remediate(vs)
		}
	}
}

// onVMKill executes a traced preemption: the VM dies, its in-flight
// attempts retry immediately (no backoff — the failure was not the
// task's fault), its queue repins, and a replacement is acquired if
// the notice path did not already buy one.
func (m *Master) onVMKill(ev Event) {
	vs := m.vmByID[ev.Market.VM]
	if vs == nil || vs.dead {
		return
	}
	m.preempted++
	vs.dead = true
	orphaned := append([]int(nil), vs.queue...)
	vs.queue = nil
	vs.busy = 0
	for _, ts := range m.tasks {
		if ts.running && ts.vm == vs.vm.ID {
			ts.running = false
			m.recordAttempt(ts, "lost", "vm preempted")
			m.retry(ts, "preempted")
		}
	}
	if !vs.remediated && m.needsCapacity(vs) {
		m.remediate(vs)
	}
	sort.Ints(orphaned)
	for _, i := range orphaned {
		ts := m.tasks[i]
		ts.queued = false
		m.enqueue(ts) // repins via the dead-VM path
	}
}

// onVMHealth applies a traced health change: the factor scales every
// later dispatch's duration estimate and lease on that VM. With
// WithHealthCordon, crossing the threshold cordons and drains the VM
// until it recovers.
func (m *Master) onVMHealth(ev Event) {
	vs := m.vmByID[ev.Market.VM]
	if vs == nil || vs.dead {
		return
	}
	f := ev.Market.Factor
	if f < 1 {
		f = 1
	}
	if f > 1 && f != vs.slow {
		m.degradedCount++
	}
	vs.slow = f
	if m.healthCordon <= 1 || m.reactiveOnly || vs.killAt > 0 {
		return
	}
	if f >= m.healthCordon && !vs.cordoned {
		m.cordon(vs)
	} else if f < m.healthCordon && vs.cordoned {
		vs.cordoned = false
		m.markVM(vs)
	}
}

// needsCapacity decides whether losing vs justifies buying a
// replacement: the rest of the fleet must not already have enough
// free slots for everything still unfinished. A momentarily idle VM
// is still worth replacing mid-run — its slots would have carried
// later waves — while a tail-end loss with plenty of spare capacity
// is not.
func (m *Master) needsCapacity(vs *vmState) bool {
	unfinished := len(m.tasks) - m.done - m.abandoned
	free := 0
	for _, o := range m.vms {
		if o == vs || o.dead || o.cordoned {
			continue
		}
		free += o.slots - o.busy
	}
	return unfinished > free
}

// minSlot returns the index of the earliest-free slot time.
func minSlot(free []float64) int {
	at := 0
	for s := 1; s < len(free); s++ {
		if free[s] < free[at] {
			at = s
		}
	}
	return at
}

// slotTimes simulates the FIFO drain of a VM's slots: the returned
// times are when each slot frees after its running attempt and the
// already-queued work complete.
func (m *Master) slotTimes(vs *vmState) []float64 {
	free := make([]float64, 0, vs.slots)
	for _, ts := range m.tasks {
		if ts.running && ts.vm == vs.vm.ID {
			est := m.est(ts.a, vs.vm)
			if vs.slow > 1 {
				est *= vs.slow
			}
			free = append(free, ts.start+est)
		}
	}
	for len(free) < vs.slots {
		free = append(free, m.now)
	}
	for _, i := range vs.queue {
		est := m.est(m.tasks[i].a, vs.vm)
		if vs.slow > 1 {
			est *= vs.slow
		}
		at := minSlot(free)
		start := free[at]
		if start < m.now {
			start = m.now
		}
		free[at] = start + est
	}
	return free
}

// fitsBeforeKill reports whether a task queued on a noticed VM now
// would still finish before the pending kill, behind the VM's running
// attempts and already-queued work. Health cordons (no kill
// scheduled) fit nothing.
func (m *Master) fitsBeforeKill(vs *vmState, ts *taskState) bool {
	if vs.killAt <= 0 {
		return false
	}
	free := m.slotTimes(vs)
	est := m.est(ts.a, vs.vm)
	if vs.slow > 1 {
		est *= vs.slow
	}
	start := free[minSlot(free)]
	if start < m.now {
		start = m.now
	}
	if ts.nextAt > start {
		start = ts.nextAt
	}
	return start+est <= vs.killAt
}

// cordon hard-cordons a VM — no dispatch at all — and drains its
// whole queue back through the Reassigner. The health-cordon path
// uses it: with no kill scheduled there is no window to exploit, so
// nothing is worth keeping on the degraded VM. Running attempts ride
// and finish at the degraded speed.
func (m *Master) cordon(vs *vmState) {
	vs.cordoned = true
	m.cordonedCount++
	orphaned := append([]int(nil), vs.queue...)
	vs.queue = nil
	sort.Ints(orphaned)
	for _, i := range orphaned {
		ts := m.tasks[i]
		ts.queued = false
		m.enqueue(ts) // repins via the cordoned-VM path
	}
}

// remediate acquires an on-demand replacement for a doomed VM: same
// type, owned by the VM's worker (or the lowest live worker), usable
// after the provider's traced boot delay and billed from now. The
// replacement has a fresh VM ID, so it is a reassignment candidate but
// never a traced kill target.
func (m *Master) remediate(vs *vmState) {
	vs.remediated = true
	off, ok := m.market.Offer(vs.vm.ID)
	if !ok {
		return // replacement of a replacement: untraced, nothing to buy against
	}
	asg, _ := m.market.AssignFor(vs.vm.ID)
	owner := vs.owner
	if !m.alive[owner] {
		owner = -1
		for _, w := range m.workerIDs {
			if m.alive[w] {
				owner = w
				break
			}
		}
		if owner < 0 {
			return // no live worker to own it; the run is already failing
		}
	}
	m.maxVMID++
	nv := &vmState{
		vm:     &cloud.VM{ID: m.maxVMID, Type: vs.vm.Type, Site: vs.vm.Site},
		owner:  owner,
		slots:  vs.slots,
		idx:    len(m.vms),
		slow:   1,
		bootAt: m.now + off.BootDelay,
	}
	m.vms = append(m.vms, nv)
	m.vmByID[nv.vm.ID] = nv
	m.remediated++
	m.bills = append(m.bills, replacementBill{provider: asg.Provider, typ: asg.Type, from: m.now})
	if m.sink != nil {
		m.sink.Emit(telemetry.ExecRemediateEvent{
			FromVM: vs.vm.ID, NewVM: nv.vm.ID, Time: m.now, BootAt: nv.bootAt,
		})
	}
}
