package exec

import (
	"encoding/binary"
	"reflect"
	"testing"
)

// wireSamples covers every message type, including awkward field
// values: empty strings, negative ints, unicode, multi-arg argv.
func wireSamples() []wireMsg {
	return []wireMsg{
		{Type: msgHello, Slots: 4, Version: wireVersionBinary},
		{Type: msgHello},
		{Type: msgWelcome, Worker: 129, TimeScale: 1e-3, HeartbeatMs: 20, Version: wireVersionBinary},
		{Type: msgTask, Task: &TaskSpec{
			TaskID: "ID00007", Index: 7, Activity: "mProjectPP", VM: 3,
			VMType: "t2.micro", Attempt: 2, Duration: 12.75,
			Args: []string{"mProjectPP", "-X", "in—put.fits", ""},
		}},
		{Type: msgTask, Task: &TaskSpec{TaskID: "t", Attempt: 1}},
		{Type: msgResult, TaskID: "ID00007", Attempt: 3, Duration: 0.5, Error: "exit status 1"},
		{Type: msgResult, TaskID: "a", Attempt: 1},
		{Type: msgResult, TaskID: "neg", Attempt: -2, Duration: -1.5},
		{Type: msgHeartbeat, Running: 12},
		{Type: msgHeartbeat},
		{Type: msgShutdown},
	}
}

func TestWirePayloadRoundTrip(t *testing.T) {
	for _, want := range wireSamples() {
		payload := appendWirePayload(nil, &want)
		var got wireMsg
		if err := decodeWirePayload(payload, &got, nil); err != nil {
			t.Fatalf("%s: decode: %v", want.Type, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: round trip mismatch:\nwant %+v\ngot  %+v", want.Type, want, got)
		}
	}
}

func TestWireFrameRoundTrip(t *testing.T) {
	// Frames chain: encode all samples back to back, decode them in
	// order — the stream a batched flush produces.
	var stream []byte
	samples := wireSamples()
	for i := range samples {
		stream = append(stream, appendWireFrame(nil, &samples[i])...)
	}
	for i := range samples {
		n, w := binary.Uvarint(stream)
		if w <= 0 {
			t.Fatalf("frame %d: bad length prefix", i)
		}
		var got wireMsg
		if err := decodeWirePayload(stream[w:w+int(n)], &got, nil); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !reflect.DeepEqual(samples[i], got) {
			t.Fatalf("frame %d mismatch: want %+v got %+v", i, samples[i], got)
		}
		stream = stream[w+int(n):]
	}
	if len(stream) != 0 {
		t.Fatalf("%d bytes left after all frames", len(stream))
	}
}

// TestWireEncodeZeroAlloc pins the tentpole property: encoding a task
// message into a warm buffer allocates nothing.
func TestWireEncodeZeroAlloc(t *testing.T) {
	m := wireMsg{Type: msgTask, Task: &TaskSpec{
		TaskID: "ID00042", Index: 42, Activity: "mDiffFit", VM: 9,
		VMType: "t2.2xlarge", Attempt: 1, Duration: 99.5,
	}}
	buf := make([]byte, 0, 256)
	allocs := testing.AllocsPerRun(200, func() {
		buf = appendWirePayload(buf[:0], &m)
	})
	if allocs != 0 {
		t.Fatalf("encode allocates %.1f times per message, want 0", allocs)
	}
}

func TestWireDecodeRejectsCorruptFrames(t *testing.T) {
	task := wireMsg{Type: msgTask, Task: &TaskSpec{
		TaskID: "ID1", Activity: "a", Attempt: 1, Duration: 2,
		Args: []string{"x", "y"},
	}}
	whole := appendWirePayload(nil, &task)
	cases := map[string][]byte{
		"empty":        {},
		"unknown type": {0x7F, 1, 2, 3},
		"truncated":    whole[:len(whole)-3],
		"type only":    whole[:1],
		"trailing":     append(append([]byte{}, whole...), 0xAA),
	}
	// A string length pointing past the payload must not panic or
	// over-read.
	bad := append([]byte{}, whole...)
	bad[1] = 0xFF // corrupt the task-ID length varint
	cases["bad strlen"] = bad
	for name, payload := range cases {
		var m wireMsg
		if err := decodeWirePayload(payload, &m, nil); err == nil {
			t.Errorf("%s: corrupt payload decoded as %+v", name, m)
		}
	}
}

// TestWireArgsCountCapped rejects a frame claiming more argv entries
// than its bytes could hold, before allocating for them.
func TestWireArgsCountCapped(t *testing.T) {
	payload := []byte{binTask}
	payload = appendString(payload, "t")
	payload = appendInt(payload, 0)  // index
	payload = appendString(payload, "") // activity
	payload = appendInt(payload, 0)  // vm
	payload = appendString(payload, "") // vm type
	payload = appendInt(payload, 1)  // attempt
	payload = appendFloat(payload, 1)
	payload = appendInt(payload, 1<<30) // absurd arg count, no bytes behind it
	var m wireMsg
	if err := decodeWirePayload(payload, &m, nil); err == nil {
		t.Fatal("absurd arg count accepted")
	}
}

func TestWireInternReturnsCanonicalString(t *testing.T) {
	canon := "ID00007"
	intern := map[string]string{canon: canon}
	m := wireMsg{Type: msgResult, TaskID: "ID00007", Attempt: 1}
	payload := appendWirePayload(nil, &m)
	var got wireMsg
	if err := decodeWirePayload(payload, &got, intern); err != nil {
		t.Fatal(err)
	}
	if got.TaskID != canon {
		t.Fatalf("TaskID = %q", got.TaskID)
	}
}
