package exec

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NewRunner builds the worker's Runner once the master's welcome has
// told it the run's time scale (wall seconds per virtual second). A
// nil factory defaults to SleepRunner at the master's scale.
type NewRunner func(timeScale float64) Runner

// ServeConn runs the worker side of the protocol over an established
// connection using the framed binary codec (wire version 2, the
// default for new workers): preamble + hello/welcome handshake, then
// a loop executing task messages (one goroutine per attempt),
// heartbeating at the master-specified period, and reporting results.
// Results and heartbeats are staged through a coalescing writer, so a
// burst of completions costs one write instead of one syscall each.
// It returns nil on an orderly shutdown message, or the read error
// that ended the session.
func ServeConn(ctx context.Context, conn net.Conn, newRunner NewRunner) error {
	if _, err := conn.Write(binPreamble[:]); err != nil {
		return fmt.Errorf("exec: preamble: %w", err)
	}
	c := newBinCodec(conn, bufio.NewReader(conn))
	stop := make(chan struct{})
	defer close(stop)
	c.autoFlush(stop)
	err := serveCodec(ctx, c, newRunner)
	c.flush() // a batch the flusher was still holding must not die with the session
	return err
}

// ServeConnJSON is ServeConn speaking the legacy JSON-lines protocol
// (wire version 1) — exactly what pre-binary execworker binaries
// send, kept as a first-class path so mixed fleets work and the
// cross-version interop tests exercise the old framing against a new
// master.
func ServeConnJSON(ctx context.Context, conn net.Conn, newRunner NewRunner) error {
	return serveCodec(ctx, newJSONCodec(conn, bufio.NewReader(conn)), newRunner)
}

// serveCodec is the codec-independent worker session: hello in,
// welcome out, then heartbeats and the task loop until shutdown.
func serveCodec(ctx context.Context, c wireCodec, newRunner NewRunner) error {
	if err := c.queue(&wireMsg{Type: msgHello, Version: c.version()}); err != nil {
		return fmt.Errorf("exec: hello: %w", err)
	}
	if err := c.flush(); err != nil {
		return fmt.Errorf("exec: hello: %w", err)
	}
	var welcome wireMsg
	if err := c.read(&welcome); err != nil || welcome.Type != msgWelcome {
		return fmt.Errorf("exec: expected welcome, got %q (%v)", welcome.Type, err)
	}
	var runner Runner
	if newRunner != nil {
		runner = newRunner(welcome.TimeScale)
	}
	if runner == nil {
		runner = SleepRunner{Scale: welcome.TimeScale}
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	// A runner that never blocks runs inline on this loop: a wave of
	// tasks is executed as it is decoded and answered in one write,
	// with no executor scheduling at all.
	inline := false
	if ir, ok := runner.(InstantRunner); ok && ir.Instant() {
		inline = true
		if bc, ok := c.(*binCodec); ok {
			bc.inline.Store(true)
		}
	}
	var running atomic.Int32
	// Heartbeat until the session ends. The binary codec's flusher
	// coalesces a heartbeat with any results staged in the same
	// window.
	hb := time.Duration(welcome.HeartbeatMs) * time.Millisecond
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}
	go func() {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-wctx.Done():
				return
			case <-tick.C:
				hb := wireMsg{Type: msgHeartbeat, Running: int(running.Load())}
				if queueMsg(c, &hb) != nil {
					return
				}
			}
		}
	}()

	// Attempts run on a grow-on-demand executor pool: a task goes to an
	// executor that is already idle, or a new one is spawned, so every
	// attempt still runs concurrently (the master does all slot
	// accounting) but steady-state dispatch reuses warm goroutine
	// stacks instead of paying newproc + stack growth per attempt.
	var wg sync.WaitGroup
	defer wg.Wait()
	taskc := make(chan TaskSpec)
	execute := func(spec TaskSpec) {
		d, err := runner.Run(wctx, spec)
		res := wireMsg{Type: msgResult, TaskID: spec.TaskID, Index: spec.Index, Attempt: spec.Attempt, Duration: d}
		if err != nil {
			res.Error = err.Error()
		}
		queueMsg(c, &res)
		running.Add(-1)
		wg.Done()
	}
	var m wireMsg
	for {
		if err := c.read(&m); err != nil {
			return err
		}
		switch m.Type {
		case msgShutdown:
			return nil
		case msgTask:
			if m.Task == nil {
				continue
			}
			if inline {
				d, err := runner.Run(wctx, *m.Task)
				res := wireMsg{Type: msgResult, TaskID: m.Task.TaskID, Index: m.Task.Index, Attempt: m.Task.Attempt, Duration: d}
				if err != nil {
					res.Error = err.Error()
				}
				queueMsg(c, &res)
				// Results for the frames still buffered are coming on
				// this same loop; flush once the wave is drained.
				if !c.buffered() {
					c.flush()
				}
				continue
			}
			spec := *m.Task
			running.Add(1)
			wg.Add(1)
			select {
			case taskc <- spec: // an idle executor takes it immediately
			default: // none idle: grow the pool
				go func(first TaskSpec) {
					execute(first)
					for {
						select {
						case next := <-taskc:
							execute(next)
						case <-wctx.Done():
							return
						}
					}
				}(spec)
			}
		}
	}
}

// Dial connects to a master at addr and serves until shutdown — the
// body of cmd/execworker, exported so tests can run in-process worker
// goroutines against a real TCP master. It speaks the binary codec;
// DialJSON speaks the legacy JSON-lines protocol.
func Dial(ctx context.Context, addr string, newRunner NewRunner) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("exec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	return ServeConn(ctx, conn, newRunner)
}

// DialJSON is Dial over the legacy JSON-lines codec (what an old
// execworker binary does), kept for mixed-version fleets.
func DialJSON(ctx context.Context, addr string, newRunner NewRunner) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("exec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	return ServeConnJSON(ctx, conn, newRunner)
}
