package exec

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// NewRunner builds the worker's Runner once the master's welcome has
// told it the run's time scale (wall seconds per virtual second). A
// nil factory defaults to SleepRunner at the master's scale.
type NewRunner func(timeScale float64) Runner

// ServeConn runs the worker side of the TCP protocol over an
// established connection: hello/welcome handshake, then a loop
// executing task messages (one goroutine per attempt), heartbeating
// at the master-specified period, and reporting results. It returns
// nil on an orderly shutdown message, or the read error that ended
// the session.
func ServeConn(ctx context.Context, conn net.Conn, newRunner NewRunner) error {
	enc := json.NewEncoder(conn)
	var wmu sync.Mutex
	send := func(m wireMsg) error {
		wmu.Lock()
		defer wmu.Unlock()
		return enc.Encode(m)
	}
	if err := send(wireMsg{Type: msgHello}); err != nil {
		return fmt.Errorf("exec: hello: %w", err)
	}
	dec := json.NewDecoder(bufio.NewReader(conn))
	var welcome wireMsg
	if err := dec.Decode(&welcome); err != nil || welcome.Type != msgWelcome {
		return fmt.Errorf("exec: expected welcome, got %q (%v)", welcome.Type, err)
	}
	var runner Runner
	if newRunner != nil {
		runner = newRunner(welcome.TimeScale)
	}
	if runner == nil {
		runner = SleepRunner{Scale: welcome.TimeScale}
	}

	wctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var running int32
	// Heartbeat until the session ends.
	hb := time.Duration(welcome.HeartbeatMs) * time.Millisecond
	if hb <= 0 {
		hb = 100 * time.Millisecond
	}
	go func() {
		tick := time.NewTicker(hb)
		defer tick.Stop()
		for {
			select {
			case <-wctx.Done():
				return
			case <-tick.C:
				if send(wireMsg{Type: msgHeartbeat, Running: int(atomic.LoadInt32(&running))}) != nil {
					return
				}
			}
		}
	}()

	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			return err
		}
		switch m.Type {
		case msgShutdown:
			return nil
		case msgTask:
			if m.Task == nil {
				continue
			}
			spec := *m.Task
			atomic.AddInt32(&running, 1)
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer atomic.AddInt32(&running, -1)
				d, err := runner.Run(wctx, spec)
				res := wireMsg{Type: msgResult, TaskID: spec.TaskID, Attempt: spec.Attempt, Duration: d}
				if err != nil {
					res.Error = err.Error()
				}
				send(res)
			}()
		}
	}
}

// Dial connects to a master at addr and serves until shutdown — the
// body of cmd/execworker, exported so tests can run in-process worker
// goroutines against a real TCP master.
func Dial(ctx context.Context, addr string, newRunner NewRunner) error {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("exec: dial %s: %w", addr, err)
	}
	defer conn.Close()
	return ServeConn(ctx, conn, newRunner)
}
