package exec

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sort"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/market"
	"reassign/internal/provenance"
	"reassign/internal/telemetry"
)

// Master executes a scheduling plan over a worker pool: the Go
// analogue of the paper's SCMaster. It is single-threaded — all
// concurrency lives behind the Transport — so its decisions are a
// pure function of the event sequence, which is what makes in-process
// runs bit-identical.
type Master struct {
	w     *dag.Workflow
	fleet *cloud.Fleet
	plan  core.Plan
	tr    Transport

	store *provenance.Store
	runID string
	sink  telemetry.Sink

	maxAttempts int
	backoffBase float64
	backoffMax  float64
	leaseTTL    float64
	leaseFactor float64
	reassigner  Reassigner
	est         func(a *dag.Activation, vm *cloud.VM) float64
	keepOpen    bool

	// Market execution (WithMarket).
	market       *market.Playback
	reactiveOnly bool
	healthCordon float64

	// Run state.
	tasks      []*taskState
	vms        []*vmState
	vmByID     map[int]*vmState
	alive      map[int]bool
	aliveCount int
	now        float64
	// work lists indices of VMs whose dispatchability may have changed
	// since the last dispatch pass (task enqueued, slot freed) — the
	// only VMs dispatch must visit. carry is its reusable scratch for
	// VMs that keep a backlog across turns.
	work  []int
	carry []int

	done, abandoned                           int
	attempts, retries, reassigned, workerLost int

	// Market run state: sorted worker join order (deterministic
	// replacement ownership), the highest VM ID handed out, market
	// counters and the replacement acquires to bill at report time.
	workerIDs                                            []int
	maxVMID                                              int
	preemptNotices, preempted, cordonedCount, remediated int
	degradedCount                                        int
	bills                                                []replacementBill
	acq                                                  []pendingAcquire
}

type taskState struct {
	a  *dag.Activation
	vm int
	// waiting counts unfinished parents; the task is released when it
	// reaches zero.
	waiting  int
	attempts int
	readyAt  float64
	// nextAt gates redispatch after a backoff.
	nextAt    float64
	queued    bool
	running   bool
	done      bool
	abandoned bool
	worker    int
	start     float64
	lease     float64
	finish    float64
}

type vmState struct {
	vm     *cloud.VM
	owner  int
	dead   bool
	slots  int
	busy   int
	queue  []int // task indices awaiting dispatch on this VM
	idx    int   // position in Master.vms, the deterministic dispatch order
	marked bool  // already on the dispatch worklist

	// Market state: cordoned VMs accept no new work; a cordon with a
	// pending kill (killAt > 0, a preemption notice) still dispatches
	// queued tasks that provably finish before the kill, while a health
	// cordon (killAt == 0) blocks dispatch entirely. slow (>= 1) scales
	// duration estimates and leases, bootAt gates dispatch to a
	// still-provisioning replacement, remediated records that a
	// replacement was already bought for this VM.
	cordoned   bool
	killAt     float64
	slow       float64
	bootAt     float64
	remediated bool
}

// Option configures a Master.
type Option func(*Master)

// WithStore records every attempt and final execution into a
// provenance store under the given run ID.
func WithStore(s *provenance.Store, runID string) Option {
	return func(m *Master) {
		m.store = s
		if runID != "" {
			m.runID = runID
		}
	}
}

// WithSink streams exec telemetry events to s.
func WithSink(s telemetry.Sink) Option {
	return func(m *Master) { m.sink = s }
}

// WithMaxAttempts caps the dispatch budget per activation (default 5;
// the n-th failure with n == max abandons the activation and its
// descendants).
func WithMaxAttempts(n int) Option {
	return func(m *Master) {
		if n > 0 {
			m.maxAttempts = n
		}
	}
}

// WithBackoff sets the exponential retry backoff: the k-th retry
// waits min(base·2^(k−1), max) virtual seconds (defaults 1 and 60).
func WithBackoff(base, max float64) Option {
	return func(m *Master) {
		if base > 0 {
			m.backoffBase = base
		}
		if max > 0 {
			m.backoffMax = max
		}
	}
}

// WithLease sets lease policy: an attempt's initial lease is
// max(ttl, factor·estimate) virtual seconds and every worker
// heartbeat extends it to now+ttl (defaults 30 and 4).
func WithLease(ttl, factor float64) Option {
	return func(m *Master) {
		if ttl > 0 {
			m.leaseTTL = ttl
		}
		if factor > 0 {
			m.leaseFactor = factor
		}
	}
}

// WithReassigner sets the policy that repins activations orphaned by
// a worker death (default EarliestFinish; pass a QTableReassigner to
// fall back on the learned policy).
func WithReassigner(r Reassigner) Option {
	return func(m *Master) {
		if r != nil {
			m.reassigner = r
		}
	}
}

// WithEstimator overrides the execution-time estimate used for lease
// sizing, dispatch durations and reassignment (default
// runtime/speed, the simulator's nominal model).
func WithEstimator(fn func(a *dag.Activation, vm *cloud.VM) float64) Option {
	return func(m *Master) {
		if fn != nil {
			m.est = fn
		}
	}
}

// WithCallerOwnedTransport leaves the transport open when Run
// returns: the caller closes it (Run closes it by default). Used
// where transport lifetime outlives the run — the benchmark harness
// tears connections down off the clock, and a future multi-plan
// master could reuse a joined fleet.
func WithCallerOwnedTransport() Option {
	return func(m *Master) { m.keepOpen = true }
}

// New builds a Master for one plan execution. The plan is validated
// against the workflow and fleet up front (satellite of the same
// check the simulation engine performs), so a stale plan fails here
// with a named activation instead of deep inside dispatch.
func New(w *dag.Workflow, fleet *cloud.Fleet, plan core.Plan, tr Transport, opts ...Option) (*Master, error) {
	if tr == nil {
		return nil, fmt.Errorf("exec: nil transport")
	}
	if fleet == nil || fleet.Len() == 0 {
		return nil, fmt.Errorf("exec: empty fleet")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	if err := plan.Validate(w, fleet); err != nil {
		return nil, fmt.Errorf("exec: %w", err)
	}
	m := &Master{
		w: w, fleet: fleet, plan: plan, tr: tr,
		runID:       "exec",
		maxAttempts: 5,
		backoffBase: 1, backoffMax: 60,
		leaseTTL: 30, leaseFactor: 4,
		reassigner: EarliestFinish{},
		est: func(a *dag.Activation, vm *cloud.VM) float64 {
			return a.Runtime / vm.Type.Speed
		},
	}
	for _, opt := range opts {
		opt(m)
	}
	if err := m.validateMarketFleet(); err != nil {
		return nil, err
	}
	return m, nil
}

// TaskResult summarises one activation after the run.
type TaskResult struct {
	ID       string
	Activity string
	VM       int
	Worker   int
	Attempts int
	Start    float64
	Finish   float64
	Done     bool
}

// Report summarises one master run.
type Report struct {
	// Makespan is the virtual time of the last completion.
	Makespan float64
	// Wall is the real elapsed time of the run.
	Wall time.Duration
	// Tasks is the workflow size; Done counts completed activations.
	Tasks int
	Done  int
	// Attempts counts dispatches, Retries the re-dispatches among
	// them, Reassigned the repins off dead VMs.
	Attempts   int
	Retries    int
	Reassigned int
	// WorkerLost counts worker deaths observed.
	WorkerLost int
	// Abandoned counts activations whose attempt budget ran out (plus
	// descendants doomed by them); Failed lists their IDs, sorted.
	Abandoned int
	Failed    []string
	// Market execution (masters configured WithMarket only):
	// PreemptNotices counts notices received, Preempted the kills
	// executed, Cordoned the VMs cordoned, Remediated the on-demand
	// replacements acquired, Degraded the health downgrades applied.
	// Cost is the run's bill against the traced prices — every traced
	// VM from t=0 to the makespan (clipped at its kill) plus each
	// replacement from its acquire — split per provider in
	// CostByProvider.
	PreemptNotices int
	Preempted      int
	Cordoned       int
	Remediated     int
	Degraded       int
	Cost           float64
	CostByProvider []market.ProviderCost
	// Results holds one entry per activation, in completion order
	// (unfinished activations last, in index order).
	Results []TaskResult
}

// Run executes the plan to completion. It returns a non-nil Report
// even on error, so partial progress is inspectable; the error is
// non-nil when activations were abandoned, every worker died, or the
// context was cancelled.
func (m *Master) Run(ctx context.Context) (*Report, error) {
	wallStart := time.Now()
	workers, err := m.tr.Open(ctx)
	if err != nil {
		return &Report{Tasks: m.w.Len()}, err
	}
	if !m.keepOpen {
		defer m.tr.Close()
	}
	if len(workers) == 0 {
		return &Report{Tasks: m.w.Len()}, fmt.Errorf("exec: transport opened with zero workers")
	}
	sort.Ints(workers)
	m.workerIDs = workers

	m.alive = make(map[int]bool, len(workers))
	for _, id := range workers {
		m.alive[id] = true
	}
	m.aliveCount = len(workers)

	// Partition the fleet across workers round-robin in VM-ID order:
	// each worker owns a fixed VM subset, as the paper's slaves own
	// their machines.
	// State lives in two backing arrays — one allocation each instead
	// of one per VM and per task, which on a wide plan over a large
	// fleet is most of the run's setup garbage.
	vsb := make([]vmState, len(m.fleet.VMs))
	m.vms = make([]*vmState, 0, m.fleet.Len())
	m.vmByID = make(map[int]*vmState, m.fleet.Len())
	for i, vm := range m.fleet.VMs {
		slots := vm.Type.VCPUs
		if slots <= 0 {
			slots = 1
		}
		vs := &vsb[i]
		*vs = vmState{vm: vm, owner: workers[i%len(workers)], slots: slots, idx: i, slow: 1}
		m.vms = append(m.vms, vs)
		m.vmByID[vm.ID] = vs
		if vm.ID > m.maxVMID {
			m.maxVMID = vm.ID
		}
	}

	tsb := make([]taskState, m.w.Len())
	m.tasks = make([]*taskState, m.w.Len())
	for _, a := range m.w.Activations() {
		vm, _ := m.plan.VM(a.ID) // plan validated complete in New
		ts := &tsb[a.Index]
		*ts = taskState{a: a, vm: vm, waiting: len(a.Parents()), worker: -1}
		m.tasks[a.Index] = ts
	}
	// Carve each VM's dispatch queue out of one backing array sized to
	// the plan, so steady-state enqueues never grow a slice (repins
	// after a worker death may still exceed a queue's slice and fall
	// back to append's growth).
	counts := make([]int, len(vsb))
	for _, ts := range m.tasks {
		if vs := m.vmByID[ts.vm]; vs != nil {
			counts[vs.idx]++
		}
	}
	qbuf := make([]int, m.w.Len())
	off := 0
	for i := range vsb {
		vsb[i].queue = qbuf[off:off:off+counts[i]]
		off += counts[i]
	}
	m.work = make([]int, 0, len(vsb))
	m.carry = make([]int, 0, len(vsb))
	for _, ts := range m.tasks {
		if ts.waiting == 0 {
			m.release(ts)
		}
	}

	if err := m.dispatch(); err != nil {
		return m.report(wallStart), err
	}
	if err := m.flushSends(); err != nil {
		return m.report(wallStart), err
	}
	n := m.w.Len()
	for m.done+m.abandoned < n {
		// Fast path: take an already-pending event without computing
		// the O(tasks) lease deadline. Only when the transport has
		// nothing ready (EvTick at m.now) does the loop pay for the
		// deadline scan and block.
		ev, err := m.tr.Next(ctx, m.now)
		if err == nil && ev.Kind == EvTick {
			ev, err = m.tr.Next(ctx, m.deadline())
		}
		if err != nil {
			if err == ErrIdle {
				err = fmt.Errorf("exec: deadlock: %d/%d activations finished and no events pending", m.done, n)
			}
			return m.report(wallStart), err
		}
		if ev.Time > m.now {
			m.now = ev.Time
		}
		m.processAcquires()
		switch ev.Kind {
		case EvTick:
			m.expireLeases()
		case EvResult:
			m.onResult(ev)
		case EvHeartbeat:
			m.onHeartbeat(ev)
		case EvWorkerLost:
			if err := m.onWorkerLost(ev.Worker); err != nil {
				return m.report(wallStart), err
			}
		case EvPreemptNotice:
			m.onPreemptNotice(ev)
		case EvVMKill:
			m.onVMKill(ev)
		case EvVMHealth:
			m.onVMHealth(ev)
		}
		// Drain whatever else is already pending before redispatching,
		// so a burst of completions frees its slots in one pass and
		// the refill leaves as one flushed batch per worker instead of
		// one write per task.
		if err := m.drain(ctx); err != nil {
			return m.report(wallStart), err
		}
		if err := m.dispatch(); err != nil {
			return m.report(wallStart), err
		}
		if err := m.flushSends(); err != nil {
			return m.report(wallStart), err
		}
	}

	rep := m.report(wallStart)
	if m.sink != nil {
		m.sink.Emit(telemetry.ExecRunEvent{
			Makespan: rep.Makespan, WallSeconds: rep.Wall.Seconds(),
			Tasks: rep.Tasks, Attempts: rep.Attempts, Retries: rep.Retries,
			Reassigned: rep.Reassigned, WorkerLost: rep.WorkerLost,
			Abandoned: rep.Abandoned,
		})
	}
	if m.abandoned > 0 {
		return rep, fmt.Errorf("exec: %d of %d activations abandoned (first: %s)",
			m.abandoned, n, rep.Failed[0])
	}
	return rep, nil
}

// maxDrain caps events consumed per loop turn, so a flood of
// heartbeats from a very large fleet cannot starve lease expiry and
// dispatch indefinitely.
const maxDrain = 1024

// drain consumes events that are already pending (virtual deadline
// m.now, so nothing blocks) without dispatching in between: the
// batching half of the event-loop turn. When the queue runs dry it
// yields the processor once and re-polls before concluding the turn —
// worker and reader goroutines that are already runnable get to
// deliver what they hold, which on a busy machine turns near-misses
// into one big batch instead of many single-event turns.
func (m *Master) drain(ctx context.Context) error {
	yields := 1
	for i := 0; i < maxDrain; i++ {
		ev, err := m.tr.Next(ctx, m.now)
		if err != nil {
			return err
		}
		if ev.Time > m.now {
			m.now = ev.Time
		}
		m.processAcquires()
		switch ev.Kind {
		case EvTick:
			if yields == 0 {
				return nil
			}
			yields--
			runtime.Gosched()
			continue
		case EvResult:
			m.onResult(ev)
		case EvHeartbeat:
			m.onHeartbeat(ev)
		case EvWorkerLost:
			if err := m.onWorkerLost(ev.Worker); err != nil {
				return err
			}
		case EvPreemptNotice:
			m.onPreemptNotice(ev)
		case EvVMKill:
			m.onVMKill(ev)
		case EvVMHealth:
			m.onVMHealth(ev)
		}
	}
	return nil
}

// flushSends pushes staged dispatches onto the wire for transports
// that batch (Flusher). A worker whose batch fails delivery is lost;
// its recovery can queue new work, so the flush loops until a pass
// delivers everything.
func (m *Master) flushSends() error {
	fl, ok := m.tr.(Flusher)
	if !ok {
		return nil
	}
	for {
		lost := fl.Flush()
		if len(lost) == 0 {
			return nil
		}
		for _, w := range lost {
			if err := m.onWorkerLost(w); err != nil {
				return err
			}
		}
		if err := m.dispatch(); err != nil {
			return err
		}
	}
}

// deadline computes the next virtual instant the master must wake at
// even without an event: the earliest lease expiry or backoff gate.
func (m *Master) deadline() float64 {
	dl := Forever
	for _, ts := range m.tasks {
		if ts.running && ts.lease < dl {
			dl = ts.lease
		}
		if ts.queued && ts.nextAt > m.now && ts.nextAt < dl {
			dl = ts.nextAt
		}
	}
	for _, vs := range m.vms {
		if !vs.dead && len(vs.queue) > 0 && vs.bootAt > m.now && vs.bootAt < dl {
			dl = vs.bootAt
		}
	}
	if len(m.acq) > 0 && m.acq[0].at < dl {
		dl = m.acq[0].at
	}
	return dl
}

// release marks a task ready and queues it on its (possibly
// reassigned) VM.
func (m *Master) release(ts *taskState) {
	ts.readyAt = m.now
	m.enqueue(ts)
}

// enqueue places a task on its VM's queue, repinning first if the VM
// has died or been cordoned since planning.
func (m *Master) enqueue(ts *taskState) {
	vs := m.vmByID[ts.vm]
	if vs == nil || vs.dead || (vs.cordoned && !m.fitsBeforeKill(vs, ts)) {
		vs = m.repin(ts)
		if vs == nil {
			return // no survivors; the run is already failing
		}
	}
	ts.queued = true
	vs.queue = append(vs.queue, ts.a.Index)
	m.markVM(vs)
}

// markVM puts the VM on the dispatch worklist (idempotently): call it
// whenever a VM gains queued work or a free slot.
func (m *Master) markVM(vs *vmState) {
	if !vs.marked {
		vs.marked = true
		m.work = append(m.work, vs.idx)
	}
}

// repin moves a task off a dead or cordoned VM via the Reassigner and
// returns the new VM's state (nil when no VM survives).
func (m *Master) repin(ts *taskState) *vmState {
	var cands []*cloud.VM
	for _, vs := range m.vms {
		if !vs.dead && !vs.cordoned {
			cands = append(cands, vs.vm)
		}
	}
	if len(cands) == 0 {
		// Every live VM is cordoned: park on one rather than dropping
		// the task — the kill's recovery repins it again.
		for _, vs := range m.vms {
			if !vs.dead {
				cands = append(cands, vs.vm)
			}
		}
	}
	if len(cands) == 0 {
		return nil
	}
	rc := ReassignContext{
		Activation: ts.a,
		Candidates: cands,
		Backlog:    m.backlog,
		Estimate:   m.est,
	}
	to := m.reassigner.Pick(rc)
	vs := m.vmByID[to]
	if vs == nil || vs.dead {
		// A misbehaving reassigner falls back to the first survivor.
		vs = m.vmByID[cands[0].ID]
	}
	from := ts.vm
	ts.vm = vs.vm.ID
	m.reassigned++
	if m.sink != nil {
		m.sink.Emit(telemetry.ExecReassignEvent{
			Task: ts.a.ID, FromVM: from, ToVM: ts.vm,
			Time: m.now, Policy: m.reassigner.Name(),
		})
	}
	return vs
}

// backlog estimates a VM's outstanding work per slot in virtual
// seconds: queued plus in-flight attempt estimates.
func (m *Master) backlog(vmID int) float64 {
	vs := m.vmByID[vmID]
	if vs == nil {
		return math.Inf(1)
	}
	var sum float64
	for _, i := range vs.queue {
		sum += m.est(m.tasks[i].a, vs.vm)
	}
	for _, ts := range m.tasks {
		if ts.running && ts.vm == vmID {
			sum += m.est(ts.a, vs.vm)
		}
	}
	if vs.slow > 1 {
		sum *= vs.slow
	}
	per := sum / float64(vs.slots)
	if vs.bootAt > m.now {
		// A still-provisioning replacement can't start anything before
		// its boot completes; make EarliestFinish see that wait.
		per += vs.bootAt - m.now
	}
	return per
}

// dispatch fills free slots on live VMs, lowest VM ID first, lowest
// task index first — the deterministic order the in-process
// bit-identical guarantee rests on. It visits only worklisted VMs —
// those whose dispatchability an event changed since the last pass,
// plus any still carrying a backlog — so on a large fleet a turn
// costs the handful of VMs it touched, not a scan of all of them.
// Each batch is processed in ascending VM order, and VMs a recovery
// dirties mid-pass (worker loss repinning queues) form the next
// batch, which preserves the full-scan semantics. A send failure
// marks the owning worker lost and recovery continues in the same
// call.
func (m *Master) dispatch() error {
	carry := m.carry[:0]
	for len(m.work) > 0 {
		work := m.work
		// Mid-pass marks append after the batch being read; the tail
		// re-slice keeps them for the next iteration.
		m.work = work[len(work):]
		sort.Ints(work)
		for _, i := range work {
			vs := m.vms[i]
			vs.marked = false
			if vs.dead || (vs.cordoned && vs.killAt == 0) {
				continue
			}
			if vs.bootAt > m.now {
				// Replacement still provisioning: keep it on the worklist
				// and revisit at the boot tick.
				vs.marked = true
				carry = append(carry, i)
				continue
			}
			for vs.busy < vs.slots {
				ti := m.pickQueued(vs)
				if ti < 0 {
					break
				}
				ts := m.tasks[ti]
				if err := m.send(ts, vs); err != nil {
					if lerr := m.onWorkerLost(vs.owner); lerr != nil {
						return lerr
					}
					break
				}
			}
			if len(vs.queue) > 0 && !vs.marked && !vs.dead {
				// Backlogged (all slots busy) or backoff-deferred tasks
				// remain: revisit on the next dispatch, when a slot may
				// have freed or time advanced past the backoff.
				vs.marked = true
				carry = append(carry, i)
			}
		}
	}
	// The drained work array becomes next call's carry scratch, and the
	// carried VMs become its worklist.
	m.carry = m.work[:0]
	m.work = carry
	return nil
}

// pickQueued removes and returns the lowest-index dispatchable task
// on the VM's queue, or -1.
func (m *Master) pickQueued(vs *vmState) int {
	best, bestAt := -1, -1
	for at, i := range vs.queue {
		ts := m.tasks[i]
		if ts.nextAt > m.now {
			continue
		}
		if vs.killAt > 0 {
			// Pending kill: only start work that finishes before it.
			est := m.est(ts.a, vs.vm)
			if vs.slow > 1 {
				est *= vs.slow
			}
			if m.now+est > vs.killAt {
				continue
			}
		}
		if best == -1 || i < best {
			best, bestAt = i, at
		}
	}
	if best < 0 {
		return -1
	}
	vs.queue = append(vs.queue[:bestAt], vs.queue[bestAt+1:]...)
	return best
}

// send dispatches one attempt to the VM's owning worker.
func (m *Master) send(ts *taskState, vs *vmState) error {
	ts.attempts++
	m.attempts++
	est := m.est(ts.a, vs.vm)
	if vs.slow > 1 {
		// Degraded node health: the attempt runs slower, so both the
		// duration handed to the runner and the lease must stretch, or
		// healthy-speed leases would expire degraded attempts.
		est *= vs.slow
	}
	lease := m.leaseTTL
	if f := est * m.leaseFactor; f > lease {
		lease = f
	}
	ts.queued = false
	ts.running = true
	ts.worker = vs.owner
	ts.start = m.now
	ts.lease = m.now + lease
	vs.busy++
	spec := TaskSpec{
		TaskID: ts.a.ID, Index: ts.a.Index, Activity: ts.a.Activity,
		VM: vs.vm.ID, VMType: vs.vm.Type.Name,
		Attempt: ts.attempts, Duration: est, Args: ts.a.Args,
	}
	if err := m.tr.Send(vs.owner, spec); err != nil {
		return err
	}
	if m.sink != nil {
		m.sink.Emit(telemetry.ExecDispatchEvent{
			Task: ts.a.ID, Attempt: ts.attempts, VM: vs.vm.ID,
			Worker: vs.owner, Time: m.now, Lease: ts.lease,
		})
	}
	return nil
}

// onResult handles an attempt finishing. Results from superseded
// attempts (expired leases, dead workers) are ignored: the guard is
// what makes the master idempotent under at-least-once delivery.
func (m *Master) onResult(ev Event) {
	// Binary results carry the task's workflow index, so the common
	// path resolves state with a bounds check instead of a map lookup;
	// the ID match guards against a stale or cross-run index. Legacy
	// JSON results (index -1) fall back to the workflow's ID map.
	var ts *taskState
	if ev.TaskIndex >= 0 && ev.TaskIndex < len(m.tasks) && m.tasks[ev.TaskIndex].a.ID == ev.TaskID {
		ts = m.tasks[ev.TaskIndex]
	} else {
		a := m.w.Get(ev.TaskID)
		if a == nil {
			return
		}
		ts = m.tasks[a.Index]
	}
	if ts.done || ts.abandoned || !ts.running || ts.attempts != ev.Attempt || ts.worker != ev.Worker {
		return
	}
	ts.running = false
	if vs := m.vmByID[ts.vm]; vs != nil {
		vs.busy--
		m.markVM(vs) // a freed slot may unblock this VM's backlog
	}
	if ev.Err == "" {
		ts.done = true
		ts.finish = m.now
		m.done++
		m.recordAttempt(ts, "ok", "")
		if m.store != nil {
			m.store.Add(provenance.Execution{
				WorkflowName: m.w.Name, RunID: m.runID,
				TaskID: ts.a.ID, Activity: ts.a.Activity,
				VMID: ts.vm, VMType: m.vmByID[ts.vm].vm.Type.Name,
				ReadyAt: ts.readyAt, StartAt: ts.start, FinishAt: ts.finish,
				Attempts: ts.attempts, Success: true,
			})
		}
		if m.sink != nil {
			m.sink.Emit(telemetry.ExecCompleteEvent{
				Task: ts.a.ID, Attempt: ts.attempts, VM: ts.vm,
				Worker: ts.worker, Start: ts.start, Finish: ts.finish,
			})
		}
		for _, c := range ts.a.Children() {
			cs := m.tasks[c.Index]
			cs.waiting--
			if cs.waiting == 0 && !cs.abandoned {
				m.release(cs)
			}
		}
		return
	}
	m.recordAttempt(ts, "failed", ev.Err)
	m.retry(ts, "failed")
}

// onHeartbeat extends the leases of the worker's in-flight attempts.
func (m *Master) onHeartbeat(ev Event) {
	if !m.alive[ev.Worker] {
		return
	}
	running := 0
	for _, ts := range m.tasks {
		if ts.running && ts.worker == ev.Worker {
			running++
			if ext := m.now + m.leaseTTL; ext > ts.lease {
				ts.lease = ext
			}
		}
	}
	if m.sink != nil {
		m.sink.Emit(telemetry.ExecHeartbeatEvent{Worker: ev.Worker, Running: running, Time: m.now})
	}
}

// expireLeases retries every in-flight attempt whose lease has
// lapsed: the worker may be wedged, partitioned, or silently dead.
func (m *Master) expireLeases() {
	for _, ts := range m.tasks {
		if !ts.running || ts.lease > m.now {
			continue
		}
		ts.running = false
		if vs := m.vmByID[ts.vm]; vs != nil {
			vs.busy--
			m.markVM(vs)
		}
		m.recordAttempt(ts, "expired", "lease expired")
		m.retry(ts, "expired")
	}
}

// onWorkerLost recovers from a worker death: its VMs die with it,
// in-flight attempts are recorded lost and retried (repinned by the
// Reassigner), and its queued tasks are re-enqueued, which repins
// them too. Idempotent per worker.
func (m *Master) onWorkerLost(worker int) error {
	if !m.alive[worker] {
		return nil
	}
	m.alive[worker] = false
	m.aliveCount--
	m.workerLost++
	var orphaned []int
	for _, vs := range m.vms {
		if vs.owner != worker {
			continue
		}
		vs.dead = true
		orphaned = append(orphaned, vs.queue...)
		vs.queue = nil
		vs.busy = 0
	}
	if m.aliveCount == 0 {
		return fmt.Errorf("exec: all %d workers lost with %d/%d activations finished",
			m.workerLost, m.done, m.w.Len())
	}
	for _, ts := range m.tasks {
		if ts.running && ts.worker == worker {
			ts.running = false
			m.recordAttempt(ts, "lost", "worker lost")
			m.retry(ts, "worker-lost")
		}
	}
	sort.Ints(orphaned)
	for _, i := range orphaned {
		ts := m.tasks[i]
		ts.queued = false
		m.enqueue(ts) // repins via the dead-VM path
	}
	return nil
}

// retry schedules the next attempt with exponential backoff (none
// for worker loss — the failure wasn't the task's fault), or
// abandons the activation when its budget is spent.
func (m *Master) retry(ts *taskState, reason string) {
	if ts.attempts >= m.maxAttempts {
		if m.sink != nil {
			m.sink.Emit(telemetry.ExecRetryEvent{
				Task: ts.a.ID, Attempt: ts.attempts, VM: ts.vm, Worker: ts.worker,
				Reason: reason, Time: m.now, Abandoned: true,
			})
		}
		m.abandon(ts)
		return
	}
	if reason == "worker-lost" || reason == "preempted" {
		ts.nextAt = m.now
	} else {
		backoff := m.backoffBase * math.Pow(2, float64(ts.attempts-1))
		if backoff > m.backoffMax {
			backoff = m.backoffMax
		}
		ts.nextAt = m.now + backoff
	}
	m.retries++
	if m.sink != nil {
		m.sink.Emit(telemetry.ExecRetryEvent{
			Task: ts.a.ID, Attempt: ts.attempts, VM: ts.vm, Worker: ts.worker,
			Reason: reason, Time: m.now, NextAt: ts.nextAt,
		})
	}
	m.enqueue(ts)
}

// abandon gives up on an activation and cascades to every descendant,
// which can no longer become ready. Each doomed activation gets a
// failed Execution row so provenance accounts for the whole workflow.
func (m *Master) abandon(ts *taskState) {
	stack := []*taskState{ts}
	for len(stack) > 0 {
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.done || t.abandoned {
			continue
		}
		t.abandoned = true
		t.queued = false
		m.abandoned++
		m.recordAttempt(t, "abandoned", "attempt budget exhausted")
		if m.store != nil {
			vmType := ""
			if vs := m.vmByID[t.vm]; vs != nil {
				vmType = vs.vm.Type.Name
			}
			m.store.Add(provenance.Execution{
				WorkflowName: m.w.Name, RunID: m.runID,
				TaskID: t.a.ID, Activity: t.a.Activity,
				VMID: t.vm, VMType: vmType,
				ReadyAt: t.readyAt, StartAt: t.start, FinishAt: m.now,
				Attempts: t.attempts, Success: false,
			})
		}
		for _, c := range t.a.Children() {
			stack = append(stack, m.tasks[c.Index])
		}
	}
}

// recordAttempt appends one attempt row to the provenance store.
func (m *Master) recordAttempt(ts *taskState, outcome, errMsg string) {
	if m.store == nil {
		return
	}
	m.store.AddAttempt(provenance.Attempt{
		RunID: m.runID, TaskID: ts.a.ID, Activity: ts.a.Activity,
		Number: ts.attempts, VMID: ts.vm, Worker: ts.worker,
		StartAt: ts.start, EndAt: m.now,
		Outcome: outcome, Error: errMsg,
	})
}

// report assembles the run summary from current state.
func (m *Master) report(wallStart time.Time) *Report {
	rep := &Report{
		Wall: time.Since(wallStart), Tasks: m.w.Len(), Done: m.done,
		Attempts: m.attempts, Retries: m.retries, Reassigned: m.reassigned,
		WorkerLost: m.workerLost, Abandoned: m.abandoned,
		Results: make([]TaskResult, 0, len(m.tasks)),
	}
	for _, ts := range m.tasks {
		if ts.done && ts.finish > rep.Makespan {
			rep.Makespan = ts.finish
		}
		if ts.abandoned {
			rep.Failed = append(rep.Failed, ts.a.ID)
		}
		rep.Results = append(rep.Results, TaskResult{
			ID: ts.a.ID, Activity: ts.a.Activity, VM: ts.vm, Worker: ts.worker,
			Attempts: ts.attempts, Start: ts.start, Finish: ts.finish, Done: ts.done,
		})
	}
	if m.market != nil {
		rep.PreemptNotices, rep.Preempted = m.preemptNotices, m.preempted
		rep.Cordoned, rep.Remediated, rep.Degraded = m.cordonedCount, m.remediated, m.degradedCount
		cost := m.market.FleetCost(rep.Makespan)
		for _, b := range m.bills {
			if c := m.market.ReplacementCost(b.provider, b.typ, b.from, rep.Makespan); c > 0 {
				cost.Add(b.provider, c)
			}
		}
		rep.Cost = cost.Total
		rep.CostByProvider = cost.ByProvider
	}
	sort.Strings(rep.Failed)
	sort.SliceStable(rep.Results, func(i, j int) bool {
		a, b := rep.Results[i], rep.Results[j]
		if a.Done != b.Done {
			return a.Done
		}
		if !a.Done {
			return false
		}
		return a.Finish < b.Finish
	})
	return rep
}
