package exec

import (
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/trace"
)

// startWorker dials the master and serves in a goroutine, returning
// the connection so tests can kill it mid-run.
func startWorker(t *testing.T, addr string, newRunner NewRunner) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial %s: %v", addr, err)
	}
	go ServeConn(context.Background(), conn, newRunner)
	return conn
}

func TestTCPLoopbackSmoke(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(2)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	tcp := &TCP{Addr: "127.0.0.1:0", Workers: 2, TimeScale: 1e-4}
	if err := tcp.Listen(); err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore()
	m, err := New(w, fleet, spreadPlan(w, fleet), tcp,
		WithStore(store, "tcp"), WithLease(2000, 8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		conn := startWorker(t, tcp.ListenAddr(), nil) // default SleepRunner
		defer conn.Close()
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	rep, err := m.Run(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 50 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if store.Len() != 50 {
		t.Fatalf("provenance rows = %d", store.Len())
	}
	if rep.Makespan <= 0 {
		t.Fatalf("makespan = %v", rep.Makespan)
	}
}

// TestSoakWorkerDeaths is the -race soak: repeated TCP-loopback runs
// of small workflows with worker connections killed mid-run at random
// wall offsets, always leaving at least one survivor. Every run must
// finish with zero lost activations.
func TestSoakWorkerDeaths(t *testing.T) {
	if testing.Short() {
		t.Skip("soak skipped in -short")
	}
	rounds := 4
	rng := rand.New(rand.NewSource(99))
	for round := 0; round < rounds; round++ {
		round := round
		t.Run(fmt.Sprintf("round%d", round), func(t *testing.T) {
			w := soakWorkflow(20, rng.Int63())
			fleet, err := cloud.NewFleet("soak",
				[]cloud.VMType{cloud.T2Large}, []int{4})
			if err != nil {
				t.Fatal(err)
			}
			tcp := &TCP{Addr: "127.0.0.1:0", Workers: 3, TimeScale: 1e-4}
			if err := tcp.Listen(); err != nil {
				t.Fatal(err)
			}
			store := provenance.NewStore()
			m, err := New(w, fleet, spreadPlan(w, fleet), tcp,
				WithStore(store, "soak"), WithLease(3000, 8), WithMaxAttempts(8))
			if err != nil {
				t.Fatal(err)
			}
			var conns []net.Conn
			var mu sync.Mutex
			for i := 0; i < 3; i++ {
				// Mixed fleet: worker 1 speaks legacy JSON lines, so the
				// soak covers both codecs (and their interleaving) under
				// -race with mid-run deaths.
				var conn net.Conn
				if i == 1 {
					conn, err = net.Dial("tcp", tcp.ListenAddr())
					if err != nil {
						t.Fatal(err)
					}
					go ServeConnJSON(context.Background(), conn, nil)
				} else {
					conn = startWorker(t, tcp.ListenAddr(), nil)
				}
				mu.Lock()
				conns = append(conns, conn)
				mu.Unlock()
				defer conn.Close()
			}
			// Kill up to two workers at random offsets; worker 0 survives.
			for _, victim := range []int{1, 2} {
				if rng.Intn(2) == 0 {
					continue
				}
				victim := victim
				delay := time.Duration(5+rng.Intn(40)) * time.Millisecond
				timer := time.AfterFunc(delay, func() {
					mu.Lock()
					conns[victim].Close()
					mu.Unlock()
				})
				defer timer.Stop()
			}
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			rep, err := m.Run(ctx)
			if err != nil {
				t.Fatalf("round %d: %v (report %+v)", round, err, rep)
			}
			if rep.Done != w.Len() || rep.Abandoned != 0 {
				t.Fatalf("round %d: %d/%d done, %d abandoned",
					round, rep.Done, w.Len(), rep.Abandoned)
			}
			if store.Len() != w.Len() {
				t.Fatalf("round %d: %d provenance rows", round, store.Len())
			}
		})
	}
}

// soakWorkflow builds a small random layered DAG.
func soakWorkflow(n int, seed int64) *dag.Workflow {
	rng := rand.New(rand.NewSource(seed))
	w := dag.New(fmt.Sprintf("soak-%d", seed))
	for i := 0; i < n; i++ {
		w.MustAdd(fmt.Sprintf("t%02d", i), "act", 50+rng.Float64()*150)
	}
	for i := 1; i < n; i++ {
		// Each task depends on 1-2 earlier tasks.
		for d := 0; d < 1+rng.Intn(2); d++ {
			w.MustDep(fmt.Sprintf("t%02d", rng.Intn(i)), fmt.Sprintf("t%02d", i))
		}
	}
	return w
}

func TestServeConnRejectsBadHandshake(t *testing.T) {
	// A worker that never receives a welcome must error out, not hang.
	client, server := net.Pipe()
	defer server.Close()
	done := make(chan error, 1)
	go func() {
		done <- ServeConn(context.Background(), client, nil)
	}()
	server.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 256)
	if _, err := server.Read(buf); err != nil { // drain the hello
		t.Fatal(err)
	}
	server.Close() // no welcome: the worker's decode fails
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("ServeConn accepted a session with no welcome")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("ServeConn hung without a welcome")
	}
}

func TestPlanValidateViaMaster(t *testing.T) {
	// The load-time check names the offending activation and VM.
	w := dag.New("v")
	w.MustAdd("a", "act", 1)
	fleet, err := cloud.NewFleet("v", []cloud.VMType{cloud.T2Micro}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = New(w, fleet, core.NewPlan(map[string]int{"a": 7}),
		&InProc{Workers: 1, Runner: SimRunner{}})
	if err == nil {
		t.Fatal("stale plan accepted")
	}
}
