package exec

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/market"
	"reassign/internal/provenance"
	"reassign/internal/trace"
)

// execTrace hand-builds a valid trace covering the fleet (all VMs spot
// on aws) with the given events and wraps it in a playback.
func execTrace(t *testing.T, fleet *cloud.Fleet, horizon float64, events []market.VMEvent) *market.Playback {
	t.Helper()
	tr := &market.Trace{
		Version: market.TraceVersion, Regime: "hand",
		Horizon: horizon, PriceStep: horizon, Events: events,
	}
	types := map[string]bool{}
	for _, vm := range fleet.VMs {
		types[vm.Type.Name] = true
		tr.Assign = append(tr.Assign, market.VMAssign{
			VM: vm.ID, Provider: "aws", Type: vm.Type.Name, Spot: true,
		})
	}
	var names []string
	for n := range types {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		tr.Prices = append(tr.Prices, market.PriceSeries{
			Provider: "aws", Type: n,
			Points: []market.PricePoint{{At: 0, Price: 0.01}},
		})
	}
	pb, err := market.NewPlayback(tr, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// pinAll pins every activation to one VM.
func pinAll(w *dag.Workflow, vm int) core.Plan {
	m := make(map[string]int, w.Len())
	for _, a := range w.Activations() {
		m[a.ID] = vm
	}
	return core.NewPlan(m)
}

// TestMarketNoticeCordonDrainRemediate is the acceptance test for
// acting before failure: with a notice window too short for any
// queued task to finish, every queued task of the noticed VM is
// reassigned at the notice, the running attempts (which do fit) ride
// to completion, and the kill then finds nothing to recover — zero
// retries, zero lease expiries, zero lost attempts.
func TestMarketNoticeCordonDrainRemediate(t *testing.T) {
	w := dag.New("wide")
	for i := 0; i < 6; i++ {
		w.MustAdd(fmt.Sprintf("t%d", i), "act", 10)
	}
	fleet := twoLarge(t) // VMs 0 and 1, two slots each
	// Notice at 5, kill at 12: the two attempts running since 0 finish
	// at 10 and ride; the four queued 10s tasks cannot start and still
	// beat the kill, so they drain.
	pb := execTrace(t, fleet, 1000, []market.VMEvent{
		{VM: 1, Kind: market.EvNotice, At: 5, KillAt: 12},
		{VM: 1, Kind: market.EvKill, At: 12},
	})
	store := provenance.NewStore()
	m, err := New(w, fleet, pinAll(w, 1),
		NewMarketFeed(&InProc{Workers: 2, Runner: SimRunner{}}, pb),
		WithStore(store, "t"), WithMarket(pb))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 6 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PreemptNotices != 1 || rep.Cordoned != 1 || rep.Remediated != 1 || rep.Preempted != 1 {
		t.Fatalf("notices=%d cordoned=%d remediated=%d preempted=%d, want 1/1/1/1",
			rep.PreemptNotices, rep.Cordoned, rep.Remediated, rep.Preempted)
	}
	// The four tasks queued behind VM 1's two slots were drained at the
	// notice.
	if rep.Reassigned != 4 {
		t.Fatalf("reassigned = %d, want 4", rep.Reassigned)
	}
	// Acting on the notice means the kill finds nothing to recover:
	// zero retries, zero expired or lost attempts.
	if rep.Retries != 0 {
		t.Fatalf("retries = %d, want 0 when acting before failure", rep.Retries)
	}
	for _, a := range store.Attempts() {
		if a.Outcome != "ok" {
			t.Fatalf("attempt %+v, want every outcome ok", a)
		}
		if a.VMID == 1 && a.StartAt >= 5 {
			t.Fatalf("task %s dispatched to cordoned vm 1 at %v", a.TaskID, a.StartAt)
		}
	}
	if rep.Cost <= 0 {
		t.Fatalf("cost = %v, want > 0", rep.Cost)
	}
}

// TestMarketReactiveOnlyRetriesAfterKill pins one long task on the
// doomed VM: a reactive-only master ignores the notice, loses the
// attempt at the kill and retries it immediately (no backoff) on a
// surviving VM. No replacement is bought — the surviving VM's free
// slot already covers everything unfinished, so the capacity gate
// skips the acquire.
func TestMarketReactiveOnlyRetriesAfterKill(t *testing.T) {
	w := dag.New("single")
	w.MustAdd("a", "act", 20)
	fleet, err := cloud.NewFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	pb := execTrace(t, fleet, 1000, []market.VMEvent{
		{VM: 1, Kind: market.EvNotice, At: 4, KillAt: 5},
		{VM: 1, Kind: market.EvKill, At: 5},
	})
	store := provenance.NewStore()
	m, err := New(w, fleet, pinAll(w, 1),
		NewMarketFeed(&InProc{Workers: 1, Runner: SimRunner{}}, pb),
		WithStore(store, "t"), WithMarket(pb), WithReactiveOnly())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || rep.Retries != 1 || rep.Reassigned != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.PreemptNotices != 1 || rep.Preempted != 1 || rep.Cordoned != 0 || rep.Remediated != 0 {
		t.Fatalf("notices=%d preempted=%d cordoned=%d remediated=%d, want 1/1/0/0",
			rep.PreemptNotices, rep.Preempted, rep.Cordoned, rep.Remediated)
	}
	var outcomes []string
	for _, a := range store.Attempts() {
		outcomes = append(outcomes, a.Outcome)
	}
	if len(outcomes) != 2 || outcomes[0] != "lost" || outcomes[1] != "ok" {
		t.Fatalf("attempt outcomes = %v, want [lost ok]", outcomes)
	}
	// Killed at 5, restarted immediately on VM 0, 20s of work: 25.
	if rep.Makespan != 25 {
		t.Fatalf("makespan = %v, want 25 (immediate retry, no backoff)", rep.Makespan)
	}
}

// TestMarketHealthSlowsExec degrades the only VM 2x from the start:
// the master stretches its duration estimates and leases, so the run
// completes at twice the healthy makespan with no lease expiries.
func TestMarketHealthSlowsExec(t *testing.T) {
	w := dag.New("pair")
	w.MustAdd("a", "act", 10)
	w.MustAdd("b", "act", 10)
	fleet, err := cloud.NewFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	run := func(events []market.VMEvent) *Report {
		pb := execTrace(t, fleet, 1000, events)
		m, err := New(w, fleet, pinAll(w, 0),
			NewMarketFeed(&InProc{Workers: 1, Runner: SimRunner{}}, pb),
			WithMarket(pb))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	base := run(nil)
	slow := run([]market.VMEvent{{VM: 0, Kind: market.EvDegrade, At: 0, Slow: 2}})
	// The initial dispatch wave precedes event delivery, so the first
	// task runs at full speed and only the second pays the 2x factor:
	// 10 + 20 against the healthy 10 + 10.
	if want := base.Makespan + 10; slow.Makespan != want {
		t.Fatalf("degraded makespan %v, want %v", slow.Makespan, want)
	}
	if slow.Degraded != 1 || slow.Retries != 0 {
		t.Fatalf("degraded=%d retries=%d, want 1 and 0", slow.Degraded, slow.Retries)
	}
}

func TestMarketExecDeterministic(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(9)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	regime, _ := market.RegimeByName("volatile")
	mt, err := market.Generate(market.DefaultCatalogue(), fleet, regime, 13, 7200)
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	run := func() ([]byte, *Report) {
		pb, err := market.NewPlayback(mt, nil)
		if err != nil {
			t.Fatal(err)
		}
		store := provenance.NewStore()
		store.SetNow(func() time.Time { return fixed })
		m, err := New(w, fleet, spreadPlan(w, fleet),
			NewMarketFeed(&InProc{Workers: 4, Runner: SimRunner{}}, pb),
			WithStore(store, "det"), WithMarket(pb))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := store.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep
	}
	b1, r1 := run()
	b2, r2 := run()
	if !bytes.Equal(b1, b2) {
		t.Fatal("provenance stores differ between identical market runs")
	}
	if r1.Makespan != r2.Makespan || r1.Cost != r2.Cost {
		t.Fatalf("makespan/cost differ: %v/%v vs %v/%v", r1.Makespan, r1.Cost, r2.Makespan, r2.Cost)
	}
	if r1.PreemptNotices != r2.PreemptNotices || r1.Preempted != r2.Preempted ||
		r1.Remediated != r2.Remediated || r1.Reassigned != r2.Reassigned {
		t.Fatalf("market counters differ: %+v vs %+v", r1, r2)
	}
}

func TestNewRejectsUncoveredMarketTrace(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	one, err := cloud.NewFleet("one", []cloud.VMType{cloud.T2Large}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	pb := execTrace(t, one, 100, nil)
	_, err = New(w, fleet, spreadPlan(w, fleet),
		NewMarketFeed(&InProc{Workers: 1, Runner: SimRunner{}}, pb), WithMarket(pb))
	if err == nil {
		t.Fatal("market trace missing a fleet VM accepted")
	}
}
