// Package exec is the execution-stage runtime of the SciCumulus-RL
// pipeline: a master/worker plan executor that takes the scheduling
// plan learned in simulation (core.Plan) and actually runs the
// workflow — the Go analogue of the paper's SCMaster driving MPI
// SCSlaves on real VMs.
//
// The Master owns all scheduling state: it releases dependency-free
// activations, dispatches each to the worker owning its plan-pinned
// VM, tracks a lease per in-flight attempt (extended by worker
// heartbeats), retries failed or expired attempts with exponential
// backoff up to a capped budget, and — when a worker dies mid-run —
// reassigns its orphaned activations to surviving VMs via a
// Reassigner (Q-table next-best or an earliest-finish HEFT-style
// fallback). Every attempt, including retries and abandons, is
// recorded into the provenance store, closing the paper's
// cross-execution learning loop: provenance out of execution, Q-table
// seeded from provenance (core.SeedTable).
//
// Workers are dumb executors behind a Transport. Two transports ship:
// InProc, a deterministic virtual-time transport whose runs are
// bit-identical for a fixed seed (the test and CI grade), and TCP, a
// JSON-lines protocol over real sockets that cmd/execworker processes
// join over loopback or a real network, standing in for the MPI
// workers. What a worker does with an attempt is a pluggable Runner:
// simulated durations, scaled wall-clock sleeps, or real
// exec.Command invocations of the DAX job argv.
package exec

import (
	"context"
	"errors"
	"math"
)

// TaskSpec describes one attempt handed to a worker. All times are
// virtual seconds.
type TaskSpec struct {
	TaskID   string `json:"task_id"`
	Index    int    `json:"index"`
	Activity string `json:"activity"`
	VM       int    `json:"vm"`
	VMType   string `json:"vm_type,omitempty"`
	// Attempt is 1-based.
	Attempt int `json:"attempt"`
	// Duration is the master's estimated execution time in virtual
	// seconds: the simulated runner's actual duration, the sleep
	// runner's (scaled) sleep, ignored by the command runner.
	Duration float64 `json:"duration"`
	// Args is the job argv for command runners (DAX <argument>).
	Args []string `json:"args,omitempty"`
}

// EventKind discriminates master-side transport events.
type EventKind int

const (
	// EvTick is a timeout: no event arrived before the deadline the
	// master passed to Next. The master checks leases and backoffs.
	EvTick EventKind = iota
	// EvResult reports an attempt finishing on a worker (Err non-empty
	// on failure).
	EvResult
	// EvHeartbeat is a worker liveness beat; the master extends the
	// leases of the worker's in-flight attempts.
	EvHeartbeat
	// EvWorkerLost reports a worker dying (connection lost, injected
	// fault). Its attempts and pinned queue entries must be recovered.
	EvWorkerLost
	// EvPreemptNotice warns that a VM will be killed at
	// Event.Market.KillAt
	// (spot preemption notice). Synthesised master-side by MarketFeed;
	// never crosses the worker wire.
	EvPreemptNotice
	// EvVMKill executes a traced preemption: the VM in Event.VM dies.
	// Synthesised master-side by MarketFeed.
	EvVMKill
	// EvVMHealth reports a VM health change: tasks on Event.VM now run
	// Event.Factor times slower (1 = recovered). Synthesised
	// master-side by MarketFeed.
	EvVMHealth
)

// String names the kind for logs and errors.
func (k EventKind) String() string {
	switch k {
	case EvTick:
		return "tick"
	case EvResult:
		return "result"
	case EvHeartbeat:
		return "heartbeat"
	case EvWorkerLost:
		return "worker-lost"
	case EvPreemptNotice:
		return "preempt-notice"
	case EvVMKill:
		return "vm-kill"
	case EvVMHealth:
		return "vm-health"
	}
	return "unknown"
}

// Event is one master-side occurrence. Time is virtual seconds from
// run start and must be non-decreasing in delivery order.
type Event struct {
	Kind   EventKind
	Time   float64
	Worker int
	// Result fields (EvResult only).
	TaskID string
	// TaskIndex is the task's workflow index when the wire carried one
	// (binary results echo it so the master can resolve the task
	// without a map lookup), or -1 when only TaskID identifies it
	// (legacy JSON results).
	TaskIndex int
	Attempt   int
	Err       string
	// Market is set on market lifecycle events only (EvPreemptNotice,
	// EvVMKill, EvVMHealth) and nil on every worker event. The
	// payload rides behind a pointer so market-free runs — the hot
	// path — pay one nil word per buffered event, not three fields.
	Market *MarketPayload
}

// MarketPayload is the payload of a synthesised market lifecycle
// event: the affected VM, the announced kill time (preemption
// notices) and the health factor (health events, 1 = recovered).
// These events are built master-side by MarketFeed and never cross
// the worker wire, so the wire codecs are untouched.
type MarketPayload struct {
	VM     int
	KillAt float64
	Factor float64
}

// Forever is the deadline meaning "block until the next event".
var Forever = math.Inf(1)

// ErrIdle is returned by a transport's Next when it can prove no
// event will ever arrive (e.g. the deterministic transport's queue is
// empty and the deadline is Forever). It signals a master logic error
// — the master should never wait unboundedly without outstanding
// work.
var ErrIdle = errors.New("exec: transport idle with no pending events")

// Transport connects the master to its worker pool.
//
// The master is single-threaded: Open, Send, Next and Close are
// called from one goroutine, in that order of life cycle.
// Implementations may deliver events from internal goroutines but
// must serialise them through Next.
type Transport interface {
	// Open readies the transport and returns the IDs of the joined
	// workers (for TCP, it blocks until the expected number of
	// execworker processes have connected).
	Open(ctx context.Context) ([]int, error)
	// Send dispatches one attempt to a worker. A send error means the
	// worker is unreachable; the master treats it as lost.
	Send(worker int, t TaskSpec) error
	// Next returns the next event, or an EvTick when the virtual
	// deadline passes first. Forever blocks until an event arrives.
	Next(ctx context.Context, deadline float64) (Event, error)
	// Close releases the transport (idempotent).
	Close() error
}

// Flusher is an optional Transport extension for transports that
// stage Send into per-connection batches (the binary TCP codec). The
// master calls Flush once per event-loop turn, after dispatching into
// the freed slots, so a wave of assignments leaves in one write per
// worker. Flush returns the IDs of workers whose batch could not be
// delivered; the master treats each as lost. Transports without
// batching (InProc, JSON-lines connections) simply don't implement
// it.
type Flusher interface {
	Flush() []int
}

// Runner executes one attempt and reports its duration in virtual
// seconds. The deterministic transport calls it synchronously on the
// master goroutine; the TCP worker calls it from one goroutine per
// attempt, so implementations must be safe for concurrent use.
type Runner interface {
	Run(ctx context.Context, t TaskSpec) (float64, error)
}

// InstantRunner marks a Runner whose Run never blocks (simulated
// execution). A worker session may then execute attempts inline on
// its read loop — no executor goroutines, no handoffs — and answer a
// whole dispatch wave with one coalesced write. Runners that sleep or
// do real work must not claim this: inline execution would serialise
// them.
type InstantRunner interface {
	Runner
	Instant() bool
}
