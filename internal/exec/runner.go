package exec

import (
	"context"
	"fmt"
	"hash/fnv"
	"math/rand"
	osexec "os/exec"
	"time"

	"reassign/internal/cloud"
)

// SimRunner is the deterministic simulated runner: it "executes" an
// attempt by returning the master's estimated duration, optionally
// perturbed by a cloud fluctuation model. The perturbation is drawn
// from a source keyed by (task, attempt, seed), so it is bit-identical
// across runs and independent of execution order — the property the
// in-process determinism guarantee rests on.
type SimRunner struct {
	// Fluct perturbs durations; nil runs nominal estimates.
	Fluct *cloud.FluctuationModel
	// Seed keys the per-attempt perturbation streams.
	Seed int64
}

// Instant implements InstantRunner: simulated execution never blocks,
// so the worker session may run attempts inline.
func (r SimRunner) Instant() bool { return true }

// Run implements Runner.
func (r SimRunner) Run(_ context.Context, t TaskSpec) (float64, error) {
	d := t.Duration
	if r.Fluct != nil {
		vmType, ok := cloud.TypeByName(t.VMType)
		if !ok {
			vmType = cloud.VMType{Name: t.VMType, VCPUs: 2, Speed: 1}
		}
		vm := &cloud.VM{ID: t.VM, Type: vmType}
		rng := rand.New(rand.NewSource(attemptSeed(r.Seed, t.TaskID, t.Attempt)))
		d = r.Fluct.Apply(rng, vm, d)
	}
	return d, nil
}

// FailingRunner wraps a runner with deterministic fault injection:
// each (task, attempt) fails independently with probability Rate,
// decided by a hash of (task, attempt, seed) so the failure pattern is
// reproducible and order-independent. Failed attempts consume half
// their duration — the task crashed partway through.
type FailingRunner struct {
	Inner Runner
	Rate  float64
	Seed  int64
}

// Instant implements InstantRunner when the wrapped runner does:
// fault injection adds no blocking of its own.
func (r FailingRunner) Instant() bool {
	ir, ok := r.Inner.(InstantRunner)
	return ok && ir.Instant()
}

// Run implements Runner.
func (r FailingRunner) Run(ctx context.Context, t TaskSpec) (float64, error) {
	d, err := r.Inner.Run(ctx, t)
	if err != nil {
		return d, err
	}
	if r.Rate > 0 {
		rng := rand.New(rand.NewSource(attemptSeed(r.Seed^0x5eed, t.TaskID, t.Attempt)))
		if rng.Float64() < r.Rate {
			return d / 2, fmt.Errorf("injected failure (attempt %d)", t.Attempt)
		}
	}
	return d, nil
}

// attemptSeed derives a deterministic per-(task, attempt) seed.
func attemptSeed(seed int64, taskID string, attempt int) int64 {
	h := fnv.New64a()
	h.Write([]byte(taskID))
	h.Write([]byte{byte(attempt), byte(attempt >> 8)})
	return seed ^ int64(h.Sum64())
}

// SleepRunner blocks for the attempt's estimated duration scaled to
// wall time — the TCP worker's default, which makes a loopback run's
// wall-clock profile mirror the virtual schedule.
type SleepRunner struct {
	// Scale is wall seconds per virtual second.
	Scale float64
}

// Run implements Runner.
func (r SleepRunner) Run(ctx context.Context, t TaskSpec) (float64, error) {
	scale := r.Scale
	if scale <= 0 {
		scale = 1e-3
	}
	wall := time.Duration(t.Duration * scale * float64(time.Second))
	if wall <= 0 {
		return t.Duration, ctx.Err()
	}
	timer := time.NewTimer(wall)
	defer timer.Stop()
	select {
	case <-timer.C:
		return t.Duration, nil
	case <-ctx.Done():
		return t.Duration, ctx.Err()
	}
}

// CommandRunner executes the attempt's argv (the DAX job's
// <argument> list) as a real subprocess and reports the measured wall
// duration converted back to virtual seconds.
type CommandRunner struct {
	// Scale is wall seconds per virtual second (default 1.0: real
	// execution runs in real time).
	Scale float64
}

// Run implements Runner.
func (r CommandRunner) Run(ctx context.Context, t TaskSpec) (float64, error) {
	if len(t.Args) == 0 {
		return 0, fmt.Errorf("exec: task %s has no argv for the command runner", t.TaskID)
	}
	scale := r.Scale
	if scale <= 0 {
		scale = 1.0
	}
	start := time.Now()
	cmd := osexec.CommandContext(ctx, t.Args[0], t.Args[1:]...)
	err := cmd.Run()
	d := time.Since(start).Seconds() / scale
	if err != nil {
		return d, fmt.Errorf("exec: task %s argv %q: %w", t.TaskID, t.Args[0], err)
	}
	return d, nil
}
