package exec

import (
	"context"
	"math/rand"
)

// Fault wraps a Transport with seeded worker-death injection, the
// chaos layer for retry/reassignment testing: each delivered result
// or heartbeat kills its worker with probability Rate, after which
// the worker's remaining events are swallowed — exactly what a
// crashed MPI slave looks like from the master. Over the
// deterministic InProc transport the injected deaths are themselves
// deterministic (the seeded stream meets the same event sequence
// every run), so a faulty run is as reproducible as a clean one.
type Fault struct {
	Inner Transport
	// Rate is the per-event death probability.
	Rate float64
	// Seed drives the death draws.
	Seed int64
	// MaxKills caps injected deaths (0 = no cap).
	MaxKills int
	// MinAlive is the floor of surviving workers (default 1 — the
	// executor is never left with an empty pool by injection alone).
	MinAlive int

	rng   *rand.Rand
	dead  map[int]bool
	alive int
	kills int
}

// Open implements Transport.
func (f *Fault) Open(ctx context.Context) ([]int, error) {
	ids, err := f.Inner.Open(ctx)
	if err != nil {
		return nil, err
	}
	f.rng = rand.New(rand.NewSource(f.Seed))
	f.dead = make(map[int]bool)
	f.alive = len(ids)
	if f.MinAlive <= 0 {
		f.MinAlive = 1
	}
	return ids, nil
}

// Send implements Transport: sends to a killed worker vanish into the
// void, as they would on a dead socket.
func (f *Fault) Send(worker int, t TaskSpec) error {
	if f.dead[worker] {
		return nil
	}
	return f.Inner.Send(worker, t)
}

// Next implements Transport.
func (f *Fault) Next(ctx context.Context, deadline float64) (Event, error) {
	for {
		ev, err := f.Inner.Next(ctx, deadline)
		if err != nil {
			return ev, err
		}
		switch ev.Kind {
		case EvResult, EvHeartbeat:
			if f.dead[ev.Worker] {
				continue // the grave is silent
			}
			if f.kills < f.MaxKills || f.MaxKills == 0 {
				if f.alive > f.MinAlive && f.Rate > 0 && f.rng.Float64() < f.Rate {
					f.dead[ev.Worker] = true
					f.alive--
					f.kills++
					return Event{Kind: EvWorkerLost, Worker: ev.Worker, Time: ev.Time}, nil
				}
			}
		case EvWorkerLost:
			if f.dead[ev.Worker] {
				continue // already reported by injection
			}
			f.dead[ev.Worker] = true
			f.alive--
		}
		return ev, nil
	}
}

// Flush implements Flusher when the inner transport batches: flush
// failures are real worker deaths, so the wrapper records them before
// handing them to the master (their remaining events must be
// swallowed like any other corpse's).
func (f *Fault) Flush() []int {
	fl, ok := f.Inner.(Flusher)
	if !ok {
		return nil
	}
	lost := fl.Flush()
	for _, id := range lost {
		if !f.dead[id] {
			f.dead[id] = true
			f.alive--
		}
	}
	return lost
}

// Close implements Transport.
func (f *Fault) Close() error { return f.Inner.Close() }

// Kills reports how many deaths were injected.
func (f *Fault) Kills() int { return f.kills }
