package exec

// wireMsg is the master↔worker message vocabulary, deliberately tiny
// — the protocol stands in for the paper's MPI master/worker
// messages, not for a general RPC layer. Two codecs carry it: the
// legacy JSON-lines form (one object per line, protocol version 1)
// and the framed binary form in codec.go (version 2, the default).
// The master sniffs each joining connection's first byte, so old
// JSON-lines execworker binaries interoperate with a new master, in
// the same run as binary workers.
//
//	worker → master  {"type":"hello","slots":4,"version":2}
//	master → worker  {"type":"welcome","worker":2,"timescale":0.001,"heartbeat_ms":100,"version":1}
//	master → worker  {"type":"task","task":{...TaskSpec...}}
//	worker → master  {"type":"heartbeat","running":3}
//	worker → master  {"type":"result","task_id":"ID00007","attempt":1,"duration":12.5,"error":""}
//	master → worker  {"type":"shutdown"}
type wireMsg struct {
	Type string `json:"type"`
	// hello
	Slots int `json:"slots,omitempty"`
	// hello/welcome: the sender's wire protocol version (0 on legacy
	// peers, which predate the field). The welcome echoes the version
	// the master actually selected for the connection.
	Version int `json:"version,omitempty"`
	// welcome
	Worker      int     `json:"worker,omitempty"`
	TimeScale   float64 `json:"timescale,omitempty"`
	HeartbeatMs int     `json:"heartbeat_ms,omitempty"`
	// task
	Task *TaskSpec `json:"task,omitempty"`
	// result
	TaskID string `json:"task_id,omitempty"`
	// Index echoes the task's workflow index so the master resolves a
	// binary result without hashing its ID. Wire version 2 only: the
	// legacy JSON encoding must stay byte-identical to what version 1
	// workers send, so the field never serialises there and JSON reads
	// report -1 (unknown).
	Index    int     `json:"-"`
	Attempt  int     `json:"attempt,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Error    string  `json:"error,omitempty"`
	// heartbeat
	Running int `json:"running,omitempty"`
}

const (
	msgHello     = "hello"
	msgWelcome   = "welcome"
	msgTask      = "task"
	msgResult    = "result"
	msgHeartbeat = "heartbeat"
	msgShutdown  = "shutdown"
)
