package exec

// The TCP transport speaks JSON lines: one object per line, each a
// wireMsg discriminated by Type. The vocabulary is deliberately tiny
// — the protocol stands in for the paper's MPI master/worker
// messages, not for a general RPC layer.
//
//	worker → master  {"type":"hello","slots":4}
//	master → worker  {"type":"welcome","worker":2,"timescale":0.001,"heartbeat_ms":100}
//	master → worker  {"type":"task","task":{...TaskSpec...}}
//	worker → master  {"type":"heartbeat","running":3}
//	worker → master  {"type":"result","task_id":"ID00007","attempt":1,"duration":12.5,"error":""}
//	master → worker  {"type":"shutdown"}
type wireMsg struct {
	Type string `json:"type"`
	// hello
	Slots int `json:"slots,omitempty"`
	// welcome
	Worker      int     `json:"worker,omitempty"`
	TimeScale   float64 `json:"timescale,omitempty"`
	HeartbeatMs int     `json:"heartbeat_ms,omitempty"`
	// task
	Task *TaskSpec `json:"task,omitempty"`
	// result
	TaskID   string  `json:"task_id,omitempty"`
	Attempt  int     `json:"attempt,omitempty"`
	Duration float64 `json:"duration,omitempty"`
	Error    string  `json:"error,omitempty"`
	// heartbeat
	Running int `json:"running,omitempty"`
}

const (
	msgHello     = "hello"
	msgWelcome   = "welcome"
	msgTask      = "task"
	msgResult    = "result"
	msgHeartbeat = "heartbeat"
	msgShutdown  = "shutdown"
)
