package exec

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/provenance"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
	"reassign/internal/trace"
)

// diamond builds a 4-activation diamond: a → {b, c} → d, runtimes 10.
func diamond(t *testing.T) *dag.Workflow {
	t.Helper()
	w := dag.New("diamond")
	for _, id := range []string{"a", "b", "c", "d"} {
		w.MustAdd(id, "act-"+id, 10)
	}
	w.MustDep("a", "b")
	w.MustDep("a", "c")
	w.MustDep("b", "d")
	w.MustDep("c", "d")
	return w
}

// twoLarge provisions two 2-slot t2.large VMs.
func twoLarge(t *testing.T) *cloud.Fleet {
	t.Helper()
	fleet, err := cloud.NewFleet("test", []cloud.VMType{cloud.T2Large}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	return fleet
}

func spreadPlan(w *dag.Workflow, fleet *cloud.Fleet) core.Plan {
	m := make(map[string]int, w.Len())
	for i, a := range w.Activations() {
		m[a.ID] = fleet.VMs[i%fleet.Len()].ID
	}
	return core.NewPlan(m)
}

func TestRunCleanDiamond(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	store := provenance.NewStore()
	m, err := New(w, fleet, spreadPlan(w, fleet),
		&InProc{Workers: 2, Runner: SimRunner{}},
		WithStore(store, "t"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 4 || rep.Abandoned != 0 || rep.Attempts != 4 {
		t.Fatalf("report = %+v", rep)
	}
	// a (10) → b,c in parallel (10) → d (10): makespan 30.
	if rep.Makespan != 30 {
		t.Fatalf("makespan = %v, want 30", rep.Makespan)
	}
	if store.Len() != 4 {
		t.Fatalf("provenance rows = %d, want 4", store.Len())
	}
	for _, a := range store.Attempts() {
		if a.Outcome != "ok" {
			t.Fatalf("attempt %+v not ok", a)
		}
	}
	// d must start only after both b and c finished.
	for _, e := range store.All() {
		if e.TaskID == "d" && e.StartAt < 20 {
			t.Fatalf("d started at %v, before its parents finished", e.StartAt)
		}
	}
}

func TestRunRespectsSlotLimits(t *testing.T) {
	w := dag.New("wide")
	for i := 0; i < 4; i++ {
		w.MustAdd(fmt.Sprintf("t%d", i), "act", 10)
	}
	fleet, err := cloud.NewFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(w, fleet, spreadPlan(w, fleet), &InProc{Workers: 1, Runner: SimRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	// 4 tasks × 10s on a single 1-vCPU VM must serialise.
	if rep.Makespan != 40 {
		t.Fatalf("makespan = %v, want 40 on one slot", rep.Makespan)
	}
}

func TestRetriesWithBackoffThenSucceeds(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	store := provenance.NewStore()
	// failOnce fails every task's first attempt.
	runner := failOnce{inner: SimRunner{}}
	m, err := New(w, fleet, spreadPlan(w, fleet),
		&InProc{Workers: 2, Runner: runner},
		WithStore(store, "t"), WithBackoff(2, 60))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 4 || rep.Retries != 4 || rep.Attempts != 8 {
		t.Fatalf("report = %+v", rep)
	}
	failed, ok := 0, 0
	for _, a := range store.Attempts() {
		switch a.Outcome {
		case "failed":
			failed++
		case "ok":
			ok++
		}
	}
	if failed != 4 || ok != 4 {
		t.Fatalf("attempt outcomes: %d failed, %d ok", failed, ok)
	}
	// Executions carry the final attempt count.
	for _, e := range store.All() {
		if e.Attempts != 2 || !e.Success {
			t.Fatalf("execution %+v, want 2 attempts and success", e)
		}
	}
}

// failOnce fails the first attempt of every task deterministically.
type failOnce struct{ inner Runner }

func (r failOnce) Run(ctx context.Context, t TaskSpec) (float64, error) {
	d, err := r.inner.Run(ctx, t)
	if err != nil {
		return d, err
	}
	if t.Attempt == 1 {
		return d / 2, fmt.Errorf("first attempt always fails")
	}
	return d, nil
}

// alwaysFail fails one specific task on every attempt.
type alwaysFail struct {
	inner Runner
	task  string
}

func (r alwaysFail) Run(ctx context.Context, t TaskSpec) (float64, error) {
	if t.TaskID == r.task {
		return 1, fmt.Errorf("task %s is doomed", t.TaskID)
	}
	return r.inner.Run(ctx, t)
}

func TestAbandonCascadesToDescendants(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	store := provenance.NewStore()
	m, err := New(w, fleet, spreadPlan(w, fleet),
		&InProc{Workers: 2, Runner: alwaysFail{inner: SimRunner{}, task: "b"}},
		WithStore(store, "t"), WithMaxAttempts(3), WithBackoff(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err == nil {
		t.Fatal("want an error for abandoned activations")
	}
	// b exhausts its budget; d is doomed by b. a and c still complete.
	if rep.Done != 2 || rep.Abandoned != 2 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Failed) != 2 || rep.Failed[0] != "b" || rep.Failed[1] != "d" {
		t.Fatalf("failed = %v", rep.Failed)
	}
	// Provenance accounts for all four activations.
	if store.Len() != 4 {
		t.Fatalf("provenance rows = %d", store.Len())
	}
	byID := make(map[string]provenance.Execution)
	for _, e := range store.All() {
		byID[e.TaskID] = e
	}
	if byID["b"].Success || byID["d"].Success || !byID["a"].Success || !byID["c"].Success {
		t.Fatalf("success flags wrong: %+v", byID)
	}
	if byID["b"].Attempts != 3 {
		t.Fatalf("b attempts = %d, want 3", byID["b"].Attempts)
	}
	if got := store.AttemptsFor("t", "b"); len(got) != 4 { // 3 failed + 1 abandoned marker
		t.Fatalf("b attempt history = %d rows", len(got))
	}
}

func TestWorkerLostReassignsAndFinishes(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(7)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	store := provenance.NewStore()
	tr := &Fault{
		Inner: &InProc{Workers: 4, Runner: SimRunner{}},
		Rate:  0.05, Seed: 11, MaxKills: 3,
	}
	m, err := New(w, fleet, spreadPlan(w, fleet), tr, WithStore(store, "t"))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 50 || rep.Abandoned != 0 {
		t.Fatalf("report = %+v", rep)
	}
	if tr.Kills() == 0 {
		t.Fatal("fault transport injected no deaths")
	}
	if rep.WorkerLost != tr.Kills() || rep.Reassigned == 0 {
		t.Fatalf("worker lost = %d (kills %d), reassigned = %d",
			rep.WorkerLost, tr.Kills(), rep.Reassigned)
	}
	lost := 0
	for _, a := range store.Attempts() {
		if a.Outcome == "lost" {
			lost++
		}
	}
	if lost == 0 {
		t.Fatal("no attempts recorded as lost")
	}
}

func TestAllWorkersLostFails(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	m, err := New(w, fleet, spreadPlan(w, fleet), brokenSend{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "workers lost") {
		t.Fatalf("err = %v, want all-workers-lost", err)
	}
}

// brokenSend opens two workers whose sends always fail.
type brokenSend struct{}

func (brokenSend) Open(context.Context) ([]int, error) { return []int{0, 1}, nil }
func (brokenSend) Send(int, TaskSpec) error            { return fmt.Errorf("wire cut") }
func (brokenSend) Next(context.Context, float64) (Event, error) {
	return Event{}, ErrIdle
}
func (brokenSend) Close() error { return nil }

// dropResults wraps InProc and swallows the first n results, so their
// leases expire — the silent-worker scenario.
type dropResults struct {
	Transport
	n int
}

func (d *dropResults) Next(ctx context.Context, deadline float64) (Event, error) {
	for {
		ev, err := d.Transport.Next(ctx, deadline)
		if err != nil {
			return ev, err
		}
		if ev.Kind == EvResult && d.n > 0 {
			d.n--
			continue
		}
		// Also swallow heartbeats while dropping, so leases can lapse.
		if ev.Kind == EvHeartbeat && d.n > 0 {
			continue
		}
		return ev, nil
	}
}

func TestLeaseExpiryRetries(t *testing.T) {
	w := dag.New("single")
	w.MustAdd("a", "act", 10)
	fleet := twoLarge(t)
	store := provenance.NewStore()
	m, err := New(w, fleet, core.NewPlan(map[string]int{"a": 0}),
		&dropResults{Transport: &InProc{Workers: 1, Runner: SimRunner{}}, n: 1},
		WithStore(store, "t"), WithLease(15, 1))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Done != 1 || rep.Retries != 1 {
		t.Fatalf("report = %+v", rep)
	}
	var outcomes []string
	for _, a := range store.Attempts() {
		outcomes = append(outcomes, a.Outcome)
	}
	if len(outcomes) != 2 || outcomes[0] != "expired" || outcomes[1] != "ok" {
		t.Fatalf("attempt outcomes = %v", outcomes)
	}
}

func TestNewRejectsBadPlan(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	bad := core.NewPlan(map[string]int{"a": 0, "b": 1, "c": 99, "d": 0})
	if _, err := New(w, fleet, bad, &InProc{Workers: 1, Runner: SimRunner{}}); err == nil {
		t.Fatal("plan with unknown VM accepted")
	}
	missing := core.NewPlan(map[string]int{"a": 0})
	if _, err := New(w, fleet, missing, &InProc{Workers: 1, Runner: SimRunner{}}); err == nil {
		t.Fatal("incomplete plan accepted")
	}
}

func TestDeterminismBitIdentical(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(3)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	fixed := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	run := func() ([]byte, float64) {
		store := provenance.NewStore()
		store.SetNow(func() time.Time { return fixed })
		fl := cloud.DefaultFluctuation()
		tr := &Fault{
			Inner: &InProc{Workers: 4, Runner: FailingRunner{
				Inner: SimRunner{Fluct: &fl, Seed: 5}, Rate: 0.05, Seed: 5,
			}},
			Rate: 0.01, Seed: 5, MaxKills: 2,
		}
		m, err := New(w, fleet, spreadPlan(w, fleet), tr, WithStore(store, "det"))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := store.Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes(), rep.Makespan
	}
	b1, mk1 := run()
	b2, mk2 := run()
	if mk1 != mk2 {
		t.Fatalf("makespans differ: %v vs %v", mk1, mk2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("provenance stores differ between identical runs")
	}
}

func TestMakespanTracksSimulation(t *testing.T) {
	// Without fluctuation or faults, the master's virtual makespan must
	// land near the simulator's for the same plan: both model
	// runtime/speed durations on VCPUs-slot VMs; the simulator adds
	// data-transfer time the executor does not, so the comparison
	// carries a tolerance.
	w := trace.Montage50(rand.New(rand.NewSource(3)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	plan := spreadPlan(w, fleet)
	res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "pinned", Assign: plan.Map()}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(w, fleet, plan, &InProc{Workers: 4, Runner: SimRunner{}})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := res.Makespan*0.7, res.Makespan*1.3
	if rep.Makespan < lo || rep.Makespan > hi {
		t.Fatalf("exec makespan %v outside [%v, %v] around sim makespan %v",
			rep.Makespan, lo, hi, res.Makespan)
	}
}

func TestTelemetryEventsEmitted(t *testing.T) {
	w, fleet := diamond(t), twoLarge(t)
	sink := &captureSink{}
	m, err := New(w, fleet, spreadPlan(w, fleet),
		&InProc{Workers: 2, Runner: failOnce{inner: SimRunner{}}},
		WithSink(sink))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	kinds := make(map[string]int)
	for _, e := range sink.events {
		kinds[e.Kind()]++
	}
	if kinds["exec_dispatch"] != 8 || kinds["exec_complete"] != 4 ||
		kinds["exec_retry"] != 4 || kinds["exec_run"] != 1 {
		t.Fatalf("event kinds = %v", kinds)
	}
}

type captureSink struct{ events []telemetry.Event }

func (s *captureSink) Emit(e telemetry.Event) { s.events = append(s.events, e) }

func TestReassignerPolicies(t *testing.T) {
	w := dag.New("one")
	a := w.MustAdd("a", "act", 100)
	fleet, err := cloud.NewFleet("mix", []cloud.VMType{cloud.T2Micro, cloud.T22XLarge}, []int{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ReassignContext{
		Activation: a,
		Candidates: fleet.VMs,
		Backlog:    func(int) float64 { return 0 },
		Estimate: func(a *dag.Activation, vm *cloud.VM) float64 {
			return a.Runtime / vm.Type.Speed / float64(vm.Type.VCPUs)
		},
	}
	if got := (EarliestFinish{}).Pick(ctx); got != 1 {
		t.Fatalf("EarliestFinish picked vm%d, want the 8-slot vm1", got)
	}
	// Backlog can flip the choice.
	ctx.Backlog = func(id int) float64 {
		if id == 1 {
			return 1000
		}
		return 0
	}
	if got := (EarliestFinish{}).Pick(ctx); got != 0 {
		t.Fatalf("EarliestFinish ignored backlog, picked vm%d", got)
	}
}
