package exec

import (
	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/rl"
)

// ReassignContext is what a Reassigner sees when a worker death
// orphans an activation: the surviving VMs and the master's current
// load and cost estimates.
type ReassignContext struct {
	Activation *dag.Activation
	// Candidates are the live VMs, ascending by ID (never empty).
	Candidates []*cloud.VM
	// Backlog returns a VM's outstanding work in virtual seconds per
	// slot (queued + running estimates).
	Backlog func(vmID int) float64
	// Estimate predicts the activation's execution time on a VM.
	Estimate func(a *dag.Activation, vm *cloud.VM) float64
}

// Reassigner picks a replacement VM for an activation whose pinned VM
// died. Implementations must be deterministic: same context, same
// answer.
type Reassigner interface {
	Name() string
	Pick(ReassignContext) int
}

// QTableReassigner falls back to the learned policy: the surviving VM
// with the highest Q value for the activation — the paper's Q table
// consulted one more time at execution time.
type QTableReassigner struct {
	Table *rl.Table
}

// Name implements Reassigner.
func (QTableReassigner) Name() string { return "qtable" }

// Pick implements Reassigner.
func (r QTableReassigner) Pick(ctx ReassignContext) int {
	ids := make([]int, len(ctx.Candidates))
	for i, vm := range ctx.Candidates {
		ids[i] = vm.ID
	}
	vm, _ := r.Table.Best(ctx.Activation.Index, ids)
	return vm
}

// EarliestFinish is the HEFT-flavoured fallback used when no Q table
// is available: pick the surviving VM minimising backlog plus the
// activation's estimated execution time, ties broken by lowest VM ID.
type EarliestFinish struct{}

// Name implements Reassigner.
func (EarliestFinish) Name() string { return "earliest-finish" }

// Pick implements Reassigner.
func (EarliestFinish) Pick(ctx ReassignContext) int {
	best, bestT := -1, 0.0
	for _, vm := range ctx.Candidates {
		t := ctx.Backlog(vm.ID) + ctx.Estimate(ctx.Activation, vm)
		if best == -1 || t < bestT {
			best, bestT = vm.ID, t
		}
	}
	return best
}
