package exec

import (
	"container/heap"
	"context"
	"fmt"
)

// InProc is the deterministic in-process transport: a virtual-clock
// event queue standing in for a worker pool. Send "executes" the
// attempt immediately via the Runner (which returns a virtual
// duration) and schedules its result — and periodic worker heartbeats
// — on the queue; Next pops events in (time, sequence) order. There
// is no real concurrency and no wall clock, so for a fixed seed a
// master run over InProc is bit-identical, event for event.
type InProc struct {
	// Workers is the size of the virtual pool (default 1). The master
	// partitions fleet VMs across workers round-robin, so the pool
	// size sets the blast radius of an injected worker death.
	Workers int
	// Runner executes attempts (required).
	Runner Runner
	// HeartbeatEvery is the virtual period of worker heartbeats while
	// a worker has attempts in flight (default 5s).
	HeartbeatEvery float64

	queue   inprocQueue
	now     float64
	seq     int64
	running map[int]int  // in-flight attempts per worker
	beating map[int]bool // a heartbeat event is pending for the worker
	opened  bool
}

type inprocItem struct {
	t   float64
	seq int64
	ev  Event
}

type inprocQueue []inprocItem

func (q inprocQueue) Len() int { return len(q) }
func (q inprocQueue) Less(i, j int) bool {
	if q[i].t != q[j].t {
		return q[i].t < q[j].t
	}
	return q[i].seq < q[j].seq
}
func (q inprocQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *inprocQueue) Push(x any)        { *q = append(*q, x.(inprocItem)) }
func (q *inprocQueue) Pop() any {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

func (p *InProc) push(t float64, ev Event) {
	ev.Time = t
	heap.Push(&p.queue, inprocItem{t: t, seq: p.seq, ev: ev})
	p.seq++
}

// Open implements Transport.
func (p *InProc) Open(context.Context) ([]int, error) {
	if p.Runner == nil {
		return nil, fmt.Errorf("exec: InProc needs a Runner")
	}
	if p.Workers <= 0 {
		p.Workers = 1
	}
	if p.HeartbeatEvery <= 0 {
		p.HeartbeatEvery = 5
	}
	p.running = make(map[int]int, p.Workers)
	p.beating = make(map[int]bool, p.Workers)
	p.opened = true
	ids := make([]int, p.Workers)
	for i := range ids {
		ids[i] = i
	}
	return ids, nil
}

// Send implements Transport: it runs the attempt synchronously (the
// runner returns a virtual duration) and schedules the result.
func (p *InProc) Send(worker int, t TaskSpec) error {
	if !p.opened {
		return fmt.Errorf("exec: InProc.Send before Open")
	}
	d, err := p.Runner.Run(context.Background(), t)
	if d < 0 {
		d = 0
	}
	ev := Event{Kind: EvResult, Worker: worker, TaskID: t.TaskID, TaskIndex: t.Index, Attempt: t.Attempt}
	if err != nil {
		ev.Err = err.Error()
	}
	p.push(p.now+d, ev)
	p.running[worker]++
	if !p.beating[worker] {
		p.beating[worker] = true
		p.push(p.now+p.HeartbeatEvery, Event{Kind: EvHeartbeat, Worker: worker})
	}
	return nil
}

// Next implements Transport.
func (p *InProc) Next(_ context.Context, deadline float64) (Event, error) {
	for {
		if len(p.queue) == 0 {
			if deadline == Forever {
				return Event{}, ErrIdle
			}
			if deadline > p.now {
				p.now = deadline
			}
			return Event{Kind: EvTick, Time: p.now}, nil
		}
		if head := p.queue[0]; head.t > deadline {
			if deadline > p.now {
				p.now = deadline
			}
			return Event{Kind: EvTick, Time: p.now}, nil
		}
		it := heap.Pop(&p.queue).(inprocItem)
		if it.t > p.now {
			p.now = it.t
		}
		switch it.ev.Kind {
		case EvHeartbeat:
			// Heartbeats self-renew while the worker is busy and lapse
			// when it drains.
			if p.running[it.ev.Worker] == 0 {
				p.beating[it.ev.Worker] = false
				continue
			}
			p.push(p.now+p.HeartbeatEvery, Event{Kind: EvHeartbeat, Worker: it.ev.Worker})
		case EvResult:
			p.running[it.ev.Worker]--
		}
		return it.ev, nil
	}
}

// Close implements Transport.
func (p *InProc) Close() error {
	p.queue = nil
	return nil
}
