package exec

import (
	"context"
	"encoding/json"
	"fmt"
)

// WireCheck wraps a Transport and round-trips every task dispatch and
// every result/heartbeat event through a wire codec — encode, then
// decode, then deliver the decoded struct. Over the deterministic
// InProc transport this is the codec determinism oracle: a seeded run
// must produce byte-identical provenance whether messages pass
// through the JSON codec, the binary codec, or no codec at all, which
// pins the two codecs to the same semantics without the wall-clock
// nondeterminism of real sockets.
type WireCheck struct {
	Inner Transport
	// Binary selects the framed binary codec; false round-trips
	// through the JSON-lines encoding.
	Binary bool
}

// roundTrip encodes m with the selected codec and decodes it back.
func (t *WireCheck) roundTrip(m *wireMsg) error {
	if t.Binary {
		frame := appendWirePayload(nil, m)
		return decodeWirePayload(frame, m, nil)
	}
	b, err := json.Marshal(m)
	if err != nil {
		return err
	}
	*m = wireMsg{}
	if err := json.Unmarshal(b, m); err != nil {
		return err
	}
	m.Index = -1 // mirror jsonCodec.read: the legacy wire has no index
	return nil
}

// Open implements Transport.
func (t *WireCheck) Open(ctx context.Context) ([]int, error) { return t.Inner.Open(ctx) }

// Send implements Transport: the TaskSpec the inner transport sees is
// the one that survived the wire.
func (t *WireCheck) Send(worker int, spec TaskSpec) error {
	m := wireMsg{Type: msgTask, Task: &spec}
	if err := t.roundTrip(&m); err != nil {
		return fmt.Errorf("exec: wirecheck task: %w", err)
	}
	if m.Task == nil {
		return fmt.Errorf("exec: wirecheck task lost its spec")
	}
	return t.Inner.Send(worker, *m.Task)
}

// Next implements Transport: result and heartbeat events pass through
// the codec the way a TCP reader would receive them (time and worker
// are stamped by the receiver, not carried on the wire).
func (t *WireCheck) Next(ctx context.Context, deadline float64) (Event, error) {
	ev, err := t.Inner.Next(ctx, deadline)
	if err != nil {
		return ev, err
	}
	switch ev.Kind {
	case EvResult:
		m := wireMsg{Type: msgResult, TaskID: ev.TaskID, Index: ev.TaskIndex, Attempt: ev.Attempt, Error: ev.Err}
		if err := t.roundTrip(&m); err != nil {
			return ev, fmt.Errorf("exec: wirecheck result: %w", err)
		}
		ev.TaskID, ev.TaskIndex, ev.Attempt, ev.Err = m.TaskID, m.Index, m.Attempt, m.Error
	case EvHeartbeat:
		m := wireMsg{Type: msgHeartbeat}
		if err := t.roundTrip(&m); err != nil {
			return ev, fmt.Errorf("exec: wirecheck heartbeat: %w", err)
		}
	}
	return ev, nil
}

// Close implements Transport.
func (t *WireCheck) Close() error { return t.Inner.Close() }
