package exec

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// TCP is the real-network transport: the master listens on Addr and
// waits for Workers execworker processes to join over JSON lines
// (loopback in tests and CI, a real network in anger). Events carry
// virtual timestamps derived from the wall clock via TimeScale, so
// the master's lease and backoff arithmetic is identical to the
// deterministic transport's — only the clock source differs.
type TCP struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Workers is how many workers Open waits for (default 1).
	Workers int
	// TimeScale is wall seconds per virtual second (default 1e-3).
	TimeScale float64
	// HeartbeatEvery is the virtual heartbeat period workers are told
	// to use (default 5 virtual seconds).
	HeartbeatEvery float64
	// JoinTimeout bounds Open's wait for workers (default 30s wall).
	JoinTimeout time.Duration

	ln     net.Listener
	start  time.Time
	events chan Event
	donec  chan struct{}
	mu     sync.Mutex
	conns  map[int]*tcpConn
	closed bool
}

type tcpConn struct {
	conn net.Conn
	enc  *json.Encoder
	mu   sync.Mutex
}

func (c *tcpConn) send(m wireMsg) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.enc.Encode(m)
}

// Listen binds the listener without accepting workers, so callers can
// learn the bound address (Addr "…:0") before starting workers. Open
// calls it implicitly if needed.
func (t *TCP) Listen() error {
	if t.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", t.Addr)
	if err != nil {
		return fmt.Errorf("exec: listen %s: %w", t.Addr, err)
	}
	t.ln = ln
	return nil
}

// ListenAddr returns the bound address (valid after Listen or Open).
func (t *TCP) ListenAddr() string {
	if t.ln == nil {
		return t.Addr
	}
	return t.ln.Addr().String()
}

// vnow maps the wall clock to virtual seconds since Open completed.
func (t *TCP) vnow() float64 {
	return time.Since(t.start).Seconds() / t.TimeScale
}

// Open implements Transport: it accepts Workers connections,
// handshakes each, and starts their reader goroutines.
func (t *TCP) Open(ctx context.Context) ([]int, error) {
	if t.Workers <= 0 {
		t.Workers = 1
	}
	if t.TimeScale <= 0 {
		t.TimeScale = 1e-3
	}
	if t.HeartbeatEvery <= 0 {
		t.HeartbeatEvery = 5
	}
	if t.JoinTimeout <= 0 {
		t.JoinTimeout = 30 * time.Second
	}
	if err := t.Listen(); err != nil {
		return nil, err
	}
	t.events = make(chan Event, 256)
	t.donec = make(chan struct{})
	t.conns = make(map[int]*tcpConn, t.Workers)
	heartbeatMs := int(t.HeartbeatEvery * t.TimeScale * 1000)
	if heartbeatMs < 20 {
		heartbeatMs = 20
	}
	deadline := time.Now().Add(t.JoinTimeout)
	ids := make([]int, 0, t.Workers)
	decs := make([]*json.Decoder, 0, t.Workers)
	for len(ids) < t.Workers {
		if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
			deadline = dl
		}
		if tl, ok := t.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			t.Close()
			return nil, fmt.Errorf("exec: waiting for %d workers (%d joined): %w", t.Workers, len(ids), err)
		}
		id := len(ids)
		tc := &tcpConn{conn: conn, enc: json.NewEncoder(conn)}
		// Handshake: hello in, welcome out.
		dec := json.NewDecoder(bufio.NewReader(conn))
		var hello wireMsg
		conn.SetReadDeadline(time.Now().Add(10 * time.Second))
		if err := dec.Decode(&hello); err != nil || hello.Type != msgHello {
			conn.Close()
			t.Close()
			return nil, fmt.Errorf("exec: worker handshake: got %q (%v)", hello.Type, err)
		}
		conn.SetReadDeadline(time.Time{})
		if err := tc.send(wireMsg{Type: msgWelcome, Worker: id, TimeScale: t.TimeScale, HeartbeatMs: heartbeatMs}); err != nil {
			conn.Close()
			t.Close()
			return nil, fmt.Errorf("exec: welcome worker %d: %w", id, err)
		}
		t.mu.Lock()
		t.conns[id] = tc
		t.mu.Unlock()
		ids = append(ids, id)
		decs = append(decs, dec)
	}
	if tl, ok := t.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	// The virtual epoch is set before any reader runs, so events sent
	// during the join window are stamped at (small) post-epoch times,
	// never against the zero Time.
	t.start = time.Now()
	for _, id := range ids {
		go t.reader(id, decs[id])
	}
	return ids, nil
}

// reader pumps one worker's messages into the event channel; a read
// error (or EOF) becomes a single EvWorkerLost.
func (t *TCP) reader(id int, dec *json.Decoder) {
	for {
		var m wireMsg
		if err := dec.Decode(&m); err != nil {
			t.emit(Event{Kind: EvWorkerLost, Worker: id, Time: t.vnow()})
			return
		}
		switch m.Type {
		case msgResult:
			t.emit(Event{Kind: EvResult, Worker: id, Time: t.vnow(),
				TaskID: m.TaskID, Attempt: m.Attempt, Err: m.Error})
		case msgHeartbeat:
			t.emit(Event{Kind: EvHeartbeat, Worker: id, Time: t.vnow()})
		}
	}
}

// emit delivers an event unless the transport has been closed.
func (t *TCP) emit(ev Event) {
	select {
	case t.events <- ev:
	case <-t.donec:
	}
}

// Send implements Transport.
func (t *TCP) Send(worker int, spec TaskSpec) error {
	t.mu.Lock()
	tc := t.conns[worker]
	t.mu.Unlock()
	if tc == nil {
		return fmt.Errorf("exec: send to unknown worker %d", worker)
	}
	s := spec
	return tc.send(wireMsg{Type: msgTask, Task: &s})
}

// Next implements Transport.
func (t *TCP) Next(ctx context.Context, deadline float64) (Event, error) {
	if deadline == Forever {
		select {
		case ev := <-t.events:
			return ev, nil
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
	wait := time.Duration((deadline - t.vnow()) * t.TimeScale * float64(time.Second))
	if wait <= 0 {
		// The deadline already passed in wall time; drain a pending
		// event if one is ready, else tick immediately.
		select {
		case ev := <-t.events:
			return ev, nil
		default:
			return Event{Kind: EvTick, Time: t.vnow()}, nil
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case ev := <-t.events:
		return ev, nil
	case <-timer.C:
		return Event{Kind: EvTick, Time: t.vnow()}, nil
	case <-ctx.Done():
		return Event{}, ctx.Err()
	}
}

// Close implements Transport: it tells workers to shut down and
// releases the listener and connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[int]*tcpConn{}
	t.mu.Unlock()
	if t.donec != nil {
		close(t.donec)
	}
	for _, tc := range conns {
		tc.send(wireMsg{Type: msgShutdown})
		tc.conn.Close()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	return nil
}
