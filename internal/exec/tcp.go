package exec

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// TCP is the real-network transport: the master listens on Addr and
// waits for Workers execworker processes to join (loopback in tests
// and CI, a real network in anger). Each connection's codec is
// negotiated at join time — framed binary (version 2) for new
// workers, JSON lines (version 1) for legacy binaries — so a mixed
// fleet interoperates within one run. Events carry virtual timestamps
// derived from the wall clock via TimeScale, so the master's lease
// and backoff arithmetic is identical to the deterministic
// transport's — only the clock source differs.
//
// Sends are staged per connection and flushed in one write per
// master event-loop turn (see Flusher); with many activations
// multiplexed over each worker connection, a dispatch wave costs one
// syscall per worker instead of one per task.
type TCP struct {
	// Addr is the listen address (e.g. "127.0.0.1:0").
	Addr string
	// Workers is how many workers Open waits for (default 1).
	Workers int
	// TimeScale is wall seconds per virtual second (default 1e-3).
	TimeScale float64
	// HeartbeatEvery is the virtual heartbeat period workers are told
	// to use (default 5 virtual seconds).
	HeartbeatEvery float64
	// JoinTimeout bounds Open's wait for workers (default 30s wall).
	JoinTimeout time.Duration

	ln     net.Listener
	opened []int
	start  time.Time
	// events carries batches: one reader wakeup delivers every frame
	// that arrived in the same write as one slice, so the master loop
	// is woken once per wave of results, not once per task. evbuf and
	// evhead are the batch Next is consuming — touched only by the
	// master goroutine.
	events chan []Event
	evbuf  []Event
	evhead int
	// free recycles consumed batch buffers back to the readers, so
	// steady-state event delivery reuses slices instead of growing a
	// fresh one per wave.
	free  chan []Event
	donec chan struct{}
	mu        sync.Mutex
	conns     map[int]*tcpConn
	dirty     []int
	closed    bool
	bytesIn   atomic.Int64
	bytesOut  atomic.Int64
	readsIn   atomic.Int64
	writesOut atomic.Int64
}

type tcpConn struct {
	conn  net.Conn
	c     wireCodec
	dirty bool
}

// countingConn tallies wire bytes both ways into the owning TCP's
// counters, the substrate of the bench tier's bytes/task metric.
type countingConn struct {
	net.Conn
	t *TCP
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.t.bytesIn.Add(int64(n))
	c.t.readsIn.Add(1)
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.t.bytesOut.Add(int64(n))
	c.t.writesOut.Add(1)
	return n, err
}

// Bytes reports the wire bytes received from and sent to workers so
// far.
func (t *TCP) Bytes() (in, out int64) {
	return t.bytesIn.Load(), t.bytesOut.Load()
}

// Calls reports the master-side Read and Write call counts — with the
// byte totals, the measure of how well batching is amortising
// syscalls (bytes per call is the average batch size on the wire).
func (t *TCP) Calls() (reads, writes int64) {
	return t.readsIn.Load(), t.writesOut.Load()
}

// Listen binds the listener without accepting workers, so callers can
// learn the bound address (Addr "…:0") before starting workers. Open
// calls it implicitly if needed.
func (t *TCP) Listen() error {
	if t.ln != nil {
		return nil
	}
	ln, err := net.Listen("tcp", t.Addr)
	if err != nil {
		return fmt.Errorf("exec: listen %s: %w", t.Addr, err)
	}
	t.ln = ln
	return nil
}

// ListenAddr returns the bound address (valid after Listen or Open).
func (t *TCP) ListenAddr() string {
	if t.ln == nil {
		return t.Addr
	}
	return t.ln.Addr().String()
}

// vnow maps the wall clock to virtual seconds since Open completed.
func (t *TCP) vnow() float64 {
	return time.Since(t.start).Seconds() / t.TimeScale
}

// Open implements Transport: it accepts Workers connections,
// negotiates each one's codec, handshakes it, and starts their reader
// goroutines. Open is idempotent — a second call returns the worker
// set the first call joined — so callers that need the fleet ready
// before Run (pre-joining under a benchmark's stopped timer, or a
// daemon separating join from execution) can open early.
func (t *TCP) Open(ctx context.Context) ([]int, error) {
	if t.opened != nil {
		return t.opened, nil
	}
	if t.Workers <= 0 {
		t.Workers = 1
	}
	if t.TimeScale <= 0 {
		t.TimeScale = 1e-3
	}
	if t.HeartbeatEvery <= 0 {
		t.HeartbeatEvery = 5
	}
	if t.JoinTimeout <= 0 {
		t.JoinTimeout = 30 * time.Second
	}
	if err := t.Listen(); err != nil {
		return nil, err
	}
	// Deep enough to absorb a batch from every connection in the fleet
	// without back-pressuring the readers mid-turn.
	t.events = make(chan []Event, 1024)
	t.free = make(chan []Event, 1024)
	t.donec = make(chan struct{})
	t.conns = make(map[int]*tcpConn, t.Workers)
	heartbeatMs := int(t.HeartbeatEvery * t.TimeScale * 1000)
	if heartbeatMs < 20 {
		heartbeatMs = 20
	}
	deadline := time.Now().Add(t.JoinTimeout)
	ids := make([]int, 0, t.Workers)
	for len(ids) < t.Workers {
		if dl, ok := ctx.Deadline(); ok && dl.Before(deadline) {
			deadline = dl
		}
		if tl, ok := t.ln.(*net.TCPListener); ok {
			tl.SetDeadline(deadline)
		}
		conn, err := t.ln.Accept()
		if err != nil {
			t.Close()
			// The join count and bound address make a chaos/soak
			// failure diagnosable: which side never showed up, and
			// where it should have connected.
			return nil, fmt.Errorf("exec: master on %s timed out waiting for workers: %d of %d joined: %w",
				t.ListenAddr(), len(ids), t.Workers, err)
		}
		id := len(ids)
		tc, err := t.handshake(conn, id, heartbeatMs)
		if err != nil {
			conn.Close()
			t.Close()
			return nil, err
		}
		t.mu.Lock()
		t.conns[id] = tc
		t.mu.Unlock()
		ids = append(ids, id)
	}
	if tl, ok := t.ln.(*net.TCPListener); ok {
		tl.SetDeadline(time.Time{})
	}
	// The virtual epoch is set before any reader runs, so events sent
	// during the join window are stamped at (small) post-epoch times,
	// never against the zero Time.
	t.start = time.Now()
	t.mu.Lock()
	for _, id := range ids {
		go t.reader(id, t.conns[id].c)
	}
	t.mu.Unlock()
	t.opened = ids
	return ids, nil
}

// handshake sniffs the joining connection's codec (binary preamble vs
// JSON's leading '{'), consumes the hello, and answers with a
// welcome naming the worker, the run's time scale, and the protocol
// version the master selected.
func (t *TCP) handshake(conn net.Conn, id, heartbeatMs int) (*tcpConn, error) {
	cc := countingConn{Conn: conn, t: t}
	br := bufio.NewReader(cc)
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	c, err := sniffCodec(cc, br)
	if err != nil {
		return nil, fmt.Errorf("exec: worker joining %s from %s: %w",
			t.ListenAddr(), conn.RemoteAddr(), err)
	}
	// Result decoding on the master's hot path interns task IDs the
	// master itself dispatched, so it allocates nothing per result.
	// Pre-sized here, off the run's hot path, so steady-state inserts
	// rarely grow the map.
	if bc, ok := c.(*binCodec); ok {
		bc.intern = make(map[string]string, 128)
	}
	var hello wireMsg
	if err := c.read(&hello); err != nil || hello.Type != msgHello {
		return nil, fmt.Errorf("exec: worker handshake on %s: got %q (%v)", t.ListenAddr(), hello.Type, err)
	}
	conn.SetReadDeadline(time.Time{})
	tc := &tcpConn{conn: conn, c: c}
	welcome := wireMsg{Type: msgWelcome, Worker: id, TimeScale: t.TimeScale,
		HeartbeatMs: heartbeatMs, Version: c.version()}
	if err := c.queue(&welcome); err != nil {
		return nil, fmt.Errorf("exec: welcome worker %d: %w", id, err)
	}
	if err := c.flush(); err != nil {
		return nil, fmt.Errorf("exec: welcome worker %d: %w", id, err)
	}
	return tc, nil
}

// sniffCodec distinguishes a binary worker (preamble 0xBF 'R' 'X'
// <version>) from a legacy JSON-lines worker ('{') by peeking the
// first byte.
func sniffCodec(cc countingConn, br *bufio.Reader) (wireCodec, error) {
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("handshake read: %w", err)
	}
	switch first[0] {
	case binPreamble[0]:
		var pre [4]byte
		if _, err := io.ReadFull(br, pre[:]); err != nil {
			return nil, fmt.Errorf("binary preamble: %w", err)
		}
		if pre[1] != binPreamble[1] || pre[2] != binPreamble[2] {
			return nil, fmt.Errorf("bad binary preamble % x", pre)
		}
		if pre[3] != wireVersionBinary {
			return nil, fmt.Errorf("unsupported wire version %d (want %d)", pre[3], wireVersionBinary)
		}
		return newBinCodec(cc, br), nil
	case '{':
		return newJSONCodec(cc, br), nil
	}
	return nil, fmt.Errorf("unrecognised first byte 0x%02x (neither binary preamble nor JSON)", first[0])
}

// reader pumps one worker's messages into the event channel; a read
// error (or EOF, or a corrupt frame) becomes a single EvWorkerLost.
// After a blocking read it keeps decoding while the codec still has
// bytes buffered — a worker's coalesced write of many results lands
// as one event batch, one master wakeup. (A partial trailing frame
// makes one of those reads block briefly, but its remainder is
// already in flight — the sender writes whole batches.)
func (t *TCP) reader(id int, c wireCodec) {
	const maxBatch = 512
	var m wireMsg
	for {
		var batch []Event
		var now float64
		for len(batch) < maxBatch {
			if len(batch) > 0 && !c.buffered() {
				break
			}
			if err := c.read(&m); err != nil {
				if len(batch) > 0 {
					t.emit(batch)
				}
				t.emit([]Event{{Kind: EvWorkerLost, Worker: id, Time: t.vnow()}})
				return
			}
			if len(batch) == 0 {
				// One clock read per batch: messages decoded from the
				// same arrival share its timestamp.
				now = t.vnow()
				if batch == nil {
					// Claim a buffer only now that there is something
					// to put in it — a reader parked in a blocking
					// read must not sit on a recycled buffer.
					select {
					case b := <-t.free:
						batch = b[:0]
					default:
						// Cold pool: start with room for a typical
						// wave instead of growing through doublings.
						// Legacy JSON connections never batch
						// (buffered is always false), so their waves
						// are single events.
						n := 32
						if _, ok := c.(*binCodec); !ok {
							n = 1
						}
						batch = make([]Event, 0, n)
					}
				}
			}
			switch m.Type {
			case msgResult:
				batch = append(batch, Event{Kind: EvResult, Worker: id, Time: now,
					TaskID: m.TaskID, TaskIndex: m.Index, Attempt: m.Attempt, Err: m.Error})
			case msgHeartbeat:
				batch = append(batch, Event{Kind: EvHeartbeat, Worker: id, Time: now})
			}
		}
		if len(batch) > 0 {
			t.emit(batch)
		}
	}
}

// emit delivers an event batch unless the transport has been closed.
// Ownership of the slice passes to the master loop.
func (t *TCP) emit(evs []Event) {
	select {
	case t.events <- evs:
	case <-t.donec:
	}
}

// Send implements Transport: the message is staged on the worker's
// connection and hits the wire at the next Flush (JSON-lines
// connections write through immediately, as version 1 always did).
func (t *TCP) Send(worker int, spec TaskSpec) error {
	t.mu.Lock()
	tc := t.conns[worker]
	if tc != nil && !tc.dirty {
		tc.dirty = true
		t.dirty = append(t.dirty, worker)
	}
	t.mu.Unlock()
	if tc == nil {
		return fmt.Errorf("exec: send to unknown worker %d", worker)
	}
	// Branches are split by hand so escape analysis sees two disjoint
	// variables: the binary codec's queue retains nothing, so spec and
	// the message stay on this stack frame — dispatching a task
	// allocates nothing master-side. Only the legacy path pays a copy.
	if bc, ok := tc.c.(*binCodec); ok {
		m := wireMsg{Type: msgTask, Task: &spec}
		return bc.queue(&m)
	}
	s := spec
	return tc.c.queue(&wireMsg{Type: msgTask, Task: &s})
}

// Flush implements Flusher: every connection with staged messages
// gets its batch out in one write (connections nothing was queued on
// since the last flush are skipped — on a large fleet most turns
// touch a handful of workers). Workers whose batch cannot be
// delivered are returned (and dropped) so the master can run its
// worker-lost recovery directly instead of waiting for the reader to
// notice.
func (t *TCP) Flush() []int {
	t.mu.Lock()
	if len(t.dirty) == 0 {
		t.mu.Unlock()
		return nil
	}
	ids := t.dirty
	t.dirty = t.dirty[len(t.dirty):]
	sort.Ints(ids)
	var lost []int
	for _, id := range ids {
		tc := t.conns[id]
		if tc == nil {
			continue // already dropped by an earlier flush failure
		}
		tc.dirty = false
		if err := tc.c.flush(); err != nil {
			lost = append(lost, id)
			tc.conn.Close()
			delete(t.conns, id)
		}
	}
	t.mu.Unlock()
	return lost
}

// Next implements Transport.
func (t *TCP) Next(ctx context.Context, deadline float64) (Event, error) {
	// Consume the batch in hand before touching the channel: events
	// within one batch cost a slice index each, no scheduler round
	// trip.
	if t.evhead < len(t.evbuf) {
		ev := t.evbuf[t.evhead]
		t.evhead++
		if t.evhead == len(t.evbuf) {
			t.recycle(t.evbuf)
			t.evbuf = nil
		}
		return ev, nil
	}
	if deadline == Forever {
		select {
		case evs := <-t.events:
			return t.take(evs), nil
		case <-ctx.Done():
			return Event{}, ctx.Err()
		}
	}
	wait := time.Duration((deadline - t.vnow()) * t.TimeScale * float64(time.Second))
	if wait <= 0 {
		// The deadline already passed in wall time; drain a pending
		// batch if one is ready, else tick immediately.
		select {
		case evs := <-t.events:
			return t.take(evs), nil
		default:
			return Event{Kind: EvTick, Time: t.vnow()}, nil
		}
	}
	timer := time.NewTimer(wait)
	defer timer.Stop()
	select {
	case evs := <-t.events:
		return t.take(evs), nil
	case <-timer.C:
		return Event{Kind: EvTick, Time: t.vnow()}, nil
	case <-ctx.Done():
		return Event{}, ctx.Err()
	}
}

// take adopts a received batch (always non-empty) and returns its
// first event.
func (t *TCP) take(evs []Event) Event {
	ev := evs[0]
	if len(evs) == 1 {
		t.recycle(evs)
		return ev
	}
	t.evbuf = evs
	t.evhead = 1
	return ev
}

// recycle hands a fully consumed batch buffer back to the readers
// (dropped when the free list is full — it is garbage then, which is
// also fine).
func (t *TCP) recycle(evs []Event) {
	select {
	case t.free <- evs[:0]:
	default:
	}
}

// Close implements Transport: it tells workers to shut down and
// releases the listener and connections.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := t.conns
	t.conns = map[int]*tcpConn{}
	t.mu.Unlock()
	if t.donec != nil {
		close(t.donec)
	}
	for _, tc := range conns {
		tc.c.queue(&wireMsg{Type: msgShutdown})
		tc.c.flush()
		tc.conn.Close()
	}
	if t.ln != nil {
		t.ln.Close()
	}
	return nil
}
