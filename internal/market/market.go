// Package market models the provider economics the flat spot model
// abstracts away: a multi-provider instance catalogue (per-type
// on-demand and spot prices, boot delays, preemption-notice lead
// times), seeded price/preemption trace generation under named market
// regimes, and deterministic JSON trace playback with per-VM cost
// integration. The simulator (sim.Config.Market) replays a trace so
// revocations arrive as notice-then-kill events and each run is
// billed against the traced prices; the exec master (exec.WithMarket)
// uses the same trace to cordon, drain and remediate VMs before the
// kill lands instead of waiting for lease expiry.
package market

import (
	"fmt"
	"sort"

	"reassign/internal/cloud"
)

// Offer is one instance type as sold by one provider.
type Offer struct {
	// Provider names the seller ("aws", "gcp", "azure").
	Provider string
	// Type is the cloud.VMType name this offer prices.
	Type string
	// OnDemand is the hourly on-demand price in USD.
	OnDemand float64
	// SpotBase is the long-run mean hourly spot price in USD; the
	// traced spot price random-walks around it.
	SpotBase float64
	// BootDelay is the seconds a replacement instance takes to become
	// usable after acquisition.
	BootDelay float64
	// NoticeLead is the seconds of warning between a preemption notice
	// and the kill (AWS's 2-minute notice, GCP/Azure's ~30 s).
	NoticeLead float64
}

// Catalogue is an ordered set of offers, sorted by (Provider, Type).
type Catalogue struct {
	Offers []Offer
}

// providerProfile scales the cloud package's list prices into one
// provider's economics.
type providerProfile struct {
	name       string
	priceScale float64 // on-demand multiplier over the cloud list price
	spotFrac   float64 // spot base as a fraction of on-demand
	bootDelay  float64
	noticeLead float64
}

var defaultProfiles = []providerProfile{
	{name: "aws", priceScale: 1.00, spotFrac: 0.30, bootDelay: 45, noticeLead: 120},
	{name: "azure", priceScale: 1.05, spotFrac: 0.35, bootDelay: 90, noticeLead: 30},
	{name: "gcp", priceScale: 0.95, spotFrac: 0.25, bootDelay: 60, noticeLead: 30},
}

// DefaultCatalogue prices every cloud catalogue type across three
// provider profiles: aws (list price, deep spot discount, long
// notice), azure (priciest, shallow discount, short notice) and gcp
// (cheapest on-demand, deepest discount, short notice).
func DefaultCatalogue() *Catalogue {
	c := &Catalogue{}
	for _, p := range defaultProfiles {
		for _, t := range cloud.Types() {
			od := t.PricePerHour * p.priceScale
			c.Offers = append(c.Offers, Offer{
				Provider:   p.name,
				Type:       t.Name,
				OnDemand:   od,
				SpotBase:   od * p.spotFrac,
				BootDelay:  p.bootDelay,
				NoticeLead: p.noticeLead,
			})
		}
	}
	c.sort()
	return c
}

func (c *Catalogue) sort() {
	sort.Slice(c.Offers, func(i, j int) bool {
		a, b := c.Offers[i], c.Offers[j]
		if a.Provider != b.Provider {
			return a.Provider < b.Provider
		}
		return a.Type < b.Type
	})
}

// Find returns the offer for (provider, type).
func (c *Catalogue) Find(provider, typ string) (Offer, bool) {
	for _, o := range c.Offers {
		if o.Provider == provider && o.Type == typ {
			return o, true
		}
	}
	return Offer{}, false
}

// Providers returns the sorted distinct provider names.
func (c *Catalogue) Providers() []string {
	var out []string
	for _, o := range c.Offers {
		if n := len(out); n == 0 || out[n-1] != o.Provider {
			out = append(out, o.Provider)
		}
	}
	return out
}

// Validate checks catalogue consistency.
func (c *Catalogue) Validate() error {
	for i, o := range c.Offers {
		if o.Provider == "" || o.Type == "" {
			return fmt.Errorf("market: offer %d missing provider or type", i)
		}
		if o.OnDemand <= 0 || o.SpotBase <= 0 {
			return fmt.Errorf("market: offer %s/%s has non-positive price", o.Provider, o.Type)
		}
		if o.SpotBase > o.OnDemand {
			return fmt.Errorf("market: offer %s/%s spot base %.4f above on-demand %.4f",
				o.Provider, o.Type, o.SpotBase, o.OnDemand)
		}
		if o.BootDelay < 0 || o.NoticeLead < 0 {
			return fmt.Errorf("market: offer %s/%s has negative delay", o.Provider, o.Type)
		}
	}
	return nil
}

// Regime names one market weather pattern: how hard spot prices move
// and how often spot capacity is reclaimed or hardware degrades.
type Regime struct {
	Name string
	// Volatility is the standard deviation of one price-walk step as a
	// fraction of the spot base price.
	Volatility float64
	// Reversion is the per-step pull back toward the spot base, in
	// (0, 1]; low values let excursions persist.
	Reversion float64
	// PreemptPerHour is the base preemption hazard per spot VM-hour
	// when the price sits at its base; the generator scales it with
	// the squared price/base ratio (expensive ⇒ contended ⇒ reclaimed).
	PreemptPerHour float64
	// DegradePerHour is the hazard of a node health downgrade per
	// VM-hour (any purchase model — hardware does not care).
	DegradePerHour float64
	// DegradeMean is the mean seconds a degraded node stays slow
	// before recovering.
	DegradeMean float64
	// SlowFactor multiplies task durations on a degraded node (≥ 1).
	SlowFactor float64
}

// Regimes returns the built-in market regimes, calmest first.
func Regimes() []Regime {
	return []Regime{
		{Name: "stable", Volatility: 0.05, Reversion: 0.5,
			PreemptPerHour: 0.05, DegradePerHour: 0.02, DegradeMean: 120, SlowFactor: 1.5},
		{Name: "volatile", Volatility: 0.25, Reversion: 0.3,
			PreemptPerHour: 0.6, DegradePerHour: 0.12, DegradeMean: 180, SlowFactor: 2.0},
		{Name: "hostile", Volatility: 0.45, Reversion: 0.2,
			PreemptPerHour: 2.5, DegradePerHour: 0.35, DegradeMean: 240, SlowFactor: 2.5},
	}
}

// RegimeByName looks up a built-in regime.
func RegimeByName(name string) (Regime, bool) {
	for _, r := range Regimes() {
		if r.Name == name {
			return r, true
		}
	}
	return Regime{}, false
}
