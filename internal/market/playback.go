package market

import (
	"fmt"
	"math"
	"os"
	"sort"
)

// Playback replays one trace deterministically: price lookups, per-VM
// billing integrals and the event schedule the simulator and exec
// master consume. A Playback is immutable after construction and safe
// for concurrent readers.
type Playback struct {
	trace *Trace
	cat   *Catalogue

	byVM   map[int]VMAssign
	series map[seriesKey]*PriceSeries
	killAt map[int]float64 // vm → traced kill time
}

type seriesKey struct{ provider, typ string }

// NewPlayback validates the trace against the catalogue and indexes it
// for replay. Every assigned (provider, type) must be priced by the
// catalogue; spot assignments must also have a traced price series.
func NewPlayback(t *Trace, cat *Catalogue) (*Playback, error) {
	if t == nil {
		return nil, fmt.Errorf("market: nil trace")
	}
	if cat == nil {
		cat = DefaultCatalogue()
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	p := &Playback{
		trace:  t,
		cat:    cat,
		byVM:   make(map[int]VMAssign, len(t.Assign)),
		series: make(map[seriesKey]*PriceSeries, len(t.Prices)),
		killAt: make(map[int]float64),
	}
	for i := range t.Prices {
		s := &t.Prices[i]
		p.series[seriesKey{s.Provider, s.Type}] = s
	}
	for _, a := range t.Assign {
		if _, ok := cat.Find(a.Provider, a.Type); !ok {
			return nil, fmt.Errorf("market: trace assigns vm %d to unpriced %s/%s", a.VM, a.Provider, a.Type)
		}
		if a.Spot {
			if _, ok := p.series[seriesKey{a.Provider, a.Type}]; !ok {
				return nil, fmt.Errorf("market: spot vm %d has no price series for %s/%s", a.VM, a.Provider, a.Type)
			}
		}
		p.byVM[a.VM] = a
	}
	for _, e := range t.Events {
		if e.Kind == EvKill {
			p.killAt[e.VM] = e.At
		}
	}
	return p, nil
}

// LoadPlayback decodes a trace file and wraps it in a Playback against
// the catalogue (nil = DefaultCatalogue).
func LoadPlayback(path string, cat *Catalogue) (*Playback, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	t, err := Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return NewPlayback(t, cat)
}

// Trace returns the replayed trace.
func (p *Playback) Trace() *Trace { return p.trace }

// Catalogue returns the catalogue prices are resolved against.
func (p *Playback) Catalogue() *Catalogue { return p.cat }

// Events returns the trace's time-sorted lifecycle events.
func (p *Playback) Events() []VMEvent { return p.trace.Events }

// Horizon returns the trace horizon in virtual seconds.
func (p *Playback) Horizon() float64 { return p.trace.Horizon }

// AssignFor returns the provider assignment of a VM, if traced.
func (p *Playback) AssignFor(vmID int) (VMAssign, bool) {
	a, ok := p.byVM[vmID]
	return a, ok
}

// KillAt returns the traced kill time of a VM, or (0, false) when the
// trace never kills it.
func (p *Playback) KillAt(vmID int) (float64, bool) {
	at, ok := p.killAt[vmID]
	return at, ok
}

// Offer returns the catalogue offer behind a VM's assignment.
func (p *Playback) Offer(vmID int) (Offer, bool) {
	a, ok := p.byVM[vmID]
	if !ok {
		return Offer{}, false
	}
	return p.cat.Find(a.Provider, a.Type)
}

// PriceAt returns the hourly price of (provider, typ) at time t: the
// traced spot step price when spot is true, the offer's on-demand
// price otherwise. Unpriced pairs return 0.
func (p *Playback) PriceAt(provider, typ string, spot bool, t float64) float64 {
	if !spot {
		o, ok := p.cat.Find(provider, typ)
		if !ok {
			return 0
		}
		return o.OnDemand
	}
	s, ok := p.series[seriesKey{provider, typ}]
	if !ok {
		return 0
	}
	return stepAt(s.Points, t)
}

// CostBetween integrates the hourly price of (provider, typ) over
// [from, to] seconds: the per-second billing a traced run pays. Spot
// pairs integrate the step series; on-demand pairs bill flat.
func (p *Playback) CostBetween(provider, typ string, spot bool, from, to float64) float64 {
	if to <= from {
		return 0
	}
	if !spot {
		o, ok := p.cat.Find(provider, typ)
		if !ok {
			return 0
		}
		return (to - from) * o.OnDemand / 3600
	}
	s, ok := p.series[seriesKey{provider, typ}]
	if !ok {
		return 0
	}
	return integrateStep(s.Points, from, to) / 3600
}

// integrateStep integrates a step series over [from, to] (price ×
// seconds).
func integrateStep(points []PricePoint, from, to float64) float64 {
	if len(points) == 0 || to <= from {
		return 0
	}
	var sum float64
	// Segment i covers [points[i].At, points[i+1].At); the last segment
	// extends to +inf. Times before the first point use its price.
	for i := range points {
		segStart := points[i].At
		if i == 0 {
			segStart = math.Inf(-1)
		}
		segEnd := math.Inf(1)
		if i+1 < len(points) {
			segEnd = points[i+1].At
		}
		lo := math.Max(from, segStart)
		hi := math.Min(to, segEnd)
		if hi > lo {
			sum += (hi - lo) * points[i].Price
		}
	}
	return sum
}

// VMCost bills one traced VM over [from, to]: the billing window is
// clipped at the VM's traced kill time (a preempted instance stops
// billing when it dies). Untraced VMs cost 0 — callers bill
// replacements through ReplacementCost.
func (p *Playback) VMCost(vmID int, from, to float64) float64 {
	a, ok := p.byVM[vmID]
	if !ok {
		return 0
	}
	if kill, dead := p.killAt[vmID]; dead && kill < to {
		to = kill
	}
	return p.CostBetween(a.Provider, a.Type, a.Spot, from, to)
}

// ReplacementCost bills an on-demand replacement of the given offer
// over [from, to] — remediation buys reliability at the fixed price.
func (p *Playback) ReplacementCost(provider, typ string, from, to float64) float64 {
	return p.CostBetween(provider, typ, false, from, to)
}

// ProviderCost is one provider's share of a run's bill.
type ProviderCost struct {
	Provider string
	Cost     float64
}

// CostReport aggregates a run's market bill.
type CostReport struct {
	// Total is the run's dollar cost over the traced prices.
	Total float64
	// ByProvider splits Total per provider, sorted by provider name.
	ByProvider []ProviderCost
}

// Add accrues cost against a provider.
func (r *CostReport) Add(provider string, cost float64) {
	r.Total += cost
	for i := range r.ByProvider {
		if r.ByProvider[i].Provider == provider {
			r.ByProvider[i].Cost += cost
			return
		}
	}
	r.ByProvider = append(r.ByProvider, ProviderCost{Provider: provider, Cost: cost})
	sort.Slice(r.ByProvider, func(i, j int) bool {
		return r.ByProvider[i].Provider < r.ByProvider[j].Provider
	})
}

// FleetCost bills every traced VM from time 0 to end (each clipped at
// its kill time), in VM-id order so float accumulation is
// deterministic.
func (p *Playback) FleetCost(end float64) CostReport {
	var rep CostReport
	for _, a := range p.trace.Assign {
		c := p.VMCost(a.VM, 0, end)
		if c != 0 {
			rep.Add(a.Provider, c)
		}
	}
	return rep
}
