package market

import (
	"bytes"
	"math"
	"reflect"
	"strings"
	"testing"

	"reassign/internal/cloud"
)

func testFleet(t *testing.T) *cloud.Fleet {
	t.Helper()
	f, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestDefaultCatalogue(t *testing.T) {
	c := DefaultCatalogue()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	provs := c.Providers()
	if len(provs) != 3 {
		t.Fatalf("want 3 providers, got %v", provs)
	}
	for _, typ := range cloud.Types() {
		for _, p := range provs {
			o, ok := c.Find(p, typ.Name)
			if !ok {
				t.Fatalf("no offer for %s/%s", p, typ.Name)
			}
			if o.SpotBase >= o.OnDemand {
				t.Fatalf("%s/%s spot base %.4f not below on-demand %.4f", p, typ.Name, o.SpotBase, o.OnDemand)
			}
		}
	}
}

func TestRegimeByName(t *testing.T) {
	for _, r := range Regimes() {
		got, ok := RegimeByName(r.Name)
		if !ok || got.Name != r.Name {
			t.Fatalf("RegimeByName(%q) = %+v, %v", r.Name, got, ok)
		}
	}
	if _, ok := RegimeByName("nope"); ok {
		t.Fatal("unknown regime resolved")
	}
}

func genTrace(t *testing.T, regime string, seed int64) *Trace {
	t.Helper()
	r, ok := RegimeByName(regime)
	if !ok {
		t.Fatalf("unknown regime %q", regime)
	}
	tr, err := Generate(DefaultCatalogue(), testFleet(t), r, seed, 3600)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func encode(t *testing.T, tr *Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestGenerateDeterministic(t *testing.T) {
	for _, regime := range []string{"stable", "volatile", "hostile"} {
		a := encode(t, genTrace(t, regime, 42))
		b := encode(t, genTrace(t, regime, 42))
		if !bytes.Equal(a, b) {
			t.Fatalf("regime %s: two generations with the same seed differ", regime)
		}
		c := encode(t, genTrace(t, regime, 43))
		if bytes.Equal(a, c) {
			t.Fatalf("regime %s: different seeds produced identical traces", regime)
		}
	}
}

func TestTraceRoundTrip(t *testing.T) {
	tr := genTrace(t, "hostile", 7)
	enc := encode(t, tr)
	dec, err := Decode(bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr, dec) {
		t.Fatal("decoded trace differs from the original")
	}
	if !bytes.Equal(enc, encode(t, dec)) {
		t.Fatal("re-encoded trace is not byte-identical")
	}
}

// TestMarketPlaybackBitIdentical is the playback determinism contract:
// the same trace bytes yield identical prices, billing integrals and
// event schedules across independent playbacks.
func TestMarketPlaybackBitIdentical(t *testing.T) {
	enc := encode(t, genTrace(t, "volatile", 99))
	load := func() *Playback {
		tr, err := Decode(bytes.NewReader(enc))
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewPlayback(tr, DefaultCatalogue())
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	p1, p2 := load(), load()
	if !reflect.DeepEqual(p1.Events(), p2.Events()) {
		t.Fatal("event schedules differ")
	}
	for _, a := range p1.Trace().Assign {
		for ts := 0.0; ts <= p1.Horizon(); ts += 37.5 {
			if v1, v2 := p1.PriceAt(a.Provider, a.Type, a.Spot, ts), p2.PriceAt(a.Provider, a.Type, a.Spot, ts); v1 != v2 {
				t.Fatalf("vm %d price at %g differs: %v vs %v", a.VM, ts, v1, v2)
			}
			if c1, c2 := p1.VMCost(a.VM, 0, ts), p2.VMCost(a.VM, 0, ts); c1 != c2 {
				t.Fatalf("vm %d cost to %g differs: %v vs %v", a.VM, ts, c1, c2)
			}
		}
	}
	r1, r2 := p1.FleetCost(1800), p2.FleetCost(1800)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("fleet cost reports differ: %+v vs %+v", r1, r2)
	}
}

func TestCostMonotoneAndNonNegative(t *testing.T) {
	tr := genTrace(t, "hostile", 5)
	p, err := NewPlayback(tr, DefaultCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	prev := 0.0
	for ts := 0.0; ts <= p.Horizon(); ts += 60 {
		rep := p.FleetCost(ts)
		if rep.Total < 0 {
			t.Fatalf("negative cost %v at %g", rep.Total, ts)
		}
		if rep.Total < prev {
			t.Fatalf("cost not monotone: %v at %g after %v", rep.Total, ts, prev)
		}
		prev = rep.Total
		var sum float64
		for _, pc := range rep.ByProvider {
			if pc.Cost < 0 {
				t.Fatalf("provider %s negative cost %v", pc.Provider, pc.Cost)
			}
			sum += pc.Cost
		}
		if math.Abs(sum-rep.Total) > 1e-9 {
			t.Fatalf("provider split %v does not sum to total %v", sum, rep.Total)
		}
	}
}

func TestKillClipsBilling(t *testing.T) {
	// Hostile regime over a long horizon guarantees at least one kill
	// across seeds; assert billing stops at the traced kill time.
	tr := genTrace(t, "hostile", 11)
	p, err := NewPlayback(tr, DefaultCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, a := range tr.Assign {
		kill, dead := p.KillAt(a.VM)
		if !dead {
			continue
		}
		found = true
		at := p.VMCost(a.VM, 0, kill)
		after := p.VMCost(a.VM, 0, kill+600)
		if after != at {
			t.Fatalf("vm %d billed past its kill: %v then %v", a.VM, at, after)
		}
	}
	if !found {
		t.Skip("no kill drawn for this seed; adjust the seed if this starts skipping")
	}
}

func TestIntegrateStep(t *testing.T) {
	pts := []PricePoint{{At: 0, Price: 2}, {At: 10, Price: 4}}
	if got := integrateStep(pts, 0, 10); got != 20 {
		t.Fatalf("first segment: got %v want 20", got)
	}
	if got := integrateStep(pts, 5, 15); got != 2*5+4*5 {
		t.Fatalf("straddle: got %v want 30", got)
	}
	if got := integrateStep(pts, -5, 5); got != 2*10 {
		t.Fatalf("before first point: got %v want 20", got)
	}
	if got := integrateStep(pts, 12, 12); got != 0 {
		t.Fatalf("empty window: got %v want 0", got)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Trace { return genTrace(t, "stable", 1) }
	cases := []struct {
		name   string
		mutate func(*Trace)
	}{
		{"bad-version", func(tr *Trace) { tr.Version = 9 }},
		{"bad-horizon", func(tr *Trace) { tr.Horizon = -1 }},
		{"unsorted-assign", func(tr *Trace) {
			if len(tr.Assign) < 2 {
				t.Skip("need 2 assigns")
			}
			tr.Assign[0], tr.Assign[1] = tr.Assign[1], tr.Assign[0]
		}},
		{"kill-without-notice", func(tr *Trace) {
			tr.Events = []VMEvent{{VM: 0, Kind: EvKill, At: 5}}
		}},
		{"notice-kill-backwards", func(tr *Trace) {
			tr.Events = []VMEvent{{VM: 0, Kind: EvNotice, At: 10, KillAt: 5},
				{VM: 0, Kind: EvKill, At: 5}}
		}},
		{"degrade-below-one", func(tr *Trace) {
			tr.Events = []VMEvent{{VM: 0, Kind: EvDegrade, At: 5, Slow: 0.5}}
		}},
		{"unknown-kind", func(tr *Trace) {
			tr.Events = []VMEvent{{VM: 0, Kind: "explode", At: 5}}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := base()
			tc.mutate(tr)
			if err := tr.Validate(); err == nil {
				t.Fatal("validation accepted a corrupt trace")
			}
		})
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "{", "[]", `{"version":1}`, `{"version":1,"horizon":0}`} {
		if _, err := Decode(strings.NewReader(s)); err == nil {
			t.Fatalf("Decode(%q) accepted garbage", s)
		}
	}
}
