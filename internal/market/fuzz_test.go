package market

import (
	"bytes"
	"reflect"
	"testing"

	"reassign/internal/cloud"
)

// FuzzMarketTrace throws arbitrary bytes at the trace decoder. Inputs
// must either be rejected with an error or decode to a valid trace
// that round-trips: Encode followed by Decode reproduces the trace and
// the re-encoded bytes exactly. The decoder must never panic, and
// every accepted trace must build a usable Playback whose fleet cost
// stays finite, non-negative and monotone over the horizon.
func FuzzMarketTrace(f *testing.F) {
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		f.Fatal(err)
	}
	for _, r := range Regimes() {
		tr, err := Generate(DefaultCatalogue(), fleet, r, 42, 1800)
		if err != nil {
			f.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
	}
	f.Add([]byte(`{"version":1,"horizon":10}`))
	f.Add([]byte(`{"version":1,"horizon":10,"events":[{"vm":0,"kind":"kill","at":5}]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Decode(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		var buf bytes.Buffer
		if err := tr.Encode(&buf); err != nil {
			t.Fatalf("Encode failed on a trace Decode accepted: %v", err)
		}
		tr2, err := Decode(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("Decode rejected its own Encode output: %v", err)
		}
		if !reflect.DeepEqual(tr, tr2) {
			t.Fatal("round trip changed the trace")
		}
		var buf2 bytes.Buffer
		if err := tr2.Encode(&buf2); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("re-encoding is not byte-stable")
		}
		pb, err := NewPlayback(tr, DefaultCatalogue())
		if err != nil {
			return // decoded but unplayable (e.g. unpriced pair) is fine
		}
		prev := 0.0
		steps := 8
		for i := 0; i <= steps; i++ {
			end := tr.Horizon * float64(i) / float64(steps)
			rep := pb.FleetCost(end)
			if rep.Total < 0 || rep.Total != rep.Total {
				t.Fatalf("fleet cost %v at %g is negative or NaN", rep.Total, end)
			}
			if rep.Total < prev {
				t.Fatalf("fleet cost not monotone: %v at %g after %v", rep.Total, end, prev)
			}
			prev = rep.Total
		}
	})
}
