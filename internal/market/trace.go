package market

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"reassign/internal/cloud"
)

// TraceVersion is the trace file schema version this package writes.
const TraceVersion = 1

// EventKind classifies one VM lifecycle event in a trace.
type EventKind string

const (
	// EvNotice is a preemption notice: the VM will be killed at KillAt.
	EvNotice EventKind = "notice"
	// EvKill is the preemption itself; it always follows a notice for
	// the same VM, NoticeLead seconds later.
	EvKill EventKind = "kill"
	// EvDegrade downgrades node health: tasks run Slow times slower.
	EvDegrade EventKind = "degrade"
	// EvRecover restores a degraded node to full speed.
	EvRecover EventKind = "recover"
)

// PricePoint is one step of a spot price series: Price holds from At
// until the next point.
type PricePoint struct {
	At    float64 `json:"at"`
	Price float64 `json:"price"`
}

// PriceSeries is the traced spot price of one (provider, type) pair.
type PriceSeries struct {
	Provider string       `json:"provider"`
	Type     string       `json:"type"`
	Points   []PricePoint `json:"points"`
}

// VMAssign binds one fleet VM to a provider and purchase model.
type VMAssign struct {
	VM       int    `json:"vm"`
	Provider string `json:"provider"`
	Type     string `json:"type"`
	// Spot marks the VM preemptible; on-demand VMs are never killed
	// and bill at the offer's on-demand rate.
	Spot bool `json:"spot"`
}

// VMEvent is one scheduled lifecycle event for a traced VM.
type VMEvent struct {
	VM   int       `json:"vm"`
	Kind EventKind `json:"kind"`
	At   float64   `json:"at"`
	// KillAt is set on notice events: when the kill will land.
	KillAt float64 `json:"killAt,omitempty"`
	// Slow is set on degrade events: the task-duration multiplier.
	Slow float64 `json:"slow,omitempty"`
}

// Trace is one generated market history: per-pair price series plus
// per-VM assignments and lifecycle events, replayable bit-identically.
type Trace struct {
	Version int     `json:"version"`
	Regime  string  `json:"regime"`
	Seed    int64   `json:"seed"`
	Horizon float64 `json:"horizon"`
	// PriceStep is the seconds between price-walk steps.
	PriceStep float64       `json:"priceStep"`
	Prices    []PriceSeries `json:"prices"`
	Assign    []VMAssign    `json:"assign"`
	Events    []VMEvent     `json:"events"`
}

// priceSteps is the number of price-walk steps per series.
const priceSteps = 64

// Generate draws a seeded market trace for the fleet under the regime:
// every VM is assigned a provider round-robin (by VM index over the
// catalogue's sorted providers), the lowest-ID VM is kept on-demand so
// a fully-spot fleet cannot be stranded, spot prices random-walk with
// mean reversion around each offer's SpotBase, preemptions are drawn
// from a price-modulated hazard (notice at t, kill NoticeLead later),
// and node health degradations slow VMs of any purchase model.
//
// The rng is split deterministically: prices, then per-VM lifecycles
// in VM order, so the trace is bit-identical for a fixed seed
// regardless of fleet iteration details.
func Generate(cat *Catalogue, fleet *cloud.Fleet, regime Regime, seed int64, horizon float64) (*Trace, error) {
	if cat == nil {
		return nil, fmt.Errorf("market: nil catalogue")
	}
	if err := cat.Validate(); err != nil {
		return nil, err
	}
	if fleet == nil || fleet.Len() == 0 {
		return nil, fmt.Errorf("market: empty fleet")
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("market: horizon must be positive, got %g", horizon)
	}
	if regime.SlowFactor < 1 {
		return nil, fmt.Errorf("market: regime %q SlowFactor %g below 1", regime.Name, regime.SlowFactor)
	}
	providers := cat.Providers()
	if len(providers) == 0 {
		return nil, fmt.Errorf("market: catalogue has no providers")
	}
	tr := &Trace{
		Version:   TraceVersion,
		Regime:    regime.Name,
		Seed:      seed,
		Horizon:   horizon,
		PriceStep: horizon / priceSteps,
	}

	// Assignments: round-robin providers over VMs in fleet order; the
	// lowest-ID VM stays on-demand.
	minID := fleet.VMs[0].ID
	for _, vm := range fleet.VMs {
		if vm.ID < minID {
			minID = vm.ID
		}
	}
	type pair struct{ provider, typ string }
	seen := make(map[pair]bool)
	var pairs []pair
	for i, vm := range fleet.VMs {
		p := providers[i%len(providers)]
		if _, ok := cat.Find(p, vm.Type.Name); !ok {
			return nil, fmt.Errorf("market: no offer for %s/%s", p, vm.Type.Name)
		}
		tr.Assign = append(tr.Assign, VMAssign{
			VM: vm.ID, Provider: p, Type: vm.Type.Name, Spot: vm.ID != minID,
		})
		if k := (pair{p, vm.Type.Name}); !seen[k] {
			seen[k] = true
			pairs = append(pairs, k)
		}
	}
	sort.Slice(tr.Assign, func(i, j int) bool { return tr.Assign[i].VM < tr.Assign[j].VM })
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].provider != pairs[j].provider {
			return pairs[i].provider < pairs[j].provider
		}
		return pairs[i].typ < pairs[j].typ
	})

	// Price walks: one rng stream per pair, split up front so adding a
	// pair never reshuffles another pair's draws.
	src := rand.New(rand.NewSource(seed))
	for _, k := range pairs {
		o, _ := cat.Find(k.provider, k.typ)
		rng := rand.New(rand.NewSource(src.Int63()))
		ps := PriceSeries{Provider: k.provider, Type: k.typ}
		price := o.SpotBase
		for s := 0; s < priceSteps; s++ {
			at := float64(s) * tr.PriceStep
			if s > 0 {
				step := rng.NormFloat64() * regime.Volatility * o.SpotBase
				price += step + regime.Reversion*(o.SpotBase-price)
				// Spot never beats 10% of base and never exceeds
				// on-demand (nobody pays more than the fixed price).
				price = math.Min(math.Max(price, 0.1*o.SpotBase), o.OnDemand)
			}
			ps.Points = append(ps.Points, PricePoint{At: round6(at), Price: round6(price)})
		}
		tr.Prices = append(tr.Prices, ps)
	}

	// Per-VM lifecycle: preemption (spot only, price-modulated hazard
	// by thinning) and health degradation, one rng stream per VM.
	for _, as := range tr.Assign {
		rng := rand.New(rand.NewSource(src.Int63()))
		o, _ := cat.Find(as.Provider, as.Type)
		if as.Spot && regime.PreemptPerHour > 0 {
			// Thinning against the max hazard: price ≤ on-demand, so
			// the ratio (price/base)² is bounded by (od/base)².
			maxRatio := (o.OnDemand / o.SpotBase) * (o.OnDemand / o.SpotBase)
			maxHazard := regime.PreemptPerHour / 3600 * maxRatio
			t := 0.0
			for {
				t += rng.ExpFloat64() / maxHazard
				if t >= horizon {
					break
				}
				price := priceAt(tr.Prices, as.Provider, as.Type, t)
				ratio := price / o.SpotBase
				if rng.Float64() < ratio*ratio/maxRatio {
					notice := round6(t)
					kill := round6(t + o.NoticeLead)
					tr.Events = append(tr.Events,
						VMEvent{VM: as.VM, Kind: EvNotice, At: notice, KillAt: kill},
						VMEvent{VM: as.VM, Kind: EvKill, At: kill})
					break // a VM is preempted at most once and never returns
				}
			}
		}
		if regime.DegradePerHour > 0 {
			at := rng.ExpFloat64() / (regime.DegradePerHour / 3600)
			if at < horizon {
				dur := rng.ExpFloat64() * regime.DegradeMean
				tr.Events = append(tr.Events,
					VMEvent{VM: as.VM, Kind: EvDegrade, At: round6(at), Slow: round6(regime.SlowFactor)})
				if end := at + dur; end < horizon {
					tr.Events = append(tr.Events, VMEvent{VM: as.VM, Kind: EvRecover, At: round6(end)})
				}
			}
		}
	}
	sortEvents(tr.Events)
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("market: generated invalid trace: %w", err)
	}
	return tr, nil
}

// round6 snaps a time or price to microsecond/micro-dollar precision
// so traced values survive a JSON round trip bit-identically and read
// cleanly in the file.
func round6(x float64) float64 { return math.Round(x*1e6) / 1e6 }

// eventRank orders same-time events deterministically: a kill lands
// after any notice/degrade at the same instant.
func eventRank(k EventKind) int {
	switch k {
	case EvNotice:
		return 0
	case EvDegrade:
		return 1
	case EvRecover:
		return 2
	case EvKill:
		return 3
	}
	return 4
}

func sortEvents(evs []VMEvent) {
	sort.Slice(evs, func(i, j int) bool {
		a, b := evs[i], evs[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if ra, rb := eventRank(a.Kind), eventRank(b.Kind); ra != rb {
			return ra < rb
		}
		return a.VM < b.VM
	})
}

// priceAt evaluates the step series for (provider, typ) at time t.
func priceAt(series []PriceSeries, provider, typ string, t float64) float64 {
	for i := range series {
		s := &series[i]
		if s.Provider != provider || s.Type != typ {
			continue
		}
		return stepAt(s.Points, t)
	}
	return 0
}

// stepAt evaluates a step function: the price at or before t (the
// first price for t before the first point).
func stepAt(points []PricePoint, t float64) float64 {
	if len(points) == 0 {
		return 0
	}
	i := sort.Search(len(points), func(i int) bool { return points[i].At > t })
	if i == 0 {
		return points[0].Price
	}
	return points[i-1].Price
}

// Encode writes the trace as indented JSON. Encoding is deterministic:
// the same Trace always yields the same bytes.
func (t *Trace) Encode(w io.Writer) error {
	b, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return fmt.Errorf("market: encode: %w", err)
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Decode reads and validates a trace.
func Decode(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("market: decode: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Validate checks the structural invariants replay depends on: sane
// header fields, price series sorted by (provider, type) with
// time-sorted non-negative points, assignments sorted by unique VM id,
// events time-sorted with every kill announced by a matching notice
// exactly NoticeLead-style ahead (KillAt == kill time), and degrade
// factors ≥ 1.
func (t *Trace) Validate() error {
	if t.Version != TraceVersion {
		return fmt.Errorf("market: unsupported trace version %d (want %d)", t.Version, TraceVersion)
	}
	if t.Horizon <= 0 || math.IsNaN(t.Horizon) || math.IsInf(t.Horizon, 0) {
		return fmt.Errorf("market: horizon must be positive and finite, got %g", t.Horizon)
	}
	if t.PriceStep < 0 || math.IsNaN(t.PriceStep) || math.IsInf(t.PriceStep, 0) {
		return fmt.Errorf("market: negative or non-finite price step %g", t.PriceStep)
	}
	for i, s := range t.Prices {
		if s.Provider == "" || s.Type == "" {
			return fmt.Errorf("market: price series %d missing provider or type", i)
		}
		if i > 0 {
			p := t.Prices[i-1]
			if p.Provider > s.Provider || (p.Provider == s.Provider && p.Type >= s.Type) {
				return fmt.Errorf("market: price series not sorted by (provider, type) at %d", i)
			}
		}
		if len(s.Points) == 0 {
			return fmt.Errorf("market: price series %s/%s has no points", s.Provider, s.Type)
		}
		for j, pt := range s.Points {
			if pt.Price < 0 || math.IsNaN(pt.Price) || math.IsInf(pt.Price, 0) {
				return fmt.Errorf("market: %s/%s point %d has bad price %g", s.Provider, s.Type, j, pt.Price)
			}
			if math.IsNaN(pt.At) || math.IsInf(pt.At, 0) || pt.At < 0 {
				return fmt.Errorf("market: %s/%s point %d has bad time %g", s.Provider, s.Type, j, pt.At)
			}
			if j > 0 && s.Points[j-1].At >= pt.At {
				return fmt.Errorf("market: %s/%s points not strictly time-sorted at %d", s.Provider, s.Type, j)
			}
		}
	}
	for i, a := range t.Assign {
		if a.Provider == "" || a.Type == "" {
			return fmt.Errorf("market: assignment %d missing provider or type", i)
		}
		if i > 0 && t.Assign[i-1].VM >= a.VM {
			return fmt.Errorf("market: assignments not sorted by unique VM id at %d", i)
		}
	}
	killAt := make(map[int]float64) // vm → announced kill time
	killed := make(map[int]bool)
	for i, e := range t.Events {
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return fmt.Errorf("market: event %d has bad time %g", i, e.At)
		}
		if i > 0 {
			p := t.Events[i-1]
			if p.At > e.At {
				return fmt.Errorf("market: events not time-sorted at %d", i)
			}
			if p.At == e.At {
				if ra, rb := eventRank(p.Kind), eventRank(e.Kind); ra > rb ||
					(ra == rb && p.VM >= e.VM) {
					return fmt.Errorf("market: same-time events not in (rank, vm) order at %d", i)
				}
			}
		}
		switch e.Kind {
		case EvNotice:
			if e.KillAt < e.At || math.IsNaN(e.KillAt) || math.IsInf(e.KillAt, 0) {
				return fmt.Errorf("market: vm %d notice at %g with kill at %g", e.VM, e.At, e.KillAt)
			}
			if _, dup := killAt[e.VM]; dup || killed[e.VM] {
				return fmt.Errorf("market: vm %d noticed twice", e.VM)
			}
			killAt[e.VM] = e.KillAt
		case EvKill:
			at, ok := killAt[e.VM]
			if !ok {
				return fmt.Errorf("market: vm %d killed at %g without a notice", e.VM, e.At)
			}
			if at != e.At {
				return fmt.Errorf("market: vm %d killed at %g but notice announced %g", e.VM, e.At, at)
			}
			delete(killAt, e.VM)
			killed[e.VM] = true
		case EvDegrade:
			if e.Slow < 1 || math.IsNaN(e.Slow) || math.IsInf(e.Slow, 0) {
				return fmt.Errorf("market: vm %d degrade with factor %g below 1", e.VM, e.Slow)
			}
		case EvRecover:
			// No payload to check.
		default:
			return fmt.Errorf("market: event %d has unknown kind %q", i, e.Kind)
		}
	}
	for vm, at := range killAt {
		if at <= t.Horizon {
			return fmt.Errorf("market: vm %d notice announces kill at %g but no kill event follows", vm, at)
		}
	}
	return nil
}
