package sim

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"reassign/internal/cloud"
	"reassign/internal/dag"
)

// Rebind re-targets a pooled engine at a new problem: workflow, fleet,
// scheduler and configuration all change, unlike Reset, which re-arms
// the same problem. Shape-dependent state (task and VM backing, event
// closures, the estimator's memo) is dropped and reallocated by the
// next Run's setup, while the DES kernel — whose event freelist is
// shape-independent — and the rng are kept, so a long-lived engine
// serving many jobs stops paying the kernel's warm-up allocations.
//
// A rebound run is bit-identical to a fresh engine's run of the same
// problem: setup re-seeds the kept rng (the identical stream) and
// only the kernel's freelist hit counters can differ.
func (g *Engine) Rebind(w *dag.Workflow, fleet *cloud.Fleet, sched Scheduler, cfg Config) error {
	if w == nil {
		return fmt.Errorf("sim: nil workflow")
	}
	if sched == nil {
		return fmt.Errorf("sim: nil scheduler")
	}
	if err := w.Validate(); err != nil {
		return fmt.Errorf("sim: %w", err)
	}
	if fleet == nil || fleet.Len() == 0 {
		return fmt.Errorf("sim: empty fleet")
	}
	if err := validateConfig(cfg); err != nil {
		return err
	}
	g.w, g.fleet, g.sched, g.cfg = w, fleet, sched, cfg

	// Drop everything sized by (or pointing into) the previous
	// problem. setup reallocates on the next Run.
	g.env = nil
	g.tasks = nil
	g.ready = nil
	g.vms = nil
	g.result = nil
	g.vmBacking = nil
	g.taskBacking = nil
	g.releaseFns = nil
	g.completeFns = nil
	g.resultBuf = Result{}
	g.recBuf = nil
	g.perVMBuf = nil
	g.ctx = Context{}
	g.ctxReady = nil
	g.ctxIdle = nil
	g.sorter = readySorter{}
	g.cycleFn = nil
	g.remaining = 0
	g.anyFailed = false
	g.cyclePosted = false
	g.scaler = nil
	g.peakBooted = 0
	g.hook = nil
	g.abortBuf = nil
	g.running = nil
	g.fileHome = nil

	// Keep the kernel object and its event freelist; rng is re-seeded
	// by setup.
	g.sim.Reset()
	return nil
}

// Pool is a free list of simulation engines shared across runs and
// problems — the service-side companion of Engine.Reset. A long-
// running daemon acquires an engine per job (rebinding a pooled one
// when available, constructing otherwise) and returns it afterwards;
// under steady load the DES kernels stay warm instead of being
// rebuilt per request. Unlike sync.Pool, idle engines are never
// dropped at random, so reuse (and the reuse counters the daemon
// exports) is deterministic. The list is bounded by maxIdle; beyond
// it Put discards. All methods are safe for concurrent use.
type Pool struct {
	mu      sync.Mutex
	idle    []*Engine
	maxIdle int
	reused  atomic.Int64
	fresh   atomic.Int64
}

// NewPool returns an empty engine pool holding at most GOMAXPROCS*2
// idle engines.
func NewPool() *Pool { return &Pool{maxIdle: runtime.GOMAXPROCS(0) * 2} }

// Acquire returns an engine bound to the given problem: a pooled
// engine rebound via Rebind when one is available, a fresh NewEngine
// otherwise. The caller runs it (Run, Reset, Run, …) and hands it
// back with Put.
func (p *Pool) Acquire(w *dag.Workflow, fleet *cloud.Fleet, sched Scheduler, cfg Config) (*Engine, error) {
	p.mu.Lock()
	var e *Engine
	if n := len(p.idle); n > 0 {
		e = p.idle[n-1]
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()
	if e != nil {
		if err := e.Rebind(w, fleet, sched, cfg); err != nil {
			// The engine is healthy — the inputs were bad. Keep it.
			p.Put(e)
			return nil, err
		}
		p.reused.Add(1)
		return e, nil
	}
	e, err := NewEngine(w, fleet, sched, cfg)
	if err != nil {
		return nil, err
	}
	p.fresh.Add(1)
	return e, nil
}

// Put returns an engine to the pool. The engine's last Result (and
// everything borrowing its buffers) must no longer be referenced: the
// next Acquire hands the buffers to another job.
func (p *Pool) Put(e *Engine) {
	if e == nil {
		return
	}
	p.mu.Lock()
	if len(p.idle) < p.maxIdle {
		p.idle = append(p.idle, e)
	}
	p.mu.Unlock()
}

// Stats reports how many Acquires were served by rebinding a pooled
// engine (reused) versus constructing a new one (fresh).
func (p *Pool) Stats() (reused, fresh int64) {
	return p.reused.Load(), p.fresh.Load()
}
