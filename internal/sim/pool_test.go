package sim

import (
	"math/rand"
	"reflect"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/trace"
)

// TestRebindMatchesFresh drives one engine through a chain of
// different problems via Rebind and checks each run is bit-identical
// to a fresh engine's run of the same problem.
func TestRebindMatchesFresh(t *testing.T) {
	fleet16, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	fleet32, err := cloud.FleetTable1(32)
	if err != nil {
		t.Fatal(err)
	}
	fm := cloud.DefaultFluctuation()
	cases := []struct {
		name  string
		w     *dag.Workflow
		fleet *cloud.Fleet
		cfg   Config
	}{
		{"montage30-16", trace.MontageN(rand.New(rand.NewSource(30)), 30), fleet16, Config{Seed: 7}},
		{"montage80-32-fluct", trace.MontageN(rand.New(rand.NewSource(80)), 80), fleet32, Config{Seed: 11, Fluct: &fm}},
		{"cybershake40-16", trace.CyberShake(rand.New(rand.NewSource(40)), 40), fleet16, Config{Seed: 3, DataTransfer: true}},
	}

	var pooled *Engine
	for _, tc := range cases {
		fresh, err := Run(tc.w, tc.fleet, &greedyFirst{}, tc.cfg)
		if err != nil {
			t.Fatalf("%s: fresh: %v", tc.name, err)
		}

		// Same problem via the rebound engine; first iteration builds it.
		if pooled == nil {
			pooled, err = NewEngine(tc.w, tc.fleet, &greedyFirst{}, tc.cfg)
		} else {
			err = pooled.Rebind(tc.w, tc.fleet, &greedyFirst{}, tc.cfg)
		}
		if err != nil {
			t.Fatalf("%s: rebind: %v", tc.name, err)
		}
		got, err := pooled.Run()
		if err != nil {
			t.Fatalf("%s: pooled run: %v", tc.name, err)
		}

		if got.Makespan != fresh.Makespan {
			t.Errorf("%s: makespan %v != fresh %v", tc.name, got.Makespan, fresh.Makespan)
		}
		if got.Cost != fresh.Cost || got.BusyCost != fresh.BusyCost {
			t.Errorf("%s: cost mismatch: (%v,%v) != (%v,%v)",
				tc.name, got.Cost, got.BusyCost, fresh.Cost, fresh.BusyCost)
		}
		if !reflect.DeepEqual(got.Plan, fresh.Plan) {
			t.Errorf("%s: plan differs from fresh run", tc.name)
		}
		if len(got.Records) != len(fresh.Records) {
			t.Fatalf("%s: %d records != fresh %d", tc.name, len(got.Records), len(fresh.Records))
		}
		for i := range got.Records {
			if got.Records[i] != fresh.Records[i] {
				t.Errorf("%s: record %d differs: %+v != %+v",
					tc.name, i, got.Records[i], fresh.Records[i])
				break
			}
		}
	}
}

// TestPoolAcquireReuses checks the pool rebinds pooled engines and
// counts reuse.
func TestPoolAcquireReuses(t *testing.T) {
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool()
	w1 := trace.MontageN(rand.New(rand.NewSource(1)), 20)
	w2 := trace.MontageN(rand.New(rand.NewSource(2)), 35)

	e1, err := p.Acquire(w1, fleet, &greedyFirst{}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Run(); err != nil {
		t.Fatal(err)
	}
	p.Put(e1)

	e2, err := p.Acquire(w2, fleet, &greedyFirst{}, Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if e2 != e1 {
		t.Fatalf("expected pooled engine to be reused")
	}
	if _, err := e2.Run(); err != nil {
		t.Fatalf("rebound run: %v", err)
	}
	reused, fresh := p.Stats()
	if reused != 1 || fresh != 1 {
		t.Fatalf("stats reused=%d fresh=%d, want 1/1", reused, fresh)
	}
}
