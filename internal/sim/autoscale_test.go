package sim

import (
	"math"
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/trace"
)

// wideWorkflow builds n independent equal tasks.
func wideWorkflow(n int, rt float64) *dag.Workflow {
	w := dag.New("wide")
	for i := 0; i < n; i++ {
		w.MustAdd(string(rune('a'+i%26))+string(rune('0'+i/26)), "x", rt)
	}
	return w
}

func TestAutoscaleGrowsUnderBacklog(t *testing.T) {
	// 16 × 100s tasks on 1 initial slot: without elasticity that is
	// 1600s. With scale-out to 4 VMs it must be far faster.
	w := wideWorkflow(16, 100)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})

	base, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(base.Makespan-1600) > 1e-9 {
		t.Fatalf("static makespan = %v, want 1600", base.Makespan)
	}

	scaled, err := Run(w, fleet, &greedyFirst{}, Config{
		Autoscale: &Autoscale{
			Type:      cloud.T2Micro,
			MaxVMs:    4,
			BootDelay: 10,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Elasticity == nil {
		t.Fatal("no elasticity report")
	}
	if scaled.Elasticity.Acquired != 3 {
		t.Fatalf("acquired %d VMs, want 3", scaled.Elasticity.Acquired)
	}
	if scaled.Makespan >= base.Makespan/2 {
		t.Fatalf("scaled makespan %v not clearly below static %v", scaled.Makespan, base.Makespan)
	}
	if scaled.Elasticity.PeakVMs != 4 {
		t.Fatalf("peak VMs = %d, want 4", scaled.Elasticity.PeakVMs)
	}
	// Acquired VMs cost money.
	if scaled.Cost <= fleet.Cost(scaled.Makespan) {
		t.Fatalf("cost %v does not include acquired VMs (fleet alone %v)",
			scaled.Cost, fleet.Cost(scaled.Makespan))
	}
}

func TestAutoscaleRespectsMax(t *testing.T) {
	w := wideWorkflow(30, 50)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Autoscale: &Autoscale{Type: cloud.T2Micro, MaxVMs: 3, BootDelay: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elasticity.Acquired != 2 {
		t.Fatalf("acquired %d, want 2 (max 3 total)", res.Elasticity.Acquired)
	}
}

func TestAutoscaleReleasesIdleVMs(t *testing.T) {
	// A wide burst followed by a long serial tail: acquired VMs go
	// idle during the tail and must be released.
	w := dag.New("burst")
	prev := ""
	for i := 0; i < 4; i++ {
		id := "tail" + string(rune('0'+i))
		w.MustAdd(id, "tail", 100)
		if prev != "" {
			w.MustDep(prev, id)
		}
		prev = id
	}
	for i := 0; i < 8; i++ {
		id := string(rune('a' + i))
		w.MustAdd(id, "burst", 50)
		w.MustDep(id, "tail0")
	}
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Autoscale: &Autoscale{
			Type:        cloud.T2Micro,
			MaxVMs:      4,
			BootDelay:   5,
			IdleTimeout: 30,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elasticity.Acquired == 0 {
		t.Fatal("no VMs acquired during the burst")
	}
	if res.Elasticity.Released == 0 {
		t.Fatal("idle acquired VMs not released during the tail")
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
}

func TestAutoscalePinnedFleetNeverReleased(t *testing.T) {
	// Even with an aggressive idle timeout, the initial fleet stays.
	w := chain(10, 10, 10)
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Autoscale: &Autoscale{Type: cloud.T2Micro, MaxVMs: 2, IdleTimeout: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	// vm1 idles the whole chain but is pinned.
	if res.Elasticity.Released != 0 {
		t.Fatalf("released %d pinned VMs", res.Elasticity.Released)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
}

func TestAutoscaleValidation(t *testing.T) {
	w := chain(1)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	bad := []*Autoscale{
		{MaxVMs: -1},
		{MaxVMs: 2, BootDelay: -1, Type: cloud.T2Micro},
		{MaxVMs: 2, Type: cloud.VMType{Name: "broken", VCPUs: 0}},
	}
	for i, a := range bad {
		if _, err := Run(w, fleet, &greedyFirst{}, Config{Autoscale: a}); err == nil {
			t.Errorf("bad policy %d accepted", i)
		}
	}
	// MaxVMs 0 disables scale-out but is valid.
	res, err := Run(w, fleet, &greedyFirst{}, Config{Autoscale: &Autoscale{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elasticity.Acquired != 0 {
		t.Fatal("disabled policy acquired VMs")
	}
}

func TestAutoscaleDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage50(rng)
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	run := func() *Result {
		fl := cloud.DefaultFluctuation()
		res, err := Run(w, fleet, &greedyFirst{}, Config{
			Seed: 5, Fluct: &fl,
			Autoscale: &Autoscale{Type: cloud.T2Large, MaxVMs: 6, BootDelay: 20, IdleTimeout: 60, Cooldown: 10},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Elasticity.Acquired != b.Elasticity.Acquired {
		t.Fatalf("autoscale not deterministic: %v/%d vs %v/%d",
			a.Makespan, a.Elasticity.Acquired, b.Makespan, b.Elasticity.Acquired)
	}
	if a.Elasticity.Acquired == 0 {
		t.Fatal("expected scale-out on the montage burst")
	}
}

// TestAutoscaleGappedFleetIDs is the regression test for acquired-VM
// ID allocation: allocating len(g.vms) collides with hand-built
// fleets whose IDs have gaps (here {0, 2} — the old code would hand
// an acquired VM the existing ID 2 and silently merge two VMs'
// Result.PerVM stats). IDs must continue from the fleet maximum.
func TestAutoscaleGappedFleetIDs(t *testing.T) {
	fleet := &cloud.Fleet{Name: "gapped", VMs: []*cloud.VM{
		{ID: 0, Type: cloud.T2Micro},
		{ID: 2, Type: cloud.T2Micro},
	}}
	w := wideWorkflow(16, 100)
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Autoscale: &Autoscale{Type: cloud.T2Micro, MaxVMs: 4, BootDelay: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Elasticity.Acquired != 2 {
		t.Fatalf("acquired %d VMs, want 2", res.Elasticity.Acquired)
	}
	want := map[int]bool{0: true, 2: true, 3: true, 4: true}
	if len(res.PerVM) != len(want) {
		t.Fatalf("PerVM has %d entries (%v), want 4 distinct VMs", len(res.PerVM), res.PerVM)
	}
	for id := range res.PerVM {
		if !want[id] {
			t.Fatalf("unexpected VM ID %d in PerVM (want IDs 0,2 and fresh 3,4)", id)
		}
	}
}

// TestAutoscalePinsInitialFleetWithHighIDs is the regression test for
// scale-in pinning: the old code treated any VM with ID ≥ initial
// fleet size as acquired, so a hand-built fleet with IDs {5, 7} had
// its *initial* VMs retired for idleness. Pinning must track
// acquired-ness, not ID ranges.
func TestAutoscalePinsInitialFleetWithHighIDs(t *testing.T) {
	fleet := &cloud.Fleet{Name: "high-ids", VMs: []*cloud.VM{
		{ID: 5, Type: cloud.T2Micro},
		{ID: 7, Type: cloud.T2Micro},
	}}
	// A serial chain keeps one VM busy while the other idles far past
	// the timeout — it must survive anyway.
	w := chain(10, 10, 10, 10)
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Autoscale: &Autoscale{IdleTimeout: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Elasticity.Released != 0 {
		t.Fatalf("released %d initial-fleet VMs; the initial fleet is pinned", res.Elasticity.Released)
	}
}

// TestSpotRevokedVMFreesAutoscaleCapacity is the regression test for
// the spot×autoscale interaction: a revoked VM used to keep counting
// against MaxVMs forever, so a 2-VM-cap fleet that lost a VM to a
// revocation could never scale back out. The corpse must free its
// capacity slot and the scaler must acquire a replacement.
func TestSpotRevokedVMFreesAutoscaleCapacity(t *testing.T) {
	fleet := cloud.MustFleet("pair", []cloud.VMType{cloud.T2Micro}, []int{2})
	w := wideWorkflow(20, 100)
	run := func(seed int64) *Result {
		res, err := Run(w, fleet, &greedyFirst{}, Config{
			Seed: seed,
			Spot: &SpotPolicy{MeanLifetime: 150, KeepOne: true},
			// The cap equals the initial fleet size: scale-out is only
			// possible at all once a corpse stops occupying capacity.
			Autoscale: &Autoscale{Type: cloud.T2Micro, MaxVMs: 2,
				BootDelay: 1, QueuePerFreeSlot: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Probe seeds for a revocation landing mid-run with backlog left.
	var res *Result
	for seed := int64(1); seed <= 20; seed++ {
		if r := run(seed); r.Revocations >= 1 && r.Elasticity != nil {
			res = r
			break
		}
	}
	if res == nil {
		t.Fatal("no probed seed produced a mid-run revocation; retune the scenario")
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Elasticity.Acquired < 1 {
		t.Fatalf("acquired %d VMs after the revocation, want ≥1 (corpse still occupies capacity?)",
			res.Elasticity.Acquired)
	}
	// The replacement VM (fresh ID ≥ 2) must actually have done work.
	worked := false
	for id := range res.PerVM {
		if id >= 2 {
			worked = true
		}
	}
	if !worked {
		t.Fatalf("no record on any replacement VM: %v", res.PerVM)
	}
}
