package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/trace"
)

// greedyFirst assigns each ready task (in order) to the first idle VM
// slot — a deterministic FCFS scheduler for engine tests.
type greedyFirst struct {
	completions []string
}

func (s *greedyFirst) Name() string { return "greedy-first" }

func (s *greedyFirst) Prepare(*dag.Workflow, *cloud.Fleet, *Env) error { return nil }

func (s *greedyFirst) Pick(ctx *Context) []Assignment {
	var out []Assignment
	free := make(map[*VMState]int)
	for _, v := range ctx.IdleVMs {
		free[v] = v.FreeSlots()
	}
	vi := 0
	for _, t := range ctx.Ready {
		for vi < len(ctx.IdleVMs) && free[ctx.IdleVMs[vi]] == 0 {
			vi++
		}
		if vi == len(ctx.IdleVMs) {
			break
		}
		v := ctx.IdleVMs[vi]
		free[v]--
		out = append(out, Assignment{Task: t, VM: v})
	}
	return out
}

func (s *greedyFirst) OnTaskComplete(t *Task, _ *Env) {
	s.completions = append(s.completions, t.Act.ID)
}

// chain builds a linear workflow t0 -> t1 -> ... with the given
// runtimes.
func chain(runtimes ...float64) *dag.Workflow {
	w := dag.New("chain")
	prev := ""
	for i, rt := range runtimes {
		id := string(rune('a' + i))
		w.MustAdd(id, "step", rt)
		if prev != "" {
			w.MustDep(prev, id)
		}
		prev = id
	}
	return w
}

func singleVMFleet() *cloud.Fleet {
	return cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
}

func TestChainMakespanIsSumOfRuntimes(t *testing.T) {
	w := chain(1, 2, 3)
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if math.Abs(res.Makespan-6) > 1e-9 {
		t.Fatalf("makespan = %v, want 6", res.Makespan)
	}
	if len(res.Records) != 3 {
		t.Fatalf("records = %d", len(res.Records))
	}
	if len(res.Plan) != 3 {
		t.Fatalf("plan = %v", res.Plan)
	}
}

func TestParallelTasksOverlapOnMultiSlotVM(t *testing.T) {
	// Two independent 10s tasks on one 8-slot VM finish at 10, not 20.
	w := dag.New("par")
	w.MustAdd("a", "x", 10)
	w.MustAdd("b", "x", 10)
	fleet := cloud.MustFleet("big", []cloud.VMType{cloud.T22XLarge}, []int{1})
	res, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
}

func TestSingleSlotSerialises(t *testing.T) {
	w := dag.New("par")
	w.MustAdd("a", "x", 10)
	w.MustAdd("b", "x", 10)
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Fatalf("makespan = %v, want 20", res.Makespan)
	}
	// The second task queued for 10s.
	var queued float64
	for _, r := range res.Records {
		queued += r.QueueTime()
	}
	if math.Abs(queued-10) > 1e-9 {
		t.Fatalf("total queue time = %v, want 10", queued)
	}
}

func TestDelaysExtendMakespan(t *testing.T) {
	w := chain(5)
	cfg := Config{EngineDelay: 1, QueueDelay: 2, PostScriptDelay: 3}
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 1 (release) + 2 (dispatch) + 5 (run) + 3 (post) = 11.
	if math.Abs(res.Makespan-11) > 1e-9 {
		t.Fatalf("makespan = %v, want 11", res.Makespan)
	}
}

func TestDependencyOrderRespected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage50(rng)
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	finish := make(map[string]float64)
	start := make(map[string]float64)
	for _, r := range res.Records {
		finish[r.TaskID] = r.FinishAt
		start[r.TaskID] = r.StartAt
	}
	for _, a := range w.Activations() {
		for _, c := range a.Children() {
			if start[c.ID] < finish[a.ID]-1e-9 {
				t.Fatalf("%s started at %v before parent %s finished at %v",
					c.ID, start[c.ID], a.ID, finish[a.ID])
			}
		}
	}
}

func TestMakespanBeatsSequentialOnParallelFleet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(64)
	res, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	_, cp, err := w.CriticalPath()
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan < cp-1e-9 {
		t.Fatalf("makespan %v below critical path %v", res.Makespan, cp)
	}
	if res.Makespan > w.TotalRuntime() {
		t.Fatalf("makespan %v above sequential runtime %v", res.Makespan, w.TotalRuntime())
	}
}

func TestFailureWithRetrySucceeds(t *testing.T) {
	// Failure rate 1 with retries will always exhaust retries and fail;
	// but a modest rate with generous retries should succeed.
	w := chain(1, 1, 1)
	cfg := Config{Failure: cloud.FailureModel{Rate: 0.3}, MaxRetries: 50, Seed: 7}
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	// Some retries should have happened at rate 0.3 across enough
	// attempts... not guaranteed for 3 tasks, so just check records
	// are consistent: every task has exactly one successful record.
	okByTask := make(map[string]int)
	for _, r := range res.Records {
		if r.Success {
			okByTask[r.TaskID]++
		}
	}
	for _, a := range w.Activations() {
		if okByTask[a.ID] != 1 {
			t.Fatalf("task %s has %d successful records", a.ID, okByTask[a.ID])
		}
	}
}

func TestFailureWithoutRetryFailsWorkflow(t *testing.T) {
	w := chain(1, 1, 1)
	cfg := Config{Failure: cloud.FailureModel{Rate: 1.0}, MaxRetries: 0, Seed: 7}
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedFailed {
		t.Fatalf("state = %v, want finished-with-failure", res.State)
	}
	// Descendants of the failed root never ran.
	ran := 0
	for _, r := range res.Records {
		ran++
		if r.Success {
			t.Fatalf("record %v succeeded under rate 1.0", r)
		}
	}
	if ran != 1 {
		t.Fatalf("%d tasks executed, want only the root", ran)
	}
}

func TestDataTransferAddsTime(t *testing.T) {
	w := dag.New("xfer")
	a := w.MustAdd("a", "produce", 10)
	b := w.MustAdd("b", "consume", 10)
	a.Outputs = []dag.File{{Name: "f", Size: 8_000_000}} // 8 MB
	b.Inputs = a.Outputs
	w.MustDep("a", "b")
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})

	// Scheduler that forces b onto the *other* VM.
	res, err := Run(w, fleet, &vmPinner{pins: map[string]int{"a": 0, "b": 1}}, Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	// t2.micro at 8 MB/s: 1 second of staging for b.
	if math.Abs(res.Makespan-21) > 1e-9 {
		t.Fatalf("makespan = %v, want 21 (10+10+1 transfer)", res.Makespan)
	}

	// Same VM: no transfer.
	res2, err := Run(w, fleet, &vmPinner{pins: map[string]int{"a": 0, "b": 0}}, Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res2.Makespan-20) > 1e-9 {
		t.Fatalf("local makespan = %v, want 20", res2.Makespan)
	}
}

// vmPinner pins tasks to fixed VM IDs (a static plan executor).
type vmPinner struct {
	pins map[string]int
}

func (p *vmPinner) Name() string                                    { return "pinner" }
func (p *vmPinner) Prepare(*dag.Workflow, *cloud.Fleet, *Env) error { return nil }

func (p *vmPinner) Pick(ctx *Context) []Assignment {
	byID := make(map[int]*VMState)
	for _, v := range ctx.IdleVMs {
		byID[v.VM.ID] = v
	}
	var out []Assignment
	for _, t := range ctx.Ready {
		if v, ok := byID[p.pins[t.Act.ID]]; ok && v.FreeSlots() > 0 {
			out = append(out, Assignment{Task: t, VM: v})
			delete(byID, v.VM.ID)
		}
	}
	return out
}

func TestCompletionObserverSeesAllTasks(t *testing.T) {
	w := chain(1, 1, 1, 1)
	s := &greedyFirst{}
	if _, err := Run(w, singleVMFleet(), s, Config{}); err != nil {
		t.Fatal(err)
	}
	if len(s.completions) != 4 {
		t.Fatalf("observer saw %d completions, want 4", len(s.completions))
	}
	want := []string{"a", "b", "c", "d"}
	for i, id := range want {
		if s.completions[i] != id {
			t.Fatalf("completions = %v", s.completions)
		}
	}
}

func TestFluctuationChangesMakespanNotEstimate(t *testing.T) {
	w := chain(10)
	fl := cloud.FluctuationModel{MicroThrottleProb: 1, ThrottleFactor: 2}
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{Fluct: &fl, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-20) > 1e-9 {
		t.Fatalf("makespan = %v, want 20 under 2x throttle", res.Makespan)
	}
}

func TestInvalidInputs(t *testing.T) {
	w := chain(1)
	if _, err := Run(dag.New("empty"), singleVMFleet(), &greedyFirst{}, Config{}); err == nil {
		t.Fatal("empty workflow accepted")
	}
	if _, err := Run(w, nil, &greedyFirst{}, Config{}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	if _, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{MaxRetries: -1}); err == nil {
		t.Fatal("negative retries accepted")
	}
}

// lazyScheduler never assigns anything: the run must error out as a
// stall rather than hang or report success.
type lazyScheduler struct{}

func (lazyScheduler) Name() string                                    { return "lazy" }
func (lazyScheduler) Prepare(*dag.Workflow, *cloud.Fleet, *Env) error { return nil }
func (lazyScheduler) Pick(*Context) []Assignment                      { return nil }

func TestSchedulerStallDetected(t *testing.T) {
	w := chain(1)
	if _, err := Run(w, singleVMFleet(), lazyScheduler{}, Config{}); err == nil {
		t.Fatal("stalled run reported success")
	}
}

// overCommitter tries to double-book one slot; the engine must reject
// the second assignment and still finish.
type overCommitter struct{}

func (overCommitter) Name() string                                    { return "overcommit" }
func (overCommitter) Prepare(*dag.Workflow, *cloud.Fleet, *Env) error { return nil }

func (overCommitter) Pick(ctx *Context) []Assignment {
	var out []Assignment
	for _, t := range ctx.Ready {
		out = append(out, Assignment{Task: t, VM: ctx.IdleVMs[0]})
	}
	return out
}

func TestOverCommitRejected(t *testing.T) {
	w := dag.New("par")
	w.MustAdd("a", "x", 5)
	w.MustAdd("b", "x", 5)
	res, err := Run(w, singleVMFleet(), overCommitter{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	// One slot: the tasks must have run serially.
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
}

func TestHorizonAborts(t *testing.T) {
	w := chain(10, 10)
	if _, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{Horizon: 5}); err == nil {
		t.Fatal("horizon abort not reported")
	}
}

func TestEnvEstimateExec(t *testing.T) {
	w := chain(10)
	fleet := singleVMFleet()
	var env *Env
	s := &prepareCapture{}
	if _, err := Run(w, fleet, s, Config{DataTransfer: true}); err != nil {
		t.Fatal(err)
	}
	env = s.env
	a := w.Get("a")
	a.Inputs = []dag.File{{Name: "in", Size: 8_000_000}}
	got := env.EstimateExec(a, fleet.VMs[0])
	// 10s compute + 1s transfer at 8 MB/s.
	if math.Abs(got-11) > 1e-9 {
		t.Fatalf("EstimateExec = %v, want 11", got)
	}
}

// prepareCapture grabs the Env during Prepare, then behaves greedily.
type prepareCapture struct {
	greedyFirst
	env *Env
}

func (p *prepareCapture) Prepare(w *dag.Workflow, f *cloud.Fleet, env *Env) error {
	p.env = env
	return nil
}

func TestResultAggregates(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(16)
	res, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost <= 0 {
		t.Fatalf("cost = %v", res.Cost)
	}
	var n int
	for _, st := range res.PerVM {
		n += st.N
	}
	if n != 50 {
		t.Fatalf("per-VM stats cover %d tasks, want 50", n)
	}
	g := (&Env{}).GlobalStats()
	if g.N != 0 {
		t.Fatalf("fresh env global stats = %+v", g)
	}
	if res.Decisions <= 0 || res.Events <= 0 {
		t.Fatalf("decisions=%d events=%d", res.Decisions, res.Events)
	}
}

// Property: for any generated workflow and fleet, the FCFS makespan is
// bounded by [critical path / max speed, total runtime + overheads],
// every task runs exactly once, and dependencies hold.
func TestPropertySimulationInvariants(t *testing.T) {
	f := func(seed int64, rawSize uint8, famIdx uint8) bool {
		fams := trace.Families()
		fam := fams[int(famIdx)%len(fams)]
		rng := rand.New(rand.NewSource(seed))
		w := trace.Named(fam)(rng, int(rawSize)%60+10)
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			return false
		}
		res, err := Run(w, fleet, &greedyFirst{}, Config{Seed: seed})
		if err != nil {
			return false
		}
		if res.State != FinishedOK {
			return false
		}
		if len(res.Plan) != w.Len() {
			return false
		}
		_, cp, err := w.CriticalPath()
		if err != nil {
			return false
		}
		if res.Makespan < cp-1e-6 || res.Makespan > w.TotalRuntime()+1e-6 {
			return false
		}
		finish := make(map[string]float64)
		for _, r := range res.Records {
			finish[r.TaskID] = r.FinishAt
		}
		for _, a := range w.Activations() {
			for _, c := range a.Children() {
				var cs float64
				for _, r := range res.Records {
					if r.TaskID == c.ID {
						cs = r.StartAt
					}
				}
				if cs < finish[a.ID]-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: same seed ⇒ identical result (determinism), even with
// fluctuation and failures enabled.
func TestPropertyDeterministicRuns(t *testing.T) {
	f := func(seed int64) bool {
		mk := func() *Result {
			rng := rand.New(rand.NewSource(42))
			w := trace.Montage(rng, 6, 3)
			fleet, _ := cloud.FleetTable1(16)
			fl := cloud.DefaultFluctuation()
			res, err := Run(w, fleet, &greedyFirst{}, Config{
				Seed: seed, Fluct: &fl,
				Failure: cloud.FailureModel{Rate: 0.05}, MaxRetries: 10,
			})
			if err != nil {
				return nil
			}
			return res
		}
		a, b := mk(), mk()
		if a == nil || b == nil {
			return false
		}
		if a.Makespan != b.Makespan || len(a.Records) != len(b.Records) {
			return false
		}
		for i := range a.Records {
			if a.Records[i] != b.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestTaskStateStrings(t *testing.T) {
	cases := map[string]string{
		Locked.String():    "locked",
		Ready.String():     "ready",
		Running.String():   "running",
		Succeeded.String(): "succeeded",
		Failed.String():    "failed",
	}
	for got, want := range cases {
		if got != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	if TaskState(99).String() == "" {
		t.Fatal("unknown state printed empty")
	}
	wf := map[string]string{
		Available.String():      "available",
		Unavailable.String():    "unavailable",
		FinishedOK.String():     "successfully finished",
		FinishedFailed.String(): "finished with failure",
	}
	for got, want := range wf {
		if got != want {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	if WorkflowState(99).String() == "" {
		t.Fatal("unknown workflow state printed empty")
	}
}

func TestVMStatsMeans(t *testing.T) {
	var s VMStats
	if s.MeanExec() != 0 || s.MeanWait() != 0 {
		t.Fatal("empty stats not zero")
	}
	s.add(10, 2)
	s.add(20, 4)
	if s.MeanExec() != 15 || s.MeanWait() != 3 {
		t.Fatalf("means = %v/%v", s.MeanExec(), s.MeanWait())
	}
	if s.Busy != 30 {
		t.Fatalf("busy = %v", s.Busy)
	}
}

func BenchmarkRunMontage50FCFS(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(w, fleet, &greedyFirst{}, Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestProvisionDelayShiftsStart(t *testing.T) {
	w := chain(10)
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{ProvisionDelay: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Boot 30s + run 10s.
	if math.Abs(res.Makespan-40) > 1e-9 {
		t.Fatalf("makespan = %v, want 40", res.Makespan)
	}
	// The task queued while the VM booted.
	if math.Abs(res.Records[0].QueueTime()-30) > 1e-9 {
		t.Fatalf("queue time = %v, want 30", res.Records[0].QueueTime())
	}
}

func TestProvisionJitterStaggersBoots(t *testing.T) {
	// Two independent tasks, two VMs, large jitter: with the chosen
	// seed the two VMs boot at different times and tasks start apart.
	w := dag.New("par")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 1)
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	res, err := Run(w, fleet, &greedyFirst{}, Config{ProvisionDelay: 5, ProvisionJitter: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Makespan < 5 {
		t.Fatalf("makespan %v below the minimum boot delay", res.Makespan)
	}
	// Deterministic for the seed.
	res2, err := Run(w, fleet, &greedyFirst{}, Config{ProvisionDelay: 5, ProvisionJitter: 100, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != res2.Makespan {
		t.Fatal("provision jitter not reproducible")
	}
}

func TestNegativeProvisionRejected(t *testing.T) {
	w := chain(1)
	if _, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{ProvisionDelay: -1}); err == nil {
		t.Fatal("negative provision delay accepted")
	}
	if _, err := Run(w, singleVMFleet(), &greedyFirst{}, Config{ProvisionJitter: -1}); err == nil {
		t.Fatal("negative provision jitter accepted")
	}
}

func TestBootedAccessor(t *testing.T) {
	v := newVMState(&cloud.VM{ID: 0, Type: cloud.T2Micro})
	if !v.Booted() || !v.Idle() {
		t.Fatal("fresh VM not booted/idle")
	}
	v.booted = false
	if v.Idle() {
		t.Fatal("unbooted VM reported idle")
	}
}

func TestVerifyAcceptsValidResults(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	w := trace.Montage50(rng)
	fleet, _ := cloud.FleetTable1(16)
	res, err := Run(w, fleet, &greedyFirst{}, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Verify(w, fleet); err != nil {
		t.Fatalf("valid result rejected: %v", err)
	}
}

func TestVerifyCatchesCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := trace.Montage(rng, 4, 2)
	fleet, _ := cloud.FleetTable1(16)
	res, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a record: child starts before parent finished.
	for i, r := range res.Records {
		a := w.Get(r.TaskID)
		if len(a.Parents()) > 0 {
			res.Records[i].StartAt = 0
			res.Records[i].FinishAt = 0.5
			break
		}
	}
	if err := res.Verify(w, fleet); err == nil {
		t.Fatal("corrupted dependency order accepted")
	}

	// Fresh result, over-committed VM.
	res2, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range res2.Records {
		res2.Records[i].VMID = 0 // t2.micro, 1 slot
		res2.Records[i].StartAt = 1
		res2.Records[i].FinishAt = 2
	}
	if err := res2.Verify(w, fleet); err == nil {
		t.Fatal("slot overcommit accepted")
	}

	// Fresh result, missing plan entry.
	res3, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	delete(res3.Plan, w.Activations()[0].ID)
	if err := res3.Verify(w, fleet); err == nil {
		t.Fatal("missing plan entry accepted")
	}
}

// Property: every scheduler's result passes Verify, with all
// overhead layers, failures and fluctuation active.
func TestPropertyVerifyAllResults(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := trace.MontageN(rng, 30)
		fleet, err := cloud.FleetTable1(32)
		if err != nil {
			return false
		}
		fl := cloud.DefaultFluctuation()
		res, err := Run(w, fleet, &greedyFirst{}, Config{
			Seed: seed, Fluct: &fl,
			EngineDelay: 0.5, QueueDelay: 0.25, PostScriptDelay: 0.1,
			Failure: cloud.FailureModel{Rate: 0.05}, MaxRetries: 10,
		})
		if err != nil {
			return false
		}
		return res.Verify(w, fleet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFailureByActivity(t *testing.T) {
	// Only "flaky" activations fail (always), and with retries they
	// eventually pass; "solid" ones never record a failure.
	w := dag.New("mixed")
	w.MustAdd("f1", "flaky", 1)
	w.MustAdd("s1", "solid", 1)
	cfg := Config{
		FailureByActivity: map[string]float64{"flaky": 0.5},
		MaxRetries:        50,
		Seed:              9,
	}
	res, err := Run(w, singleVMFleet(), &greedyFirst{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	for _, r := range res.Records {
		if r.Activity == "solid" && !r.Success {
			t.Fatalf("solid activation failed: %+v", r)
		}
	}
	// Global rate still applies to activities not in the map.
	cfg2 := Config{
		Failure:           cloud.FailureModel{Rate: 1.0},
		FailureByActivity: map[string]float64{"flaky": 0},
		MaxRetries:        0,
		Seed:              9,
	}
	res2, err := Run(w, singleVMFleet(), &greedyFirst{}, cfg2)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res2.Records {
		if r.Activity == "flaky" && !r.Success {
			t.Fatal("per-activity zero rate did not override the global rate")
		}
		if r.Activity == "solid" && r.Success {
			t.Fatal("global rate 1.0 let a solid task pass")
		}
	}
}
