package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/trace"
)

func TestMapperInsertsStaging(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage(rng, 4, 2) // roots read raw_*.fits; mJPEG writes a final jpg
	concrete, err := Mapper{}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	counts := concrete.CountByActivity()
	// One stage_in per raw image, one stage_out for the final jpeg and
	// any other unconsumed outputs.
	if counts[StageIn] != 4 {
		t.Fatalf("stage_in = %d, want 4", counts[StageIn])
	}
	if counts[StageOut] == 0 {
		t.Fatal("no stage_out inserted")
	}
	// Former roots now depend on their stage_in.
	for _, a := range concrete.Activations() {
		if a.Activity == "mProjectPP" && len(a.Parents()) == 0 {
			t.Fatalf("projection %s has no stage_in parent", a.ID)
		}
	}
	// The original is untouched.
	if w.CountByActivity()[StageIn] != 0 {
		t.Fatal("mapper mutated its input")
	}
}

func TestMapperBatchMode(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := trace.Montage(rng, 6, 2)
	concrete, err := Mapper{Batch: true}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	counts := concrete.CountByActivity()
	if counts[StageIn] != 1 || counts[StageOut] != 1 {
		t.Fatalf("batch staging = %d in / %d out, want 1/1", counts[StageIn], counts[StageOut])
	}
	// The batched stage_in precedes every projection.
	si := concrete.Get(StageIn + "_all")
	if len(si.Children()) != 6 {
		t.Fatalf("stage_in_all feeds %d activations, want 6", len(si.Children()))
	}
}

func TestMapperStageRate(t *testing.T) {
	w := dag.New("w")
	a := w.MustAdd("a", "x", 1)
	a.Inputs = []dag.File{{Name: "in.dat", Size: 50_000_000}} // 50 MB
	concrete, err := Mapper{StageRate: 0.2}.Apply(w)          // 0.2 s/MB
	if err != nil {
		t.Fatal(err)
	}
	si := concrete.Get("stage_in_000")
	if si == nil {
		t.Fatal("stage_in missing")
	}
	if si.Runtime != 10 { // 50 MB × 0.2 s/MB
		t.Fatalf("stage_in runtime = %v, want 10", si.Runtime)
	}
}

func TestMapperNoExternalFiles(t *testing.T) {
	// A workflow whose files are all internal gains no staging.
	w := dag.New("internal")
	a := w.MustAdd("a", "x", 1)
	b := w.MustAdd("b", "x", 1)
	a.Outputs = []dag.File{{Name: "mid", Size: 1}}
	b.Inputs = a.Outputs
	w.MustDep("a", "b")
	// b's output is unconsumed -> one stage_out; a has no inputs -> no
	// stage_in.
	b.Outputs = nil
	concrete, err := Mapper{}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	counts := concrete.CountByActivity()
	if counts[StageIn] != 0 || counts[StageOut] != 0 {
		t.Fatalf("unexpected staging: %v", counts)
	}
}

func TestMapperConcreteWorkflowSchedules(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := trace.Montage50(rng)
	concrete, err := Mapper{}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	fleet, _ := cloud.FleetTable1(16)
	res, err := Run(concrete, fleet, &greedyFirst{}, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if err := res.Verify(concrete, fleet); err != nil {
		t.Fatal(err)
	}
	// Staging adds runtime: concrete makespan > abstract makespan.
	abs, err := Run(w, fleet, &greedyFirst{}, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan <= abs.Makespan {
		t.Fatalf("concrete %v not above abstract %v", res.Makespan, abs.Makespan)
	}
}

// Property: mapping preserves the original activations and adds only
// staging; the result is always a valid schedulable DAG.
func TestPropertyMapperWellFormed(t *testing.T) {
	fams := trace.Families()
	f := func(seed int64, famIdx, size uint8, batch bool) bool {
		fam := fams[int(famIdx)%len(fams)]
		rng := rand.New(rand.NewSource(seed))
		w := trace.Named(fam)(rng, int(size)%50+10)
		concrete, err := Mapper{Batch: batch}.Apply(w)
		if err != nil {
			return false
		}
		if err := concrete.Validate(); err != nil {
			return false
		}
		counts := concrete.CountByActivity()
		extra := counts[StageIn] + counts[StageOut]
		if concrete.Len() != w.Len()+extra {
			return false
		}
		for _, a := range w.Activations() {
			ca := concrete.Get(a.ID)
			if ca == nil || ca.Runtime != a.Runtime {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
