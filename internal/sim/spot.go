package sim

import (
	"fmt"
	"sort"
	"strings"

	"reassign/internal/cloud"
)

// SpotPolicy models spot/preemptible instances: eligible VMs are
// revoked at exponentially distributed times, killing whatever runs
// on them. Killed activations return to the ready queue and are
// rescheduled elsewhere (their aborted attempt appears as a failed
// record). A revoked VM never comes back.
//
// Static plan replays (sched.Plan, HEFT, GA) deadlock if a planned VM
// is revoked — the run ends with a stall error, which is the honest
// outcome of pinning work to a vanished machine. Dynamic schedulers
// (MCT, ReASSIgN, …) reroute transparently.
type SpotPolicy struct {
	// MeanLifetime is the expected time until revocation per eligible
	// VM, in virtual seconds.
	MeanLifetime float64
	// EligibleType restricts revocation to one VM type name
	// ("" = every VM is a spot instance).
	EligibleType string
	// KeepOne protects the lowest-ID eligible VM from revocation so a
	// fully-spot fleet cannot strand the workflow.
	KeepOne bool
}

func (p *SpotPolicy) validate() error {
	if p.MeanLifetime <= 0 {
		return fmt.Errorf("sim: spot MeanLifetime must be positive")
	}
	return nil
}

// eligible reports whether the policy may revoke VMs of this type.
func (p *SpotPolicy) eligible(t cloud.VMType) bool {
	return p.EligibleType == "" || strings.EqualFold(t.Name, p.EligibleType)
}

// scheduleRevocations draws one revocation time per eligible VM of
// the initial fleet. Acquired VMs draw theirs at acquisition time
// (scheduleSpotRevocation).
func (g *Engine) scheduleRevocations() {
	p := g.cfg.Spot
	if p == nil {
		return
	}
	kept := false
	for _, v := range g.vms {
		if !p.eligible(v.VM.Type) {
			continue
		}
		if p.KeepOne && !kept {
			kept = true
			continue
		}
		v := v
		at := g.env.rng.ExpFloat64() * p.MeanLifetime
		g.sim.At(at, func() { g.revoke(v) })
	}
}

// scheduleSpotRevocation draws a revocation time for a VM acquired by
// the autoscaler mid-run. Its spot lifetime starts when it boots;
// KeepOne only protects the initial fleet.
func (g *Engine) scheduleSpotRevocation(v *VMState, bootAt float64) {
	p := g.cfg.Spot
	if p == nil || !p.eligible(v.VM.Type) {
		return
	}
	at := bootAt + g.env.rng.ExpFloat64()*p.MeanLifetime
	g.sim.At(at, func() { g.revoke(v) })
}

// taskIndexSorter orders tasks by activation index.
type taskIndexSorter []*Task

func (s taskIndexSorter) Len() int           { return len(s) }
func (s taskIndexSorter) Less(i, j int) bool { return s[i].Act.Index < s[j].Act.Index }
func (s taskIndexSorter) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// revoke kills a VM: running activations are aborted back to the
// ready queue in task-index order, the VM never accepts work again.
// The autoscaler, when active, is told so the corpse stops counting
// against MaxVMs and stops billing.
func (g *Engine) revoke(v *VMState) {
	if g.remaining == 0 || !v.booted {
		return
	}
	v.booted = false
	g.result.Revocations++
	if g.hook != nil {
		g.hook.VMRevoked(g.sim.Now(), v)
	}
	if g.scaler != nil {
		g.scaler.vmRevoked(v, g.sim.Now())
	}
	// Collect the affected tasks first: aborting while iterating
	// g.running would emit their failure records in map order, which
	// varies between runs and breaks the byte-stable-trace contract
	// whenever a multi-vCPU VM dies with more than one task aboard.
	g.abortBuf = g.abortBuf[:0]
	for t, run := range g.running {
		if run.vm == v {
			g.abortBuf = append(g.abortBuf, t)
		}
	}
	sort.Sort(taskIndexSorter(g.abortBuf))
	for _, t := range g.abortBuf {
		g.running[t].ref.Cancel()
		v.release()
		delete(g.running, t)
		// The aborted attempt shows up as an unsuccessful record
		// ending at the revocation instant.
		t.FinishAt = g.sim.Now()
		g.record(t, v, false)
		t.State = Ready
		t.ReadyAt = g.sim.Now()
		g.ready = append(g.ready, t)
		if g.hook != nil {
			g.hook.TaskAbort(g.sim.Now(), t, v)
			g.hook.TaskReady(t.ReadyAt, t)
		}
	}
	g.postCycle()
}
