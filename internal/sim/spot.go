package sim

import (
	"fmt"
	"strings"
)

// SpotPolicy models spot/preemptible instances: eligible VMs are
// revoked at exponentially distributed times, killing whatever runs
// on them. Killed activations return to the ready queue and are
// rescheduled elsewhere (their aborted attempt appears as a failed
// record). A revoked VM never comes back.
//
// Static plan replays (sched.Plan, HEFT, GA) deadlock if a planned VM
// is revoked — the run ends with a stall error, which is the honest
// outcome of pinning work to a vanished machine. Dynamic schedulers
// (MCT, ReASSIgN, …) reroute transparently.
type SpotPolicy struct {
	// MeanLifetime is the expected time until revocation per eligible
	// VM, in virtual seconds.
	MeanLifetime float64
	// EligibleType restricts revocation to one VM type name
	// ("" = every VM is a spot instance).
	EligibleType string
	// KeepOne protects the lowest-ID eligible VM from revocation so a
	// fully-spot fleet cannot strand the workflow.
	KeepOne bool
}

func (p *SpotPolicy) validate() error {
	if p.MeanLifetime <= 0 {
		return fmt.Errorf("sim: spot MeanLifetime must be positive")
	}
	return nil
}

// scheduleRevocations draws one revocation time per eligible VM.
func (g *Engine) scheduleRevocations() {
	p := g.cfg.Spot
	if p == nil {
		return
	}
	kept := false
	for _, v := range g.vms {
		if p.EligibleType != "" && !strings.EqualFold(v.VM.Type.Name, p.EligibleType) {
			continue
		}
		if p.KeepOne && !kept {
			kept = true
			continue
		}
		v := v
		at := g.env.rng.ExpFloat64() * p.MeanLifetime
		g.sim.At(at, func() { g.revoke(v) })
	}
}

// revoke kills a VM: running activations are aborted back to the
// ready queue, the VM never accepts work again.
func (g *Engine) revoke(v *VMState) {
	if g.remaining == 0 || !v.booted {
		return
	}
	v.booted = false
	g.result.Revocations++
	// Abort everything running on v.
	for t, run := range g.running {
		if run.vm != v {
			continue
		}
		run.ref.Cancel()
		v.release()
		delete(g.running, t)
		// The aborted attempt shows up as an unsuccessful record
		// ending at the revocation instant.
		t.FinishAt = g.sim.Now()
		g.record(t, v, false)
		t.State = Ready
		t.ReadyAt = g.sim.Now()
		g.ready = append(g.ready, t)
	}
	g.postCycle()
}
