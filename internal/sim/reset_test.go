package sim

import (
	"math"
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/trace"
)

// cloneResult deep-copies the fields a Reset would invalidate, so a
// previous run's outcome can be compared after the engine re-runs.
func cloneResult(r *Result) *Result {
	c := *r
	c.Records = append([]Record(nil), r.Records...)
	c.PerVM = make(map[int]VMStats, len(r.PerVM))
	for k, v := range r.PerVM {
		c.PerVM[k] = v
	}
	if r.Plan != nil {
		c.Plan = make(map[string]int, len(r.Plan))
		for k, v := range r.Plan {
			c.Plan[k] = v
		}
	}
	return &c
}

// requireEqualRuns fails unless the two results describe bit-identical
// simulations. Kernel counters are deliberately excluded: a reset
// engine serves more events from the DES freelist than a fresh one.
func requireEqualRuns(t *testing.T, fresh, reset *Result) {
	t.Helper()
	if fresh.State != reset.State {
		t.Fatalf("state: fresh %v, reset %v", fresh.State, reset.State)
	}
	if fresh.Makespan != reset.Makespan {
		t.Fatalf("makespan: fresh %v, reset %v", fresh.Makespan, reset.Makespan)
	}
	if fresh.Decisions != reset.Decisions || fresh.Events != reset.Events {
		t.Fatalf("decisions/events: fresh %d/%d, reset %d/%d",
			fresh.Decisions, fresh.Events, reset.Decisions, reset.Events)
	}
	if fresh.Revocations != reset.Revocations {
		t.Fatalf("revocations: fresh %d, reset %d", fresh.Revocations, reset.Revocations)
	}
	if len(fresh.Records) != len(reset.Records) {
		t.Fatalf("records: fresh %d, reset %d", len(fresh.Records), len(reset.Records))
	}
	for i := range fresh.Records {
		if fresh.Records[i] != reset.Records[i] {
			t.Fatalf("record %d: fresh %+v, reset %+v", i, fresh.Records[i], reset.Records[i])
		}
	}
	if len(fresh.Plan) != len(reset.Plan) {
		t.Fatalf("plan size: fresh %d, reset %d", len(fresh.Plan), len(reset.Plan))
	}
	for k, v := range fresh.Plan {
		if reset.Plan[k] != v {
			t.Fatalf("plan[%s]: fresh %d, reset %d", k, v, reset.Plan[k])
		}
	}
	if len(fresh.PerVM) != len(reset.PerVM) {
		t.Fatalf("per-VM size: fresh %d, reset %d", len(fresh.PerVM), len(reset.PerVM))
	}
	for k, v := range fresh.PerVM {
		if reset.PerVM[k] != v {
			t.Fatalf("per-VM[%d]: fresh %+v, reset %+v", k, v, reset.PerVM[k])
		}
	}
}

// TestEngineResetMatchesFreshRun is the Reset equivalence contract: a
// reset-then-run must be bit-identical to a fresh engine's run under
// the same config, across fluctuation, failure/retry and spot
// configurations.
func TestEngineResetMatchesFreshRun(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(3)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	cases := []struct {
		name string
		cfg  Config
	}{
		{"plain", Config{Seed: 7}},
		{"fluct", Config{Seed: 7, Fluct: &fluct}},
		{"failures", Config{Seed: 7, Fluct: &fluct,
			Failure: cloud.FailureModel{Rate: 0.1}, MaxRetries: 3}},
		{"delays", Config{Seed: 7, Fluct: &fluct,
			EngineDelay: 0.5, QueueDelay: 0.25, PostScriptDelay: 0.1,
			ProvisionDelay: 2, ProvisionJitter: 1}},
		{"spot", Config{Seed: 7, Fluct: &fluct,
			Spot: &SpotPolicy{MeanLifetime: 400, KeepOne: true}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh, err := Run(w, fleet, &greedyFirst{}, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			want := cloneResult(fresh)

			eng, err := NewEngine(w, fleet, &greedyFirst{}, tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Run with a different seed first, so the reset run has stale
			// state to overwrite (the harder equivalence).
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			other := tc.cfg
			other.Seed = 99
			if err := eng.Reset(other); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.Run(); err != nil {
				t.Fatal(err)
			}
			if err := eng.Reset(tc.cfg); err != nil {
				t.Fatal(err)
			}
			got, err := eng.Run()
			if err != nil {
				t.Fatal(err)
			}
			requireEqualRuns(t, want, got)
		})
	}
}

func TestEngineSecondRunWithoutResetErrors(t *testing.T) {
	w := chain(1, 2)
	eng, err := NewEngine(w, singleVMFleet(), &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err == nil {
		t.Fatal("second Run without Reset should error")
	}
	if err := eng.Reset(Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatalf("Run after Reset: %v", err)
	}
}

func TestEngineResetRejectsBadConfig(t *testing.T) {
	w := chain(1)
	eng, err := NewEngine(w, singleVMFleet(), &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if err := eng.Reset(Config{MaxRetries: -1}); err == nil {
		t.Fatal("Reset with negative MaxRetries should error")
	}
}

// TestEstimateExecMemo checks the memoised estimate path against the
// direct computation, including rebuilds when Reset flips the
// DataTransfer flag.
func TestEstimateExecMemo(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(3)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	check := func(eng *Engine, dt bool) {
		t.Helper()
		env := eng.env
		for _, a := range w.Activations() {
			for _, vm := range fleet.VMs {
				want := a.Runtime / vm.Type.Speed
				if dt && vm.Type.NetMBps > 0 {
					want += float64(a.InputBytes()) / (vm.Type.NetMBps * 1e6)
				}
				if got := env.EstimateExec(a, vm); math.Abs(got-want) > 1e-12 {
					t.Fatalf("EstimateExec(%s, vm%d) dt=%v = %v, want %v", a.ID, vm.ID, dt, got, want)
				}
			}
		}
	}
	eng, err := NewEngine(w, fleet, &greedyFirst{}, Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	check(eng, true)
	// Flipping DataTransfer through Reset must rebuild the matrix.
	if err := eng.Reset(Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	check(eng, false)
}

// TestEstimateExecMemoBounded pins the memo's memory contract at
// extreme scale: estimating across a 10k-activation workflow on a
// 2304-VM fleet must cache at most baseDurRowCap rows (≈ 64 MB of
// float64 cells) rather than materialising the full 10k × 2304
// rectangle, while rows past the cap still return exact values via
// recomputation.
func TestEstimateExecMemoBounded(t *testing.T) {
	w := trace.MontageN(rand.New(rand.NewSource(5)), 10000)
	fleet, err := cloud.FleetScaled(4096)
	if err != nil {
		t.Fatal(err)
	}
	nv := len(fleet.VMs)
	env := &Env{fleet: fleet, workflow: w, acts: w.Activations(), cfg: Config{DataTransfer: true}}

	rowCap := env.baseDurRowCap()
	if rowCap <= 0 || rowCap >= w.Len() {
		t.Fatalf("baseDurRowCap = %d; test needs 0 < cap < %d activations to exercise the bound", rowCap, w.Len())
	}
	for _, a := range w.Activations() {
		vm := fleet.VMs[a.Index%nv]
		want := env.estimateExec(a, vm)
		if got := env.EstimateExec(a, vm); got != want {
			t.Fatalf("EstimateExec(%s, vm%d) = %v, want %v", a.ID, vm.ID, got, want)
		}
	}
	if env.baseDurRows != rowCap {
		t.Fatalf("memo holds %d rows after touching every activation, want exactly the cap %d", env.baseDurRows, rowCap)
	}
	if cells := env.baseDurRows * nv; cells > maxBaseDurCells {
		t.Fatalf("memo holds %d cells, over the %d cap", cells, maxBaseDurCells)
	}
	// Rows past the cap stay unmaterialised but keep answering exactly.
	last := w.Activations()[w.Len()-1]
	if env.baseDur[last.Index] != nil {
		t.Fatalf("activation %d materialised a row past the cap", last.Index)
	}
	for _, vm := range []*cloud.VM{fleet.VMs[0], fleet.VMs[nv-1]} {
		if got, want := env.EstimateExec(last, vm), env.estimateExec(last, vm); got != want {
			t.Fatalf("uncached EstimateExec(%s, vm%d) = %v, want %v", last.ID, vm.ID, got, want)
		}
	}
}
