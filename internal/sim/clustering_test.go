package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/trace"
)

func TestHorizontalClusteringMergesSameActivityLevels(t *testing.T) {
	// 4 parallel same-activity tasks fed by one root: k=2 gives 2
	// clusters of 2.
	w := dag.New("h")
	w.MustAdd("root", "load", 1)
	for _, id := range []string{"p0", "p1", "p2", "p3"} {
		w.MustAdd(id, "proc", 2)
		w.MustDep("root", id)
	}
	cw, err := Clustering{Horizontal: true, GroupSize: 2}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() != 3 { // root + 2 clusters
		t.Fatalf("clustered Len = %d, want 3", cw.Workflow.Len())
	}
	// Each cluster carries the summed runtime of its members.
	var clusterRuntimes []float64
	for _, a := range cw.Workflow.Activations() {
		if a.Activity == "proc" {
			clusterRuntimes = append(clusterRuntimes, a.Runtime)
			if len(cw.Members[a.ID]) != 2 {
				t.Fatalf("cluster %s has %d members", a.ID, len(cw.Members[a.ID]))
			}
		}
	}
	for _, rt := range clusterRuntimes {
		if rt != 4 {
			t.Fatalf("cluster runtime = %v, want 4 (2+2)", rt)
		}
	}
	// Total work is preserved.
	if cw.Workflow.TotalRuntime() != w.TotalRuntime() {
		t.Fatalf("total runtime changed: %v vs %v", cw.Workflow.TotalRuntime(), w.TotalRuntime())
	}
}

func TestHorizontalClusteringKeepsDistinctActivitiesApart(t *testing.T) {
	w := dag.New("h2")
	w.MustAdd("a0", "alpha", 1)
	w.MustAdd("a1", "alpha", 1)
	w.MustAdd("b0", "beta", 1)
	w.MustAdd("b1", "beta", 1)
	cw, err := Clustering{Horizontal: true, GroupSize: 4}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (one per activity)", cw.Workflow.Len())
	}
	for _, a := range cw.Workflow.Activations() {
		for _, m := range cw.Members[a.ID] {
			if w.Get(m).Activity != a.Activity {
				t.Fatalf("cluster %s mixes activities", a.ID)
			}
		}
	}
}

func TestVerticalClusteringMergesChains(t *testing.T) {
	// a -> b -> c, all same activity with single parent/child: one
	// cluster. d hangs off c with a different activity: untouched.
	w := dag.New("v")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 2)
	w.MustAdd("c", "x", 3)
	w.MustAdd("d", "y", 4)
	w.MustDep("a", "b")
	w.MustDep("b", "c")
	w.MustDep("c", "d")
	cw, err := Clustering{Vertical: true}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() != 2 {
		t.Fatalf("Len = %d, want 2", cw.Workflow.Len())
	}
	var chain *dag.Activation
	for _, a := range cw.Workflow.Activations() {
		if a.Activity == "x" {
			chain = a
		}
	}
	if chain == nil || chain.Runtime != 6 {
		t.Fatalf("chain cluster = %v", chain)
	}
	if len(cw.Members[chain.ID]) != 3 {
		t.Fatalf("chain members = %v", cw.Members[chain.ID])
	}
	// The y task still depends on the chain cluster.
	if !cw.Workflow.HasDep(chain.ID, "d") {
		t.Fatal("dependency chain->d lost")
	}
}

func TestVerticalClusteringStopsAtFanOut(t *testing.T) {
	// a has two children: no vertical merge across the fan-out.
	w := dag.New("v2")
	w.MustAdd("a", "x", 1)
	w.MustAdd("b", "x", 1)
	w.MustAdd("c", "x", 1)
	w.MustDep("a", "b")
	w.MustDep("a", "c")
	cw, err := Clustering{Vertical: true}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() != 3 {
		t.Fatalf("Len = %d, want 3 (no merges)", cw.Workflow.Len())
	}
}

func TestClusteringExpandPlan(t *testing.T) {
	w := dag.New("e")
	w.MustAdd("p0", "proc", 1)
	w.MustAdd("p1", "proc", 1)
	cw, err := Clustering{Horizontal: true, GroupSize: 2}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() != 1 {
		t.Fatalf("Len = %d", cw.Workflow.Len())
	}
	leader := cw.Workflow.Activations()[0].ID
	expanded := cw.Expand(map[string]int{leader: 5})
	if len(expanded) != 2 || expanded["p0"] != 5 || expanded["p1"] != 5 {
		t.Fatalf("Expand = %v", expanded)
	}
}

func TestClusteringGroupSizeClamp(t *testing.T) {
	w := dag.New("c")
	w.MustAdd("p0", "proc", 1)
	w.MustAdd("p1", "proc", 1)
	w.MustAdd("p2", "proc", 1)
	// GroupSize below 2 clamps to 2.
	cw, err := Clustering{Horizontal: true, GroupSize: 0}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (groups of 2 then 1)", cw.Workflow.Len())
	}
}

func TestClusteringInvalidWorkflow(t *testing.T) {
	if _, err := (Clustering{Horizontal: true}).Apply(dag.New("empty")); err == nil {
		t.Fatal("empty workflow clustered")
	}
}

func TestClusteringMontageRunsAndExpands(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	w := trace.Montage50(rng)
	cw, err := Clustering{Horizontal: true, GroupSize: 3, Vertical: true}.Apply(w)
	if err != nil {
		t.Fatal(err)
	}
	if err := cw.Workflow.Validate(); err != nil {
		t.Fatal(err)
	}
	if cw.Workflow.Len() >= w.Len() {
		t.Fatalf("clustering did not shrink: %d vs %d", cw.Workflow.Len(), w.Len())
	}
	// Members partition the original activation set.
	seen := make(map[string]bool)
	for _, ms := range cw.Members {
		for _, id := range ms {
			if seen[id] {
				t.Fatalf("activation %s in two clusters", id)
			}
			seen[id] = true
		}
	}
	if len(seen) != w.Len() {
		t.Fatalf("members cover %d of %d", len(seen), w.Len())
	}
	// A plan over the clustered workflow expands to a full plan.
	plan := make(map[string]int)
	for i, a := range cw.Workflow.Activations() {
		plan[a.ID] = i % 3
	}
	full := cw.Expand(plan)
	if len(full) != w.Len() {
		t.Fatalf("expanded plan covers %d of %d", len(full), w.Len())
	}
}

// Property: clustering any generated workflow preserves total runtime,
// yields a valid DAG, and partitions the activation set.
func TestPropertyClusteringInvariants(t *testing.T) {
	fams := trace.Families()
	f := func(seed int64, famIdx, size uint8, horizontal, vertical bool, groupRaw uint8) bool {
		if !horizontal && !vertical {
			horizontal = true
		}
		fam := fams[int(famIdx)%len(fams)]
		rng := rand.New(rand.NewSource(seed))
		w := trace.Named(fam)(rng, int(size)%60+10)
		cl := Clustering{Horizontal: horizontal, Vertical: vertical, GroupSize: int(groupRaw)%5 + 2}
		cw, err := cl.Apply(w)
		if err != nil {
			return false
		}
		if err := cw.Workflow.Validate(); err != nil {
			return false
		}
		if diff := cw.Workflow.TotalRuntime() - w.TotalRuntime(); diff > 1e-6 || diff < -1e-6 {
			return false
		}
		seen := make(map[string]bool)
		for _, ms := range cw.Members {
			for _, id := range ms {
				if seen[id] || w.Get(id) == nil {
					return false
				}
				seen[id] = true
			}
		}
		return len(seen) == w.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: a clustered workflow still simulates to completion, and
// its makespan is at least the original critical path (members run
// serially inside clusters).
func TestPropertyClusteredSimulates(t *testing.T) {
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := trace.MontageN(rng, int(size)%40+15)
		cw, err := Clustering{Horizontal: true, GroupSize: 3}.Apply(w)
		if err != nil {
			return false
		}
		fleet := testFleet16()
		res, err := Run(cw.Workflow, fleet, &greedyFirst{}, Config{Seed: seed})
		if err != nil {
			return false
		}
		if res.State != FinishedOK {
			return false
		}
		_, cp, err := w.CriticalPath()
		if err != nil {
			return false
		}
		return res.Makespan >= cp-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// testFleet16 builds the paper's 16-vCPU fleet for clustering tests.
func testFleet16() *cloud.Fleet {
	f, err := cloud.FleetTable1(16)
	if err != nil {
		panic(err)
	}
	return f
}
