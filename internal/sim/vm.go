package sim

import (
	"fmt"

	"reassign/internal/cloud"
)

// VMState tracks one provisioned VM during a simulation. A VM exposes
// one execution slot per vCPU (SciCumulus's SCCore runs one MPI
// worker per core); the paper's binary idle/busy VM state maps to
// FreeSlots() > 0.
type VMState struct {
	VM    *cloud.VM
	Slots int // total slots = vCPUs

	busy   int
	booted bool // false while the VM is still provisioning
	stats  VMStats

	// slow multiplies task durations on this VM (1 = full speed);
	// market health degradations raise it, recovery restores it.
	slow float64
	// cordoned marks a VM that must accept no new work: a market
	// preemption notice arrived and the kill is pending.
	cordoned bool
	// noticedAt/killAt record the market preemption notice, for
	// schedulers and reports (meaningful only when cordoned).
	noticedAt, killAt float64

	// fileAt records which output files are already resident on this
	// VM, to skip transfer costs for locally produced inputs. It is
	// allocated lazily on the first output produced here.
	fileAt map[string]bool
}

func newVMState(vm *cloud.VM) *VMState {
	return &VMState{
		VM:     vm,
		Slots:  vm.Type.VCPUs,
		booted: true,
		slow:   1,
	}
}

// FreeSlots returns the number of unoccupied execution slots.
func (v *VMState) FreeSlots() int { return v.Slots - v.busy }

// Idle reports whether the VM can accept at least one activation —
// the paper's "idle" VM state. A VM still provisioning is never idle,
// and neither is a cordoned one (preemption notice pending).
func (v *VMState) Idle() bool { return v.booted && !v.cordoned && v.busy < v.Slots }

// Booted reports whether the VM has finished provisioning.
func (v *VMState) Booted() bool { return v.booted }

// Cordoned reports whether a market preemption notice has cordoned
// the VM: running work may finish, but no new work is dispatched.
func (v *VMState) Cordoned() bool { return v.cordoned }

// HealthFactor returns the current task-duration multiplier (1 =
// healthy, >1 = degraded).
func (v *VMState) HealthFactor() float64 {
	if v.slow < 1 {
		return 1
	}
	return v.slow
}

// Stats returns the execution history aggregate for this VM.
func (v *VMState) Stats() VMStats { return v.stats }

// HasFile reports whether the named file was produced on this VM.
func (v *VMState) HasFile(name string) bool { return v.fileAt[name] }

func (v *VMState) acquire() {
	if v.busy >= v.Slots {
		panic(fmt.Sprintf("sim: %s over-committed", v.VM))
	}
	v.busy++
}

func (v *VMState) release() {
	if v.busy <= 0 {
		panic(fmt.Sprintf("sim: %s released while idle", v.VM))
	}
	v.busy--
}

func (v *VMState) String() string {
	return fmt.Sprintf("%s[%d/%d]", v.VM, v.busy, v.Slots)
}
