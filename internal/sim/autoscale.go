package sim

import (
	"fmt"

	"reassign/internal/cloud"
)

// Autoscale adds cloud elasticity to a simulation — the property the
// paper's introduction singles out ("increasing and/or decreasing the
// number of VMs on demand"). The policy watches the ready queue at
// every scheduling cycle: sustained backlog acquires a VM (after a
// boot delay), idle surplus VMs are released once they have been
// empty for the cooldown period. Released VMs never come back; new
// VMs get fresh IDs after the initial fleet.
type Autoscale struct {
	// Type is the instance type acquired on scale-out.
	Type cloud.VMType
	// MaxVMs bounds the total fleet size (initial + acquired); zero
	// disables scale-out.
	MaxVMs int
	// QueuePerFreeSlot triggers scale-out when
	// len(ready) > QueuePerFreeSlot × free slots (default 2).
	QueuePerFreeSlot float64
	// BootDelay is the provisioning latency of an acquired VM in
	// virtual seconds.
	BootDelay float64
	// IdleTimeout releases an acquired VM after it has been
	// continuously idle this long (0 keeps acquired VMs forever).
	// Only acquired VMs are released; the initial fleet is pinned.
	IdleTimeout float64
	// Cooldown is the minimum time between two scale-out decisions
	// (default 0: every cycle may scale).
	Cooldown float64
}

// validate checks the policy.
func (a *Autoscale) validate() error {
	if a.MaxVMs < 0 {
		return fmt.Errorf("sim: autoscale MaxVMs negative")
	}
	if a.BootDelay < 0 || a.IdleTimeout < 0 || a.Cooldown < 0 {
		return fmt.Errorf("sim: autoscale delays negative")
	}
	if a.MaxVMs > 0 && a.Type.VCPUs <= 0 {
		return fmt.Errorf("sim: autoscale type %q has no vCPUs", a.Type.Name)
	}
	return nil
}

// scaler is the per-run autoscaler state.
type scaler struct {
	policy    *Autoscale
	lastScale float64
	acquired  int
	released  int // acquired VMs retired for idleness
	// nextID is the ID the next acquired VM receives: one past the
	// highest ID in the fleet so far. Allocating len(g.vms) instead
	// would collide with hand-built fleets whose IDs have gaps.
	nextID int
	// isAcquired marks VMs added by scale-out. Only acquired VMs may
	// be retired; the initial fleet is pinned whatever its IDs are.
	isAcquired map[*VMState]bool
	// dead holds VMs that can never work again — idle-retired or
	// spot-revoked. They do not count against MaxVMs.
	dead        map[*VMState]bool
	idleSince   map[*VMState]float64
	acquireTime map[*VMState]float64 // boot completion per acquired VM
	releaseTime map[*VMState]float64
}

func newScaler(p *Autoscale, maxID int) *scaler {
	return &scaler{
		policy:      p,
		lastScale:   -1e18,
		nextID:      maxID + 1,
		isAcquired:  make(map[*VMState]bool),
		dead:        make(map[*VMState]bool),
		idleSince:   make(map[*VMState]float64),
		acquireTime: make(map[*VMState]float64),
		releaseTime: make(map[*VMState]float64),
	}
}

// vmRevoked tells the scaler a spot revocation killed v: the corpse
// stops counting against MaxVMs (so scale-out can replace it), stops
// being tracked for idleness, and — if it was acquired — stops
// billing at the revocation instant.
func (sc *scaler) vmRevoked(v *VMState, now float64) {
	if sc.dead[v] {
		return
	}
	sc.dead[v] = true
	delete(sc.idleSince, v)
	if sc.isAcquired[v] {
		if _, ok := sc.releaseTime[v]; !ok {
			sc.releaseTime[v] = now
		}
	}
}

// step runs one autoscaling decision. It may append booted-later VMs
// to the engine and retire idle acquired ones.
func (g *Engine) autoscaleStep() {
	sc := g.scaler
	if sc == nil {
		return
	}
	p := sc.policy
	now := g.sim.Now()

	// Scale in: retire acquired VMs idle past the timeout.
	if p.IdleTimeout > 0 {
		for _, v := range g.vms {
			if sc.dead[v] || !v.booted {
				continue
			}
			if v.busy > 0 {
				delete(sc.idleSince, v)
				continue
			}
			since, tracked := sc.idleSince[v]
			if !tracked {
				sc.idleSince[v] = now
				continue
			}
			if sc.isAcquired[v] && now-since >= p.IdleTimeout {
				sc.dead[v] = true
				sc.released++
				sc.releaseTime[v] = now
				delete(sc.idleSince, v)
				v.booted = false // never idle again
				if g.hook != nil {
					g.hook.VMRetired(now, v)
				}
			}
		}
	}

	// Scale out: sustained backlog and room to grow. Dead VMs (retired
	// or spot-revoked) no longer occupy capacity.
	if p.MaxVMs <= 0 || len(g.vms)-len(sc.dead) >= p.MaxVMs {
		return
	}
	if now-sc.lastScale < p.Cooldown {
		return
	}
	freeSlots := 0
	for _, v := range g.vms {
		if v.booted {
			freeSlots += v.FreeSlots()
		}
	}
	threshold := p.QueuePerFreeSlot
	if threshold <= 0 {
		threshold = 2
	}
	if float64(len(g.ready)) <= threshold*float64(freeSlots) {
		return
	}
	sc.lastScale = now
	sc.acquired++
	vm := &cloud.VM{ID: sc.nextID, Type: p.Type}
	sc.nextID++
	if len(g.fleet.VMs) > 0 {
		vm.Site = g.fleet.VMs[0].Site
	}
	v := newVMState(vm)
	v.booted = false
	sc.isAcquired[v] = true
	g.vms = append(g.vms, v)
	g.env.vms = g.vms
	sc.acquireTime[v] = now + p.BootDelay
	if g.hook != nil {
		g.hook.VMAdded(now, v)
	}
	g.sim.At(now+p.BootDelay, func() {
		if !sc.dead[v] {
			v.booted = true
			g.postCycle()
		}
	})
	// Acquired VMs are spot instances too when a spot policy is active.
	g.scheduleSpotRevocation(v, now+p.BootDelay)
}

// ElasticityReport summarises autoscaling activity in a Result.
type ElasticityReport struct {
	Acquired int // VMs added beyond the initial fleet
	Released int // acquired VMs retired for idleness
	PeakVMs  int // maximum concurrently usable VMs
}
