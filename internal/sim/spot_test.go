package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/trace"
)

func TestSpotValidation(t *testing.T) {
	w := chain(1)
	fleet := singleVMFleet()
	if _, err := Run(w, fleet, &greedyFirst{}, Config{Spot: &SpotPolicy{}}); err == nil {
		t.Fatal("zero MeanLifetime accepted")
	}
}

func TestSpotRevocationRequeuesWork(t *testing.T) {
	// Two VMs, aggressive revocation on all but one (KeepOne): the
	// workflow must still finish, with revocations observed and
	// aborted attempts recorded.
	rng := rand.New(rand.NewSource(3))
	w := trace.Montage50(rng)
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Large}, []int{2})
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Seed: 3,
		Spot: &SpotPolicy{MeanLifetime: 200, KeepOne: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Revocations != 1 {
		t.Fatalf("revocations = %d, want 1 (one eligible VM)", res.Revocations)
	}
	// Every activation still succeeded exactly once.
	if err := res.Verify(w, fleet); err != nil {
		t.Fatal(err)
	}
	// Aborted attempts appear as unsuccessful records.
	aborted := 0
	for _, r := range res.Records {
		if !r.Success {
			aborted++
		}
	}
	if aborted == 0 {
		t.Log("revocation hit an idle moment; no aborted attempts (acceptable)")
	}
}

func TestSpotKeepOneGuaranteesCompletion(t *testing.T) {
	// All VMs spot with tiny lifetimes: KeepOne must still finish the
	// workflow on the protected VM.
	rng := rand.New(rand.NewSource(4))
	w := trace.Montage(rng, 4, 2)
	fleet := cloud.MustFleet("four", []cloud.VMType{cloud.T2Large}, []int{4})
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Seed: 4,
		Spot: &SpotPolicy{MeanLifetime: 10, KeepOne: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Revocations != 3 {
		t.Fatalf("revocations = %d, want 3", res.Revocations)
	}
}

func TestSpotEligibleTypeOnly(t *testing.T) {
	// Only micro instances are spot; the 2xlarge must survive.
	rng := rand.New(rand.NewSource(5))
	w := trace.Montage(rng, 5, 2)
	fleet, _ := cloud.FleetTable1(16)
	res, err := Run(w, fleet, &greedyFirst{}, Config{
		Seed: 5,
		Spot: &SpotPolicy{MeanLifetime: 50, EligibleType: "t2.micro"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Revocations == 0 {
		t.Fatal("no micro revoked despite tiny lifetime")
	}
	// Post-revocation work lands on the surviving 2xlarge (ID 8):
	// later successful records cluster there.
	lastOnBig := false
	var lastFinish float64
	var lastVM int
	for _, r := range res.Records {
		if r.Success && r.FinishAt > lastFinish {
			lastFinish = r.FinishAt
			lastVM = r.VMID
		}
	}
	lastOnBig = lastVM == 8
	if !lastOnBig {
		t.Logf("last task ran on vm%d (2xlarge not required but typical)", lastVM)
	}
}

func TestSpotRevocationDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	w := trace.Montage(rng, 6, 3)
	fleet := cloud.MustFleet("three", []cloud.VMType{cloud.T2Large}, []int{3})
	run := func() *Result {
		res, err := Run(w, fleet, &greedyFirst{}, Config{
			Seed: 6,
			Spot: &SpotPolicy{MeanLifetime: 150, KeepOne: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan || a.Revocations != b.Revocations || len(a.Records) != len(b.Records) {
		t.Fatal("spot runs not deterministic")
	}
}

// Property: under KeepOne spot churn, dynamic scheduling always
// completes every activation exactly once (successfully).
func TestPropertySpotAlwaysCompletes(t *testing.T) {
	f := func(seed int64, lifeRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := trace.MontageN(rng, 25)
		fleet := cloud.MustFleet("pool", []cloud.VMType{cloud.T2Large}, []int{3})
		life := float64(int(lifeRaw)%400) + 20
		res, err := Run(w, fleet, &greedyFirst{}, Config{
			Seed: seed,
			Spot: &SpotPolicy{MeanLifetime: life, KeepOne: true},
		})
		if err != nil {
			return false
		}
		if res.State != FinishedOK {
			return false
		}
		return res.Verify(w, fleet) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestSpotRevokeMultiVCPUTraceStable is the regression test for the
// revoke-ordering fix: aborting g.running in map-iteration order
// emitted the failure records of a multi-vCPU revocation in an order
// that varied between runs, breaking the byte-stable-trace contract.
// The test finds a seed whose revocation kills at least two tasks at
// the same instant, then demands bit-identical traces across many
// repeats (pre-fix, map order made these diverge within a handful of
// runs).
func TestSpotRevokeMultiVCPUTraceStable(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(8)))
	fleet := cloud.MustFleet("spot2x", []cloud.VMType{cloud.T22XLarge}, []int{2})
	run := func(seed int64) *Result {
		res, err := Run(w, fleet, &greedyFirst{}, Config{
			Seed: seed,
			Spot: &SpotPolicy{MeanLifetime: 250, KeepOne: true},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Probe seeds until a revocation aborts ≥2 concurrent tasks on
	// the 8-slot VM — the only case where abort order matters.
	var first *Result
	var seed int64
	for seed = 1; seed <= 40; seed++ {
		res := run(seed)
		byTime := make(map[float64]int)
		for _, r := range res.Records {
			if !r.Success {
				byTime[r.FinishAt]++
			}
		}
		for _, n := range byTime {
			if n >= 2 {
				first = res
				break
			}
		}
		if first != nil {
			break
		}
	}
	if first == nil {
		t.Fatal("no probed seed produced a multi-task revocation; retune the scenario")
	}
	for i := 0; i < 24; i++ {
		requireEqualRuns(t, first, run(seed))
	}
}
