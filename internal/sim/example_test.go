package sim_test

import (
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// shortestFirst is a custom scheduler: dispatch the shortest ready
// activation first, always to the first idle VM. Implementing
// sim.Scheduler is all it takes to plug into the simulator.
type shortestFirst struct{}

func (shortestFirst) Name() string                                        { return "shortest-first" }
func (shortestFirst) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

func (shortestFirst) Pick(ctx *sim.Context) []sim.Assignment {
	if len(ctx.Ready) == 0 || len(ctx.IdleVMs) == 0 {
		return nil
	}
	best := ctx.Ready[0]
	for _, t := range ctx.Ready[1:] {
		if t.Act.Runtime < best.Act.Runtime {
			best = t
		}
	}
	return []sim.Assignment{{Task: best, VM: ctx.IdleVMs[0]}}
}

// Example plugs a custom scheduler into the WorkflowSim-equivalent
// simulator and checks the resulting schedule.
func Example() {
	w := dag.New("demo")
	w.MustAdd("long", "compute", 30)
	w.MustAdd("short", "compute", 5)

	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	res, _ := sim.Run(w, fleet, shortestFirst{}, sim.Config{})

	fmt.Println("state:", res.State)
	fmt.Printf("makespan: %.0fs\n", res.Makespan)
	fmt.Println("first finished:", res.Records[0].TaskID)
	fmt.Println("consistent:", res.Verify(w, fleet) == nil)
	// Output:
	// state: successfully finished
	// makespan: 35s
	// first finished: short
	// consistent: true
}
