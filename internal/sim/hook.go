package sim

// Hook observes simulation runs from inside the engine — the
// structural counterpart of telemetry.Sink, which only sees run
// summaries. A Hook is a factory: the engine calls RunStart once per
// run (fresh or Reset) and routes every subsequent observation to the
// returned RunHook, so one Hook can audit concurrent engines (replica
// learning) without shared mutable per-run state.
//
// Hooks are nil by default and every engine call site is nil-guarded,
// so the disabled path costs one pointer comparison and allocates
// nothing — the learning hot path is untouched unless a hook is
// installed. The invariant auditor (package invariant) is the
// canonical implementation.
type Hook interface {
	// RunStart is called once per run after per-run state is
	// initialised and before any event executes. Returning nil disables
	// observation for this run.
	RunStart(env *Env) RunHook
}

// RunHook receives the engine-internal transitions of one simulation
// run, in event-execution order. All calls happen on the goroutine
// driving the run; implementations need no internal locking for
// per-run state.
//
// The *Task and *VMState pointers identify live engine state: hooks
// may read them but must not mutate them, and must not retain them
// past RunEnd (Reset reuses the backing arrays).
type RunHook interface {
	// Decision fires after the scheduling context is built and before
	// the scheduler's Pick. ctx contents are only valid for the call.
	Decision(now float64, ctx *Context)
	// TaskReady fires when a task enters the ready queue (first
	// release, retry, or spot-abort requeue).
	TaskReady(now float64, t *Task)
	// TaskStart fires when an assignment is accepted and the task
	// occupies a VM slot.
	TaskStart(now float64, t *Task, v *VMState)
	// TaskFinish fires when an execution attempt completes. terminal
	// reports whether the task reached a terminal state (success, or
	// failure with retries exhausted); a non-terminal finish is a
	// failed attempt heading back to the ready queue.
	TaskFinish(now float64, t *Task, v *VMState, terminal, success bool)
	// TaskAbort fires when a spot revocation kills a running attempt;
	// the task returns to the ready queue.
	TaskAbort(now float64, t *Task, v *VMState)
	// TaskCancel fires when a still-locked descendant of a terminally
	// failed task is cancelled (terminal, no execution record).
	TaskCancel(now float64, t *Task)
	// VMAdded fires when the autoscaler acquires a VM (not yet booted).
	VMAdded(now float64, v *VMState)
	// VMRetired fires when the autoscaler releases an idle acquired VM.
	VMRetired(now float64, v *VMState)
	// VMRevoked fires when a spot revocation kills a VM, before its
	// running tasks are aborted.
	VMRevoked(now float64, v *VMState)
	// RunEnd fires once with the finished result, after every field of
	// res (records, stats, cost, elasticity, kernel counters) is final.
	// It is not called for runs that end in an error.
	RunEnd(res *Result)
}
