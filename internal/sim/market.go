package sim

import (
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/market"
)

// MarketReport summarises the market side of one traced run.
type MarketReport struct {
	// Cost is the traced bill: per-second billing against the traced
	// spot prices (on-demand VMs at the fixed rate), each VM clipped
	// at its kill time. Result.Cost equals Cost.Total.
	Cost market.CostReport
	// Notices counts preemption notices delivered (VM cordoned).
	Notices int
	// Kills counts preemptions executed (VM revoked).
	Kills int
	// Degraded counts health downgrades applied.
	Degraded int
	// CordonedAtEnd counts VMs still cordoned-but-alive when the run
	// finished (notice received, kill not yet landed).
	CordonedAtEnd int
}

// MarketRunHook is an optional RunHook extension: hooks that also
// implement it receive market lifecycle transitions. The engine
// resolves the assertion once per run, so plain hooks pay nothing.
type MarketRunHook interface {
	// VMNoticed fires when a preemption notice cordons a VM; killAt is
	// the traced kill time.
	VMNoticed(now float64, v *VMState, killAt float64)
	// VMHealthChanged fires when a VM's health factor changes (factor
	// > 1 = degraded, factor == 1 = recovered).
	VMHealthChanged(now float64, v *VMState, factor float64)
}

// marketCounters accumulates per-run market event counts.
type marketCounters struct {
	notices, kills, degrades int
}

// validateMarket checks that a market playback covers the fleet:
// every VM must be assigned a traced provider, or cost accounting
// would silently under-bill.
func validateMarket(fleet *cloud.Fleet, pb *market.Playback) error {
	if pb == nil {
		return nil
	}
	for _, vm := range fleet.VMs {
		if _, ok := pb.AssignFor(vm.ID); !ok {
			return fmt.Errorf("sim: market trace does not assign vm %d (%s); regenerate the trace for this fleet",
				vm.ID, vm.Type.Name)
		}
	}
	return nil
}

// scheduleMarket arms the trace's lifecycle events: notices cordon,
// kills revoke (notice-then-kill by trace validation), degrade/recover
// move the health factor. Events for unknown VMs are impossible here —
// validateMarket requires full fleet coverage, and extra traced VMs
// simply have no state to resolve.
func (g *Engine) scheduleMarket() {
	g.marketStats = marketCounters{}
	pb := g.cfg.Market
	if pb == nil {
		return
	}
	for _, ev := range pb.Events() {
		ev := ev
		v := g.env.VMStateByID(ev.VM)
		if v == nil {
			continue
		}
		switch ev.Kind {
		case market.EvNotice:
			g.sim.At(ev.At, func() { g.marketNotice(v, ev.At, ev.KillAt) })
		case market.EvKill:
			g.sim.At(ev.At, func() { g.marketKill(v) })
		case market.EvDegrade:
			g.sim.At(ev.At, func() { g.marketHealth(v, ev.Slow) })
		case market.EvRecover:
			g.sim.At(ev.At, func() { g.marketHealth(v, 1) })
		}
	}
}

// marketNotice cordons a VM: running work may finish, no new work is
// dispatched, and the kill lands at killAt.
func (g *Engine) marketNotice(v *VMState, now, killAt float64) {
	if g.remaining == 0 || !v.booted || v.cordoned {
		return
	}
	v.cordoned = true
	v.noticedAt, v.killAt = now, killAt
	g.marketStats.notices++
	if g.mhook != nil {
		g.mhook.VMNoticed(g.sim.Now(), v, killAt)
	}
	// Cordoning only removes capacity; nothing becomes schedulable, so
	// no cycle is posted.
}

// marketKill executes a traced preemption through the spot revocation
// path: running attempts abort back to the ready queue in task-index
// order and the VM never returns.
func (g *Engine) marketKill(v *VMState) {
	if g.remaining == 0 || !v.booted {
		return
	}
	g.marketStats.kills++
	g.revoke(v)
}

// marketHealth moves a VM's health factor. Only executions that start
// after the transition observe the new factor — in-flight completions
// keep their drawn duration, the way a slowly degrading node hurts
// the next task more than the current one.
func (g *Engine) marketHealth(v *VMState, factor float64) {
	if g.remaining == 0 || !v.booted {
		return
	}
	if factor < 1 {
		factor = 1
	}
	if factor == v.slow {
		return
	}
	v.slow = factor
	if factor > 1 {
		g.marketStats.degrades++
	}
	if g.mhook != nil {
		g.mhook.VMHealthChanged(g.sim.Now(), v, factor)
	}
}

// finishMarket bills the run against the traced prices and attaches
// the market report. Billing is per-second from t=0 to the makespan,
// each VM clipped at its traced kill time, accumulated in VM-id order
// so the totals are bit-identical across runs.
func (g *Engine) finishMarket() {
	pb := g.cfg.Market
	rep := &MarketReport{
		Cost:     pb.FleetCost(g.result.Makespan),
		Notices:  g.marketStats.notices,
		Kills:    g.marketStats.kills,
		Degraded: g.marketStats.degrades,
	}
	for _, v := range g.vms {
		if v.cordoned && v.booted {
			rep.CordonedAtEnd++
		}
	}
	g.result.Market = rep
	g.result.Cost = rep.Cost.Total
}

// Market returns the active market playback, or nil.
func (e *Env) Market() *market.Playback { return e.cfg.Market }

// MarketCostAt returns the traced fleet bill accrued by virtual time
// t — a pure function of the trace (kill clipping included), so
// auditors can check that accounted cost is non-negative and monotone
// without engine state.
func (e *Env) MarketCostAt(t float64) float64 {
	if e.cfg.Market == nil {
		return 0
	}
	return e.cfg.Market.FleetCost(t).Total
}
