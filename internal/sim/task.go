// Package sim is the WorkflowSim-equivalent cloud workflow simulator:
// a workflow engine that releases activations as their dependencies
// finish, a pluggable scheduler invoked whenever the workflow is in
// the paper's "available" state (≥1 ready activation and ≥1 idle VM
// slot), configurable overhead layers (engine, queue and post-script
// delays), task-failure injection with retries, and optional runtime
// fluctuation.
//
// It runs on the deterministic discrete-event kernel in package des,
// so a given (workflow, fleet, scheduler, seed) reproduces the same
// trace bit for bit.
package sim

import (
	"fmt"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/dag"
)

// TaskState is the per-activation state machine from the paper
// (§III.A): locked → ready → running → {succeeded, failed}.
type TaskState int

const (
	// Locked: waiting for at least one parent activation.
	Locked TaskState = iota
	// Ready: all dependencies satisfied, waiting to be scheduled.
	Ready
	// Running: executing on a VM.
	Running
	// Succeeded: finished without failure.
	Succeeded
	// Failed: finished with a failure (after exhausting retries).
	Failed
)

// String implements fmt.Stringer.
func (s TaskState) String() string {
	switch s {
	case Locked:
		return "locked"
	case Ready:
		return "ready"
	case Running:
		return "running"
	case Succeeded:
		return "succeeded"
	case Failed:
		return "failed"
	default:
		return fmt.Sprintf("TaskState(%d)", int(s))
	}
}

// WorkflowState is the paper's four-valued workflow state submitted
// to the Q function.
type WorkflowState int

const (
	// Available: ≥1 ready activation and ≥1 idle VM slot.
	Available WorkflowState = iota
	// Unavailable: nothing can be scheduled right now.
	Unavailable
	// FinishedOK: all activations succeeded (terminal).
	FinishedOK
	// FinishedFailed: at least one activation failed and nothing is
	// left to run (terminal).
	FinishedFailed
)

// String implements fmt.Stringer.
func (s WorkflowState) String() string {
	switch s {
	case Available:
		return "available"
	case Unavailable:
		return "unavailable"
	case FinishedOK:
		return "successfully finished"
	case FinishedFailed:
		return "finished with failure"
	default:
		return fmt.Sprintf("WorkflowState(%d)", int(s))
	}
}

// Task is one activation's simulation state.
type Task struct {
	Act   *dag.Activation
	State TaskState

	// VM the task is (or was last) assigned to; nil before the first
	// assignment.
	VM *cloud.VM

	// Timestamps in virtual seconds. ReadyAt is when the task entered
	// the ready queue (most recently, if retried).
	ReadyAt  float64
	StartAt  float64
	FinishAt float64

	// Attempts counts executions, including failed ones.
	Attempts int

	waitingOn int // unfinished parents
}

// QueueTime returns tf_i: how long the activation waited between
// becoming ready and starting (for its successful attempt).
func (t *Task) QueueTime() float64 { return t.StartAt - t.ReadyAt }

// ExecTime returns te_i: the wall time of the (last) execution.
func (t *Task) ExecTime() float64 { return t.FinishAt - t.StartAt }

// TotalTime returns tt_i = te_i + tf_i.
func (t *Task) TotalTime() float64 { return t.ExecTime() + t.QueueTime() }

// Record is an immutable provenance-style record of one finished
// activation, the unit the reward function consumes.
type Record struct {
	TaskID   string
	Activity string
	VMID     int
	VMType   string
	ReadyAt  float64
	StartAt  float64
	FinishAt float64
	Attempts int
	Success  bool
}

// QueueTime returns tf_i for the record.
func (r Record) QueueTime() float64 { return r.StartAt - r.ReadyAt }

// ExecTime returns te_i for the record.
func (r Record) ExecTime() float64 { return r.FinishAt - r.StartAt }

// VMStats aggregates execution history on one VM, feeding the paper's
// Eq. 4 (per-VM mean performance index).
type VMStats struct {
	N       int     // finished activations
	SumExec float64 // Σ te_i
	SumWait float64 // Σ tf_i
	Busy    float64 // total busy slot-seconds
}

// MeanExec returns the mean execution time, or 0 when empty.
func (s VMStats) MeanExec() float64 {
	if s.N == 0 {
		return 0
	}
	return s.SumExec / float64(s.N)
}

// MeanWait returns the mean queue time, or 0 when empty.
func (s VMStats) MeanWait() float64 {
	if s.N == 0 {
		return 0
	}
	return s.SumWait / float64(s.N)
}

// add folds one finished activation into the aggregate.
func (s *VMStats) add(exec, wait float64) {
	s.N++
	s.SumExec += exec
	s.SumWait += wait
	s.Busy += exec
}

// Verify checks a result against its workflow: every activation ran
// exactly once successfully (for FinishedOK results), no record
// starts before its dependencies' successful completions, and no VM
// ever exceeds its slot capacity. It returns nil for a consistent
// result. Use it in tests and after custom schedulers.
func (r *Result) Verify(w *dag.Workflow, fleet *cloud.Fleet) error {
	if r.State == FinishedOK {
		okCount := make(map[string]int)
		for _, rec := range r.Records {
			if rec.Success {
				okCount[rec.TaskID]++
			}
		}
		for _, a := range w.Activations() {
			if okCount[a.ID] != 1 {
				return fmt.Errorf("sim: activation %s has %d successful records, want 1", a.ID, okCount[a.ID])
			}
			if _, planned := r.Plan[a.ID]; !planned {
				return fmt.Errorf("sim: activation %s missing from plan", a.ID)
			}
		}
	}
	// Dependency order over successful records.
	finish := make(map[string]float64)
	for _, rec := range r.Records {
		if rec.Success {
			finish[rec.TaskID] = rec.FinishAt
		}
	}
	const eps = 1e-9
	for _, rec := range r.Records {
		if !rec.Success {
			continue
		}
		a := w.Get(rec.TaskID)
		if a == nil {
			return fmt.Errorf("sim: record for unknown activation %s", rec.TaskID)
		}
		for _, p := range a.Parents() {
			pf, ok := finish[p.ID]
			if !ok {
				return fmt.Errorf("sim: %s ran but parent %s never finished", rec.TaskID, p.ID)
			}
			if rec.StartAt < pf-eps {
				return fmt.Errorf("sim: %s started at %v before parent %s finished at %v",
					rec.TaskID, rec.StartAt, p.ID, pf)
			}
		}
	}
	// Slot capacity: sweep start/finish events per VM.
	type event struct {
		t     float64
		delta int
	}
	perVM := make(map[int][]event)
	for _, rec := range r.Records {
		perVM[rec.VMID] = append(perVM[rec.VMID],
			event{rec.StartAt, 1}, event{rec.FinishAt, -1})
	}
	slots := make(map[int]int)
	for _, vm := range fleet.VMs {
		slots[vm.ID] = vm.Type.VCPUs
	}
	for vmID, evs := range perVM {
		cap, known := slots[vmID]
		if !known {
			// Autoscaled VM beyond the initial fleet: capacity unknown
			// here; skip the sweep for it.
			continue
		}
		sort.Slice(evs, func(i, j int) bool {
			if evs[i].t != evs[j].t {
				return evs[i].t < evs[j].t
			}
			return evs[i].delta < evs[j].delta // finish before start at ties
		})
		busy := 0
		for _, e := range evs {
			busy += e.delta
			if busy > cap {
				return fmt.Errorf("sim: vm%d exceeded %d slots", vmID, cap)
			}
		}
	}
	return nil
}
