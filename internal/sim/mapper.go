package sim

import (
	"fmt"
	"sort"

	"reassign/internal/dag"
)

// Mapper is WorkflowSim's remaining layer: it turns an *abstract*
// workflow into a *concrete* one by inserting data-staging
// activations, the way Pegasus plans stage-in/stage-out transfer
// jobs. External inputs (files no activation produces) gain a
// stage_in activation; final outputs (files no activation consumes)
// gain a stage_out activation.
type Mapper struct {
	// StageRate converts bytes to staging runtime (seconds per MB at
	// the shared-storage link; default 0.1 s/MB ≈ 10 MB/s).
	StageRate float64
	// Batch merges all external inputs into one stage_in (and all
	// final outputs into one stage_out) instead of one per file.
	Batch bool
}

// stageActivity names used by the mapper.
const (
	StageIn  = "stage_in"
	StageOut = "stage_out"
)

// Apply returns a concrete workflow with staging activations. The
// input workflow is not modified.
func (m Mapper) Apply(w *dag.Workflow) (*dag.Workflow, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sim: mapper: %w", err)
	}
	rate := m.StageRate
	if rate <= 0 {
		rate = 0.1
	}
	out := w.Clone()
	out.Name = w.Name + "_concrete"

	produced := make(map[string]bool)
	consumed := make(map[string]bool)
	for _, a := range w.Activations() {
		for _, f := range a.Outputs {
			produced[f.Name] = true
		}
		for _, f := range a.Inputs {
			consumed[f.Name] = true
		}
	}

	// External inputs per consumer, deterministic order.
	type need struct {
		consumer string
		file     dag.File
	}
	var ins []need
	for _, a := range w.Activations() {
		for _, f := range a.Inputs {
			if !produced[f.Name] {
				ins = append(ins, need{a.ID, f})
			}
		}
	}
	var outs []need
	for _, a := range w.Activations() {
		for _, f := range a.Outputs {
			if !consumed[f.Name] {
				outs = append(outs, need{a.ID, f})
			}
		}
	}

	cost := func(bytes int64) float64 { return float64(bytes) / 1e6 * rate }

	if m.Batch {
		if len(ins) > 0 {
			var total int64
			for _, n := range ins {
				total += n.file.Size
			}
			si, err := out.Add(StageIn+"_all", StageIn, cost(total))
			if err != nil {
				return nil, err
			}
			seen := map[string]bool{}
			for _, n := range ins {
				if !seen[n.file.Name] {
					seen[n.file.Name] = true
					si.Outputs = append(si.Outputs, n.file)
				}
				if !out.HasDep(si.ID, n.consumer) {
					if err := out.AddDep(si.ID, n.consumer); err != nil {
						return nil, err
					}
				}
			}
		}
		if len(outs) > 0 {
			var total int64
			for _, n := range outs {
				total += n.file.Size
			}
			so, err := out.Add(StageOut+"_all", StageOut, cost(total))
			if err != nil {
				return nil, err
			}
			for _, n := range outs {
				so.Inputs = append(so.Inputs, n.file)
				if !out.HasDep(n.consumer, so.ID) {
					if err := out.AddDep(n.consumer, so.ID); err != nil {
						return nil, err
					}
				}
			}
		}
	} else {
		// One staging activation per distinct external file.
		inFiles := map[string][]string{} // file -> consumers
		sizes := map[string]int64{}
		for _, n := range ins {
			inFiles[n.file.Name] = append(inFiles[n.file.Name], n.consumer)
			sizes[n.file.Name] = n.file.Size
		}
		names := make([]string, 0, len(inFiles))
		for f := range inFiles {
			names = append(names, f)
		}
		sort.Strings(names)
		for i, f := range names {
			si, err := out.Add(fmt.Sprintf("%s_%03d", StageIn, i), StageIn, cost(sizes[f]))
			if err != nil {
				return nil, err
			}
			si.Outputs = []dag.File{{Name: f, Size: sizes[f]}}
			for _, c := range inFiles[f] {
				if !out.HasDep(si.ID, c) {
					if err := out.AddDep(si.ID, c); err != nil {
						return nil, err
					}
				}
			}
		}
		for i, n := range outs {
			so, err := out.Add(fmt.Sprintf("%s_%03d", StageOut, i), StageOut, cost(n.file.Size))
			if err != nil {
				return nil, err
			}
			so.Inputs = []dag.File{n.file}
			if err := out.AddDep(n.consumer, so.ID); err != nil {
				return nil, err
			}
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("sim: mapper produced invalid workflow: %w", err)
	}
	return out, nil
}
