package sim

import (
	"fmt"
	"sort"

	"reassign/internal/dag"
)

// Clustering mirrors WorkflowSim's clustering engine: it coarsens a
// workflow by merging activations before scheduling, trading
// parallelism for lower per-task overhead.
type Clustering struct {
	// Horizontal merges up to GroupSize same-activity activations on
	// the same level into one clustered activation.
	Horizontal bool
	GroupSize  int
	// Vertical merges single-parent/single-child chains of the same
	// activity into one activation.
	Vertical bool
}

// ClusteredWorkflow is the result of applying Clustering: the merged
// workflow plus the mapping from clustered activation IDs back to the
// original member IDs.
type ClusteredWorkflow struct {
	Workflow *dag.Workflow
	// Members maps each clustered activation ID to the original
	// activation IDs it contains (singletons included).
	Members map[string][]string
}

// Expand translates a plan on the clustered workflow (activation ID →
// VM ID) back to a plan on the original workflow.
func (c *ClusteredWorkflow) Expand(plan map[string]int) map[string]int {
	out := make(map[string]int, len(plan))
	for cid, vm := range plan {
		for _, id := range c.Members[cid] {
			out[id] = vm
		}
	}
	return out
}

// Apply clusters the workflow. The input is not modified.
func (c Clustering) Apply(w *dag.Workflow) (*ClusteredWorkflow, error) {
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sim: clustering: %w", err)
	}
	// Start with the identity grouping.
	groups := make(map[string][]string) // leader ID -> member IDs
	leaderOf := make(map[string]string) // member ID -> leader ID
	for _, a := range w.Activations() {
		groups[a.ID] = []string{a.ID}
		leaderOf[a.ID] = a.ID
	}

	if c.Horizontal {
		size := c.GroupSize
		if size < 2 {
			size = 2
		}
		levels, err := w.Levels()
		if err != nil {
			return nil, err
		}
		for _, level := range levels {
			// Bucket by activity, keep deterministic order.
			byAct := make(map[string][]*dag.Activation)
			var acts []string
			for _, a := range level {
				if _, seen := byAct[a.Activity]; !seen {
					acts = append(acts, a.Activity)
				}
				byAct[a.Activity] = append(byAct[a.Activity], a)
			}
			sort.Strings(acts)
			for _, act := range acts {
				bucket := byAct[act]
				for i := 0; i < len(bucket); i += size {
					end := i + size
					if end > len(bucket) {
						end = len(bucket)
					}
					leader := bucket[i].ID
					for _, m := range bucket[i+1 : end] {
						groups[leader] = append(groups[leader], m.ID)
						leaderOf[m.ID] = leader
						delete(groups, m.ID)
					}
				}
			}
		}
	}

	if c.Vertical {
		// Merge a->b when a has exactly one child b, b has exactly one
		// parent a, and they share the activity. Union-find style over
		// current leaders.
		find := func(id string) string {
			for leaderOf[id] != id {
				id = leaderOf[id]
			}
			return id
		}
		for _, a := range w.Activations() {
			if len(a.Children()) != 1 {
				continue
			}
			b := a.Children()[0]
			if len(b.Parents()) != 1 || b.Activity != a.Activity {
				continue
			}
			la, lb := find(a.ID), find(b.ID)
			if la == lb {
				continue
			}
			groups[la] = append(groups[la], groups[lb]...)
			for _, m := range groups[lb] {
				leaderOf[m] = la
			}
			delete(groups, lb)
		}
	}

	// Build the clustered workflow: one activation per group, runtime
	// summed (members run serially within the cluster), files unioned.
	cw := dag.New(w.Name + "_clustered")
	members := make(map[string][]string, len(groups))
	// Deterministic creation order: by minimum member index.
	type g struct {
		leader string
		minIdx int
	}
	var ordered []g
	for leader, ms := range groups {
		min := w.Len()
		for _, id := range ms {
			if idx := w.Get(id).Index; idx < min {
				min = idx
			}
		}
		ordered = append(ordered, g{leader, min})
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].minIdx < ordered[j].minIdx })
	resolve := func(id string) string {
		for leaderOf[id] != id {
			id = leaderOf[id]
		}
		return id
	}
	for _, grp := range ordered {
		ms := groups[grp.leader]
		sort.Slice(ms, func(i, j int) bool { return w.Get(ms[i]).Index < w.Get(ms[j]).Index })
		var runtime float64
		var ins, outs []dag.File
		activity := w.Get(grp.leader).Activity
		for _, id := range ms {
			a := w.Get(id)
			runtime += a.Runtime
			ins = append(ins, a.Inputs...)
			outs = append(outs, a.Outputs...)
		}
		ca, err := cw.Add(grp.leader, activity, runtime)
		if err != nil {
			return nil, err
		}
		ca.Inputs, ca.Outputs = ins, outs
		members[grp.leader] = ms
	}
	// Edges between distinct groups.
	for _, a := range w.Activations() {
		la := resolve(a.ID)
		for _, ch := range a.Children() {
			lb := resolve(ch.ID)
			if la != lb {
				if err := cw.AddDep(la, lb); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := cw.Validate(); err != nil {
		return nil, fmt.Errorf("sim: clustering produced invalid workflow: %w", err)
	}
	return &ClusteredWorkflow{Workflow: cw, Members: members}, nil
}
