package sim

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/des"
	"reassign/internal/market"
	"reassign/internal/telemetry"
)

// Assignment is one scheduling decision: run Task on VM.
type Assignment struct {
	Task *Task
	VM   *VMState
}

// Context is the scheduler's view at one decision point: the workflow
// is Available, Ready and IdleVMs are non-empty.
type Context struct {
	Now     float64
	Ready   []*Task    // ready, unassigned, sorted by (ReadyAt, Index)
	IdleVMs []*VMState // VMs with ≥1 free slot, sorted by ID
	AllVMs  []*VMState // every VM, sorted by ID
	Env     *Env
}

// Scheduler matches ready activations to idle VMs. Implementations
// may keep state across calls within one simulation; Prepare resets
// it.
type Scheduler interface {
	// Name identifies the algorithm in results and tables.
	Name() string
	// Prepare is called once before the simulation starts. Static
	// planners (HEFT) compute their full plan here.
	Prepare(w *dag.Workflow, fleet *cloud.Fleet, env *Env) error
	// Pick returns zero or more assignments for the current decision
	// point. Returning no assignments parks the workflow in the
	// Unavailable-by-choice state until the next completion event.
	// Each returned VM must be idle and each task ready; assignments
	// beyond a VM's free slots are rejected by the engine.
	Pick(ctx *Context) []Assignment
}

// CompletionObserver is an optional extension: schedulers that learn
// online (ReASSIgN) receive every completion with its measured times.
type CompletionObserver interface {
	OnTaskComplete(t *Task, env *Env)
}

// Config tunes the simulation.
type Config struct {
	// DataTransfer adds input-staging time for files produced on a
	// different VM, at the receiving VM's bandwidth.
	DataTransfer bool
	// EngineDelay is the workflow-engine overhead added before a task
	// becomes ready after its dependencies clear (WorkflowSim's WED).
	EngineDelay float64
	// QueueDelay is the dispatch overhead between assignment and
	// execution start (WorkflowSim's queue delay).
	QueueDelay float64
	// PostScriptDelay is added after execution before the task counts
	// as finished (WorkflowSim's post-script delay).
	PostScriptDelay float64
	// Failure injects per-execution task failures.
	Failure cloud.FailureModel
	// FailureByActivity overrides Failure.Rate for specific activity
	// names (WorkflowSim's per-job-type failure rates).
	FailureByActivity map[string]float64
	// MaxRetries bounds re-executions after failure; a task failing
	// MaxRetries+1 times fails the workflow.
	MaxRetries int
	// Fluct, when non-nil, perturbs actual (not estimated) runtimes.
	Fluct *cloud.FluctuationModel
	// ProvisionDelay makes VMs accept work only after this many
	// virtual seconds (SCStarter's deployment phase); ProvisionJitter
	// adds a per-VM uniform extra in [0, ProvisionJitter).
	ProvisionDelay  float64
	ProvisionJitter float64
	// Autoscale, when non-nil, lets the fleet grow under backlog and
	// shrink when acquired VMs idle (cloud elasticity).
	Autoscale *Autoscale
	// Spot, when non-nil, revokes eligible VMs at random times,
	// aborting and requeueing their running activations.
	Spot *SpotPolicy
	// Market, when non-nil, replays a market trace: preemptions arrive
	// as notice-then-kill events (notice cordons the VM, the kill
	// revokes it), health degradations slow tasks, and Result.Cost is
	// billed against the traced per-provider prices. Mutually
	// exclusive with Spot and Autoscale.
	Market *market.Playback
	// Seed drives all randomness in the run.
	Seed int64
	// Horizon aborts runaway simulations (virtual seconds; 0 = none).
	Horizon float64
	// Sink, when non-nil, receives a telemetry.KernelEvent when the
	// run finishes. Learning schedulers (core) thread their own sink
	// here so per-run DES counters land in the same trace.
	Sink telemetry.Sink
	// SkipPlan skips recording Result.Plan. The learning loop discards
	// per-episode plans, and at 100 episodes per run the map builds are
	// measurable in the hot path.
	SkipPlan bool
	// Hook, when non-nil, observes engine-internal transitions (task
	// lifecycle, VM churn, scheduling decisions) for invariant auditing.
	// Nil keeps every call site a single pointer comparison.
	Hook Hook
	// Ctx, when non-nil, cancels the run: the engine checks it at every
	// scheduling cycle and aborts with the context's error, so callers
	// serving remote cancellation (the schedd daemon) are not held
	// hostage by a long simulation. Nil keeps the hot path untouched.
	Ctx context.Context
}

// Env provides estimation helpers and live aggregates to schedulers.
type Env struct {
	cfg      Config
	fleet    *cloud.Fleet
	workflow *dag.Workflow
	vms      []*VMState
	rng      *rand.Rand

	// acts caches workflow.Activations() for the memoised estimate
	// path: acts[i].Index == i for a validated workflow.
	acts []*dag.Activation
	// baseDur memoises EstimateExec one activation row at a time: a
	// row materialises on the first estimate for that activation and
	// is kept across Engine.Reset, and at most maxBaseDurCells
	// estimates are cached in total so a 10k-activation × 1000-VM
	// problem never allocates the full rectangle up front. baseDurDT
	// records the DataTransfer flag the rows were built under, so a
	// config flip rebuilds them.
	baseDur     [][]float64
	baseDurRows int
	baseDurDT   bool

	// Global aggregates across all finished activations (Eq. 5).
	global VMStats
}

// EstimateExec returns the scheduler-visible nominal execution time
// of an activation on a VM: runtime scaled by core speed, plus full
// input staging if data transfer is enabled. It deliberately ignores
// fluctuation — that is the unmodelled part of the environment.
//
// Estimates over the workflow's activations and the initial fleet are
// served from per-activation rows memoised lazily (bounded by
// maxBaseDurCells cached estimates in total); only autoscaled VMs
// beyond the fleet (or foreign activations) fall back to recomputing.
func (e *Env) EstimateExec(a *dag.Activation, vm *cloud.VM) float64 {
	nv := len(e.fleet.VMs)
	if id := vm.ID; id >= 0 && id < nv && e.fleet.VMs[id] == vm &&
		a.Index >= 0 && a.Index < len(e.acts) && e.acts[a.Index] == a {
		if e.baseDur == nil || e.baseDurDT != e.cfg.DataTransfer {
			e.resetBaseDur()
		}
		row := e.baseDur[a.Index]
		if row == nil {
			if e.baseDurRows >= e.baseDurRowCap() {
				return e.estimateExec(a, vm)
			}
			row = make([]float64, nv)
			for j, fvm := range e.fleet.VMs {
				row[j] = e.estimateExec(a, fvm)
			}
			e.baseDur[a.Index] = row
			e.baseDurRows++
		}
		return row[id]
	}
	return e.estimateExec(a, vm)
}

// estimateExec is the uncached estimate.
func (e *Env) estimateExec(a *dag.Activation, vm *cloud.VM) float64 {
	d := a.Runtime / vm.Type.Speed
	if e.cfg.DataTransfer && vm.Type.NetMBps > 0 {
		d += float64(a.InputBytes()) / (vm.Type.NetMBps * 1e6)
	}
	return d
}

// maxBaseDurCells caps the EstimateExec memo footprint (cells ×
// 8 bytes ≈ 64 MB worst case); rows past the cap recompute instead
// of caching.
const maxBaseDurCells = 8 << 20

// baseDurRowCap is the largest number of rows the memo may hold —
// always at least one so small fleets keep the O(1) path.
func (e *Env) baseDurRowCap() int {
	if nv := len(e.fleet.VMs); nv > 0 {
		if c := maxBaseDurCells / nv; c > 0 {
			return c
		}
	}
	return 1
}

// resetBaseDur (re)initialises the lazy row memo under the current
// DataTransfer setting, reusing the row spine when already allocated.
func (e *Env) resetBaseDur() {
	if e.baseDur == nil {
		e.baseDur = make([][]float64, len(e.acts))
	} else {
		clear(e.baseDur)
	}
	e.baseDurRows = 0
	e.baseDurDT = e.cfg.DataTransfer
}

// DataTransferEnabled reports whether input staging costs time in
// this simulation (planners include communication costs only then).
func (e *Env) DataTransferEnabled() bool { return e.cfg.DataTransfer }

// Workflow returns the workflow being simulated.
func (e *Env) Workflow() *dag.Workflow { return e.workflow }

// Fleet returns the fleet being simulated.
func (e *Env) Fleet() *cloud.Fleet { return e.fleet }

// VMStates returns all VM states sorted by ID.
func (e *Env) VMStates() []*VMState { return e.vms }

// VMStateByID returns the state of the VM with the given ID, or nil
// when absent. Initial-fleet IDs resolve in O(1) (vms is ID-sorted
// and starts gap-free); autoscaled or churned fleets fall back to a
// binary search.
func (e *Env) VMStateByID(id int) *VMState {
	if id >= 0 && id < len(e.vms) {
		if v := e.vms[id]; v.VM.ID == id {
			return v
		}
	}
	lo, hi := 0, len(e.vms)
	for lo < hi {
		mid := (lo + hi) / 2
		if e.vms[mid].VM.ID < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(e.vms) && e.vms[lo].VM.ID == id {
		return e.vms[lo]
	}
	return nil
}

// AppendVMIDs appends every VM's ID to dst (in ID order) and returns
// it. Hot-path callers pass a reused buffer to avoid allocating.
func (e *Env) AppendVMIDs(dst []int) []int {
	for _, v := range e.vms {
		dst = append(dst, v.VM.ID)
	}
	return dst
}

// AppendIdleVMIDs appends the IDs of idle VMs to dst (in ID order)
// and returns it, without building a []*VMState copy.
func (e *Env) AppendIdleVMIDs(dst []int) []int {
	for _, v := range e.vms {
		if v.Idle() {
			dst = append(dst, v.VM.ID)
		}
	}
	return dst
}

// GlobalStats returns aggregates over all finished activations.
func (e *Env) GlobalStats() VMStats { return e.global }

// Result summarises one simulation run.
type Result struct {
	Scheduler string
	State     WorkflowState
	Makespan  float64
	Cost      float64 // fleet cost for the makespan, hourly billing
	// BusyCost charges only busy slot-seconds, pro-rata per VM — the
	// work-based cost a per-second-billing or serverless deployment
	// would pay. Placement changes BusyCost (expensive VMs cost more
	// per busy second) while Cost only depends on the makespan.
	BusyCost float64
	Records  []Record
	// Plan maps activation ID to the VM ID that ran it (successfully).
	Plan map[string]int
	// PerVM aggregates keyed by VM ID.
	PerVM map[int]VMStats
	// Decisions counts scheduler invocations; Events counts DES steps.
	Decisions int
	Events    int64
	// Kernel holds the DES kernel's instrumentation counters.
	Kernel des.Stats
	// Elasticity is set when Config.Autoscale was active.
	Elasticity *ElasticityReport
	// Revocations counts spot VMs revoked during the run.
	Revocations int
	// Market is set when Config.Market was active: the traced bill and
	// market event counters (Cost then equals Market.Cost.Total).
	Market *MarketReport
}

// Run simulates the workflow on the fleet under the scheduler. It is
// shorthand for NewEngine followed by Engine.Run.
func Run(w *dag.Workflow, fleet *cloud.Fleet, sched Scheduler, cfg Config) (*Result, error) {
	eng, err := NewEngine(w, fleet, sched, cfg)
	if err != nil {
		return nil, err
	}
	return eng.Run()
}

// NewEngine validates the inputs and returns a simulation engine.
// Construction is separated from Run so callers can fail fast on bad
// configuration before committing to a run. An Engine runs once;
// Reset re-arms it for further runs without re-allocating its state.
func NewEngine(w *dag.Workflow, fleet *cloud.Fleet, sched Scheduler, cfg Config) (*Engine, error) {
	if w == nil {
		return nil, fmt.Errorf("sim: nil workflow")
	}
	if sched == nil {
		return nil, fmt.Errorf("sim: nil scheduler")
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("sim: %w", err)
	}
	if fleet == nil || fleet.Len() == 0 {
		return nil, fmt.Errorf("sim: empty fleet")
	}
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	if err := validateMarket(fleet, cfg.Market); err != nil {
		return nil, err
	}
	return &Engine{
		w:     w,
		fleet: fleet,
		sched: sched,
		cfg:   cfg,
		sim:   des.New(),
	}, nil
}

// validateConfig checks the per-run configuration (the part Reset can
// replace).
func validateConfig(cfg Config) error {
	if cfg.MaxRetries < 0 {
		return fmt.Errorf("sim: negative MaxRetries")
	}
	if cfg.ProvisionDelay < 0 || cfg.ProvisionJitter < 0 {
		return fmt.Errorf("sim: negative provisioning delay")
	}
	if cfg.Autoscale != nil {
		if err := cfg.Autoscale.validate(); err != nil {
			return err
		}
	}
	if cfg.Spot != nil {
		if err := cfg.Spot.validate(); err != nil {
			return err
		}
	}
	if cfg.Market != nil {
		if cfg.Spot != nil {
			return fmt.Errorf("sim: Market and Spot are mutually exclusive (the trace owns preemption)")
		}
		if cfg.Autoscale != nil {
			return fmt.Errorf("sim: Market does not support Autoscale (acquired VMs are untraced)")
		}
	}
	return nil
}

// Engine drives simulation runs on the DES kernel. Construct it with
// NewEngine. A fresh Engine runs once — a second Run returns an error
// — but Reset re-arms it for another run while reusing every internal
// buffer, which is what makes the learning episode loop (100 runs of
// the same workflow on the same fleet) allocation-light.
type Engine struct {
	w     *dag.Workflow
	fleet *cloud.Fleet
	sched Scheduler
	cfg   Config
	sim   *des.Simulator

	// rng drives all per-run randomness; it is re-seeded (not
	// re-allocated) on each run, which produces the identical stream.
	rng *rand.Rand

	env    *Env
	tasks  []*Task // by activation index
	ready  []*Task
	vms    []*VMState
	result *Result

	// Backing arrays behind vms/tasks: allocated on the first run,
	// re-initialised in place by later runs. Their element addresses
	// are stable across Reset, so the pre-bound event closures below
	// stay valid.
	vmBacking   []VMState
	taskBacking []Task
	// releaseFns[i] moves task i into the ready queue; completeFns[i]
	// completes task i on the VM recorded in running. Binding them once
	// per engine removes the two per-task closure allocations that used
	// to dominate an episode's event scheduling.
	releaseFns  []func()
	completeFns []func()

	// Reused result backing. A Result returned by Run IS resultBuf and
	// borrows the slice/map backings; Reset reclaims them all,
	// invalidating that Result entirely (single-use engines — no Reset
	// — hand them over for good).
	resultBuf Result
	recBuf    []Record
	perVMBuf  map[int]VMStats

	// Reused per-decision scratch: the Context handed to Pick and its
	// backing slices, plus the pre-bound sorter and cycle closure.
	// Context contents are only valid for the duration of one Pick.
	ctx      Context
	ctxReady []*Task
	ctxIdle  []*VMState
	sorter   readySorter
	cycleFn  func()

	remaining   int  // tasks not yet finished
	anyFailed   bool // a task exhausted retries
	cyclePosted bool // a scheduling pass is already queued
	scaler      *scaler
	peakBooted  int
	// hook is this run's observer (cfg.Hook.RunStart), nil when
	// observation is disabled; mhook is its optional market extension,
	// resolved once per run.
	hook  RunHook
	mhook MarketRunHook
	// marketStats accumulates the per-run market event counters.
	marketStats marketCounters
	// abortBuf is reused scratch for collecting the tasks a spot
	// revocation kills, so they can be aborted in task-index order
	// rather than map order.
	abortBuf []*Task
	// running maps in-flight tasks to their completion event and VM,
	// so spot revocations can abort them.
	running map[*Task]runningTask

	// fileHome records which VM produced each output file, for
	// site-aware transfer costs in multi-site fleets.
	fileHome map[string]*VMState
}

// Reset re-arms a finished (or errored) engine for another run under
// cfg, reusing every internal buffer: VM and task state, the DES
// event pool, scratch slices and the result backing. Workflow, fleet
// and scheduler are fixed at construction; only the configuration may
// change. A reset run with the same cfg is bit-identical to a fresh
// engine's run (only the DES freelist counters differ).
//
// Reset invalidates the Result returned by the previous Run: the
// struct itself, its Records slice and its PerVM map are all reused
// as backing for the next run. Callers that need any of it afterwards
// must copy first.
func (g *Engine) Reset(cfg Config) error {
	if err := validateConfig(cfg); err != nil {
		return err
	}
	if err := validateMarket(g.fleet, cfg.Market); err != nil {
		return err
	}
	if g.result != nil {
		// Keep any capacity the previous run's retries grew.
		g.recBuf = g.result.Records[:0]
		g.result = nil
	}
	g.cfg = cfg
	g.sim.Reset()
	return nil
}

// setup (re)initialises all per-run state. The first call allocates
// the backing arrays; later calls (after Reset) reuse them. The order
// of rng draws — spot revocations, then provisioning jitter — matches
// the original single-use construction, keeping reset runs
// bit-identical to fresh ones.
func (g *Engine) setup() {
	g.sim.SetHorizon(g.cfg.Horizon)
	if g.rng == nil {
		g.rng = rand.New(rand.NewSource(g.cfg.Seed))
	} else {
		// Re-seeding yields the same stream as a fresh source.
		g.rng.Seed(g.cfg.Seed)
	}
	if g.vmBacking == nil {
		g.vmBacking = make([]VMState, g.fleet.Len())
		g.vms = make([]*VMState, 0, g.fleet.Len())
	}
	g.vms = g.vms[:0] // drops autoscaled VMs from a previous run
	for i, vm := range g.fleet.VMs {
		st := &g.vmBacking[i]
		fileAt := st.fileAt // keep the allocation, drop the contents
		if len(fileAt) > 0 {
			clear(fileAt)
		}
		*st = VMState{VM: vm, Slots: vm.Type.VCPUs, booted: true, slow: 1, fileAt: fileAt}
		g.vms = append(g.vms, st)
	}
	if g.env == nil {
		g.env = &Env{fleet: g.fleet, workflow: g.w, acts: g.w.Activations()}
	}
	g.env.cfg = g.cfg
	g.env.vms = g.vms
	g.env.rng = g.rng
	g.env.global = VMStats{}
	if g.cfg.Autoscale != nil {
		// Seed ID allocation from the highest fleet ID, not the fleet
		// size: hand-built fleets may have gapped IDs, and a duplicate
		// ID would silently merge two VMs' Result.PerVM stats.
		maxID := 0
		for _, vm := range g.fleet.VMs {
			if vm.ID > maxID {
				maxID = vm.ID
			}
		}
		g.scaler = newScaler(g.cfg.Autoscale, maxID)
	} else {
		g.scaler = nil
	}
	if g.running == nil {
		g.running = make(map[*Task]runningTask, g.fleet.Len())
	} else {
		clear(g.running)
	}
	if g.cfg.Hook != nil {
		g.hook = g.cfg.Hook.RunStart(g.env)
	} else {
		g.hook = nil
	}
	g.mhook = nil
	if g.hook != nil {
		g.mhook, _ = g.hook.(MarketRunHook)
	}
	g.scheduleRevocations()
	g.scheduleMarket()
	n := g.w.Len()
	if g.taskBacking == nil {
		g.taskBacking = make([]Task, n)
		g.tasks = make([]*Task, n)
		g.ready = make([]*Task, 0, n)
		g.ctxReady = make([]*Task, 0, n)
		g.ctxIdle = make([]*VMState, 0, len(g.vms))
		g.cycleFn = func() {
			g.cyclePosted = false
			g.cycle()
		}
	}
	for _, a := range g.w.Activations() {
		g.taskBacking[a.Index] = Task{Act: a, State: Locked, waitingOn: len(a.Parents())}
		g.tasks[a.Index] = &g.taskBacking[a.Index]
	}
	if g.releaseFns == nil {
		g.releaseFns = make([]func(), n)
		g.completeFns = make([]func(), n)
		for i := range g.tasks {
			t := g.tasks[i]
			g.releaseFns[i] = func() {
				t.State = Ready
				t.ReadyAt = g.sim.Now()
				g.ready = append(g.ready, t)
				if g.hook != nil {
					g.hook.TaskReady(t.ReadyAt, t)
				}
				g.postCycle()
			}
			g.completeFns[i] = func() {
				if run, ok := g.running[t]; ok {
					g.complete(t, run.vm)
				}
			}
		}
	}
	g.ready = g.ready[:0]
	g.remaining = n
	g.anyFailed = false
	g.cyclePosted = false
	g.peakBooted = 0
	if g.fileHome != nil {
		clear(g.fileHome)
	}
	if g.recBuf == nil {
		g.recBuf = make([]Record, 0, n)
	}
	if g.perVMBuf == nil {
		g.perVMBuf = make(map[int]VMStats, len(g.vms))
	} else {
		clear(g.perVMBuf)
	}
	g.resultBuf = Result{
		Scheduler: g.sched.Name(),
		Records:   g.recBuf,
		PerVM:     g.perVMBuf,
	}
	g.result = &g.resultBuf
	if !g.cfg.SkipPlan {
		g.result.Plan = make(map[string]int, n)
	}
}

// Run executes the simulation to completion. A second Run without an
// intervening Reset returns an error.
func (g *Engine) Run() (*Result, error) {
	if g.result != nil {
		return nil, fmt.Errorf("sim: engine already ran (Reset re-arms it)")
	}
	g.setup()
	if err := g.sched.Prepare(g.w, g.fleet, g.env); err != nil {
		return nil, fmt.Errorf("sim: scheduler %s: %w", g.sched.Name(), err)
	}

	// Provision the VMs (SCStarter): until a VM's boot completes it
	// is not idle and receives no work.
	if g.cfg.ProvisionDelay > 0 || g.cfg.ProvisionJitter > 0 {
		for _, v := range g.vms {
			v.booted = false
			bootAt := g.cfg.ProvisionDelay
			if g.cfg.ProvisionJitter > 0 {
				bootAt += g.rng.Float64() * g.cfg.ProvisionJitter
			}
			v := v
			g.sim.At(bootAt, func() {
				v.booted = true
				g.postCycle()
			})
		}
	}

	// Release the roots.
	for _, t := range g.tasks {
		if t.waitingOn == 0 {
			g.release(t)
		}
	}
	if err := g.sim.Run(); err != nil {
		return nil, fmt.Errorf("sim: %w (makespan so far %.2f)", err, g.sim.Now())
	}

	// Makespan is the last activation completion — not the DES clock,
	// which trailing events (e.g. autoscaler boots racing a finished
	// workflow) can push further.
	for _, r := range g.result.Records {
		if r.FinishAt > g.result.Makespan {
			g.result.Makespan = r.FinishAt
		}
	}
	if g.cfg.Market != nil {
		g.finishMarket()
	} else {
		g.result.Cost = g.fleet.Cost(g.result.Makespan)
	}
	g.result.Events = g.sim.Steps()
	if g.anyFailed {
		g.result.State = FinishedFailed
	} else if g.remaining == 0 {
		g.result.State = FinishedOK
	} else {
		// Scheduler refused to place remaining ready tasks: deadlock.
		return nil, fmt.Errorf("sim: scheduler %s stalled with %d tasks unfinished at t=%.2f",
			g.sched.Name(), g.remaining, g.sim.Now())
	}
	for _, v := range g.vms {
		g.result.PerVM[v.VM.ID] = v.stats
		// Pro-rata: price is per VM-hour; one busy slot-second costs
		// price / (3600 × slots).
		g.result.BusyCost += v.stats.Busy * v.VM.Type.PricePerHour / (3600 * float64(v.Slots))
	}
	if g.scaler != nil {
		sc := g.scaler
		g.result.Elasticity = &ElasticityReport{
			Acquired: sc.acquired,
			Released: sc.released,
			PeakVMs:  g.peakBooted,
		}
		// Acquired VMs bill hourly from acquisition to release (or the
		// end of the run). Iterate the VM list, not the acquireTime map:
		// float additions in map order would make Cost's low bits depend
		// on iteration order, breaking byte-stable traces.
		for _, v := range g.vms {
			bootAt, ok := sc.acquireTime[v]
			if !ok {
				continue
			}
			end := g.result.Makespan
			if t, ok := sc.releaseTime[v]; ok {
				end = t
			}
			if end > bootAt {
				g.result.Cost += math.Ceil((end-bootAt)/3600) * v.VM.Type.PricePerHour
			}
		}
	}
	g.result.Kernel = g.sim.Stats()
	if g.hook != nil {
		g.hook.RunEnd(g.result)
	}
	if g.cfg.Sink != nil {
		ks := g.result.Kernel
		g.cfg.Sink.Emit(telemetry.KernelEvent{
			Scheduler:      g.result.Scheduler,
			State:          g.result.State.String(),
			Makespan:       g.result.Makespan,
			Decisions:      g.result.Decisions,
			Events:         ks.Steps,
			Scheduled:      ks.Scheduled,
			FreelistHits:   ks.FreelistHits,
			FreelistMisses: ks.FreelistMisses,
			MaxQueueDepth:  ks.MaxQueueDepth,
		})
	}
	return g.result, nil
}

// release moves a task into the ready queue after the engine delay,
// via the task's pre-bound event closure.
func (g *Engine) release(t *Task) {
	g.sim.At(g.sim.Now()+g.cfg.EngineDelay, g.releaseFns[t.Act.Index])
}

// postCycle queues a scheduling pass if none is pending. Priority 1
// runs it after all same-time completions/releases have settled.
func (g *Engine) postCycle() {
	if g.cyclePosted {
		return
	}
	g.cyclePosted = true
	g.sim.AtPriority(g.sim.Now(), 1, g.cycleFn)
}

// workflowState computes the paper's four-valued workflow state.
func (g *Engine) workflowState() WorkflowState {
	if g.remaining == 0 {
		if g.anyFailed {
			return FinishedFailed
		}
		return FinishedOK
	}
	if len(g.ready) == 0 {
		return Unavailable
	}
	for _, v := range g.vms {
		if v.Idle() {
			return Available
		}
	}
	return Unavailable
}

// cycle invokes the scheduler while the workflow stays Available and
// the scheduler keeps making progress.
func (g *Engine) cycle() {
	if g.cfg.Ctx != nil {
		if err := g.cfg.Ctx.Err(); err != nil {
			// Stop the kernel before the next event; Run surfaces the
			// context error (errors.Is-able as context.Canceled etc.).
			g.sim.Interrupt(err)
			return
		}
	}
	g.autoscaleStep()
	if booted := g.bootedCount(); booted > g.peakBooted {
		g.peakBooted = booted
	}
	for g.workflowState() == Available {
		ctx := g.buildContext()
		g.result.Decisions++
		if g.hook != nil {
			g.hook.Decision(g.sim.Now(), ctx)
		}
		assigns := g.sched.Pick(ctx)
		if len(assigns) == 0 {
			return // scheduler chose "do nothing"
		}
		progressed := false
		for _, as := range assigns {
			if g.start(as) {
				progressed = true
			}
		}
		if !progressed {
			return
		}
	}
}

// bootedCount counts usable (booted, not retired) VMs.
func (g *Engine) bootedCount() int {
	n := 0
	for _, v := range g.vms {
		if v.booted {
			n++
		}
	}
	return n
}

// readySorter orders tasks by (ReadyAt, Index); it is stored on the
// engine so sorting does not allocate a closure per decision.
type readySorter struct{ ts []*Task }

func (s *readySorter) Len() int { return len(s.ts) }
func (s *readySorter) Less(i, j int) bool {
	if s.ts[i].ReadyAt != s.ts[j].ReadyAt {
		return s.ts[i].ReadyAt < s.ts[j].ReadyAt
	}
	return s.ts[i].Act.Index < s.ts[j].Act.Index
}
func (s *readySorter) Swap(i, j int) { s.ts[i], s.ts[j] = s.ts[j], s.ts[i] }

// buildContext refreshes the reused Context for the next Pick call.
// Its slices are scratch buffers: schedulers must not retain them
// past the call.
func (g *Engine) buildContext() *Context {
	ready := append(g.ctxReady[:0], g.ready...)
	g.sorter.ts = ready
	sort.Sort(&g.sorter)
	idle := g.ctxIdle[:0]
	for _, v := range g.vms {
		if v.Idle() {
			idle = append(idle, v)
		}
	}
	g.ctxReady, g.ctxIdle = ready, idle
	g.ctx = Context{Now: g.sim.Now(), Ready: ready, IdleVMs: idle, AllVMs: g.vms, Env: g.env}
	return &g.ctx
}

// start validates and executes one assignment. It returns false for
// invalid assignments (task not ready, VM full), which are skipped.
func (g *Engine) start(as Assignment) bool {
	t, v := as.Task, as.VM
	if t == nil || v == nil || t.State != Ready || !v.Idle() {
		return false
	}
	// Remove from the ready queue.
	for i, rt := range g.ready {
		if rt == t {
			g.ready = append(g.ready[:i], g.ready[i+1:]...)
			break
		}
	}
	v.acquire()
	t.State = Running
	t.VM = v.VM
	t.Attempts++
	start := g.sim.Now() + g.cfg.QueueDelay
	dur := g.duration(t, v)
	t.StartAt = start
	fin := start + dur + g.cfg.PostScriptDelay
	// The pre-bound closure resolves the VM through g.running, so the
	// map entry must exist before the event can fire; inserting first
	// is safe because the event is strictly in the future.
	ref := g.sim.At(fin, g.completeFns[t.Act.Index])
	g.running[t] = runningTask{ref: ref, vm: v}
	if g.hook != nil {
		g.hook.TaskStart(g.sim.Now(), t, v)
	}
	return true
}

// duration computes the actual execution time of t on v, including
// data staging for remote inputs (at the inter-site link rate when
// the producer lives on another site of a multi-site fleet) and
// optional fluctuation.
func (g *Engine) duration(t *Task, v *VMState) float64 {
	d := t.Act.Runtime / v.VM.Type.Speed
	if g.cfg.DataTransfer && v.VM.Type.NetMBps > 0 {
		topo := g.fleet.Topology
		for _, f := range t.Act.Inputs {
			if v.HasFile(f.Name) {
				continue
			}
			rate := v.VM.Type.NetMBps
			if topo != nil {
				if home, ok := g.fileHome[f.Name]; ok && home.VM.Site != v.VM.Site {
					if link := topo.Bandwidth(home.VM.Site, v.VM.Site); link > 0 && link < rate {
						rate = link
					}
				}
			}
			d += float64(f.Size) / (rate * 1e6)
		}
	}
	if v.slow > 1 {
		// Degraded node health (market trace): the whole execution runs
		// slower. Applied before fluctuation, and never reflected in
		// EstimateExec — degradation is part of the unmodelled
		// environment the scheduler must adapt to.
		d *= v.slow
	}
	if g.cfg.Fluct != nil {
		d = g.cfg.Fluct.Apply(g.env.rng, v.VM, d)
	}
	return d
}

func (g *Engine) complete(t *Task, v *VMState) {
	delete(g.running, t)
	v.release()
	t.FinishAt = g.sim.Now()

	fm := g.cfg.Failure
	if rate, ok := g.cfg.FailureByActivity[t.Act.Activity]; ok {
		fm = cloud.FailureModel{Rate: rate}
	}
	failed := fm.Fails(g.env.rng)
	if failed && t.Attempts <= g.cfg.MaxRetries {
		// Retry: back to ready.
		t.State = Ready
		t.ReadyAt = g.sim.Now()
		g.ready = append(g.ready, t)
		g.record(t, v, false)
		if g.hook != nil {
			g.hook.TaskFinish(g.sim.Now(), t, v, false, false)
			g.hook.TaskReady(t.ReadyAt, t)
		}
		g.postCycle()
		return
	}

	g.record(t, v, !failed)
	g.remaining--
	if failed {
		t.State = Failed
		g.anyFailed = true
		if g.hook != nil {
			g.hook.TaskFinish(g.sim.Now(), t, v, true, false)
		}
		g.cancelDescendants(t)
	} else {
		t.State = Succeeded
		if g.hook != nil {
			g.hook.TaskFinish(g.sim.Now(), t, v, true, true)
		}
		if g.result.Plan != nil {
			g.result.Plan[t.Act.ID] = v.VM.ID
		}
		if len(t.Act.Outputs) > 0 {
			if v.fileAt == nil {
				v.fileAt = make(map[string]bool, len(t.Act.Outputs))
			}
			if g.fileHome == nil {
				g.fileHome = make(map[string]*VMState)
			}
			for _, f := range t.Act.Outputs {
				v.fileAt[f.Name] = true
				g.fileHome[f.Name] = v
			}
		}
		exec, wait := t.ExecTime(), t.QueueTime()
		v.stats.add(exec, wait)
		g.env.global.add(exec, wait)
		if obs, ok := g.sched.(CompletionObserver); ok {
			obs.OnTaskComplete(t, g.env)
		}
		for _, c := range t.Act.Children() {
			ct := g.tasks[c.Index]
			ct.waitingOn--
			if ct.waitingOn == 0 && ct.State == Locked {
				g.release(ct)
			}
		}
	}
	g.postCycle()
}

// runningTask pairs an in-flight task's completion event with its VM.
type runningTask struct {
	ref des.EventRef
	vm  *VMState
}

// cancelDescendants marks every still-locked descendant of a
// terminally failed task as Failed: they can never run, so the
// workflow reaches the paper's "finished with failure" terminal state
// once in-flight work drains.
func (g *Engine) cancelDescendants(t *Task) {
	desc, err := g.w.Descendants(t.Act.ID)
	if err != nil {
		return
	}
	for _, a := range desc {
		dt := g.tasks[a.Index]
		if dt.State == Locked {
			dt.State = Failed
			g.remaining--
			if g.hook != nil {
				g.hook.TaskCancel(g.sim.Now(), dt)
			}
		}
	}
}

func (g *Engine) record(t *Task, v *VMState, success bool) {
	g.result.Records = append(g.result.Records, Record{
		TaskID:   t.Act.ID,
		Activity: t.Act.Activity,
		VMID:     v.VM.ID,
		VMType:   v.VM.Type.Name,
		ReadyAt:  t.ReadyAt,
		StartAt:  t.StartAt,
		FinishAt: t.FinishAt,
		Attempts: t.Attempts,
		Success:  success,
	})
}
