package sim

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/trace"
)

// cancelHook cancels a context after N scheduling decisions — a
// deterministic stand-in for an external cancel landing mid-run.
type cancelHook struct {
	after  int
	cancel context.CancelFunc
	seen   int
}

func (h *cancelHook) RunStart(*Env) RunHook { return h }
func (h *cancelHook) Decision(float64, *Context) {
	h.seen++
	if h.seen == h.after {
		h.cancel()
	}
}
func (h *cancelHook) TaskReady(float64, *Task)                        {}
func (h *cancelHook) TaskStart(float64, *Task, *VMState)              {}
func (h *cancelHook) TaskFinish(float64, *Task, *VMState, bool, bool) {}
func (h *cancelHook) TaskAbort(float64, *Task, *VMState)              {}
func (h *cancelHook) TaskCancel(float64, *Task)                       {}
func (h *cancelHook) VMAdded(float64, *VMState)                       {}
func (h *cancelHook) VMRetired(float64, *VMState)                     {}
func (h *cancelHook) VMRevoked(float64, *VMState)                     {}
func (h *cancelHook) RunEnd(*Result)                                  {}

func cancelTestProblem(t *testing.T) (*Engine, *cancelHook, context.Context) {
	t.Helper()
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	h := &cancelHook{after: 3, cancel: cancel}
	eng, err := NewEngine(w, fleet, &greedyFirst{}, Config{Ctx: ctx, Hook: h})
	if err != nil {
		t.Fatal(err)
	}
	return eng, h, ctx
}

func TestRunCanceledMidRun(t *testing.T) {
	eng, h, _ := cancelTestProblem(t)
	_, err := eng.Run()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
	if h.seen < h.after {
		t.Fatalf("hook saw %d decisions, cancel never fired", h.seen)
	}
	// The cancel is observed at the next scheduling cycle, not at the
	// end of the workflow: the run must abort well short of Montage50's
	// full decision count.
	if h.seen > h.after+1 {
		t.Fatalf("run kept scheduling after cancel: %d decisions", h.seen)
	}
}

func TestRunPreCanceled(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(w, fleet, &greedyFirst{}, Config{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run returned %v, want context.Canceled", err)
	}
}

// TestResetAfterCancel pins the recovery path the daemon's engine
// pool relies on: an interrupted engine, once Reset with a live
// config, runs to completion with results identical to a fresh one.
func TestResetAfterCancel(t *testing.T) {
	eng, _, _ := cancelTestProblem(t)
	if _, err := eng.Run(); !errors.Is(err, context.Canceled) {
		t.Fatalf("first run: %v, want context.Canceled", err)
	}
	if err := eng.Reset(Config{}); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("reset run ended %v", res.State)
	}

	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != fresh.Makespan {
		t.Fatalf("reset-after-cancel makespan %v != fresh %v", res.Makespan, fresh.Makespan)
	}
}
