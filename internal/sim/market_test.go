package sim

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/market"
	"reassign/internal/trace"
)

// handTrace wraps a hand-built trace in a playback, failing the test
// on validation errors.
func handTrace(t *testing.T, tr *market.Trace) *market.Playback {
	t.Helper()
	pb, err := market.NewPlayback(tr, market.DefaultCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	return pb
}

// microTrace builds a minimal valid trace assigning n t2.micro VMs
// (ids 0..n-1) to aws, all spot except VM 0, with the given events.
func microTrace(n int, horizon float64, events []market.VMEvent) *market.Trace {
	tr := &market.Trace{
		Version: market.TraceVersion, Regime: "hand", Horizon: horizon, PriceStep: horizon,
		Prices: []market.PriceSeries{{
			Provider: "aws", Type: "t2.micro",
			Points: []market.PricePoint{{At: 0, Price: 0.004}},
		}},
		Events: events,
	}
	for id := 0; id < n; id++ {
		tr.Assign = append(tr.Assign, market.VMAssign{
			VM: id, Provider: "aws", Type: "t2.micro", Spot: id != 0,
		})
	}
	return tr
}

func TestMarketConfigValidation(t *testing.T) {
	w := chain(1)
	fleet := singleVMFleet()
	pb := handTrace(t, microTrace(1, 100, nil))
	if _, err := Run(w, fleet, &greedyFirst{}, Config{
		Market: pb, Spot: &SpotPolicy{MeanLifetime: 10},
	}); err == nil {
		t.Fatal("Market+Spot accepted")
	}
	if _, err := Run(w, fleet, &greedyFirst{}, Config{
		Market: pb, Autoscale: &Autoscale{Type: cloud.T2Large, MaxVMs: 2},
	}); err == nil {
		t.Fatal("Market+Autoscale accepted")
	}
	// A trace that does not cover the fleet is rejected up front.
	two := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	if _, err := Run(chain(1, 1), two, &greedyFirst{}, Config{Market: pb}); err == nil {
		t.Fatal("trace missing a fleet VM accepted")
	}
}

func TestMarketNoticeThenKill(t *testing.T) {
	// Two 1-slot VMs; VM 1 is noticed at t=1.5 and killed at t=3.
	// After the notice no new work may start there, and the kill
	// aborts whatever still runs.
	w := trace.Montage(rand.New(rand.NewSource(1)), 8, 2)
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	pb := handTrace(t, microTrace(2, 1000, []market.VMEvent{
		{VM: 1, Kind: market.EvNotice, At: 1.5, KillAt: 3},
		{VM: 1, Kind: market.EvKill, At: 3},
	}))
	res, err := Run(w, fleet, &greedyFirst{}, Config{Seed: 1, Market: pb})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if res.Market == nil {
		t.Fatal("no market report")
	}
	if res.Market.Notices != 1 || res.Market.Kills != 1 {
		t.Fatalf("notices=%d kills=%d, want 1/1", res.Market.Notices, res.Market.Kills)
	}
	if res.Revocations != 1 {
		t.Fatalf("revocations = %d, want 1", res.Revocations)
	}
	// No successful record may start on VM 1 inside the cordon window
	// or after the kill.
	for _, r := range res.Records {
		if r.VMID == 1 && r.StartAt >= 1.5 {
			t.Fatalf("task %s started on cordoned vm1 at %g", r.TaskID, r.StartAt)
		}
	}
	if err := res.Verify(w, fleet); err != nil {
		t.Fatal(err)
	}
}

func TestMarketDegradeSlowsTasks(t *testing.T) {
	// A degraded-from-the-start VM runs the whole chain 2x slower;
	// recovery halfway restores full speed for later tasks.
	w := chain(10, 10)
	fleet := singleVMFleet()
	base, err := Run(w, fleet, &greedyFirst{}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pb := handTrace(t, microTrace(1, 1000, []market.VMEvent{
		{VM: 0, Kind: market.EvDegrade, At: 0, Slow: 2},
	}))
	slow, err := Run(w, fleet, &greedyFirst{}, Config{Market: pb})
	if err != nil {
		t.Fatal(err)
	}
	if want := base.Makespan * 2; math.Abs(slow.Makespan-want) > 1e-9 {
		t.Fatalf("degraded makespan %g, want %g", slow.Makespan, want)
	}
	// Recover after the first task: only the first task is slow.
	pb = handTrace(t, microTrace(1, 1000, []market.VMEvent{
		{VM: 0, Kind: market.EvDegrade, At: 0, Slow: 2},
		{VM: 0, Kind: market.EvRecover, At: 20},
	}))
	half, err := Run(w, fleet, &greedyFirst{}, Config{Market: pb})
	if err != nil {
		t.Fatal(err)
	}
	if want := 20.0 + 10.0; math.Abs(half.Makespan-want) > 1e-9 {
		t.Fatalf("recovered makespan %g, want %g", half.Makespan, want)
	}
	if slow.Market.Degraded != 1 {
		t.Fatalf("degraded = %d, want 1", slow.Market.Degraded)
	}
}

func TestMarketCostMatchesPlayback(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	w := trace.Montage50(rng)
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	regime, _ := market.RegimeByName("volatile")
	mt, err := market.Generate(market.DefaultCatalogue(), fleet, regime, 7, 3600)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := market.NewPlayback(mt, market.DefaultCatalogue())
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(w, fleet, &greedyFirst{}, Config{Seed: 2, Market: pb})
	if err != nil {
		t.Fatal(err)
	}
	if res.Market == nil {
		t.Fatal("no market report")
	}
	want := pb.FleetCost(res.Makespan)
	if res.Cost != want.Total {
		t.Fatalf("Cost %v != playback fleet cost %v", res.Cost, want.Total)
	}
	if !reflect.DeepEqual(res.Market.Cost, want) {
		t.Fatalf("cost report %+v != playback %+v", res.Market.Cost, want)
	}
	if res.Cost < 0 {
		t.Fatalf("negative cost %v", res.Cost)
	}
}

func TestMarketRunDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	w := trace.Montage50(rng)
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	regime, _ := market.RegimeByName("hostile")
	mt, err := market.Generate(market.DefaultCatalogue(), fleet, regime, 11, 7200)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		pb, err := market.NewPlayback(mt, market.DefaultCatalogue())
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(w, fleet, &greedyFirst{}, Config{Seed: 3, Market: pb})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a.Records, b.Records) {
		t.Fatal("records differ between identical market runs")
	}
	if a.Cost != b.Cost || a.Makespan != b.Makespan {
		t.Fatalf("cost/makespan differ: %v/%v vs %v/%v", a.Cost, a.Makespan, b.Cost, b.Makespan)
	}
	if !reflect.DeepEqual(a.Market, b.Market) {
		t.Fatalf("market reports differ: %+v vs %+v", a.Market, b.Market)
	}
}
