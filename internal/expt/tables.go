package expt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/engine"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// Table1 reproduces Table I: the VM configurations used in the
// experiments.
func Table1() *metrics.Table {
	t := metrics.NewTable("Table I: VM configurations used in the experiments",
		"# of VMs", "# of VMs t2.micro", "# of VMs t2.2xLarge", "# of vCPUs")
	for _, vcpus := range cloud.Table1VCPUs() {
		fleet, err := cloud.FleetTable1(vcpus)
		if err != nil {
			panic(err) // unreachable: Table1VCPUs and FleetTable1 agree
		}
		counts := fleet.CountByType()
		t.AddRowF(fleet.Len(), counts["t2.micro"], counts["t2.2xlarge"], vcpus)
	}
	return t
}

// SweepResult holds the per-combination outcomes of the 27×|fleets|
// learning sweep shared by Tables II and III.
type SweepResult struct {
	VCPUs []int
	// LearnMillis[combo][vcpus] is the wall-clock learning time in ms.
	LearnMillis map[comboKey]map[int]float64
	// PlanMakespan[combo][vcpus] is the simulated execution time of
	// the learned plan in virtual seconds.
	PlanMakespan map[comboKey]map[int]float64
	// Plans[combo][vcpus] is the extracted activation→VM plan.
	Plans map[comboKey]map[int]core.Plan
}

// PlanEvalReps is the number of simulated executions averaged when
// scoring an extracted plan. The paper's Table III reports single
// simulator runs; a single fluctuation draw swings the makespan by
// ±20%, so we report the mean instead and note the deviation in
// EXPERIMENTS.md.
const PlanEvalReps = 10

// EvalPlan scores a plan by simulating it PlanEvalReps times under
// the training fluctuation model with distinct seeds and returning
// the mean makespan.
func EvalPlan(o Options, fleet *cloud.Fleet, plan core.Plan) (float64, error) {
	o = o.withDefaults()
	assign := plan.Map()
	var sum float64
	for rep := 0; rep < PlanEvalReps; rep++ {
		res, err := sim.Run(o.Workflow, fleet, &sched.Plan{PlanName: "plan", Assign: assign},
			sim.Config{Fluct: o.TrainFluct, Seed: o.Seed + 5000 + int64(rep), Hook: o.Hook})
		if err != nil {
			return 0, err
		}
		if res.State != sim.FinishedOK {
			return 0, fmt.Errorf("expt: plan evaluation ended in %v", res.State)
		}
		sum += res.Makespan
	}
	return sum / PlanEvalReps, nil
}

// RunSweep performs the paper's full parameter sweep: for every
// Table I fleet and every (α, γ, ε) combination, learn for
// o.Episodes episodes and extract the final plan.
func RunSweep(o Options) (*SweepResult, error) {
	o = o.withDefaults()
	res := &SweepResult{
		VCPUs:        o.VCPUs,
		LearnMillis:  make(map[comboKey]map[int]float64),
		PlanMakespan: make(map[comboKey]map[int]float64),
		Plans:        make(map[comboKey]map[int]core.Plan),
	}
	for _, combo := range grid() {
		res.LearnMillis[combo] = make(map[int]float64)
		res.PlanMakespan[combo] = make(map[int]float64)
		res.Plans[combo] = make(map[int]core.Plan)
	}
	// The 27×|fleets| cells are independent; spread them over the
	// cores. Each cell seeds its own generators, so parallel execution
	// is bit-identical to sequential execution (only the wall-clock
	// learning times vary, as they would across any two runs).
	type cell struct {
		combo comboKey
		vcpus int
	}
	var cells []cell
	for _, vcpus := range o.VCPUs {
		if _, err := cloud.FleetTable1(vcpus); err != nil {
			return nil, err
		}
		for _, combo := range grid() {
			cells = append(cells, cell{combo, vcpus})
		}
	}
	workers := runtime.GOMAXPROCS(0)
	if workers > len(cells) {
		workers = len(cells)
	}
	var (
		mu   sync.Mutex
		wg   sync.WaitGroup
		next int32
		errs []error
	)
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt32(&next, 1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				fleet, err := cloud.FleetTable1(c.vcpus)
				if err == nil {
					var lr *core.Result
					lr, err = learn(o, fleet, c.combo.alpha, c.combo.gamma, c.combo.epsilon)
					if err == nil {
						var mk float64
						mk, err = EvalPlan(o, fleet, lr.Plan)
						if err == nil {
							mu.Lock()
							res.LearnMillis[c.combo][c.vcpus] = float64(lr.LearningTime) / float64(time.Millisecond)
							res.PlanMakespan[c.combo][c.vcpus] = mk
							res.Plans[c.combo][c.vcpus] = lr.Plan
							mu.Unlock()
						}
					}
				}
				if err != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("expt: sweep %v on %d vCPUs: %w", c.combo, c.vcpus, err))
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	// Join every cell's error: a sweep that fails in several cells
	// reports all of them, not just whichever worker lost the race.
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return res, nil
}

// Table2 renders the sweep's learning times in the paper's Table II
// layout (α, γ, ε rows × vCPU columns). Units are milliseconds of
// wall clock (the paper's WorkflowSim reports seconds; only the shape
// is comparable).
func Table2(s *SweepResult) *metrics.Table {
	headers := []string{"alpha", "gamma", "epsilon"}
	for _, v := range s.VCPUs {
		headers = append(headers, fmt.Sprintf("%d vCPUs (ms)", v))
	}
	t := metrics.NewTable("Table II: Learning time of Montage workflow", headers...)
	for _, combo := range grid() {
		row := []any{
			fmt.Sprintf("%.1f", combo.alpha),
			fmt.Sprintf("%.1f", combo.gamma),
			fmt.Sprintf("%.1f", combo.epsilon),
		}
		for _, v := range s.VCPUs {
			row = append(row, fmt.Sprintf("%.1f", s.LearnMillis[combo][v]))
		}
		t.AddRowF(row...)
	}
	return t
}

// Table3 renders the sweep's simulated plan makespans in the paper's
// Table III layout.
func Table3(s *SweepResult) *metrics.Table {
	headers := []string{"alpha", "gamma", "epsilon"}
	for _, v := range s.VCPUs {
		headers = append(headers, fmt.Sprintf("%d vCPUs (s)", v))
	}
	t := metrics.NewTable("Table III: Simulated execution time of Montage workflow", headers...)
	for _, combo := range grid() {
		row := []any{
			fmt.Sprintf("%.1f", combo.alpha),
			fmt.Sprintf("%.1f", combo.gamma),
			fmt.Sprintf("%.1f", combo.epsilon),
		}
		for _, v := range s.VCPUs {
			row = append(row, s.PlanMakespan[combo][v])
		}
		t.AddRowF(row...)
	}
	return t
}

// Table4Row is one execution-stage measurement.
type Table4Row struct {
	Algorithm string
	VCPUs     int
	Alpha     float64 // 0 for HEFT
	Gamma     float64
	Epsilon   float64
	Makespan  float64 // virtual seconds
}

// Table4Reps is the number of execution-engine runs averaged per
// Table IV row. The paper reports single AWS runs; a single
// fluctuation draw can swing a makespan by minutes (e.g. the critical
// chain throttled twice), so we report the mean of several runs, with
// the same seed set for every algorithm (paired comparison).
const Table4Reps = 10

// RunTable4 reproduces Table IV: it executes the HEFT plan and the
// three ReASSIgN scenario plans (C1-C3: γ=1.0, ε=0.1,
// α ∈ {1.0, 0.5, 0.1}) in the concurrent execution engine under the
// "real cloud" fluctuation model, for every Table I fleet. Each row
// is the mean of Table4Reps runs with distinct fluctuation seeds.
func RunTable4(o Options) ([]Table4Row, error) {
	o = o.withDefaults()
	var rows []Table4Row
	for _, vcpus := range o.VCPUs {
		fleet, err := cloud.FleetTable1(vcpus)
		if err != nil {
			return nil, err
		}
		execPlan := func(plan core.Plan) (float64, error) {
			var sum float64
			for rep := 0; rep < Table4Reps; rep++ {
				e, err := engine.New(o.Workflow, fleet, plan,
					engine.WithFluctuation(o.ExecFluct),
					engine.WithSeed(o.Seed+1000+int64(rep)), // unseen environment, paired across plans
					engine.WithTimeScale(o.TimeScale),
				)
				if err != nil {
					return 0, err
				}
				r, err := e.Execute(context.Background())
				if err != nil {
					return 0, err
				}
				sum += r.Makespan
			}
			return sum / Table4Reps, nil
		}

		// HEFT plan from the simulator's planner.
		h := &sched.HEFT{}
		if _, err := sim.Run(o.Workflow, fleet, h, sim.Config{Hook: o.Hook}); err != nil {
			return nil, fmt.Errorf("expt: HEFT on %d vCPUs: %w", vcpus, err)
		}
		mk, err := execPlan(core.NewPlan(h.Assign()))
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{Algorithm: "HEFT", VCPUs: vcpus, Makespan: mk})

		for _, sc := range Scenarios() {
			lr, err := learn(o, fleet, sc.Alpha, 1.0, 0.1)
			if err != nil {
				return nil, err
			}
			mk, err := execPlan(lr.Plan)
			if err != nil {
				return nil, err
			}
			rows = append(rows, Table4Row{
				Algorithm: "ReASSIgN", VCPUs: vcpus,
				Alpha: sc.Alpha, Gamma: 1.0, Epsilon: 0.1,
				Makespan: mk,
			})
		}
	}
	return rows, nil
}

// Table4 renders execution rows in the paper's layout: grouped by
// vCPU count, sorted by total execution time within each group.
func Table4(rows []Table4Row) *metrics.Table {
	t := metrics.NewTable("Table IV: Actual execution time of Montage workflow (execution engine)",
		"Algorithm", "vCPUs", "alpha", "gamma", "epsilon", "Total Execution Time")
	sorted := append([]Table4Row(nil), rows...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].VCPUs != sorted[j].VCPUs {
			return sorted[i].VCPUs < sorted[j].VCPUs
		}
		return sorted[i].Makespan < sorted[j].Makespan
	})
	for _, r := range sorted {
		a, g, e := "-", "-", "-"
		if r.Algorithm != "HEFT" {
			a, g, e = fmt.Sprintf("%.1f", r.Alpha), fmt.Sprintf("%.1f", r.Gamma), fmt.Sprintf("%.1f", r.Epsilon)
		}
		t.AddRowF(r.Algorithm, r.VCPUs, a, g, e, metrics.FormatDuration(r.Makespan))
	}
	return t
}

// Table5 reproduces Table V: the activation→VM scheduling plan on the
// 16-vCPU fleet for HEFT and the three ReASSIgN scenarios.
func Table5(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	h := &sched.HEFT{}
	if _, err := sim.Run(o.Workflow, fleet, h, sim.Config{Hook: o.Hook}); err != nil {
		return nil, err
	}
	plans := map[string]core.Plan{"HEFT": core.NewPlan(h.Assign())}
	order := []string{"HEFT"}
	for _, sc := range Scenarios() {
		lr, err := learn(o, fleet, sc.Alpha, 1.0, 0.1)
		if err != nil {
			return nil, err
		}
		plans[sc.Name] = lr.Plan
		order = append(order, sc.Name)
	}
	t := metrics.NewTable("Table V: Scheduling plan for 16 vCPUs",
		"Activation ID", "HEFT", "C1", "C2", "C3")
	for i, a := range o.Workflow.Activations() {
		row := []any{i}
		for _, name := range order {
			vm, _ := plans[name].VM(a.ID)
			row = append(row, vm)
		}
		t.AddRowF(row...)
	}
	return t, nil
}

// Table5BigVMShare returns, per plan, the fraction of activations
// placed on t2.2xlarge VMs in the 16-vCPU fleet — the quantity behind
// the paper's Table V observation that ReASSIgN concentrates work on
// the robust VM (ID 8) while HEFT spreads uniformly.
func Table5BigVMShare(o Options) (map[string]float64, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	bigIDs := make(map[int]bool)
	for _, vm := range fleet.VMs {
		if vm.Type.VCPUs > 1 {
			bigIDs[vm.ID] = true
		}
	}
	share := func(plan core.Plan) float64 {
		n := 0
		for _, e := range plan.Entries() {
			if bigIDs[e.VM] {
				n++
			}
		}
		return float64(n) / float64(plan.Len())
	}
	h := &sched.HEFT{}
	if _, err := sim.Run(o.Workflow, fleet, h, sim.Config{Hook: o.Hook}); err != nil {
		return nil, err
	}
	out := map[string]float64{"HEFT": share(core.NewPlan(h.Assign()))}
	for _, sc := range Scenarios() {
		lr, err := learn(o, fleet, sc.Alpha, 1.0, 0.1)
		if err != nil {
			return nil, err
		}
		out[sc.Name] = share(lr.Plan)
	}
	return out, nil
}
