package expt

import (
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/gantt"
	"reassign/internal/plot"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// LearningCurves produces the figure the paper's evaluation implies
// but never shows: per-episode makespan trajectories on the 16-vCPU
// fleet for representative (α, γ, ε) configurations — the best
// scenario family (γ=1.0, ε=0.1), the pure-exploitation pathology
// (ε=1.0) and the fast-α degradation. Curves are smoothed with a
// centred window of ±smooth episodes (raw curves are ±20 % noise).
func LearningCurves(o Options, smooth int) (*plot.Chart, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	configs := []struct {
		name                  string
		alpha, gamma, epsilon float64
	}{
		{"α=0.5 γ=1.0 ε=0.1 (best)", 0.5, 1.0, 0.1},
		{"α=0.1 γ=1.0 ε=0.1", 0.1, 1.0, 0.1},
		{"α=1.0 γ=1.0 ε=0.1 (fast α)", 1.0, 1.0, 0.1},
		{"α=0.5 γ=1.0 ε=1.0 (pure exploit)", 0.5, 1.0, 1.0},
	}
	chart := &plot.Chart{
		Title:  fmt.Sprintf("ReASSIgN learning curves — %s, 16 vCPUs, %d episodes", o.Workflow.Name, o.Episodes),
		XLabel: "episode",
		YLabel: "episode makespan (s)",
	}
	for _, cfg := range configs {
		res, err := learn(o, fleet, cfg.alpha, cfg.gamma, cfg.epsilon)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, len(res.Episodes))
		ys := make([]float64, len(res.Episodes))
		for i, ep := range res.Episodes {
			xs[i] = float64(ep.Episode)
			ys[i] = ep.Makespan
		}
		chart.Series = append(chart.Series, plot.Series{
			Name: cfg.name, X: xs, Y: plot.Smooth(ys, smooth),
		})
	}
	return chart, nil
}

// ScheduleCharts builds Gantt charts of the HEFT plan and the learned
// ReASSIgN plan (α=0.5, γ=1.0, ε=0.1) replayed under the training
// fluctuation model on the 16-vCPU fleet.
func ScheduleCharts(o Options) ([]*gantt.Chart, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	cfg := sim.Config{Fluct: o.TrainFluct, Seed: o.Seed, Hook: o.Hook}
	h := &sched.HEFT{}
	heftRes, err := sim.Run(o.Workflow, fleet, h, cfg)
	if err != nil {
		return nil, err
	}
	lr, err := learn(o, fleet, 0.5, 1.0, 0.1)
	if err != nil {
		return nil, err
	}
	planRes, err := sim.Run(o.Workflow, fleet, &sched.Plan{PlanName: "ReASSIgN (learned)", Assign: lr.Plan.Map()}, cfg)
	if err != nil {
		return nil, err
	}
	return []*gantt.Chart{
		gantt.FromResult(heftRes, fleet),
		gantt.FromResult(planRes, fleet),
	}, nil
}
