package expt

import (
	"fmt"
	"math/rand"

	"reassign/internal/api"
	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/loadgen"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// StudyElasticity sweeps autoscaling policies for Montage on a
// deliberately under-provisioned fleet (2 × t2.micro) — quantifying
// the elasticity property the paper's introduction motivates. Rows
// are means over PlanEvalReps fluctuation seeds.
func StudyElasticity(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet := cloud.MustFleet("minimal", []cloud.VMType{cloud.T2Micro}, []int{2})
	t := metrics.NewTable(
		fmt.Sprintf("Study: elasticity (Montage 50 on 2×t2.micro, mean of %d runs)", PlanEvalReps),
		"max VMs", "boot delay (s)", "makespan (s)", "cost (USD)", "acquired", "released")

	type policy struct {
		max  int
		boot float64
	}
	for _, p := range []policy{{0, 0}, {4, 45}, {8, 45}, {8, 300}} {
		var auto *sim.Autoscale
		var mk, cost float64
		var acq, rel int
		for rep := 0; rep < PlanEvalReps; rep++ {
			if p.max > 0 {
				auto = &sim.Autoscale{
					Type: cloud.T2Large, MaxVMs: p.max,
					BootDelay: p.boot, IdleTimeout: 120, Cooldown: 20,
				}
			}
			res, err := sim.Run(o.Workflow, fleet, sched.MCT{},
				sim.Config{Fluct: o.TrainFluct, Seed: o.Seed + 5000 + int64(rep), Autoscale: auto, Hook: o.Hook})
			if err != nil {
				return nil, err
			}
			mk += res.Makespan
			cost += res.Cost
			if res.Elasticity != nil {
				acq += res.Elasticity.Acquired
				rel += res.Elasticity.Released
			}
		}
		n := float64(PlanEvalReps)
		boot := "-"
		if p.max > 0 {
			boot = fmt.Sprintf("%.0f", p.boot)
		}
		t.AddRowF(p.max, boot, mk/n, fmt.Sprintf("%.4f", cost/n),
			fmt.Sprintf("%.1f", float64(acq)/n), fmt.Sprintf("%.1f", float64(rel)/n))
	}
	return t, nil
}

// StudySpot sweeps spot-instance mean lifetimes on an all-spot fleet
// (KeepOne protected): how much churn dynamic scheduling absorbs, and
// at what makespan price.
func StudySpot(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet := cloud.MustFleet("spotpool", []cloud.VMType{cloud.T2Large}, []int{4})
	t := metrics.NewTable(
		fmt.Sprintf("Study: spot revocations (Montage 50 on 4×t2.large, mean of %d runs)", PlanEvalReps),
		"mean lifetime (s)", "makespan (s)", "revocations", "aborted attempts")

	for _, life := range []float64{0, 1000, 300, 100} {
		var mk float64
		var revs, aborted int
		for rep := 0; rep < PlanEvalReps; rep++ {
			var spot *sim.SpotPolicy
			if life > 0 {
				spot = &sim.SpotPolicy{MeanLifetime: life, KeepOne: true}
			}
			res, err := sim.Run(o.Workflow, fleet, sched.MCT{},
				sim.Config{Fluct: o.TrainFluct, Seed: o.Seed + 5000 + int64(rep), Spot: spot, Hook: o.Hook})
			if err != nil {
				return nil, err
			}
			if res.State != sim.FinishedOK {
				return nil, fmt.Errorf("expt: spot run ended in %v", res.State)
			}
			mk += res.Makespan
			revs += res.Revocations
			for _, r := range res.Records {
				if !r.Success {
					aborted++
				}
			}
		}
		n := float64(PlanEvalReps)
		label := "∞ (no spot)"
		if life > 0 {
			label = fmt.Sprintf("%.0f", life)
		}
		t.AddRowF(label, mk/n,
			fmt.Sprintf("%.1f", float64(revs)/n),
			fmt.Sprintf("%.1f", float64(aborted)/n))
	}
	return t, nil
}

// StudyScaling implements the paper's named future work — "more
// experiments with larger instances of Montage": ReASSIgN (default
// parameters, o.Episodes episodes) vs HEFT across Montage sizes on
// the 32-vCPU fleet, plan quality as the mean of PlanEvalReps
// fluctuating runs.
func StudyScaling(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(32)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Study: Montage scaling on 32 vCPUs (mean of %d runs)", PlanEvalReps),
		"activations", "HEFT (s)", "ReASSIgN (s)", "ReASSIgN/HEFT")

	evalPlan := func(w *dag.Workflow, plan core.Plan) (float64, error) {
		assign := plan.Map()
		var sum float64
		for rep := 0; rep < PlanEvalReps; rep++ {
			res, err := sim.Run(w, fleet, &sched.Plan{PlanName: "p", Assign: assign},
				sim.Config{Fluct: o.TrainFluct, Seed: o.Seed + 5000 + int64(rep), Hook: o.Hook})
			if err != nil {
				return 0, err
			}
			sum += res.Makespan
		}
		return sum / PlanEvalReps, nil
	}

	for _, size := range []int{25, 50, 100, 200} {
		rng := rand.New(rand.NewSource(o.Seed))
		var w *dag.Workflow
		if size == 50 {
			w = trace.Montage50(rng)
		} else {
			w = trace.MontageN(rng, size)
		}
		h := &sched.HEFT{}
		if _, err := sim.Run(w, fleet, h, sim.Config{Hook: o.Hook}); err != nil {
			return nil, err
		}
		heftMk, err := evalPlan(w, core.NewPlan(h.Assign()))
		if err != nil {
			return nil, err
		}
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet, Params: core.DefaultParams(),
			Episodes: o.Episodes,
			Sim:      sim.Config{Fluct: o.TrainFluct, Hook: o.Hook},
		}, core.WithSeed(o.Seed), core.WithSink(o.Sink))
		if err != nil {
			return nil, err
		}
		lr, err := l.Learn()
		if err != nil {
			return nil, err
		}
		rlMk, err := evalPlan(w, lr.Plan)
		if err != nil {
			return nil, err
		}
		t.AddRowF(w.Len(), heftMk, rlMk, fmt.Sprintf("%.2f", rlMk/heftMk))
	}
	return t, nil
}

// StudyOpenSystem is the open-system (multi-tenant continuous
// arrival) evaluation: a seeded three-tenant trace — Poisson, bursty
// and diurnal streams, two of them deadline-carrying — replayed
// bit-identically against every scheduling lane (learned ReASSIgN
// with a warm per-structure Q table, static HEFT, greedy immediate,
// and deadline-EDF admission). Rows compare the lanes on drain
// makespan, throughput, Jain/max-min fairness over per-tenant
// attainment, SLA hit rate, and queue-wait percentiles.
func StudyOpenSystem(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	tr, err := loadgen.Generate(loadgen.TraceConfig{
		Seed:    o.Seed,
		Horizon: 600,
		Tenants: loadgen.DefaultTenants(3, 0.02, 30),
	})
	if err != nil {
		return nil, err
	}
	rep, err := loadgen.RunLanes(tr, loadgen.LaneConfig{
		Fleet:    api.FleetSpec{Preset: "table1", VCPUs: 16},
		Slots:    2,
		Episodes: 12,
	})
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		fmt.Sprintf("Study: open system (%d arrivals, %d tenants, seed %d)",
			rep.Jobs, len(rep.Tenants), rep.Seed),
		"policy", "makespan (s)", "jobs/1ks", "jain", "maxmin", "sla hit", "wait p50", "wait p95")
	for _, l := range rep.Lanes {
		t.AddRowF(string(l.Policy), l.Makespan, l.Throughput, l.Jain, l.MaxMin,
			l.SLAHitRate, l.WaitP50, l.WaitP95)
	}
	return t, nil
}
