// Package expt is the experiment harness: it regenerates every table
// of the paper's evaluation (Tables I–V) and the ablations listed in
// DESIGN.md §5, printing them in the paper's layout via
// metrics.Table.
//
// The harness wires the full SciCumulus-RL pipeline: synthetic
// Montage trace → learning episodes in the simulator (package sim) →
// plan extraction → "real" execution in the concurrent engine
// (package engine) under a fluctuation model the learner never saw
// exactly.
package expt

import (
	"fmt"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
	"reassign/internal/trace"
)

// ParamGrid is the set each of α, γ, ε ranges over in the paper's
// sweep (§IV.C): 27 combinations per fleet.
var ParamGrid = []float64{0.1, 0.5, 1.0}

// Scenario identifies the three named configurations of Table V:
// C1 (α=1.0), C2 (α=0.5), C3 (α=0.1), all with γ=1.0 and ε=0.1.
type Scenario struct {
	Name  string
	Alpha float64
}

// Scenarios returns C1, C2, C3 in paper order.
func Scenarios() []Scenario {
	return []Scenario{{"C1", 1.0}, {"C2", 0.5}, {"C3", 0.1}}
}

// Options configures a harness run.
type Options struct {
	// Seed drives workflow generation, learning and fluctuations.
	Seed int64
	// Episodes per learning run (paper: 100).
	Episodes int
	// VCPUs lists the Table I fleets to use (default 16, 32, 64).
	VCPUs []int
	// Workflow overrides the default Montage 50-node instance.
	Workflow *dag.Workflow
	// TrainFluct is the fluctuation model inside the learning
	// simulator (the observable environment dynamics); nil uses
	// cloud.DefaultFluctuation.
	TrainFluct *cloud.FluctuationModel
	// ExecFluct is the "real cloud" model for the execution stage;
	// nil uses cloud.DefaultFluctuation with a different seed stream.
	ExecFluct *cloud.FluctuationModel
	// TimeScale for the execution engine (wall seconds per virtual
	// second; default 2e-5).
	TimeScale float64
	// Sink, when non-nil, receives telemetry from every learning run
	// the harness performs (episodes, decisions, kernel counters). It
	// must be safe for concurrent use: RunSweep learns in parallel.
	Sink telemetry.Sink
	// Replicas > 1 runs every learning pipeline as that many parallel
	// replicas with deterministically split seeds, keeping the best
	// plan (core.WithReplicas). LearningTime then reports the
	// ensemble's wall clock.
	Replicas int
	// Hook, when non-nil, observes every simulation the harness runs
	// (e.g. the invariant auditor behind the -audit flag). It must be
	// safe for concurrent use: RunSweep learns in parallel.
	Hook sim.Hook
}

func (o Options) withDefaults() Options {
	if o.Episodes <= 0 {
		o.Episodes = 100
	}
	if len(o.VCPUs) == 0 {
		o.VCPUs = cloud.Table1VCPUs()
	}
	if o.Workflow == nil {
		rng := rand.New(rand.NewSource(o.Seed))
		o.Workflow = trace.Montage50(rng)
	}
	if o.TrainFluct == nil {
		f := cloud.DefaultFluctuation()
		o.TrainFluct = &f
	}
	if o.ExecFluct == nil {
		// The "real cloud" of the execution stage throttles less than
		// the training simulator assumed: the mismatch between learned
		// environment and reality is what keeps HEFT competitive on
		// the smallest fleet (paper Table IV, 16 vCPUs).
		f := cloud.DefaultFluctuation()
		f.MicroThrottleProb = 0.05
		f.ThrottleFactor = 2.0
		o.ExecFluct = &f
	}
	if o.TimeScale <= 0 {
		o.TimeScale = 2e-4
	}
	return o
}

// learn runs one ReASSIgN learning pipeline and returns its result.
// With o.Replicas > 1 it runs the replica ensemble and returns the
// best replica's result, with LearningTime replaced by the ensemble's
// wall clock (the honest Table II quantity for the parallel pipeline).
func learn(o Options, fleet *cloud.Fleet, alpha, gamma, epsilon float64) (*core.Result, error) {
	p := core.DefaultParams()
	p.Alpha, p.Gamma, p.Epsilon = alpha, gamma, epsilon
	opts := []core.Option{core.WithSeed(o.Seed), core.WithSink(o.Sink)}
	if o.Replicas > 1 {
		opts = append(opts, core.WithReplicas(o.Replicas))
	}
	l, err := core.NewLearner(core.Config{
		Workflow: o.Workflow,
		Fleet:    fleet,
		Params:   p,
		Episodes: o.Episodes,
		Sim:      sim.Config{Fluct: o.TrainFluct, Hook: o.Hook},
	}, opts...)
	if err != nil {
		return nil, err
	}
	if o.Replicas > 1 {
		rr, err := l.LearnReplicas()
		if err != nil {
			return nil, err
		}
		res := rr.BestResult()
		res.LearningTime = rr.LearningTime
		return res, nil
	}
	return l.Learn()
}

// comboKey identifies a parameter combination.
type comboKey struct{ alpha, gamma, epsilon float64 }

func (k comboKey) String() string {
	return fmt.Sprintf("α=%.1f γ=%.1f ε=%.1f", k.alpha, k.gamma, k.epsilon)
}

// grid enumerates the 27 (α, γ, ε) combinations in the paper's row
// order (α outermost, ε innermost).
func grid() []comboKey {
	var out []comboKey
	for _, a := range ParamGrid {
		for _, g := range ParamGrid {
			for _, e := range ParamGrid {
				out = append(out, comboKey{a, g, e})
			}
		}
	}
	return out
}
