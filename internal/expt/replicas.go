package expt

import (
	"fmt"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/metrics"
)

// DefaultReplicaCounts is the replica ladder ReplicaScaling walks.
var DefaultReplicaCounts = []int{1, 2, 4, 8}

// ReplicaScaling is the replica-aware variant of Tables II and III:
// for each replica count it learns the C1 scenario (α=1.0, γ=1.0,
// ε=0.1) on every Table I fleet as a parallel ensemble and reports
// the ensemble's wall-clock learning time next to the best replica's
// plan makespan. Learning time should drop toward 1/K on a K-core
// machine while the makespan column improves (or holds): more
// replicas explore more of the plan space for the same wall clock.
//
// A nil counts uses DefaultReplicaCounts. o.Replicas is ignored —
// the ladder supplies the counts.
func ReplicaScaling(o Options, counts []int) (*metrics.Table, error) {
	o = o.withDefaults()
	if len(counts) == 0 {
		counts = DefaultReplicaCounts
	}
	headers := []string{"replicas"}
	for _, v := range o.VCPUs {
		headers = append(headers, fmt.Sprintf("%d vCPUs learn (ms)", v), fmt.Sprintf("%d vCPUs plan (s)", v))
	}
	t := metrics.NewTable("Replica scaling: C1 ensemble learning time and best-plan makespan", headers...)
	for _, k := range counts {
		if k < 1 {
			return nil, fmt.Errorf("expt: replica count %d: need at least one replica", k)
		}
		row := []any{k}
		for _, vcpus := range o.VCPUs {
			fleet, err := cloud.FleetTable1(vcpus)
			if err != nil {
				return nil, err
			}
			ro := o
			ro.Replicas = k
			lr, err := learn(ro, fleet, 1.0, 1.0, 0.1)
			if err != nil {
				return nil, fmt.Errorf("expt: %d replicas on %d vCPUs: %w", k, vcpus, err)
			}
			mk, err := EvalPlan(o, fleet, lr.Plan)
			if err != nil {
				return nil, fmt.Errorf("expt: %d replicas on %d vCPUs: %w", k, vcpus, err)
			}
			row = append(row,
				fmt.Sprintf("%.1f", float64(lr.LearningTime)/float64(time.Millisecond)),
				fmt.Sprintf("%.1f", mk))
		}
		t.AddRowF(row...)
	}
	return t, nil
}
