package expt

import (
	"context"
	"fmt"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/exec"
	"reassign/internal/market"
	"reassign/internal/metrics"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// MarketFrontierRow is one (regime, policy) point of the cost-vs-
// makespan frontier: the same plan executed under the same market
// trace, once acting on preemption notices (cordon/drain/remediate)
// and once reacting only after the kill.
type MarketFrontierRow struct {
	Regime string
	// Policy is "notice-reactive" or "reactive-only".
	Policy   string
	Makespan float64
	Cost     float64
	// Product is Cost × Makespan, the scalar the frontier compares.
	Product  float64
	Notices  int
	Preempt  int
	Remedied int
	Retries  int
}

// marketFrontierHorizon bounds the traces the frontier study replays:
// long enough to cover any run, short enough that preemptions land
// while the workflow is still executing.
const marketFrontierHorizon = 900

// MarketFrontier executes one HEFT plan for the study workflow under
// each market regime twice — notice-reactive vs reactive-only — over
// the identical trace, and returns the frontier points. Both runs see
// exactly the same prices, kills and degradations; only the master's
// use of the notice differs, so any cost×makespan gap is attributable
// to acting before failure.
func MarketFrontier(o Options) ([]MarketFrontierRow, error) {
	// A 150-node Montage keeps the fleet busy deep into the trace, so
	// preemptions land on working VMs and the policies actually differ;
	// Montage 50 drains too early for most kills to matter. Captured
	// before withDefaults, which would otherwise fill in Montage 50.
	w := o.Workflow
	if w == nil {
		w = trace.MontageN(rand.New(rand.NewSource(o.Seed)), 150)
	}
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	h := &sched.HEFT{}
	if _, err := sim.Run(w, fleet, h, sim.Config{Hook: o.Hook}); err != nil {
		return nil, err
	}
	plan := core.NewPlan(h.Assign())

	var rows []MarketFrontierRow
	for _, rg := range market.Regimes() {
		tr, err := market.Generate(market.DefaultCatalogue(), fleet, rg, o.Seed+17, marketFrontierHorizon)
		if err != nil {
			return nil, err
		}
		for _, policy := range []string{"notice-reactive", "reactive-only"} {
			pb, err := market.NewPlayback(tr, nil)
			if err != nil {
				return nil, err
			}
			opts := []exec.Option{exec.WithMarket(pb)}
			if policy == "reactive-only" {
				opts = append(opts, exec.WithReactiveOnly())
			}
			m, err := exec.New(w, fleet, plan,
				exec.NewMarketFeed(&exec.InProc{Workers: 4, Runner: exec.SimRunner{}}, pb),
				opts...)
			if err != nil {
				return nil, err
			}
			rep, err := m.Run(context.Background())
			if err != nil {
				return nil, fmt.Errorf("expt: market frontier %s/%s: %w", rg.Name, policy, err)
			}
			rows = append(rows, MarketFrontierRow{
				Regime: rg.Name, Policy: policy,
				Makespan: rep.Makespan, Cost: rep.Cost,
				Product: rep.Cost * rep.Makespan,
				Notices: rep.PreemptNotices, Preempt: rep.Preempted,
				Remedied: rep.Remediated, Retries: rep.Retries,
			})
		}
	}
	return rows, nil
}

// StudyMarketFrontier renders the frontier as a table: per regime, the
// notice-reactive master should dominate (or match) the reactive-only
// baseline on cost×makespan, since it drains doomed VMs before their
// work is lost.
func StudyMarketFrontier(o Options) (*metrics.Table, error) {
	rows, err := MarketFrontier(o)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(
		"Study: spot-market frontier (Montage 150 on 16 vCPUs, exec master over traced regimes)",
		"regime", "policy", "makespan (s)", "cost (USD)", "cost x makespan",
		"notices", "preempted", "remediated", "retries")
	for _, r := range rows {
		t.AddRowF(r.Regime, r.Policy, r.Makespan,
			fmt.Sprintf("%.4f", r.Cost), fmt.Sprintf("%.2f", r.Product),
			r.Notices, r.Preempt, r.Remedied, r.Retries)
	}
	return t, nil
}
