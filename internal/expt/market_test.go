package expt

import "testing"

// TestMarketFrontierNoticeDominates runs the frontier and checks the
// tentpole claim: under at least one regime the notice-reactive policy
// achieves a strictly lower cost×makespan than reactive-only, and it
// never does worse anywhere preemptions actually landed.
func TestMarketFrontierNoticeDominates(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier study executes six master runs")
	}
	rows, err := MarketFrontier(Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 (3 regimes x 2 policies)", len(rows))
	}
	byRegime := map[string]map[string]MarketFrontierRow{}
	for _, r := range rows {
		if byRegime[r.Regime] == nil {
			byRegime[r.Regime] = map[string]MarketFrontierRow{}
		}
		byRegime[r.Regime][r.Policy] = r
		t.Logf("%-10s %-16s mk=%.2f cost=%.4f prod=%.2f notices=%d preempt=%d remediated=%d retries=%d",
			r.Regime, r.Policy, r.Makespan, r.Cost, r.Product, r.Notices, r.Preempt, r.Remedied, r.Retries)
	}
	strictlyBetter := false
	for regime, pair := range byRegime {
		nr, ro := pair["notice-reactive"], pair["reactive-only"]
		if nr.Notices != ro.Notices {
			t.Fatalf("%s: notice counts differ (%d vs %d) on the same trace", regime, nr.Notices, ro.Notices)
		}
		if nr.Product < ro.Product {
			strictlyBetter = true
		}
		if nr.Product > ro.Product*1.001 && ro.Preempt > 0 {
			t.Errorf("%s: notice-reactive product %.2f worse than reactive-only %.2f",
				regime, nr.Product, ro.Product)
		}
	}
	if !strictlyBetter {
		t.Error("notice-reactive never strictly beat reactive-only in any regime")
	}
}
