package expt

import (
	"strings"
	"testing"

	"reassign/internal/cloud"
)

// smallOpts keeps harness tests fast: few episodes, two fleets.
func smallOpts() Options {
	return Options{Seed: 1, Episodes: 5, VCPUs: []int{16, 32}, TimeScale: 1e-5}
}

func TestGridIs27(t *testing.T) {
	g := grid()
	if len(g) != 27 {
		t.Fatalf("grid = %d combos, want 27", len(g))
	}
	seen := make(map[comboKey]bool)
	for _, c := range g {
		if seen[c] {
			t.Fatalf("duplicate combo %v", c)
		}
		seen[c] = true
	}
	// Paper row order: first row is (0.1, 0.1, 0.1), last is (1,1,1).
	if g[0] != (comboKey{0.1, 0.1, 0.1}) || g[26] != (comboKey{1, 1, 1}) {
		t.Fatalf("order: first %v last %v", g[0], g[26])
	}
}

func TestScenarios(t *testing.T) {
	sc := Scenarios()
	if len(sc) != 3 || sc[0].Name != "C1" || sc[0].Alpha != 1.0 ||
		sc[1].Alpha != 0.5 || sc[2].Alpha != 0.1 {
		t.Fatalf("Scenarios = %+v", sc)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	tab := Table1()
	s := tab.String()
	for _, want := range []string{"9", "11", "15", "16", "32", "64"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table I missing %q:\n%s", want, s)
		}
	}
	if tab.Rows() != 3 {
		t.Fatalf("rows = %d", tab.Rows())
	}
}

func TestSweepAndTables2and3(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is slow")
	}
	o := smallOpts()
	s, err := RunSweep(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.LearnMillis) != 27 {
		t.Fatalf("sweep combos = %d", len(s.LearnMillis))
	}
	for combo, byV := range s.PlanMakespan {
		for _, v := range o.VCPUs {
			if byV[v] <= 0 {
				t.Fatalf("combo %v on %d vCPUs: makespan %v", combo, v, byV[v])
			}
			// Options left Workflow nil, so the sweep used the
			// default Montage 50; plans must cover it.
			if s.Plans[combo][v].Len() != 50 {
				t.Fatalf("combo %v: plan size %d", combo, s.Plans[combo][v].Len())
			}
		}
	}
	t2 := Table2(s)
	if t2.Rows() != 27 {
		t.Fatalf("Table II rows = %d", t2.Rows())
	}
	t3 := Table3(s)
	if t3.Rows() != 27 {
		t.Fatalf("Table III rows = %d", t3.Rows())
	}
	if !strings.Contains(t3.String(), "Simulated execution time") {
		t.Fatal("Table III title missing")
	}
}

func TestTable4ShapeAndFormat(t *testing.T) {
	if testing.Short() {
		t.Skip("table 4 is slow")
	}
	o := smallOpts()
	rows, err := RunTable4(o)
	if err != nil {
		t.Fatal(err)
	}
	// 4 rows (HEFT + 3 scenarios) per fleet.
	if len(rows) != 4*len(o.VCPUs) {
		t.Fatalf("rows = %d", len(rows))
	}
	perV := map[int]int{}
	heftSeen := map[int]bool{}
	for _, r := range rows {
		if r.Makespan <= 0 {
			t.Fatalf("row %+v has non-positive makespan", r)
		}
		perV[r.VCPUs]++
		if r.Algorithm == "HEFT" {
			heftSeen[r.VCPUs] = true
		}
	}
	for _, v := range o.VCPUs {
		if perV[v] != 4 || !heftSeen[v] {
			t.Fatalf("fleet %d: %d rows, heft=%v", v, perV[v], heftSeen[v])
		}
	}
	tab := Table4(rows)
	s := tab.String()
	if !strings.Contains(s, "HEFT") || !strings.Contains(s, "ReASSIgN") {
		t.Fatalf("Table IV rendering:\n%s", s)
	}
	// Durations use the paper's HH:MM:SS.mmm format.
	if !strings.Contains(s, ":") {
		t.Fatalf("Table IV durations not formatted:\n%s", s)
	}
}

func TestTable5CoversAllActivations(t *testing.T) {
	if testing.Short() {
		t.Skip("table 5 is slow")
	}
	o := smallOpts()
	tab, err := Table5(o)
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 50 {
		t.Fatalf("Table V rows = %d, want 50", tab.Rows())
	}
	tsv := tab.TSV()
	lines := strings.Split(strings.TrimSpace(tsv), "\n")
	if len(lines) != 51 {
		t.Fatalf("TSV lines = %d", len(lines))
	}
	for _, l := range lines[1:] {
		if len(strings.Split(l, "\t")) != 5 {
			t.Fatalf("bad TSV row %q", l)
		}
	}
}

func TestTable5BigVMShareShape(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := Options{Seed: 3, Episodes: 30, VCPUs: []int{16}}
	share, err := Table5BigVMShare(o)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's qualitative Table V finding: ReASSIgN concentrates
	// activations on the robust (t2.2xlarge) VM more than HEFT does.
	for _, sc := range Scenarios() {
		if share[sc.Name] <= share["HEFT"] {
			t.Errorf("%s big-VM share %.2f not above HEFT %.2f", sc.Name, share[sc.Name], share["HEFT"])
		}
	}
}

func TestAblationsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("ablations are slow")
	}
	o := Options{Seed: 2, Episodes: 3, VCPUs: []int{16}}
	cases := map[string]func() (int, error){
		"rho": func() (int, error) {
			tab, err := AblationRho(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"mu": func() (int, error) {
			tab, err := AblationMu(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"policy": func() (int, error) {
			tab, err := AblationPolicy(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"episodes": func() (int, error) {
			tab, err := AblationEpisodes(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"rule": func() (int, error) {
			tab, err := AblationRule(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"discount": func() (int, error) {
			tab, err := AblationDiscount(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"bootstrap": func() (int, error) {
			tab, err := AblationBootstrap(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"costweight": func() (int, error) {
			tab, err := AblationCostWeight(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"schedules": func() (int, error) {
			tab, err := AblationSchedules(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
		"clustering": func() (int, error) {
			tab, err := AblationClustering(o)
			if err != nil {
				return 0, err
			}
			return tab.Rows(), nil
		},
	}
	for name, run := range cases {
		rows, err := run()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if rows < 2 {
			t.Fatalf("%s: only %d rows", name, rows)
		}
	}
}

func TestBaselineComparison(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := Options{Seed: 2, Episodes: 3}
	tab, err := BaselineComparison(o, 16)
	if err != nil {
		t.Fatal(err)
	}
	s := tab.String()
	for _, want := range []string{"FCFS", "HEFT", "MinMin", "ReASSIgN"} {
		if !strings.Contains(s, want) {
			t.Fatalf("baseline table missing %q:\n%s", want, s)
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Episodes != 100 {
		t.Fatalf("episodes = %d", o.Episodes)
	}
	if len(o.VCPUs) != 3 {
		t.Fatalf("vcpus = %v", o.VCPUs)
	}
	if o.Workflow == nil || o.Workflow.Len() != 50 {
		t.Fatal("default workflow not Montage 50")
	}
	if o.TrainFluct == nil || o.ExecFluct == nil {
		t.Fatal("fluctuation defaults missing")
	}
	if o.TimeScale <= 0 {
		t.Fatal("timescale default missing")
	}
	if _, err := cloud.FleetTable1(o.VCPUs[0]); err != nil {
		t.Fatal(err)
	}
}

func TestLearningCurves(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	chart, err := LearningCurves(Options{Seed: 1, Episodes: 8}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 4 {
		t.Fatalf("series = %d", len(chart.Series))
	}
	for _, s := range chart.Series {
		if len(s.X) != 8 || len(s.Y) != 8 {
			t.Fatalf("series %q has %d/%d points", s.Name, len(s.X), len(s.Y))
		}
	}
	svg := chart.SVG()
	if !strings.Contains(svg, "learning curves") {
		t.Fatal("title missing")
	}
}

func TestStudies(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	o := Options{Seed: 2, Episodes: 3}
	el, err := StudyElasticity(o)
	if err != nil {
		t.Fatal(err)
	}
	if el.Rows() != 4 {
		t.Fatalf("elasticity rows = %d", el.Rows())
	}
	sp, err := StudySpot(o)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rows() != 4 {
		t.Fatalf("spot rows = %d", sp.Rows())
	}
}

func TestStudyScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	tab, err := StudyScaling(Options{Seed: 2, Episodes: 3})
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 4 {
		t.Fatalf("rows = %d", tab.Rows())
	}
}

func TestScheduleCharts(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	charts, err := ScheduleCharts(Options{Seed: 1, Episodes: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(charts) != 2 {
		t.Fatalf("charts = %d", len(charts))
	}
	for _, c := range charts {
		if len(c.Spans) != 50 {
			t.Fatalf("chart %q has %d spans", c.Title, len(c.Spans))
		}
		if c.Makespan() <= 0 {
			t.Fatalf("chart %q empty", c.Title)
		}
	}
}
