package expt

import (
	"fmt"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/metrics"
	"reassign/internal/rl"
	"reassign/internal/sched"
	"reassign/internal/sim"
)

// ablationLearn runs one learning pipeline with modified parameters
// on the 16-vCPU fleet and returns the plan makespan.
func ablationLearn(o Options, mutate func(*core.Params), episodes int) (float64, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return 0, err
	}
	p := core.DefaultParams()
	mutate(&p)
	if episodes <= 0 {
		episodes = o.Episodes
	}
	l, err := core.NewLearner(core.Config{
		Workflow: o.Workflow,
		Fleet:    fleet,
		Params:   p,
		Episodes: episodes,
		Sim:      sim.Config{Fluct: o.TrainFluct, Hook: o.Hook},
	}, core.WithSeed(o.Seed), core.WithSink(o.Sink))
	if err != nil {
		return 0, err
	}
	res, err := l.Learn()
	if err != nil {
		return 0, err
	}
	return EvalPlan(o, fleet, res.Plan)
}

// AblationRho sweeps the reward-smoothing factor ρ (the paper leaves
// it implicit; DESIGN.md §5).
func AblationRho(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: reward smoothing ρ (16 vCPUs)", "rho", "plan makespan (s)")
	for _, rho := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		mk, err := ablationLearn(o, func(p *core.Params) { p.Rho = rho }, 0)
		if err != nil {
			return nil, err
		}
		t.AddRowF(fmt.Sprintf("%.2f", rho), mk)
	}
	return t, nil
}

// AblationMu sweeps μ, the execution-vs-queue-time balance of the
// performance index (paper fixes μ=0.5).
func AblationMu(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: performance-index balance μ (16 vCPUs)", "mu", "plan makespan (s)")
	for _, mu := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		mk, err := ablationLearn(o, func(p *core.Params) { p.Mu = mu }, 0)
		if err != nil {
			return nil, err
		}
		t.AddRowF(fmt.Sprintf("%.2f", mu), mk)
	}
	return t, nil
}

// AblationPolicy compares the paper's ε convention, the textbook
// ε-greedy reading, and Boltzmann exploration.
func AblationPolicy(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: exploration policy (16 vCPUs)", "policy", "plan makespan (s)")
	cases := []struct {
		name   string
		mutate func(*core.Params)
	}{
		{"paper ε=0.1 (explore 90%)", func(p *core.Params) { p.Epsilon = 0.1 }},
		{"textbook ε=0.1 (explore 10%)", func(p *core.Params) {
			p.Policy = rl.EpsilonGreedy{Epsilon: 0.1, Textbook: true}
		}},
		{"boltzmann T=0.5", func(p *core.Params) { p.Policy = rl.Boltzmann{Temperature: 0.5} }},
		{"boltzmann T=2.0", func(p *core.Params) { p.Policy = rl.Boltzmann{Temperature: 2.0} }},
	}
	for _, c := range cases {
		mk, err := ablationLearn(o, c.mutate, 0)
		if err != nil {
			return nil, err
		}
		t.AddRowF(c.name, mk)
	}
	return t, nil
}

// AblationEpisodes sweeps the episode budget — the paper conjectures
// ReASSIgN improves with more episodes.
func AblationEpisodes(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: episode budget (16 vCPUs)", "episodes", "plan makespan (s)")
	for _, n := range []int{5, 10, 25, 50, 100, 200} {
		mk, err := ablationLearn(o, func(*core.Params) {}, n)
		if err != nil {
			return nil, err
		}
		t.AddRowF(n, mk)
	}
	return t, nil
}

// AblationRule compares the paper's Q-learning bootstrap against
// SARSA.
func AblationRule(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: TD rule (16 vCPUs)", "rule", "plan makespan (s)")
	for _, c := range []struct {
		name string
		rule core.UpdateRule
	}{{"Q-learning", core.QLearning}, {"SARSA", core.SARSA}, {"Double Q", core.DoubleQ}} {
		mk, err := ablationLearn(o, func(p *core.Params) { p.Rule = c.rule }, 0)
		if err != nil {
			return nil, err
		}
		t.AddRowF(c.name, mk)
	}
	return t, nil
}

// AblationDiscount compares Algorithm 2's literal γ^t discount with a
// conventional constant γ.
func AblationDiscount(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: discounting (16 vCPUs)", "discount", "plan makespan (s)")
	for _, c := range []struct {
		name   string
		mutate func(*core.Params)
	}{
		{"γ^t (paper)", func(p *core.Params) { p.GammaPowerT = true }},
		{"constant γ=1.0", func(p *core.Params) { p.GammaPowerT = false; p.Gamma = 1.0 }},
		{"constant γ=0.9", func(p *core.Params) { p.GammaPowerT = false; p.Gamma = 0.9 }},
	} {
		mk, err := ablationLearn(o, c.mutate, 0)
		if err != nil {
			return nil, err
		}
		t.AddRowF(c.name, mk)
	}
	return t, nil
}

// AblationSchedules compares the paper's constant α/ε against decayed
// schedules (explore early, exploit late; anneal the learning rate).
func AblationSchedules(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: parameter schedules (16 vCPUs)",
		"schedule", "plan makespan (s)")
	cases := []struct {
		name     string
		alphaSch rl.Schedule
		epsSch   rl.Schedule
	}{
		{"constant α=0.5, ε=0.1 (paper)", nil, nil},
		{"α exp-decay 1.0→0.1", rl.ExpDecay{Start: 1.0, Rate: 0.97, Floor: 0.1}, nil},
		{"ε linear 0.0→0.9 (explore→exploit)", nil, rl.LinearDecay{Start: 0.0, End: 0.9, Over: o.Episodes}},
		{"both decayed", rl.ExpDecay{Start: 1.0, Rate: 0.97, Floor: 0.1},
			rl.LinearDecay{Start: 0.0, End: 0.9, Over: o.Episodes}},
	}
	for _, c := range cases {
		l, err := core.NewLearner(core.Config{
			Workflow: o.Workflow, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: o.Episodes,
			Sim: sim.Config{Fluct: o.TrainFluct, Hook: o.Hook},
		}, core.WithSeed(o.Seed), core.WithSink(o.Sink),
			core.WithAlphaSchedule(c.alphaSch), core.WithEpsilonSchedule(c.epsSch))
		if err != nil {
			return nil, err
		}
		res, err := l.Learn()
		if err != nil {
			return nil, err
		}
		mk, err := EvalPlan(o, fleet, res.Plan)
		if err != nil {
			return nil, err
		}
		t.AddRowF(c.name, mk)
	}
	return t, nil
}

// AblationCostWeight sweeps the cost-aware reward extension (the
// paper's future-work direction): each weight's learned plan is
// scored on both mean makespan and mean work-based cost, tracing the
// cost/performance frontier.
func AblationCostWeight(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: cost-aware reward (16 vCPUs)",
		"cost weight", "plan makespan (s)", "busy cost (USD)")
	for _, cw := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		p := core.DefaultParams()
		p.CostWeight = cw
		l, err := core.NewLearner(core.Config{
			Workflow: o.Workflow, Fleet: fleet, Params: p,
			Episodes: o.Episodes,
			Sim:      sim.Config{Fluct: o.TrainFluct, Hook: o.Hook},
		}, core.WithSeed(o.Seed), core.WithSink(o.Sink))
		if err != nil {
			return nil, err
		}
		res, err := l.Learn()
		if err != nil {
			return nil, err
		}
		assign := res.Plan.Map()
		var mk, cost float64
		for rep := 0; rep < PlanEvalReps; rep++ {
			r, err := sim.Run(o.Workflow, fleet, &sched.Plan{PlanName: "p", Assign: assign},
				sim.Config{Fluct: o.TrainFluct, Seed: o.Seed + 5000 + int64(rep), Hook: o.Hook})
			if err != nil {
				return nil, err
			}
			mk += r.Makespan
			cost += r.BusyCost
		}
		t.AddRowF(fmt.Sprintf("%.2f", cw), mk/PlanEvalReps, fmt.Sprintf("%.5f", cost/PlanEvalReps))
	}
	return t, nil
}

// AblationBootstrap compares the two readings of Algorithm 2's
// max_a' Q(s', a'): over the whole remaining table (paper shape,
// default) vs only the actions available in the successor state.
func AblationBootstrap(o Options) (*metrics.Table, error) {
	t := metrics.NewTable("Ablation: TD bootstrap scope (16 vCPUs)", "scope", "plan makespan (s)")
	for _, c := range []struct {
		name  string
		scope core.BootstrapScope
	}{
		{"all pending × all VMs (paper shape)", core.AllPending},
		{"available actions only", core.AvailableOnly},
	} {
		mk, err := ablationLearn(o, func(p *core.Params) { p.Scope = c.scope }, 0)
		if err != nil {
			return nil, err
		}
		t.AddRowF(c.name, mk)
	}
	return t, nil
}

// AblationClustering compares scheduling the raw workflow against the
// horizontally clustered workflow (WorkflowSim's clustering engine),
// both executed with HEFT for a scheduler-independent view.
func AblationClustering(o Options) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Ablation: clustering engine (HEFT, 16 vCPUs)",
		"clustering", "tasks", "makespan (s)")

	run := func(name string, cl *sim.Clustering) error {
		w := o.Workflow
		if cl != nil {
			cw, err := cl.Apply(w)
			if err != nil {
				return err
			}
			w = cw.Workflow
		}
		res, err := sim.Run(w, fleet, &sched.HEFT{}, sim.Config{Fluct: o.TrainFluct, Seed: o.Seed, Hook: o.Hook})
		if err != nil {
			return err
		}
		t.AddRowF(name, w.Len(), res.Makespan)
		return nil
	}
	if err := run("off", nil); err != nil {
		return nil, err
	}
	if err := run("horizontal k=2", &sim.Clustering{Horizontal: true, GroupSize: 2}); err != nil {
		return nil, err
	}
	if err := run("horizontal k=4", &sim.Clustering{Horizontal: true, GroupSize: 4}); err != nil {
		return nil, err
	}
	return t, nil
}

// BaselineComparison runs every implemented scheduler on the same
// fluctuating environment — the wider comparison the paper's related
// work motivates (Min-Min, Max-Min, MCT, etc.).
func BaselineComparison(o Options, vcpus int) (*metrics.Table, error) {
	o = o.withDefaults()
	fleet, err := cloud.FleetTable1(vcpus)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable(fmt.Sprintf("Baseline comparison (%d vCPUs, mean of %d runs)", vcpus, PlanEvalReps),
		"scheduler", "makespan (s)", "cost (USD)")
	mean := func(s sim.Scheduler) (mk, cost float64, err error) {
		for rep := 0; rep < PlanEvalReps; rep++ {
			res, err := sim.Run(o.Workflow, fleet, s,
				sim.Config{Fluct: o.TrainFluct, Seed: o.Seed + 5000 + int64(rep), DataTransfer: true, Hook: o.Hook})
			if err != nil {
				return 0, 0, err
			}
			mk += res.Makespan
			cost += res.Cost
		}
		return mk / PlanEvalReps, cost / PlanEvalReps, nil
	}
	scheds := []sim.Scheduler{
		sched.FCFS{}, &sched.RoundRobin{}, &sched.Random{Seed: o.Seed},
		sched.MCT{}, sched.MinMin{}, sched.MaxMin{}, sched.DataAware{},
		sched.CheapFirst{}, &sched.GA{Seed: o.Seed}, &sched.Adaptive{}, &sched.HEFT{},
	}
	for _, s := range scheds {
		mk, cost, err := mean(s)
		if err != nil {
			return nil, err
		}
		t.AddRowF(s.Name(), mk, fmt.Sprintf("%.4f", cost))
	}
	// ReASSIgN learned plan under the same environment.
	lr, err := learn(o, fleet, 0.5, 1.0, 0.1)
	if err != nil {
		return nil, err
	}
	mk, cost, err := mean(&sched.Plan{PlanName: "ReASSIgN", Assign: lr.Plan.Map()})
	if err != nil {
		return nil, err
	}
	t.AddRowF("ReASSIgN", mk, fmt.Sprintf("%.4f", cost))
	return t, nil
}
