package rl

import (
	"math"
	"math/rand"
	"testing"
)

func TestCopyIsIndependent(t *testing.T) {
	for _, dense := range []bool{true, false} {
		name := "sparse"
		mk := func() *Table { return NewTable(rand.New(rand.NewSource(1)), 1.0) }
		if dense {
			name = "dense"
			mk = func() *Table { return NewDenseTable(10, 4, rand.New(rand.NewSource(1)), 1.0) }
		}
		t.Run(name, func(t *testing.T) {
			orig := mk()
			orig.Set(Key{Task: 1, VM: 2}, 3.5)
			orig.Set(Key{Task: 20, VM: 9}, -1.0) // overflow in dense mode
			cp := orig.Copy(rand.New(rand.NewSource(2)))
			if cp.Len() != orig.Len() {
				t.Fatalf("copy has %d entries, original %d", cp.Len(), orig.Len())
			}
			if got := cp.Value(Key{Task: 1, VM: 2}); got != 3.5 {
				t.Fatalf("copied value = %v, want 3.5", got)
			}
			// Writes to the copy must not touch the original and vice
			// versa — including lazily materialised entries.
			cp.Set(Key{Task: 1, VM: 2}, 99)
			if got := orig.Value(Key{Task: 1, VM: 2}); got != 3.5 {
				t.Fatalf("original mutated through copy: %v", got)
			}
			orig.Set(Key{Task: 2, VM: 0}, 7)
			if _, ok := cp.Peek(Key{Task: 2, VM: 0}); ok {
				t.Fatal("copy sees entry materialised on the original")
			}
			if dense {
				nt, nv := cp.Dims()
				if nt != 10 || nv != 4 {
					t.Fatalf("copy dims = %dx%d, want 10x4", nt, nv)
				}
				if !cp.Dense() {
					t.Fatal("copy of a dense table should be dense")
				}
			}
		})
	}
}

func TestAverageArithmetic(t *testing.T) {
	a := NewDenseTable(4, 3, rand.New(rand.NewSource(1)), 0)
	b := NewDenseTable(4, 3, rand.New(rand.NewSource(2)), 0)
	k1 := Key{Task: 0, VM: 0}
	k2 := Key{Task: 1, VM: 2}
	k3 := Key{Task: 3, VM: 1}
	a.Set(k1, 2)
	b.Set(k1, 4)
	a.Set(k2, 10) // only a materialised k2
	b.Set(k3, -6) // only b materialised k3

	avg := Average(rand.New(rand.NewSource(3)), a, b)
	if !avg.Dense() {
		t.Fatal("average of equal-dims dense tables should be dense")
	}
	if got, _ := avg.Peek(k1); got != 3 {
		t.Fatalf("avg[k1] = %v, want 3 (mean of 2 and 4)", got)
	}
	// Entries materialised by only one table average over that table
	// alone, not dragged toward zero by the other.
	if got, _ := avg.Peek(k2); got != 10 {
		t.Fatalf("avg[k2] = %v, want 10", got)
	}
	if got, _ := avg.Peek(k3); got != -6 {
		t.Fatalf("avg[k3] = %v, want -6", got)
	}
	if avg.Len() != 3 {
		t.Fatalf("avg has %d entries, want 3", avg.Len())
	}
}

func TestAverageMixedBackingsFallsBackToSparse(t *testing.T) {
	a := NewDenseTable(4, 3, rand.New(rand.NewSource(1)), 0)
	b := NewTable(rand.New(rand.NewSource(2)), 0)
	k := Key{Task: 2, VM: 1}
	a.Set(k, 1)
	b.Set(k, 5)
	avg := Average(nil, a, b)
	if avg.Dense() {
		t.Fatal("average over mixed backings should be sparse")
	}
	if got, _ := avg.Peek(k); math.Abs(got-3) > 1e-15 {
		t.Fatalf("avg = %v, want 3", got)
	}
}

func TestAveragePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Average() of no tables should panic")
		}
	}()
	Average(nil)
}
