package rl

import (
	"math/rand"
	"testing"
)

// TestBandedEquivalenceZeroInit drives identical operation sequences
// against the sparse, dense and banded backings with deterministic
// (zero) initialisation, across band sizes from one row per band to
// larger-than-the-table.
func TestBandedEquivalenceZeroInit(t *testing.T) {
	const numTasks, numVMs = 12, 5
	for _, shift := range []uint{0, 1, 2, 5} {
		for seed := int64(0); seed < 5; seed++ {
			m := NewTable(rand.New(rand.NewSource(99)), 0)
			bd := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(99)), 0)
			driveTables(t, m, bd, numTasks, numVMs, seed)

			d := NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(99)), 0)
			bd2 := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(99)), 0)
			driveTables(t, d, bd2, numTasks, numVMs, seed)
		}
	}
}

// TestBandedEquivalenceRandomInit is the contract the Learner relies
// on: with the same init seed and the same access sequence, lazily
// materialised random entries are bit-identical across all three
// backings.
func TestBandedEquivalenceRandomInit(t *testing.T) {
	const numTasks, numVMs = 9, 4
	for _, shift := range []uint{0, 1, 2, 4} {
		for seed := int64(0); seed < 5; seed++ {
			m := NewTable(rand.New(rand.NewSource(7*seed+1)), 1.0)
			bd := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(7*seed+1)), 1.0)
			driveTables(t, m, bd, numTasks, numVMs, seed)

			d := NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(7*seed+1)), 1.0)
			bd2 := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(7*seed+1)), 1.0)
			driveTables(t, d, bd2, numTasks, numVMs, seed)
		}
	}
}

// TestBandedPropertyRandomShapes drives the equivalence property
// across randomly drawn table shapes and band sizes, including
// single-row, single-column and non-power-of-two rectangles.
func TestBandedPropertyRandomShapes(t *testing.T) {
	shapes := rand.New(rand.NewSource(2024))
	for iter := 0; iter < 25; iter++ {
		numTasks := 1 + shapes.Intn(300)
		numVMs := 1 + shapes.Intn(60)
		shift := uint(shapes.Intn(7))
		initSpan := float64(shapes.Intn(2)) // zero- and random-init
		seed := shapes.Int63()

		m := NewTable(rand.New(rand.NewSource(seed)), initSpan)
		bd := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(seed)), initSpan)
		driveTables(t, m, bd, numTasks, numVMs, int64(iter))

		d := NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(seed)), initSpan)
		bd2 := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(seed)), initSpan)
		driveTables(t, d, bd2, numTasks, numVMs, int64(iter))
	}
}

// TestBandedTieBreakingLargeVMSet pins Best/ArgmaxRect tie-breaking
// on a large VM axis: with all-equal values the lowest VM ID must win
// on every backing, and duplicated maxima must resolve to the first
// (task-major, ascending-VM) occurrence.
func TestBandedTieBreakingLargeVMSet(t *testing.T) {
	const numTasks, numVMs = 64, 2048
	vms := make([]int, numVMs)
	for i := range vms {
		vms[i] = i
	}
	tasks := make([]int, numTasks)
	for i := range tasks {
		tasks[i] = i
	}
	backings := map[string]*Table{
		"map":    NewTable(rand.New(rand.NewSource(3)), 0),
		"dense":  NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(3)), 0),
		"banded": NewBandedTable(numTasks, numVMs, rand.New(rand.NewSource(3)), 0),
	}
	if !backings["banded"].Banded() {
		t.Fatalf("NewBandedTable(%d, %d) built %d band(s), want > 1",
			numTasks, numVMs, len(backings["banded"].bands))
	}
	for name, tab := range backings {
		// Zero-init: every value ties at 0, so the lowest VM ID wins.
		if vm, v := tab.Best(2, vms); vm != 0 || v != 0 {
			t.Fatalf("%s: all-ties Best = (%d, %v), want (0, 0)", name, vm, v)
		}
		// Equal maxima planted at scattered cells: the task-major scan
		// must return the first occurrence — and keep doing so after
		// the row-max cache kicks in on repeated full-span queries.
		tab.Set(Key{Task: 5, VM: 1900}, 7)
		tab.Set(Key{Task: 5, VM: 300}, 7)
		tab.Set(Key{Task: 6, VM: 2}, 7)
		for pass := 0; pass < 3; pass++ {
			k, v := tab.ArgmaxRect(tasks, vms)
			if k != (Key{Task: 5, VM: 300}) || v != 7 {
				t.Fatalf("%s pass %d: ArgmaxRect = (%+v, %v), want ({5 300}, 7)", name, pass, k, v)
			}
			if vm, v := tab.Best(5, vms); vm != 300 || v != 7 {
				t.Fatalf("%s pass %d: Best(5) = (%d, %v), want (300, 7)", name, pass, vm, v)
			}
		}
		// Lower the cached argmax cell below the runner-up: the next
		// full-span query must fall back to the true maximum.
		tab.Set(Key{Task: 5, VM: 300}, -1)
		if k, v := tab.ArgmaxRect(tasks, vms); k != (Key{Task: 5, VM: 1900}) || v != 7 {
			t.Fatalf("%s: post-invalidation ArgmaxRect = (%+v, %v), want ({5 1900}, 7)", name, k, v)
		}
		// Raise a smaller column to the same maximum: first-wins order
		// must move the argmax down.
		tab.Set(Key{Task: 5, VM: 10}, 7)
		if k, _ := tab.ArgmaxRect(tasks, vms); k != (Key{Task: 5, VM: 10}) {
			t.Fatalf("%s: equal-at-lower-column ArgmaxRect = %+v, want {5 10}", name, k)
		}
	}
}

// TestBandedLazyAllocation checks the banded backing's reason to
// exist: a 10k × 1000 table that only touches a few rows allocates
// only those rows' bands.
func TestBandedLazyAllocation(t *testing.T) {
	tab := NewBandedTable(10000, 1000, rand.New(rand.NewSource(1)), 1.0)
	if !tab.Banded() {
		t.Fatal("10000x1000 table is not banded")
	}
	touched := func() int {
		n := 0
		for i := range tab.bands {
			if tab.bands[i].vals != nil {
				n++
			}
		}
		return n
	}
	if got := touched(); got != 0 {
		t.Fatalf("fresh banded table has %d allocated bands, want 0", got)
	}
	tab.Value(Key{Task: 0, VM: 0})
	tab.Value(Key{Task: 9999, VM: 999})
	if got := touched(); got != 2 {
		t.Fatalf("after touching first and last row: %d allocated bands, want 2", got)
	}
	if tab.Len() != 2 {
		t.Fatalf("Len = %d, want 2", tab.Len())
	}
	// Per-band memory stays near the cache-resident target.
	if rowBytes := tab.bandRows * tab.numVMs * 8; rowBytes > bandTargetBytes {
		t.Fatalf("band holds %d bytes of values, over the %d target", rowBytes, bandTargetBytes)
	}
}

// TestBandedCopyAverage checks the ensemble operations preserve the
// banded backing and its contents.
func TestBandedCopyAverage(t *testing.T) {
	a := NewBandedTable(2000, 40, rand.New(rand.NewSource(4)), 1.0)
	if !a.Banded() {
		t.Fatal("2000x40 table is not banded")
	}
	for i := 0; i < 60; i++ {
		a.TDUpdate(Key{Task: i * 33, VM: i % 40}, 0.5, float64(i), 0.9, 1)
	}
	cp := a.Copy(rand.New(rand.NewSource(5)))
	if !cp.Banded() {
		t.Fatal("copy of banded table is not banded")
	}
	wa, wc := a.Snapshot(), cp.Snapshot()
	if len(wa) != len(wc) {
		t.Fatalf("copy Snapshot: %d entries vs %d", len(wc), len(wa))
	}
	for i := range wa {
		if wa[i] != wc[i] {
			t.Fatalf("copy entry %d: %+v vs %+v", i, wc[i], wa[i])
		}
	}
	cp.Set(Key{Task: 99, VM: 39}, 5)
	if _, ok := a.Peek(Key{Task: 99, VM: 39}); ok {
		t.Fatal("write to copy leaked into the original")
	}

	b := a.Copy(rand.New(rand.NewSource(6)))
	b.Set(Key{Task: 0, VM: 0}, 100)
	avg := Average(rand.New(rand.NewSource(7)), a, b)
	if !avg.Dense() || !avg.Banded() {
		t.Fatalf("Average of banded tables: Dense=%v Banded=%v, want rectangle-backed and banded",
			avg.Dense(), avg.Banded())
	}
	va, vb := a.Value(Key{Task: 0, VM: 0}), 100.0
	if got, want := avg.Value(Key{Task: 0, VM: 0}), (va+vb)/2; got != want {
		t.Fatalf("Average value = %v, want %v", got, want)
	}
}
