package rl

import (
	"math"
	"math/rand"
)

// Policy selects a VM for a task given the current Q table.
type Policy interface {
	// Select returns one of vms for the task. vms must be non-empty.
	Select(t *Table, task int, vms []int, rng *rand.Rand) int
}

// ExplainingPolicy is implemented by policies that can report whether
// a selection exploited the Q table. SelectExplained must consume the
// rng stream exactly as Select does, so instrumented and plain runs
// stay bit-identical.
type ExplainingPolicy interface {
	Policy
	// SelectExplained returns the chosen VM and whether the choice was
	// greedy (table exploitation) rather than exploration.
	SelectExplained(t *Table, task int, vms []int, rng *rand.Rand) (vm int, greedy bool)
}

// EpsilonGreedy implements the paper's exploration convention
// (§II.a): *with probability ε the best action is taken*; otherwise a
// VM is chosen uniformly at random. Note this inverts the textbook
// ε-greedy convention — the paper's Table III results (ε=0.1 best)
// only make sense under the paper's wording, so we follow it.
// Set Textbook to true for the conventional reading (explore with
// probability ε) in ablations.
type EpsilonGreedy struct {
	Epsilon  float64
	Textbook bool
}

// Select implements Policy.
func (p EpsilonGreedy) Select(t *Table, task int, vms []int, rng *rand.Rand) int {
	vm, _ := p.SelectExplained(t, task, vms, rng)
	return vm
}

// SelectExplained implements ExplainingPolicy.
func (p EpsilonGreedy) SelectExplained(t *Table, task int, vms []int, rng *rand.Rand) (int, bool) {
	if len(vms) == 0 {
		panic("rl: Select with no candidate VMs")
	}
	exploit := rng.Float64() < p.Epsilon
	if p.Textbook {
		exploit = !exploit
	}
	if exploit {
		vm, _ := t.Best(task, vms)
		return vm, true
	}
	return vms[rng.Intn(len(vms))], false
}

// Boltzmann selects VMs with probability proportional to
// exp(Q/Temperature) — a softer exploration strategy used in
// ablations. Temperature must be positive.
type Boltzmann struct {
	Temperature float64
}

// Select implements Policy.
func (p Boltzmann) Select(t *Table, task int, vms []int, rng *rand.Rand) int {
	if len(vms) == 0 {
		panic("rl: Select with no candidate VMs")
	}
	temp := p.Temperature
	if temp <= 0 {
		temp = 1e-6
	}
	// Shift by the max for numerical stability.
	maxQ := math.Inf(-1)
	qs := make([]float64, len(vms))
	for i, id := range vms {
		qs[i] = t.Value(Key{Task: task, VM: id})
		if qs[i] > maxQ {
			maxQ = qs[i]
		}
	}
	var sum float64
	ws := make([]float64, len(vms))
	for i, q := range qs {
		ws[i] = math.Exp((q - maxQ) / temp)
		sum += ws[i]
	}
	x := rng.Float64() * sum
	for i, w := range ws {
		x -= w
		if x <= 0 {
			return vms[i]
		}
	}
	return vms[len(vms)-1]
}

// Greedy always exploits: the policy used when extracting the final
// scheduling plan from a learned table.
type Greedy struct{}

// Select implements Policy.
func (Greedy) Select(t *Table, task int, vms []int, rng *rand.Rand) int {
	vm, _ := t.Best(task, vms)
	return vm
}

// SelectExplained implements ExplainingPolicy: greedy selections
// always exploit.
func (g Greedy) SelectExplained(t *Table, task int, vms []int, rng *rand.Rand) (int, bool) {
	return g.Select(t, task, vms, rng), true
}

// Schedule yields a parameter value per episode, for decaying α or ε.
type Schedule interface {
	At(episode int) float64
}

// Const is a constant schedule.
type Const float64

// At implements Schedule.
func (c Const) At(int) float64 { return float64(c) }

// LinearDecay interpolates from Start at episode 0 to End at episode
// Over-1, then stays at End.
type LinearDecay struct {
	Start, End float64
	Over       int
}

// At implements Schedule.
func (d LinearDecay) At(episode int) float64 {
	if d.Over <= 1 || episode >= d.Over-1 {
		return d.End
	}
	if episode < 0 {
		episode = 0
	}
	f := float64(episode) / float64(d.Over-1)
	return d.Start + (d.End-d.Start)*f
}

// ExpDecay multiplies Start by Rate each episode, never dropping
// below Floor.
type ExpDecay struct {
	Start, Rate, Floor float64
}

// At implements Schedule.
func (d ExpDecay) At(episode int) float64 {
	if episode < 0 {
		episode = 0
	}
	v := d.Start * math.Pow(d.Rate, float64(episode))
	if v < d.Floor {
		return d.Floor
	}
	return v
}
