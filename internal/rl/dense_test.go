package rl

import (
	"bytes"
	"math/rand"
	"testing"
)

// driveTables applies the same mixed access sequence (TDUpdate, Best,
// MaxOver, MaxRect, Set, Value) to both tables, failing on the first
// divergent return value.
func driveTables(t *testing.T, a, b *Table, numTasks, numVMs int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vms := make([]int, numVMs)
	for i := range vms {
		vms[i] = i
	}
	tasks := make([]int, numTasks)
	for i := range tasks {
		tasks[i] = i
	}
	keys := make([]Key, 0, 8)
	for step := 0; step < 500; step++ {
		k := Key{Task: rng.Intn(numTasks), VM: rng.Intn(numVMs)}
		switch rng.Intn(5) {
		case 0:
			r, g, n := rng.Float64(), rng.Float64(), rng.Float64()
			if va, vb := a.TDUpdate(k, 0.3, r, g, n), b.TDUpdate(k, 0.3, r, g, n); va != vb {
				t.Fatalf("step %d: TDUpdate(%v) = %v (map) vs %v (dense)", step, k, va, vb)
			}
		case 1:
			vma, qa := a.Best(k.Task, vms)
			vmb, qb := b.Best(k.Task, vms)
			if vma != vmb || qa != qb {
				t.Fatalf("step %d: Best(%d) = (%d, %v) vs (%d, %v)", step, k.Task, vma, qa, vmb, qb)
			}
		case 2:
			keys = keys[:0]
			for i := 0; i < 4; i++ {
				keys = append(keys, Key{Task: rng.Intn(numTasks), VM: rng.Intn(numVMs)})
			}
			if va, vb := a.MaxOver(keys), b.MaxOver(keys); va != vb {
				t.Fatalf("step %d: MaxOver = %v vs %v", step, va, vb)
			}
		case 3:
			lo := rng.Intn(numTasks)
			if va, vb := a.MaxRect(tasks[lo:], vms), b.MaxRect(tasks[lo:], vms); va != vb {
				t.Fatalf("step %d: MaxRect = %v vs %v", step, va, vb)
			}
		case 4:
			v := rng.NormFloat64()
			a.Set(k, v)
			b.Set(k, v)
		}
		if va, vb := a.Value(k), b.Value(k); va != vb {
			t.Fatalf("step %d: Value(%v) = %v vs %v", step, k, va, vb)
		}
	}
	if a.Len() != b.Len() {
		t.Fatalf("Len: %d (map) vs %d (dense)", a.Len(), b.Len())
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	if len(sa) != len(sb) {
		t.Fatalf("Snapshot lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("Snapshot[%d]: %+v vs %+v", i, sa[i], sb[i])
		}
	}
}

// TestMapDenseEquivalenceZeroInit drives identical operation
// sequences against both backings with deterministic (zero)
// initialisation: every returned value and the final snapshots must
// match exactly.
func TestMapDenseEquivalenceZeroInit(t *testing.T) {
	const numTasks, numVMs = 12, 5
	for seed := int64(0); seed < 10; seed++ {
		m := NewTable(rand.New(rand.NewSource(99)), 0)
		d := NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(99)), 0)
		driveTables(t, m, d, numTasks, numVMs, seed)
	}
}

// TestMapDenseEquivalenceRandomInit is the stronger contract the
// Learner relies on: with the same init seed and the same access
// sequence, lazily materialised random entries are bit-identical
// across backings.
func TestMapDenseEquivalenceRandomInit(t *testing.T) {
	const numTasks, numVMs = 9, 4
	for seed := int64(0); seed < 10; seed++ {
		m := NewTable(rand.New(rand.NewSource(7*seed+1)), 1.0)
		d := NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(7*seed+1)), 1.0)
		driveTables(t, m, d, numTasks, numVMs, seed)
	}
}

// TestDenseOverflowKeys checks keys outside the dense rectangle (the
// autoscaling case) spill into the overflow map and behave like
// sparse entries.
func TestDenseOverflowKeys(t *testing.T) {
	d := NewDenseTable(3, 2, rand.New(rand.NewSource(1)), 0)
	out := Key{Task: 10, VM: 7} // outside 3×2
	if v := d.Value(out); v != 0 {
		t.Fatalf("overflow Value = %v, want 0", v)
	}
	d.Set(out, 4.5)
	if v, ok := d.Peek(out); !ok || v != 4.5 {
		t.Fatalf("overflow Peek = (%v, %v), want (4.5, true)", v, ok)
	}
	if got := d.TDUpdate(out, 0.5, 1, 0, 0); got != 4.5+0.5*(1-4.5) {
		t.Fatalf("overflow TDUpdate = %v", got)
	}
	neg := Key{Task: -1, VM: 0}
	d.Set(neg, -2)
	if v := d.Value(neg); v != -2 {
		t.Fatalf("negative-key Value = %v, want -2", v)
	}
	// Overflow entries appear in Len and Snapshot alongside dense ones.
	d.Set(Key{Task: 1, VM: 1}, 9)
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

// TestSaveLoadAcrossBackings persists a dense table (including an
// overflow entry) and loads it into both a sparse and another dense
// table: all three must agree entry-for-entry.
func TestSaveLoadAcrossBackings(t *testing.T) {
	src := NewDenseTable(4, 3, rand.New(rand.NewSource(5)), 1.0)
	for task := 0; task < 4; task++ {
		for vm := 0; vm < 3; vm++ {
			src.TDUpdate(Key{Task: task, VM: vm}, 0.4, float64(task*vm), 0.9, 0.5)
		}
	}
	src.Set(Key{Task: 9, VM: 9}, 1.25) // overflow

	var buf bytes.Buffer
	if err := src.Save(&buf); err != nil {
		t.Fatal(err)
	}
	saved := buf.Bytes()

	intoMap := NewTable(nil, 0)
	if err := intoMap.Load(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}
	intoDense := NewDenseTable(4, 3, nil, 0)
	if err := intoDense.Load(bytes.NewReader(saved)); err != nil {
		t.Fatal(err)
	}

	want := src.Snapshot()
	for name, got := range map[string][]Entry{"map": intoMap.Snapshot(), "dense": intoDense.Snapshot()} {
		if len(got) != len(want) {
			t.Fatalf("%s: %d entries, want %d", name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: entry %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}
}

// TestDenseTablePanicsOnBadDims pins the constructor contract.
func TestDenseTablePanicsOnBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewDenseTable(0, 3) did not panic")
		}
	}()
	NewDenseTable(0, 3, nil, 0)
}

// qtableBench drives a TD-style workload — the per-completion access
// pattern of core.Scheduler — against the given table.
func qtableBench(b *testing.B, mk func() *Table, numTasks, numVMs int) {
	vms := make([]int, numVMs)
	for i := range vms {
		vms[i] = i
	}
	tasks := make([]int, numTasks)
	for i := range tasks {
		tasks[i] = i
	}
	tab := mk()
	rng := rand.New(rand.NewSource(42))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := Key{Task: rng.Intn(numTasks), VM: rng.Intn(numVMs)}
		next := tab.MaxRect(tasks, vms)
		tab.TDUpdate(k, 0.5, 1.0, 0.9, next)
		tab.Best(k.Task, vms)
	}
}

func BenchmarkQTableMap(b *testing.B) {
	qtableBench(b, func() *Table { return NewTable(rand.New(rand.NewSource(1)), 1.0) }, 50, 16)
}

func BenchmarkQTableDense(b *testing.B) {
	qtableBench(b, func() *Table { return NewDenseTable(50, 16, rand.New(rand.NewSource(1)), 1.0) }, 50, 16)
}
