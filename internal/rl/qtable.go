// Package rl provides the tabular reinforcement-learning machinery
// ReASSIgN builds on: a Q table over (activation, VM) schedule
// actions, exploration policies (the paper's ε convention and
// Boltzmann softmax for ablation), parameter schedules, and episode
// persistence so learning progresses across workflow executions.
//
// A Table has interchangeable backings. NewTable returns the sparse
// backing — a map keyed by (task, VM) — which handles unbounded key
// spaces. NewDenseTable and NewBandedTable return rectangle backings
// over tasks [0, numTasks) × VMs [0, numVMs): Q(task, vm) lives at a
// fixed offset in a contiguous row, which gives O(1) access without
// hashing and lets the row/rectangle maxima (Best, MaxRect,
// ArgmaxRect) run as tight loops over contiguous memory. The dense
// form allocates the whole rectangle up front; the banded form groups
// rows into cache-sized bands allocated lazily on first touch, so a
// 10k-activation × 1000-VM problem only pays for the rows it visits
// and row scans stay cache-resident. NewAutoTable picks between them
// by rectangle size.
//
// All backings materialise entries lazily on first access, drawing
// random initial values from the table's source in access order, so
// for the same seed and the same access sequence every backing holds
// bit-identical values; entries outside a rectangle (e.g. autoscaled
// VMs beyond the initial fleet) spill into a sparse overflow map.
// Save/Load use one JSON format, so persisted tables round-trip
// across backings.
package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
)

// Key identifies one schedule action: "run activation Task on VM".
// Task is the activation's dense index within its workflow; VM is the
// fleet VM ID.
type Key struct {
	Task int `json:"task"`
	VM   int `json:"vm"`
}

const (
	// bandTargetBytes sizes one band's value array for NewBandedTable:
	// small enough that a band stays cache-resident while Best/MaxRect
	// scan its rows, large enough to amortise per-band bookkeeping.
	bandTargetBytes = 256 << 10

	// autoCells is the rectangle size above which NewAutoTable picks
	// the banded backing over the eagerly allocated dense one.
	autoCells = 1 << 17
)

// band is one group of consecutive task rows. vals is nil until the
// band is first touched; seen is a bitset over vals tracking which
// cells have materialised.
type band struct {
	vals []float64
	seen []uint64
}

func (b *band) isSeen(off int) bool { return b.seen[off>>6]&(1<<(uint(off)&63)) != 0 }
func (b *band) mark(off int)        { b.seen[off>>6] |= 1 << (uint(off) & 63) }

// Table is the evaluation table Q: schedule-action → expected reward.
// Per the paper's Algorithm 2 it is initialised at random; entries
// materialise lazily on first access so the table never stores
// untouched pairs. See the package comment for the backings.
type Table struct {
	// Sparse backing (nil when rectangle-backed).
	values map[Key]float64

	// Rectangle backing (nil when sparse): row task lives in band
	// task>>bandShift at row offset task&(bandRows-1). Dense tables
	// hold one eagerly allocated band; banded tables allocate bands
	// on first touch.
	bands     []band
	bandShift uint
	bandRows  int
	seenN     int
	numTasks  int
	numVMs    int
	// overflow holds rectangle-mode entries outside the rectangle.
	overflow map[Key]float64

	// Row-max cache for the MaxRect bootstrap fast path. rowN counts
	// materialised cells per row; rowOK[t] means (rowMax[t], rowArg[t])
	// hold the row's maximum and its first-attaining column. A row is
	// only ever cached once fully materialised (rowN[t] == numVMs), so
	// lazy draws can never invalidate a valid cache entry; writes
	// either fold into the cached maximum or clear rowOK for a lazy
	// rescan.
	rowN   []int32
	rowMax []float64
	rowArg []int32
	rowOK  []bool

	rng *rand.Rand
	// initSpan scales random initialisation: new entries are uniform
	// in [0, initSpan). Zero yields zero-initialised entries.
	initSpan float64
}

// NewTable returns a sparse (map-backed) table whose unseen entries
// initialise uniformly in [0, initSpan) using the given source.
func NewTable(rng *rand.Rand, initSpan float64) *Table {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Table{values: make(map[Key]float64), rng: rng, initSpan: initSpan}
}

// newRect builds a rectangle-backed table with 1<<bandShift rows per
// band and no bands allocated yet.
func newRect(numTasks, numVMs int, bandShift uint, rng *rand.Rand, initSpan float64) *Table {
	if numTasks <= 0 || numVMs <= 0 {
		panic(fmt.Sprintf("rl: rectangle table (%d, %d): dimensions must be positive", numTasks, numVMs))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	bandRows := 1 << bandShift
	nBands := (numTasks + bandRows - 1) / bandRows
	return &Table{
		bands:     make([]band, nBands),
		bandShift: bandShift,
		bandRows:  bandRows,
		numTasks:  numTasks,
		numVMs:    numVMs,
		rowN:      make([]int32, numTasks),
		rowMax:    make([]float64, numTasks),
		rowArg:    make([]int32, numTasks),
		rowOK:     make([]bool, numTasks),
		rng:       rng,
		initSpan:  initSpan,
	}
}

// NewDenseTable returns a rectangle table covering tasks
// [0, numTasks) × VMs [0, numVMs) with the whole rectangle allocated
// up front as a single band. Keys outside the rectangle still work —
// they spill into a sparse overflow map — but lose the O(1) path.
// Both dimensions must be positive.
func NewDenseTable(numTasks, numVMs int, rng *rand.Rand, initSpan float64) *Table {
	shift := uint(0)
	for 1<<shift < numTasks {
		shift++
	}
	t := newRect(numTasks, numVMs, shift, rng, initSpan)
	t.allocBand(0)
	return t
}

// NewBandedTable returns a rectangle table whose rows are grouped
// into cache-sized bands allocated lazily on first touch: ideal for
// very large rectangles where learning visits rows incrementally.
// Both dimensions must be positive.
func NewBandedTable(numTasks, numVMs int, rng *rand.Rand, initSpan float64) *Table {
	if numVMs <= 0 {
		panic(fmt.Sprintf("rl: rectangle table (%d, %d): dimensions must be positive", numTasks, numVMs))
	}
	rowsPerBand := bandTargetBytes / (numVMs * 8)
	shift := uint(0)
	for 1<<(shift+1) <= rowsPerBand {
		shift++
	}
	return newRect(numTasks, numVMs, shift, rng, initSpan)
}

// NewAutoTable returns a rectangle table sized for the workload:
// dense (eager, single-band) below autoCells cells, banded (lazy,
// cache-sized bands) above. Both dimensions must be positive.
func NewAutoTable(numTasks, numVMs int, rng *rand.Rand, initSpan float64) *Table {
	if numTasks > 0 && numVMs > 0 && numTasks*numVMs >= autoCells {
		return NewBandedTable(numTasks, numVMs, rng, initSpan)
	}
	return NewDenseTable(numTasks, numVMs, rng, initSpan)
}

// Dense reports whether the table uses a rectangle backing (dense or
// banded) rather than the sparse map.
func (t *Table) Dense() bool { return t.bands != nil }

// Banded reports whether the rectangle backing spans multiple
// lazily allocated bands.
func (t *Table) Banded() bool { return len(t.bands) > 1 }

// Dims returns the rectangle (0, 0 for sparse tables).
func (t *Table) Dims() (numTasks, numVMs int) { return t.numTasks, t.numVMs }

// draw produces one random initial value.
func (t *Table) draw() float64 {
	if t.initSpan > 0 {
		return t.rng.Float64() * t.initSpan
	}
	return 0
}

// inRect reports whether k falls inside the rectangle backing.
func (t *Table) inRect(k Key) bool {
	return k.Task >= 0 && k.Task < t.numTasks && k.VM >= 0 && k.VM < t.numVMs
}

// allocBand allocates band bi's storage (sized to the rows it
// actually covers, which may be fewer than bandRows in the last
// band) and returns it.
func (t *Table) allocBand(bi int) *band {
	b := &t.bands[bi]
	rows := t.bandRows
	if start := bi << t.bandShift; start+rows > t.numTasks {
		rows = t.numTasks - start
	}
	b.vals = make([]float64, rows*t.numVMs)
	b.seen = make([]uint64, (len(b.vals)+63)/64)
	return b
}

// locate returns the band holding task (allocating it on first
// touch) and the intra-band offset of the row's first cell.
func (t *Table) locate(task int) (b *band, base int) {
	bi := task >> t.bandShift
	b = &t.bands[bi]
	if b.vals == nil {
		b = t.allocBand(bi)
	}
	return b, (task - bi<<t.bandShift) * t.numVMs
}

// updateRowCache folds an in-rectangle write Q(task, vm) = v into the
// row-max cache. Only rows with a valid cache entry need maintenance:
// a larger value (or an equal value at a lower column, matching the
// scan's first-wins tie order) moves the maximum; lowering the cached
// argmax cell invalidates the entry for a lazy rescan.
func (t *Table) updateRowCache(task, vm int, v float64) {
	if !t.rowOK[task] {
		return
	}
	switch {
	case v > t.rowMax[task] || (v == t.rowMax[task] && int32(vm) < t.rowArg[task]):
		t.rowMax[task], t.rowArg[task] = v, int32(vm)
	case int32(vm) == t.rowArg[task] && v < t.rowMax[task]:
		t.rowOK[task] = false
	}
}

// rescanRow recomputes the row-max cache entry for a fully
// materialised row.
func (t *Table) rescanRow(task int) {
	b, base := t.locate(task)
	best, arg := math.Inf(-1), 0
	for vm := 0; vm < t.numVMs; vm++ {
		if v := b.vals[base+vm]; v > best {
			best, arg = v, vm
		}
	}
	t.rowMax[task], t.rowArg[task], t.rowOK[task] = best, int32(arg), true
}

// Value returns Q(k), materialising a random initial value on first
// access.
func (t *Table) Value(k Key) float64 {
	if t.bands != nil {
		if t.inRect(k) {
			b, base := t.locate(k.Task)
			off := base + k.VM
			if !b.isSeen(off) {
				v := t.draw()
				b.vals[off] = v
				b.mark(off)
				t.seenN++
				t.rowN[k.Task]++
				return v
			}
			return b.vals[off]
		}
		if v, ok := t.overflow[k]; ok {
			return v
		}
		v := t.draw()
		if t.overflow == nil {
			t.overflow = make(map[Key]float64)
		}
		t.overflow[k] = v
		return v
	}
	if v, ok := t.values[k]; ok {
		return v
	}
	v := t.draw()
	t.values[k] = v
	return v
}

// Peek returns Q(k) without materialising it; ok is false for unseen
// entries.
func (t *Table) Peek(k Key) (v float64, ok bool) {
	if t.bands != nil {
		if t.inRect(k) {
			bi := k.Task >> t.bandShift
			b := &t.bands[bi]
			if b.vals == nil {
				return 0, false
			}
			off := (k.Task-bi<<t.bandShift)*t.numVMs + k.VM
			if !b.isSeen(off) {
				return 0, false
			}
			return b.vals[off], true
		}
		v, ok = t.overflow[k]
		return v, ok
	}
	v, ok = t.values[k]
	return v, ok
}

// Set overwrites Q(k).
func (t *Table) Set(k Key, v float64) {
	if t.bands != nil {
		if t.inRect(k) {
			b, base := t.locate(k.Task)
			off := base + k.VM
			if !b.isSeen(off) {
				b.mark(off)
				t.seenN++
				t.rowN[k.Task]++
			}
			b.vals[off] = v
			t.updateRowCache(k.Task, k.VM, v)
			return
		}
		if t.overflow == nil {
			t.overflow = make(map[Key]float64)
		}
		t.overflow[k] = v
		return
	}
	t.values[k] = v
}

// Add increments Q(k) by delta (materialising first).
func (t *Table) Add(k Key, delta float64) { t.Set(k, t.Value(k)+delta) }

// Len returns the number of materialised entries.
func (t *Table) Len() int {
	if t.bands != nil {
		return t.seenN + len(t.overflow)
	}
	return len(t.values)
}

// Best returns the VM with the highest Q value for the task among the
// candidates, ties broken by lowest VM ID for determinism. It panics
// on an empty candidate list. On a rectangle table this is the
// row-max primitive: one pass over the task's contiguous row.
func (t *Table) Best(task int, vms []int) (vm int, value float64) {
	if len(vms) == 0 {
		panic("rl: Best with no candidate VMs")
	}
	best, bestV := -1, math.Inf(-1)
	if t.bands != nil && task >= 0 && task < t.numTasks {
		b, base := t.locate(task)
		for _, id := range vms {
			var v float64
			if id >= 0 && id < t.numVMs {
				off := base + id
				if !b.isSeen(off) {
					v = t.draw()
					b.vals[off] = v
					b.mark(off)
					t.seenN++
					t.rowN[task]++
				} else {
					v = b.vals[off]
				}
			} else {
				v = t.Value(Key{Task: task, VM: id})
			}
			if v > bestV || (v == bestV && (best == -1 || id < best)) {
				best, bestV = id, v
			}
		}
		return best, bestV
	}
	for _, id := range vms {
		v := t.Value(Key{Task: task, VM: id})
		if v > bestV || (v == bestV && (best == -1 || id < best)) {
			best, bestV = id, v
		}
	}
	return best, bestV
}

// MaxOver returns the maximum Q value over the given keys, or 0 when
// keys is empty (the terminal-state convention).
func (t *Table) MaxOver(keys []Key) float64 {
	if len(keys) == 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, k := range keys {
		if v := t.Value(k); v > best {
			best = v
		}
	}
	return best
}

// MaxRect returns the maximum Q value over the tasks × vms cross
// product, materialising entries in task-major order (the same order
// a nested Value loop would), or 0 when either list is empty. On a
// rectangle table each task scans its contiguous row; when vms spans
// every fleet column the scan consults the row-max cache, making the
// Q-learning bootstrap O(1) per already-cached row.
func (t *Table) MaxRect(tasks, vms []int) float64 {
	if len(tasks) == 0 || len(vms) == 0 {
		return 0
	}
	_, v := t.argmaxRect(tasks, vms)
	return v
}

// ArgmaxRect returns the first key attaining the maximum Q value over
// the tasks × vms cross product, scanned in task-major order, along
// with that value. It panics when either list is empty.
func (t *Table) ArgmaxRect(tasks, vms []int) (Key, float64) {
	if len(tasks) == 0 || len(vms) == 0 {
		panic("rl: ArgmaxRect over an empty rectangle")
	}
	return t.argmaxRect(tasks, vms)
}

func (t *Table) argmaxRect(tasks, vms []int) (Key, float64) {
	bestKey := Key{Task: tasks[0], VM: vms[0]}
	bestV := math.Inf(-1)
	if t.bands != nil {
		allIn := true
		for _, vm := range vms {
			if vm < 0 || vm >= t.numVMs {
				allIn = false
				break
			}
		}
		if allIn {
			// fullCols: vms is exactly the identity [0, numVMs) — the
			// common bootstrap shape — which both permits the row-max
			// cache and guarantees the row scan below materialises in
			// ascending column order.
			fullCols := len(vms) == t.numVMs
			if fullCols {
				for i, vm := range vms {
					if vm != i {
						fullCols = false
						break
					}
				}
			}
			for _, task := range tasks {
				if task < 0 || task >= t.numTasks {
					for _, vm := range vms {
						if v := t.Value(Key{Task: task, VM: vm}); v > bestV {
							bestV, bestKey = v, Key{Task: task, VM: vm}
						}
					}
					continue
				}
				if fullCols && int(t.rowN[task]) == t.numVMs {
					if !t.rowOK[task] {
						t.rescanRow(task)
					}
					if v := t.rowMax[task]; v > bestV {
						bestV, bestKey = v, Key{Task: task, VM: int(t.rowArg[task])}
					}
					continue
				}
				b, base := t.locate(task)
				rowBest, rowArg := math.Inf(-1), -1
				for _, vm := range vms {
					off := base + vm
					v := b.vals[off]
					if !b.isSeen(off) {
						v = t.draw()
						b.vals[off] = v
						b.mark(off)
						t.seenN++
						t.rowN[task]++
					}
					if v > rowBest {
						rowBest, rowArg = v, vm
					}
				}
				if fullCols {
					t.rowMax[task], t.rowArg[task], t.rowOK[task] = rowBest, int32(rowArg), true
				}
				if rowBest > bestV {
					bestV, bestKey = rowBest, Key{Task: task, VM: rowArg}
				}
			}
			return bestKey, bestV
		}
	}
	for _, task := range tasks {
		for _, vm := range vms {
			if v := t.Value(Key{Task: task, VM: vm}); v > bestV {
				bestV, bestKey = v, Key{Task: task, VM: vm}
			}
		}
	}
	return bestKey, bestV
}

// Mean returns the mean of materialised values (0 when empty).
func (t *Table) Mean() float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	var s float64
	if t.bands != nil {
		for bi := range t.bands {
			b := &t.bands[bi]
			if b.vals == nil {
				continue
			}
			for off, v := range b.vals {
				if b.isSeen(off) {
					s += v
				}
			}
		}
		for _, v := range t.overflow {
			s += v
		}
	} else {
		for _, v := range t.values {
			s += v
		}
	}
	return s / float64(n)
}

// Snapshot returns a deterministic (sorted) copy of the materialised
// table contents.
func (t *Table) Snapshot() []Entry {
	out := make([]Entry, 0, t.Len())
	if t.bands != nil {
		for bi := range t.bands {
			b := &t.bands[bi]
			if b.vals == nil {
				continue
			}
			start := bi << t.bandShift
			for off, v := range b.vals {
				if b.isSeen(off) {
					out = append(out, Entry{Key: Key{Task: start + off/t.numVMs, VM: off % t.numVMs}, Value: v})
				}
			}
		}
		for k, v := range t.overflow {
			out = append(out, Entry{Key: k, Value: v})
		}
		if len(t.overflow) == 0 {
			return out // band-major rectangle iteration is already sorted
		}
	} else {
		for k, v := range t.values {
			out = append(out, Entry{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Task != out[j].Key.Task {
			return out[i].Key.Task < out[j].Key.Task
		}
		return out[i].Key.VM < out[j].Key.VM
	})
	return out
}

// Entry is one (key, value) pair of the table.
type Entry struct {
	Key   Key     `json:"key"`
	Value float64 `json:"value"`
}

// Save writes the table as JSON, preserving learned values across
// episodes and processes (the paper's cross-episode learning state).
// The format is backing-independent.
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Snapshot())
}

// Load replaces the table contents with a previously saved snapshot.
// The snapshot may come from any backing; entries outside a rectangle
// table's rectangle land in its overflow map.
func (t *Table) Load(r io.Reader) error {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("rl: load table: %w", err)
	}
	if t.bands != nil {
		for bi := range t.bands {
			b := &t.bands[bi]
			if b.vals != nil {
				clear(b.vals)
				clear(b.seen)
			}
		}
		clear(t.rowN)
		clear(t.rowOK)
		t.seenN = 0
		t.overflow = nil
	} else {
		t.values = make(map[Key]float64, len(entries))
	}
	for _, e := range entries {
		t.Set(e.Key, e.Value)
	}
	return nil
}

// SaveFile writes the table to a JSON file.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a table previously written by SaveFile.
func (t *Table) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}

// TDUpdate applies the temporal-difference update
// Q(k) ← Q(k) + α·(reward + γ·next − Q(k)) and returns the new value.
// It is the single update rule behind Algorithm 2 (next is
// max_a' Q(s', a') for Q-learning, a policy sample for SARSA), and
// the hot-path primitive: one lookup and one store on any backing.
func (t *Table) TDUpdate(k Key, alpha, reward, gamma, next float64) float64 {
	if t.bands != nil {
		if t.inRect(k) {
			b, base := t.locate(k.Task)
			off := base + k.VM
			var q float64
			if !b.isSeen(off) {
				q = t.draw()
				b.mark(off)
				t.seenN++
				t.rowN[k.Task]++
			} else {
				q = b.vals[off]
			}
			q += alpha * (reward + gamma*next - q)
			b.vals[off] = q
			t.updateRowCache(k.Task, k.VM, q)
			return q
		}
		q, ok := t.overflow[k]
		if !ok {
			q = t.draw()
		}
		q += alpha * (reward + gamma*next - q)
		if t.overflow == nil {
			t.overflow = make(map[Key]float64)
		}
		t.overflow[k] = q
		return q
	}
	q, ok := t.values[k]
	if !ok {
		q = t.draw()
	}
	q += alpha * (reward + gamma*next - q)
	t.values[k] = q
	return q
}
