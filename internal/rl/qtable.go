// Package rl provides the tabular reinforcement-learning machinery
// ReASSIgN builds on: a Q table over (activation, VM) schedule
// actions, exploration policies (the paper's ε convention and
// Boltzmann softmax for ablation), parameter schedules, and episode
// persistence so learning progresses across workflow executions.
package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
)

// Key identifies one schedule action: "run activation Task on VM".
// Task is the activation's dense index within its workflow; VM is the
// fleet VM ID.
type Key struct {
	Task int `json:"task"`
	VM   int `json:"vm"`
}

// Table is the evaluation table Q: schedule-action → expected reward.
// Per the paper's Algorithm 2 it is initialised at random; entries
// materialise lazily on first access so the table never stores
// untouched pairs.
type Table struct {
	values map[Key]float64
	rng    *rand.Rand
	// InitSpan scales random initialisation: new entries are uniform
	// in [0, InitSpan). Zero yields zero-initialised entries.
	initSpan float64
}

// NewTable returns a table whose unseen entries initialise uniformly
// in [0, initSpan) using the given source.
func NewTable(rng *rand.Rand, initSpan float64) *Table {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Table{values: make(map[Key]float64), rng: rng, initSpan: initSpan}
}

// Value returns Q(k), materialising a random initial value on first
// access.
func (t *Table) Value(k Key) float64 {
	if v, ok := t.values[k]; ok {
		return v
	}
	v := 0.0
	if t.initSpan > 0 {
		v = t.rng.Float64() * t.initSpan
	}
	t.values[k] = v
	return v
}

// Peek returns Q(k) without materialising it; ok is false for unseen
// entries.
func (t *Table) Peek(k Key) (v float64, ok bool) {
	v, ok = t.values[k]
	return v, ok
}

// Set overwrites Q(k).
func (t *Table) Set(k Key, v float64) { t.values[k] = v }

// Add increments Q(k) by delta (materialising first).
func (t *Table) Add(k Key, delta float64) { t.values[k] = t.Value(k) + delta }

// Len returns the number of materialised entries.
func (t *Table) Len() int { return len(t.values) }

// Best returns the VM with the highest Q value for the task among the
// candidates, ties broken by lowest VM ID for determinism. It panics
// on an empty candidate list.
func (t *Table) Best(task int, vms []int) (vm int, value float64) {
	if len(vms) == 0 {
		panic("rl: Best with no candidate VMs")
	}
	best, bestV := -1, math.Inf(-1)
	for _, id := range vms {
		v := t.Value(Key{Task: task, VM: id})
		if v > bestV || (v == bestV && (best == -1 || id < best)) {
			best, bestV = id, v
		}
	}
	return best, bestV
}

// MaxOver returns the maximum Q value over the given keys, or 0 when
// keys is empty (the terminal-state convention).
func (t *Table) MaxOver(keys []Key) float64 {
	if len(keys) == 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, k := range keys {
		if v := t.Value(k); v > best {
			best = v
		}
	}
	return best
}

// Mean returns the mean of materialised values (0 when empty).
func (t *Table) Mean() float64 {
	if len(t.values) == 0 {
		return 0
	}
	var s float64
	for _, v := range t.values {
		s += v
	}
	return s / float64(len(t.values))
}

// Snapshot returns a deterministic (sorted) copy of the table
// contents.
func (t *Table) Snapshot() []Entry {
	out := make([]Entry, 0, len(t.values))
	for k, v := range t.values {
		out = append(out, Entry{Key: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Task != out[j].Key.Task {
			return out[i].Key.Task < out[j].Key.Task
		}
		return out[i].Key.VM < out[j].Key.VM
	})
	return out
}

// Entry is one (key, value) pair of the table.
type Entry struct {
	Key   Key     `json:"key"`
	Value float64 `json:"value"`
}

// Save writes the table as JSON, preserving learned values across
// episodes and processes (the paper's cross-episode learning state).
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Snapshot())
}

// Load replaces the table contents with a previously saved snapshot.
func (t *Table) Load(r io.Reader) error {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("rl: load table: %w", err)
	}
	t.values = make(map[Key]float64, len(entries))
	for _, e := range entries {
		t.values[e.Key] = e.Value
	}
	return nil
}

// SaveFile writes the table to a JSON file.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a table previously written by SaveFile.
func (t *Table) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}

// TDUpdate applies the temporal-difference update
// Q(k) ← Q(k) + α·(reward + γ·next − Q(k)) and returns the new value.
// It is the single update rule behind Algorithm 2 (next is
// max_a' Q(s', a') for Q-learning, a policy sample for SARSA).
func (t *Table) TDUpdate(k Key, alpha, reward, gamma, next float64) float64 {
	delta := reward + gamma*next - t.Value(k)
	t.Add(k, alpha*delta)
	return t.values[k]
}
