// Package rl provides the tabular reinforcement-learning machinery
// ReASSIgN builds on: a Q table over (activation, VM) schedule
// actions, exploration policies (the paper's ε convention and
// Boltzmann softmax for ablation), parameter schedules, and episode
// persistence so learning progresses across workflow executions.
//
// A Table has two interchangeable backings. NewTable returns the
// sparse backing — a map keyed by (task, VM) — which handles
// unbounded key spaces. NewDenseTable returns the dense backing — a
// flat []float64 indexed by task*numVMs+vm — which gives O(1)
// access without hashing and lets the row/rectangle maxima
// (Best, MaxRect, ArgmaxRect) run as tight loops over contiguous
// memory. Both backings materialise entries lazily on first access,
// drawing random initial values from the table's source in access
// order, so for the same seed and the same access sequence the two
// backings hold bit-identical values; entries outside a dense table's
// rectangle (e.g. autoscaled VMs beyond the initial fleet) spill into
// a sparse overflow map. Save/Load use one JSON format, so persisted
// tables round-trip across backings.
package rl

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"sort"
)

// Key identifies one schedule action: "run activation Task on VM".
// Task is the activation's dense index within its workflow; VM is the
// fleet VM ID.
type Key struct {
	Task int `json:"task"`
	VM   int `json:"vm"`
}

// Table is the evaluation table Q: schedule-action → expected reward.
// Per the paper's Algorithm 2 it is initialised at random; entries
// materialise lazily on first access so the table never stores
// untouched pairs. See the package comment for the two backings.
type Table struct {
	// Sparse backing (nil when dense).
	values map[Key]float64

	// Dense backing (nil when sparse): Q(task, vm) lives at
	// dense[task*numVMs+vm]; seen tracks materialisation.
	dense    []float64
	seen     []bool
	seenN    int
	numTasks int
	numVMs   int
	// overflow holds dense-mode entries outside the rectangle.
	overflow map[Key]float64

	rng *rand.Rand
	// initSpan scales random initialisation: new entries are uniform
	// in [0, initSpan). Zero yields zero-initialised entries.
	initSpan float64
}

// NewTable returns a sparse (map-backed) table whose unseen entries
// initialise uniformly in [0, initSpan) using the given source.
func NewTable(rng *rand.Rand, initSpan float64) *Table {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Table{values: make(map[Key]float64), rng: rng, initSpan: initSpan}
}

// NewDenseTable returns a dense table covering tasks [0, numTasks)
// × VMs [0, numVMs). Keys outside that rectangle still work — they
// spill into a sparse overflow map — but lose the O(1) path. Both
// dimensions must be positive.
func NewDenseTable(numTasks, numVMs int, rng *rand.Rand, initSpan float64) *Table {
	if numTasks <= 0 || numVMs <= 0 {
		panic(fmt.Sprintf("rl: NewDenseTable(%d, %d): dimensions must be positive", numTasks, numVMs))
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Table{
		dense:    make([]float64, numTasks*numVMs),
		seen:     make([]bool, numTasks*numVMs),
		numTasks: numTasks,
		numVMs:   numVMs,
		rng:      rng,
		initSpan: initSpan,
	}
}

// Dense reports whether the table uses the dense backing.
func (t *Table) Dense() bool { return t.dense != nil }

// Dims returns the dense rectangle (0, 0 for sparse tables).
func (t *Table) Dims() (numTasks, numVMs int) { return t.numTasks, t.numVMs }

// draw produces one random initial value.
func (t *Table) draw() float64 {
	if t.initSpan > 0 {
		return t.rng.Float64() * t.initSpan
	}
	return 0
}

// index maps k into the dense backing; ok is false outside the
// rectangle (or for sparse tables, which have an empty rectangle).
func (t *Table) index(k Key) (int, bool) {
	if k.Task < 0 || k.Task >= t.numTasks || k.VM < 0 || k.VM >= t.numVMs {
		return 0, false
	}
	return k.Task*t.numVMs + k.VM, true
}

// at materialises and returns the dense cell i.
func (t *Table) at(i int) float64 {
	if !t.seen[i] {
		t.dense[i] = t.draw()
		t.seen[i] = true
		t.seenN++
	}
	return t.dense[i]
}

// Value returns Q(k), materialising a random initial value on first
// access.
func (t *Table) Value(k Key) float64 {
	if t.dense != nil {
		if i, ok := t.index(k); ok {
			return t.at(i)
		}
		if v, ok := t.overflow[k]; ok {
			return v
		}
		v := t.draw()
		if t.overflow == nil {
			t.overflow = make(map[Key]float64)
		}
		t.overflow[k] = v
		return v
	}
	if v, ok := t.values[k]; ok {
		return v
	}
	v := t.draw()
	t.values[k] = v
	return v
}

// Peek returns Q(k) without materialising it; ok is false for unseen
// entries.
func (t *Table) Peek(k Key) (v float64, ok bool) {
	if t.dense != nil {
		if i, inRect := t.index(k); inRect {
			if !t.seen[i] {
				return 0, false
			}
			return t.dense[i], true
		}
		v, ok = t.overflow[k]
		return v, ok
	}
	v, ok = t.values[k]
	return v, ok
}

// Set overwrites Q(k).
func (t *Table) Set(k Key, v float64) {
	if t.dense != nil {
		if i, ok := t.index(k); ok {
			if !t.seen[i] {
				t.seen[i] = true
				t.seenN++
			}
			t.dense[i] = v
			return
		}
		if t.overflow == nil {
			t.overflow = make(map[Key]float64)
		}
		t.overflow[k] = v
		return
	}
	t.values[k] = v
}

// Add increments Q(k) by delta (materialising first).
func (t *Table) Add(k Key, delta float64) { t.Set(k, t.Value(k)+delta) }

// Len returns the number of materialised entries.
func (t *Table) Len() int {
	if t.dense != nil {
		return t.seenN + len(t.overflow)
	}
	return len(t.values)
}

// Best returns the VM with the highest Q value for the task among the
// candidates, ties broken by lowest VM ID for determinism. It panics
// on an empty candidate list. On a dense table this is the row-max
// primitive: one pass over the task's contiguous row.
func (t *Table) Best(task int, vms []int) (vm int, value float64) {
	if len(vms) == 0 {
		panic("rl: Best with no candidate VMs")
	}
	best, bestV := -1, math.Inf(-1)
	if t.dense != nil && task >= 0 && task < t.numTasks {
		row := t.dense[task*t.numVMs : (task+1)*t.numVMs]
		rowSeen := t.seen[task*t.numVMs : (task+1)*t.numVMs]
		for _, id := range vms {
			var v float64
			if id >= 0 && id < t.numVMs {
				if !rowSeen[id] {
					row[id] = t.draw()
					rowSeen[id] = true
					t.seenN++
				}
				v = row[id]
			} else {
				v = t.Value(Key{Task: task, VM: id})
			}
			if v > bestV || (v == bestV && (best == -1 || id < best)) {
				best, bestV = id, v
			}
		}
		return best, bestV
	}
	for _, id := range vms {
		v := t.Value(Key{Task: task, VM: id})
		if v > bestV || (v == bestV && (best == -1 || id < best)) {
			best, bestV = id, v
		}
	}
	return best, bestV
}

// MaxOver returns the maximum Q value over the given keys, or 0 when
// keys is empty (the terminal-state convention).
func (t *Table) MaxOver(keys []Key) float64 {
	if len(keys) == 0 {
		return 0
	}
	best := math.Inf(-1)
	for _, k := range keys {
		if v := t.Value(k); v > best {
			best = v
		}
	}
	return best
}

// MaxRect returns the maximum Q value over the tasks × vms cross
// product, materialising entries in task-major order (the same order
// a nested Value loop would), or 0 when either list is empty. On a
// dense table each task scans its contiguous row.
func (t *Table) MaxRect(tasks, vms []int) float64 {
	if len(tasks) == 0 || len(vms) == 0 {
		return 0
	}
	_, v := t.argmaxRect(tasks, vms)
	return v
}

// ArgmaxRect returns the first key attaining the maximum Q value over
// the tasks × vms cross product, scanned in task-major order, along
// with that value. It panics when either list is empty.
func (t *Table) ArgmaxRect(tasks, vms []int) (Key, float64) {
	if len(tasks) == 0 || len(vms) == 0 {
		panic("rl: ArgmaxRect over an empty rectangle")
	}
	return t.argmaxRect(tasks, vms)
}

func (t *Table) argmaxRect(tasks, vms []int) (Key, float64) {
	bestKey := Key{Task: tasks[0], VM: vms[0]}
	bestV := math.Inf(-1)
	if t.dense != nil {
		allIn := true
		for _, vm := range vms {
			if vm < 0 || vm >= t.numVMs {
				allIn = false
				break
			}
		}
		if allIn {
			for _, task := range tasks {
				if task < 0 || task >= t.numTasks {
					for _, vm := range vms {
						if v := t.Value(Key{Task: task, VM: vm}); v > bestV {
							bestV, bestKey = v, Key{Task: task, VM: vm}
						}
					}
					continue
				}
				row := t.dense[task*t.numVMs : (task+1)*t.numVMs]
				rowSeen := t.seen[task*t.numVMs : (task+1)*t.numVMs]
				for _, vm := range vms {
					v := row[vm]
					if !rowSeen[vm] {
						v = t.draw()
						row[vm] = v
						rowSeen[vm] = true
						t.seenN++
					}
					if v > bestV {
						bestV, bestKey = v, Key{Task: task, VM: vm}
					}
				}
			}
			return bestKey, bestV
		}
	}
	for _, task := range tasks {
		for _, vm := range vms {
			if v := t.Value(Key{Task: task, VM: vm}); v > bestV {
				bestV, bestKey = v, Key{Task: task, VM: vm}
			}
		}
	}
	return bestKey, bestV
}

// Mean returns the mean of materialised values (0 when empty).
func (t *Table) Mean() float64 {
	n := t.Len()
	if n == 0 {
		return 0
	}
	var s float64
	if t.dense != nil {
		for i, ok := range t.seen {
			if ok {
				s += t.dense[i]
			}
		}
		for _, v := range t.overflow {
			s += v
		}
	} else {
		for _, v := range t.values {
			s += v
		}
	}
	return s / float64(n)
}

// Snapshot returns a deterministic (sorted) copy of the materialised
// table contents.
func (t *Table) Snapshot() []Entry {
	out := make([]Entry, 0, t.Len())
	if t.dense != nil {
		for i, ok := range t.seen {
			if ok {
				out = append(out, Entry{Key: Key{Task: i / t.numVMs, VM: i % t.numVMs}, Value: t.dense[i]})
			}
		}
		for k, v := range t.overflow {
			out = append(out, Entry{Key: k, Value: v})
		}
		if len(t.overflow) == 0 {
			return out // rectangle iteration is already sorted
		}
	} else {
		for k, v := range t.values {
			out = append(out, Entry{Key: k, Value: v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Key.Task != out[j].Key.Task {
			return out[i].Key.Task < out[j].Key.Task
		}
		return out[i].Key.VM < out[j].Key.VM
	})
	return out
}

// Entry is one (key, value) pair of the table.
type Entry struct {
	Key   Key     `json:"key"`
	Value float64 `json:"value"`
}

// Save writes the table as JSON, preserving learned values across
// episodes and processes (the paper's cross-episode learning state).
// The format is backing-independent.
func (t *Table) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t.Snapshot())
}

// Load replaces the table contents with a previously saved snapshot.
// The snapshot may come from either backing; entries outside a dense
// table's rectangle land in its overflow map.
func (t *Table) Load(r io.Reader) error {
	var entries []Entry
	if err := json.NewDecoder(r).Decode(&entries); err != nil {
		return fmt.Errorf("rl: load table: %w", err)
	}
	if t.dense != nil {
		clear(t.dense)
		clear(t.seen)
		t.seenN = 0
		t.overflow = nil
	} else {
		t.values = make(map[Key]float64, len(entries))
	}
	for _, e := range entries {
		t.Set(e.Key, e.Value)
	}
	return nil
}

// SaveFile writes the table to a JSON file.
func (t *Table) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a table previously written by SaveFile.
func (t *Table) LoadFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return t.Load(f)
}

// TDUpdate applies the temporal-difference update
// Q(k) ← Q(k) + α·(reward + γ·next − Q(k)) and returns the new value.
// It is the single update rule behind Algorithm 2 (next is
// max_a' Q(s', a') for Q-learning, a policy sample for SARSA), and
// the hot-path primitive: one lookup and one store on either backing.
func (t *Table) TDUpdate(k Key, alpha, reward, gamma, next float64) float64 {
	if t.dense != nil {
		if i, ok := t.index(k); ok {
			q := t.at(i)
			q += alpha * (reward + gamma*next - q)
			t.dense[i] = q
			return q
		}
		q, ok := t.overflow[k]
		if !ok {
			q = t.draw()
		}
		q += alpha * (reward + gamma*next - q)
		if t.overflow == nil {
			t.overflow = make(map[Key]float64)
		}
		t.overflow[k] = q
		return q
	}
	q, ok := t.values[k]
	if !ok {
		q = t.draw()
	}
	q += alpha * (reward + gamma*next - q)
	t.values[k] = q
	return q
}
