package rl

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestValueRandomInit(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 1.0)
	k := Key{Task: 0, VM: 0}
	v1 := tab.Value(k)
	if v1 < 0 || v1 >= 1 {
		t.Fatalf("init value %v outside [0,1)", v1)
	}
	if v2 := tab.Value(k); v2 != v1 {
		t.Fatalf("second read changed value: %v vs %v", v2, v1)
	}
	if tab.Len() != 1 {
		t.Fatalf("Len = %d", tab.Len())
	}
}

func TestZeroInitSpan(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	if v := tab.Value(Key{1, 2}); v != 0 {
		t.Fatalf("zero-span init = %v", v)
	}
}

func TestNilRNGDefaults(t *testing.T) {
	tab := NewTable(nil, 1.0)
	_ = tab.Value(Key{0, 0}) // must not panic
}

func TestPeekSetAdd(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	if _, ok := tab.Peek(Key{0, 0}); ok {
		t.Fatal("Peek materialised an entry")
	}
	tab.Set(Key{0, 0}, 5)
	if v, ok := tab.Peek(Key{0, 0}); !ok || v != 5 {
		t.Fatalf("Peek = %v, %v", v, ok)
	}
	tab.Add(Key{0, 0}, 2.5)
	if v := tab.Value(Key{0, 0}); v != 7.5 {
		t.Fatalf("after Add = %v", v)
	}
}

func TestBestAndTies(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{0, 0}, 1)
	tab.Set(Key{0, 1}, 3)
	tab.Set(Key{0, 2}, 3)
	vm, v := tab.Best(0, []int{0, 1, 2})
	if vm != 1 || v != 3 {
		t.Fatalf("Best = vm%d/%v, want vm1/3 (lowest-ID tie-break)", vm, v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Best with empty candidates did not panic")
		}
	}()
	tab.Best(0, nil)
}

func TestMaxOver(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{0, 0}, -5)
	tab.Set(Key{1, 0}, 2)
	if got := tab.MaxOver([]Key{{0, 0}, {1, 0}}); got != 2 {
		t.Fatalf("MaxOver = %v", got)
	}
	if got := tab.MaxOver(nil); got != 0 {
		t.Fatalf("MaxOver(empty) = %v, want 0 (terminal)", got)
	}
}

func TestMean(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	if tab.Mean() != 0 {
		t.Fatal("empty mean != 0")
	}
	tab.Set(Key{0, 0}, 2)
	tab.Set(Key{0, 1}, 4)
	if tab.Mean() != 3 {
		t.Fatalf("Mean = %v", tab.Mean())
	}
}

func TestSnapshotSorted(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{1, 1}, 1)
	tab.Set(Key{0, 2}, 2)
	tab.Set(Key{0, 1}, 3)
	s := tab.Snapshot()
	if len(s) != 3 {
		t.Fatalf("snapshot = %v", s)
	}
	if s[0].Key != (Key{0, 1}) || s[1].Key != (Key{0, 2}) || s[2].Key != (Key{1, 1}) {
		t.Fatalf("snapshot order = %v", s)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 1)
	for i := 0; i < 20; i++ {
		tab.Set(Key{i % 5, i % 3}, float64(i)*0.7)
	}
	var buf bytes.Buffer
	if err := tab.Save(&buf); err != nil {
		t.Fatal(err)
	}
	tab2 := NewTable(rand.New(rand.NewSource(99)), 1)
	if err := tab2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if tab2.Len() != tab.Len() {
		t.Fatalf("Len after load = %d", tab2.Len())
	}
	for _, e := range tab.Snapshot() {
		if v, ok := tab2.Peek(e.Key); !ok || v != e.Value {
			t.Fatalf("entry %v: got %v, %v", e.Key, v, ok)
		}
	}
}

func TestLoadBadJSON(t *testing.T) {
	tab := NewTable(nil, 1)
	if err := tab.Load(bytes.NewBufferString("not json")); err == nil {
		t.Fatal("bad JSON accepted")
	}
}

func TestSaveLoadFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "q.json")
	tab := NewTable(rand.New(rand.NewSource(1)), 1)
	tab.Set(Key{3, 4}, 9.5)
	if err := tab.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	tab2 := NewTable(nil, 1)
	if err := tab2.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	if v, _ := tab2.Peek(Key{3, 4}); v != 9.5 {
		t.Fatalf("loaded %v", v)
	}
	if err := tab2.LoadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file loaded")
	}
}

func TestEpsilonGreedyPaperConvention(t *testing.T) {
	// ε=1.0 under the paper's convention always exploits.
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{0, 0}, 0)
	tab.Set(Key{0, 1}, 10)
	rng := rand.New(rand.NewSource(2))
	p := EpsilonGreedy{Epsilon: 1.0}
	for i := 0; i < 50; i++ {
		if got := p.Select(tab, 0, []int{0, 1}, rng); got != 1 {
			t.Fatalf("ε=1.0 (paper) explored: chose %d", got)
		}
	}
	// ε=0.0 always explores: both VMs must appear.
	p0 := EpsilonGreedy{Epsilon: 0.0}
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[p0.Select(tab, 0, []int{0, 1}, rng)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("ε=0.0 (paper) did not explore: %v", seen)
	}
}

func TestEpsilonGreedyTextbookConvention(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{0, 0}, 0)
	tab.Set(Key{0, 1}, 10)
	rng := rand.New(rand.NewSource(2))
	p := EpsilonGreedy{Epsilon: 0.0, Textbook: true}
	for i := 0; i < 50; i++ {
		if got := p.Select(tab, 0, []int{0, 1}, rng); got != 1 {
			t.Fatalf("textbook ε=0 explored: chose %d", got)
		}
	}
}

func TestGreedyPolicy(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{0, 3}, 1)
	tab.Set(Key{0, 7}, 5)
	rng := rand.New(rand.NewSource(2))
	if got := (Greedy{}).Select(tab, 0, []int{3, 7}, rng); got != 7 {
		t.Fatalf("Greedy chose %d", got)
	}
}

func TestBoltzmannFavorsHighQ(t *testing.T) {
	tab := NewTable(rand.New(rand.NewSource(1)), 0)
	tab.Set(Key{0, 0}, 0)
	tab.Set(Key{0, 1}, 5)
	rng := rand.New(rand.NewSource(2))
	p := Boltzmann{Temperature: 1}
	counts := map[int]int{}
	for i := 0; i < 2000; i++ {
		counts[p.Select(tab, 0, []int{0, 1}, rng)]++
	}
	if counts[1] <= counts[0]*10 {
		t.Fatalf("Boltzmann counts = %v; VM1 should dominate at ΔQ=5, T=1", counts)
	}
	// Very high temperature ≈ uniform.
	pHot := Boltzmann{Temperature: 1e9}
	hot := map[int]int{}
	for i := 0; i < 2000; i++ {
		hot[pHot.Select(tab, 0, []int{0, 1}, rng)]++
	}
	if hot[0] < 800 || hot[1] < 800 {
		t.Fatalf("hot Boltzmann not near-uniform: %v", hot)
	}
	// Non-positive temperature must not panic or divide by zero.
	pZero := Boltzmann{Temperature: 0}
	if got := pZero.Select(tab, 0, []int{0, 1}, rng); got != 0 && got != 1 {
		t.Fatalf("zero-temp select = %d", got)
	}
}

func TestPolicyPanicsOnEmpty(t *testing.T) {
	tab := NewTable(nil, 0)
	rng := rand.New(rand.NewSource(1))
	for _, p := range []Policy{EpsilonGreedy{}, Boltzmann{Temperature: 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%T did not panic on empty candidates", p)
				}
			}()
			p.Select(tab, 0, nil, rng)
		}()
	}
}

func TestSchedules(t *testing.T) {
	if Const(0.5).At(100) != 0.5 {
		t.Fatal("Const not constant")
	}
	d := LinearDecay{Start: 1, End: 0, Over: 11}
	if d.At(0) != 1 {
		t.Fatalf("LinearDecay.At(0) = %v", d.At(0))
	}
	if math.Abs(d.At(5)-0.5) > 1e-9 {
		t.Fatalf("LinearDecay.At(5) = %v", d.At(5))
	}
	if d.At(10) != 0 || d.At(1000) != 0 {
		t.Fatal("LinearDecay did not clamp at End")
	}
	if d.At(-5) != 1 {
		t.Fatal("LinearDecay negative episode not clamped")
	}
	e := ExpDecay{Start: 1, Rate: 0.5, Floor: 0.1}
	if e.At(0) != 1 || e.At(1) != 0.5 || e.At(2) != 0.25 {
		t.Fatalf("ExpDecay = %v %v %v", e.At(0), e.At(1), e.At(2))
	}
	if e.At(100) != 0.1 {
		t.Fatalf("ExpDecay floor = %v", e.At(100))
	}
	if (LinearDecay{Start: 3, End: 7, Over: 0}).At(0) != 7 {
		t.Fatal("degenerate LinearDecay should return End")
	}
}

// Property: save/load round-trips any table exactly.
func TestPropertySaveLoadRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(rng, 1)
		for i := 0; i < int(n); i++ {
			tab.Set(Key{rng.Intn(50), rng.Intn(15)}, rng.NormFloat64()*10)
		}
		var buf bytes.Buffer
		if err := tab.Save(&buf); err != nil {
			return false
		}
		tab2 := NewTable(nil, 1)
		if err := tab2.Load(&buf); err != nil {
			return false
		}
		if tab2.Len() != tab.Len() {
			return false
		}
		for _, e := range tab.Snapshot() {
			if v, ok := tab2.Peek(e.Key); !ok || v != e.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Best always returns a candidate from the list with the
// maximal Q value among the candidates.
func TestPropertyBestIsArgmax(t *testing.T) {
	f := func(seed int64, rawVMs []uint8) bool {
		if len(rawVMs) == 0 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(rng, 1)
		seen := map[int]bool{}
		var vms []int
		for _, r := range rawVMs {
			id := int(r) % 32
			if !seen[id] {
				seen[id] = true
				vms = append(vms, id)
			}
		}
		vm, v := tab.Best(0, vms)
		found := false
		for _, id := range vms {
			q := tab.Value(Key{0, id})
			if q > v+1e-12 {
				return false
			}
			if id == vm {
				found = true
				if q != v {
					return false
				}
			}
		}
		return found
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTableUpdate(b *testing.B) {
	tab := NewTable(rand.New(rand.NewSource(1)), 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Add(Key{i % 50, i % 15}, 0.01)
	}
}

func BenchmarkEpsilonGreedySelect(b *testing.B) {
	tab := NewTable(rand.New(rand.NewSource(1)), 1)
	vms := []int{0, 1, 2, 3, 4, 5, 6, 7, 8}
	rng := rand.New(rand.NewSource(2))
	p := EpsilonGreedy{Epsilon: 0.1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Select(tab, i%50, vms, rng)
	}
}

func TestTDUpdateBasics(t *testing.T) {
	tab := NewTable(nil, 0)
	k := Key{0, 0}
	// α=1, γ=0: Q jumps straight to the reward.
	if got := tab.TDUpdate(k, 1, 5, 0, 99); got != 5 {
		t.Fatalf("TDUpdate = %v, want 5", got)
	}
	// α=0: no change.
	if got := tab.TDUpdate(k, 0, -100, 1, -100); got != 5 {
		t.Fatalf("α=0 changed Q: %v", got)
	}
	// Bootstrapping: α=1, γ=1 → reward + next.
	if got := tab.TDUpdate(k, 1, 1, 1, 2); got != 3 {
		t.Fatalf("bootstrap TDUpdate = %v, want 3", got)
	}
}

// Property: on a two-armed bandit (γ=0) with deterministic rewards,
// repeated TD updates converge each arm's Q to its reward for any
// α ∈ (0, 1].
func TestPropertyTDConvergesOnBandit(t *testing.T) {
	f := func(seed int64, rawAlpha uint8) bool {
		alpha := float64(rawAlpha%100+1) / 100
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(rng, 1)
		good, bad := Key{0, 1}, Key{0, 0}
		for i := 0; i < 1500; i++ {
			tab.TDUpdate(good, alpha, 1, 0, 0)
			tab.TDUpdate(bad, alpha, -1, 0, 0)
		}
		// α as low as 0.01 contracts the initial error by (1-α)^1500
		// ≈ 3e-7; allow generous numerical slack.
		if math.Abs(tab.Value(good)-1) > 0.01 || math.Abs(tab.Value(bad)+1) > 0.01 {
			return false
		}
		vm, _ := tab.Best(0, []int{0, 1})
		return vm == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: with γ<1 and bounded rewards, Q values stay bounded by
// |r|max / (1-γ) under self-consistent bootstrapping.
func TestPropertyTDBounded(t *testing.T) {
	f := func(seed int64, rawGamma uint8) bool {
		gamma := float64(rawGamma%90) / 100 // [0, 0.9)
		rng := rand.New(rand.NewSource(seed))
		tab := NewTable(rng, 1)
		keys := []Key{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
		bound := 1/(1-gamma) + 1 // +1 covers random init
		for i := 0; i < 2000; i++ {
			k := keys[rng.Intn(len(keys))]
			reward := 1.0
			if rng.Intn(2) == 0 {
				reward = -1
			}
			var next float64
			for _, kk := range keys {
				if v := tab.Value(kk); v > next {
					next = v
				}
			}
			if v := tab.TDUpdate(k, 0.5, reward, gamma, next); math.Abs(v) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
