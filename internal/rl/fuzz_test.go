package rl

import (
	"math/rand"
	"testing"
)

// FuzzBandIndex probes the band index math (locate / allocBand /
// bitset offsets) with arbitrary table shapes and band shifts,
// checking every banded read and write against the sparse map
// backing, including keys outside the rectangle (overflow map).
func FuzzBandIndex(f *testing.F) {
	f.Add(uint16(12), uint8(5), uint8(2), int64(1))
	f.Add(uint16(1), uint8(1), uint8(0), int64(2))
	f.Add(uint16(1000), uint8(200), uint8(6), int64(3))
	f.Add(uint16(64), uint8(63), uint8(7), int64(4))
	f.Fuzz(func(t *testing.T, rawTasks uint16, rawVMs, rawShift uint8, seed int64) {
		numTasks := 1 + int(rawTasks)%1024
		numVMs := 1 + int(rawVMs)
		shift := uint(rawShift) % 11 // band sizes 1 .. 1024 rows

		m := NewTable(rand.New(rand.NewSource(seed)), 1.0)
		bd := newRect(numTasks, numVMs, shift, rand.New(rand.NewSource(seed)), 1.0)

		ops := rand.New(rand.NewSource(seed ^ 0x5eed))
		for i := 0; i < 200; i++ {
			// Mostly in-rect keys; occasionally out-of-rect to hit the
			// overflow path on both sides of the boundary.
			k := Key{Task: ops.Intn(numTasks), VM: ops.Intn(numVMs)}
			if ops.Intn(10) == 0 {
				k = Key{Task: numTasks + ops.Intn(4), VM: numVMs + ops.Intn(4)}
			}
			switch ops.Intn(4) {
			case 0:
				if gm, gb := m.Value(k), bd.Value(k); gm != gb {
					t.Fatalf("Value(%+v): map %v, banded %v", k, gm, gb)
				}
			case 1:
				v := ops.NormFloat64()
				m.Set(k, v)
				bd.Set(k, v)
			case 2:
				r := ops.NormFloat64()
				if gm, gb := m.TDUpdate(k, 0.4, r, 0.9, 1), bd.TDUpdate(k, 0.4, r, 0.9, 1); gm != gb {
					t.Fatalf("TDUpdate(%+v): map %v, banded %v", k, gm, gb)
				}
			case 3:
				vm1, v1 := m.Best(k.Task, []int{0, numVMs / 2, numVMs - 1})
				vm2, v2 := bd.Best(k.Task, []int{0, numVMs / 2, numVMs - 1})
				if vm1 != vm2 || v1 != v2 {
					t.Fatalf("Best(%d): map (%d, %v), banded (%d, %v)", k.Task, vm1, v1, vm2, v2)
				}
			}
		}
		if m.Len() != bd.Len() {
			t.Fatalf("Len: map %d, banded %d", m.Len(), bd.Len())
		}
		sm, sb := m.Snapshot(), bd.Snapshot()
		if len(sm) != len(sb) {
			t.Fatalf("Snapshot length: map %d, banded %d", len(sm), len(sb))
		}
		for i := range sm {
			if sm[i] != sb[i] {
				t.Fatalf("Snapshot[%d]: map %+v, banded %+v", i, sm[i], sb[i])
			}
		}
	})
}
