package rl_test

import (
	"fmt"
	"math/rand"

	"reassign/internal/rl"
)

// Example trains a Q table on a two-armed bandit with the TD update
// and reads back the greedy choice.
func Example() {
	table := rl.NewTable(rand.New(rand.NewSource(1)), 0)
	task := 0
	for i := 0; i < 200; i++ {
		table.TDUpdate(rl.Key{Task: task, VM: 0}, 0.5, -1, 0, 0) // slow VM
		table.TDUpdate(rl.Key{Task: task, VM: 1}, 0.5, +1, 0, 0) // fast VM
	}
	vm, value := table.Best(task, []int{0, 1})
	fmt.Printf("greedy VM: %d (Q=%.2f)\n", vm, value)
	// Output:
	// greedy VM: 1 (Q=1.00)
}

// ExampleEpsilonGreedy demonstrates the paper's inverted ε
// convention: with probability ε the agent EXPLOITS.
func ExampleEpsilonGreedy() {
	table := rl.NewTable(rand.New(rand.NewSource(1)), 0)
	table.Set(rl.Key{Task: 0, VM: 3}, 10) // clearly best

	alwaysExploit := rl.EpsilonGreedy{Epsilon: 1.0} // paper convention
	rng := rand.New(rand.NewSource(2))
	fmt.Println("chosen:", alwaysExploit.Select(table, 0, []int{1, 2, 3}, rng))
	// Output:
	// chosen: 3
}
