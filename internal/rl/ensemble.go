package rl

import "math/rand"

// Copy returns an independent deep copy of the table with rng as its
// random source for entries that materialise after the copy. The copy
// shares no state with the original, so replicas can learn on copies
// of one continuation table concurrently. A nil rng falls back to the
// same default as the constructors.
func (t *Table) Copy(rng *rand.Rand) *Table {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	c := &Table{
		seenN:    t.seenN,
		numTasks: t.numTasks,
		numVMs:   t.numVMs,
		rng:      rng,
		initSpan: t.initSpan,
	}
	if t.bands != nil {
		c.bandShift = t.bandShift
		c.bandRows = t.bandRows
		c.bands = make([]band, len(t.bands))
		for i := range t.bands {
			if t.bands[i].vals != nil {
				c.bands[i].vals = append([]float64(nil), t.bands[i].vals...)
				c.bands[i].seen = append([]uint64(nil), t.bands[i].seen...)
			}
		}
		c.rowN = append([]int32(nil), t.rowN...)
		c.rowMax = append([]float64(nil), t.rowMax...)
		c.rowArg = append([]int32(nil), t.rowArg...)
		c.rowOK = append([]bool(nil), t.rowOK...)
		if len(t.overflow) > 0 {
			c.overflow = make(map[Key]float64, len(t.overflow))
			for k, v := range t.overflow {
				c.overflow[k] = v
			}
		}
		return c
	}
	c.values = make(map[Key]float64, len(t.values))
	for k, v := range t.values {
		c.values[k] = v
	}
	return c
}

// Average returns a new table holding the entry-wise mean of the
// given tables: each key materialised by at least one table averages
// over the tables that materialised it (unmaterialised entries do not
// drag the mean toward zero). This is the replica-ensemble merge for
// cross-execution continuation — K replicas explore independently and
// their consensus values seed the next execution's learning.
//
// The result is rectangle-backed when every input is rectangle-backed
// with equal dimensions (inheriting tables[0]'s rectangle, band
// layout, and initSpan), sparse otherwise. rng becomes the result's
// source for future materialisation. Average panics on an empty table
// list.
func Average(rng *rand.Rand, tables ...*Table) *Table {
	if len(tables) == 0 {
		panic("rl: Average of no tables")
	}
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	first := tables[0]
	allRect := first.bands != nil
	for _, t := range tables[1:] {
		if t.bands == nil || t.numTasks != first.numTasks || t.numVMs != first.numVMs {
			allRect = false
			break
		}
	}
	var out *Table
	if allRect {
		out = newRect(first.numTasks, first.numVMs, first.bandShift, rng, first.initSpan)
	} else {
		out = NewTable(rng, first.initSpan)
	}
	sum := make(map[Key]float64)
	count := make(map[Key]int)
	for _, t := range tables {
		for _, e := range t.Snapshot() {
			sum[e.Key] += e.Value
			count[e.Key]++
		}
	}
	for k, s := range sum {
		out.Set(k, s/float64(count[k]))
	}
	return out
}
