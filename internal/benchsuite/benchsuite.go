// Package benchsuite defines the repository's governed benchmark
// suite — the set of benchmarks recorded in BENCH_core.json and gated
// in CI — in one place, so the writer (cmd/benchjson), the gate
// (cmd/benchguard) and the `go test -bench` entry points (bench_test.go)
// cannot drift apart.
package benchsuite

import (
	"fmt"
	"math/rand"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// Entry is one benchmark's recorded trajectory point, the JSON value
// of BENCH_core.json.
type Entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	Iterations  int     `json:"iterations"`
}

// Record converts a testing.BenchmarkResult into an Entry.
func Record(r testing.BenchmarkResult) Entry {
	return Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
}

// Bench is one governed benchmark: the BENCH_core.json key and the
// function behind it.
type Bench struct {
	Name string
	Fn   func(*testing.B)
}

// Suite returns the governed benchmarks in a stable order: the
// Q-table micro-benchmarks, the TD hot path, the headline 100-episode
// learning run, and the replica-scaling ladder.
func Suite() []Bench {
	return []Bench{
		{"BenchmarkQTableMap", QTable(func() *rl.Table {
			return rl.NewTable(rand.New(rand.NewSource(1)), 1.0)
		}, 50, 16)},
		{"BenchmarkQTableDense", QTable(func() *rl.Table {
			return rl.NewDenseTable(50, 16, rand.New(rand.NewSource(1)), 1.0)
		}, 50, 16)},
		{"BenchmarkTDHotPath/map", TDHotPath(func(i, numTasks, numVMs int) *rl.Table {
			return rl.NewTable(rand.New(rand.NewSource(int64(i))), 1.0)
		})},
		{"BenchmarkTDHotPath/dense", TDHotPath(func(i, numTasks, numVMs int) *rl.Table {
			return rl.NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(int64(i))), 1.0)
		})},
		{"BenchmarkLearning100Episodes", Learning100},
		{"BenchmarkLearningReplicas/1", LearningReplicas(1)},
		{"BenchmarkLearningReplicas/4", LearningReplicas(4)},
		{"BenchmarkLearningReplicas/8", LearningReplicas(8)},
	}
}

// QTable benchmarks a MaxRect + TDUpdate + Best round per op on a
// numTasks×numVMs action space.
func QTable(mk func() *rl.Table, numTasks, numVMs int) func(*testing.B) {
	return func(b *testing.B) {
		vms := make([]int, numVMs)
		for i := range vms {
			vms[i] = i
		}
		tasks := make([]int, numTasks)
		for i := range tasks {
			tasks[i] = i
		}
		tab := mk()
		rng := rand.New(rand.NewSource(42))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := rl.Key{Task: rng.Intn(numTasks), VM: rng.Intn(numVMs)}
			next := tab.MaxRect(tasks, vms)
			tab.TDUpdate(k, 0.5, 1.0, 0.9, next)
			tab.Best(k.Task, vms)
		}
	}
}

// TDHotPath runs one full learning episode per op.
func TDHotPath(mk func(i int, numTasks, numVMs int) *rl.Table) func(*testing.B) {
	return func(b *testing.B) {
		w := trace.Montage50(rand.New(rand.NewSource(6)))
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		fluct := cloud.DefaultFluctuation()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agent, err := core.NewScheduler(core.DefaultParams(), mk(i, w.Len(), len(fleet.VMs)), rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(w, fleet, agent, sim.Config{Seed: int64(i), Fluct: &fluct}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Learning100 is the headline trajectory benchmark: one full
// 100-episode ReASSIgN learning run (Montage 50, 16-vCPU fleet) per
// op, telemetry disabled (the zero-cost default).
func Learning100(b *testing.B) {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		b.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 100,
			Sim: sim.Config{Fluct: &fluct},
		}, core.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Learn(); err != nil {
			b.Fatal(err)
		}
	}
}

// LearningReplicas benchmarks the replica ensemble: k concurrent
// 100-episode learners per op on the Learning100 workload. On a
// k-core machine the wall clock should stay near the single-replica
// time (k× the learning throughput); on fewer cores it degrades
// toward k× the single time, with the outcome bit-identical either
// way.
func LearningReplicas(k int) func(*testing.B) {
	return func(b *testing.B) {
		w := trace.Montage50(rand.New(rand.NewSource(1)))
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		fluct := cloud.DefaultFluctuation()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := core.NewLearner(core.Config{
				Workflow: w, Fleet: fleet,
				Params: core.DefaultParams(), Episodes: 100,
				Sim: sim.Config{Fluct: &fluct},
			}, core.WithSeed(int64(i)), core.WithReplicas(k))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.LearnReplicas(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// ByName returns the suite benchmark with the given BENCH_core.json
// key.
func ByName(name string) (Bench, error) {
	for _, bench := range Suite() {
		if bench.Name == name {
			return bench, nil
		}
	}
	return Bench{}, fmt.Errorf("benchsuite: unknown benchmark %q", name)
}
