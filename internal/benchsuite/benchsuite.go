// Package benchsuite defines the repository's governed benchmark
// suite — the set of benchmarks recorded in BENCH_core.json and gated
// in CI — in one place, so the writer (cmd/benchjson), the gate
// (cmd/benchguard) and the `go test -bench` entry points (bench_test.go)
// cannot drift apart.
package benchsuite

import (
	"fmt"
	"math/rand"
	"testing"

	"reassign/internal/api"
	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/loadgen"
	"reassign/internal/rl"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

// Entry is one benchmark's recorded trajectory point, the JSON value
// of BENCH_core.json. Extra carries b.ReportMetric units (e.g. the
// learning benches' "ep/s" and "act-ep/s" throughput).
type Entry struct {
	NsPerOp     float64            `json:"ns_per_op"`
	AllocsPerOp int64              `json:"allocs_per_op"`
	BytesPerOp  int64              `json:"bytes_per_op"`
	Iterations  int                `json:"iterations"`
	Extra       map[string]float64 `json:"extra,omitempty"`
}

// Record converts a testing.BenchmarkResult into an Entry.
func Record(r testing.BenchmarkResult) Entry {
	e := Entry{
		NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
		Iterations:  r.N,
	}
	if len(r.Extra) > 0 {
		e.Extra = make(map[string]float64, len(r.Extra))
		for k, v := range r.Extra {
			e.Extra[k] = v
		}
	}
	return e
}

// Bench is one governed benchmark: the BENCH_core.json key and the
// function behind it.
type Bench struct {
	Name string
	Fn   func(*testing.B)
}

// Suite returns the governed benchmarks in a stable order: the
// Q-table micro-benchmarks, the TD hot path, the headline 100-episode
// learning run, the replica-scaling ladder, the large-DAG tier
// (1000- and 10k-activation workflows on 256- and 1024-vCPU fleets),
// the exec wire-path tier (a wide 1000-activation plan over InProc
// and loopback TCP with the JSON and binary codecs), the
// open-system tier (a seeded multi-tenant trace replayed through
// every policy lane at 3 and 6 tenants), and the spot-market tier
// (trace-bill integration and a full replay under a hostile trace).
func Suite() []Bench {
	return []Bench{
		{"BenchmarkQTableMap", QTable(func() *rl.Table {
			return rl.NewTable(rand.New(rand.NewSource(1)), 1.0)
		}, 50, 16)},
		{"BenchmarkQTableDense", QTable(func() *rl.Table {
			return rl.NewDenseTable(50, 16, rand.New(rand.NewSource(1)), 1.0)
		}, 50, 16)},
		{"BenchmarkTDHotPath/map", TDHotPath(func(i, numTasks, numVMs int) *rl.Table {
			return rl.NewTable(rand.New(rand.NewSource(int64(i))), 1.0)
		})},
		{"BenchmarkTDHotPath/dense", TDHotPath(func(i, numTasks, numVMs int) *rl.Table {
			return rl.NewDenseTable(numTasks, numVMs, rand.New(rand.NewSource(int64(i))), 1.0)
		})},
		{"BenchmarkLearning100Episodes", Learning100},
		{"BenchmarkLearningReplicas/1", LearningReplicas(1)},
		{"BenchmarkLearningReplicas/4", LearningReplicas(4)},
		{"BenchmarkLearningReplicas/8", LearningReplicas(8)},
		{"BenchmarkLearningLarge/1000x256", LearningLarge(1000, 256, 100)},
		{"BenchmarkLearningLarge/10000x1024", LearningLarge(10000, 1024, 5)},
		{"BenchmarkExecThroughput/inproc-1000x64", ExecInProc(1000, 64)},
		{"BenchmarkExecThroughput/tcp-json-1000x64", ExecTCP(1000, 64, false)},
		{"BenchmarkExecThroughput/tcp-bin-1000x64", ExecTCP(1000, 64, true)},
		{"BenchmarkExecThroughput/tcp-json-1000x256", ExecTCP(1000, 256, false)},
		{"BenchmarkExecThroughput/tcp-bin-1000x256", ExecTCP(1000, 256, true)},
		{"BenchmarkOpenSystem/3tenants", OpenSystem(3)},
		{"BenchmarkOpenSystem/6tenants", OpenSystem(6)},
		{"BenchmarkMarketPlayback/cost", MarketCost()},
		{"BenchmarkMarketPlayback/exec-200x16", MarketExec(200)},
	}
}

// reportThroughput attaches the learning-rate metrics that gate real
// deployments: episodes/sec, and episodes/sec × workflow size as the
// headline "act-ep/s" (a fleet-independent measure of how much DAG
// the learner chews through per second). episodesPerOp counts every
// episode one benchmark op runs, across all replicas, so the replica
// ladder reports aggregate (parallel) throughput rather than the
// per-replica wall clock.
func reportThroughput(b *testing.B, acts, episodesPerOp int) {
	secs := b.Elapsed().Seconds()
	if secs <= 0 {
		return
	}
	eps := float64(b.N) * float64(episodesPerOp) / secs
	b.ReportMetric(eps, "ep/s")
	b.ReportMetric(eps*float64(acts), "act-ep/s")
}

// QTable benchmarks a MaxRect + TDUpdate + Best round per op on a
// numTasks×numVMs action space.
func QTable(mk func() *rl.Table, numTasks, numVMs int) func(*testing.B) {
	return func(b *testing.B) {
		vms := make([]int, numVMs)
		for i := range vms {
			vms[i] = i
		}
		tasks := make([]int, numTasks)
		for i := range tasks {
			tasks[i] = i
		}
		tab := mk()
		rng := rand.New(rand.NewSource(42))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			k := rl.Key{Task: rng.Intn(numTasks), VM: rng.Intn(numVMs)}
			next := tab.MaxRect(tasks, vms)
			tab.TDUpdate(k, 0.5, 1.0, 0.9, next)
			tab.Best(k.Task, vms)
		}
	}
}

// TDHotPath runs one full learning episode per op.
func TDHotPath(mk func(i int, numTasks, numVMs int) *rl.Table) func(*testing.B) {
	return func(b *testing.B) {
		w := trace.Montage50(rand.New(rand.NewSource(6)))
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		fluct := cloud.DefaultFluctuation()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			agent, err := core.NewScheduler(core.DefaultParams(), mk(i, w.Len(), len(fleet.VMs)), rand.New(rand.NewSource(int64(i))))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := sim.Run(w, fleet, agent, sim.Config{Seed: int64(i), Fluct: &fluct}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// Learning100 is the headline trajectory benchmark: one full
// 100-episode ReASSIgN learning run (Montage 50, 16-vCPU fleet) per
// op, telemetry disabled (the zero-cost default).
func Learning100(b *testing.B) {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		b.Fatal(err)
	}
	fluct := cloud.DefaultFluctuation()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := core.NewLearner(core.Config{
			Workflow: w, Fleet: fleet,
			Params: core.DefaultParams(), Episodes: 100,
			Sim: sim.Config{Fluct: &fluct},
		}, core.WithSeed(int64(i)))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := l.Learn(); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b, w.Len(), 100)
}

// LearningLarge returns the extreme-scale tier benchmark: one
// learning run of `episodes` episodes per op on a MontageN workflow
// of `acts` activations over a FleetScaled fleet of `vcpus` vCPUs.
// This is the regime the banded Q-table, the batched TD path and the
// lazy EstimateExec memo exist for; episodes/sec and act-ep/s are
// the metrics to watch.
func LearningLarge(acts, vcpus, episodes int) func(*testing.B) {
	return func(b *testing.B) {
		w := trace.MontageN(rand.New(rand.NewSource(1)), acts)
		fleet, err := cloud.FleetScaled(vcpus)
		if err != nil {
			b.Fatal(err)
		}
		fluct := cloud.DefaultFluctuation()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := core.NewLearner(core.Config{
				Workflow: w, Fleet: fleet,
				Params: core.DefaultParams(), Episodes: episodes,
				Sim: sim.Config{Fluct: &fluct},
			}, core.WithSeed(int64(i)))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.Learn(); err != nil {
				b.Fatal(err)
			}
		}
		reportThroughput(b, acts, episodes)
	}
}

// LearningReplicas benchmarks the replica ensemble: k concurrent
// 100-episode learners per op on the Learning100 workload. On a
// k-core machine the wall clock should stay near the single-replica
// time (k× the learning throughput); on fewer cores it degrades
// toward k× the single time, with the outcome bit-identical either
// way.
func LearningReplicas(k int) func(*testing.B) {
	return func(b *testing.B) {
		w := trace.Montage50(rand.New(rand.NewSource(1)))
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		fluct := cloud.DefaultFluctuation()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			l, err := core.NewLearner(core.Config{
				Workflow: w, Fleet: fleet,
				Params: core.DefaultParams(), Episodes: 100,
				Sim: sim.Config{Fluct: &fluct},
			}, core.WithSeed(int64(i)), core.WithReplicas(k))
			if err != nil {
				b.Fatal(err)
			}
			if _, err := l.LearnReplicas(); err != nil {
				b.Fatal(err)
			}
		}
		// k replicas run 100 episodes each per op, so ep/s here is the
		// ensemble's aggregate throughput — near-flat total ns/op with
		// rising ep/s is what parallel speedup looks like.
		reportThroughput(b, w.Len(), k*100)
	}
}

// ByName returns the suite benchmark with the given BENCH_core.json
// key.
func ByName(name string) (Bench, error) {
	for _, bench := range Suite() {
		if bench.Name == name {
			return bench, nil
		}
	}
	return Bench{}, fmt.Errorf("benchsuite: unknown benchmark %q", name)
}

// OpenSystem returns the open-system throughput tier: one op
// generates nothing (the trace is fixed up front) and replays the
// same seeded multi-tenant arrival trace through every policy lane —
// learned warm-table ReASSIgN, HEFT, greedy immediate, and EDF
// admission. The extra metric is lane-jobs served per second of wall
// time, the open-system regime BENCH_core.json tracks.
func OpenSystem(tenants int) func(*testing.B) {
	return func(b *testing.B) {
		tr, err := loadgen.Generate(loadgen.TraceConfig{
			Seed:    1,
			Horizon: 400,
			Tenants: loadgen.DefaultTenants(tenants, 0.02, 30),
		})
		if err != nil {
			b.Fatal(err)
		}
		cfg := loadgen.LaneConfig{
			Fleet:    api.FleetSpec{Preset: "table1", VCPUs: 16},
			Slots:    2,
			Episodes: 8,
		}
		laneJobs := len(tr.Arrivals) * len(loadgen.AllPolicies())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := loadgen.RunLanes(tr, cfg); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(laneJobs*b.N)/b.Elapsed().Seconds(), "job/s")
	}
}
