package benchsuite

import (
	"context"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/exec"
	"reassign/internal/market"
)

// The market tier measures spot-trace playback: the step-function
// price integration behind every bill, and a full execution replay —
// a wide plan driven through the master while a hostile trace delivers
// preemption notices, kills and health degradations. Headline metric
// for the replay is "tasks/s" against the no-market ExecInProc
// ceiling: the gap is the total cost of cordon/drain/remediate.

// marketBenchTrace generates the shared hostile trace for the tier.
func marketBenchTrace(b *testing.B, fleet *cloud.Fleet) *market.Playback {
	b.Helper()
	rg, _ := market.RegimeByName("hostile")
	tr, err := market.Generate(market.DefaultCatalogue(), fleet, rg, 7, 900)
	if err != nil {
		b.Fatal(err)
	}
	pb, err := market.NewPlayback(tr, nil)
	if err != nil {
		b.Fatal(err)
	}
	return pb
}

// MarketCost benchmarks one full-fleet bill: integrating every VM's
// step-function price series from 0 to the horizon.
func MarketCost() func(*testing.B) {
	return func(b *testing.B) {
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		pb := marketBenchTrace(b, fleet)
		horizon := pb.Horizon()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep := pb.FleetCost(horizon)
			if rep.Total <= 0 {
				b.Fatalf("fleet bill %v", rep.Total)
			}
		}
	}
}

// MarketExec benchmarks a full market replay: the wide plan through
// the in-process master with the trace feeding notices, kills and
// health changes. Every op replays the identical trace, so the
// numbers track playback + cordon/drain/remediate cost, not draw
// variance.
func MarketExec(tasks int) func(*testing.B) {
	return func(b *testing.B) {
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			b.Fatal(err)
		}
		w, plan := execWorkload(tasks, fleet)
		pb := marketBenchTrace(b, fleet)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := exec.NewMarketFeed(
				&exec.InProc{Workers: 4, Runner: exec.SimRunner{}, HeartbeatEvery: 1e9}, pb)
			m, err := exec.New(w, fleet, plan, tr,
				exec.WithLease(1e9, 1), exec.WithMarket(pb))
			if err != nil {
				b.Fatal(err)
			}
			rep, err := m.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if rep.Done != tasks {
				b.Fatalf("done = %d of %d", rep.Done, tasks)
			}
			if rep.Cost <= 0 {
				b.Fatalf("market replay billed %v", rep.Cost)
			}
		}
		reportExecThroughput(b, tasks, 0, 0)
	}
}
