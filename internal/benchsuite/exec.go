package benchsuite

import (
	"context"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/exec"
)

// The exec tier measures the execution-stage wire path: a wide
// 1000-activation plan (no dependencies, so dispatch is pure
// throughput) driven through the master over the InProc transport
// (the no-wire ceiling) and over loopback TCP with the JSON-lines and
// framed-binary codecs. Headline metrics are "tasks/s" and, for the
// TCP variants, "B/task" (wire bytes per completed activation, both
// directions). Heartbeats and lease retries are disabled so the
// numbers isolate codec + batching cost from timer noise.

// execBenchTimeout bounds one benchmark op; a healthy run finishes in
// well under a second.
const execBenchTimeout = 120 * time.Second

// execWorkload builds a wide workflow of n independent activations
// and a plan spreading them round-robin over the fleet's VMs.
func execWorkload(n int, fleet *cloud.Fleet) (*dag.Workflow, core.Plan) {
	w := dag.New(fmt.Sprintf("exec-bench-%d", n))
	assign := make(map[string]int, n)
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("x%04d", i)
		w.MustAdd(id, "bench", 1+float64(i%7))
		assign[id] = fleet.VMs[i%fleet.Len()].ID
	}
	return w, core.NewPlan(assign)
}

// execFleet scales the fleet to the worker pool: 16 vCPU slots per
// worker, so each connection multiplexes a deep stream of in-flight
// activations — the regime the batched wire path is built for.
func execFleet(b *testing.B, workers int) *cloud.Fleet {
	fleet, err := cloud.FleetScaled(workers * 16)
	if err != nil {
		b.Fatal(err)
	}
	return fleet
}

// ExecInProc returns the no-wire baseline: the same plan through the
// deterministic in-process transport. The gap between this and the
// TCP variants is the total cost of the wire.
func ExecInProc(tasks, workers int) func(*testing.B) {
	return func(b *testing.B) {
		fleet := execFleet(b, workers)
		w, plan := execWorkload(tasks, fleet)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr := &exec.InProc{Workers: workers, Runner: exec.SimRunner{}, HeartbeatEvery: 1e9}
			m, err := exec.New(w, fleet, plan, tr, exec.WithLease(1e9, 1))
			if err != nil {
				b.Fatal(err)
			}
			rep, err := m.Run(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if rep.Done != tasks {
				b.Fatalf("done = %d of %d", rep.Done, tasks)
			}
		}
		reportExecThroughput(b, tasks, 0, 0)
	}
}

// ExecTCP returns the loopback-TCP benchmark: `workers` in-process
// worker goroutines dial the master and serve the plan with an
// instant runner, over the framed binary codec or the legacy
// JSON-lines codec.
func ExecTCP(tasks, workers int, binary bool) func(*testing.B) {
	return func(b *testing.B) {
		fleet := execFleet(b, workers)
		w, plan := execWorkload(tasks, fleet)
		runner := exec.NewRunner(func(float64) exec.Runner { return exec.SimRunner{} })
		var wireBytes, wireCalls int64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			tcp := &exec.TCP{
				Addr: "127.0.0.1:0", Workers: workers,
				TimeScale: 1e-4, HeartbeatEvery: 1e9,
			}
			if err := tcp.Listen(); err != nil {
				b.Fatal(err)
			}
			// Caller-owned transport: the 64-connection shutdown is
			// teardown, not wire path, so it happens off the clock below.
			m, err := exec.New(w, fleet, plan, tcp, exec.WithLease(1e9, 1), exec.WithCallerOwnedTransport())
			if err != nil {
				b.Fatal(err)
			}
			conns := make([]net.Conn, workers)
			var wg sync.WaitGroup
			for j := 0; j < workers; j++ {
				j := j
				wg.Add(1)
				go func() {
					defer wg.Done()
					conn, err := net.Dial("tcp", tcp.ListenAddr())
					if err != nil {
						b.Error(err)
						return
					}
					conns[j] = conn
					if binary {
						go exec.ServeConn(context.Background(), conn, runner)
					} else {
						go exec.ServeConnJSON(context.Background(), conn, runner)
					}
				}()
			}
			wg.Wait()
			if b.Failed() {
				b.FailNow()
			}
			ctx, cancel := context.WithTimeout(context.Background(), execBenchTimeout)
			// Pre-join the fleet (Open is idempotent, so Run reuses it):
			// the timed region then measures the steady-state wire path,
			// not 64 connection handshakes.
			if _, err := tcp.Open(ctx); err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			rep, err := m.Run(ctx)
			b.StopTimer()
			tcp.Close()
			cancel()
			in, out := tcp.Bytes()
			wireBytes += in + out
			r, w := tcp.Calls()
			wireCalls += r + w
			for _, conn := range conns {
				if conn != nil {
					conn.Close()
				}
			}
			if err != nil {
				b.Fatal(err)
			}
			if rep.Done != tasks {
				b.Fatalf("done = %d of %d", rep.Done, tasks)
			}
			// Collect the op's garbage while the clock is stopped, so one
			// op's teardown debt is not billed to the next op's tasks.
			runtime.GC()
			b.StartTimer()
		}
		b.StopTimer()
		reportExecThroughput(b, tasks, wireBytes, wireCalls)
	}
}

// reportExecThroughput attaches tasks/s (completed activations per
// timed second) and, when wire traffic was counted, B/task (wire
// bytes per completed activation, both directions) and sys/task
// (master-side read+write calls per activation — the syscall
// amortisation the batched codec buys).
func reportExecThroughput(b *testing.B, tasks int, wireBytes, wireCalls int64) {
	secs := b.Elapsed().Seconds()
	if secs > 0 {
		b.ReportMetric(float64(b.N)*float64(tasks)/secs, "tasks/s")
	}
	if wireBytes > 0 && b.N > 0 {
		b.ReportMetric(float64(wireBytes)/(float64(b.N)*float64(tasks)), "B/task")
	}
	if wireCalls > 0 && b.N > 0 {
		b.ReportMetric(float64(wireCalls)/(float64(b.N)*float64(tasks)), "sys/task")
	}
}
