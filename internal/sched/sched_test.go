package sched

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func fleet16(t testing.TB) *cloud.Fleet {
	f, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func montage(t testing.TB, seed int64) *dag.Workflow {
	rng := rand.New(rand.NewSource(seed))
	return trace.Montage50(rng)
}

// all returns one fresh instance of every scheduler under test.
func all() []sim.Scheduler {
	return []sim.Scheduler{
		FCFS{},
		&RoundRobin{},
		&Random{Seed: 42},
		MCT{},
		MinMin{},
		MaxMin{},
		DataAware{},
		&HEFT{},
	}
}

func TestAllSchedulersFinishMontage(t *testing.T) {
	w := montage(t, 1)
	for _, s := range all() {
		res, err := sim.Run(w, fleet16(t), s, sim.Config{DataTransfer: true, Seed: 9})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.State != sim.FinishedOK {
			t.Fatalf("%s: state = %v", s.Name(), res.State)
		}
		if len(res.Plan) != w.Len() {
			t.Fatalf("%s: plan covers %d of %d", s.Name(), len(res.Plan), w.Len())
		}
		_, cp, _ := w.CriticalPath()
		if res.Makespan < cp-1e-6 {
			t.Fatalf("%s: makespan %v beats critical path %v", s.Name(), res.Makespan, cp)
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	want := map[string]bool{
		"FCFS": true, "RoundRobin": true, "Random": true, "MCT": true,
		"MinMin": true, "MaxMin": true, "DataAware": true, "HEFT": true,
	}
	for _, s := range all() {
		if !want[s.Name()] {
			t.Errorf("unexpected name %q", s.Name())
		}
		delete(want, s.Name())
	}
	if len(want) != 0 {
		t.Errorf("missing schedulers: %v", want)
	}
}

func TestRoundRobinSpreadsLoad(t *testing.T) {
	// 9 independent equal tasks on 9 single-slot VMs: each VM gets one.
	w := dag.New("spread")
	for i := 0; i < 9; i++ {
		w.MustAdd(string(rune('a'+i)), "x", 10)
	}
	fleet := cloud.MustFleet("nine", []cloud.VMType{cloud.T2Micro}, []int{9})
	res, err := sim.Run(w, fleet, &RoundRobin{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	used := make(map[int]int)
	for _, vm := range res.Plan {
		used[vm]++
	}
	if len(used) != 9 {
		t.Fatalf("round robin used %d VMs, want 9: %v", len(used), res.Plan)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
}

func TestMCTPrefersFasterVM(t *testing.T) {
	// One task, a slow and a fast VM type: MCT must pick the faster.
	fast := cloud.VMType{Name: "fast", VCPUs: 1, RAMMB: 1024, Speed: 4, PricePerHour: 1, NetMBps: 100}
	slow := cloud.VMType{Name: "slow", VCPUs: 1, RAMMB: 1024, Speed: 1, PricePerHour: 1, NetMBps: 100}
	fleet := cloud.MustFleet("two", []cloud.VMType{slow, fast}, []int{1, 1})
	w := dag.New("one")
	w.MustAdd("t", "x", 8)
	res, err := sim.Run(w, fleet, MCT{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan["t"] != 1 {
		t.Fatalf("MCT chose VM %d, want the fast VM 1", res.Plan["t"])
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Fatalf("makespan = %v, want 2", res.Makespan)
	}
}

func TestMinMinOrdering(t *testing.T) {
	// Min-Min schedules the shortest task first; Max-Min the longest.
	// With one slot and tasks of 1s and 10s ready together, Min-Min
	// finishes the short one first.
	w := dag.New("mm")
	w.MustAdd("short", "x", 1)
	w.MustAdd("long", "x", 10)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})

	res, err := sim.Run(w, fleet, MinMin{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	finish := map[string]float64{}
	for _, r := range res.Records {
		finish[r.TaskID] = r.FinishAt
	}
	if finish["short"] > finish["long"] {
		t.Fatalf("MinMin ran long first: %v", finish)
	}

	res2, err := sim.Run(w, fleet, MaxMin{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	finish2 := map[string]float64{}
	for _, r := range res2.Records {
		finish2[r.TaskID] = r.FinishAt
	}
	if finish2["long"] > finish2["short"] {
		t.Fatalf("MaxMin ran short first: %v", finish2)
	}
}

func TestDataAwarePrefersDataLocality(t *testing.T) {
	w := dag.New("locality")
	a := w.MustAdd("a", "produce", 5)
	b := w.MustAdd("b", "consume", 5)
	a.Outputs = []dag.File{{Name: "big", Size: 100_000_000}}
	b.Inputs = a.Outputs
	w.MustDep("a", "b")
	fleet := cloud.MustFleet("two", []cloud.VMType{cloud.T2Micro}, []int{2})
	res, err := sim.Run(w, fleet, DataAware{}, sim.Config{DataTransfer: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan["a"] != res.Plan["b"] {
		t.Fatalf("DataAware split producer/consumer: %v", res.Plan)
	}
}

func TestPlanValidation(t *testing.T) {
	w := dag.New("w")
	w.MustAdd("a", "x", 1)
	fleet := fleet16(t)
	// Missing activation.
	p := &Plan{Assign: map[string]int{}}
	if _, err := sim.Run(w, fleet, p, sim.Config{}); err == nil {
		t.Fatal("incomplete plan accepted")
	}
	// Out-of-range VM.
	p2 := &Plan{Assign: map[string]int{"a": 99}}
	if _, err := sim.Run(w, fleet, p2, sim.Config{}); err == nil {
		t.Fatal("out-of-range VM accepted")
	}
	// Valid plan executes on the pinned VM.
	p3 := &Plan{Assign: map[string]int{"a": 3}}
	res, err := sim.Run(w, fleet, p3, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan["a"] != 3 {
		t.Fatalf("ran on VM %d, want 3", res.Plan["a"])
	}
	if p3.Name() != "Plan" {
		t.Fatalf("default plan name = %q", p3.Name())
	}
}

func TestHEFTPlanRespectedAndReasonable(t *testing.T) {
	w := montage(t, 2)
	fleet := fleet16(t)
	h := &HEFT{}
	res, err := sim.Run(w, fleet, h, sim.Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	// The executed placement must match the plan exactly.
	for id, vm := range h.Assign() {
		if res.Plan[id] != vm {
			t.Fatalf("activation %s ran on %d, planned %d", id, res.Plan[id], vm)
		}
	}
	if h.PlannedMakespan <= 0 {
		t.Fatalf("planned makespan = %v", h.PlannedMakespan)
	}
	// Replaying a static plan can only lose to the idealised plan by
	// dispatch granularity; allow slack but catch gross divergence.
	if res.Makespan > h.PlannedMakespan*2 {
		t.Fatalf("simulated makespan %v far above planned %v", res.Makespan, h.PlannedMakespan)
	}
}

func TestHEFTBeatsRandomOnHeterogeneousFleet(t *testing.T) {
	// With strongly heterogeneous speeds HEFT should clearly beat the
	// random scheduler on average.
	fast := cloud.VMType{Name: "fast", VCPUs: 2, RAMMB: 4096, Speed: 4, PricePerHour: 1, NetMBps: 100}
	slow := cloud.VMType{Name: "slow", VCPUs: 1, RAMMB: 1024, Speed: 0.5, PricePerHour: 1, NetMBps: 100}
	fleet := cloud.MustFleet("hetero", []cloud.VMType{slow, fast}, []int{4, 1})
	w := montage(t, 3)

	hres, err := sim.Run(w, fleet, &HEFT{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var randTotal float64
	const n = 5
	for i := int64(0); i < n; i++ {
		rres, err := sim.Run(w, fleet, &Random{Seed: i}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		randTotal += rres.Makespan
	}
	if hres.Makespan >= randTotal/n {
		t.Fatalf("HEFT %v not better than mean random %v", hres.Makespan, randTotal/n)
	}
}

func TestHEFTChainUsesFastProcessor(t *testing.T) {
	fast := cloud.VMType{Name: "fast", VCPUs: 1, RAMMB: 1024, Speed: 2, PricePerHour: 1, NetMBps: 100}
	slow := cloud.VMType{Name: "slow", VCPUs: 1, RAMMB: 1024, Speed: 1, PricePerHour: 1, NetMBps: 100}
	fleet := cloud.MustFleet("two", []cloud.VMType{slow, fast}, []int{1, 1})
	w := dag.New("chain")
	w.MustAdd("a", "x", 10)
	w.MustAdd("b", "x", 10)
	w.MustDep("a", "b")
	h := &HEFT{}
	res, err := sim.Run(w, fleet, h, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Both tasks belong on the 2x VM: 5+5 = 10 < 10+10.
	if res.Plan["a"] != 1 || res.Plan["b"] != 1 {
		t.Fatalf("plan = %v, want both on VM 1", res.Plan)
	}
	if math.Abs(res.Makespan-10) > 1e-9 {
		t.Fatalf("makespan = %v, want 10", res.Makespan)
	}
}

func TestHEFTInsertionPolicy(t *testing.T) {
	// earliestSlot must find gaps between busy intervals.
	p := &processor{}
	p.insert(interval{0, 10})
	p.insert(interval{20, 30})
	if got := p.earliestSlot(0, 5); got != 10 {
		t.Fatalf("gap start = %v, want 10", got)
	}
	if got := p.earliestSlot(0, 15); got != 30 {
		t.Fatalf("no-fit start = %v, want 30", got)
	}
	if got := p.earliestSlot(25, 2); got != 30 {
		t.Fatalf("ready-inside-busy start = %v, want 30", got)
	}
	p.insert(interval{12, 14})
	if got := p.earliestSlot(0, 2); got != 10 {
		t.Fatalf("small gap start = %v, want 10", got)
	}
}

func TestSharedBytes(t *testing.T) {
	a := &dag.Activation{Outputs: []dag.File{{Name: "x", Size: 10}, {Name: "y", Size: 5}}}
	b := &dag.Activation{Inputs: []dag.File{{Name: "x", Size: 10}, {Name: "z", Size: 99}}}
	if got := sharedBytes(a, b); got != 10 {
		t.Fatalf("sharedBytes = %d, want 10", got)
	}
}

func TestRandomReproducible(t *testing.T) {
	w := montage(t, 4)
	fleet := fleet16(t)
	r1, err := sim.Run(w, fleet, &Random{Seed: 5}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(w, fleet, &Random{Seed: 5}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed, different makespans: %v vs %v", r1.Makespan, r2.Makespan)
	}
	r3, err := sim.Run(w, fleet, &Random{Seed: 6}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Makespan == r3.Makespan {
		t.Log("different seeds coincided (unlikely but possible)")
	}
}

// Property: every scheduler, on every family and fleet, produces a
// complete valid schedule with the makespan bounded below by the
// critical path.
func TestPropertyAllSchedulersValid(t *testing.T) {
	fams := trace.Families()
	f := func(seed int64, famIdx, vcpuIdx uint8) bool {
		fam := fams[int(famIdx)%len(fams)]
		vcpus := cloud.Table1VCPUs()[int(vcpuIdx)%3]
		rng := rand.New(rand.NewSource(seed))
		w := trace.Named(fam)(rng, 40)
		fleet, err := cloud.FleetTable1(vcpus)
		if err != nil {
			return false
		}
		_, cp, err := w.CriticalPath()
		if err != nil {
			return false
		}
		for _, s := range all() {
			res, err := sim.Run(w, fleet, s, sim.Config{Seed: seed, DataTransfer: true})
			if err != nil {
				return false
			}
			if res.State != sim.FinishedOK || len(res.Plan) != w.Len() {
				return false
			}
			if res.Makespan < cp-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHEFTPlanMontage50(b *testing.B) {
	w := montage(b, 1)
	fleet, _ := cloud.FleetTable1(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := &HEFT{}
		if err := h.Prepare(w, fleet, nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinMinMontage50(b *testing.B) {
	w := montage(b, 1)
	fleet, _ := cloud.FleetTable1(16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, fleet, MinMin{}, sim.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestCheapFirstPrefersCheapSlots(t *testing.T) {
	w := dag.New("cheap")
	w.MustAdd("a", "x", 10)
	fleet := fleet16(t) // micro slot-price < 2xlarge slot-price
	res, err := sim.Run(w, fleet, CheapFirst{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if fleet.VMs[res.Plan["a"]].Type.Name != "t2.micro" {
		t.Fatalf("CheapFirst chose %v", fleet.VMs[res.Plan["a"]].Type.Name)
	}
	if (CheapFirst{}).Name() != "CheapFirst" {
		t.Fatal("bad name")
	}
}

func TestCheapFirstLowersBusyCost(t *testing.T) {
	// A chain never overflows the cheap slots, so CheapFirst keeps all
	// work on micro instances: busy cost sits below an
	// everything-on-2xlarge plan by the slot-price ratio
	// (0.0116/1 vs 0.3712/8 per slot-hour).
	w := dag.New("chain")
	w.MustAdd("a", "x", 100)
	w.MustAdd("b", "x", 100)
	w.MustDep("a", "b")
	fleet := fleet16(t)
	cheap, err := sim.Run(w, fleet, CheapFirst{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	big, err := sim.Run(w, fleet, &Plan{PlanName: "big", Assign: map[string]int{"a": 8, "b": 8}}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	wantRatio := (cloud.T22XLarge.PricePerHour / 8) / cloud.T2Micro.PricePerHour
	if math.Abs(big.BusyCost/cheap.BusyCost-wantRatio) > 1e-9 {
		t.Fatalf("busy-cost ratio = %v, want %v", big.BusyCost/cheap.BusyCost, wantRatio)
	}
	if cheap.BusyCost >= big.BusyCost {
		t.Fatalf("CheapFirst busy cost %v not below all-big plan %v", cheap.BusyCost, big.BusyCost)
	}
}

func TestEnsembleScheduling(t *testing.T) {
	// Two Montage instances merged into one ensemble scheduled on a
	// shared fleet: both must finish, and the ensemble makespan must
	// be bounded by the two sequential makespans.
	rngA := rand.New(rand.NewSource(7))
	rngB := rand.New(rand.NewSource(8))
	a := trace.Montage(rngA, 5, 2)
	b := trace.Montage(rngB, 5, 2)
	ens, err := dag.Merge("ensemble", a, b)
	if err != nil {
		t.Fatal(err)
	}
	fleet := fleet16(t)
	mk := func(w *dag.Workflow) float64 {
		res, err := sim.Run(w, fleet, MinMin{}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if res.State != sim.FinishedOK {
			t.Fatalf("state = %v", res.State)
		}
		return res.Makespan
	}
	mkA, mkB, mkEns := mk(a), mk(b), mk(ens)
	if mkEns > mkA+mkB+1e-9 {
		t.Fatalf("ensemble %v worse than sequential %v", mkEns, mkA+mkB)
	}
	if mkEns < mkA-1e-9 || mkEns < mkB-1e-9 {
		t.Fatalf("ensemble %v beat a single member (%v, %v)", mkEns, mkA, mkB)
	}
}

// multiSiteFleet builds a two-site fleet with a slow inter-site link.
func multiSiteFleet(t testing.TB) *cloud.Fleet {
	topo := cloud.NewTopology(1, "east", "west") // 1 MB/s across sites
	f, err := cloud.NewMultiSiteFleet("ms", topo, []cloud.SiteSpec{
		{Site: "east", Types: []cloud.VMType{cloud.T2Large}, Counts: []int{2}},
		{Site: "west", Types: []cloud.VMType{cloud.T2Large}, Counts: []int{2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCrossSiteTransferSlower(t *testing.T) {
	// a produces 64 MB consumed by b. Same site: staged at the VM's
	// 64 MB/s (1s). Cross site: limited to 1 MB/s (64s).
	w := dag.New("xsite")
	a := w.MustAdd("a", "produce", 10)
	b := w.MustAdd("b", "consume", 10)
	a.Outputs = []dag.File{{Name: "big", Size: 64_000_000}}
	b.Inputs = a.Outputs
	w.MustDep("a", "b")
	fleet := multiSiteFleet(t)

	sameSite, err := sim.Run(w, fleet, &Plan{PlanName: "same", Assign: map[string]int{"a": 0, "b": 1}},
		sim.Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	crossSite, err := sim.Run(w, fleet, &Plan{PlanName: "cross", Assign: map[string]int{"a": 0, "b": 2}},
		sim.Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sameSite.Makespan-21) > 1e-9 {
		t.Fatalf("same-site makespan = %v, want 21", sameSite.Makespan)
	}
	if math.Abs(crossSite.Makespan-84) > 1e-9 {
		t.Fatalf("cross-site makespan = %v, want 84 (64s link transfer)", crossSite.Makespan)
	}
}

func TestSiteAwareKeepsDataLocal(t *testing.T) {
	// A producer in each site, consumers needing the producer's data:
	// SiteAware must co-locate consumers with their producer's site.
	w := dag.New("local")
	p1 := w.MustAdd("p1", "produce", 5)
	p1.Outputs = []dag.File{{Name: "d1", Size: 50_000_000}}
	for i := 0; i < 2; i++ {
		c := w.MustAdd(fmt.Sprintf("c%d", i), "consume", 5)
		c.Inputs = p1.Outputs
		w.MustDep("p1", c.ID)
	}
	fleet := multiSiteFleet(t)
	res, err := sim.Run(w, fleet, SiteAware{}, sim.Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	producerSite := fleet.VMs[res.Plan["p1"]].Site
	for _, id := range []string{"c0", "c1"} {
		if fleet.VMs[res.Plan[id]].Site != producerSite {
			t.Fatalf("%s scheduled off-site: %v", id, res.Plan)
		}
	}
	if (SiteAware{}).Name() != "SiteAware" {
		t.Fatal("bad name")
	}
}

func TestSiteAwareBeatsSiteBlindOnChains(t *testing.T) {
	// Chains with large intermediates across a slow link: SiteAware
	// should clearly beat site-blind random placement.
	w := dag.New("chains")
	for c := 0; c < 4; c++ {
		prev := ""
		for s := 0; s < 4; s++ {
			id := fmt.Sprintf("c%d_s%d", c, s)
			a := w.MustAdd(id, "step", 5)
			a.Outputs = []dag.File{{Name: id + ".out", Size: 20_000_000}}
			if prev != "" {
				a.Inputs = w.Get(prev).Outputs
				w.MustDep(prev, id)
			}
			prev = id
		}
	}
	fleet := multiSiteFleet(t)
	aware, err := sim.Run(w, fleet, SiteAware{}, sim.Config{DataTransfer: true})
	if err != nil {
		t.Fatal(err)
	}
	// Site-blind baseline: random placement ping-pongs intermediates
	// across the slow link (RoundRobin would accidentally realign
	// children with their parents' VMs on this regular shape).
	var blindSum float64
	const n = 5
	for i := int64(0); i < n; i++ {
		blind, err := sim.Run(w, fleet, &Random{Seed: i}, sim.Config{DataTransfer: true})
		if err != nil {
			t.Fatal(err)
		}
		blindSum += blind.Makespan
	}
	if aware.Makespan >= blindSum/n {
		t.Fatalf("SiteAware %v not better than mean random %v", aware.Makespan, blindSum/n)
	}
}

func TestDeadlineValidation(t *testing.T) {
	w := montage(t, 1)
	if _, err := sim.Run(w, fleet16(t), &Deadline{}, sim.Config{}); err == nil {
		t.Fatal("zero deadline accepted")
	}
}

func TestDeadlinePrioritisesCriticalChain(t *testing.T) {
	// Two ready tasks: one heads a long chain (low slack), one is a
	// stray leaf (high slack). With a single slot, the chain head must
	// dispatch first.
	w := dag.New("slack")
	w.MustAdd("chain0", "x", 10)
	w.MustAdd("chain1", "x", 50)
	w.MustDep("chain0", "chain1")
	w.MustAdd("stray", "x", 5)
	fleet := cloud.MustFleet("one", []cloud.VMType{cloud.T2Micro}, []int{1})
	d := &Deadline{Deadline: 100}
	res, err := sim.Run(w, fleet, d, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	var chainStart, strayStart float64
	for _, r := range res.Records {
		switch r.TaskID {
		case "chain0":
			chainStart = r.StartAt
		case "stray":
			strayStart = r.StartAt
		}
	}
	if chainStart > strayStart {
		t.Fatalf("low-slack chain head started at %v after stray at %v", chainStart, strayStart)
	}
	// Slack accounting: at t=0 chain0's slack is 100-60=40, stray's 95.
	if got := d.Slack(w.Get("chain0"), 0); got != 40 {
		t.Fatalf("chain0 slack = %v, want 40", got)
	}
	if got := d.Slack(w.Get("stray"), 0); got != 95 {
		t.Fatalf("stray slack = %v, want 95", got)
	}
}

func TestDeadlineMeetsFeasibleDeadline(t *testing.T) {
	w := montage(t, 5)
	fleet := fleet16(t)
	_, cp, _ := w.CriticalPath()
	d := &Deadline{Deadline: cp * 1.5}
	res, err := sim.Run(w, fleet, d, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > d.Deadline {
		t.Fatalf("feasible deadline missed: makespan %v > %v", res.Makespan, d.Deadline)
	}
}

func TestGAProducesValidCompetitivePlan(t *testing.T) {
	// Heterogeneous speeds so placement actually matters (on the t2
	// fleet all nominal speeds are equal and any plan is near the
	// critical path).
	fast := cloud.VMType{Name: "fast", VCPUs: 2, RAMMB: 4096, Speed: 4, PricePerHour: 1, NetMBps: 100}
	slow := cloud.VMType{Name: "slow", VCPUs: 1, RAMMB: 1024, Speed: 0.5, PricePerHour: 1, NetMBps: 100}
	fleet := cloud.MustFleet("hetero", []cloud.VMType{slow, fast}, []int{4, 1})
	w := montage(t, 4)
	ga := &GA{Seed: 1, Population: 30, Generations: 40}
	res, err := sim.Run(w, fleet, ga, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.State != sim.FinishedOK {
		t.Fatalf("state = %v", res.State)
	}
	if err := res.Verify(w, fleet); err != nil {
		t.Fatal(err)
	}
	if ga.EstimatedMakespan <= 0 {
		t.Fatal("no estimated makespan")
	}
	// GA must clearly beat random placement on average.
	var randSum float64
	const n = 5
	for i := int64(0); i < n; i++ {
		r, err := sim.Run(w, fleet, &Random{Seed: i}, sim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		randSum += r.Makespan
	}
	if res.Makespan >= randSum/n {
		t.Fatalf("GA %v not better than mean random %v", res.Makespan, randSum/n)
	}
	// ... and land within 1.5x of HEFT.
	h, err := sim.Run(w, fleet, &HEFT{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan > h.Makespan*1.5 {
		t.Fatalf("GA %v far above HEFT %v", res.Makespan, h.Makespan)
	}
}

func TestGADeterministic(t *testing.T) {
	w := montage(t, 5)
	fleet := fleet16(t)
	run := func() map[string]int {
		ga := &GA{Seed: 7, Population: 20, Generations: 15}
		if _, err := sim.Run(w, fleet, ga, sim.Config{}); err != nil {
			t.Fatal(err)
		}
		return ga.Assign()
	}
	a, b := run(), run()
	for id, vm := range a {
		if b[id] != vm {
			t.Fatalf("GA plans diverge at %s", id)
		}
	}
}

func TestGAImprovesOverGenerations(t *testing.T) {
	// More generations must not make the evolved fitness worse
	// (elitism guarantees monotone best fitness for the same stream of
	// chromosomes; across different streams we allow equality).
	w := montage(t, 6)
	fleet := fleet16(t)
	short := &GA{Seed: 3, Population: 20, Generations: 1}
	long := &GA{Seed: 3, Population: 20, Generations: 60}
	if _, err := sim.Run(w, fleet, short, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(w, fleet, long, sim.Config{}); err != nil {
		t.Fatal(err)
	}
	if long.EstimatedMakespan > short.EstimatedMakespan {
		t.Fatalf("60 generations (%v) worse than 1 (%v)",
			long.EstimatedMakespan, short.EstimatedMakespan)
	}
}

func TestListMakespanRespectsSlots(t *testing.T) {
	// Two independent 10s tasks forced onto a 1-slot VM: 20s. Onto the
	// 8-slot VM: 10s.
	w := dag.New("lm")
	w.MustAdd("a", "x", 10)
	w.MustAdd("b", "x", 10)
	fleet := fleet16(t)
	order, _ := w.TopoOrder()
	est := func(a *dag.Activation, vm *cloud.VM) float64 { return a.Runtime / vm.Type.Speed }
	if got := listMakespan(order, []int{0, 0}, fleet, est); got != 20 {
		t.Fatalf("1-slot makespan = %v, want 20", got)
	}
	if got := listMakespan(order, []int{8, 8}, fleet, est); got != 10 {
		t.Fatalf("8-slot makespan = %v, want 10", got)
	}
}

func TestAdaptiveReplansUnderDrift(t *testing.T) {
	// Strong micro throttling the blind plan cannot see: the adaptive
	// scheduler must detect the drift, re-plan, and beat blind HEFT on
	// average.
	fluct := cloud.FluctuationModel{MicroThrottleProb: 0.5, ThrottleFactor: 3}
	fleet := fleet16(t)
	var adaptSum, blindSum float64
	replans := 0
	const n = 6
	for i := int64(0); i < n; i++ {
		w := montage(t, 20+i)
		ad := &Adaptive{}
		ares, err := sim.Run(w, fleet, ad, sim.Config{Fluct: &fluct, Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		if err := ares.Verify(w, fleet); err != nil {
			t.Fatal(err)
		}
		adaptSum += ares.Makespan
		replans += ad.Replans
		bres, err := sim.Run(w, fleet, &HEFT{}, sim.Config{Fluct: &fluct, Seed: i})
		if err != nil {
			t.Fatal(err)
		}
		blindSum += bres.Makespan
	}
	if replans == 0 {
		t.Fatal("adaptive scheduler never re-planned under heavy drift")
	}
	if adaptSum >= blindSum {
		t.Fatalf("adaptive mean %v not better than blind HEFT %v", adaptSum/n, blindSum/n)
	}
}

func TestAdaptiveNoDriftNoReplan(t *testing.T) {
	// Noiseless environment: estimates hold, no re-plan should fire,
	// and the result must match blind HEFT exactly.
	w := montage(t, 30)
	fleet := fleet16(t)
	ad := &Adaptive{}
	ares, err := sim.Run(w, fleet, ad, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ad.Replans != 0 {
		t.Fatalf("re-planned %d times without drift", ad.Replans)
	}
	h := &HEFT{}
	hres, err := sim.Run(w, fleet, h, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if ares.Makespan != hres.Makespan {
		t.Fatalf("adaptive %v != blind HEFT %v in a clean environment", ares.Makespan, hres.Makespan)
	}
}
