// Package sched implements the scheduling algorithms the paper
// compares against (HEFT and the classical immediate-mode heuristics
// Min-Min, Max-Min, MCT) plus simple baselines (FCFS, round-robin,
// random) and a static-plan executor used to replay learned plans.
//
// All schedulers implement sim.Scheduler. Dynamic schedulers decide
// at each "available" decision point; static planners (HEFT) compute
// a full activation→VM plan in Prepare and replay it.
package sched

import (
	"fmt"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// FCFS assigns ready activations in ready order to the first idle VM
// slots, lowest VM ID first.
type FCFS struct{}

// Name implements sim.Scheduler.
func (FCFS) Name() string { return "FCFS" }

// Prepare implements sim.Scheduler.
func (FCFS) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (FCFS) Pick(ctx *sim.Context) []sim.Assignment {
	var out []sim.Assignment
	free := freeSlots(ctx.IdleVMs)
	vi := 0
	for _, t := range ctx.Ready {
		for vi < len(ctx.IdleVMs) && free[ctx.IdleVMs[vi]] == 0 {
			vi++
		}
		if vi == len(ctx.IdleVMs) {
			break
		}
		v := ctx.IdleVMs[vi]
		free[v]--
		out = append(out, sim.Assignment{Task: t, VM: v})
	}
	return out
}

// RoundRobin cycles through VMs (not slots) in ID order across
// decisions, skipping busy VMs.
type RoundRobin struct {
	next int
}

// Name implements sim.Scheduler.
func (*RoundRobin) Name() string { return "RoundRobin" }

// Prepare implements sim.Scheduler.
func (r *RoundRobin) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error {
	r.next = 0
	return nil
}

// Pick implements sim.Scheduler.
func (r *RoundRobin) Pick(ctx *sim.Context) []sim.Assignment {
	var out []sim.Assignment
	free := freeSlots(ctx.IdleVMs)
	n := len(ctx.AllVMs)
	for _, t := range ctx.Ready {
		assigned := false
		for probe := 0; probe < n; probe++ {
			v := ctx.AllVMs[(r.next+probe)%n]
			if free[v] > 0 {
				free[v]--
				out = append(out, sim.Assignment{Task: t, VM: v})
				r.next = (v.VM.ID + 1) % n
				assigned = true
				break
			}
		}
		if !assigned {
			break
		}
	}
	return out
}

// Random assigns each ready activation to a uniformly random idle
// slot, using its own seeded source for reproducibility.
type Random struct {
	Seed int64
	rng  *rand.Rand
}

// Name implements sim.Scheduler.
func (*Random) Name() string { return "Random" }

// Prepare implements sim.Scheduler.
func (s *Random) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error {
	s.rng = rand.New(rand.NewSource(s.Seed))
	return nil
}

// Pick implements sim.Scheduler.
func (s *Random) Pick(ctx *sim.Context) []sim.Assignment {
	var out []sim.Assignment
	free := freeSlots(ctx.IdleVMs)
	for _, t := range ctx.Ready {
		// Collect VMs that still have room this round.
		var open []*sim.VMState
		for _, v := range ctx.IdleVMs {
			if free[v] > 0 {
				open = append(open, v)
			}
		}
		if len(open) == 0 {
			break
		}
		v := open[s.rng.Intn(len(open))]
		free[v]--
		out = append(out, sim.Assignment{Task: t, VM: v})
	}
	return out
}

// Plan replays a fixed activation→VM mapping: each ready activation
// waits until its planned VM has a free slot. Used to execute HEFT
// and learned ReASSIgN plans.
type Plan struct {
	// PlanName labels the plan's origin (e.g. "HEFT", "ReASSIgN").
	PlanName string
	// Assign maps activation ID → VM ID.
	Assign map[string]int
}

// Name implements sim.Scheduler.
func (p *Plan) Name() string {
	if p.PlanName != "" {
		return p.PlanName
	}
	return "Plan"
}

// Prepare implements sim.Scheduler. It verifies the plan covers the
// workflow and references only fleet VMs.
func (p *Plan) Prepare(w *dag.Workflow, fleet *cloud.Fleet, _ *sim.Env) error {
	for _, a := range w.Activations() {
		vmID, ok := p.Assign[a.ID]
		if !ok {
			return fmt.Errorf("sched: plan misses activation %s", a.ID)
		}
		if vmID < 0 || vmID >= fleet.Len() {
			return fmt.Errorf("sched: plan maps %s to unknown VM %d", a.ID, vmID)
		}
	}
	return nil
}

// Pick implements sim.Scheduler.
func (p *Plan) Pick(ctx *sim.Context) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	byID := make(map[int]*sim.VMState, len(ctx.IdleVMs))
	for _, v := range ctx.IdleVMs {
		byID[v.VM.ID] = v
	}
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		v, ok := byID[p.Assign[t.Act.ID]]
		if !ok || free[v] == 0 {
			continue // planned VM busy; wait for it
		}
		free[v]--
		out = append(out, sim.Assignment{Task: t, VM: v})
	}
	return out
}

// freeSlots snapshots the free-slot budget for one decision round.
func freeSlots(vms []*sim.VMState) map[*sim.VMState]int {
	m := make(map[*sim.VMState]int, len(vms))
	for _, v := range vms {
		m[v] = v.FreeSlots()
	}
	return m
}
