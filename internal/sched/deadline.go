package sched

import (
	"fmt"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// Deadline is a least-laxity-first scheduler for deadline-constrained
// runs (the budget/deadline setting of the paper's related work):
// each ready activation's slack is the time remaining until the
// deadline minus its bottom level (the runtime-weighted longest path
// to a leaf). Activations with the least slack dispatch first, each
// to the idle VM with the smallest estimated execution time. Negative
// slack means the deadline is already unreachable; the scheduler
// keeps going (reporting is the caller's job via Result.Makespan).
type Deadline struct {
	// Deadline is the target makespan in virtual seconds.
	Deadline float64

	bottom []float64
}

// Name implements sim.Scheduler.
func (*Deadline) Name() string { return "Deadline" }

// Prepare implements sim.Scheduler.
func (d *Deadline) Prepare(w *dag.Workflow, _ *cloud.Fleet, _ *sim.Env) error {
	if d.Deadline <= 0 {
		return fmt.Errorf("sched: non-positive deadline %v", d.Deadline)
	}
	bl, err := w.BottomLevel()
	if err != nil {
		return err
	}
	d.bottom = bl
	return nil
}

// Slack returns an activation's laxity at the given time.
func (d *Deadline) Slack(a *dag.Activation, now float64) float64 {
	return d.Deadline - now - d.bottom[a.Index]
}

// Pick implements sim.Scheduler.
func (d *Deadline) Pick(ctx *sim.Context) []sim.Assignment {
	ready := append([]*sim.Task(nil), ctx.Ready...)
	sort.SliceStable(ready, func(i, j int) bool {
		si := d.Slack(ready[i].Act, ctx.Now)
		sj := d.Slack(ready[j].Act, ctx.Now)
		if si != sj {
			return si < sj
		}
		return ready[i].Act.Index < ready[j].Act.Index
	})
	free := freeSlots(ctx.IdleVMs)
	var out []sim.Assignment
	for _, t := range ready {
		best, _ := pickMinVM(ctx, t, free)
		if best == nil {
			break
		}
		free[best]--
		out = append(out, sim.Assignment{Task: t, VM: best})
	}
	return out
}
