package sched

import (
	"fmt"
	"math"
	"math/rand"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// GA is a genetic-algorithm planner — the metaheuristic baseline
// family of the cloud-scheduling literature the paper positions
// against. A chromosome is a full activation→VM assignment; fitness
// is the estimated makespan of list-scheduling that assignment in
// topological order (earliest slot per VM, nominal estimates).
// Tournament selection, uniform crossover, per-gene mutation,
// elitism of one.
type GA struct {
	// Population size (default 40) and Generations (default 60).
	Population  int
	Generations int
	// MutationRate is the per-gene reassignment probability
	// (default 0.02).
	MutationRate float64
	// Seed drives the whole search.
	Seed int64

	plan Plan
	// EstimatedMakespan is the fitness of the best chromosome.
	EstimatedMakespan float64
}

// Name implements sim.Scheduler.
func (*GA) Name() string { return "GA" }

// Prepare implements sim.Scheduler: it runs the evolutionary search
// and freezes the best plan.
func (g *GA) Prepare(w *dag.Workflow, fleet *cloud.Fleet, env *sim.Env) error {
	pop := g.Population
	if pop <= 0 {
		pop = 40
	}
	gens := g.Generations
	if gens <= 0 {
		gens = 60
	}
	mut := g.MutationRate
	if mut <= 0 {
		mut = 0.02
	}
	order, err := w.TopoOrder()
	if err != nil {
		return err
	}
	rng := rand.New(rand.NewSource(g.Seed))
	n := w.Len()
	m := fleet.Len()
	if m == 0 {
		return fmt.Errorf("sched: GA on empty fleet")
	}

	est := func(a *dag.Activation, vm *cloud.VM) float64 { return execCost(a, vm, env) }
	fitness := func(genes []int) float64 {
		return listMakespan(order, genes, fleet, est)
	}

	// Initial population: random assignments plus one greedy seed
	// (every task on its fastest VM).
	chrom := make([][]int, pop)
	for i := range chrom {
		genes := make([]int, n)
		for j := range genes {
			genes[j] = rng.Intn(m)
		}
		chrom[i] = genes
	}
	for j, a := range w.Activations() {
		best, bestCost := 0, math.Inf(1)
		for _, vm := range fleet.VMs {
			if c := est(a, vm); c < bestCost {
				best, bestCost = vm.ID, c
			}
		}
		chrom[0][a.Index] = best
		_ = j
	}

	fit := make([]float64, pop)
	for i := range chrom {
		fit[i] = fitness(chrom[i])
	}
	tournament := func() []int {
		bi, bf := -1, math.Inf(1)
		for k := 0; k < 3; k++ {
			i := rng.Intn(pop)
			if fit[i] < bf {
				bi, bf = i, fit[i]
			}
		}
		return chrom[bi]
	}

	for gen := 0; gen < gens; gen++ {
		next := make([][]int, 0, pop)
		// Elitism: carry the best chromosome over unchanged.
		bestIdx := 0
		for i := 1; i < pop; i++ {
			if fit[i] < fit[bestIdx] {
				bestIdx = i
			}
		}
		next = append(next, append([]int(nil), chrom[bestIdx]...))
		for len(next) < pop {
			a, b := tournament(), tournament()
			child := make([]int, n)
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					child[j] = a[j]
				} else {
					child[j] = b[j]
				}
				if rng.Float64() < mut {
					child[j] = rng.Intn(m)
				}
			}
			next = append(next, child)
		}
		chrom = next
		for i := range chrom {
			fit[i] = fitness(chrom[i])
		}
	}

	bestIdx := 0
	for i := 1; i < pop; i++ {
		if fit[i] < fit[bestIdx] {
			bestIdx = i
		}
	}
	assign := make(map[string]int, n)
	for _, a := range w.Activations() {
		assign[a.ID] = chrom[bestIdx][a.Index]
	}
	g.plan = Plan{PlanName: "GA", Assign: assign}
	g.EstimatedMakespan = fit[bestIdx]
	return g.plan.Prepare(w, fleet, env)
}

// Pick implements sim.Scheduler by replaying the evolved plan.
func (g *GA) Pick(ctx *sim.Context) []sim.Assignment { return g.plan.Pick(ctx) }

// Assign returns the evolved activation→VM plan (valid after
// Prepare).
func (g *GA) Assign() map[string]int { return g.plan.Assign }

// listMakespan estimates the makespan of a fixed assignment by list
// scheduling in topological order: each task starts at the later of
// its parents' finishes and its VM's earliest free slot.
func listMakespan(order []*dag.Activation, genes []int, fleet *cloud.Fleet,
	est func(*dag.Activation, *cloud.VM) float64) float64 {
	finish := make([]float64, len(genes))
	// Earliest-free times per VM slot, kept sorted ascending.
	slots := make([][]float64, fleet.Len())
	for i, vm := range fleet.VMs {
		slots[i] = make([]float64, vm.Type.VCPUs)
	}
	var makespan float64
	for _, a := range order {
		vmID := genes[a.Index]
		vm := fleet.VMs[vmID]
		ready := 0.0
		for _, p := range a.Parents() {
			if finish[p.Index] > ready {
				ready = finish[p.Index]
			}
		}
		// Earliest slot on the VM.
		s := slots[vmID]
		idx := 0
		for i := 1; i < len(s); i++ {
			if s[i] < s[idx] {
				idx = i
			}
		}
		start := math.Max(ready, s[idx])
		end := start + est(a, vm)
		s[idx] = end
		finish[a.Index] = end
		if end > makespan {
			makespan = end
		}
	}
	return makespan
}
