package sched

import (
	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/estimate"
	"reassign/internal/sim"
)

// Adaptive is the scheduler the paper's introduction wishes for
// ("the ideal would be that the scheduler would be adaptive to the
// environment instead of modelling cloud characteristics"): it starts
// from a blind HEFT plan, learns per-(activity, VM type) runtimes
// from every completion, and re-plans the not-yet-started remainder
// with provenance-calibrated HEFT whenever the observed slowdown of
// some VM type exceeds Threshold.
//
// It is a model-free adaptive baseline to contrast with ReASSIgN:
// both learn from measured times; Adaptive funnels them through an
// explicit runtime model and a re-run of a classical planner, while
// ReASSIgN folds them into Q values directly.
type Adaptive struct {
	// Threshold is the observed-slowdown ratio that triggers a
	// re-plan (default 1.2).
	Threshold float64
	// MinObservations gates re-planning until the estimator has seen
	// this many completions (default 10).
	MinObservations int

	// Replans counts how many times the plan was recomputed.
	Replans int

	w       *dag.Workflow
	fleet   *cloud.Fleet
	env     *sim.Env
	est     *estimate.Estimator
	plan    map[string]int
	started map[string]bool
	done    int
	cooldct int
	// Per-VM-type drift accounting: Σ observed/estimated per type.
	ratioSum map[string]float64
	ratioN   map[string]int
}

var _ sim.Scheduler = (*Adaptive)(nil)
var _ sim.CompletionObserver = (*Adaptive)(nil)

// Name implements sim.Scheduler.
func (a *Adaptive) Name() string { return "Adaptive" }

// Prepare implements sim.Scheduler: blind HEFT first.
func (a *Adaptive) Prepare(w *dag.Workflow, fleet *cloud.Fleet, env *sim.Env) error {
	a.w, a.fleet, a.env = w, fleet, env
	a.est = estimate.New(cloud.Types())
	a.started = make(map[string]bool, w.Len())
	a.done = 0
	a.Replans = 0
	a.cooldct = 0
	a.ratioSum = make(map[string]float64)
	a.ratioN = make(map[string]int)
	h := &HEFT{}
	if err := h.Prepare(w, fleet, env); err != nil {
		return err
	}
	a.plan = h.Assign()
	return nil
}

// Pick implements sim.Scheduler by replaying the current plan and
// remembering what has started (those placements are immutable).
func (a *Adaptive) Pick(ctx *sim.Context) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	byID := make(map[int]*sim.VMState, len(ctx.IdleVMs))
	for _, v := range ctx.IdleVMs {
		byID[v.VM.ID] = v
	}
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		v, ok := byID[a.plan[t.Act.ID]]
		if !ok || free[v] == 0 {
			continue
		}
		free[v]--
		a.started[t.Act.ID] = true
		out = append(out, sim.Assignment{Task: t, VM: v})
	}
	return out
}

// OnTaskComplete implements sim.CompletionObserver: fold the measured
// time into the runtime model and re-plan when a VM type has drifted.
// Drift is measured per completed task against its *own* nominal
// estimate (observed/estimated), so per-task runtime variance never
// masquerades as type-level drift.
func (a *Adaptive) OnTaskComplete(t *sim.Task, env *sim.Env) {
	a.est.Observe(t.Act.Activity, t.VM.Type.Name, t.ExecTime())
	if nominal := env.EstimateExec(t.Act, t.VM); nominal > 0 {
		a.ratioSum[t.VM.Type.Name] += t.ExecTime() / nominal
		a.ratioN[t.VM.Type.Name]++
	}
	a.done++
	if a.cooldct > 0 {
		a.cooldct--
	}
	minObs := a.MinObservations
	if minObs <= 0 {
		minObs = 10
	}
	if a.done < minObs || a.cooldct > 0 || a.done >= a.w.Len() {
		return
	}
	threshold := a.Threshold
	if threshold <= 0 {
		threshold = 1.2
	}
	drifted := false
	for ty, n := range a.ratioN {
		if n >= 3 && a.ratioSum[ty]/float64(n) >= threshold {
			drifted = true
			break
		}
	}
	if !drifted {
		return
	}
	// Re-plan the whole workflow with calibrated costs; adopt new
	// placements only for activations that have not started.
	h := &HEFT{Costs: a.est.CostFunc()}
	if err := h.Prepare(a.w, a.fleet, a.env); err != nil {
		return // keep the old plan on any planning error
	}
	for id, vm := range h.Assign() {
		if !a.started[id] {
			a.plan[id] = vm
		}
	}
	a.Replans++
	a.cooldct = minObs // cool down before considering another re-plan
}
