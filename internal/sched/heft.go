package sched

import (
	"math"
	"sort"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// HEFT is the Heterogeneous Earliest Finish Time list scheduler
// (Topcuoglu et al., 2002) — the baseline the paper compares
// ReASSIgN against, and WorkflowSim's default planner.
//
// HEFT is a static planner: Prepare computes upward ranks over mean
// computation and communication costs, then assigns each activation
// (in decreasing rank order) to the execution slot minimising its
// earliest finish time with an insertion-based policy. Pick then
// replays the resulting activation→VM plan.
type HEFT struct {
	// Costs, when non-nil, overrides the execution-time estimate used
	// for ranking and EFT (e.g. a provenance-calibrated predictor
	// from package estimate). Nil uses the environment's nominal
	// estimates — the paper's "blind" HEFT.
	Costs func(a *dag.Activation, vm *cloud.VM) float64

	plan Plan
	// PlannedMakespan is the schedule length HEFT predicted; the
	// simulated makespan may differ under contention or fluctuation.
	PlannedMakespan float64
}

// Name implements sim.Scheduler.
func (*HEFT) Name() string { return "HEFT" }

// processor is one execution slot of a VM.
type processor struct {
	vm    *cloud.VM
	sched []interval // busy intervals, sorted by start
}

type interval struct{ start, end float64 }

// Prepare implements sim.Scheduler: it computes the full plan.
func (h *HEFT) Prepare(w *dag.Workflow, fleet *cloud.Fleet, env *sim.Env) error {
	order, err := w.TopoOrder()
	if err != nil {
		return err
	}
	useComm := env != nil && env.DataTransferEnabled()

	// Slot-level processors.
	var procs []*processor
	for _, vm := range fleet.VMs {
		for s := 0; s < vm.Type.VCPUs; s++ {
			procs = append(procs, &processor{vm: vm})
		}
	}

	cost := func(a *dag.Activation, vm *cloud.VM) float64 {
		if h.Costs != nil {
			return h.Costs(a, vm)
		}
		return execCost(a, vm, env)
	}

	// Mean computation cost per activation, weighted by slot counts.
	// procs groups a VM's slots consecutively, so the estimate is
	// computed once per VM and added once per slot — the same
	// addition sequence (hence bit-identical mean) as the per-slot
	// loop, at a fraction of the cost on many-vCPU fleets.
	wbar := make([]float64, w.Len())
	for _, a := range w.Activations() {
		var sum float64
		var lastVM *cloud.VM
		var lastCost float64
		for _, p := range procs {
			if p.vm != lastVM {
				lastVM, lastCost = p.vm, cost(a, p.vm)
			}
			sum += lastCost
		}
		wbar[a.Index] = sum / float64(len(procs))
	}

	// Mean bandwidth for average communication costs.
	var bwSum float64
	for _, p := range procs {
		bwSum += p.vm.Type.NetMBps
	}
	meanBW := bwSum / float64(len(procs))
	cbar := func(from, to *dag.Activation) float64 {
		if !useComm || meanBW <= 0 {
			return 0
		}
		return float64(sharedBytes(from, to)) / (meanBW * 1e6)
	}

	// Upward ranks, computed in reverse topological order.
	rank := make([]float64, w.Len())
	for i := len(order) - 1; i >= 0; i-- {
		a := order[i]
		best := 0.0
		for _, c := range a.Children() {
			if v := cbar(a, c) + rank[c.Index]; v > best {
				best = v
			}
		}
		rank[a.Index] = wbar[a.Index] + best
	}

	// Schedule in decreasing rank order (ties by index for
	// determinism).
	tasks := append([]*dag.Activation(nil), w.Activations()...)
	sort.Slice(tasks, func(i, j int) bool {
		if rank[tasks[i].Index] != rank[tasks[j].Index] {
			return rank[tasks[i].Index] > rank[tasks[j].Index]
		}
		return tasks[i].Index < tasks[j].Index
	})

	aft := make([]float64, w.Len())      // actual finish time per task
	where := make([]*processor, w.Len()) // chosen processor per task
	assign := make(map[string]int, w.Len())
	makespan := 0.0
	for _, a := range tasks {
		var bestP *processor
		bestStart, bestEFT := 0.0, math.Inf(1)
		// dur depends only on the VM, not the slot; hoist it across a
		// VM's consecutive slots.
		var durVM *cloud.VM
		var dur float64
		for _, p := range procs {
			// Earliest start constrained by parents' data arrival.
			ready := 0.0
			for _, par := range a.Parents() {
				arrive := aft[par.Index]
				if useComm && where[par.Index] != nil && where[par.Index].vm != p.vm && p.vm.Type.NetMBps > 0 {
					arrive += float64(sharedBytes(par, a)) / (p.vm.Type.NetMBps * 1e6)
				}
				if arrive > ready {
					ready = arrive
				}
			}
			if p.vm != durVM {
				durVM, dur = p.vm, cost(a, p.vm)
			}
			start := p.earliestSlot(ready, dur)
			if eft := start + dur; eft < bestEFT {
				bestEFT, bestStart, bestP = eft, start, p
			}
		}
		bestP.insert(interval{bestStart, bestEFT})
		aft[a.Index] = bestEFT
		where[a.Index] = bestP
		assign[a.ID] = bestP.vm.ID
		if bestEFT > makespan {
			makespan = bestEFT
		}
	}

	h.plan = Plan{PlanName: "HEFT", Assign: assign}
	h.PlannedMakespan = makespan
	return h.plan.Prepare(w, fleet, env)
}

// Pick implements sim.Scheduler by replaying the plan.
func (h *HEFT) Pick(ctx *sim.Context) []sim.Assignment { return h.plan.Pick(ctx) }

// Assign returns the computed activation→VM plan (valid after
// Prepare).
func (h *HEFT) Assign() map[string]int { return h.plan.Assign }

// execCost estimates a's execution time on vm, via the environment
// when available.
func execCost(a *dag.Activation, vm *cloud.VM, env *sim.Env) float64 {
	if env != nil {
		return env.EstimateExec(a, vm)
	}
	return a.Runtime / vm.Type.Speed
}

// sharedBytes sums the sizes of files produced by from and consumed
// by to.
func sharedBytes(from, to *dag.Activation) int64 {
	var n int64
	for _, out := range from.Outputs {
		for _, in := range to.Inputs {
			if out.Name == in.Name {
				n += out.Size
				break
			}
		}
	}
	return n
}

// earliestSlot returns the earliest start ≥ ready with a gap of at
// least dur in the processor's schedule (insertion policy).
func (p *processor) earliestSlot(ready, dur float64) float64 {
	start := ready
	for _, iv := range p.sched {
		if start+dur <= iv.start {
			return start
		}
		if iv.end > start {
			start = iv.end
		}
	}
	return start
}

// insert adds a busy interval, keeping the schedule sorted.
func (p *processor) insert(iv interval) {
	i := sort.Search(len(p.sched), func(i int) bool { return p.sched[i].start >= iv.start })
	p.sched = append(p.sched, interval{})
	copy(p.sched[i+1:], p.sched[i:])
	p.sched[i] = iv
}
