package sched

import (
	"math"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// SiteAware schedules for multi-site fleets: each ready activation
// goes to an idle VM in the site already holding the most of its
// input bytes (avoiding slow inter-site links), with estimated
// execution time breaking ties within and across sites. On
// single-site fleets it degrades to MCT-like behaviour.
type SiteAware struct{}

// Name implements sim.Scheduler.
func (SiteAware) Name() string { return "SiteAware" }

// Prepare implements sim.Scheduler.
func (SiteAware) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (SiteAware) Pick(ctx *sim.Context) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		// Bytes of this activation's inputs resident per site (any VM
		// of the site counts: intra-site staging is cheap).
		siteBytes := make(map[string]int64)
		for _, v := range ctx.AllVMs {
			for _, f := range t.Act.Inputs {
				if v.HasFile(f.Name) {
					siteBytes[v.VM.Site] += f.Size
				}
			}
		}
		var best *sim.VMState
		bestLocal := int64(-1)
		bestCT := math.Inf(1)
		for _, v := range ctx.IdleVMs {
			if free[v] == 0 {
				continue
			}
			local := siteBytes[v.VM.Site]
			ct := ctx.Env.EstimateExec(t.Act, v.VM)
			if local > bestLocal || (local == bestLocal && ct < bestCT) {
				best, bestLocal, bestCT = v, local, ct
			}
		}
		if best == nil {
			break
		}
		free[best]--
		out = append(out, sim.Assignment{Task: t, VM: best})
	}
	return out
}
