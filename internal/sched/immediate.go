package sched

import (
	"math"

	"reassign/internal/cloud"
	"reassign/internal/dag"
	"reassign/internal/sim"
)

// MCT (Minimum Completion Time) assigns each ready activation, in
// ready order, to the idle VM with the smallest estimated completion
// time for it.
type MCT struct{}

// Name implements sim.Scheduler.
func (MCT) Name() string { return "MCT" }

// Prepare implements sim.Scheduler.
func (MCT) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (MCT) Pick(ctx *sim.Context) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		best, bestCT := pickMinVM(ctx, t, free)
		if best == nil {
			break
		}
		_ = bestCT
		free[best]--
		out = append(out, sim.Assignment{Task: t, VM: best})
	}
	return out
}

// pickMinVM returns the open VM minimizing the estimated execution
// time of t, or nil when every VM is exhausted this round.
func pickMinVM(ctx *sim.Context, t *sim.Task, free map[*sim.VMState]int) (*sim.VMState, float64) {
	var best *sim.VMState
	bestCT := math.Inf(1)
	for _, v := range ctx.IdleVMs {
		if free[v] == 0 {
			continue
		}
		ct := ctx.Env.EstimateExec(t.Act, v.VM)
		if ct < bestCT {
			bestCT = ct
			best = v
		}
	}
	return best, bestCT
}

// MinMin repeatedly assigns the (activation, VM) pair with the
// globally minimum estimated completion time: short tasks first, each
// on its best machine.
type MinMin struct{}

// Name implements sim.Scheduler.
func (MinMin) Name() string { return "MinMin" }

// Prepare implements sim.Scheduler.
func (MinMin) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (MinMin) Pick(ctx *sim.Context) []sim.Assignment {
	return minMaxLoop(ctx, false)
}

// MaxMin repeatedly assigns the activation whose best completion time
// is largest (long tasks first, each on its best machine).
type MaxMin struct{}

// Name implements sim.Scheduler.
func (MaxMin) Name() string { return "MaxMin" }

// Prepare implements sim.Scheduler.
func (MaxMin) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (MaxMin) Pick(ctx *sim.Context) []sim.Assignment {
	return minMaxLoop(ctx, true)
}

func minMaxLoop(ctx *sim.Context, maxFirst bool) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	pending := append([]*sim.Task(nil), ctx.Ready...)
	var out []sim.Assignment
	for len(pending) > 0 {
		bestIdx := -1
		var bestVM *sim.VMState
		bestKey := math.Inf(1)
		if maxFirst {
			bestKey = math.Inf(-1)
		}
		for i, t := range pending {
			v, ct := pickMinVM(ctx, t, free)
			if v == nil {
				continue
			}
			better := ct < bestKey
			if maxFirst {
				better = ct > bestKey
			}
			if better {
				bestKey, bestIdx, bestVM = ct, i, v
			}
		}
		if bestIdx < 0 {
			break
		}
		free[bestVM]--
		out = append(out, sim.Assignment{Task: pending[bestIdx], VM: bestVM})
		pending = append(pending[:bestIdx], pending[bestIdx+1:]...)
	}
	return out
}

// DataAware places each ready activation on the idle VM already
// holding the most input bytes (minimising staging), breaking ties by
// estimated execution time.
type DataAware struct{}

// Name implements sim.Scheduler.
func (DataAware) Name() string { return "DataAware" }

// Prepare implements sim.Scheduler.
func (DataAware) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (DataAware) Pick(ctx *sim.Context) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		var best *sim.VMState
		bestLocal := int64(-1)
		bestCT := math.Inf(1)
		for _, v := range ctx.IdleVMs {
			if free[v] == 0 {
				continue
			}
			var local int64
			for _, f := range t.Act.Inputs {
				if v.HasFile(f.Name) {
					local += f.Size
				}
			}
			ct := ctx.Env.EstimateExec(t.Act, v.VM)
			if local > bestLocal || (local == bestLocal && ct < bestCT) {
				best, bestLocal, bestCT = v, local, ct
			}
		}
		if best == nil {
			break
		}
		free[best]--
		out = append(out, sim.Assignment{Task: t, VM: best})
	}
	return out
}

// CheapFirst places each ready activation on the idle VM with the
// lowest hourly price per slot (ties broken by estimated execution
// time) — the cost-frontier extreme opposite to MCT, used with
// Result.BusyCost to study cost/performance trade-offs.
type CheapFirst struct{}

// Name implements sim.Scheduler.
func (CheapFirst) Name() string { return "CheapFirst" }

// Prepare implements sim.Scheduler.
func (CheapFirst) Prepare(*dag.Workflow, *cloud.Fleet, *sim.Env) error { return nil }

// Pick implements sim.Scheduler.
func (CheapFirst) Pick(ctx *sim.Context) []sim.Assignment {
	free := freeSlots(ctx.IdleVMs)
	var out []sim.Assignment
	for _, t := range ctx.Ready {
		var best *sim.VMState
		bestPrice := math.Inf(1)
		bestCT := math.Inf(1)
		for _, v := range ctx.IdleVMs {
			if free[v] == 0 {
				continue
			}
			price := v.VM.Type.PricePerHour / float64(v.VM.Type.VCPUs)
			ct := ctx.Env.EstimateExec(t.Act, v.VM)
			if price < bestPrice || (price == bestPrice && ct < bestCT) {
				best, bestPrice, bestCT = v, price, ct
			}
		}
		if best == nil {
			break
		}
		free[best]--
		out = append(out, sim.Assignment{Task: t, VM: best})
	}
	return out
}
