package wfjson

import (
	"bytes"
	"testing"
)

// FuzzRead throws arbitrary bytes at the WfCommons JSON parser.
// Inputs must either be rejected with an error or produce a workflow
// that round-trips: Write followed by Read preserves the activation
// count and the dependency count. The parser must never panic.
func FuzzRead(f *testing.F) {
	valid := `{
  "name": "fuzz",
  "workflow": {
    "specification": {
      "tasks": [
        {"name": "a", "children": ["b"], "inputFiles": [], "outputFiles": ["f1"]},
        {"name": "b", "parents": ["a"], "inputFiles": ["f1"], "outputFiles": []}
      ],
      "files": [{"id": "f1", "sizeInBytes": 100}]
    },
    "execution": {
      "tasks": [
        {"id": "a", "runtimeInSeconds": 1.5},
        {"id": "b", "runtimeInSeconds": 2.0}
      ]
    }
  }
}`
	f.Add([]byte(valid))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"workflow":{}}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(`{"workflow":{"specification":{"tasks":[{"name":"x","parents":["missing"]}]}}}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		wf, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected inputs are fine; panics are not
		}
		wantLen := wf.Len()
		wantEdges := 0
		for _, a := range wf.Activations() {
			wantEdges += len(a.Parents())
		}

		var buf bytes.Buffer
		if err := Write(&buf, wf); err != nil {
			t.Fatalf("Write failed on a workflow Read accepted: %v", err)
		}
		wf2, err := Read(&buf)
		if err != nil {
			t.Fatalf("Read rejected its own Write output: %v", err)
		}
		if wf2.Len() != wantLen {
			t.Fatalf("round-trip changed activation count: %d -> %d", wantLen, wf2.Len())
		}
		gotEdges := 0
		for _, a := range wf2.Activations() {
			gotEdges += len(a.Parents())
		}
		if gotEdges != wantEdges {
			t.Fatalf("round-trip changed dependency count: %d -> %d", wantEdges, gotEdges)
		}
	})
}
