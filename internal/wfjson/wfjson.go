// Package wfjson reads and writes a pragmatic subset of the WfCommons
// WfFormat (the JSON successor of the Pegasus DAX traces this paper's
// generation of papers used): a workflow object with a task
// specification (ids, parents/children, input/output files) and an
// execution section carrying measured runtimes.
//
// Supported subset: schemaVersion, workflow.specification.tasks[],
// workflow.specification.files[], workflow.execution.tasks[] with
// runtimeInSeconds. Everything else round-trips through writers as
// omitted fields.
package wfjson

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"reassign/internal/dag"
)

// Document is the top-level WfFormat object.
type Document struct {
	Name          string   `json:"name"`
	SchemaVersion string   `json:"schemaVersion"`
	Workflow      Workflow `json:"workflow"`
}

// Workflow splits static structure from measured execution.
type Workflow struct {
	Specification Specification `json:"specification"`
	Execution     Execution     `json:"execution"`
}

// Specification is the static task graph.
type Specification struct {
	Tasks []SpecTask `json:"tasks"`
	Files []SpecFile `json:"files,omitempty"`
}

// SpecTask is one task of the specification.
type SpecTask struct {
	Name        string   `json:"name"`
	ID          string   `json:"id"`
	Parents     []string `json:"parents"`
	Children    []string `json:"children"`
	InputFiles  []string `json:"inputFiles,omitempty"`
	OutputFiles []string `json:"outputFiles,omitempty"`
}

// SpecFile declares a file and its size.
type SpecFile struct {
	ID          string `json:"id"`
	SizeInBytes int64  `json:"sizeInBytes"`
}

// Execution carries per-task measurements.
type Execution struct {
	Tasks []ExecTask `json:"tasks"`
}

// ExecTask is one task's measured execution.
type ExecTask struct {
	ID               string  `json:"id"`
	RuntimeInSeconds float64 `json:"runtimeInSeconds"`
}

// Decode converts a parsed document into a dag workflow.
func Decode(doc *Document) (*dag.Workflow, error) {
	if len(doc.Workflow.Specification.Tasks) == 0 {
		return nil, fmt.Errorf("wfjson: document %q has no tasks", doc.Name)
	}
	name := doc.Name
	if name == "" {
		name = "workflow"
	}
	runtimes := make(map[string]float64, len(doc.Workflow.Execution.Tasks))
	for _, et := range doc.Workflow.Execution.Tasks {
		if et.RuntimeInSeconds < 0 {
			return nil, fmt.Errorf("wfjson: task %q has negative runtime", et.ID)
		}
		runtimes[et.ID] = et.RuntimeInSeconds
	}
	sizes := make(map[string]int64, len(doc.Workflow.Specification.Files))
	for _, f := range doc.Workflow.Specification.Files {
		sizes[f.ID] = f.SizeInBytes
	}
	w := dag.New(name)
	for _, st := range doc.Workflow.Specification.Tasks {
		rt, ok := runtimes[st.ID]
		if !ok {
			return nil, fmt.Errorf("wfjson: task %q has no execution runtime", st.ID)
		}
		a, err := w.Add(st.ID, st.Name, rt)
		if err != nil {
			return nil, fmt.Errorf("wfjson: %w", err)
		}
		for _, fid := range st.InputFiles {
			a.Inputs = append(a.Inputs, dag.File{Name: fid, Size: sizes[fid]})
		}
		for _, fid := range st.OutputFiles {
			a.Outputs = append(a.Outputs, dag.File{Name: fid, Size: sizes[fid]})
		}
	}
	// Edges from the children lists; parents lists are validated for
	// consistency.
	for _, st := range doc.Workflow.Specification.Tasks {
		for _, c := range st.Children {
			if err := w.AddDep(st.ID, c); err != nil {
				return nil, fmt.Errorf("wfjson: %w", err)
			}
		}
	}
	for _, st := range doc.Workflow.Specification.Tasks {
		for _, p := range st.Parents {
			if !w.HasDep(p, st.ID) {
				return nil, fmt.Errorf("wfjson: task %q lists parent %q but %q has no matching child entry",
					st.ID, p, p)
			}
		}
	}
	if err := w.Validate(); err != nil {
		return nil, fmt.Errorf("wfjson: %w", err)
	}
	return w, nil
}

// Encode converts a dag workflow into a WfFormat document.
func Encode(w *dag.Workflow) *Document {
	doc := &Document{
		Name:          w.Name,
		SchemaVersion: "1.4",
	}
	fileSizes := make(map[string]int64)
	for _, a := range w.Activations() {
		st := SpecTask{
			Name:     a.Activity,
			ID:       a.ID,
			Parents:  []string{},
			Children: []string{},
		}
		for _, p := range a.Parents() {
			st.Parents = append(st.Parents, p.ID)
		}
		for _, c := range a.Children() {
			st.Children = append(st.Children, c.ID)
		}
		sort.Strings(st.Parents)
		sort.Strings(st.Children)
		for _, f := range a.Inputs {
			st.InputFiles = append(st.InputFiles, f.Name)
			fileSizes[f.Name] = f.Size
		}
		for _, f := range a.Outputs {
			st.OutputFiles = append(st.OutputFiles, f.Name)
			fileSizes[f.Name] = f.Size
		}
		doc.Workflow.Specification.Tasks = append(doc.Workflow.Specification.Tasks, st)
		doc.Workflow.Execution.Tasks = append(doc.Workflow.Execution.Tasks, ExecTask{
			ID:               a.ID,
			RuntimeInSeconds: a.Runtime,
		})
	}
	ids := make([]string, 0, len(fileSizes))
	for id := range fileSizes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		doc.Workflow.Specification.Files = append(doc.Workflow.Specification.Files,
			SpecFile{ID: id, SizeInBytes: fileSizes[id]})
	}
	return doc
}

// Read parses a WfFormat JSON stream into a workflow.
func Read(r io.Reader) (*dag.Workflow, error) {
	var doc Document
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("wfjson: decode: %w", err)
	}
	return Decode(&doc)
}

// Write serialises a workflow as WfFormat JSON.
func Write(w io.Writer, wf *dag.Workflow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(Encode(wf))
}

// ReadFile parses the WfFormat file at path.
func ReadFile(path string) (*dag.Workflow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// WriteFile serialises a workflow to the WfFormat file at path.
func WriteFile(path string, wf *dag.Workflow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, wf); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
