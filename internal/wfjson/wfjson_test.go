package wfjson

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"reassign/internal/dag"
	"reassign/internal/trace"
)

const sampleDoc = `{
 "name": "tiny",
 "schemaVersion": "1.4",
 "workflow": {
  "specification": {
   "tasks": [
    {"name": "extract", "id": "t1", "parents": [], "children": ["t2"],
     "outputFiles": ["f1"]},
    {"name": "transform", "id": "t2", "parents": ["t1"], "children": [],
     "inputFiles": ["f1"]}
   ],
   "files": [{"id": "f1", "sizeInBytes": 2048}]
  },
  "execution": {
   "tasks": [
    {"id": "t1", "runtimeInSeconds": 12.5},
    {"id": "t2", "runtimeInSeconds": 30}
   ]
  }
 }
}`

func TestReadSample(t *testing.T) {
	w, err := Read(strings.NewReader(sampleDoc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "tiny" || w.Len() != 2 {
		t.Fatalf("name=%q len=%d", w.Name, w.Len())
	}
	t1 := w.Get("t1")
	if t1.Activity != "extract" || t1.Runtime != 12.5 {
		t.Fatalf("t1 = %+v", t1)
	}
	if !w.HasDep("t1", "t2") {
		t.Fatal("edge missing")
	}
	t2 := w.Get("t2")
	if len(t2.Inputs) != 1 || t2.Inputs[0].Size != 2048 {
		t.Fatalf("t2 inputs = %v", t2.Inputs)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not json": "nope",
		"empty":    `{"name":"x","workflow":{}}`,
		"missing runtime": `{"name":"x","workflow":{"specification":{"tasks":[
			{"name":"a","id":"t1","parents":[],"children":[]}]},"execution":{"tasks":[]}}}`,
		"negative runtime": `{"name":"x","workflow":{"specification":{"tasks":[
			{"name":"a","id":"t1","parents":[],"children":[]}]},
			"execution":{"tasks":[{"id":"t1","runtimeInSeconds":-1}]}}}`,
		"unknown child": `{"name":"x","workflow":{"specification":{"tasks":[
			{"name":"a","id":"t1","parents":[],"children":["ghost"]}]},
			"execution":{"tasks":[{"id":"t1","runtimeInSeconds":1}]}}}`,
		"inconsistent parents": `{"name":"x","workflow":{"specification":{"tasks":[
			{"name":"a","id":"t1","parents":[],"children":[]},
			{"name":"b","id":"t2","parents":["t1"],"children":[]}]},
			"execution":{"tasks":[{"id":"t1","runtimeInSeconds":1},{"id":"t2","runtimeInSeconds":1}]}}}`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("case %q accepted", name)
		}
	}
}

func TestDefaultName(t *testing.T) {
	doc := strings.Replace(sampleDoc, `"name": "tiny",`, "", 1)
	w, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "workflow" {
		t.Fatalf("name = %q", w.Name)
	}
}

func equalWorkflows(a, b *dag.Workflow) bool {
	if a.Len() != b.Len() || a.Edges() != b.Edges() {
		return false
	}
	for _, aa := range a.Activations() {
		bb := b.Get(aa.ID)
		if bb == nil || bb.Activity != aa.Activity || bb.Runtime != aa.Runtime {
			return false
		}
		if len(aa.Inputs) != len(bb.Inputs) || len(aa.Outputs) != len(bb.Outputs) {
			return false
		}
		for _, c := range aa.Children() {
			if !b.HasDep(aa.ID, c.ID) {
				return false
			}
		}
	}
	return true
}

func TestRoundTripMontage(t *testing.T) {
	w := trace.Montage50(rand.New(rand.NewSource(1)))
	var buf bytes.Buffer
	if err := Write(&buf, w); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWorkflows(w, got) {
		t.Fatal("round trip changed the workflow")
	}
}

func TestFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wf.json")
	w := trace.CyberShake(rand.New(rand.NewSource(2)), 40)
	if err := WriteFile(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !equalWorkflows(w, got) {
		t.Fatal("file round trip changed the workflow")
	}
	if _, err := ReadFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file read")
	}
}

func TestEncodeDeterministic(t *testing.T) {
	w := trace.Montage(rand.New(rand.NewSource(3)), 4, 2)
	var a, b bytes.Buffer
	if err := Write(&a, w); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, w); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("encoding not deterministic")
	}
	// Parents/children sorted.
	doc := Encode(w)
	for _, st := range doc.Workflow.Specification.Tasks {
		for i := 1; i < len(st.Parents); i++ {
			if st.Parents[i-1] > st.Parents[i] {
				t.Fatalf("parents unsorted: %v", st.Parents)
			}
		}
	}
}

// Property: all generated families round-trip through WfFormat.
func TestPropertyRoundTripFamilies(t *testing.T) {
	f := func(seed int64, size uint8, famIdx uint8) bool {
		fams := trace.Families()
		fam := fams[int(famIdx)%len(fams)]
		w := trace.Named(fam)(rand.New(rand.NewSource(seed)), int(size)%60+10)
		var buf bytes.Buffer
		if err := Write(&buf, w); err != nil {
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			return false
		}
		return equalWorkflows(w, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
