package api

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"io"
	"math"

	"reassign/internal/cloud"
	"reassign/internal/dag"
)

// StructureSignature fingerprints a learning problem: the workflow's
// structure (activation IDs, activities, reference runtimes and
// dependency edges, all in index order) and the fleet's shape (VM IDs
// and types, in order). Two submissions with equal signatures define
// the same Q-table geometry and the same execution-time estimates, so
// a table learned for one warm-starts the other — the key of the
// daemon's cross-run continuation cache.
//
// The signature deliberately ignores the workflow's display name and
// every learning parameter: a Montage DAG resubmitted under a new
// name with different ε still hits the cache, while adding one edge
// or swapping a VM type misses.
func StructureSignature(w *dag.Workflow, fleet *cloud.Fleet) string {
	h := sha256.New()
	writeInt(h, int64(w.Len()))
	for _, a := range w.Activations() {
		io.WriteString(h, a.ID)
		h.Write([]byte{0})
		io.WriteString(h, a.Activity)
		h.Write([]byte{0})
		writeFloat(h, a.Runtime)
		writeInt(h, int64(len(a.Parents())))
		for _, p := range a.Parents() {
			writeInt(h, int64(p.Index))
		}
	}
	writeInt(h, int64(fleet.Len()))
	for _, vm := range fleet.VMs {
		writeInt(h, int64(vm.ID))
		io.WriteString(h, vm.Type.Name)
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func writeInt(h hash.Hash, v int64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(v))
	h.Write(buf[:])
}

func writeFloat(h hash.Hash, v float64) {
	writeInt(h, int64(math.Float64bits(v)))
}
