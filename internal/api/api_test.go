package api

import (
	"encoding/json"
	"errors"
	"math/rand"
	"net/http"
	"testing"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/trace"
)

func TestWorkflowSpecBuild(t *testing.T) {
	// Synthetic builds are deterministic per (family, nodes, seed).
	spec := WorkflowSpec{Synthetic: &SyntheticSpec{Family: "montage", Nodes: 40, Seed: 9}}
	w1, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	w2, _ := spec.Build()
	if w1.Len() != w2.Len() || w1.Len() == 0 {
		t.Fatalf("synthetic build not stable: %d vs %d", w1.Len(), w2.Len())
	}

	// Malformed DAX surfaces a typed 400 error naming the field.
	_, err = WorkflowSpec{Format: "dax", Source: "<not xml"}.Build()
	var apiErr *Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *api.Error, got %T: %v", err, err)
	}
	if apiErr.Field != "workflow" || apiErr.HTTPStatus() != http.StatusBadRequest {
		t.Fatalf("unexpected error %+v status %d", apiErr, apiErr.HTTPStatus())
	}

	if _, err := (WorkflowSpec{}).Build(); err == nil {
		t.Fatal("empty spec should fail")
	}
	if _, err := (WorkflowSpec{Format: "synthetic", Synthetic: &SyntheticSpec{Family: "nope"}}).Build(); err == nil {
		t.Fatal("unknown family should fail")
	}
}

func TestFleetSpecBuild(t *testing.T) {
	f, err := FleetSpec{}.Build() // default: table1, 16 vCPUs
	if err != nil {
		t.Fatal(err)
	}
	if f.VCPUs() != 16 {
		t.Fatalf("default fleet has %d vCPUs, want 16", f.VCPUs())
	}
	f, err = FleetSpec{Preset: "scaled", VCPUs: 64}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.VCPUs() != 64 {
		t.Fatalf("scaled fleet has %d vCPUs, want 64", f.VCPUs())
	}
	f, err = FleetSpec{Types: []VMCount{{Type: "t2.large", Count: 3}}}.Build()
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 {
		t.Fatalf("custom fleet has %d VMs, want 3", f.Len())
	}
	var apiErr *Error
	if _, err := (FleetSpec{VCPUs: 48}).Build(); !errors.As(err, &apiErr) || apiErr.Field != "fleet" {
		t.Fatalf("bad vcpus: want fleet-field error, got %v", err)
	}
	if _, err := (FleetSpec{Types: []VMCount{{Type: "m5.nope", Count: 1}}}).Build(); err == nil {
		t.Fatal("unknown type should fail")
	}
}

func TestStructureSignature(t *testing.T) {
	fleet16, _ := cloud.FleetTable1(16)
	fleet32, _ := cloud.FleetTable1(32)
	w := func(seed int64, nodes int) *SyntheticSpec {
		return &SyntheticSpec{Family: "montage", Nodes: nodes, Seed: seed}
	}
	build := func(s *SyntheticSpec) string {
		wf, err := WorkflowSpec{Synthetic: s}.Build()
		if err != nil {
			t.Fatal(err)
		}
		return StructureSignature(wf, fleet16)
	}
	if build(w(1, 50)) != build(w(1, 50)) {
		t.Fatal("equal structures must share a signature")
	}
	if build(w(1, 50)) == build(w(2, 50)) {
		t.Fatal("different runtimes must change the signature")
	}
	if build(w(1, 50)) == build(w(1, 60)) {
		t.Fatal("different sizes must change the signature")
	}
	wf, _ := WorkflowSpec{Synthetic: w(1, 50)}.Build()
	if StructureSignature(wf, fleet16) == StructureSignature(wf, fleet32) {
		t.Fatal("different fleets must change the signature")
	}
}

func TestPlanDocumentRoundTrip(t *testing.T) {
	w := trace.MontageN(rand.New(rand.NewSource(1)), 10)
	m := make(map[string]int)
	for i, a := range w.Activations() {
		m[a.ID] = i % 3
	}
	plan := core.NewPlan(m)
	doc := NewPlanDocument(w.Name, "table1-16vcpu", 123.5, plan)

	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	var back PlanDocument
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.SchemaVersion != SchemaVersion || back.Plan.Len() != plan.Len() {
		t.Fatalf("round trip lost data: %+v", back)
	}
	// Marshal→unmarshal→marshal is byte-stable (deterministic plans).
	data2, _ := json.Marshal(&back)
	if string(data) != string(data2) {
		t.Fatalf("document encoding unstable:\n%s\n%s", data, data2)
	}

	// Legacy bare entry array.
	legacyArr, _ := json.Marshal(plan)
	var fromArr PlanDocument
	if err := json.Unmarshal(legacyArr, &fromArr); err != nil {
		t.Fatal(err)
	}
	if fromArr.Plan.Len() != plan.Len() {
		t.Fatalf("legacy array lost entries: %d", fromArr.Plan.Len())
	}

	// Legacy {"activation": vm} object.
	legacyMap, _ := json.Marshal(m)
	var fromMap PlanDocument
	if err := json.Unmarshal(legacyMap, &fromMap); err != nil {
		t.Fatal(err)
	}
	if fromMap.Plan.Len() != plan.Len() {
		t.Fatalf("legacy map lost entries: %d", fromMap.Plan.Len())
	}

	// Unsupported version is rejected.
	var bad PlanDocument
	if err := json.Unmarshal([]byte(`{"schema_version":"v9","plan":[]}`), &bad); err == nil {
		t.Fatal("v9 document should be rejected")
	}
}

func TestErrorMapping(t *testing.T) {
	// Plan.Validate failures carry structured field/reason and map to
	// 400, not 500.
	w := trace.MontageN(rand.New(rand.NewSource(1)), 5)
	fleet, _ := cloud.FleetTable1(16)
	m := make(map[string]int)
	for _, a := range w.Activations() {
		m[a.ID] = 999 // not in the fleet
	}
	err := core.NewPlan(m).Validate(w, fleet)
	if err == nil {
		t.Fatal("expected validation failure")
	}
	apiErr := FromError(err)
	if apiErr.Code != CodeInvalidPlan {
		t.Fatalf("code = %q, want %q", apiErr.Code, CodeInvalidPlan)
	}
	if apiErr.Field == "plan" || apiErr.Field == "" {
		t.Fatalf("field should name the offending entry, got %q", apiErr.Field)
	}
	if apiErr.HTTPStatus() != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", apiErr.HTTPStatus())
	}

	// Internal errors map to 500.
	if s := FromError(errors.New("boom")).HTTPStatus(); s != http.StatusInternalServerError {
		t.Fatalf("internal error status = %d, want 500", s)
	}
	// Typed errors pass through.
	orig := Errorf(CodeQueueFull, "", "queue full")
	if FromError(orig) != orig {
		t.Fatal("typed error should pass through")
	}
	if orig.HTTPStatus() != http.StatusTooManyRequests {
		t.Fatalf("queue_full status = %d, want 429", orig.HTTPStatus())
	}
	if CheckSchemaVersion("v1") != nil || CheckSchemaVersion("") != nil {
		t.Fatal("v1 and empty versions must be accepted")
	}
	if CheckSchemaVersion("v2") == nil {
		t.Fatal("v2 must be rejected")
	}
}
