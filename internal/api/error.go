package api

import (
	"errors"
	"fmt"
	"net/http"

	"reassign/internal/core"
)

// Error codes carried on the wire. The HTTP status is derived from
// the code (HTTPStatus), never stored, so a document stays valid
// wherever it travels.
const (
	// CodeBadRequest marks a malformed or semantically invalid
	// request (unparsable document, unknown format, bad parameters).
	CodeBadRequest = "bad_request"
	// CodeInvalidPlan marks a plan that failed structural validation
	// against its workflow and fleet.
	CodeInvalidPlan = "invalid_plan"
	// CodeNotFound marks an unknown job ID.
	CodeNotFound = "not_found"
	// CodeQueueFull marks an admission-queue rejection; clients
	// should back off and retry.
	CodeQueueFull = "queue_full"
	// CodeTooLarge marks a request body over the daemon's byte bound;
	// clients should shrink the document, not retry.
	CodeTooLarge = "too_large"
	// CodeConflict marks an operation invalid in the job's current
	// state (e.g. cancelling a finished job).
	CodeConflict = "conflict"
	// CodeCanceled marks a job canceled before completion.
	CodeCanceled = "canceled"
	// CodeUnavailable marks a daemon that is shutting down.
	CodeUnavailable = "unavailable"
	// CodeInternal marks a server-side failure (learning or execution
	// error on well-formed input).
	CodeInternal = "internal"
)

// Error is the typed wire error: a machine-readable code, the field
// (or plan entry) at fault when the error is input-specific, and a
// human-readable reason. It implements error so server code can
// return it through ordinary error paths.
type Error struct {
	Code   string `json:"code"`
	Field  string `json:"field,omitempty"`
	Reason string `json:"reason"`
}

// Error implements the error interface.
func (e *Error) Error() string {
	if e.Field != "" {
		return fmt.Sprintf("%s (%s): %s", e.Code, e.Field, e.Reason)
	}
	return fmt.Sprintf("%s: %s", e.Code, e.Reason)
}

// HTTPStatus maps the error code to a response status: client errors
// (malformed input, invalid plans) are 4xx, server-side failures 500.
func (e *Error) HTTPStatus() int {
	switch e.Code {
	case CodeBadRequest, CodeInvalidPlan:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeQueueFull:
		return http.StatusTooManyRequests
	case CodeTooLarge:
		return http.StatusRequestEntityTooLarge
	case CodeConflict:
		return http.StatusConflict
	case CodeUnavailable:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// Errorf builds an Error with a formatted reason.
func Errorf(code, field, format string, args ...any) *Error {
	return &Error{Code: code, Field: field, Reason: fmt.Sprintf(format, args...)}
}

// FromError converts an arbitrary error into a wire Error:
//
//   - an *Error passes through unchanged,
//   - a *core.PlanError becomes CodeInvalidPlan carrying the
//     offending plan entry as Field (→ 400, not 500: an invalid plan
//     is the client's input, not a server fault),
//   - anything else becomes CodeInternal (→ 500).
func FromError(err error) *Error {
	if err == nil {
		return nil
	}
	var apiErr *Error
	if errors.As(err, &apiErr) {
		return apiErr
	}
	var planErr *core.PlanError
	if errors.As(err, &planErr) {
		field := "plan"
		if planErr.Activation != "" {
			field = "plan." + planErr.Activation
		}
		return &Error{Code: CodeInvalidPlan, Field: field, Reason: planErr.Reason}
	}
	return &Error{Code: CodeInternal, Reason: err.Error()}
}
