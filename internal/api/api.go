// Package api is the canonical wire schema of the scheduler service:
// the request/response and fleet/workflow specification types that
// every client-facing surface shares. The schedd daemon's HTTP/JSON
// payloads, the schedload generator's requests and the reassign CLI's
// plan files all round-trip through these types, so a plan written by
// one tool is byte-compatible input for the others.
//
// The schema is versioned: every document carries a SchemaVersion
// ("v1"). Adding optional fields is a compatible change within a
// version; renaming or retyping a field requires a new version.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"strings"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/dag"
	"reassign/internal/dax"
	"reassign/internal/provenance"
	"reassign/internal/trace"
	"reassign/internal/wfjson"
)

// SchemaVersion is the current wire-schema version. Documents with an
// empty schema_version are treated as this version.
const SchemaVersion = "v1"

// CheckSchemaVersion accepts the empty string (assume current) and
// the current version, and rejects everything else with a typed
// *Error so HTTP handlers map it to 400.
func CheckSchemaVersion(v string) error {
	if v == "" || v == SchemaVersion {
		return nil
	}
	return &Error{
		Code:   CodeBadRequest,
		Field:  "schema_version",
		Reason: fmt.Sprintf("unsupported schema version %q (want %q)", v, SchemaVersion),
	}
}

// WorkflowSpec describes the workflow to schedule. Exactly one of the
// three forms is used: an inline DAX XML document (Format "dax"), an
// inline WfCommons/WfFormat JSON document (Format "wfjson"), or a
// synthetic generated workflow (Format "synthetic" with Synthetic
// set).
type WorkflowSpec struct {
	// Format is "dax", "wfjson" or "synthetic". Empty defaults to
	// "synthetic" when Synthetic is set, else it is an error.
	Format string `json:"format,omitempty"`
	// Source is the inline workflow document for dax/wfjson.
	Source string `json:"source,omitempty"`
	// Synthetic describes a generated workflow.
	Synthetic *SyntheticSpec `json:"synthetic,omitempty"`
}

// SyntheticSpec requests one of the built-in Pegasus-shaped workflow
// generators (package trace).
type SyntheticSpec struct {
	// Family is "montage" (default), "cybershake", "epigenomics",
	// "inspiral" or "sipht".
	Family string `json:"family,omitempty"`
	// Nodes is the approximate activation count (default 50).
	Nodes int `json:"nodes,omitempty"`
	// Seed drives the generator's runtime randomness. Two specs with
	// equal family, nodes and seed build identical workflows.
	Seed int64 `json:"seed,omitempty"`
}

// Build parses or generates the workflow. Errors are typed *Error
// with Field "workflow" so handlers map them to 400.
func (s WorkflowSpec) Build() (*dag.Workflow, error) {
	format := s.Format
	if format == "" && s.Synthetic != nil {
		format = "synthetic"
	}
	fail := func(reason string) (*dag.Workflow, error) {
		return nil, &Error{Code: CodeBadRequest, Field: "workflow", Reason: reason}
	}
	switch format {
	case "dax":
		if strings.TrimSpace(s.Source) == "" {
			return fail("dax workflow needs a non-empty source document")
		}
		w, err := dax.Read(strings.NewReader(s.Source))
		if err != nil {
			return fail(err.Error())
		}
		return w, nil
	case "wfjson":
		if strings.TrimSpace(s.Source) == "" {
			return fail("wfjson workflow needs a non-empty source document")
		}
		w, err := wfjson.Read(strings.NewReader(s.Source))
		if err != nil {
			return fail(err.Error())
		}
		return w, nil
	case "synthetic":
		spec := s.Synthetic
		if spec == nil {
			spec = &SyntheticSpec{}
		}
		nodes := spec.Nodes
		if nodes <= 0 {
			nodes = 50
		}
		rng := rand.New(rand.NewSource(spec.Seed))
		switch strings.ToLower(spec.Family) {
		case "", "montage":
			return trace.MontageN(rng, nodes), nil
		case "cybershake":
			return trace.CyberShake(rng, nodes), nil
		case "epigenomics":
			return trace.Epigenomics(rng, nodes), nil
		case "inspiral":
			return trace.Inspiral(rng, nodes), nil
		case "sipht":
			return trace.Sipht(rng, nodes), nil
		default:
			return fail(fmt.Sprintf("unknown synthetic family %q", spec.Family))
		}
	case "":
		return fail("workflow spec needs a format (dax, wfjson or synthetic)")
	default:
		return fail(fmt.Sprintf("unknown workflow format %q", format))
	}
}

// VMCount provisions Count VMs of the named catalogue type.
type VMCount struct {
	Type  string `json:"type"`
	Count int    `json:"count"`
}

// FleetSpec describes the VM fleet to schedule onto: either a named
// preset ("table1", the paper's Table I, or "scaled", its replicated
// large-fleet extension) sized by total vCPUs, or an explicit list of
// catalogue types and counts.
type FleetSpec struct {
	// Preset is "table1" (default) or "scaled"; ignored when Types is
	// set.
	Preset string `json:"preset,omitempty"`
	// VCPUs sizes the preset (default 16). table1 accepts 16/32/64,
	// scaled any positive multiple of 16.
	VCPUs int `json:"vcpus,omitempty"`
	// Types builds a custom fleet instead of a preset.
	Types []VMCount `json:"types,omitempty"`
}

// Build provisions the fleet. Errors are typed *Error with Field
// "fleet" so handlers map them to 400.
func (s FleetSpec) Build() (*cloud.Fleet, error) {
	fail := func(reason string) (*cloud.Fleet, error) {
		return nil, &Error{Code: CodeBadRequest, Field: "fleet", Reason: reason}
	}
	if len(s.Types) > 0 {
		types := make([]cloud.VMType, len(s.Types))
		counts := make([]int, len(s.Types))
		for i, tc := range s.Types {
			t, ok := cloud.TypeByName(tc.Type)
			if !ok {
				return fail(fmt.Sprintf("unknown VM type %q", tc.Type))
			}
			types[i] = t
			counts[i] = tc.Count
		}
		fleet, err := cloud.NewFleet("custom", types, counts)
		if err != nil {
			return fail(err.Error())
		}
		return fleet, nil
	}
	vcpus := s.VCPUs
	if vcpus == 0 {
		vcpus = 16
	}
	var fleet *cloud.Fleet
	var err error
	switch strings.ToLower(s.Preset) {
	case "", "table1":
		fleet, err = cloud.FleetTable1(vcpus)
	case "scaled":
		fleet, err = cloud.FleetScaled(vcpus)
	default:
		return fail(fmt.Sprintf("unknown fleet preset %q", s.Preset))
	}
	if err != nil {
		return fail(err.Error())
	}
	return fleet, nil
}

// LearnSpec carries the learning parameters of a submission. Zero
// values mean the paper defaults (α=0.5, γ=1.0, ε=0.1, 100 episodes,
// 1 replica).
type LearnSpec struct {
	Episodes int     `json:"episodes,omitempty"`
	Replicas int     `json:"replicas,omitempty"`
	Alpha    float64 `json:"alpha,omitempty"`
	Gamma    float64 `json:"gamma,omitempty"`
	Epsilon  float64 `json:"epsilon,omitempty"`
}

// MarketSpec asks the daemon to execute the job's plan over a
// generated spot-market trace: spot prices, preemption notices and
// kills, and node-health degradations follow the named regime
// deterministically from the seed. Requires Execute; the job's
// status gains the run's traced bill and preemption count, and the
// daemon's /metrics gains per-provider market series.
type MarketSpec struct {
	// Regime names the market weather: "stable", "volatile" or
	// "hostile".
	Regime string `json:"regime"`
	// Seed drives trace generation (default: the submission Seed
	// offset by a fixed constant, so learning and market draws stay
	// independent).
	Seed int64 `json:"seed,omitempty"`
	// Horizon bounds the trace in virtual seconds (default 3600).
	Horizon float64 `json:"horizon,omitempty"`
	// ReactiveOnly disables the notice-reactive cordon/drain policy:
	// the master reacts to kills only (the baseline in the frontier
	// study).
	ReactiveOnly bool `json:"reactive_only,omitempty"`
}

// SubmitRequest is the POST /v1/jobs payload: schedule Workflow onto
// Fleet, either by learning a plan (the default) or by validating and
// replaying a submitted Plan.
type SubmitRequest struct {
	SchemaVersion string       `json:"schema_version"`
	Workflow      WorkflowSpec `json:"workflow"`
	Fleet         FleetSpec    `json:"fleet"`
	Learn         LearnSpec    `json:"learn"`
	// Tenant labels the submitting tenant for multi-tenant accounting:
	// the daemon tracks per-tenant queued/running gauges, completion
	// counters and latency percentiles under this label in /metrics.
	// Empty submissions are accounted under "default". The label does
	// not affect scheduling or admission — lanes are fairness
	// *measurement*, not enforcement (enforcement is future work).
	Tenant string `json:"tenant,omitempty"`
	// DeadlineSeconds is an optional SLA hint: the submitter wants the
	// job finished within this many wall-clock seconds of submission.
	// The daemon records a per-tenant deadline hit or miss when the job
	// reaches a terminal state; it never rejects or reorders on it.
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	// Seed drives Q initialisation, exploration and fluctuation draws.
	// Two submissions differing only in unrelated daemon state return
	// bit-identical plans for equal seeds (given NoWarmStart).
	Seed int64 `json:"seed,omitempty"`
	// Fluctuation enables the cloud fluctuation model in the learning
	// simulator.
	Fluctuation bool `json:"fluctuation,omitempty"`
	// NoWarmStart bypasses the daemon's Q-table cache: learning starts
	// from random initialisation even when a table for this workflow
	// structure is cached. Use it for reproducibility studies.
	NoWarmStart bool `json:"no_warm_start,omitempty"`
	// Execute runs the extracted plan on the virtual-time execution
	// master after learning and attaches provenance to the job.
	Execute bool `json:"execute,omitempty"`
	// Market replays a generated spot-market trace during execution
	// (requires Execute).
	Market *MarketSpec `json:"market,omitempty"`
	// Plan, when set, skips learning: the plan is validated against
	// the workflow and fleet (400 on mismatch) and replayed for its
	// simulated makespan.
	Plan *PlanDocument `json:"plan,omitempty"`
}

// Job states reported by JobStatus.State.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// JobStatus is the daemon's job representation: returned by submit
// (202), status (200) and cancel.
type JobStatus struct {
	SchemaVersion string `json:"schema_version"`
	ID            string `json:"id"`
	State         string `json:"state"`

	Workflow    string `json:"workflow,omitempty"`
	Activations int    `json:"activations,omitempty"`
	Fleet       string `json:"fleet,omitempty"`
	VMs         int    `json:"vms,omitempty"`

	// Tenant echoes the submission's tenant label ("" when none was
	// given); DeadlineSeconds its SLA hint. DeadlineMissed is set on
	// finished jobs that carried a deadline and overran it.
	Tenant          string  `json:"tenant,omitempty"`
	DeadlineSeconds float64 `json:"deadline_seconds,omitempty"`
	DeadlineMissed  bool    `json:"deadline_missed,omitempty"`

	SubmittedAt string `json:"submitted_at,omitempty"`
	StartedAt   string `json:"started_at,omitempty"`
	FinishedAt  string `json:"finished_at,omitempty"`
	// LatencySeconds is submit→finish, set on finished jobs.
	LatencySeconds float64 `json:"latency_seconds,omitempty"`

	// Episodes is the number of learning episodes run; CacheHit
	// reports whether learning warm-started from the daemon's Q-table
	// cache.
	Episodes        int     `json:"episodes,omitempty"`
	CacheHit        bool    `json:"cache_hit,omitempty"`
	LearningSeconds float64 `json:"learning_seconds,omitempty"`

	// Plan is the extracted (or replayed) plan with its simulated
	// makespan; byte-compatible with reassign -planin/-planout files.
	Plan *PlanDocument `json:"plan,omitempty"`

	// Provenance holds per-activation execution records when the job
	// was submitted with Execute; ExecMakespanSeconds its makespan.
	Provenance          []provenance.Execution `json:"provenance,omitempty"`
	ExecMakespanSeconds float64                `json:"exec_makespan_seconds,omitempty"`

	// Market execution results (submissions with Market only):
	// MarketCostUSD is the run's bill against the traced prices and
	// Preemptions the traced kills executed on live VMs.
	MarketCostUSD float64 `json:"market_cost_usd,omitempty"`
	Preemptions   int     `json:"preemptions,omitempty"`

	Error *Error `json:"error,omitempty"`
}

// PlanDocument is the versioned on-the-wire (and on-disk) form of a
// scheduling plan: the document written by `reassign -plan x.json`,
// accepted by `reassign -planin` and POST /v1/jobs, and returned in
// JobStatus. Legacy files — a bare entry array or a {"activation":
// vm} object — still decode.
type PlanDocument struct {
	SchemaVersion string `json:"schema_version"`
	// Workflow and Fleet name the inputs the plan was computed for
	// (informational; validation is structural).
	Workflow string `json:"workflow,omitempty"`
	Fleet    string `json:"fleet,omitempty"`
	// MakespanSeconds is the plan's simulated makespan.
	MakespanSeconds float64 `json:"makespan_seconds,omitempty"`
	// Plan is the activation→VM assignment.
	Plan core.Plan `json:"plan"`
}

// NewPlanDocument wraps a plan in the current schema version.
func NewPlanDocument(workflow, fleet string, makespan float64, plan core.Plan) *PlanDocument {
	return &PlanDocument{
		SchemaVersion:   SchemaVersion,
		Workflow:        workflow,
		Fleet:           fleet,
		MakespanSeconds: makespan,
		Plan:            plan,
	}
}

// UnmarshalJSON decodes the versioned document form as well as the
// two legacy plan encodings: a bare entry array ([{"activation":...,
// "vm":...}]) and a plain {"activation": vm} object.
func (d *PlanDocument) UnmarshalJSON(data []byte) error {
	trimmed := bytes.TrimLeft(data, " \t\r\n")
	if len(trimmed) > 0 && trimmed[0] == '[' {
		var p core.Plan
		if err := json.Unmarshal(data, &p); err != nil {
			return err
		}
		*d = PlanDocument{Plan: p}
		return nil
	}
	type alias PlanDocument
	var a alias
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	if a.SchemaVersion == "" && a.Plan.Len() == 0 {
		// Possibly a legacy {"activation": vm} object; a real map
		// decodes with at least one entry, an empty document stays
		// a document.
		var p core.Plan
		if err := json.Unmarshal(data, &p); err == nil && p.Len() > 0 {
			*d = PlanDocument{Plan: p}
			return nil
		}
	}
	if err := CheckSchemaVersion(a.SchemaVersion); err != nil {
		return err
	}
	*d = PlanDocument(a)
	return nil
}
