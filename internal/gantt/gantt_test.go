package gantt

import (
	"context"
	"encoding/xml"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"reassign/internal/cloud"
	"reassign/internal/core"
	"reassign/internal/engine"
	"reassign/internal/sched"
	"reassign/internal/sim"
	"reassign/internal/trace"
)

func chartFromSim(t testing.TB, seed int64) (*Chart, *sim.Result) {
	rng := rand.New(rand.NewSource(seed))
	w := trace.Montage(rng, 6, 3)
	fleet, err := cloud.FleetTable1(16)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(w, fleet, &sched.HEFT{}, sim.Config{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return FromResult(res, fleet), res
}

func TestFromResult(t *testing.T) {
	c, res := chartFromSim(t, 1)
	if len(c.Spans) != len(res.Records) {
		t.Fatalf("spans = %d, records = %d", len(c.Spans), len(res.Records))
	}
	if c.Makespan() != res.Makespan {
		t.Fatalf("chart makespan %v, sim %v", c.Makespan(), res.Makespan)
	}
	// Spans sorted by VM then start.
	for i := 1; i < len(c.Spans); i++ {
		a, b := c.Spans[i-1], c.Spans[i]
		if a.VMID > b.VMID || (a.VMID == b.VMID && a.Start > b.Start) {
			t.Fatalf("spans unsorted at %d", i)
		}
	}
}

func TestASCIIShape(t *testing.T) {
	c, _ := chartFromSim(t, 2)
	out := c.ASCII(60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + one line per used VM + axis.
	usedVMs := map[int]bool{}
	for _, s := range c.Spans {
		usedVMs[s.VMID] = true
	}
	if len(lines) != 1+len(usedVMs)+1 {
		t.Fatalf("lines = %d, want %d:\n%s", len(lines), 2+len(usedVMs), out)
	}
	if !strings.Contains(lines[0], "makespan") {
		t.Fatalf("header = %q", lines[0])
	}
	// Utilisation percentages present and bounded.
	for _, l := range lines[1 : len(lines)-1] {
		if !strings.Contains(l, "%") {
			t.Fatalf("row without utilisation: %q", l)
		}
	}
}

func TestASCIIEmpty(t *testing.T) {
	c := &Chart{Title: "empty"}
	if !strings.Contains(c.ASCII(40), "empty schedule") {
		t.Fatal("empty chart not flagged")
	}
}

func TestASCIIMinWidthClamped(t *testing.T) {
	c, _ := chartFromSim(t, 3)
	out := c.ASCII(1) // clamps to 10
	if len(out) == 0 {
		t.Fatal("no output")
	}
}

func TestSVGWellFormed(t *testing.T) {
	c, _ := chartFromSim(t, 4)
	svg := c.SVG()
	if !strings.HasPrefix(svg, "<svg") {
		t.Fatalf("not an svg: %q", svg[:40])
	}
	// Must parse as XML.
	dec := xml.NewDecoder(strings.NewReader(svg))
	rects := 0
	for {
		tok, err := dec.Token()
		if tok == nil {
			break
		}
		if err != nil {
			t.Fatalf("svg not well-formed: %v", err)
		}
		if se, ok := tok.(xml.StartElement); ok && se.Name.Local == "rect" {
			rects++
		}
	}
	if rects != len(c.Spans) {
		t.Fatalf("svg has %d rects, want %d", rects, len(c.Spans))
	}
}

func TestSVGEmpty(t *testing.T) {
	svg := (&Chart{}).SVG()
	if !strings.Contains(svg, "empty schedule") {
		t.Fatal("empty chart not flagged")
	}
	if err := xml.Unmarshal([]byte(svg), new(any)); err != nil {
		t.Fatalf("empty svg not well-formed: %v", err)
	}
}

func TestFromReport(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	w := trace.Montage(rng, 4, 2)
	fleet, _ := cloud.FleetTable1(16)
	res, err := sim.Run(w, fleet, &sched.HEFT{}, sim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	e := &engine.Engine{Workflow: w, Fleet: fleet, Plan: core.NewPlan(res.Plan), TimeScale: 1e-5}
	rep, err := e.Execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	c := FromReport(rep, fleet)
	if len(c.Spans) != w.Len() {
		t.Fatalf("spans = %d", len(c.Spans))
	}
	if !strings.Contains(c.Spans[0].VMLabel, "t2.") {
		t.Fatalf("label missing VM type: %q", c.Spans[0].VMLabel)
	}
	out := c.ASCII(50)
	if !strings.Contains(out, "makespan") {
		t.Fatal("ASCII render broken for reports")
	}
}

func TestActivityColorStable(t *testing.T) {
	a, b := activityColor("mProjectPP"), activityColor("mProjectPP")
	if a != b {
		t.Fatal("colour not stable")
	}
	if !strings.HasPrefix(a, "hsl(") {
		t.Fatalf("colour = %q", a)
	}
}

// Property: for any simulated schedule, ASCII output has bounded line
// lengths and the SVG stays well-formed XML.
func TestPropertyRendersValid(t *testing.T) {
	f := func(seed int64, widthRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		w := trace.MontageN(rng, 25)
		fleet, err := cloud.FleetTable1(16)
		if err != nil {
			return false
		}
		res, err := sim.Run(w, fleet, sched.FCFS{}, sim.Config{Seed: seed})
		if err != nil {
			return false
		}
		c := FromResult(res, fleet)
		width := int(widthRaw)%100 + 10
		out := c.ASCII(width)
		for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
			if len(line) > width+40 {
				return false
			}
		}
		dec := xml.NewDecoder(strings.NewReader(c.SVG()))
		for {
			tok, err := dec.Token()
			if tok == nil {
				break
			}
			if err != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
