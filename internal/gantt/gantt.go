// Package gantt renders schedules as Gantt charts — an ASCII timeline
// for terminals and an SVG for reports — from simulation results or
// execution-engine reports. Rows are VMs; concurrent activations on a
// multi-slot VM stack within the row.
package gantt

import (
	"fmt"
	"html"
	"math"
	"sort"
	"strings"

	"reassign/internal/cloud"
	"reassign/internal/engine"
	"reassign/internal/sim"
)

// Span is one scheduled activation on the chart.
type Span struct {
	VMID     int
	VMLabel  string
	VMSlots  int // execution slots of the VM (for utilisation)
	TaskID   string
	Activity string
	Start    float64
	End      float64
}

// Chart is a set of spans over a common time axis.
type Chart struct {
	Title string
	Spans []Span
}

// FromResult builds a chart from a simulation result.
func FromResult(res *sim.Result, fleet *cloud.Fleet) *Chart {
	c := &Chart{Title: res.Scheduler}
	for _, r := range res.Records {
		if !r.Success {
			continue
		}
		slots := 1
		if r.VMID >= 0 && r.VMID < fleet.Len() {
			slots = fleet.VMs[r.VMID].Type.VCPUs
		}
		c.Spans = append(c.Spans, Span{
			VMID:     r.VMID,
			VMLabel:  fmt.Sprintf("vm%d(%s)", r.VMID, r.VMType),
			VMSlots:  slots,
			TaskID:   r.TaskID,
			Activity: r.Activity,
			Start:    r.StartAt,
			End:      r.FinishAt,
		})
	}
	c.sortSpans()
	return c
}

// FromReport builds a chart from an execution-engine report.
func FromReport(rep *engine.Report, fleet *cloud.Fleet) *Chart {
	c := &Chart{Title: "execution"}
	typeOf := make(map[int]string, fleet.Len())
	for _, vm := range fleet.VMs {
		typeOf[vm.ID] = vm.Type.Name
	}
	slotsOf := make(map[int]int, fleet.Len())
	for _, vm := range fleet.VMs {
		slotsOf[vm.ID] = vm.Type.VCPUs
	}
	for _, t := range rep.Tasks {
		c.Spans = append(c.Spans, Span{
			VMID:     t.VMID,
			VMLabel:  fmt.Sprintf("vm%d(%s)", t.VMID, typeOf[t.VMID]),
			VMSlots:  slotsOf[t.VMID],
			TaskID:   t.TaskID,
			Activity: t.Activity,
			Start:    t.StartAt,
			End:      t.FinishAt,
		})
	}
	c.sortSpans()
	return c
}

func (c *Chart) sortSpans() {
	sort.Slice(c.Spans, func(i, j int) bool {
		if c.Spans[i].VMID != c.Spans[j].VMID {
			return c.Spans[i].VMID < c.Spans[j].VMID
		}
		if c.Spans[i].Start != c.Spans[j].Start {
			return c.Spans[i].Start < c.Spans[j].Start
		}
		return c.Spans[i].TaskID < c.Spans[j].TaskID
	})
}

// Makespan returns the latest span end (0 for an empty chart).
func (c *Chart) Makespan() float64 {
	var end float64
	for _, s := range c.Spans {
		if s.End > end {
			end = s.End
		}
	}
	return end
}

// vmRows groups spans per VM in ID order.
func (c *Chart) vmRows() ([]int, map[int][]Span, map[int]string) {
	rows := make(map[int][]Span)
	labels := make(map[int]string)
	var ids []int
	for _, s := range c.Spans {
		if _, ok := rows[s.VMID]; !ok {
			ids = append(ids, s.VMID)
			labels[s.VMID] = s.VMLabel
		}
		rows[s.VMID] = append(rows[s.VMID], s)
	}
	sort.Ints(ids)
	return ids, rows, labels
}

// ASCII renders the chart as a fixed-width text timeline: one row per
// VM, each column a time bucket, the cell showing how many
// activations overlap that bucket (' ' idle, '1'-'9', '+' for more).
func (c *Chart) ASCII(width int) string {
	if width < 10 {
		width = 10
	}
	end := c.Makespan()
	if end <= 0 || len(c.Spans) == 0 {
		return c.Title + ": (empty schedule)\n"
	}
	ids, rows, labels := c.vmRows()
	labelW := 0
	for _, id := range ids {
		if len(labels[id]) > labelW {
			labelW = len(labels[id])
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s — makespan %.2fs, %d activations on %d VMs\n",
		c.Title, end, len(c.Spans), len(ids))
	bucket := end / float64(width)
	for _, id := range ids {
		fmt.Fprintf(&b, "%-*s |", labelW, labels[id])
		var busy float64
		for col := 0; col < width; col++ {
			t0 := float64(col) * bucket
			t1 := t0 + bucket
			n := 0
			for _, s := range rows[id] {
				if s.Start < t1 && s.End > t0 {
					n++
				}
			}
			switch {
			case n == 0:
				b.WriteByte(' ')
			case n <= 9:
				b.WriteByte(byte('0' + n))
			default:
				b.WriteByte('+')
			}
		}
		slots := 1
		for _, s := range rows[id] {
			busy += s.End - s.Start
			if s.VMSlots > slots {
				slots = s.VMSlots
			}
		}
		fmt.Fprintf(&b, "| %5.1f%%\n", 100*busy/(end*float64(slots)))
	}
	// Time axis.
	fmt.Fprintf(&b, "%-*s |%s|\n", labelW, "", axis(width, end))
	return b.String()
}

// axis renders tick marks for the time scale.
func axis(width int, end float64) string {
	marks := []byte(strings.Repeat("-", width))
	for _, frac := range []float64{0, 0.25, 0.5, 0.75} {
		pos := int(frac * float64(width))
		if pos < width {
			marks[pos] = '+'
		}
	}
	s := string(marks)
	label := fmt.Sprintf(" 0s..%.0fs", end)
	if len(label) < width {
		s = s[:width-len(label)] + label
	}
	return s
}

// activityColor assigns a stable pastel colour per activity name.
func activityColor(activity string) string {
	h := 0
	for _, c := range activity {
		h = (h*31 + int(c)) % 360
	}
	return fmt.Sprintf("hsl(%d, 60%%, 70%%)", h)
}

// SVG renders the chart as a standalone SVG document. Each VM is a
// horizontal lane; slots within a VM stack sub-lanes greedily.
func (c *Chart) SVG() string {
	const (
		laneH   = 18.0
		labelW  = 150.0
		chartW  = 800.0
		padding = 4.0
	)
	end := c.Makespan()
	ids, rows, labels := c.vmRows()
	if end <= 0 || len(ids) == 0 {
		return `<svg xmlns="http://www.w3.org/2000/svg" width="200" height="40">` +
			`<text x="4" y="20">empty schedule</text></svg>`
	}
	xOf := func(t float64) float64 { return labelW + t/end*chartW }

	var b strings.Builder
	y := padding
	var body strings.Builder
	for _, id := range ids {
		spans := rows[id]
		// Greedy sub-lane packing: place each span in the first
		// sub-lane whose last span ended before it starts.
		var laneEnds []float64
		lane := make([]int, len(spans))
		for i, s := range spans {
			placed := false
			for li := range laneEnds {
				if laneEnds[li] <= s.Start+1e-9 {
					lane[i] = li
					laneEnds[li] = s.End
					placed = true
					break
				}
			}
			if !placed {
				lane[i] = len(laneEnds)
				laneEnds = append(laneEnds, s.End)
			}
		}
		rowH := float64(len(laneEnds)) * laneH
		fmt.Fprintf(&body, `<text x="4" y="%.1f" font-size="12" font-family="monospace">%s</text>`+"\n",
			y+rowH/2+4, html.EscapeString(labels[id]))
		for i, s := range spans {
			x := xOf(s.Start)
			w := math.Max(1, xOf(s.End)-x)
			sy := y + float64(lane[i])*laneH
			fmt.Fprintf(&body,
				`<rect x="%.1f" y="%.1f" width="%.1f" height="%.1f" fill="%s" stroke="#333" stroke-width="0.5"><title>%s (%s) %.1f-%.1fs</title></rect>`+"\n",
				x, sy+1, w, laneH-2, activityColor(s.Activity),
				html.EscapeString(s.TaskID), html.EscapeString(s.Activity), s.Start, s.End)
		}
		y += rowH + padding
	}
	height := y + 20
	b.WriteString(fmt.Sprintf(
		`<svg xmlns="http://www.w3.org/2000/svg" width="%.0f" height="%.0f" font-family="sans-serif">`+"\n",
		labelW+chartW+padding, height))
	fmt.Fprintf(&b, `<text x="4" y="%.1f" font-size="12">%s — makespan %.2fs</text>`+"\n",
		height-6, html.EscapeString(c.Title), end)
	b.WriteString(body.String())
	b.WriteString("</svg>\n")
	return b.String()
}
