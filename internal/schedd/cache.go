package schedd

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"reassign/internal/rl"
)

// tableCache is the daemon's warm Q-table store: learned tables keyed
// by workflow-structure signature (api.StructureSignature), so a
// submission whose workflow and fleet match an earlier job's
// continues learning from that job's table instead of random
// initialisation — the paper's provenance-backed cross-execution
// learning, applied across HTTP requests.
//
// get hands out a deep copy (learners mutate tables in place, and two
// in-flight jobs may hit the same entry); put stores the finished
// job's table directly. The cache is bounded: beyond maxEntries the
// least-recently-used signature is evicted.
type tableCache struct {
	mu         sync.Mutex
	tables     map[string]*rl.Table
	order      []string // LRU order, oldest first
	maxEntries int

	hits   atomic.Int64
	misses atomic.Int64
}

func newTableCache(maxEntries int) *tableCache {
	return &tableCache{
		tables:     make(map[string]*rl.Table),
		maxEntries: maxEntries,
	}
}

// get returns a private copy of the cached table for sig, or nil on a
// miss. seed drives materialisation of entries the copy touches later
// (rl.Table.Copy), keeping warm-started runs deterministic per
// (cache state, seed).
func (c *tableCache) get(sig string, seed int64) *rl.Table {
	c.mu.Lock()
	t := c.tables[sig]
	if t != nil {
		c.touchLocked(sig)
	}
	c.mu.Unlock()
	if t == nil {
		c.misses.Add(1)
		return nil
	}
	c.hits.Add(1)
	return t.Copy(rand.New(rand.NewSource(seed)))
}

// put stores a finished job's table for sig. The caller must be done
// with the table — it is served (as copies) to future gets.
func (c *tableCache) put(sig string, t *rl.Table) {
	if t == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[sig]; !ok && len(c.tables) >= c.maxEntries {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.tables, oldest)
	}
	c.tables[sig] = t
	c.touchLocked(sig)
}

// touchLocked moves sig to the most-recently-used end.
func (c *tableCache) touchLocked(sig string) {
	for i, s := range c.order {
		if s == sig {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, sig)
}

func (c *tableCache) stats() (hits, misses int64) {
	return c.hits.Load(), c.misses.Load()
}

func (c *tableCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tables)
}
