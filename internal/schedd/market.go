package schedd

import (
	"fmt"
	"io"
	"sort"
	"sync"

	"reassign/internal/exec"
	"reassign/internal/market"
)

// marketTracker aggregates spot-market series across every market
// execution the daemon runs, for /metrics. Notice and revocation
// counters are labeled per provider (attributed through the trace's
// VM assignments), the bill accrues per provider from each run's
// cost report, and the cordoned gauge counts VMs that were cordoned
// by a preemption notice and never killed — capacity the policy
// drained early. Same locking discipline as tenantTracker.
type marketTracker struct {
	mu       sync.Mutex
	runs     int64
	notices  map[string]int64
	kills    map[string]int64
	cost     map[string]float64
	cordoned int64
}

func newMarketTracker() *marketTracker {
	return &marketTracker{
		notices: make(map[string]int64),
		kills:   make(map[string]int64),
		cost:    make(map[string]float64),
	}
}

// record folds one finished market execution into the series. Traced
// notice and kill events are counted up to the run's makespan — the
// window in which the master could observe them — and attributed to
// the owning VM's provider.
func (mt *marketTracker) record(pb *market.Playback, rep *exec.Report) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.runs++
	for _, ev := range pb.Events() {
		if ev.At > rep.Makespan {
			continue
		}
		a, ok := pb.AssignFor(ev.VM)
		if !ok {
			continue
		}
		switch ev.Kind {
		case market.EvNotice:
			mt.notices[a.Provider]++
		case market.EvKill:
			mt.kills[a.Provider]++
		}
	}
	for _, pc := range rep.CostByProvider {
		mt.cost[pc.Provider] += pc.Cost
	}
	if alive := rep.Cordoned - rep.Preempted; alive > 0 {
		mt.cordoned += int64(alive)
	}
}

// writeProm emits the market series in Prometheus text form, one
// labeled sample per provider, providers sorted so the output is
// stable. Nothing is emitted until the first market execution.
func (mt *marketTracker) writeProm(w io.Writer) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if mt.runs == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP schedd_market_runs_total Jobs executed over a spot-market trace\n"+
		"# TYPE schedd_market_runs_total counter\nschedd_market_runs_total %d\n", mt.runs)

	series := func(metric, typ, help string, values map[string]int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metric, help, metric, typ)
		for _, p := range sortedKeys(values) {
			fmt.Fprintf(w, "%s{provider=%q} %d\n", metric, p, values[p])
		}
	}
	series("schedd_market_preempt_notices_total", "counter",
		"Traced preemption notices delivered during market executions", mt.notices)
	series("schedd_market_revocations_total", "counter",
		"Traced spot kills delivered during market executions", mt.kills)

	fmt.Fprintf(w, "# HELP schedd_market_cost_usd_total Cumulative traced bill of market executions\n"+
		"# TYPE schedd_market_cost_usd_total counter\n")
	costProviders := make([]string, 0, len(mt.cost))
	for p := range mt.cost {
		costProviders = append(costProviders, p)
	}
	sort.Strings(costProviders)
	for _, p := range costProviders {
		fmt.Fprintf(w, "schedd_market_cost_usd_total{provider=%q} %v\n", p, mt.cost[p])
	}

	fmt.Fprintf(w, "# HELP schedd_market_cordoned_vms VMs cordoned by a notice and never killed, cumulative\n"+
		"# TYPE schedd_market_cordoned_vms gauge\nschedd_market_cordoned_vms %d\n", mt.cordoned)
}

func sortedKeys(m map[string]int64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
