// Package schedd is the scheduler-as-a-service control plane: a
// long-running daemon that serves the learn→plan→execute pipeline to
// many concurrent clients over a versioned HTTP/JSON API (package
// api).
//
// Architecture: submissions are admitted into a bounded queue (a full
// queue rejects with 429 — the service degrades by shedding load, not
// by growing unboundedly) and drained by a fixed pool of workers.
// Each worker runs one job at a time: build the workflow and fleet
// from the request's specs, learn a plan with core.NewLearner —
// drawing simulation engines from a shared sync.Pool of Reset-able
// sim.Engines and warm-starting from the Q-table cache when a job
// with the same workflow-structure signature has run before — then
// optionally execute the plan on the virtual-time master for
// provenance. Learned tables go back into the cache, so a steady
// stream of structurally similar workflows keeps improving its plans
// across requests (the paper's cross-execution learning, served).
//
// Endpoints:
//
//	POST /v1/jobs            submit a workflow + fleet (202, api.JobStatus)
//	GET  /v1/jobs            list job summaries
//	GET  /v1/jobs/{id}       status, plan, provenance
//	POST /v1/jobs/{id}/cancel
//	GET  /healthz            liveness
//	GET  /metrics            Prometheus text: learning telemetry + daemon counters
package schedd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"reassign/internal/api"
	"reassign/internal/market"
	"reassign/internal/metrics"
	"reassign/internal/sim"
	"reassign/internal/telemetry"
)

// Config tunes the daemon. The zero value is serviceable: GOMAXPROCS
// workers, a 256-deep admission queue, 4096 retained jobs.
type Config struct {
	// Workers is the number of concurrent job executors (default
	// GOMAXPROCS).
	Workers int
	// QueueDepth bounds the admission queue; submissions beyond it
	// are rejected with 429 (default 256).
	QueueDepth int
	// MaxJobs bounds retained job records; the oldest finished jobs
	// are evicted beyond it (default 4096).
	MaxJobs int
	// CacheEntries bounds the warm Q-table cache (default 512).
	CacheEntries int
	// MaxBodyBytes bounds request bodies (default 8 MiB).
	MaxBodyBytes int64
	// DefaultEpisodes applies when a submission leaves Episodes zero
	// (default core.DefaultEpisodes via the learner).
	DefaultEpisodes int
	// LatencyWindow bounds the retained submit→finish latency samples
	// (global and per tenant) feeding the /metrics percentiles; older
	// samples are overwritten (default 8192).
	LatencyWindow int
}

func (c *Config) defaults() {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 512
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.LatencyWindow <= 0 {
		c.LatencyWindow = 8192
	}
}

// Server is the daemon: an admission queue, a worker pool, the warm
// Q-table cache, the shared simulation-engine pool, and the job
// registry behind the HTTP API. Construct with New, launch the
// workers with Start, and stop with Shutdown.
type Server struct {
	cfg   Config
	queue chan *job
	cache *tableCache
	pool  *sim.Pool
	agg   *telemetry.Aggregator

	mu    sync.Mutex
	jobs  map[string]*job
	order []string     // submission order, for listing and eviction
	lat   *latencyRing // submit→finish seconds, bounded to LatencyWindow

	tenants *tenantTracker
	markets *marketTracker

	seq       atomic.Int64
	submitted atomic.Int64
	completed atomic.Int64
	failed    atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	inflight  atomic.Int64
	draining  atomic.Bool

	baseCtx context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup

	// testHook, when set (tests only), runs at the start of every
	// job's execution — a seam for holding workers to fill the queue.
	testHook func(*job)
	// testSubmitHook, when set (tests only), runs between a
	// submission's registry insert and its queue send — the window
	// where a concurrent submission can register behind it.
	testSubmitHook func(*job)
}

// New builds a stopped server; Start launches the worker pool.
func New(cfg Config) *Server {
	cfg.defaults()
	ctx, cancel := context.WithCancel(context.Background())
	return &Server{
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		cache:   newTableCache(cfg.CacheEntries),
		pool:    sim.NewPool(),
		agg:     telemetry.NewAggregator(),
		jobs:    make(map[string]*job),
		lat:     newLatencyRing(cfg.LatencyWindow),
		tenants: newTenantTracker(cfg.LatencyWindow),
		markets: newMarketTracker(),
		baseCtx: ctx,
		cancel:  cancel,
	}
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.baseCtx.Done():
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
}

// Shutdown stops the daemon: new submissions are rejected with 503,
// running jobs are canceled, and the workers are awaited (bounded by
// ctx). It returns ctx.Err() if the workers did not drain in time.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.cancel()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the daemon's HTTP API.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("POST /v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

// writeErr maps a typed api.Error (converting anything else via
// api.FromError) to its HTTP status and serves it as the body.
func writeErr(w http.ResponseWriter, err error) {
	apiErr := api.FromError(err)
	writeJSON(w, apiErr.HTTPStatus(), apiErr)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeErr(w, api.Errorf(api.CodeUnavailable, "", "daemon is shutting down"))
		return
	}
	var req api.SubmitRequest
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		// An oversized body surfaces as *http.MaxBytesError mid-decode;
		// that is a 413 with its own code (the client must shrink the
		// document, not fix its syntax), not a generic 400.
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeErr(w, api.Errorf(api.CodeTooLarge, "",
				"request body exceeds %d bytes", tooBig.Limit))
			return
		}
		writeErr(w, api.Errorf(api.CodeBadRequest, "", "decoding request: %v", err))
		return
	}
	if err := api.CheckSchemaVersion(req.SchemaVersion); err != nil {
		writeErr(w, err)
		return
	}
	if req.Learn.Episodes < 0 {
		writeErr(w, api.Errorf(api.CodeBadRequest, "learn.episodes",
			"negative episode budget %d", req.Learn.Episodes))
		return
	}
	if req.Learn.Replicas < 0 {
		writeErr(w, api.Errorf(api.CodeBadRequest, "learn.replicas",
			"negative replica count %d", req.Learn.Replicas))
		return
	}
	if req.DeadlineSeconds < 0 {
		writeErr(w, api.Errorf(api.CodeBadRequest, "deadline_seconds",
			"negative deadline %v", req.DeadlineSeconds))
		return
	}
	if req.Market != nil {
		if !req.Execute {
			writeErr(w, api.Errorf(api.CodeBadRequest, "market",
				"market replay requires execute"))
			return
		}
		if _, ok := market.RegimeByName(req.Market.Regime); !ok {
			writeErr(w, api.Errorf(api.CodeBadRequest, "market.regime",
				"unknown market regime %q", req.Market.Regime))
			return
		}
		if req.Market.Horizon < 0 {
			writeErr(w, api.Errorf(api.CodeBadRequest, "market.horizon",
				"negative horizon %v", req.Market.Horizon))
			return
		}
	}
	// Build the inputs synchronously so malformed documents fail the
	// submission itself (400), not the job later.
	wf, err := req.Workflow.Build()
	if err != nil {
		writeErr(w, err)
		return
	}
	fleet, err := req.Fleet.Build()
	if err != nil {
		writeErr(w, err)
		return
	}
	if req.Plan != nil {
		if err := req.Plan.Plan.Validate(wf, fleet); err != nil {
			// Typed *core.PlanError → 400 with the offending entry.
			writeErr(w, err)
			return
		}
	}

	j := &job{
		id:        fmt.Sprintf("j%06d", s.seq.Add(1)),
		req:       req,
		tenant:    tenantLabel(req.Tenant),
		w:         wf,
		fleet:     fleet,
		sig:       api.StructureSignature(wf, fleet),
		state:     api.StateQueued,
		submitted: time.Now(),
	}
	s.mu.Lock()
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	s.evictLocked()
	s.mu.Unlock()

	if s.testSubmitHook != nil {
		s.testSubmitHook(j)
	}
	select {
	case s.queue <- j:
		s.submitted.Add(1)
		s.tenants.enqueued(j.tenant)
		writeJSON(w, http.StatusAccepted, j.status())
	default:
		s.rejected.Add(1)
		s.tenants.rejected(j.tenant)
		// Roll back the registration by removing this job's own ID. The
		// registry lock was released between registration and the queue
		// send, so concurrent submissions may have appended behind us —
		// blindly truncating the tail here would orphan one of *their*
		// IDs (and leak this one).
		s.mu.Lock()
		delete(s.jobs, j.id)
		for i := len(s.order) - 1; i >= 0; i-- {
			if s.order[i] == j.id {
				s.order = append(s.order[:i], s.order[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		writeErr(w, api.Errorf(api.CodeQueueFull, "",
			"admission queue full (%d queued); retry later", s.cfg.QueueDepth))
	}
}

// evictLocked drops the oldest finished jobs beyond MaxJobs. Queued
// and running jobs are never evicted.
func (s *Server) evictLocked() {
	excess := len(s.order) - s.cfg.MaxJobs
	if excess <= 0 {
		return
	}
	kept := s.order[:0]
	for _, id := range s.order {
		j := s.jobs[id]
		if excess > 0 && j != nil && j.finished() {
			delete(s.jobs, id)
			excess--
			continue
		}
		kept = append(kept, id)
	}
	s.order = kept
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]*api.JobStatus, 0, len(s.order))
	for _, id := range s.order {
		if j := s.jobs[id]; j != nil {
			st := j.status()
			st.Plan = nil // summaries stay small
			st.Provenance = nil
			out = append(out, st)
		}
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, api.Errorf(api.CodeNotFound, "", "no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeErr(w, api.Errorf(api.CodeNotFound, "", "no job %q", r.PathValue("id")))
		return
	}
	j.mu.Lock()
	switch j.state {
	case api.StateQueued:
		// The worker that eventually pops it skips canceled jobs.
		j.state = api.StateCanceled
		j.finishedAt = time.Now()
		j.err = api.Errorf(api.CodeCanceled, "", "canceled while queued")
		latency := j.finishedAt.Sub(j.submitted).Seconds()
		deadline := j.req.DeadlineSeconds
		j.mu.Unlock()
		s.canceled.Add(1)
		s.recordLatency(latency)
		s.tenants.finished(j.tenant, api.StateCanceled, latency, deadline, false)
	case api.StateRunning:
		cancel := j.cancelRun
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
	default:
		st := j.state
		j.mu.Unlock()
		writeErr(w, api.Errorf(api.CodeConflict, "", "job is already %s", st))
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// recordLatency adds one submit→finish sample to the bounded global
// window.
func (s *Server) recordLatency(seconds float64) {
	s.mu.Lock()
	s.lat.add(seconds)
	s.mu.Unlock()
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":       !s.draining.Load(),
		"queued":   len(s.queue),
		"inflight": s.inflight.Load(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	// The learning telemetry snapshot first (episodes, decisions, DES
	// kernel counters), then the daemon's own series.
	s.agg.Snapshot().WriteProm(w)

	s.mu.Lock()
	lat := metrics.Summarize(s.lat.snapshot(nil))
	s.mu.Unlock()
	hits, misses := s.cache.stats()
	reused, fresh := s.pool.Stats()

	p := func(format string, args ...any) { fmt.Fprintf(w, format, args...) }
	counter := func(name, help string, v any) {
		p("# HELP %s %s\n# TYPE %s counter\n%s %v\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v any) {
		p("# HELP %s %s\n# TYPE %s gauge\n%s %v\n", name, help, name, name, v)
	}
	counter("schedd_jobs_submitted_total", "Jobs admitted", s.submitted.Load())
	counter("schedd_jobs_completed_total", "Jobs finished successfully", s.completed.Load())
	counter("schedd_jobs_failed_total", "Jobs that failed", s.failed.Load())
	counter("schedd_jobs_canceled_total", "Jobs canceled", s.canceled.Load())
	counter("schedd_jobs_rejected_total", "Submissions rejected by the full admission queue", s.rejected.Load())
	gauge("schedd_queue_depth", "Jobs waiting in the admission queue", len(s.queue))
	gauge("schedd_queue_capacity", "Admission queue bound", s.cfg.QueueDepth)
	gauge("schedd_jobs_inflight", "Jobs currently executing", s.inflight.Load())
	counter("schedd_qtable_cache_hits_total", "Submissions warm-started from the Q-table cache", hits)
	counter("schedd_qtable_cache_misses_total", "Submissions that learned from scratch", misses)
	gauge("schedd_qtable_cache_entries", "Cached Q tables", s.cache.len())
	counter("schedd_engine_pool_reused_total", "Sim engines served by rebinding a pooled engine", reused)
	counter("schedd_engine_pool_fresh_total", "Sim engines newly constructed", fresh)
	if lat.N > 0 {
		gauge("schedd_job_latency_seconds_p50", "Submit-to-finish latency (median)", lat.P50)
		gauge("schedd_job_latency_seconds_p95", "Submit-to-finish latency (95th percentile)", lat.P95)
		gauge("schedd_job_latency_seconds_p99", "Submit-to-finish latency (99th percentile)", lat.P99)
		gauge("schedd_job_latency_seconds_mean", "Submit-to-finish latency (mean)", lat.Mean)
		gauge("schedd_job_latency_seconds_max", "Submit-to-finish latency (max)", lat.Max)
	}
	s.tenants.writeProm(w)
	s.markets.writeProm(w)
}
